//go:build !race

package geogossip

// See race_on_test.go.
const raceDetectorEnabled = false
