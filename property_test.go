package geogossip

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// Cross-algorithm invariants checked on randomized small instances:
// every protocol preserves the mean exactly and never reports a negative
// or non-finite error, regardless of network seed, field shape, or loss.

func TestQuickAllAlgorithmsPreserveMean(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized integration property")
	}
	f := func(netSeed, runSeed uint64, fieldKind uint8, lossRaw uint8) bool {
		nw, err := NewNetwork(128, WithSeed(netSeed%1000), WithRadiusMultiplier(2.2))
		if err != nil {
			return true // disconnected instance: nothing to check
		}
		loss := float64(lossRaw%50) / 100 // 0 .. 0.49
		base := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			switch fieldKind % 3 {
			case 0:
				base[i] = p[0]
			case 1:
				base[i] = math.Sin(p[0]*11) * 100
			default:
				base[i] = float64(i%7) - 3
			}
		}
		want := Mean(base)
		algos := []Algorithm{
			Boyd(WithTargetError(5e-2), WithRunSeed(runSeed), WithLossRate(loss), WithMaxTicks(3_000_000)),
			Geographic(WithTargetError(5e-2), WithRunSeed(runSeed), WithLossRate(loss), WithMaxTicks(1_000_000)),
			AffineHierarchical(WithTargetError(5e-2), WithRunSeed(runSeed), WithLossRate(loss)),
		}
		for _, algo := range algos {
			values := append([]float64(nil), base...)
			res, err := algo.Run(nw, values)
			if err != nil {
				return false
			}
			if math.Abs(Mean(values)-want) > 1e-8*(1+math.Abs(want)) {
				return false
			}
			if math.IsNaN(res.FinalErr) || math.IsInf(res.FinalErr, 0) || res.FinalErr < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCurvesAreMonotoneInCost(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized integration property")
	}
	f := func(seed uint64) bool {
		nw, err := NewNetwork(128, WithSeed(seed%500), WithRadiusMultiplier(2.2))
		if err != nil {
			return true
		}
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = p[1]
		}
		res, err := Boyd(WithTargetError(1e-2), WithRunSeed(seed), WithMaxTicks(3_000_000)).Run(nw, values)
		if err != nil {
			return false
		}
		prev := -1.0
		for _, pt := range res.Curve {
			if pt[0] < prev { // transmissions never decrease
				return false
			}
			prev = pt[0]
		}
		return len(res.Curve) >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSaveLoadIsLossless(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized round-trip property")
	}
	f := func(seed uint64, flat bool) bool {
		opts := []NetworkOption{WithSeed(seed % 2000), WithRadiusMultiplier(2.0)}
		if flat {
			opts = append(opts, WithFlatHierarchy())
		}
		nw, err := NewNetwork(200, opts...)
		if err != nil {
			return true
		}
		var buf bytes.Buffer
		if err := nw.Save(&buf); err != nil {
			return false
		}
		loaded, err := LoadNetwork(&buf)
		if err != nil {
			return false
		}
		return loaded.Edges() == nw.Edges() &&
			loaded.HierarchyLevels() == nw.HierarchyLevels() &&
			loaded.Radius() == nw.Radius()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
