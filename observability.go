package geogossip

import (
	"io"
	"net/http"

	"geogossip/internal/obs"
)

// MetricsRegistry is a live view of the library's observability metrics:
// counters, gauges and histograms accumulated by every run reporting
// into it (currently the sweep engine via WithSweepMetrics). It renders
// as Prometheus text exposition and is safe to scrape concurrently with
// running sweeps — every instrument is atomic.
type MetricsRegistry struct {
	reg *obs.Registry
}

// NewMetricsRegistry returns an empty registry. Pass it to Sweep via
// WithSweepMetrics and serve Handler while the sweep runs.
func NewMetricsRegistry() *MetricsRegistry {
	return &MetricsRegistry{reg: obs.NewRegistry()}
}

// Handler serves the registry as a Prometheus /metrics endpoint
// (text exposition format 0.0.4).
func (m *MetricsRegistry) Handler() http.Handler { return obs.Handler(m.reg) }

// WritePrometheus renders the registry in the Prometheus text
// exposition format.
func (m *MetricsRegistry) WritePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}

// Values returns every scalar the registry currently holds — counters,
// gauges, histogram buckets, counts and sums — keyed by exposition name.
// Scrape-time state: gauges and float sums depend on when you ask.
func (m *MetricsRegistry) Values() map[string]float64 {
	return m.reg.Values()
}
