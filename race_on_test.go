//go:build race

package geogossip

// raceDetectorEnabled gates the large-n scale smoke: under -race the
// 10^5-node run takes ~10x longer, so CI runs it in a dedicated
// non-race step instead (see .github/workflows/ci.yml).
const raceDetectorEnabled = true
