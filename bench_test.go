// Macro-benchmarks: one per regenerated table/figure (DESIGN.md §2). Each
// runs the corresponding experiment at full scale and prints the same
// rows the report files contain, so
//
//	go test -bench=. -benchmem
//
// regenerates every artifact of the reproduction. Micro-benchmarks for
// the substrate primitives follow at the end.
package geogossip

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/core"
	"geogossip/internal/experiments"
	"geogossip/internal/geo"
	"geogossip/internal/gossip"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/kernel"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

var benchPrinted sync.Map

// benchExperiment runs one experiment per iteration, printing its report
// once and failing the benchmark if a shape check fails.
func benchExperiment(b *testing.B, id string, run func(experiments.Config) (*experiments.Report, error)) {
	b.Helper()
	cfg := experiments.Config{Quick: testing.Short()}
	for i := 0; i < b.N; i++ {
		rep, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := benchPrinted.LoadOrStore(id, true); !done {
			fmt.Println()
			if err := rep.Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		}
		if !rep.OK() {
			b.Fatalf("%s: shape checks failed (see printed report)", id)
		}
	}
}

func BenchmarkTable1Scaling(b *testing.B) { benchExperiment(b, "E1", experiments.RunE1Scaling) }
func BenchmarkFigure1Lemma1(b *testing.B) { benchExperiment(b, "E2", experiments.RunE2Lemma1) }
func BenchmarkFigure2Tail(b *testing.B)   { benchExperiment(b, "E3", experiments.RunE3Tail) }
func BenchmarkFigure3Lemma2(b *testing.B) { benchExperiment(b, "E4", experiments.RunE4Lemma2) }
func BenchmarkFigure4Connectivity(b *testing.B) {
	benchExperiment(b, "E5", experiments.RunE5Connectivity)
}
func BenchmarkFigure5Routing(b *testing.B)   { benchExperiment(b, "E6", experiments.RunE6Routing) }
func BenchmarkFigure6Rejection(b *testing.B) { benchExperiment(b, "E7", experiments.RunE7Rejection) }
func BenchmarkTable2Occupancy(b *testing.B)  { benchExperiment(b, "E8", experiments.RunE8Occupancy) }
func BenchmarkFigure7EpsScaling(b *testing.B) {
	benchExperiment(b, "E9", experiments.RunE9EpsScaling)
}
func BenchmarkTable3Hierarchy(b *testing.B) { benchExperiment(b, "E10", experiments.RunE10Hierarchy) }
func BenchmarkFigure8Stability(b *testing.B) {
	benchExperiment(b, "E11", experiments.RunE11Stability)
}
func BenchmarkTable4Ablation(b *testing.B) { benchExperiment(b, "E12", experiments.RunE12Ablation) }
func BenchmarkTable5Control(b *testing.B)  { benchExperiment(b, "E13", experiments.RunE13Control) }
func BenchmarkFigure9Convergence(b *testing.B) {
	benchExperiment(b, "E14", experiments.RunE14Convergence)
}
func BenchmarkFigure10EpsSchedule(b *testing.B) {
	benchExperiment(b, "E15", experiments.RunE15EpsSchedule)
}
func BenchmarkTable6Mixing(b *testing.B) {
	benchExperiment(b, "E16", experiments.RunE16Mixing)
}

// --- sweep-engine benchmarks ----------------------------------------------

// benchSweepGrid pushes a small comparison grid (3 algorithms × 2 sizes ×
// 4 seeds, 24 tasks) through the public sweep API at a fixed worker count; the
// 1-worker and NumCPU variants together track the engine's parallel
// speedup across the bench trajectory.
func benchSweepGrid(b *testing.B, workers int) {
	spec := SweepSpec{
		Algorithms: []string{"boyd", "geographic", "affine-hierarchical"},
		Ns:         []int{256, 512},
		Seeds:      4,
		TargetErr:  5e-2,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Sweep(context.Background(), spec, WithSweepWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Err != "" {
				b.Fatalf("task %d: %s", r.TaskID, r.Err)
			}
		}
	}
}

func BenchmarkSweepGrid1Worker(b *testing.B) { benchSweepGrid(b, 1) }

func BenchmarkSweepGridNumCPU(b *testing.B) { benchSweepGrid(b, runtime.NumCPU()) }

// BenchmarkSweepGrid is the end-to-end sweep benchmark of the bench
// trajectory (BENCH_routing.json): all five algorithms × 2 sizes × 2
// seeds at the default worker count, exercising the shared per-network
// route caches. The reported route-hits/op metric tracks how much
// routing work the grid pooled.
func BenchmarkSweepGrid(b *testing.B) {
	spec := SweepSpec{
		Algorithms: []string{"boyd", "geographic", "push-sum", "affine-hierarchical", "affine-async"},
		Ns:         []int{256, 512},
		Seeds:      2,
		TargetErr:  5e-2,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Sweep(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Err != "" {
				b.Fatalf("task %d: %s", r.TaskID, r.Err)
			}
		}
		if i == 0 {
			b.ReportMetric(100*rep.RouteCache.RouteHitRate(), "route-hit-%")
		}
	}
}

// --- substrate micro-benchmarks -------------------------------------------

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := graph.Generate(n, 1.5, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkGraphBuild4096(b *testing.B) {
	pts := graph.UniformPoints(4096, rng.New(1))
	radius := graph.ConnectivityRadius(4096, 1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Build(pts, radius); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyRoute4096(b *testing.B) {
	g := benchGraph(b, 4096)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int32(r.IntN(g.N()))
		dst := int32(r.IntN(g.N()))
		routing.GreedyToNode(g, src, dst, routing.RecoveryBFS)
	}
}

func BenchmarkHierarchyBuild65536(b *testing.B) {
	pts := graph.UniformPoints(65536, rng.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hier.Build(pts, hier.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelStep(b *testing.B) {
	r := rng.New(4)
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	sys, err := kernel.NewSystem(vals, kernel.UniformAlphas(256, r))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(r)
	}
}

func BenchmarkBoydTick2048(b *testing.B) {
	g := benchGraph(b, 2048)
	x := make([]float64, g.N())
	r := rng.New(5)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ResetTimer()
	// One benchmark iteration = one full bounded run amortized: use ticks
	// as the unit by running MaxTicks = b.N once.
	res, err := gossip.RunBoyd(g, x, gossip.Options{
		Stop: sim.StopRule{MaxTicks: uint64(b.N)},
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// benchBoydMedium measures the per-tick cost of one engine under a
// given radio fault model, so the channel abstraction's overhead —
// Perfect vs Bernoulli vs Gilbert–Elliott — is visible side by side.
func benchBoydMedium(b *testing.B, faults channel.Spec) {
	g := benchGraph(b, 2048)
	x := make([]float64, g.N())
	r := rng.New(6)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ResetTimer()
	if _, err := gossip.RunBoyd(g, x, gossip.Options{
		Stop:   sim.StopRule{MaxTicks: uint64(b.N)},
		Faults: faults,
	}, r); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBoydChannelPerfect(b *testing.B) { benchBoydMedium(b, channel.Spec{}) }

func BenchmarkBoydChannelBernoulli(b *testing.B) {
	benchBoydMedium(b, channel.Spec{Loss: channel.LossBernoulli, LossRate: 0.2})
}

func BenchmarkBoydChannelGilbertElliott(b *testing.B) {
	benchBoydMedium(b, channel.Spec{
		Loss: channel.LossGilbertElliott,
		GE:   channel.GEParams{PGoodToBad: 0.025, PBadToGood: 0.1, LossGood: 0.01, LossBad: 0.95},
	})
}

func BenchmarkVoronoiAreas2048(b *testing.B) {
	g := benchGraph(b, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.VoronoiAreas()
	}
}

func BenchmarkAffineRecursive2048(b *testing.B) {
	g := benchGraph(b, 2048)
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(6)
	base := make([]float64, g.N())
	for i := range base {
		base[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := append([]float64(nil), base...)
		res, err := core.RunRecursive(g, h, x, core.RecursiveOptions{Eps: 1e-2}, rng.New(7))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Transmissions), "transmissions")
			b.ReportMetric(float64(res.FarExchanges), "far-exchanges")
		}
	}
}

// BenchmarkAsyncLargeLeaf4096 is the routing-dominated engine run
// BENCH_routing.json tracks: large leaves (the paper's polylog-occupancy
// regime) and short rounds make the async engine spend its time flooding
// leaf squares and routing rep↔child control packets, so wall-clock
// follows the routing core directly. The route/flood caches took it from
// 56.5ms to 18.8ms per run (3.0×) with bit-identical transmissions.
func BenchmarkAsyncLargeLeaf4096(b *testing.B) {
	g := benchGraph(b, 4096)
	h, err := hier.Build(g.Points(), hier.Config{LeafTarget: 256})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(8)
	base := make([]float64, g.N())
	for i := range base {
		base[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := append([]float64(nil), base...)
		res, err := core.RunAsync(g, h, x, core.AsyncOptions{
			LeafTicks: 8,
			Stop:      sim.StopRule{TargetErr: 1e-3, MaxTicks: 500_000},
		}, rng.New(9))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Transmissions), "transmissions")
		}
	}
}

// BenchmarkAsyncRun2048 measures the async engine at its default
// parameters, where per-tick protocol work (near gossip, clock, error
// tracking) shares the profile with routing.
func BenchmarkAsyncRun2048(b *testing.B) {
	g := benchGraph(b, 2048)
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(8)
	base := make([]float64, g.N())
	for i := range base {
		base[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := append([]float64(nil), base...)
		res, err := core.RunAsync(g, h, x, core.AsyncOptions{
			Stop: sim.StopRule{TargetErr: 1e-2, MaxTicks: 2_000_000},
		}, rng.New(9))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Transmissions), "transmissions")
		}
	}
}

func BenchmarkFloodRegion(b *testing.B) {
	g := benchGraph(b, 4096)
	region := geo.NewRect(0.25, 0.25, 0.5, 0.5)
	src := int32(-1)
	for i := int32(0); int(i) < g.N(); i++ {
		if region.Contains(g.Point(i)) {
			src = i
			break
		}
	}
	if src < 0 {
		b.Fatal("no node in region")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.Flood(g, src, region)
	}
}
