package geogossip

import (
	"math"
	"runtime"
	"testing"

	"geogossip/internal/rng"
)

func TestWithBuildWorkersByteIdentity(t *testing.T) {
	ref, err := NewNetwork(600, WithSeed(21), WithBuildWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.NumCPU(), 0} {
		nw, err := NewNetwork(600, WithSeed(21), WithBuildWorkers(w))
		if err != nil {
			t.Fatalf("build-workers=%d: %v", w, err)
		}
		if nw.Edges() != ref.Edges() || nw.HierarchyLevels() != ref.HierarchyLevels() {
			t.Fatalf("build-workers=%d: different network (edges %d vs %d)", w, nw.Edges(), ref.Edges())
		}
		a, b := ref.Positions(), nw.Positions()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("build-workers=%d: node %d placed differently", w, i)
			}
		}
		if nw.Footprint() != ref.Footprint() {
			t.Fatalf("build-workers=%d: footprint differs: %+v vs %+v", w, nw.Footprint(), ref.Footprint())
		}
	}
}

func TestNetworkFootprint(t *testing.T) {
	nw, err := NewNetwork(512, WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	f := nw.Footprint()
	if f.PointsBytes != 16*nw.N() {
		t.Fatalf("points footprint %d, want %d", f.PointsBytes, 16*nw.N())
	}
	if f.AdjacencyBytes == 0 || f.IndexBytes == 0 || f.HierarchyBytes == 0 {
		t.Fatalf("zero footprint component: %+v", f)
	}
	if f.VoronoiBytes != 0 {
		t.Fatalf("Voronoi areas should be lazy, got %d bytes before any geographic run", f.VoronoiBytes)
	}
	want := f.PointsBytes + f.AdjacencyBytes + f.IndexBytes + f.VoronoiBytes + f.HierarchyBytes
	if f.Total() != want {
		t.Fatalf("Total %d != component sum %d", f.Total(), want)
	}
	perNode := float64(f.Total()) / float64(nw.N())
	if perNode < 20 || perNode > 4096 {
		t.Fatalf("bytes/node %v out of plausible range", perNode)
	}
}

func TestWithParallelRuns(t *testing.T) {
	nw, err := NewNetwork(400, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		algo Algorithm
		// Boyd's pairwise averages preserve the mean exactly; push-sum
		// writes back per-node estimates, which only approximate it at
		// the target accuracy.
		meanTol float64
	}{
		{Boyd(WithTargetError(1e-2), WithParallel(4, 2)), 1e-6},
		{PushSum(WithTargetError(1e-2), WithParallel(4, 2)), 5e-2},
	} {
		algo := tc.algo
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = 10*p[0] + p[1]
		}
		want := Mean(values)
		res, err := algo.Run(nw, values)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge under WithParallel: %+v", algo.Name(), res)
		}
		if math.Abs(Mean(values)-want) > tc.meanTol {
			t.Fatalf("%s: mean drifted %v -> %v", algo.Name(), want, Mean(values))
		}
	}
}

func TestWithParallelRejections(t *testing.T) {
	nw, err := NewNetwork(128, WithSeed(24))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	cases := []struct {
		name string
		algo Algorithm
	}{
		{"geographic", Geographic(WithParallel(0, 0))},
		{"affine-hierarchical", AffineHierarchical(WithParallel(0, 0))},
		{"async without recovery", AffineAsync(WithParallel(0, 0))},
		{"boyd with loss", Boyd(WithParallel(0, 0), WithLossRate(0.1))},
	}
	for _, tc := range cases {
		if _, err := tc.algo.Run(nw, values); err == nil {
			t.Fatalf("%s accepted WithParallel", tc.name)
		}
	}
}

// TestScaleSmokeBoyd100k is the CI-sized slice of the million-node
// recipe (README "Scale"): parallel construction of a 10^5-node
// network plus a parallel boyd run on a gaussian-style field,
// asserting convergence and the memory envelope. Skipped under -short;
// the full n=10^6 figures live in BENCH_engines.json.
func TestScaleSmokeBoyd100k(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-node construct+run smoke")
	}
	if raceDetectorEnabled {
		t.Skip("run without -race: the race detector makes this ~10x slower (CI runs it in its own step)")
	}
	const n = 100_000
	nw, err := NewNetwork(n, WithSeed(26), WithBuildWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	perNode := float64(nw.Footprint().Total()) / float64(n)
	if perNode > 2048 {
		t.Fatalf("network footprint %v bytes/node blows the scale budget", perNode)
	}
	values := make([]float64, n)
	r := rng.New(27)
	for i := range values {
		values[i] = r.NormFloat64()
	}
	want := Mean(values)
	res, err := Boyd(WithTargetError(1e-2), WithParallel(0, 0)).Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("boyd did not converge at n=%d: %+v", n, res)
	}
	if math.Abs(Mean(values)-want) > 1e-6 {
		t.Fatalf("mean drifted %v -> %v", want, Mean(values))
	}
}

func TestWithParallelAsyncHeal(t *testing.T) {
	nw, err := NewNetwork(200, WithSeed(25))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = 10*p[0] + p[1]
	}
	algo := AffineAsync(WithTargetError(1e-2), WithRecovery(),
		WithChurn(60000, 60000), WithParallel(4, 2),
		WithMaxTicks(2_000_000))
	res, err := algo.Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resyncs == 0 {
		t.Fatalf("parallel heal performed no resyncs under reviving churn: %+v", res)
	}
}
