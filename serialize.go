package geogossip

import (
	"encoding/json"
	"fmt"
	"io"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
)

// networkJSON is the on-disk representation of a Network: positions plus
// the parameters needed to rebuild the connectivity graph and hierarchy
// exactly.
type networkJSON struct {
	Version    int          `json:"version"`
	Radius     float64      `json:"radius"`
	LeafTarget float64      `json:"leafTarget,omitempty"`
	MaxDepth   int          `json:"maxDepth,omitempty"`
	Points     [][2]float64 `json:"points"`
}

const networkFormatVersion = 1

// Save writes the network to w as JSON. The encoding stores positions and
// construction parameters, not the derived adjacency, so files stay small
// and loading always reproduces the exact same graph and hierarchy.
func (nw *Network) Save(w io.Writer) error {
	out := networkJSON{
		Version:    networkFormatVersion,
		Radius:     nw.g.Radius(),
		LeafTarget: nw.leafTarget,
		MaxDepth:   nw.maxDepth,
		Points:     nw.Positions(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadNetwork reads a network previously written by Save and rebuilds the
// connectivity graph and hierarchy.
func LoadNetwork(r io.Reader) (*Network, error) {
	var in networkJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("geogossip: decode network: %w", err)
	}
	if in.Version != networkFormatVersion {
		return nil, fmt.Errorf("geogossip: unsupported network format version %d", in.Version)
	}
	pts := make([]geo.Point, len(in.Points))
	for i, p := range in.Points {
		pts[i] = geo.Pt(p[0], p[1])
	}
	g, err := graph.Build(pts, in.Radius)
	if err != nil {
		return nil, fmt.Errorf("geogossip: rebuild graph: %w", err)
	}
	h, err := hier.Build(pts, hier.Config{LeafTarget: in.LeafTarget, MaxDepth: in.MaxDepth})
	if err != nil {
		return nil, fmt.Errorf("geogossip: rebuild hierarchy: %w", err)
	}
	return &Network{g: g, h: h, leafTarget: in.LeafTarget, maxDepth: in.MaxDepth}, nil
}
