package geogossip

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/netstore"
	"geogossip/internal/snap"
)

// networkJSON is the legacy (version 1) on-disk representation of a
// Network: positions plus the parameters needed to rebuild the
// connectivity graph and hierarchy exactly. Save no longer produces it,
// but LoadNetwork reads it forever.
type networkJSON struct {
	Version    int          `json:"version"`
	Radius     float64      `json:"radius"`
	LeafTarget float64      `json:"leafTarget,omitempty"`
	MaxDepth   int          `json:"maxDepth,omitempty"`
	Points     [][2]float64 `json:"points"`
}

const networkFormatVersion = 1

// Save writes the network to w as a binary snapshot: positions plus the
// derived adjacency, cell index and hierarchy tables, each section
// checksummed (DESIGN.md §11). Files are larger than the legacy JSON
// points-only encoding, but loading is a sequential validation pass that
// skips network construction entirely — the point at million-node scale,
// where rebuilding dominates. LoadNetwork reads both formats.
func (nw *Network) Save(w io.Writer) error {
	meta := netstore.Meta{
		N:          nw.g.N(),
		Radius:     nw.g.Radius(),
		LeafTarget: nw.leafTarget,
		MaxDepth:   nw.maxDepth,
	}
	if err := netstore.Encode(w, meta, nw.g, nw.h); err != nil {
		return fmt.Errorf("geogossip: encode network: %w", err)
	}
	return nil
}

// LoadNetwork reads a network previously written by Save. The format is
// sniffed from the first bytes: gzip-wrapped input is unwrapped
// transparently, the binary snapshot magic selects the snapshot decoder
// (every table validated, bit-identical to the build it was saved from),
// and a leading '{' selects the legacy JSON decoder, which rebuilds the
// graph and hierarchy from the stored positions.
func LoadNetwork(r io.Reader) (*Network, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("geogossip: decode network: %w", err)
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("geogossip: decode network: %w", err)
		}
		defer gz.Close()
		return LoadNetwork(gz)
	}
	if head[0] == snap.Magic[0] {
		g, h, meta, err := netstore.Decode(br, 0)
		if err != nil {
			return nil, fmt.Errorf("geogossip: decode network: %w", err)
		}
		return &Network{g: g, h: h, leafTarget: meta.LeafTarget, maxDepth: meta.MaxDepth}, nil
	}
	return loadNetworkJSON(br)
}

func loadNetworkJSON(r io.Reader) (*Network, error) {
	var in networkJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("geogossip: decode network: %w", err)
	}
	if in.Version != networkFormatVersion {
		return nil, fmt.Errorf("geogossip: unsupported network format version %d", in.Version)
	}
	pts := make([]geo.Point, len(in.Points))
	for i, p := range in.Points {
		pts[i] = geo.Pt(p[0], p[1])
	}
	g, err := graph.Build(pts, in.Radius)
	if err != nil {
		return nil, fmt.Errorf("geogossip: rebuild graph: %w", err)
	}
	h, err := hier.Build(pts, hier.Config{LeafTarget: in.LeafTarget, MaxDepth: in.MaxDepth})
	if err != nil {
		return nil, fmt.Errorf("geogossip: rebuild hierarchy: %w", err)
	}
	return &Network{g: g, h: h, leafTarget: in.LeafTarget, maxDepth: in.MaxDepth}, nil
}
