package geogossip

import (
	"math"
	"testing"
)

func TestWithLossRateAllAlgorithms(t *testing.T) {
	nw, err := NewNetwork(384, WithSeed(60), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	algos := []Algorithm{
		Boyd(WithTargetError(1e-2), WithLossRate(0.2), WithMaxTicks(20_000_000)),
		Geographic(WithTargetError(1e-2), WithLossRate(0.2), WithMaxTicks(20_000_000)),
		AffineHierarchical(WithTargetError(1e-2), WithLossRate(0.2)),
		AffineAsync(WithTargetError(3e-2), WithLossRate(0.2), WithMaxTicks(60_000_000)),
	}
	for _, algo := range algos {
		t.Run(algo.Name(), func(t *testing.T) {
			values := make([]float64, nw.N())
			for i, p := range nw.Positions() {
				values[i] = p[0] * 5
			}
			want := Mean(values)
			res, err := algo.Run(nw, values)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s with 20%% loss did not converge: final err %v", algo.Name(), res.FinalErr)
			}
			if math.Abs(Mean(values)-want) > 1e-9 {
				t.Fatalf("mean drifted under loss: %v -> %v", want, Mean(values))
			}
		})
	}
}

func TestLossCostsMoreAtFacadeLevel(t *testing.T) {
	nw, err := NewNetwork(384, WithSeed(61), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	run := func(loss float64) uint64 {
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = p[1]
		}
		res, err := Boyd(WithTargetError(1e-2), WithLossRate(loss), WithMaxTicks(20_000_000)).Run(nw, values)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("loss %v did not converge", loss)
		}
		return res.Transmissions
	}
	if run(0.4) <= run(0) {
		t.Fatal("40% loss should cost more transmissions than lossless")
	}
}
