package geogossip_test

import (
	"fmt"
	"log"

	"geogossip"
)

// The basic workflow: build a network, fill in sensor measurements, run
// an algorithm, read the consensus estimate back from any sensor.
func Example() {
	nw, err := geogossip.NewNetwork(512, geogossip.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i := range values {
		values[i] = float64(i % 2) // half the sensors read 0, half read 1
	}
	res, err := geogossip.AffineHierarchical(geogossip.WithTargetError(1e-6)).Run(nw, values)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v sensor0=%.3f\n", res.Converged, values[0])
	// Output: converged=true sensor0=0.500
}

// Algorithms are plain values; the same network can be reused across
// runs and algorithms.
func ExampleNetwork() {
	nw, err := geogossip.NewNetwork(256, geogossip.WithSeed(3), geogossip.WithRadiusMultiplier(2.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensors=%d levels=%d connected-radius=%.2f\n",
		nw.N(), nw.HierarchyLevels(), nw.Radius())
	// Output: sensors=256 levels=2 connected-radius=0.29
}

// Mean reports the consensus target for a measurement vector.
func ExampleMean() {
	fmt.Println(geogossip.Mean([]float64{1, 2, 3, 6}))
	// Output: 3
}
