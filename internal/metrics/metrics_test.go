package metrics

import (
	"strings"
	"testing"
)

func TestCurveRecordAndLast(t *testing.T) {
	var c Curve
	if _, ok := c.Last(); ok {
		t.Fatal("empty curve has a last sample")
	}
	c.Record(1, 10, 0.9)
	c.Record(2, 20, 0.5)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	last, ok := c.Last()
	if !ok || last.Transmissions != 20 || last.Err != 0.5 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
}

func TestTransmissionsAt(t *testing.T) {
	var c Curve
	c.Record(1, 10, 0.9)
	c.Record(2, 20, 0.5)
	c.Record(3, 30, 0.05)
	c.Record(4, 40, 0.01)
	tx, ok := c.TransmissionsAt(0.1)
	if !ok || tx != 30 {
		t.Fatalf("TransmissionsAt(0.1) = %d ok=%v", tx, ok)
	}
	if _, ok := c.TransmissionsAt(0.001); ok {
		t.Fatal("found crossing below final error")
	}
}

func TestDownsample(t *testing.T) {
	var c Curve
	for i := 0; i < 1000; i++ {
		c.Record(uint64(i), uint64(i*10), 1.0/float64(i+1))
	}
	d := c.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled len = %d", d.Len())
	}
	if d.Samples[0] != c.Samples[0] {
		t.Fatal("first sample not kept")
	}
	if d.Samples[9] != c.Samples[999] {
		t.Fatal("last sample not kept")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// No-op cases.
	if got := c.Downsample(0); got.Len() != 1000 {
		t.Fatal("maxPoints 0 should be a no-op")
	}
	small := &Curve{}
	small.Record(1, 1, 1)
	if got := small.Downsample(10); got.Len() != 1 {
		t.Fatal("small curve should be unchanged")
	}
}

func TestValidate(t *testing.T) {
	good := &Curve{}
	good.Record(1, 10, 0.9)
	good.Record(2, 20, 0.95) // error may rise; that is legal
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	badTicks := &Curve{}
	badTicks.Record(5, 10, 0.9)
	badTicks.Record(4, 20, 0.8)
	if badTicks.Validate() == nil {
		t.Fatal("decreasing ticks accepted")
	}

	badTx := &Curve{}
	badTx.Record(1, 20, 0.9)
	badTx.Record(2, 10, 0.8)
	if badTx.Validate() == nil {
		t.Fatal("decreasing transmissions accepted")
	}

	badErr := &Curve{}
	badErr.Record(1, 10, -0.5)
	if badErr.Validate() == nil {
		t.Fatal("negative error accepted")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Algorithm: "boyd", N: 100, Converged: true, FinalErr: 0.001, Ticks: 5, Transmissions: 10}
	s := r.String()
	if !strings.Contains(s, "boyd") || !strings.Contains(s, "converged") {
		t.Fatalf("String = %q", s)
	}
	r.Converged = false
	if !strings.Contains(r.String(), "NOT converged") {
		t.Fatalf("String = %q", r.String())
	}
}
