// Package metrics records convergence trajectories: (transmissions,
// relative error) samples taken as an algorithm runs, plus utilities to
// summarize and down-sample them for reporting.
package metrics

import (
	"fmt"
	"math"
)

// Sample is one point of a convergence trajectory.
type Sample struct {
	Ticks         uint64
	Transmissions uint64
	Err           float64
}

// Curve is a convergence trajectory in sampling order.
type Curve struct {
	Samples []Sample
}

// Record appends a sample.
func (c *Curve) Record(ticks, transmissions uint64, err float64) {
	c.Samples = append(c.Samples, Sample{Ticks: ticks, Transmissions: transmissions, Err: err})
}

// Len returns the number of samples.
func (c *Curve) Len() int { return len(c.Samples) }

// Snapshot returns an independent copy of the curve. Pooled run states
// truncate and refill their curve storage across runs; results must hold
// a snapshot, never the live curve.
func (c *Curve) Snapshot() *Curve {
	return &Curve{Samples: append([]Sample(nil), c.Samples...)}
}

// Last returns the final sample and true, or a zero sample and false when
// empty.
func (c *Curve) Last() (Sample, bool) {
	if len(c.Samples) == 0 {
		return Sample{}, false
	}
	return c.Samples[len(c.Samples)-1], true
}

// TransmissionsAt returns the transmission count of the first sample whose
// error is at or below target, and whether one exists. Curves are sampled
// periodically, so this overestimates the true crossing by at most one
// sampling interval.
func (c *Curve) TransmissionsAt(target float64) (uint64, bool) {
	for _, s := range c.Samples {
		if s.Err <= target {
			return s.Transmissions, true
		}
	}
	return 0, false
}

// Downsample returns a curve with at most maxPoints samples, keeping the
// first and last and thinning uniformly in between. It returns the
// receiver when already small enough.
func (c *Curve) Downsample(maxPoints int) *Curve {
	if maxPoints <= 0 || len(c.Samples) <= maxPoints {
		return c
	}
	out := &Curve{Samples: make([]Sample, 0, maxPoints)}
	step := float64(len(c.Samples)-1) / float64(maxPoints-1)
	for i := 0; i < maxPoints; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx >= len(c.Samples) {
			idx = len(c.Samples) - 1
		}
		out.Samples = append(out.Samples, c.Samples[idx])
	}
	return out
}

// Validate checks monotonicity invariants every well-formed trajectory
// satisfies: ticks and transmissions never decrease, errors are finite
// and non-negative.
func (c *Curve) Validate() error {
	var prev Sample
	for i, s := range c.Samples {
		if math.IsNaN(s.Err) || math.IsInf(s.Err, 0) || s.Err < 0 {
			return fmt.Errorf("metrics: sample %d has invalid error %v", i, s.Err)
		}
		if i > 0 {
			if s.Ticks < prev.Ticks {
				return fmt.Errorf("metrics: sample %d ticks decreased (%d -> %d)", i, prev.Ticks, s.Ticks)
			}
			if s.Transmissions < prev.Transmissions {
				return fmt.Errorf("metrics: sample %d transmissions decreased (%d -> %d)", i, prev.Transmissions, s.Transmissions)
			}
		}
		prev = s
	}
	return nil
}

// Result is the outcome of one algorithm run.
type Result struct {
	// Algorithm names the protocol that produced the run.
	Algorithm string
	// N is the network size.
	N int
	// Converged reports whether the target error was reached before the
	// tick limit.
	Converged bool
	// FinalErr is the relative ℓ₂ error at termination.
	FinalErr float64
	// Ticks is the number of global clock ticks consumed.
	Ticks uint64
	// Transmissions is the total transmission count.
	Transmissions uint64
	// TransmissionsByCategory breaks the total down (near/far/control/
	// flood).
	TransmissionsByCategory map[string]uint64
	// Curve is the sampled trajectory (may be empty if sampling was
	// disabled).
	Curve *Curve
	// Alive is the per-node liveness at termination under a churn fault
	// model; nil when every node was up (any fault-free or loss-only
	// run). Dead nodes hold their last pre-crash value.
	Alive []bool
	// Reelections counts representative re-elections performed by the
	// recovery protocol (affine engines with recovery enabled).
	Reelections uint64
	// Resyncs counts restart-from-neighbor state resyncs after node
	// revival (engines with recovery enabled).
	Resyncs uint64
	// SimSeconds is the run's wall-clock convergence time in simulated
	// seconds — the latest of the final clock tick and the last transport
	// delivery completion, divided by n (each node's unit-rate Poisson
	// clock ticks once per simulated second on average). Zero unless the
	// fault spec has transport components (delay/arq), which activate the
	// event-driven timeline; see DESIGN.md §12.
	SimSeconds float64
}

// String implements fmt.Stringer with a one-line summary.
func (r *Result) String() string {
	status := "converged"
	if !r.Converged {
		status = "NOT converged"
	}
	return fmt.Sprintf("%s n=%d: %s err=%.3g ticks=%d transmissions=%d",
		r.Algorithm, r.N, status, r.FinalErr, r.Ticks, r.Transmissions)
}
