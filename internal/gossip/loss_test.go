package gossip

import (
	"math"
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

func TestBoydConvergesUnderLoss(t *testing.T) {
	g := generate(t, 300, 2.0, 400)
	x := randomValues(g.N(), 401)
	mean := meanOf(x)
	res, err := RunBoyd(g, x, Options{
		Stop:     sim.StopRule{TargetErr: 1e-2, MaxTicks: 5_000_000},
		LossRate: 0.3,
	}, rng.New(402))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("boyd with 30%% loss did not converge: %v", res)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted under loss: %v -> %v", mean, meanOf(x))
	}
}

func TestBoydLossInflatesCost(t *testing.T) {
	g := generate(t, 300, 2.0, 403)
	run := func(loss float64) uint64 {
		x := randomValues(g.N(), 404)
		res, err := RunBoyd(g, x, Options{
			Stop:     sim.StopRule{TargetErr: 1e-2, MaxTicks: 5_000_000},
			LossRate: loss,
		}, rng.New(405))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("loss %v run did not converge", loss)
		}
		return res.Ticks
	}
	clean := run(0)
	lossy := run(0.4)
	if lossy <= clean {
		t.Fatalf("40%% loss needed %d ticks, clean run %d — loss should slow convergence", lossy, clean)
	}
}

func TestBoydTotalLossFreezesValues(t *testing.T) {
	g := generate(t, 100, 2.0, 406)
	x := randomValues(g.N(), 407)
	before := append([]float64(nil), x...)
	res, err := RunBoyd(g, x, Options{
		Stop:     sim.StopRule{TargetErr: 1e-3, MaxTicks: 10_000},
		LossRate: 1.0,
	}, rng.New(408))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("run with 100% loss converged")
	}
	for i := range x {
		if x[i] != before[i] {
			t.Fatalf("value %d changed despite total loss", i)
		}
	}
	// Lost messages still cost transmissions.
	if res.Transmissions == 0 {
		t.Fatal("total loss charged no transmissions")
	}
}

func TestZeroLossIdenticalToBaseline(t *testing.T) {
	// LossRate 0 must not consume randomness: runs are byte-identical to
	// runs of the pre-loss code path.
	g := generate(t, 200, 2.0, 409)
	run := func(loss float64) (uint64, float64) {
		x := randomValues(g.N(), 410)
		res, err := RunBoyd(g, x, Options{
			Stop:     sim.StopRule{TargetErr: 1e-2, MaxTicks: 2_000_000},
			LossRate: loss,
		}, rng.New(411))
		if err != nil {
			t.Fatal(err)
		}
		return res.Transmissions, res.FinalErr
	}
	tx0, err0 := run(0)
	tx0b, err0b := run(0)
	if tx0 != tx0b || err0 != err0b {
		t.Fatal("zero-loss runs not reproducible")
	}
}

func TestGeographicConvergesUnderLoss(t *testing.T) {
	g := generate(t, 300, 2.0, 412)
	x := randomValues(g.N(), 413)
	mean := meanOf(x)
	res, err := RunGeographic(g, x, GeoOptions{
		Options: Options{
			Stop:     sim.StopRule{TargetErr: 1e-2, MaxTicks: 2_000_000},
			LossRate: 0.25,
		},
	}, rng.New(414))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("geographic with 25%% loss did not converge: %v", res)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted under loss: %v -> %v", mean, meanOf(x))
	}
}

func TestLossRateValidation(t *testing.T) {
	g := generate(t, 50, 2.5, 416)
	for _, bad := range []float64{-0.1, 1.5} {
		if _, err := RunBoyd(g, make([]float64, g.N()), Options{LossRate: bad}, rng.New(1)); err == nil {
			t.Fatalf("boyd accepted loss rate %v", bad)
		}
		if _, err := RunGeographic(g, make([]float64, g.N()), GeoOptions{Options: Options{LossRate: bad}}, rng.New(1)); err == nil {
			t.Fatalf("geographic accepted loss rate %v", bad)
		}
	}
	// LossRate and an explicit Faults loss model together are ambiguous.
	both := Options{
		LossRate: 0.1,
		Faults:   channel.Spec{Loss: channel.LossBernoulli, LossRate: 0.2},
	}
	if _, err := RunBoyd(g, make([]float64, g.N()), both, rng.New(1)); err == nil {
		t.Fatal("boyd accepted LossRate combined with a Faults loss model")
	}
}
