package gossip

import (
	"math"
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// burstFaults is a heavily bursty medium: ~20% stationary loss arriving
// in runs of ~10 packets.
func burstFaults() channel.Spec {
	return channel.Spec{
		Loss: channel.LossGilbertElliott,
		GE:   channel.GEParams{PGoodToBad: 0.025, PBadToGood: 0.1, LossGood: 0.01, LossBad: 0.95},
	}
}

func sumOf(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// TestBoydAtomicUnderBurstLoss: pair updates commit atomically, so the
// sum invariant — and with it the consensus target — survives arbitrary
// burst loss, and the run still converges.
func TestBoydAtomicUnderBurstLoss(t *testing.T) {
	g := generate(t, 300, 2.0, 500)
	x := randomValues(g.N(), 501)
	sum0 := sumOf(x)
	res, err := RunBoyd(g, x, Options{
		Stop:   sim.StopRule{TargetErr: 1e-2, MaxTicks: 10_000_000},
		Faults: burstFaults(),
	}, rng.New(502))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("boyd under burst loss did not converge: %v", res)
	}
	if got := sumOf(x); math.Abs(got-sum0) > 1e-9*(math.Abs(sum0)+1) {
		t.Fatalf("sum drifted under burst loss: %v -> %v", sum0, got)
	}
}

func TestGeographicAtomicUnderBurstLoss(t *testing.T) {
	g := generate(t, 300, 2.0, 503)
	x := randomValues(g.N(), 504)
	sum0 := sumOf(x)
	res, err := RunGeographic(g, x, GeoOptions{
		Options: Options{
			Stop:   sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000},
			Faults: burstFaults(),
		},
	}, rng.New(505))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("geographic under burst loss did not converge: %v", res)
	}
	if got := sumOf(x); math.Abs(got-sum0) > 1e-9*(math.Abs(sum0)+1) {
		t.Fatalf("sum drifted under burst loss: %v -> %v", sum0, got)
	}
}

// TestBoydSumInvariantUnderChurnAndLoss: even composed with node churn,
// every committed exchange is an atomic pairwise average between live
// nodes, so Σx over all nodes (dead ones frozen) is exactly invariant.
func TestBoydSumInvariantUnderChurnAndLoss(t *testing.T) {
	g := generate(t, 300, 2.0, 506)
	x := randomValues(g.N(), 507)
	sum0 := sumOf(x)
	spec := channel.Spec{
		Loss:     channel.LossBernoulli,
		LossRate: 0.2,
		Churn:    channel.ChurnParams{MeanUp: 200_000, MeanDown: 50_000},
	}
	res, err := RunBoyd(g, x, Options{
		Stop:   sim.StopRule{MaxTicks: 1_000_000},
		Faults: spec,
	}, rng.New(508))
	if err != nil {
		t.Fatal(err)
	}
	if got := sumOf(x); math.Abs(got-sum0) > 1e-9*(math.Abs(sum0)+1) {
		t.Fatalf("sum drifted under churn+loss: %v -> %v", sum0, got)
	}
	if res.Alive == nil {
		t.Fatal("churn run reported no liveness mask")
	}
}

// TestBoydSurvivorDriftUnderChurn: under crash-stop churn the survivors
// reach consensus among themselves, but nodes that died early carried
// away un-averaged deviation, so the survivor consensus is measurably
// biased off the true initial mean. This is the drift push-sum's mass
// accounting is designed to expose (see the push-sum tests).
func TestBoydSurvivorDriftUnderChurn(t *testing.T) {
	g := generate(t, 300, 2.0, 509)
	x := randomValues(g.N(), 510)
	mean := meanOf(x)
	res, err := RunBoyd(g, x, Options{
		Stop:   sim.StopRule{MaxTicks: 3_000_000},
		Faults: channel.Spec{Churn: channel.ChurnParams{MeanUp: 3_000_000}},
	}, rng.New(511))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive == nil {
		t.Fatal("no liveness mask")
	}
	var survivorSum float64
	survivors := 0
	for i, alive := range res.Alive {
		if alive {
			survivorSum += x[i]
			survivors++
		}
	}
	if survivors == 0 || survivors == g.N() {
		t.Fatalf("want partial churn, got %d/%d survivors", survivors, g.N())
	}
	survivorMean := survivorSum / float64(survivors)
	// Survivors agree with each other far more tightly than with the
	// true mean: consensus reached, target missed.
	var maxSpread float64
	for i, alive := range res.Alive {
		if alive {
			if d := math.Abs(x[i] - survivorMean); d > maxSpread {
				maxSpread = d
			}
		}
	}
	drift := math.Abs(survivorMean - mean)
	if drift < 10*maxSpread {
		t.Fatalf("expected survivor consensus (spread %v) biased off the true mean, drift only %v", maxSpread, drift)
	}
}

// TestPushSumMassConservedUnderChurn: the rollback bookkeeping keeps the
// push-sum invariants Σs = Σx(0) and Σw = n exact under churn composed
// with loss — mass is stranded in dead nodes, never destroyed.
func TestPushSumMassConservedUnderChurn(t *testing.T) {
	g := generate(t, 300, 2.0, 512)
	x := randomValues(g.N(), 513)
	sum0 := sumOf(x)
	for _, churn := range []channel.ChurnParams{
		{MeanUp: 500_000},                    // crash-stop
		{MeanUp: 200_000, MeanDown: 100_000}, // revival
	} {
		xs := append([]float64(nil), x...)
		_, s, w, err := RunPushSumState(g, xs, Options{
			Stop: sim.StopRule{MaxTicks: 1_000_000},
			Faults: channel.Spec{
				Loss:     channel.LossBernoulli,
				LossRate: 0.15,
				Churn:    churn,
			},
		}, rng.New(514))
		if err != nil {
			t.Fatal(err)
		}
		sumS, sumW := PushSumMass(s, w)
		if math.Abs(sumS-sum0) > 1e-9*(math.Abs(sum0)+1) {
			t.Fatalf("churn %+v: Σs drifted %v -> %v", churn, sum0, sumS)
		}
		if math.Abs(sumW-float64(g.N())) > 1e-9 {
			t.Fatalf("churn %+v: Σw drifted %v -> %v", churn, g.N(), sumW)
		}
	}
}

// TestPushSumRecoversTrueMeanAfterRevival: with revival, stranded mass
// returns intact, so the estimates converge to the exact initial mean —
// the payoff of mass conservation that a drifted plain-averaging run
// cannot recover.
func TestPushSumRecoversTrueMeanAfterRevival(t *testing.T) {
	g := generate(t, 200, 2.0, 515)
	x := randomValues(g.N(), 516)
	mean := meanOf(x)
	res, err := RunPushSum(g, x, Options{
		Stop: sim.StopRule{TargetErr: 1e-3, MaxTicks: 20_000_000},
		Faults: channel.Spec{
			Churn: channel.ChurnParams{MeanUp: 100_000, MeanDown: 20_000},
		},
	}, rng.New(517))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("push-sum under revival churn did not converge: %v", res)
	}
	for i, v := range x {
		if math.Abs(v-mean) > 0.02 {
			t.Fatalf("node %d estimate %v far from true mean %v", i, v, mean)
		}
	}
}
