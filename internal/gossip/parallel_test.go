package gossip

import (
	"math"
	"reflect"
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/par"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// tickWorkerCounts is the DESIGN.md §9 invariance set: serial inline,
// the smallest real split, and everything the machine has.
func tickWorkerCounts() []int {
	counts := []int{1, 2, par.NumCPU()}
	out := counts[:0]
	for _, w := range counts {
		dup := false
		for _, seen := range out {
			dup = dup || seen == w
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestRunBoydParallelWorkerInvariance(t *testing.T) {
	g := generate(t, 400, 2.0, 610)
	opt := Options{
		Stop:     sim.StopRule{TargetErr: 1e-3, MaxTicks: 4_000_000},
		Parallel: Parallel{Shards: 8},
	}
	var refX []float64
	var refRes any
	for _, w := range tickWorkerCounts() {
		x := randomValues(g.N(), 611)
		mean := meanOf(x)
		o := opt
		o.Parallel.Workers = w
		res, err := RunBoyd(g, x, o, rng.New(612))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: parallel boyd did not converge: %v", w, res)
		}
		if math.Abs(meanOf(x)-mean) > 1e-9 {
			t.Fatalf("workers=%d: mean drifted %v -> %v", w, mean, meanOf(x))
		}
		if res.Transmissions == 0 || res.Transmissions != res.TransmissionsByCategory["near"] {
			t.Fatalf("workers=%d: boyd should only use near transmissions: %v", w, res.TransmissionsByCategory)
		}
		if refX == nil {
			refX = append([]float64(nil), x...)
			refRes = res
			continue
		}
		if !sameFloats(refX, x) {
			t.Fatalf("workers=%d: final values differ from workers=1 run", w)
		}
		if !reflect.DeepEqual(refRes, res) {
			t.Fatalf("workers=%d: result differs from workers=1 run:\n%+v\nvs\n%+v", w, refRes, res)
		}
	}
}

func TestRunPushSumParallelWorkerInvariance(t *testing.T) {
	g := generate(t, 400, 2.0, 620)
	var refX, refS, refW []float64
	var refRes any
	for _, w := range tickWorkerCounts() {
		x := randomValues(g.N(), 621)
		mean := meanOf(x)
		res, s, wgt, err := RunPushSumState(g, x, Options{
			Stop:     sim.StopRule{TargetErr: 1e-3, MaxTicks: 4_000_000},
			Parallel: Parallel{Shards: 8, Workers: w},
		}, rng.New(622))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: parallel push-sum did not converge: %v", w, res)
		}
		var sSum, wSum float64
		for i := range s {
			sSum += s[i]
			wSum += wgt[i]
		}
		if math.Abs(sSum-mean*float64(g.N())) > 1e-6*float64(g.N()) {
			t.Fatalf("workers=%d: mass sum drifted: %v vs %v", w, sSum, mean*float64(g.N()))
		}
		if math.Abs(wSum-float64(g.N())) > 1e-9*float64(g.N()) {
			t.Fatalf("workers=%d: weight sum drifted: %v", w, wSum)
		}
		if refX == nil {
			refX = append([]float64(nil), x...)
			refS = append([]float64(nil), s...)
			refW = append([]float64(nil), wgt...)
			refRes = res
			continue
		}
		if !sameFloats(refX, x) || !sameFloats(refS, s) || !sameFloats(refW, wgt) {
			t.Fatalf("workers=%d: final state differs from workers=1 run", w)
		}
		if !reflect.DeepEqual(refRes, res) {
			t.Fatalf("workers=%d: result differs from workers=1 run:\n%+v\nvs\n%+v", w, refRes, res)
		}
	}
}

// TestParallelPooledStateBitIdentity asserts that a pooled RunState run
// on the sharded schedule is bit-identical to a fresh-state run, and
// that back-to-back pooled runs agree with each other.
func TestParallelPooledStateBitIdentity(t *testing.T) {
	g := generate(t, 300, 2.0, 630)
	run := func(st *RunState) ([]float64, any) {
		x := randomValues(g.N(), 631)
		res, err := RunBoyd(g, x, Options{
			Stop:     sim.StopRule{TargetErr: 5e-3, MaxTicks: 4_000_000},
			Parallel: Parallel{Shards: 5, Workers: 2},
			State:    st,
		}, rng.New(632))
		if err != nil {
			t.Fatal(err)
		}
		return x, res
	}
	freshX, freshRes := run(nil)
	st := NewRunState()
	for rep := 0; rep < 3; rep++ {
		x, res := run(st)
		if !sameFloats(freshX, x) || !reflect.DeepEqual(freshRes, res) {
			t.Fatalf("pooled parallel run %d diverged from fresh-state run", rep)
		}
	}
}

func TestParallelGateRejections(t *testing.T) {
	g := generate(t, 80, 2.2, 640)
	p := Parallel{Shards: 4, Workers: 2}
	cases := []struct {
		name string
		opt  Options
	}{
		{"loss", Options{Parallel: p, LossRate: 0.1}},
		{"faults", Options{Parallel: p, Faults: channel.Spec{Loss: channel.LossBernoulli, LossRate: 0.2}}},
		{"resync", Options{Parallel: p, Resync: true}},
		{"tracer", Options{Parallel: p, Tracer: trace.NewBuffer(16)}},
	}
	for _, tc := range cases {
		x := randomValues(g.N(), 641)
		if _, err := RunBoyd(g, x, tc.opt, rng.New(642)); err == nil {
			t.Fatalf("boyd accepted Parallel with %s", tc.name)
		}
		x = randomValues(g.N(), 641)
		if _, err := RunPushSum(g, x, tc.opt, rng.New(642)); err == nil {
			t.Fatalf("push-sum accepted Parallel with %s", tc.name)
		}
	}
	x := randomValues(g.N(), 641)
	if _, err := RunGeographic(g, x, GeoOptions{Options: Options{Parallel: p}}, rng.New(642)); err == nil {
		t.Fatal("geographic accepted Parallel (routed exchanges are global)")
	}
}

// TestParallelBlockAllocs asserts the per-shard steady state of both
// block kernels is allocation-free once the deferred queues are warm.
func TestParallelBlockAllocs(t *testing.T) {
	g := generate(t, 256, 2.0, 650)
	n := g.N()
	x := randomValues(n, 651)
	st := NewRunState()
	shards := st.bindShards(Parallel{Shards: 4}, n, rng.New(652))
	mean := meanOf(x)
	warm := func(run func(sh *tickShard)) {
		for rep := 0; rep < 8; rep++ {
			for si := range shards {
				run(&shards[si])
				shards[si].resetBlock()
			}
		}
	}
	warm(func(sh *tickShard) { sh.boydBlock(g, x, mean) })
	for si := range shards {
		sh := &shards[si]
		if allocs := testing.AllocsPerRun(50, func() {
			sh.boydBlock(g, x, mean)
			sh.resetBlock()
		}); allocs != 0 {
			t.Fatalf("boyd shard %d steady state allocates %v allocs/op", si, allocs)
		}
	}
	s := append([]float64(nil), x...)
	w := make([]float64, n)
	est := append([]float64(nil), x...)
	for i := range w {
		w[i] = 1
	}
	warm(func(sh *tickShard) { sh.pushSumBlock(g, s, w, est, mean) })
	for si := range shards {
		sh := &shards[si]
		if allocs := testing.AllocsPerRun(50, func() {
			sh.pushSumBlock(g, s, w, est, mean)
			sh.resetBlock()
		}); allocs != 0 {
			t.Fatalf("push-sum shard %d steady state allocates %v allocs/op", si, allocs)
		}
	}
}

// TestParallelShardSchedule pins the schedule contract: shard bounds
// depend only on (n, Shards), the effective shard count caps at n, and
// stream seeds derive from the documented "pshard" labels.
func TestParallelShardSchedule(t *testing.T) {
	st := NewRunState()
	shards := st.bindShards(Parallel{Shards: 16}, 5, rng.New(660))
	if len(shards) != 5 {
		t.Fatalf("shard count not capped at n: got %d", len(shards))
	}
	bounds := par.Ranges(5, 5)
	for i, sh := range shards {
		if int(sh.lo) != bounds[i] || int(sh.hi) != bounds[i+1] {
			t.Fatalf("shard %d owns [%d,%d), want [%d,%d)", i, sh.lo, sh.hi, bounds[i], bounds[i+1])
		}
	}
	base := rng.DeriveString(rng.New(660).Seed(), "pshard")
	for i, sh := range shards {
		if sh.clock.Seed() != rng.Derive(base, uint64(i), 0) {
			t.Fatalf("shard %d clock stream not derived per contract", i)
		}
		if sh.pick.Seed() != rng.Derive(base, uint64(i), 1) {
			t.Fatalf("shard %d pick stream not derived per contract", i)
		}
	}
}
