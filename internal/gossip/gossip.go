// Package gossip implements three baseline averaging algorithms the
// paper compares against:
//
//   - Boyd et al. (INFOCOM 2005) randomized nearest-neighbour gossip —
//     Õ(n²) transmissions on G(n, r): RunBoyd.
//   - Dimakis–Sarwate–Wainwright (IPSN 2006) geographic gossip —
//     Õ(n^1.5) transmissions: RunGeographic, with either faithful
//     rejection sampling over random positions or idealized uniform node
//     sampling.
//   - Kempe–Dobra–Gehrke (FOCS 2003) push-sum: RunPushSum.
//
// All use the shared run harness from internal/sim (clock model,
// transmission accounting, error tracking) and route every data-packet
// delivery through internal/channel, so costs and fault behaviour are
// comparable with the paper's algorithm in internal/core.
package gossip

import (
	"fmt"

	"geogossip/internal/channel"
	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// Options configures a baseline run.
type Options struct {
	// Stop bundles the termination conditions.
	Stop sim.StopRule
	// RecordEvery samples the convergence curve every RecordEvery ticks.
	// Zero selects n (≈ once per unit of simulated time).
	RecordEvery uint64
	// LossRate is the probability that a data packet (or, for multi-hop
	// routes, a route leg) is lost — shorthand for a Bernoulli fault
	// model in Faults. A lost exchange still pays for the transmissions
	// made before the loss but applies no update, and updates commit
	// atomically per pair, so the sum invariant survives arbitrary loss.
	// Zero disables loss and leaves runs byte-identical to pre-loss
	// behaviour. Setting both LossRate and a loss model in Faults is an
	// error.
	LossRate float64
	// Faults selects the radio fault model (loss process, spatial
	// jamming fields, partition cuts and/or node churn). The zero Spec is
	// the perfect medium. Rep-targeted churn is rejected: these engines
	// have no hierarchy.
	Faults channel.Spec
	// Routes optionally supplies a deterministic route/flood cache bound
	// to the run's graph (see routing.Cache). Routing is a pure function
	// of the immutable graph, so caching cannot change any result — but
	// geographic gossip routes between uniformly random endpoints, whose
	// (src, dst) pairs essentially never recur (the memoization
	// pathology DESIGN.md §6 documents), so nil selects the uncached
	// zero-alloc path rather than a private cache. Only geographic
	// routes packets; the single-hop engines (boyd, push-sum) ignore
	// this field.
	Routes *routing.Cache
	// Resync enables restart-from-neighbor state recovery: a node whose
	// clock fires after it revived from a crash first pulls the current
	// estimate from a random live neighbour (2 transmissions) before
	// resuming the protocol, so long-dead nodes rejoin near the working
	// consensus instead of dragging their stale pre-crash value back in.
	// Off by default — enabling it changes the draw sequence, and exact
	// sum preservation is traded for convergence under churn (push-sum
	// ignores it: mass-conservation bookkeeping already survives churn).
	Resync bool
	// State optionally supplies a reusable run state (harness, channel
	// pool, RNG streams, scratch slices), so repeat runs — the sweep
	// engine pools one per worker — perform O(1) state allocations
	// instead of re-allocating everything per run. Nil gives the run a
	// fresh private state. Reuse cannot change results: a pooled run is
	// draw- and result-identical to a fresh one (see RunState).
	State *RunState
	// Parallel, when enabled, executes ticks on the deterministic sharded
	// schedule of DESIGN.md §9: bit-identical to itself at any worker
	// count, but a different interleaving than the serial schedule, so it
	// defaults off to keep every existing fingerprint byte-identical.
	// Requires the perfect medium; boyd and push-sum only.
	Parallel Parallel
	// Tracer, when non-nil, receives structured protocol events (near
	// and far exchanges, losses, resyncs, churn transitions).
	Tracer trace.Tracer
	// Obs, when non-nil, receives metrics through the label-free fast
	// path (see obs.Scope). Nil costs nothing.
	Obs *obs.Scope
}

// faultSpec folds the legacy LossRate shorthand into the fault spec and
// validates the result.
func (o Options) faultSpec() (channel.Spec, error) {
	spec := o.Faults
	if o.LossRate != 0 {
		if o.LossRate < 0 || o.LossRate > 1 {
			return spec, fmt.Errorf("gossip: loss rate %v outside [0, 1]", o.LossRate)
		}
		if spec.Loss != channel.LossNone {
			return spec, fmt.Errorf("gossip: LossRate and Faults both select a loss model")
		}
		spec.Loss = channel.LossBernoulli
		spec.LossRate = o.LossRate
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// The run's radio channel is built by RunState.medium over the engine's
// deterministic streams: losses draw from "loss", churn schedules from
// "churn". The graph supplies the spatial and degree context
// geometry-aware fault models bind to; rep-targeted specs fail there (no
// hierarchy).

// boydRun is the per-run state of the boyd engine, factored out so the
// loop body (step) can be driven and alloc-asserted in isolation and the
// whole bundle can live inside a pooled RunState.
type boydRun struct {
	g      *graph.Graph
	x      []float64
	h      *sim.Harness
	pick   *rng.RNG
	resync resyncState
}

func newBoydRun(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*boydRun, error) {
	st := stateOf(opt)
	medium, err := st.medium(opt, g, r)
	if err != nil {
		return nil, err
	}
	st.h.Reset(x, sim.HarnessConfig{
		Stop:        opt.Stop,
		RecordEvery: opt.RecordEvery,
		Medium:      medium,
		Points:      g.Points(),
		Tracer:      opt.Tracer,
		Obs:         opt.Obs,
		Timeline:    &st.tline,
	}, st.stream(&st.clockRNG, r, "clock"))
	e := &st.boyd
	*e = boydRun{
		g:    g,
		x:    x,
		h:    &st.h,
		pick: st.stream(&st.pickRNG, r, "pick"),
	}
	e.resync.reset(opt, st, g.N())
	return e, nil
}

// step executes one clock tick: the owner averages with a uniformly
// random graph neighbour (2 transmissions). Zero allocations in steady
// state.
func (e *boydRun) step() {
	h := e.h
	s := h.Tick()
	if !h.Alive(s) {
		e.resync.markDead(s, h)
		h.Sample()
		return
	}
	e.resync.onTick(s, e.g, h, e.x, e.pick)
	deg := e.g.Degree(s)
	if deg > 0 {
		v := e.g.Neighbors(s)[e.pick.IntN(deg)]
		if ok, paid := h.Medium.DeliverHop(h.Packet(s, v, 1)); !ok {
			// The outbound value was transmitted but lost; no update.
			h.Counter.Add(sim.CatNear, paid)
			h.TraceLoss(s, v, paid)
		} else {
			avg := (e.x[s] + e.x[v]) / 2
			h.Tracker.Set(s, avg)
			h.Tracker.Set(v, avg)
			// paid is the transport layer's extra airtime (retransmissions,
			// duplicates); zero without delay/arq, keeping the charge — and
			// the event — byte-identical to the transport-free run.
			h.Counter.Add(sim.CatNear, 2+paid)
			h.Trace(trace.Event{Kind: trace.KindNear, Square: -1, NodeA: s, NodeB: v, Hops: 2 + paid})
		}
	}
	h.Sample()
}

// RunBoyd runs randomized nearest-neighbour gossip: on each clock tick
// the owner averages with a uniformly random graph neighbour (2
// transmissions per exchange). x is mutated in place toward consensus.
func RunBoyd(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, error) {
	if g.N() != len(x) {
		return nil, fmt.Errorf("gossip: %d nodes but %d values", g.N(), len(x))
	}
	if g.N() == 0 {
		return sim.EmptyResult("boyd"), nil
	}
	if opt.Parallel.Enabled() {
		return runBoydParallel(g, x, opt, r)
	}
	e, err := newBoydRun(g, x, opt, r)
	if err != nil {
		return nil, err
	}
	for !e.h.Done() {
		e.step()
	}
	res := e.h.Finish("boyd")
	res.Resyncs = e.resync.count
	return res, nil
}

// resyncState implements restart-from-neighbor recovery for the
// clock-driven baselines: it remembers which nodes were observed dead
// and, on the first tick after a node revives, pulls the current
// estimate from a random live neighbour.
type resyncState struct {
	wasDead []bool // nil when resync is disabled
	count   uint64
}

// reset re-initializes the tracker for a new run, reusing the state's
// flag slice.
func (rs *resyncState) reset(opt Options, st *RunState, n int) {
	rs.count = 0
	rs.wasDead = nil
	if opt.Resync && opt.Faults.HasChurn() && opt.Faults.Churn.MeanDown > 0 {
		st.wasDead = sim.GrowBool(st.wasDead, n)
		rs.wasDead = st.wasDead
	}
}

func (rs *resyncState) markDead(s int32, h *sim.Harness) {
	if rs.wasDead != nil && !rs.wasDead[s] {
		rs.wasDead[s] = true
		h.Scope.Churn(false)
		h.Trace(trace.Event{Kind: trace.KindChurn, Square: -1, NodeA: s, NodeB: 0})
	}
}

// onTick performs the resync exchange for a freshly revived node: x[s]
// adopts a random live neighbour's value at a cost of 2 transmissions
// (request + response). A lost draw (dead neighbour) just skips — the
// node retries on its next tick.
func (rs *resyncState) onTick(s int32, g *graph.Graph, h *sim.Harness, x []float64, pick *rng.RNG) {
	if rs.wasDead == nil || !rs.wasDead[s] {
		return
	}
	deg := g.Degree(s)
	if deg == 0 {
		rs.wasDead[s] = false
		h.Scope.Churn(true)
		h.Trace(trace.Event{Kind: trace.KindChurn, Square: -1, NodeA: s, NodeB: 1})
		return
	}
	v := g.Neighbors(s)[pick.IntN(deg)]
	if !h.Alive(v) {
		return // retry at the next tick
	}
	rs.wasDead[s] = false
	h.Tracker.Set(s, x[v])
	h.Counter.Add(sim.CatControl, 2)
	rs.count++
	h.Scope.Churn(true)
	h.Scope.Resync()
	h.Trace(trace.Event{Kind: trace.KindChurn, Square: -1, NodeA: s, NodeB: 1})
	h.Trace(trace.Event{Kind: trace.KindResync, Square: -1, NodeA: s, NodeB: v, Hops: 2})
}

// Sampling selects how geographic gossip chooses long-range partners.
type Sampling int

const (
	// SamplingRejection is the faithful mechanism of [5]: route toward a
	// uniformly random position; the node nearest that position accepts
	// with probability proportional to its local density estimate
	// (degree), otherwise re-targets a fresh random position and the
	// packet wanders on. This approximately uniformizes the partner
	// distribution.
	SamplingRejection Sampling = iota + 1
	// SamplingUniformNode is the idealized mechanism rejection sampling
	// approximates: the partner is an exact uniform random node.
	SamplingUniformNode
)

// String implements fmt.Stringer.
func (s Sampling) String() string {
	switch s {
	case SamplingRejection:
		return "rejection"
	case SamplingUniformNode:
		return "uniform-node"
	default:
		return fmt.Sprintf("sampling(%d)", int(s))
	}
}

// GeoOptions configures geographic gossip.
type GeoOptions struct {
	Options
	// Sampling selects the partner mechanism; zero selects
	// SamplingRejection.
	Sampling Sampling
	// MaxAttempts caps rejection re-targets per exchange; zero selects 10.
	MaxAttempts int
	// Recovery selects stall handling for node-addressed return routes;
	// zero selects routing.RecoveryBFS.
	Recovery routing.Recovery
}

func (o GeoOptions) withDefaults() GeoOptions {
	if o.Sampling == 0 {
		o.Sampling = SamplingRejection
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 10
	}
	if o.Recovery == 0 {
		o.Recovery = routing.RecoveryBFS
	}
	return o
}

// TargetSampler draws long-range partners for a source node, charging the
// routing cost the mechanism incurs.
type TargetSampler struct {
	g           *graph.Graph
	rt          *routing.Router
	mode        Sampling
	maxAttempts int
	// accept[i] is node i's rejection-sampling acceptance probability
	// min(1, κ/(n·A_i)), where A_i is its locally computed Voronoi cell
	// area. Nearest-to-uniform-point targeting samples node i with
	// probability A_i; the acceptance clamps the product at κ/n, which
	// flattens the distribution toward uniform (exactly uniform on the
	// nodes with A_i ≥ κ/n).
	accept []float64
}

// rejectionKappa trades uniformity against acceptance rate: acceptance
// clamps the sampled mass per node at κ/n. 0.5 keeps the expected number
// of attempts near 2 while removing most of the Voronoi-area spread.
const rejectionKappa = 0.5

// NewTargetSampler builds a sampler over g with a private uncached
// routing core (sampled targets are random, so memoization cannot hit;
// see Options.Routes).
func NewTargetSampler(g *graph.Graph, mode Sampling, maxAttempts int) *TargetSampler {
	return NewTargetSamplerRouter(routing.NewRouter(g, routing.NoCache()), mode, maxAttempts)
}

// NewTargetSamplerRouter builds a sampler that routes through rt, so a
// run's sampler and return routes share one memoized routing core.
func NewTargetSamplerRouter(rt *routing.Router, mode Sampling, maxAttempts int) *TargetSampler {
	ts := &TargetSampler{}
	var accept []float64
	g := rt.Graph()
	if mode == SamplingRejection && g.N() > 0 {
		accept = rejectionAccept(g, make([]float64, g.N()))
	}
	ts.reset(rt, mode, maxAttempts, accept)
	return ts
}

// rejectionAccept fills buf (length g.N()) with the per-node acceptance
// probabilities min(1, κ/(n·A_i)) over the graph's cached Voronoi areas
// and returns it.
func rejectionAccept(g *graph.Graph, buf []float64) []float64 {
	targetArea := rejectionKappa / float64(g.N())
	for i, a := range g.VoronoiAreas() {
		if a <= targetArea {
			buf[i] = 1
		} else {
			buf[i] = targetArea / a
		}
	}
	return buf
}

// reset re-initializes a (possibly pooled) sampler in place. accept is
// the rejection acceptance table (nil for uniform-node sampling),
// computed by rejectionAccept and owned by the caller.
func (ts *TargetSampler) reset(rt *routing.Router, mode Sampling, maxAttempts int, accept []float64) {
	if maxAttempts <= 0 {
		maxAttempts = 10
	}
	*ts = TargetSampler{
		g:           rt.Graph(),
		rt:          rt,
		mode:        mode,
		maxAttempts: maxAttempts,
		accept:      accept,
	}
}

// SampleFrom routes a packet from src to a sampled partner and returns the
// partner, the hops spent getting the packet there, and the number of
// rejection attempts used (1 for uniform-node sampling). The partner may
// equal src in degenerate geometries; callers typically skip such
// exchanges.
func (ts *TargetSampler) SampleFrom(src int32, r *rng.RNG) (target int32, hops, attempts int) {
	switch ts.mode {
	case SamplingUniformNode:
		if ts.g.N() < 2 {
			return src, 0, 1
		}
		t := int32(r.IntNExcept(ts.g.N(), int(src)))
		res := ts.rt.RouteToNode(src, t, routing.RecoveryBFS)
		if !res.Delivered {
			// Disconnected target: stay at the stall node.
			return res.Last, res.Hops, 1
		}
		return t, res.Hops, 1
	case SamplingRejection:
		cur := src
		for attempts = 1; ; attempts++ {
			y := geo.Pt(r.Float64(), r.Float64())
			res := ts.rt.RouteToPoint(cur, y)
			hops += res.Hops
			cur = res.Last
			if attempts >= ts.maxAttempts {
				return cur, hops, attempts
			}
			if r.Bernoulli(ts.accept[cur]) {
				return cur, hops, attempts
			}
		}
	default:
		panic(fmt.Sprintf("gossip: unknown sampling mode %d", ts.mode))
	}
}

// geoRun is the per-run state of the geographic engine (see boydRun).
type geoRun struct {
	g       *graph.Graph
	x       []float64
	h       *sim.Harness
	sampler *TargetSampler
	sample  *rng.RNG
	rec     routing.Recovery
	resync  resyncState
}

func newGeoRun(g *graph.Graph, x []float64, opt GeoOptions, r *rng.RNG) (*geoRun, error) {
	st := stateOf(opt.Options)
	medium, err := st.medium(opt.Options, g, r)
	if err != nil {
		return nil, err
	}
	routes := opt.Routes
	if routes == nil {
		// Geographic routes target uniformly random partners: memoizing
		// them would grow toward n² entries with near-zero reuse, so the
		// default is the uncached (still zero-alloc) fast path — one
		// state-owned disabled cache, reused across runs.
		if st.noCache == nil {
			st.noCache = routing.NoCache()
		}
		routes = st.noCache
	}
	st.router.Reset(g, routes)
	st.h.Reset(x, sim.HarnessConfig{
		Stop:        opt.Stop,
		RecordEvery: opt.RecordEvery,
		Medium:      medium,
		Points:      g.Points(),
		Router:      &st.router,
		Tracer:      opt.Tracer,
		Obs:         opt.Obs,
		Timeline:    &st.tline,
	}, st.stream(&st.clockRNG, r, "clock"))
	var accept []float64
	if opt.Sampling == SamplingRejection {
		accept = st.accept(g)
	}
	st.sampler.reset(&st.router, opt.Sampling, opt.MaxAttempts, accept)
	e := &st.geo
	*e = geoRun{
		g:       g,
		x:       x,
		h:       &st.h,
		sampler: &st.sampler,
		sample:  st.stream(&st.sampleRNG, r, "sample"),
		rec:     opt.Recovery,
	}
	e.resync.reset(opt.Options, st, g.N())
	return e, nil
}

// step executes one clock tick: the owner samples a long-range partner,
// the pair averages, and the new value is routed back. Zero allocations
// in steady state.
func (e *geoRun) step() {
	h := e.h
	s := h.Tick()
	if !h.Alive(s) {
		e.resync.markDead(s, h)
		h.Sample()
		return
	}
	e.resync.onTick(s, e.g, h, e.x, e.sample)
	target, hops, _ := e.sampler.SampleFrom(s, e.sample)
	if ok, paid := h.Medium.DeliverRoute(h.Packet(s, target, hops)); !ok {
		// The outbound packet died partway along its route; charge the
		// partial cost.
		h.Counter.Add(sim.CatFar, paid)
		h.TraceLoss(s, target, paid)
	} else {
		// paid on success is the transport layer's extra airtime
		// (retransmissions, duplicates); zero without delay/arq.
		h.Counter.Add(sim.CatFar, hops+paid)
		// The exchange's one far event carries the total charge of its
		// delivered legs; lost legs are accounted by their loss events.
		total := hops + paid
		if target != s {
			back := h.Router.RouteToNode(target, s, e.rec)
			if ok, paid := h.Medium.DeliverRoute(h.Packet(target, s, back.Hops)); !ok {
				// Return leg lost: partial cost, no commit.
				h.Counter.Add(sim.CatFar, paid)
				h.TraceLoss(target, s, paid)
			} else {
				h.Counter.Add(sim.CatFar, back.Hops+paid)
				total += back.Hops + paid
				// Commit the pair atomically only when the round trip
				// completed, so a failed return route (possible only
				// on a disconnected instance) cannot break sum
				// preservation.
				if back.Delivered {
					avg := (e.x[s] + e.x[target]) / 2
					h.Tracker.Set(target, avg)
					h.Tracker.Set(s, avg)
				}
			}
		}
		h.Scope.FarExchange(total)
		h.Trace(trace.Event{Kind: trace.KindFar, Square: -1, NodeA: s, NodeB: target, Hops: total})
	}
	h.Sample()
}

// RunGeographic runs Dimakis-style geographic gossip: on each tick the
// owner samples a long-range partner, the pair averages, and the new
// value is routed back. x is mutated in place.
func RunGeographic(g *graph.Graph, x []float64, opt GeoOptions, r *rng.RNG) (*metrics.Result, error) {
	if g.N() != len(x) {
		return nil, fmt.Errorf("gossip: %d nodes but %d values", g.N(), len(x))
	}
	name := "geographic-" + opt.Sampling.String()
	if g.N() == 0 {
		return sim.EmptyResult(name), nil
	}
	if opt.Parallel.Enabled() {
		return nil, fmt.Errorf("gossip: Parallel is not supported by geographic gossip (routed exchanges are global)")
	}
	opt = opt.withDefaults()
	name = "geographic-" + opt.Sampling.String()
	e, err := newGeoRun(g, x, opt, r)
	if err != nil {
		return nil, err
	}
	for !e.h.Done() {
		e.step()
	}
	res := e.h.Finish(name)
	res.Resyncs = e.resync.count
	return res, nil
}
