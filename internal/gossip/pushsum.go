package gossip

import (
	"fmt"

	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// RunPushSum runs asynchronous push-sum averaging (Kempe–Dobra–Gehrke,
// FOCS 2003; surveyed as reference [8]/[9] in the paper's related work).
//
// Each node i maintains a pair (s_i, w_i), initialized to (x_i, 1); its
// estimate is s_i/w_i. On a clock tick the owner halves its pair and
// pushes one half to a uniformly random neighbour — a single one-way
// message per exchange, in contrast to the two-message pairwise
// averaging of RunBoyd. The invariants Σs = Σx(0) and Σw = n are
// preserved exactly, and every estimate converges to the true mean.
//
// Push-sum is included as a third baseline because the paper's related
// work leans on it; its transmission scaling on G(n, r) matches
// nearest-neighbour gossip (Õ(n²)) while halving the per-exchange cost.
//
// Fault model: a naive lossy push would permanently destroy mass, so
// faults use the mass-conservation bookkeeping of KDG §4 — a push that
// is not acknowledged is rolled back at the sender (equivalently, the
// sender retains the outbound half until an ack arrives and restores it
// on timeout). A lost push therefore pays its transmission but moves no
// mass: Σs and Σw over all nodes stay exact under arbitrary loss and
// churn, which is precisely the property the churn scenarios measure.
// Dead nodes freeze their pair and carry it back on revival.
func RunPushSum(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, error) {
	res, _, _, err := RunPushSumState(g, x, opt, r)
	return res, err
}

// RunPushSumState is RunPushSum, additionally returning the final mass
// vectors (s, w) so callers can check the conservation invariants
// Σs = Σx(0) and Σw = n directly (see PushSumMass).
func RunPushSumState(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, []float64, []float64, error) {
	if g.N() != len(x) {
		return nil, nil, nil, fmt.Errorf("gossip: %d nodes but %d values", g.N(), len(x))
	}
	if g.N() == 0 {
		return sim.EmptyResult("push-sum"), nil, nil, nil
	}
	// Push-sum needs no resync recovery: the mass-conservation invariants
	// already survive churn, so Options.Resync is ignored here.
	medium, err := opt.medium(g, r)
	if err != nil {
		return nil, nil, nil, err
	}
	n := g.N()
	s := append([]float64(nil), x...)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	// The error tracker runs on the estimates s/w, refreshed in place.
	est := make([]float64, n)
	copy(est, s)
	h := sim.NewHarness(est, sim.HarnessConfig{
		Stop:        opt.Stop,
		RecordEvery: opt.RecordEvery,
		Medium:      medium,
		Points:      g.Points(),
		Tracer:      opt.Tracer,
	}, r.Stream("clock"))
	pick := r.Stream("pick")

	for !h.Done() {
		i := h.Tick()
		if !h.Alive(i) {
			h.Sample()
			continue
		}
		deg := g.Degree(i)
		if deg > 0 {
			j := g.Neighbors(i)[pick.IntN(deg)]
			if ok, paid := h.Medium.DeliverHop(h.Packet(i, j, 1)); !ok {
				// Unacknowledged push: the sender rolls its halves back, so
				// no mass moves — only the transmission is paid.
				h.Counter.Add(sim.CatNear, paid)
				h.TraceLoss(i, j, paid)
			} else {
				s[i] /= 2
				w[i] /= 2
				s[j] += s[i]
				w[j] += w[i]
				h.Counter.Add(sim.CatNear, 1)
				h.Tracker.Set(i, s[i]/w[i])
				h.Tracker.Set(j, s[j]/w[j])
			}
		}
		h.Sample()
	}
	res := h.Finish("push-sum")
	// Expose the final estimates through x, matching the other runners'
	// contract that x converges toward the mean in place.
	copy(x, est)
	return res, s, w, nil
}

// PushSumMass returns the invariant totals Σs and Σw a push-sum run
// preserves; exposed for mass-conservation tests and the churn example.
func PushSumMass(s, w []float64) (sumS, sumW float64) {
	for _, v := range s {
		sumS += v
	}
	for _, v := range w {
		sumW += v
	}
	return sumS, sumW
}
