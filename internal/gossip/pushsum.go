package gossip

import (
	"fmt"

	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// RunPushSum runs asynchronous push-sum averaging (Kempe–Dobra–Gehrke,
// FOCS 2003; surveyed as reference [8]/[9] in the paper's related work).
//
// Each node i maintains a pair (s_i, w_i), initialized to (x_i, 1); its
// estimate is s_i/w_i. On a clock tick the owner halves its pair and
// pushes one half to a uniformly random neighbour — a single one-way
// message per exchange, in contrast to the two-message pairwise
// averaging of RunBoyd. The invariants Σs = Σx(0) and Σw = n are
// preserved exactly, and every estimate converges to the true mean.
//
// Push-sum is included as a third baseline because the paper's related
// work leans on it; its transmission scaling on G(n, r) matches
// nearest-neighbour gossip (Õ(n²)) while halving the per-exchange cost.
// Packet loss is NOT supported here: losing a one-way push permanently
// destroys mass, so Options.LossRate must be zero.
func RunPushSum(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, error) {
	if g.N() != len(x) {
		return nil, fmt.Errorf("gossip: %d nodes but %d values", g.N(), len(x))
	}
	if opt.LossRate != 0 {
		return nil, fmt.Errorf("gossip: push-sum does not support packet loss (mass would be destroyed)")
	}
	if g.N() == 0 {
		return emptyResult("push-sum"), nil
	}
	stop := opt.Stop.WithDefaults()
	clock := sim.NewClock(g.N(), r.Stream("clock"))
	pick := r.Stream("pick")
	n := g.N()

	s := append([]float64(nil), x...)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	// The error tracker runs on the estimates s/w, refreshed in place.
	est := make([]float64, n)
	copy(est, s)
	tracker := sim.NewErrTracker(est)
	var counter sim.Counter
	curve := &metrics.Curve{}
	every := opt.recordEvery(n)

	curve.Record(0, 0, tracker.Err())
	for !stop.Done(clock.Ticks(), tracker.Err()) {
		i := clock.Tick()
		deg := g.Degree(i)
		if deg > 0 {
			j := g.Neighbors(i)[pick.IntN(deg)]
			s[i] /= 2
			w[i] /= 2
			s[j] += s[i]
			w[j] += w[i]
			counter.Add(sim.CatNear, 1)
			tracker.Set(i, s[i]/w[i])
			tracker.Set(j, s[j]/w[j])
		}
		if clock.Ticks()%every == 0 {
			curve.Record(clock.Ticks(), counter.Total(), tracker.Err())
		}
	}
	res := finishResult("push-sum", n, stop, clock, tracker, &counter, curve)
	// Expose the final estimates through x, matching the other runners'
	// contract that x converges toward the mean in place.
	copy(x, est)
	return res, nil
}
