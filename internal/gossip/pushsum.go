package gossip

import (
	"fmt"

	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// RunPushSum runs asynchronous push-sum averaging (Kempe–Dobra–Gehrke,
// FOCS 2003; surveyed as reference [8]/[9] in the paper's related work).
//
// Each node i maintains a pair (s_i, w_i), initialized to (x_i, 1); its
// estimate is s_i/w_i. On a clock tick the owner halves its pair and
// pushes one half to a uniformly random neighbour — a single one-way
// message per exchange, in contrast to the two-message pairwise
// averaging of RunBoyd. The invariants Σs = Σx(0) and Σw = n are
// preserved exactly, and every estimate converges to the true mean.
//
// Push-sum is included as a third baseline because the paper's related
// work leans on it; its transmission scaling on G(n, r) matches
// nearest-neighbour gossip (Õ(n²)) while halving the per-exchange cost.
//
// Fault model: a naive lossy push would permanently destroy mass, so
// faults use the mass-conservation bookkeeping of KDG §4 — a push that
// is not acknowledged is rolled back at the sender (equivalently, the
// sender retains the outbound half until an ack arrives and restores it
// on timeout). A lost push therefore pays its transmission but moves no
// mass: Σs and Σw over all nodes stay exact under arbitrary loss and
// churn, which is precisely the property the churn scenarios measure.
// Dead nodes freeze their pair and carry it back on revival.
func RunPushSum(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, error) {
	res, _, err := runPushSum(g, x, opt, r)
	return res, err
}

// pushSumRun is the per-run state of the push-sum engine (see boydRun).
type pushSumRun struct {
	g    *graph.Graph
	h    *sim.Harness
	pick *rng.RNG
	s, w []float64
	est  []float64
}

func newPushSumRun(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*pushSumRun, error) {
	st := stateOf(opt)
	// Push-sum needs no resync recovery: the mass-conservation invariants
	// already survive churn, so Options.Resync is ignored here.
	medium, err := st.medium(opt, g, r)
	if err != nil {
		return nil, err
	}
	n := g.N()
	st.s = sim.GrowFloat(st.s, n)
	copy(st.s, x)
	st.w = sim.GrowFloat(st.w, n)
	for i := range st.w {
		st.w[i] = 1
	}
	// The error tracker runs on the estimates s/w, refreshed in place.
	st.est = sim.GrowFloat(st.est, n)
	copy(st.est, st.s)
	st.h.Reset(st.est, sim.HarnessConfig{
		Stop:        opt.Stop,
		RecordEvery: opt.RecordEvery,
		Medium:      medium,
		Points:      g.Points(),
		Tracer:      opt.Tracer,
		Obs:         opt.Obs,
		Timeline:    &st.tline,
	}, st.stream(&st.clockRNG, r, "clock"))
	e := &st.push
	*e = pushSumRun{
		g:    g,
		h:    &st.h,
		pick: st.stream(&st.pickRNG, r, "pick"),
		s:    st.s,
		w:    st.w,
		est:  st.est,
	}
	return e, nil
}

// step executes one clock tick: the owner halves its mass pair and pushes
// one half to a uniformly random neighbour. Zero allocations in steady
// state.
func (e *pushSumRun) step() {
	h := e.h
	i := h.Tick()
	if !h.Alive(i) {
		h.Sample()
		return
	}
	deg := e.g.Degree(i)
	if deg > 0 {
		j := e.g.Neighbors(i)[e.pick.IntN(deg)]
		if ok, paid := h.Medium.DeliverHop(h.Packet(i, j, 1)); !ok {
			// Unacknowledged push: the sender rolls its halves back, so
			// no mass moves — only the transmission is paid.
			h.Counter.Add(sim.CatNear, paid)
			h.TraceLoss(i, j, paid)
		} else {
			e.s[i] /= 2
			e.w[i] /= 2
			e.s[j] += e.s[i]
			e.w[j] += e.w[i]
			// paid is the transport layer's extra airtime (retransmissions,
			// duplicates); zero without delay/arq.
			h.Counter.Add(sim.CatNear, 1+paid)
			h.Tracker.Set(i, e.s[i]/e.w[i])
			h.Tracker.Set(j, e.s[j]/e.w[j])
			h.Trace(trace.Event{Kind: trace.KindNear, Square: -1, NodeA: i, NodeB: j, Hops: 1 + paid})
		}
	}
	h.Sample()
}

// RunPushSumState is RunPushSum, additionally returning the final mass
// vectors (s, w) so callers can check the conservation invariants
// Σs = Σx(0) and Σw = n directly (see PushSumMass). The returned vectors
// are snapshots: safe to retain across later runs on a pooled state.
// RunPushSum skips the snapshots, so the sweep hot path pays nothing
// for them.
func RunPushSumState(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, []float64, []float64, error) {
	res, e, err := runPushSum(g, x, opt, r)
	if err != nil || e == nil {
		return res, nil, nil, err
	}
	return res, append([]float64(nil), e.s...), append([]float64(nil), e.w...), nil
}

// runPushSum executes the protocol and returns the live engine state (nil
// for the degenerate n = 0 run) alongside the result; callers that want
// the mass vectors snapshot them before the pooled state is reused.
func runPushSum(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, *pushSumRun, error) {
	if g.N() != len(x) {
		return nil, nil, fmt.Errorf("gossip: %d nodes but %d values", g.N(), len(x))
	}
	if g.N() == 0 {
		return sim.EmptyResult("push-sum"), nil, nil
	}
	if opt.Parallel.Enabled() {
		return runPushSumParallel(g, x, opt, r)
	}
	e, err := newPushSumRun(g, x, opt, r)
	if err != nil {
		return nil, nil, err
	}
	for !e.h.Done() {
		e.step()
	}
	res := e.h.Finish("push-sum")
	// Expose the final estimates through x, matching the other runners'
	// contract that x converges toward the mean in place.
	copy(x, e.est)
	return res, e, nil
}

// PushSumMass returns the invariant totals Σs and Σw a push-sum run
// preserves; exposed for mass-conservation tests and the churn example.
func PushSumMass(s, w []float64) (sumS, sumW float64) {
	for _, v := range s {
		sumS += v
	}
	for _, v := range w {
		sumW += v
	}
	return sumS, sumW
}
