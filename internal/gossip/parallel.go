package gossip

import (
	"fmt"

	"geogossip/internal/channel"
	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/par"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// Parallel configures deterministic sharded tick execution (DESIGN.md
// §9); it is sim.Parallel, shared with the async engine's sweep knob.
// The zero value disables it, leaving every engine on the serial
// draw-compatible schedule — the default-off rule that keeps all
// pre-existing fingerprints byte-identical.
//
// When enabled, the node set is partitioned into Shards contiguous
// ranges. Execution proceeds in block-synchronous rounds of one simulated
// time unit (n global ticks): within a block each shard issues one tick
// per owned node from its own pair of rng.Derive'd streams, applies
// exchanges whose partner lies in-shard immediately, and defers
// cross-shard exchanges to a queue; at the block barrier the queues and
// the shards' incremental error deltas are merged in fixed shard order.
// The schedule is therefore a pure function of (seed, n, Shards): Workers
// only decides which goroutine executes a shard, so a run is bit-identical
// to itself at every worker count (asserted by test at {1, 2, NumCPU}).
//
// The parallel schedule is a different — equally valid — interleaving of
// the same protocol than the serial one, so its results are not draw-
// compatible with serial runs; compare parallel runs only to parallel
// runs with the same shard count.
//
// Parallel mode requires the perfect medium: loss and churn draw from
// shared per-run streams whose draw order a sharded schedule cannot
// preserve, so combining Parallel with faults, Resync or a Tracer is
// rejected. Boyd and push-sum honour it; geographic gossip (whose routed
// exchanges are global by nature) rejects it.
type Parallel = sim.Parallel

// DefaultShards re-exports sim.DefaultShards for callers configuring
// gossip runs.
const DefaultShards = sim.DefaultShards

// parallelGate rejects option combinations the sharded schedule cannot
// execute deterministically.
func (o Options) parallelGate() error {
	if o.LossRate != 0 || !o.Faults.IsZero() {
		return fmt.Errorf("gossip: Parallel requires the perfect medium (no loss, jamming or churn)")
	}
	if o.Resync {
		return fmt.Errorf("gossip: Parallel cannot be combined with Resync")
	}
	if o.Tracer != nil {
		return fmt.Errorf("gossip: Parallel cannot be combined with a Tracer (event order is schedule-dependent)")
	}
	return nil
}

// tickShard is the per-shard state of the parallel scheduler: the owned
// node range, the shard's private clock/pick streams, the deferred
// cross-shard exchange queue, and the block-local accumulators that merge
// into the global tracker/counter at the barrier. All storage is pooled
// in the RunState, so steady-state blocks run at 0 allocs/op per shard.
type tickShard struct {
	lo, hi      int32
	clock, pick *rng.RNG
	// def holds deferred cross-shard exchanges as flattened (owner,
	// partner) pairs, applied in order at the block barrier.
	def []int32
	// Block-local accumulators, folded into the harness in shard order.
	dev2    float64
	updates int
	near    int
}

func (sh *tickShard) resetBlock() {
	sh.def = sh.def[:0]
	sh.dev2 = 0
	sh.updates = 0
	sh.near = 0
}

// bindShards prepares the pooled shard array for a run: S = min(Shards,
// n) contiguous ranges via par.Ranges, each with clock/pick streams
// reseeded from rng.Derive(DeriveString(seed, "pshard"), shard, role) —
// the derivation DESIGN.md §9 fixes.
func (st *RunState) bindShards(p Parallel, n int, r *rng.RNG) []tickShard {
	s := p.Shards
	if s > n {
		s = n
	}
	bounds := par.Ranges(n, s)
	if cap(st.shards) >= s {
		st.shards = st.shards[:s]
	} else {
		grown := make([]tickShard, s)
		copy(grown, st.shards) // keep pooled RNGs and queues
		st.shards = grown
	}
	base := rng.DeriveString(r.Seed(), "pshard")
	for i := range st.shards {
		sh := &st.shards[i]
		sh.lo, sh.hi = int32(bounds[i]), int32(bounds[i+1])
		clockSeed := rng.Derive(base, uint64(i), 0)
		pickSeed := rng.Derive(base, uint64(i), 1)
		if sh.clock == nil {
			sh.clock = rng.New(clockSeed)
		} else {
			sh.clock.Reseed(clockSeed)
		}
		if sh.pick == nil {
			sh.pick = rng.New(pickSeed)
		} else {
			sh.pick.Reseed(pickSeed)
		}
		sh.resetBlock()
	}
	return st.shards
}

// boydBlock executes one block of in-shard boyd ticks: size ticks, owners
// drawn from the shard clock, partners from the shard pick stream.
// In-shard pairwise averages commit immediately (both endpoints are owned,
// so writes never leave the shard's range); cross-shard pairs defer.
// Zero allocations in steady state.
func (sh *tickShard) boydBlock(g *graph.Graph, x []float64, mean float64) {
	size := int(sh.hi - sh.lo)
	for t := 0; t < size; t++ {
		s := sh.lo + int32(sh.clock.IntN(size))
		deg := g.Degree(s)
		if deg == 0 {
			continue
		}
		v := g.Neighbors(s)[sh.pick.IntN(deg)]
		if v >= sh.lo && v < sh.hi {
			avg := (x[s] + x[v]) / 2
			dA, dB, dN := x[s]-mean, x[v]-mean, avg-mean
			sh.dev2 += 2*dN*dN - dA*dA - dB*dB
			x[s], x[v] = avg, avg
			sh.updates += 2
			sh.near += 2
		} else {
			sh.def = append(sh.def, s, v)
		}
	}
}

// pushSumBlock is boydBlock for push-sum: in-shard pushes move mass and
// refresh both estimates immediately; cross-shard pushes defer, the
// sender keeping its full pair until the barrier (the deterministic
// analogue of an in-flight message). Zero allocations in steady state.
func (sh *tickShard) pushSumBlock(g *graph.Graph, s, w, est []float64, mean float64) {
	size := int(sh.hi - sh.lo)
	for t := 0; t < size; t++ {
		i := sh.lo + int32(sh.clock.IntN(size))
		deg := g.Degree(i)
		if deg == 0 {
			continue
		}
		j := g.Neighbors(i)[sh.pick.IntN(deg)]
		if j >= sh.lo && j < sh.hi {
			s[i] /= 2
			w[i] /= 2
			s[j] += s[i]
			w[j] += w[i]
			oi, oj := est[i], est[j]
			ni, nj := s[i]/w[i], s[j]/w[j]
			est[i], est[j] = ni, nj
			dOi, dOj := oi-mean, oj-mean
			dNi, dNj := ni-mean, nj-mean
			sh.dev2 += dNi*dNi - dOi*dOi + dNj*dNj - dOj*dOj
			sh.updates += 2
			sh.near++
		} else {
			sh.def = append(sh.def, i, j)
		}
	}
}

// runBoydParallel is RunBoyd on the deterministic sharded schedule.
func runBoydParallel(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, error) {
	if err := opt.parallelGate(); err != nil {
		return nil, err
	}
	p := opt.Parallel.WithDefaults()
	st := stateOf(opt)
	st.h.Reset(x, sim.HarnessConfig{
		Stop:        opt.Stop,
		RecordEvery: opt.RecordEvery,
		Medium:      channel.Perfect{},
		Points:      g.Points(),
		Obs:         opt.Obs,
	}, st.stream(&st.clockRNG, r, "clock"))
	h := &st.h
	n := g.N()
	shards := st.bindShards(p, n, r)
	workers := p.Workers
	mean := h.Tracker.Mean()
	for !h.Done() {
		prev := h.Clock.Ticks()
		par.Do(workers, len(shards), func(si int) {
			shards[si].boydBlock(g, x, mean)
		})
		for si := range shards {
			sh := &shards[si]
			h.Counter.Add(sim.CatNear, sh.near)
			h.Tracker.ApplyExternal(sh.dev2, sh.updates)
			for k := 0; k < len(sh.def); k += 2 {
				a, b := sh.def[k], sh.def[k+1]
				avg := (x[a] + x[b]) / 2
				h.Tracker.Set(a, avg)
				h.Tracker.Set(b, avg)
				h.Counter.Add(sim.CatNear, 2)
			}
			sh.resetBlock()
		}
		h.Clock.Bump(uint64(n))
		h.BlockSample(prev)
	}
	return h.Finish("boyd"), nil
}

// runPushSumParallel is the push-sum engine on the sharded schedule. It
// returns the engine state like runPushSum so RunPushSumState can
// snapshot the mass vectors.
func runPushSumParallel(g *graph.Graph, x []float64, opt Options, r *rng.RNG) (*metrics.Result, *pushSumRun, error) {
	if err := opt.parallelGate(); err != nil {
		return nil, nil, err
	}
	p := opt.Parallel.WithDefaults()
	st := stateOf(opt)
	n := g.N()
	st.s = sim.GrowFloat(st.s, n)
	copy(st.s, x)
	st.w = sim.GrowFloat(st.w, n)
	for i := range st.w {
		st.w[i] = 1
	}
	st.est = sim.GrowFloat(st.est, n)
	copy(st.est, st.s)
	st.h.Reset(st.est, sim.HarnessConfig{
		Stop:        opt.Stop,
		RecordEvery: opt.RecordEvery,
		Medium:      channel.Perfect{},
		Points:      g.Points(),
		Obs:         opt.Obs,
	}, st.stream(&st.clockRNG, r, "clock"))
	h := &st.h
	e := &st.push
	*e = pushSumRun{g: g, h: h, s: st.s, w: st.w, est: st.est}
	shards := st.bindShards(p, n, r)
	workers := p.Workers
	mean := h.Tracker.Mean()
	for !h.Done() {
		prev := h.Clock.Ticks()
		par.Do(workers, len(shards), func(si int) {
			shards[si].pushSumBlock(g, e.s, e.w, e.est, mean)
		})
		for si := range shards {
			sh := &shards[si]
			h.Counter.Add(sim.CatNear, sh.near)
			h.Tracker.ApplyExternal(sh.dev2, sh.updates)
			for k := 0; k < len(sh.def); k += 2 {
				i, j := sh.def[k], sh.def[k+1]
				e.s[i] /= 2
				e.w[i] /= 2
				e.s[j] += e.s[i]
				e.w[j] += e.w[i]
				h.Tracker.Set(i, e.s[i]/e.w[i])
				h.Tracker.Set(j, e.s[j]/e.w[j])
				h.Counter.Add(sim.CatNear, 1)
			}
			sh.resetBlock()
		}
		h.Clock.Bump(uint64(n))
		h.BlockSample(prev)
	}
	res := e.h.Finish("push-sum")
	copy(x, e.est)
	return res, e, nil
}
