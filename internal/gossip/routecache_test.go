package gossip

import (
	"reflect"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

// TestRouteCacheDrawCompat verifies the routing determinism contract
// (DESIGN.md §6) end to end for the baseline engines: a run with route
// memoization enabled is bit-identical — transmissions, curve samples,
// final error bits — to the same run with every route recomputed.
// Routing consumes no randomness, so the cache cannot perturb draws.
func TestRouteCacheDrawCompat(t *testing.T) {
	g, err := graph.Generate(256, 1.5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, g.N())
	r := rng.New(4)
	for i := range base {
		base[i] = r.NormFloat64()
	}
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 400_000}

	run := func(t *testing.T, name string, fn func(routes *routing.Cache, x []float64) (*metrics.Result, []float64)) {
		t.Run(name, func(t *testing.T) {
			xCached := append([]float64(nil), base...)
			xPlain := append([]float64(nil), base...)
			cached, xc := fn(routing.NewCache(), xCached)
			plain, xp := fn(routing.NoCache(), xPlain)
			if !reflect.DeepEqual(cached, plain) {
				t.Errorf("results diverge:\ncached: %+v\nuncached: %+v", cached, plain)
			}
			if !reflect.DeepEqual(xc, xp) {
				t.Error("final value vectors diverge between cached and uncached routing")
			}
		})
	}

	run(t, "boyd", func(routes *routing.Cache, x []float64) (*metrics.Result, []float64) {
		res, err := RunBoyd(g, x, Options{Stop: stop, LossRate: 0.1, Routes: routes}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return res, x
	})
	run(t, "push-sum", func(routes *routing.Cache, x []float64) (*metrics.Result, []float64) {
		res, err := RunPushSum(g, x, Options{Stop: stop, LossRate: 0.1, Routes: routes}, rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		return res, x
	})
	run(t, "geographic-rejection", func(routes *routing.Cache, x []float64) (*metrics.Result, []float64) {
		res, err := RunGeographic(g, x, GeoOptions{
			Options:  Options{Stop: stop, LossRate: 0.1, Routes: routes},
			Sampling: SamplingRejection,
		}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return res, x
	})
	run(t, "geographic-uniform", func(routes *routing.Cache, x []float64) (*metrics.Result, []float64) {
		res, err := RunGeographic(g, x, GeoOptions{
			Options:  Options{Stop: stop, Routes: routes},
			Sampling: SamplingUniformNode,
		}, rng.New(8))
		if err != nil {
			t.Fatal(err)
		}
		return res, x
	})
}
