package gossip

import (
	"math"
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

func parseSpec(t *testing.T, text string) channel.Spec {
	t.Helper()
	spec, err := channel.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestBoydResyncFiresOnRevival(t *testing.T) {
	g := generate(t, 150, 2.0, 500)
	x0 := randomValues(g.N(), 501)
	run := func(resync bool) (*resultStats, []float64) {
		x := append([]float64(nil), x0...)
		res, err := RunBoyd(g, x, Options{
			Stop:   sim.StopRule{TargetErr: 1e-3, MaxTicks: 300_000},
			Faults: parseSpec(t, "churn:2000/1000"),
			Resync: resync,
		}, rng.New(502))
		if err != nil {
			t.Fatal(err)
		}
		return &resultStats{resyncs: res.Resyncs, finalErr: res.FinalErr}, x
	}
	withR, x := run(true)
	if withR.resyncs == 0 {
		t.Fatal("no resyncs despite revival churn")
	}
	if math.IsNaN(withR.finalErr) || math.IsInf(withR.finalErr, 0) {
		t.Fatalf("resync run produced invalid error %v", withR.finalErr)
	}
	// Resync trades exact sum preservation for local recovery; the drift
	// it introduces must stay small relative to the initial spread.
	drift := math.Abs(meanOf(x) - meanOf(x0))
	var spread float64
	m := meanOf(x0)
	for _, v := range x0 {
		spread += (v - m) * (v - m)
	}
	spread = math.Sqrt(spread / float64(len(x0)))
	if drift > spread/2 {
		t.Fatalf("resync drift %v exceeds half the initial spread %v", drift, spread)
	}
	without, _ := run(false)
	if without.resyncs != 0 {
		t.Fatal("resyncs fired with Resync disabled")
	}
}

type resultStats struct {
	resyncs  uint64
	finalErr float64
}

func TestHubChurnKillsOnlyHubs(t *testing.T) {
	g := generate(t, 200, 2.0, 503)
	x := randomValues(g.N(), 504)
	res, err := RunBoyd(g, x, Options{
		Stop:   sim.StopRule{TargetErr: 1e-9, MaxTicks: 200_000}, // run to the tick cap
		Faults: parseSpec(t, "hubchurn:1000/0/15"),
	}, rng.New(505))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive == nil {
		t.Fatal("no liveness mask despite crash-stop hub churn")
	}
	hubs := g.ByDegreeDesc()[:15]
	isHub := make(map[int32]bool, 15)
	dead := 0
	for _, h := range hubs {
		isHub[h] = true
	}
	for i, alive := range res.Alive {
		if !alive {
			dead++
			if !isHub[int32(i)] {
				t.Fatalf("non-hub node %d died under hub-targeted churn", i)
			}
		}
	}
	if dead == 0 {
		t.Fatal("no hub died in 200 mean lifetimes")
	}
}

func TestRepChurnRejectedWithoutHierarchy(t *testing.T) {
	g := generate(t, 64, 2.5, 506)
	x := randomValues(g.N(), 507)
	if _, err := RunBoyd(g, x, Options{Faults: parseSpec(t, "repchurn:1000/0")}, rng.New(1)); err == nil {
		t.Fatal("boyd accepted rep-targeted churn without a hierarchy")
	}
	if _, err := RunGeographic(g, x, GeoOptions{Options: Options{Faults: parseSpec(t, "repchurn:1000/0")}}, rng.New(1)); err == nil {
		t.Fatal("geographic accepted rep-targeted churn without a hierarchy")
	}
}

func TestGeographicDegradesInsideJammingDisk(t *testing.T) {
	g := generate(t, 250, 2.0, 508)
	run := func(spec string) uint64 {
		x := randomValues(g.N(), 509)
		res, err := RunGeographic(g, x, GeoOptions{Options: Options{
			Stop:   sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000},
			Faults: parseSpec(t, spec),
		}}, rng.New(510))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s run did not converge", spec)
		}
		return res.Transmissions
	}
	clean := run("perfect")
	jammed := run("jam:0.5/0.5/0.2/0.8")
	if jammed <= clean {
		t.Fatalf("jamming disk did not inflate cost: %d <= %d", jammed, clean)
	}
}

func TestBoydSurvivesPartitionHeal(t *testing.T) {
	g := generate(t, 200, 2.0, 511)
	x := randomValues(g.N(), 512)
	mean := meanOf(x)
	res, err := RunBoyd(g, x, Options{
		Stop:   sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000},
		Faults: parseSpec(t, "cut:1/0/0.5/0/100000"),
	}, rng.New(513))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("partition/heal run did not converge: err=%v", res.FinalErr)
	}
	// The deterministic cut drops packets without touching values, so the
	// sum invariant survives exactly.
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted across the partition: %v -> %v", mean, meanOf(x))
	}
	if res.Ticks < 100_000 {
		t.Fatalf("run converged inside the partition window (%d ticks)", res.Ticks)
	}
}
