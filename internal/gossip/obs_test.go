package gossip

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"geogossip/internal/metrics"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// instrumented bundles the observers a fully-wired run carries.
type instrumented struct {
	reg *obs.Registry
	buf bytes.Buffer
}

func (in *instrumented) options(engine string, opt Options) Options {
	opt.Tracer = &trace.JSONL{W: &in.buf}
	opt.Obs = in.reg.Scope(engine)
	return opt
}

// TestInstrumentedPooledBitIdentical is the observability variant of
// TestPooledStateBitIdentical: with a JSONL tracer AND a live metrics
// registry attached, a pooled RunState shared across engines and fault
// configs must still produce bit-identical results, byte-identical
// traces, and identical metric flushes to fresh state. This is the
// stats-reset hygiene check — any counter or trace state leaking across
// runs through the pool shows up here.
func TestInstrumentedPooledBitIdentical(t *testing.T) {
	g := generate(t, 400, 2.0, 900)
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000}
	pooled := NewRunState()

	type runner struct {
		name string
		run  func(opt Options, r *rng.RNG) (*metrics.Result, error)
	}
	runners := []runner{
		{"boyd", func(opt Options, r *rng.RNG) (*metrics.Result, error) {
			return RunBoyd(g, randomValues(g.N(), 901), opt, r)
		}},
		{"geographic", func(opt Options, r *rng.RNG) (*metrics.Result, error) {
			return RunGeographic(g, randomValues(g.N(), 902), GeoOptions{Options: opt, Sampling: SamplingRejection}, r)
		}},
		{"push-sum", func(opt Options, r *rng.RNG) (*metrics.Result, error) {
			return RunPushSum(g, randomValues(g.N(), 903), opt, r)
		}},
	}

	for _, cfg := range stateConfigs {
		for _, rn := range runners {
			label := fmt.Sprintf("%s/%s", rn.name, cfg.name)
			base := Options{Stop: stop, Faults: parseSpec(t, cfg.faults), Resync: cfg.resync}

			freshObs := &instrumented{reg: obs.NewRegistry()}
			fresh, err := rn.run(freshObs.options(rn.name, base), rng.New(905))
			if err != nil {
				t.Fatalf("%s: fresh: %v", label, err)
			}

			pooledOpt := base
			pooledOpt.State = pooled
			pooledObs := &instrumented{reg: obs.NewRegistry()}
			got, err := rn.run(pooledObs.options(rn.name, pooledOpt), rng.New(905))
			if err != nil {
				t.Fatalf("%s: pooled: %v", label, err)
			}

			sameResult(t, label, fresh, got)
			if !bytes.Equal(freshObs.buf.Bytes(), pooledObs.buf.Bytes()) {
				t.Fatalf("%s: pooled trace diverged from fresh (%d vs %d bytes)",
					label, freshObs.buf.Len(), pooledObs.buf.Len())
			}
			if f, p := freshObs.reg.Flatten(), pooledObs.reg.Flatten(); !reflect.DeepEqual(f, p) {
				t.Fatalf("%s: pooled metrics diverged:\nfresh:  %v\npooled: %v", label, f, p)
			}
		}
	}
}

// TestInstrumentedRunMatchesBare: attaching a registry must not change
// the result at all — observation is passive.
func TestInstrumentedRunMatchesBare(t *testing.T) {
	g := generate(t, 400, 2.0, 930)
	opt := Options{
		Stop:   sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000},
		Faults: parseSpec(t, "bernoulli:0.2"),
	}
	bare, err := RunBoyd(g, randomValues(g.N(), 931), opt, rng.New(932))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	wired := opt
	wired.Obs = reg.Scope("boyd")
	instr, err := RunBoyd(g, randomValues(g.N(), 931), wired, rng.New(932))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "boyd/bernoulli", bare, instr)

	// And the flush agrees with the result counters.
	flat := reg.Flatten()
	checks := map[string]uint64{
		`geogossip_transmissions_total{category="near",engine="boyd"}`: instr.TransmissionsByCategory["near"],
		`geogossip_ticks_total{engine="boyd"}`:                         instr.Ticks,
		`geogossip_runs_total{engine="boyd"}`:                          1,
	}
	for k, want := range checks {
		if flat[k] != float64(want) {
			t.Errorf("%s = %v, want %d", k, flat[k], want)
		}
	}
}

// TestSteadyStateTicksAllocFreeInstrumented repeats the steady-state
// zero-alloc assertion with a live registry scope attached: metric
// reporting is pure atomics, so instrumentation must not buy back the
// allocations the pooled states eliminated.
func TestSteadyStateTicksAllocFreeInstrumented(t *testing.T) {
	g := generate(t, 512, 1.8, 920)
	reg := obs.NewRegistry()
	opt := Options{
		Stop:        sim.StopRule{MaxTicks: math.MaxUint64 >> 1},
		RecordEvery: math.MaxUint64 >> 1,
		Faults:      parseSpec(t, "bernoulli:0.2"),
		State:       NewRunState(),
		Obs:         reg.Scope("boyd"),
	}

	x := randomValues(g.N(), 921)
	boyd, err := newBoydRun(g, x, opt, rng.New(922))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		boyd.step()
	}
	if avg := testing.AllocsPerRun(500, boyd.step); avg != 0 {
		t.Errorf("boyd: %v allocs per instrumented steady-state tick, want 0", avg)
	}

	x = randomValues(g.N(), 923)
	geoOpt := GeoOptions{Options: opt, Sampling: SamplingRejection}
	geoOpt.State = NewRunState()
	geoOpt.Obs = reg.Scope("geographic")
	geo, err := newGeoRun(g, x, geoOpt.withDefaults(), rng.New(924))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		geo.step()
	}
	if avg := testing.AllocsPerRun(500, geo.step); avg != 0 {
		t.Errorf("geographic: %v allocs per instrumented steady-state tick, want 0", avg)
	}

	x = randomValues(g.N(), 925)
	pushOpt := opt
	pushOpt.State = NewRunState()
	pushOpt.Obs = reg.Scope("push-sum")
	push, err := newPushSumRun(g, x, pushOpt, rng.New(926))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		push.step()
	}
	if avg := testing.AllocsPerRun(500, push.step); avg != 0 {
		t.Errorf("push-sum: %v allocs per instrumented steady-state tick, want 0", avg)
	}
}
