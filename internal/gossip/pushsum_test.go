package gossip

import (
	"math"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

func TestPushSumConverges(t *testing.T) {
	g := generate(t, 300, 2.0, 430)
	x := randomValues(g.N(), 431)
	mean := meanOf(x)
	res, err := RunPushSum(g, x, Options{
		Stop: sim.StopRule{TargetErr: 1e-3, MaxTicks: 5_000_000},
	}, rng.New(432))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("push-sum did not converge: %v", res)
	}
	for i, v := range x {
		if math.Abs(v-mean) > 0.05 {
			t.Fatalf("node %d estimate %v far from mean %v", i, v, mean)
		}
	}
}

func TestPushSumOneMessagePerExchange(t *testing.T) {
	g := generate(t, 200, 2.0, 433)
	x := randomValues(g.N(), 434)
	res, err := RunPushSum(g, x, Options{
		Stop: sim.StopRule{MaxTicks: 10_000},
	}, rng.New(435))
	if err != nil {
		t.Fatal(err)
	}
	// Every tick of a connected node sends exactly one message.
	if res.Transmissions == 0 || res.Transmissions > res.Ticks {
		t.Fatalf("transmissions %d vs ticks %d", res.Transmissions, res.Ticks)
	}
}

func TestPushSumCheaperPerTickThanBoyd(t *testing.T) {
	g := generate(t, 300, 2.0, 436)
	xP := randomValues(g.N(), 437)
	xB := append([]float64(nil), xP...)
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 5_000_000}
	rp, err := RunPushSum(g, xP, Options{Stop: stop}, rng.New(438))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunBoyd(g, xB, Options{Stop: stop}, rng.New(438))
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Converged || !rb.Converged {
		t.Fatalf("convergence: push=%v boyd=%v", rp.Converged, rb.Converged)
	}
	perTickPush := float64(rp.Transmissions) / float64(rp.Ticks)
	perTickBoyd := float64(rb.Transmissions) / float64(rb.Ticks)
	if perTickPush >= perTickBoyd {
		t.Fatalf("push-sum %v tx/tick not below boyd %v", perTickPush, perTickBoyd)
	}
}

func TestPushSumMassInvariants(t *testing.T) {
	// Σs and Σw are invariant; the final estimates' weighted sum matches
	// the initial sum. Verified indirectly: estimates converge to the
	// exact mean, not merely to consensus.
	g := generate(t, 200, 2.0, 439)
	x := randomValues(g.N(), 440)
	mean := meanOf(x)
	if _, err := RunPushSum(g, x, Options{
		Stop: sim.StopRule{TargetErr: 1e-6, MaxTicks: 20_000_000},
	}, rng.New(441)); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if math.Abs(v-mean) > 1e-4 {
			t.Fatalf("node %d estimate %v, true mean %v — mass not conserved", i, v, mean)
		}
	}
}

func TestPushSumConservesMassUnderLoss(t *testing.T) {
	// A lost push is rolled back at the sender (KDG mass-conservation
	// bookkeeping), so Σs = Σx(0) and Σw = n stay exact under arbitrary
	// i.i.d. loss and the estimates still converge to the true mean.
	g := generate(t, 200, 2.0, 442)
	x := randomValues(g.N(), 443)
	mean := meanOf(x)
	sum0 := mean * float64(g.N())
	res, s, w, err := RunPushSumState(g, x, Options{
		Stop:     sim.StopRule{TargetErr: 1e-3, MaxTicks: 10_000_000},
		LossRate: 0.3,
	}, rng.New(444))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("push-sum with 30%% loss did not converge: %v", res)
	}
	sumS, sumW := PushSumMass(s, w)
	if math.Abs(sumS-sum0) > 1e-9*(math.Abs(sum0)+1) {
		t.Fatalf("Σs drifted under loss: %v -> %v", sum0, sumS)
	}
	if math.Abs(sumW-float64(g.N())) > 1e-9 {
		t.Fatalf("Σw drifted under loss: %v -> %v", g.N(), sumW)
	}
	for i, v := range x {
		if math.Abs(v-mean) > 0.05 {
			t.Fatalf("node %d estimate %v far from mean %v", i, v, mean)
		}
	}
}

func TestPushSumValidation(t *testing.T) {
	g := generate(t, 50, 2.5, 443)
	if _, err := RunPushSum(g, make([]float64, 3), Options{}, rng.New(1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	empty, err := graph.Build(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPushSum(empty, nil, Options{}, rng.New(1))
	if err != nil || !res.Converged {
		t.Fatalf("empty run: %v, %v", res, err)
	}
}

func TestPushSumDeterministic(t *testing.T) {
	g := generate(t, 150, 2.0, 444)
	run := func() uint64 {
		x := randomValues(g.N(), 445)
		res, err := RunPushSum(g, x, Options{
			Stop: sim.StopRule{TargetErr: 1e-2, MaxTicks: 2_000_000},
		}, rng.New(446))
		if err != nil {
			t.Fatal(err)
		}
		return res.Transmissions
	}
	if run() != run() {
		t.Fatal("push-sum not deterministic")
	}
}
