package gossip

import (
	"math"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

func generate(t *testing.T, n int, c float64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.Generate(n, c, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Skipf("seed %d produced a disconnected instance", seed)
	}
	return g
}

func randomValues(n int, seed uint64) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func meanOf(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func TestRunBoydConverges(t *testing.T) {
	g := generate(t, 300, 2.0, 80)
	x := randomValues(g.N(), 81)
	mean := meanOf(x)
	res, err := RunBoyd(g, x, Options{Stop: sim.StopRule{TargetErr: 1e-3, MaxTicks: 2_000_000}}, rng.New(82))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %v", res)
	}
	for i, v := range x {
		if math.Abs(v-mean) > 0.05 {
			t.Fatalf("node %d value %v far from mean %v", i, v, mean)
		}
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted: %v -> %v", mean, meanOf(x))
	}
	if res.Transmissions == 0 || res.Transmissions != res.TransmissionsByCategory["near"] {
		t.Fatalf("boyd should only use near transmissions: %v", res.TransmissionsByCategory)
	}
	if err := res.Curve.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunBoydSizeMismatch(t *testing.T) {
	g := generate(t, 50, 2.0, 83)
	if _, err := RunBoyd(g, make([]float64, 10), Options{}, rng.New(1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRunBoydEmpty(t *testing.T) {
	g, err := graph.Build(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBoyd(g, nil, Options{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Transmissions != 0 {
		t.Fatalf("empty run: %v", res)
	}
}

func TestRunBoydDeterministic(t *testing.T) {
	g := generate(t, 200, 2.0, 84)
	run := func() *metrics.Result {
		x := randomValues(g.N(), 85)
		res, err := RunBoyd(g, x, Options{Stop: sim.StopRule{TargetErr: 1e-2, MaxTicks: 500_000}}, rng.New(86))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transmissions != b.Transmissions || a.Ticks != b.Ticks || a.FinalErr != b.FinalErr {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestRunBoydRespectsMaxTicks(t *testing.T) {
	g := generate(t, 100, 2.0, 87)
	x := randomValues(g.N(), 88)
	res, err := RunBoyd(g, x, Options{Stop: sim.StopRule{TargetErr: 1e-12, MaxTicks: 1000}}, rng.New(89))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 1000 {
		t.Fatalf("ticks = %d, want 1000", res.Ticks)
	}
	if res.Converged {
		t.Fatal("cannot converge to 1e-12 in 1000 ticks")
	}
}

func TestRunGeographicConvergesBothSamplings(t *testing.T) {
	for _, mode := range []Sampling{SamplingRejection, SamplingUniformNode} {
		t.Run(mode.String(), func(t *testing.T) {
			g := generate(t, 300, 2.0, 90)
			x := randomValues(g.N(), 91)
			mean := meanOf(x)
			res, err := RunGeographic(g, x, GeoOptions{
				Options:  Options{Stop: sim.StopRule{TargetErr: 1e-3, MaxTicks: 200_000}},
				Sampling: mode,
			}, rng.New(92))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge: %v", res)
			}
			if math.Abs(meanOf(x)-mean) > 1e-9 {
				t.Fatalf("mean drifted: %v -> %v", mean, meanOf(x))
			}
			if res.TransmissionsByCategory["far"] == 0 {
				t.Fatal("geographic gossip used no far transmissions")
			}
			if res.TransmissionsByCategory["near"] != 0 {
				t.Fatal("geographic gossip should not use near category")
			}
		})
	}
}

func TestGeographicBeatsBoydOnTransmissions(t *testing.T) {
	// The headline ordering: geographic gossip needs fewer transmissions
	// than nearest-neighbour gossip for the same target. Instance-to-
	// instance cost varies by ~3x, so compare totals over several seeds at
	// a size beyond the crossover (the full sweep is experiment E1).
	if testing.Short() {
		t.Skip("multi-seed comparison is slow")
	}
	const target = 1e-2
	var totalBoyd, totalGeo uint64
	for seed := uint64(1); seed <= 3; seed++ {
		g := generate(t, 2000, 1.5, seed)
		xB := randomValues(g.N(), seed+10)
		xG := append([]float64(nil), xB...)
		resB, err := RunBoyd(g, xB, Options{Stop: sim.StopRule{TargetErr: target, MaxTicks: 100_000_000}}, rng.New(seed+20))
		if err != nil {
			t.Fatal(err)
		}
		resG, err := RunGeographic(g, xG, GeoOptions{
			Options:  Options{Stop: sim.StopRule{TargetErr: target, MaxTicks: 100_000_000}},
			Sampling: SamplingUniformNode,
		}, rng.New(seed+30))
		if err != nil {
			t.Fatal(err)
		}
		if !resB.Converged || !resG.Converged {
			t.Fatalf("convergence failed: boyd=%v geo=%v", resB, resG)
		}
		totalBoyd += resB.Transmissions
		totalGeo += resG.Transmissions
	}
	if totalGeo >= totalBoyd {
		t.Fatalf("geographic (%d) not cheaper than boyd (%d) over 3 seeds", totalGeo, totalBoyd)
	}
}

func TestSamplerUniformNodeExact(t *testing.T) {
	g := generate(t, 200, 2.0, 97)
	ts := NewTargetSampler(g, SamplingUniformNode, 0)
	r := rng.New(98)
	counts := make([]int, g.N())
	const trials = 20000
	for i := 0; i < trials; i++ {
		target, _, attempts := ts.SampleFrom(0, r)
		if attempts != 1 {
			t.Fatalf("uniform sampling used %d attempts", attempts)
		}
		if target == 0 {
			t.Fatal("uniform sampling returned the source")
		}
		counts[target]++
	}
	// Each non-source node has expectation trials/(n-1) ≈ 100.
	want := float64(trials) / float64(g.N()-1)
	for i := 1; i < g.N(); i++ {
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("node %d sampled %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestSamplerRejectionImprovesUniformity(t *testing.T) {
	// TV distance to uniform should be smaller with rejection than with
	// plain accept-first-node sampling (MaxAttempts=1).
	g := generate(t, 300, 1.6, 99)
	tv := func(maxAttempts int) float64 {
		ts := NewTargetSampler(g, SamplingRejection, maxAttempts)
		r := rng.New(100)
		src := rng.New(101)
		counts := make([]float64, g.N())
		const trials = 60000
		for i := 0; i < trials; i++ {
			s := int32(src.IntN(g.N()))
			target, _, _ := ts.SampleFrom(s, r)
			counts[target]++
		}
		var tvDist float64
		u := 1.0 / float64(g.N())
		for _, c := range counts {
			tvDist += math.Abs(c/trials - u)
		}
		return tvDist / 2
	}
	plain := tv(1)
	rejected := tv(10)
	if rejected >= plain {
		t.Fatalf("rejection TV %v not better than plain TV %v", rejected, plain)
	}
}

func TestSamplerRejectionHopsPositive(t *testing.T) {
	g := generate(t, 200, 2.0, 102)
	ts := NewTargetSampler(g, SamplingRejection, 10)
	r := rng.New(103)
	sawHops := false
	for i := 0; i < 100; i++ {
		_, hops, attempts := ts.SampleFrom(0, r)
		if hops > 0 {
			sawHops = true
		}
		if attempts < 1 || attempts > 10 {
			t.Fatalf("attempts = %d", attempts)
		}
	}
	if !sawHops {
		t.Fatal("rejection sampling never spent a hop")
	}
}

func TestSamplerSmallGraphs(t *testing.T) {
	// n=1: uniform sampling returns the source.
	pts := graph.UniformPoints(1, rng.New(104))
	g, err := graph.Build(pts, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTargetSampler(g, SamplingUniformNode, 0)
	target, hops, _ := ts.SampleFrom(0, rng.New(105))
	if target != 0 || hops != 0 {
		t.Fatalf("singleton sample = (%d, %d)", target, hops)
	}
}

func TestSamplingString(t *testing.T) {
	if SamplingRejection.String() != "rejection" ||
		SamplingUniformNode.String() != "uniform-node" {
		t.Fatal("sampling names wrong")
	}
	if Sampling(9).String() != "sampling(9)" {
		t.Fatalf("unknown sampling name: %s", Sampling(9))
	}
}

func TestRunGeographicDefaults(t *testing.T) {
	g := generate(t, 100, 2.0, 106)
	x := randomValues(g.N(), 107)
	res, err := RunGeographic(g, x, GeoOptions{
		Options: Options{Stop: sim.StopRule{TargetErr: 0.5, MaxTicks: 50_000}},
	}, rng.New(108))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "geographic-rejection" {
		t.Fatalf("default algorithm name = %q", res.Algorithm)
	}
}

func TestRunGeographicSizeMismatch(t *testing.T) {
	g := generate(t, 50, 2.0, 109)
	if _, err := RunGeographic(g, make([]float64, 3), GeoOptions{}, rng.New(1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestCurvesRecordProgress(t *testing.T) {
	g := generate(t, 200, 2.0, 110)
	x := randomValues(g.N(), 111)
	res, err := RunBoyd(g, x, Options{
		Stop:        sim.StopRule{TargetErr: 1e-3, MaxTicks: 2_000_000},
		RecordEvery: 100,
	}, rng.New(112))
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() < 10 {
		t.Fatalf("curve has only %d samples", res.Curve.Len())
	}
	first := res.Curve.Samples[0]
	last, _ := res.Curve.Last()
	if first.Err <= last.Err {
		t.Fatalf("no error decrease recorded: %v -> %v", first.Err, last.Err)
	}
}
