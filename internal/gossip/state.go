package gossip

import (
	"geogossip/internal/channel"
	"geogossip/internal/graph"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

// RunState is the reusable per-run mutable state of the baseline engines
// (boyd, geographic, push-sum): the simulation harness, the radio-channel
// pool, the named RNG streams, and every per-node scratch slice a run
// needs. A fresh zero RunState is valid; passing one through
// Options.State and reusing it across runs turns the per-run state cost
// into O(1) allocations per (state, network) pair — the sweep engine
// keeps one per worker. Reuse is draw- and result-identical to fresh
// state by construction (reseeded streams, memclr'd slices, pooled
// channels); the bit-identity tests assert it engine by engine.
//
// A RunState serves one run at a time (single-goroutine, like the
// engines). Results returned from runs on a pooled state are safe to
// retain: everything that escapes into a Result is snapshotted at Finish.
type RunState struct {
	h  sim.Harness
	ch channel.Pool
	// tline is the transport event clock (DESIGN.md §12), reset per run
	// before the medium is built so delay/arq wrappers can schedule
	// completions on it. Inactive (and cost-free) without transport
	// components in the fault spec.
	tline channel.Timeline

	// Named streams, reseeded per run via StreamInto.
	clockRNG, pickRNG, sampleRNG, lossRNG, churnRNG *rng.RNG

	// wasDead is the resync tracker's per-node flag slice.
	wasDead []bool

	// Geographic: the routing core and partner sampler. The rejection
	// acceptance table is a pure function of the graph, cached per bound
	// graph like the route scratch.
	router routing.Router
	// noCache is the state-owned disabled cache geographic runs default
	// to (see gossip.Options.Routes), reused across runs.
	noCache *routing.Cache
	sampler TargetSampler
	acceptG *graph.Graph
	acceptP []float64
	boyd    boydRun
	geo     geoRun
	push    pushSumRun

	// Push-sum mass vectors and the estimate slice the tracker runs on.
	s, w, est []float64

	// shards is the parallel tick scheduler's pooled shard array (clock
	// and pick streams, deferred-exchange queues); see parallel.go.
	shards []tickShard
}

// NewRunState returns an empty reusable run state.
func NewRunState() *RunState { return &RunState{} }

// ChannelBuilds reports how many radio channels this state's pool has
// served in place of fresh allocations (see channel.Pool.Builds).
func (st *RunState) ChannelBuilds() uint64 {
	if st == nil {
		return 0
	}
	return st.ch.Builds()
}

// stateOf returns the run state to use: the caller-supplied pooled one,
// or a fresh private state.
func stateOf(opt Options) *RunState {
	if opt.State != nil {
		return opt.State
	}
	return &RunState{}
}

// stream rebinds one named stream for a new run.
func (st *RunState) stream(slot **rng.RNG, r *rng.RNG, name string) *rng.RNG {
	*slot = r.StreamInto(*slot, name)
	return *slot
}

// medium builds the run's radio channel through the state's channel pool
// over the engine's deterministic streams (see Options.medium).
func (st *RunState) medium(o Options, g *graph.Graph, r *rng.RNG) (channel.Channel, error) {
	spec, err := o.faultSpec()
	if err != nil {
		return nil, err
	}
	st.tline.Reset(spec.HasTransport())
	env := channel.Env{Points: g.Points(), Timeline: &st.tline, Obs: o.Obs, Tracer: o.Tracer}
	if spec.TargetsHubs() {
		env.HubOrder = g.ByDegreeDesc()
	}
	return spec.BuildWith(&st.ch, g.N(), env,
		st.stream(&st.lossRNG, r, "loss"), st.stream(&st.churnRNG, r, "churn"))
}

// accept returns the rejection-sampling acceptance table for g, computed
// once per (state, graph) from the graph's cached Voronoi areas.
func (st *RunState) accept(g *graph.Graph) []float64 {
	if st.acceptG == g {
		return st.acceptP
	}
	st.acceptP = rejectionAccept(g, sim.GrowFloat(st.acceptP, g.N()))
	st.acceptG = g
	return st.acceptP
}
