package gossip

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/metrics"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// stateConfigs is the fault/recovery matrix the pooled-vs-fresh suite
// runs every baseline engine through.
var stateConfigs = []struct {
	name   string
	faults string
	resync bool
}{
	{name: "perfect"},
	{name: "bernoulli", faults: "bernoulli:0.2"},
	{name: "gilbert-elliott", faults: "ge:0.05/0.2/0.01/0.6"},
	{name: "churn", faults: "churn:40000/10000"},
	{name: "churn-resync", faults: "churn:40000/10000", resync: true},
	{name: "jam", faults: "jam:0.5/0.5/0.25/0.9"},
	{name: "jam-churn", faults: "jam:0.5/0.5/0.25/0.9+churn:40000/10000"},
}

// sameResult compares every deterministic field of two runs.
func sameResult(t *testing.T, label string, fresh, pooled *metrics.Result) {
	t.Helper()
	if fresh.Transmissions != pooled.Transmissions || fresh.Ticks != pooled.Ticks ||
		fresh.FinalErr != pooled.FinalErr || fresh.Converged != pooled.Converged ||
		fresh.Resyncs != pooled.Resyncs || fresh.Reelections != pooled.Reelections {
		t.Fatalf("%s: pooled run diverged:\nfresh:  %+v\npooled: %+v", label, fresh, pooled)
	}
	if !reflect.DeepEqual(fresh.TransmissionsByCategory, pooled.TransmissionsByCategory) {
		t.Fatalf("%s: breakdown diverged: %v vs %v", label, fresh.TransmissionsByCategory, pooled.TransmissionsByCategory)
	}
	if !reflect.DeepEqual(fresh.Curve.Samples, pooled.Curve.Samples) {
		t.Fatalf("%s: curve diverged (%d vs %d samples)", label, fresh.Curve.Len(), pooled.Curve.Len())
	}
	if !reflect.DeepEqual(fresh.Alive, pooled.Alive) {
		t.Fatalf("%s: liveness mask diverged", label)
	}
}

// TestPooledStateBitIdentical runs every baseline engine through the
// fault matrix twice — fresh private state vs one RunState shared across
// ALL the runs (cross-engine, cross-config, the sweep-worker usage) —
// and requires bit-identical results everywhere.
func TestPooledStateBitIdentical(t *testing.T) {
	g := generate(t, 400, 2.0, 900)
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000}
	pooled := NewRunState()

	type runner struct {
		name string
		run  func(opt Options, r *rng.RNG) (*metrics.Result, []float64, error)
	}
	runners := []runner{
		{"boyd", func(opt Options, r *rng.RNG) (*metrics.Result, []float64, error) {
			x := randomValues(g.N(), 901)
			res, err := RunBoyd(g, x, opt, r)
			return res, x, err
		}},
		{"geographic-rejection", func(opt Options, r *rng.RNG) (*metrics.Result, []float64, error) {
			x := randomValues(g.N(), 902)
			res, err := RunGeographic(g, x, GeoOptions{Options: opt, Sampling: SamplingRejection}, r)
			return res, x, err
		}},
		{"geographic-uniform", func(opt Options, r *rng.RNG) (*metrics.Result, []float64, error) {
			x := randomValues(g.N(), 903)
			res, err := RunGeographic(g, x, GeoOptions{Options: opt, Sampling: SamplingUniformNode}, r)
			return res, x, err
		}},
		{"push-sum", func(opt Options, r *rng.RNG) (*metrics.Result, []float64, error) {
			x := randomValues(g.N(), 904)
			res, err := RunPushSum(g, x, opt, r)
			return res, x, err
		}},
	}

	for _, cfg := range stateConfigs {
		for _, rn := range runners {
			label := fmt.Sprintf("%s/%s", rn.name, cfg.name)
			freshOpt := Options{Stop: stop, Faults: parseSpec(t, cfg.faults), Resync: cfg.resync}
			fresh, xFresh, err := rn.run(freshOpt, rng.New(905))
			if err != nil {
				t.Fatalf("%s: fresh: %v", label, err)
			}
			pooledOpt := freshOpt
			pooledOpt.State = pooled
			got, xPooled, err := rn.run(pooledOpt, rng.New(905))
			if err != nil {
				t.Fatalf("%s: pooled: %v", label, err)
			}
			sameResult(t, label, fresh, got)
			for i := range xFresh {
				if xFresh[i] != xPooled[i] {
					t.Fatalf("%s: value vector diverged at %d: %v vs %v", label, i, xFresh[i], xPooled[i])
				}
			}
		}
	}
}

// TestPooledStateSurvivesGraphChange rebinds one state across different
// graphs and checks results still match fresh state — the sweep worker
// crosses network builds constantly.
func TestPooledStateSurvivesGraphChange(t *testing.T) {
	gA := generate(t, 300, 2.0, 910)
	gB := generate(t, 500, 1.8, 911)
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000}
	pooled := NewRunState()
	for round := 0; round < 2; round++ {
		for _, tc := range []struct {
			g    *graph.Graph
			seed uint64
		}{{gA, 912}, {gB, 913}} {
			x1 := randomValues(tc.g.N(), tc.seed)
			x2 := randomValues(tc.g.N(), tc.seed)
			fresh, err := RunGeographic(tc.g, x1, GeoOptions{Options: Options{Stop: stop}}, rng.New(914))
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunGeographic(tc.g, x2, GeoOptions{Options: Options{Stop: stop, State: pooled}}, rng.New(914))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("round %d n=%d", round, tc.g.N()), fresh, got)
		}
	}
}

// TestSteadyStateTicksAllocFree drives the three baseline engines' tick
// bodies directly after warm-up and requires zero allocations per tick —
// the steady-state contract the pooled run states exist to provide.
func TestSteadyStateTicksAllocFree(t *testing.T) {
	g := generate(t, 512, 1.8, 920)
	media := []struct {
		name   string
		faults string
	}{
		{"perfect", ""},
		{"bernoulli", "bernoulli:0.2"},
	}
	for _, medium := range media {
		opt := Options{
			Stop:        sim.StopRule{MaxTicks: math.MaxUint64 >> 1},
			RecordEvery: math.MaxUint64 >> 1, // no curve sampling inside the window
			Faults:      parseSpec(t, medium.faults),
			State:       NewRunState(),
		}

		x := randomValues(g.N(), 921)
		boyd, err := newBoydRun(g, x, opt, rng.New(922))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			boyd.step()
		}
		if avg := testing.AllocsPerRun(500, boyd.step); avg != 0 {
			t.Errorf("boyd/%s: %v allocs per steady-state tick, want 0", medium.name, avg)
		}

		x = randomValues(g.N(), 923)
		geoOpt := GeoOptions{Options: opt, Sampling: SamplingRejection}
		geoOpt.State = NewRunState()
		geo, err := newGeoRun(g, x, geoOpt.withDefaults(), rng.New(924))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			geo.step()
		}
		if avg := testing.AllocsPerRun(500, geo.step); avg != 0 {
			t.Errorf("geographic/%s: %v allocs per steady-state tick, want 0", medium.name, avg)
		}

		x = randomValues(g.N(), 925)
		pushOpt := opt
		pushOpt.State = NewRunState()
		push, err := newPushSumRun(g, x, pushOpt, rng.New(926))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			push.step()
		}
		if avg := testing.AllocsPerRun(500, push.step); avg != 0 {
			t.Errorf("push-sum/%s: %v allocs per steady-state tick, want 0", medium.name, avg)
		}
	}
}
