package gossip

import (
	"math"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// benchGraph builds the shared benchmark instance.
func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := graph.Generate(n, 1.8, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchValues(n int, seed uint64) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

// steadyOptions disables curve sampling inside the measured window so
// the benches report pure per-tick protocol cost (BENCH_engines.json
// tracks them with allocs — the steady-state contract is 0 allocs/op).
func steadyOptions() Options {
	return Options{
		Stop:        sim.StopRule{MaxTicks: math.MaxUint64 >> 1},
		RecordEvery: math.MaxUint64 >> 1,
		State:       NewRunState(),
	}
}

// BenchmarkBoydSteadyTick measures one warm boyd engine tick: clock
// draw, neighbour pick, delivery, pairwise average, error update.
func BenchmarkBoydSteadyTick(b *testing.B) {
	g := benchGraph(b, 2048)
	e, err := newBoydRun(g, benchValues(g.N(), 2), steadyOptions(), rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

// BenchmarkGeographicSteadyTick measures one warm geographic tick:
// rejection sampling with greedy routing, round-trip delivery, average.
func BenchmarkGeographicSteadyTick(b *testing.B) {
	g := benchGraph(b, 2048)
	opt := GeoOptions{Options: steadyOptions(), Sampling: SamplingRejection}
	e, err := newGeoRun(g, benchValues(g.N(), 4), opt.withDefaults(), rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

// BenchmarkPushSumSteadyTick measures one warm push-sum tick: clock
// draw, neighbour pick, mass halving and push, two estimate updates.
func BenchmarkPushSumSteadyTick(b *testing.B) {
	g := benchGraph(b, 2048)
	e, err := newPushSumRun(g, benchValues(g.N(), 6), steadyOptions(), rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

// Instrumented variants: the same steady ticks with a live metrics
// registry scope attached. BENCH_engines.json pairs these with the bare
// rows to bound the observability overhead (DESIGN.md §8: ≤5%, still
// 0 allocs/op — reporting is atomics on rare paths only).

func instrumentedSteadyOptions(engine string) Options {
	opt := steadyOptions()
	opt.Obs = obs.NewRegistry().Scope(engine)
	return opt
}

func BenchmarkBoydSteadyTickInstrumented(b *testing.B) {
	g := benchGraph(b, 2048)
	e, err := newBoydRun(g, benchValues(g.N(), 2), instrumentedSteadyOptions("boyd"), rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

func BenchmarkGeographicSteadyTickInstrumented(b *testing.B) {
	g := benchGraph(b, 2048)
	opt := GeoOptions{Options: instrumentedSteadyOptions("geographic"), Sampling: SamplingRejection}
	e, err := newGeoRun(g, benchValues(g.N(), 4), opt.withDefaults(), rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

func BenchmarkPushSumSteadyTickInstrumented(b *testing.B) {
	g := benchGraph(b, 2048)
	e, err := newPushSumRun(g, benchValues(g.N(), 6), instrumentedSteadyOptions("push-sum"), rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}
