package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agreed on %d/100 draws", same)
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := New(77).Seed(); got != 77 {
		t.Fatalf("Seed() = %d, want 77", got)
	}
}

func TestStreamIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Stream("routing")
	s2 := root.Stream("clock")
	s1again := New(7).Stream("routing")

	var a, b, c [64]uint64
	for i := range a {
		a[i] = s1.Uint64()
		b[i] = s2.Uint64()
		c[i] = s1again.Uint64()
	}
	if a != c {
		t.Fatal("same (seed, name) did not reproduce the stream")
	}
	if a == b {
		t.Fatal("streams with different names produced identical output")
	}
}

func TestStreamDoesNotConsumeParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Stream("x")
	_ = a.Stream("y")
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("deriving streams perturbed the parent sequence")
		}
	}
}

func TestStreamDiffersFromParent(t *testing.T) {
	// Stream("") must not be the parent stream itself.
	a := New(3)
	b := New(3).Stream("")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("Stream(\"\") tracked the parent on %d/64 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntNRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.IntN(10)
		if v < 0 || v >= 10 {
			t.Fatalf("IntN(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("IntN(10) hit only %d distinct values in 10000 draws", len(seen))
	}
}

func TestRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2.5, 7.5)
		if v < -2.5 || v >= 7.5 {
			t.Fatalf("Range(-2.5, 7.5) = %v", v)
		}
	}
}

func TestRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(1, 0) did not panic")
		}
	}()
	New(1).Range(1, 0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(17)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestIntNExcept(t *testing.T) {
	r := New(19)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		v := r.IntNExcept(5, 2)
		if v == 2 {
			t.Fatal("IntNExcept returned the excluded value")
		}
		if v < 0 || v >= 5 {
			t.Fatalf("IntNExcept(5, 2) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if i == 2 {
			continue
		}
		got := float64(c) / 50000
		if math.Abs(got-0.25) > 0.02 {
			t.Fatalf("IntNExcept bias: value %d frequency %v, want 0.25", i, got)
		}
	}
}

func TestIntNExceptPanics(t *testing.T) {
	cases := []struct {
		name    string
		n, skip int
	}{
		{"n too small", 1, 0},
		{"skip negative", 5, -1},
		{"skip too large", 5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("IntNExcept(%d, %d) did not panic", tc.n, tc.skip)
				}
			}()
			New(1).IntNExcept(tc.n, tc.skip)
		})
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const trials = 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const trials = 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(37)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum := 0
	for _, v := range s {
		sum += v
	}
	wantSum := 0
	for _, v := range orig {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatalf("Shuffle changed multiset: %v", s)
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	base := mix(0x12345678, 0x9abcdef0)
	totalFlips := 0
	for bit := 0; bit < 64; bit++ {
		flipped := mix(0x12345678^(1<<uint(bit)), 0x9abcdef0)
		totalFlips += popcount(base ^ flipped)
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("mix avalanche average %v bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestQuickStreamDeterminism(t *testing.T) {
	f := func(seed uint64, name string) bool {
		a := New(seed).Stream(name)
		b := New(seed).Stream(name)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntNExceptNeverReturnsSkip(t *testing.T) {
	r := New(99)
	f := func(nRaw uint8, skipRaw uint8) bool {
		n := int(nRaw%30) + 2
		skip := int(skipRaw) % n
		for i := 0; i < 16; i++ {
			if r.IntNExcept(n, skip) == skip {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveIsPureAndSensitive(t *testing.T) {
	if Derive(1, 2, 3) != Derive(1, 2, 3) {
		t.Fatal("Derive is not deterministic")
	}
	seen := map[uint64]string{}
	cases := []struct {
		name  string
		words []uint64
	}{
		{"empty", nil},
		{"one", []uint64{7}},
		{"pair", []uint64{7, 0}},
		{"swapped", []uint64{0, 7}},
		{"triple", []uint64{7, 0, 0}},
	}
	for _, c := range cases {
		v := Derive(42, c.words...)
		if prev, dup := seen[v]; dup {
			t.Fatalf("Derive collision between %s and %s", prev, c.name)
		}
		seen[v] = c.name
	}
	if Derive(1) == Derive(2) {
		t.Fatal("Derive ignores the base seed")
	}
}

func TestDeriveStringMatchesStreamDerivation(t *testing.T) {
	// DeriveString must yield the seed Stream uses, so generators built
	// either way replay the same sequence.
	a := New(DeriveString(17, "loss"))
	b := New(17).Stream("loss")
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("DeriveString diverges from Stream")
		}
	}
}

// TestReseedMatchesNew proves the pooled-stream contract: Reseed(s)
// followed by any draw sequence is bit-identical to the same draws on a
// fresh New(s), for every draw kind the engines use.
func TestReseedMatchesNew(t *testing.T) {
	pooled := New(999)
	// Consume arbitrary state so Reseed has something to overwrite.
	for i := 0; i < 57; i++ {
		pooled.Uint64()
		pooled.NormFloat64()
	}
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		pooled.Reseed(seed)
		fresh := New(seed)
		if pooled.Seed() != fresh.Seed() {
			t.Fatalf("seed %d: Seed() = %d after Reseed", seed, pooled.Seed())
		}
		for i := 0; i < 200; i++ {
			if a, b := pooled.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("seed %d: Uint64 draw %d: %d != %d", seed, i, a, b)
			}
			if a, b := pooled.Float64(), fresh.Float64(); a != b {
				t.Fatalf("seed %d: Float64 draw %d: %v != %v", seed, i, a, b)
			}
			if a, b := pooled.IntN(97), fresh.IntN(97); a != b {
				t.Fatalf("seed %d: IntN draw %d: %d != %d", seed, i, a, b)
			}
			if a, b := pooled.ExpFloat64(), fresh.ExpFloat64(); a != b {
				t.Fatalf("seed %d: ExpFloat64 draw %d: %v != %v", seed, i, a, b)
			}
			if a, b := pooled.NormFloat64(), fresh.NormFloat64(); a != b {
				t.Fatalf("seed %d: NormFloat64 draw %d: %v != %v", seed, i, a, b)
			}
		}
	}
}

// TestStreamIntoMatchesStream proves StreamInto reseeds to the exact
// substream Stream derives.
func TestStreamIntoMatchesStream(t *testing.T) {
	parent := New(7)
	pooled := New(123) // arbitrary prior state
	for _, name := range []string{"clock", "pick", "loss", "churn", ""} {
		got := parent.StreamInto(pooled, name)
		if got != pooled {
			t.Fatalf("stream %q: StreamInto did not reuse the supplied generator", name)
		}
		want := parent.Stream(name)
		for i := 0; i < 100; i++ {
			if a, b := got.Uint64(), want.Uint64(); a != b {
				t.Fatalf("stream %q draw %d: %d != %d", name, i, a, b)
			}
		}
	}
	if got := parent.StreamInto(nil, "clock"); got == nil {
		t.Fatal("StreamInto(nil) returned nil")
	}
}

// TestPermIntoMatchesPerm proves PermInto consumes the identical draw
// sequence and produces the identical permutation as Perm — the
// hot-path substitution contract.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 256} {
		a, b := New(11), New(11)
		buf := make([]int, n)
		for round := 0; round < 5; round++ {
			want := a.Perm(n)
			got := b.PermInto(buf)
			if len(got) != len(want) {
				t.Fatalf("n=%d round %d: length %d != %d", n, round, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d round %d: perm[%d] = %d, want %d", n, round, i, got[i], want[i])
				}
			}
			// The generators must remain in lockstep: identical swap draws.
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("n=%d round %d: generators diverged after perm: %d != %d", n, round, x, y)
			}
		}
	}
}
