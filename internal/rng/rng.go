// Package rng provides deterministic, splittable random number generation
// for simulations.
//
// Every stochastic component of the simulator draws from its own named
// substream so that adding randomness to one component never perturbs the
// draws seen by another. Substreams are derived by hashing the parent
// seed with the stream name, so a (seed, name-path) pair fully determines
// the sequence: identical configurations replay identical experiments.
package rng

import (
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random source (PCG-backed) that can be
// split into independent named substreams.
type RNG struct {
	rand *rand.Rand
	src  *rand.PCG
	seed uint64
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical sequences.
func New(seed uint64) *RNG {
	src := rand.NewPCG(seed, mix(seed, 0x9e3779b97f4a7c15))
	return &RNG{
		rand: rand.New(src),
		src:  src,
		seed: seed,
	}
}

// Seed reports the seed this generator was created from.
func (r *RNG) Seed() uint64 { return r.seed }

// Reseed re-initializes the generator in place to the exact state New
// would construct from seed, without allocating. Pooled run states reuse
// their stream generators across runs through it: Reseed(s) followed by
// any draw sequence is bit-identical to the same draws on New(s).
func (r *RNG) Reseed(seed uint64) {
	r.src.Seed(seed, mix(seed, 0x9e3779b97f4a7c15))
	r.seed = seed
}

// Stream derives an independent substream identified by name. Streams with
// distinct names are statistically independent; the same (seed, name)
// always yields the same stream. Deriving a stream does not consume state
// from the parent.
func (r *RNG) Stream(name string) *RNG {
	return New(DeriveString(r.seed, name))
}

// StreamInto is Stream without the allocation: it reseeds dst in place to
// the substream Stream(name) would return, or returns a fresh generator
// when dst is nil. Pooled run states hold their named streams and rebind
// them per run through it.
func (r *RNG) StreamInto(dst *RNG, name string) *RNG {
	if dst == nil {
		return r.Stream(name)
	}
	dst.Reseed(DeriveString(r.seed, name))
	return dst
}

// Derive deterministically folds a sequence of words (task coordinates,
// trial indices, attempt counters) into seed with the SplitMix64
// finalizer. It is pure: the same inputs always yield the same seed, so
// per-task generators built from a shared base seed reproduce bit-for-bit
// regardless of execution order or worker count.
func Derive(seed uint64, words ...uint64) uint64 {
	h := seed
	for _, w := range words {
		h = mix(h, w)
	}
	return mix(h, 0xa0761d6478bd642f)
}

// DeriveString folds a string label into seed — the derivation Stream is
// built on, returning the derived seed value rather than a generator.
// The trailing offset makes DeriveString(s, "") differ from s itself.
func DeriveString(seed uint64, name string) uint64 {
	h := seed
	for i := 0; i < len(name); i++ {
		h = mix(h, uint64(name[i]))
	}
	return mix(h, 0xd1342543de82ef95)
}

// mix is a SplitMix64-style finalizer combining two words.
func mix(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15 + b
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.rand.Float64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (r *RNG) IntN(n int) int { return r.rand.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.rand.Uint64() }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 { return r.rand.ExpFloat64() }

// NormFloat64 returns a standard normal value.
func (r *RNG) NormFloat64() float64 { return r.rand.NormFloat64() }

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*r.rand.Float64()
}

// Bernoulli reports true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.rand.Float64() < p
}

// IntNExcept returns a uniform int in [0, n) excluding skip.
// It panics if n < 2 or skip is outside [0, n).
func (r *RNG) IntNExcept(n, skip int) int {
	if n < 2 {
		panic("rng: IntNExcept needs n >= 2")
	}
	if skip < 0 || skip >= n {
		panic("rng: IntNExcept skip out of range")
	}
	v := r.rand.IntN(n - 1)
	if v >= skip {
		v++
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.rand.Perm(n) }

// PermInto writes a random permutation of [0, n) into dst (n = len(dst))
// and returns it. It performs the identical swap sequence Perm performs —
// a Fisher–Yates Shuffle over the identity — so the draws consumed and
// the permutation produced are bit-identical to Perm(len(dst)), without
// the allocation. Hot loops give the buffer to their run state and call
// this instead of Perm.
func (r *RNG) PermInto(dst []int) []int {
	for i := range dst {
		dst[i] = i
	}
	r.rand.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
	return dst
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.rand.Shuffle(n, swap) }
