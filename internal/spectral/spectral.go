// Package spectral estimates the mixing properties of the natural random
// walk on a geometric random graph.
//
// The paper's related work (§1.1, citing Boyd et al. [1, 2]) attributes
// nearest-neighbour gossip's Õ(n²) cost to the walk's mixing time:
// transmissions scale as Θ(n·T_mix), and T_mix on G(n, r) is driven by
// diffusion, Θ(1/r²) up to logarithms. This package measures the
// relaxation time directly so the claim can be checked against the
// simulated gossip cost (experiment E16).
package spectral

import (
	"fmt"
	"math"

	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

// Result reports the spectral estimates for one graph.
type Result struct {
	// Lambda2 is the second-largest eigenvalue of the lazy natural walk
	// (I + P)/2, in [0, 1).
	Lambda2 float64
	// RelaxationTime is 1/(1 − Lambda2).
	RelaxationTime float64
	// Iterations is the number of power iterations performed.
	Iterations int
}

// MixingTimeBound returns the standard upper bound
// T_mix(ε) <= T_rel · ln(n/ε) implied by a relaxation time, where n is
// the number of nodes.
func MixingTimeBound(relax float64, n int, eps float64) float64 {
	if n < 2 {
		return 0
	}
	return relax * math.Log(float64(n)/eps)
}

// Estimate computes Lambda2 of the lazy natural random walk on g by
// power iteration with deflation of the stationary component. The graph
// must be connected and have at least two nodes. iters bounds the number
// of iterations (zero selects 400; estimates are accurate once the
// iteration count comfortably exceeds the relaxation time).
func Estimate(g *graph.Graph, iters int, r *rng.RNG) (Result, error) {
	n := g.N()
	if n < 2 {
		return Result{}, fmt.Errorf("spectral: need at least 2 nodes, got %d", n)
	}
	if !g.IsConnected() {
		return Result{}, graph.ErrDisconnected
	}
	if iters <= 0 {
		iters = 400
	}
	// Stationary distribution of the natural walk: π_i ∝ deg(i). The lazy
	// walk shares it and has a nonnegative spectrum, so power iteration
	// converges to λ₂ from above.
	pi := make([]float64, n)
	total := 0.0
	for i := int32(0); int(i) < n; i++ {
		pi[i] = float64(g.Degree(i))
		total += pi[i]
	}
	for i := range pi {
		pi[i] /= total
	}

	y := make([]float64, n)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	tmp := make([]float64, n)
	deflate := func(v []float64) {
		// Remove the component along the right eigenvector 1 in the
		// π-weighted inner product.
		var dot float64
		for i := range v {
			dot += pi[i] * v[i]
		}
		for i := range v {
			v[i] -= dot
		}
	}
	piNorm := func(v []float64) float64 {
		var s float64
		for i := range v {
			s += pi[i] * v[i] * v[i]
		}
		return math.Sqrt(s)
	}
	deflate(y)
	norm := piNorm(y)
	if norm == 0 {
		return Result{}, fmt.Errorf("spectral: degenerate start vector")
	}
	for i := range y {
		y[i] /= norm
	}

	lambda := 0.0
	for it := 0; it < iters; it++ {
		// tmp = (I + P)/2 · y for the natural walk P.
		for i := int32(0); int(i) < n; i++ {
			nbrs := g.Neighbors(i)
			var acc float64
			for _, j := range nbrs {
				acc += y[j]
			}
			tmp[i] = 0.5*y[i] + 0.5*acc/float64(len(nbrs))
		}
		deflate(tmp)
		norm = piNorm(tmp)
		if norm == 0 {
			break
		}
		lambda = norm // since ‖y‖_π = 1
		for i := range y {
			y[i] = tmp[i] / norm
		}
	}
	if lambda >= 1 {
		lambda = math.Nextafter(1, 0)
	}
	return Result{
		Lambda2:        lambda,
		RelaxationTime: 1 / (1 - lambda),
		Iterations:     iters,
	}, nil
}
