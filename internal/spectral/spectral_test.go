package spectral

import (
	"math"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(0.05+0.9*float64(i)/float64(n), 0.5)
	}
	g, err := graph.Build(pts, 0.9/float64(n)+1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("path not connected")
	}
	return g
}

func TestEstimatePathGraph(t *testing.T) {
	// The lazy walk on a path of n nodes has relaxation time ~ n²·(2/π²):
	// λ₂(lazy) = (1 + cos(π/n))/2 for the natural walk on a path.
	const n = 20
	g := pathGraph(t, n)
	res, err := Estimate(g, 6000, rng.New(500))
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + math.Cos(math.Pi/float64(n))) / 2
	if math.Abs(res.Lambda2-want) > 0.01 {
		t.Fatalf("lambda2 = %v, theory %v", res.Lambda2, want)
	}
	if res.RelaxationTime < 1 {
		t.Fatalf("relaxation time %v < 1", res.RelaxationTime)
	}
}

func TestEstimateDenseFasterThanSparse(t *testing.T) {
	// A denser geometric graph mixes faster: larger radius → smaller
	// relaxation time.
	mk := func(c float64) float64 {
		g, err := graph.Generate(400, c, rng.New(501))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Skip("disconnected instance")
		}
		res, err := Estimate(g, 1500, rng.New(502))
		if err != nil {
			t.Fatal(err)
		}
		return res.RelaxationTime
	}
	sparse := mk(1.2)
	dense := mk(3.0)
	if dense >= sparse {
		t.Fatalf("dense relaxation %v not below sparse %v", dense, sparse)
	}
}

func TestEstimateRelaxationGrowsWithN(t *testing.T) {
	relax := func(n int) float64 {
		g, err := graph.Generate(n, 1.5, rng.New(503))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Skip("disconnected instance")
		}
		res, err := Estimate(g, 2000, rng.New(504))
		if err != nil {
			t.Fatal(err)
		}
		return res.RelaxationTime
	}
	small := relax(256)
	large := relax(2048)
	if large <= small {
		t.Fatalf("relaxation time should grow with n: %v (n=256) vs %v (n=2048)", small, large)
	}
}

func TestEstimateErrors(t *testing.T) {
	g, err := graph.Build([]geo.Point{geo.Pt(0.5, 0.5)}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(g, 10, rng.New(1)); err == nil {
		t.Fatal("singleton accepted")
	}
	disc, err := graph.Build([]geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.9, 0.9)}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(disc, 10, rng.New(1)); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestLambdaInRange(t *testing.T) {
	g, err := graph.Generate(300, 2.0, rng.New(505))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Skip("disconnected instance")
	}
	res, err := Estimate(g, 800, rng.New(506))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda2 <= 0 || res.Lambda2 >= 1 {
		t.Fatalf("lambda2 = %v outside (0,1)", res.Lambda2)
	}
}

func TestMixingTimeBound(t *testing.T) {
	if got := MixingTimeBound(10, 1, 0.1); got != 0 {
		t.Fatalf("n=1 bound = %v", got)
	}
	b1 := MixingTimeBound(10, 1000, 0.01)
	b2 := MixingTimeBound(10, 1000, 0.001)
	if b2 <= b1 {
		t.Fatal("tighter eps should increase the bound")
	}
	if b1 <= 0 {
		t.Fatalf("bound = %v", b1)
	}
}
