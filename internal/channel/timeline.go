package channel

import "geogossip/internal/obs"

// Timeline is the deterministic event clock of the time-realism layer
// (DESIGN.md §12). Transport wrappers (Delay, ARQ) accumulate the latency
// of the delivery decision in flight through Add; the outermost Timed
// wrapper brackets every top-level Deliver* call, turning the accumulated
// latency into a completion event at (decision time + latency) on a
// min-heap keyed by (time, seq) — seq breaks ties in schedule order, so
// draining is tie-stable and bit-reproducible. The engine's clock driver
// drains due events each tick, advancing the medium to each completion's
// (floored) time so time-windowed fault state — jam schedules, cut heals,
// churn flips — is evaluated at delayed-delivery instants exactly as it
// would be at a tick crossing the same boundary.
//
// An inactive timeline (transport layer off) is never consulted beyond a
// nil/flag check, so the zero-delay tick path stays allocation- and
// draw-identical to a run without the layer. High() tracks the latest
// completion scheduled so far; a run's sim time is the maximum of its
// final tick count and that high-water mark.
type Timeline struct {
	pend   float64
	heap   []timelineEvent
	seq    uint64
	high   float64
	active bool
}

type timelineEvent struct {
	at  float64
	seq uint64
}

// Reset re-initializes the timeline in place for a new run, keeping the
// heap storage (pooled run states own one Timeline across runs). active
// selects whether the transport layer is live this run.
func (t *Timeline) Reset(active bool) {
	t.pend, t.seq, t.high, t.active = 0, 0, 0, active
	t.heap = t.heap[:0]
}

// Active reports whether the time-realism layer is live. Safe on nil.
func (t *Timeline) Active() bool { return t != nil && t.active }

// Add accumulates transport latency for the delivery decision in flight.
// Wrappers call it; safe on nil (latency is then discarded).
func (t *Timeline) Add(d float64) {
	if t != nil && d > 0 {
		t.pend += d
	}
}

// begin opens a top-level delivery bracket, clearing latency left by any
// path that bypassed finish.
func (t *Timeline) begin() { t.pend = 0 }

// finish closes a top-level delivery bracket at decision time now: the
// accumulated latency becomes a completion event at now + latency. It
// returns the delivery's latency (0 when none accumulated).
func (t *Timeline) finish(now float64) float64 {
	lat := t.pend
	t.pend = 0
	if lat <= 0 {
		return 0
	}
	at := now + lat
	if at > t.high {
		t.high = at
	}
	t.push(timelineEvent{at: at, seq: t.seq})
	t.seq++
	return lat
}

// DrainTo pops every completion event due at or before now in (time, seq)
// order, reporting each event's floored completion time to advance (the
// medium's Advance, typically) so time-windowed fault state is evaluated
// at delayed-delivery instants. Safe on nil.
func (t *Timeline) DrainTo(now float64, advance func(uint64)) {
	if t == nil {
		return
	}
	for len(t.heap) > 0 && t.heap[0].at <= now {
		ev := t.pop()
		if advance != nil {
			advance(uint64(ev.at))
		}
	}
}

// Pending returns the number of scheduled completions not yet drained.
func (t *Timeline) Pending() int {
	if t == nil {
		return 0
	}
	return len(t.heap)
}

// High returns the latest completion time scheduled so far.
func (t *Timeline) High() float64 {
	if t == nil {
		return 0
	}
	return t.high
}

func (e timelineEvent) before(o timelineEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

func (t *Timeline) push(ev timelineEvent) {
	t.heap = append(t.heap, ev)
	i := len(t.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !t.heap[i].before(t.heap[parent]) {
			break
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *Timeline) pop() timelineEvent {
	top := t.heap[0]
	last := len(t.heap) - 1
	t.heap[0] = t.heap[last]
	t.heap = t.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(t.heap) && t.heap[l].before(t.heap[smallest]) {
			smallest = l
		}
		if r < len(t.heap) && t.heap[r].before(t.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		t.heap[i], t.heap[smallest] = t.heap[smallest], t.heap[i]
		i = smallest
	}
}

// Timed is the outermost transport bracket: it wraps the fully composed
// medium (including churn, so dead-endpoint short-circuits schedule no
// events) and turns the latency the inner wrappers accumulated during
// each top-level Deliver* call into a timeline completion event, feeding
// the delivery-latency histogram. Built only when the spec has transport
// components and the engine supplied a Timeline, so its per-delivery cost
// never touches transport-free runs.
type Timed struct {
	inner Channel
	tl    *Timeline
	obs   *obs.Scope
}

// NewTimed wraps inner with the timeline bracket.
func NewTimed(inner Channel, tl *Timeline, scope *obs.Scope) *Timed {
	if inner == nil {
		inner = Perfect{}
	}
	return &Timed{inner: inner, tl: tl, obs: scope}
}

// Advance implements Channel.
func (w *Timed) Advance(now uint64) { w.inner.Advance(now) }

// Alive implements Channel.
func (w *Timed) Alive(i int32) bool { return w.inner.Alive(i) }

// DeliverHop implements Channel.
func (w *Timed) DeliverHop(p Packet) (bool, int) {
	w.tl.begin()
	ok, paid := w.inner.DeliverHop(p)
	w.close(p)
	return ok, paid
}

// DeliverRoute implements Channel.
func (w *Timed) DeliverRoute(p Packet) (bool, int) {
	w.tl.begin()
	ok, paid := w.inner.DeliverRoute(p)
	w.close(p)
	return ok, paid
}

// DeliverRoundTrip implements Channel.
func (w *Timed) DeliverRoundTrip(p Packet) (bool, int) {
	w.tl.begin()
	ok, paid := w.inner.DeliverRoundTrip(p)
	w.close(p)
	return ok, paid
}

func (w *Timed) close(p Packet) {
	if lat := w.tl.finish(float64(p.Now)); lat > 0 {
		w.obs.DeliveryLatency(lat)
	}
}

// Name implements Channel. The bracket is transparent: it renders no
// component of its own.
func (w *Timed) Name() string { return w.inner.Name() }
