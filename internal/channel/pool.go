package channel

import (
	"fmt"
	"sync/atomic"

	"geogossip/internal/rng"
)

// Pool holds reusable channel state so a pooled run state can rebuild a
// spec's fault medium every run without re-allocating it: the loss-model
// and wrapper structs are reused in place, and churn keeps its per-node
// schedule state — including each node's schedule generator, reseeded per
// run — across runs. A channel built through a Pool is draw- and
// behaviour-identical to one built by Spec.Build (the per-node schedule
// seeds and the per-call draw order are the same by construction); only
// the allocations differ. A Pool serves one run at a time, like the
// engines that own it.
type Pool struct {
	bern    Bernoulli
	ge      GilbertElliott
	spatial SpatialLoss
	part    Partition
	churn   Churn
	delay   Delay
	arq     ARQ
	timed   Timed
	// delayRNG and arqRNG are the kept transport streams, reseeded per
	// run to the identical derived seeds a fresh build would use.
	delayRNG, arqRNG *rng.RNG
	// builds counts the channels served from pooled storage; atomic only
	// so a live metrics scrape can read it while a run builds (one add per
	// run, nowhere near a hot path).
	builds atomic.Uint64
}

// Builds counts how many channels this pool has served without fresh
// allocation — the pool-reuse figure the sweep engine surfaces on the
// metrics registry.
func (p *Pool) Builds() uint64 {
	if p == nil {
		return 0
	}
	return p.builds.Load()
}

// BuildWith is Spec.Build backed by reusable state: a non-nil pool
// supplies the channel structs (and churn's per-node schedule state) in
// place of fresh allocations. A nil pool is exactly Build.
func (s Spec) BuildWith(p *Pool, n int, env Env, lossRNG, churnRNG *rng.RNG) (Channel, error) {
	if s.Spatial() && len(env.Points) < n {
		return nil, fmt.Errorf("channel: spec %q has spatial components but the engine supplied %d of %d node positions", s, len(env.Points), n)
	}
	if p != nil {
		p.builds.Add(1)
	}
	var ch Channel
	switch s.Loss {
	case LossBernoulli:
		if p != nil {
			p.bern = Bernoulli{P: s.LossRate, R: lossRNG}
			ch = &p.bern
		} else {
			ch = &Bernoulli{P: s.LossRate, R: lossRNG}
		}
	case LossGilbertElliott:
		if p != nil {
			p.ge = GilbertElliott{params: s.GE, r: lossRNG}
			ch = &p.ge
		} else {
			ch = NewGilbertElliott(s.GE, lossRNG)
		}
	default:
		ch = Perfect{}
	}
	if len(s.Fields) > 0 {
		if p != nil {
			p.spatial.reset(ch, s.Fields, lossRNG)
			ch = &p.spatial
		} else {
			ch = NewSpatialLoss(ch, s.Fields, lossRNG)
		}
	}
	if s.HasCut() {
		if p != nil {
			p.part = Partition{inner: ch, cut: s.Cut}
			ch = &p.part
		} else {
			ch = NewPartition(ch, s.Cut)
		}
	}
	if s.HasDelayLayer() {
		seed := rng.DeriveString(lossRNG.Seed(), "delay")
		if p != nil {
			p.delayRNG = reseed(p.delayRNG, seed)
			p.delay.reset(ch, s.Delay, s.Reorder, s.Dup, p.delayRNG, env.Timeline)
			ch = &p.delay
		} else {
			ch = NewDelay(ch, s.Delay, s.Reorder, s.Dup, rng.New(seed), env.Timeline)
		}
	}
	if !s.ARQ.IsZero() {
		seed := rng.DeriveString(lossRNG.Seed(), "arq")
		if p != nil {
			p.arqRNG = reseed(p.arqRNG, seed)
			p.arq.reset(ch, s.ARQ, p.arqRNG, env.Timeline, env.Obs, env.Tracer)
			ch = &p.arq
		} else {
			ch = NewARQ(ch, s.ARQ, rng.New(seed), env.Timeline, env.Obs, env.Tracer)
		}
	}
	if s.HasChurn() {
		var targets []int32
		switch s.ChurnTarget {
		case TargetReps:
			if env.Reps == nil {
				return nil, fmt.Errorf("channel: spec %q targets hierarchy representatives but the engine has no hierarchy", s)
			}
			targets = env.Reps
		case TargetHubs:
			if len(env.HubOrder) < s.HubCount {
				return nil, fmt.Errorf("channel: spec %q targets %d hubs but the engine supplied a degree order of %d nodes", s, s.HubCount, len(env.HubOrder))
			}
			targets = env.HubOrder[:s.HubCount]
		}
		if p != nil {
			p.churn.reset(ch, n, s.Churn, targets, churnRNG)
			ch = &p.churn
		} else {
			ch = NewTargetedChurn(ch, n, s.Churn, targets, churnRNG)
		}
	}
	if s.HasTransport() && env.Timeline != nil {
		// Outermost bracket: every top-level delivery's accumulated
		// latency becomes one timeline completion event.
		if p != nil {
			p.timed = Timed{inner: ch, tl: env.Timeline, obs: env.Obs}
			ch = &p.timed
		} else {
			ch = NewTimed(ch, env.Timeline, env.Obs)
		}
	}
	return ch, nil
}

// reseed returns r reseeded to seed, allocating only on first use — the
// pooled-stream idiom churn's per-node generators established.
func reseed(r *rng.RNG, seed uint64) *rng.RNG {
	if r == nil {
		return rng.New(seed)
	}
	r.Reseed(seed)
	return r
}

// reset re-initializes a pooled SpatialLoss in place (see NewSpatialLoss
// for the evaluator semantics), keeping the evaluator storage.
func (s *SpatialLoss) reset(inner Channel, fields []FieldParams, r *rng.RNG) {
	if inner == nil {
		inner = Perfect{}
	}
	if cap(s.evals) >= len(fields) {
		s.evals = s.evals[:len(fields)]
	} else {
		s.evals = make([]fieldEval, len(fields))
	}
	s.inner, s.r = inner, r
	for i, f := range fields {
		s.evals[i] = fieldEval{}
		s.initEval(&s.evals[i], f)
	}
}

// reset re-initializes a pooled Churn in place, keeping the per-node
// schedule state so no node RNG is re-allocated: a node's schedule
// generator is reseeded lazily (see Alive) to the identical per-node seed
// a fresh Churn would derive.
func (c *Churn) reset(inner Channel, n int, p ChurnParams, targets []int32, r *rng.RNG) {
	if inner == nil {
		inner = Perfect{}
	}
	c.inner, c.params, c.now, c.seed = inner, p, 0, r.Seed()
	if cap(c.nodes) >= n {
		c.nodes = c.nodes[:n]
	} else {
		c.nodes = make([]churnNode, n)
	}
	for i := range c.nodes {
		nd := &c.nodes[i]
		nd.alive, nd.nextFlip, nd.started = false, 0, false // nd.r is kept for reseeding
	}
	c.target = nil
	if targets != nil {
		if cap(c.targetBuf) >= n {
			c.targetBuf = c.targetBuf[:n]
			clear(c.targetBuf)
		} else {
			c.targetBuf = make([]bool, n)
		}
		for _, t := range targets {
			c.targetBuf[t] = true
		}
		c.target = c.targetBuf
	}
}
