package channel

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"geogossip/internal/geo"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/trace"
)

// LossModel enumerates the packet-loss processes a Spec can select.
type LossModel int

const (
	// LossNone delivers every packet (between live nodes).
	LossNone LossModel = iota
	// LossBernoulli loses packets i.i.d. with Spec.LossRate.
	LossBernoulli
	// LossGilbertElliott loses packets in bursts per Spec.GE.
	LossGilbertElliott
)

// String implements fmt.Stringer.
func (m LossModel) String() string {
	switch m {
	case LossNone:
		return "perfect"
	case LossBernoulli:
		return "bernoulli"
	case LossGilbertElliott:
		return "gilbert-elliott"
	default:
		return fmt.Sprintf("loss-model(%d)", int(m))
	}
}

// Target selects which nodes a churn component may kill.
type Target int

const (
	// TargetAll churns every node uniformly (the default).
	TargetAll Target = iota
	// TargetReps churns only hierarchy representatives — the adversarial
	// model aimed at the nodes the paper's protocol routes everything
	// through. Requires Env.Reps at Build time.
	TargetReps
	// TargetHubs churns only the Spec.HubCount highest-degree nodes.
	// Requires Env.HubOrder at Build time.
	TargetHubs
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetAll:
		return "all"
	case TargetReps:
		return "reps"
	case TargetHubs:
		return "hubs"
	default:
		return fmt.Sprintf("target(%d)", int(t))
	}
}

// Spec is a declarative, serializable fault-model description: a loss
// process, optional spatial jamming fields, an optional partition/heal
// cut, and optional (possibly targeted) node churn. The zero Spec is the
// perfect medium. Specs travel through facade options, sweep axes, and
// CLI flags; Build turns one into a live Channel wired to an engine's
// RNG streams and network context.
type Spec struct {
	// Loss selects the packet-loss process.
	Loss LossModel
	// LossRate is the i.i.d. loss probability (LossBernoulli only).
	LossRate float64
	// GE parameterizes burst loss (LossGilbertElliott only).
	GE GEParams
	// Fields lists spatial jamming regions overlaid on the loss process.
	Fields []FieldParams
	// Cut severs delivery across a line for a time window, then heals.
	Cut CutParams
	// Churn overlays crash-stop node failure when Churn.MeanUp > 0.
	Churn ChurnParams
	// ChurnTarget restricts churn to a node class (TargetAll is uniform).
	ChurnTarget Target
	// HubCount is the number of highest-degree nodes TargetHubs churns.
	HubCount int

	// Transport-reliability layer (DESIGN.md §12). All zero by default:
	// instantaneous, single-shot delivery, the historical model.

	// Delay selects a per-hop transport delay distribution.
	Delay DelayParams
	// Reorder delivers packets out of order with this probability (the
	// straggler waits out one extra medium traversal); requires Delay.
	Reorder float64
	// Dup duplicates delivered packets with this probability, charging
	// the duplicate copy's airtime.
	Dup float64
	// ARQ enables transport-level retransmission when ARQ.Retries > 0.
	ARQ ARQParams
}

// IsZero reports whether the spec is the perfect medium.
func (s Spec) IsZero() bool {
	return s.Loss == LossNone && !s.HasChurn() && !s.Spatial() && !s.HasTransport()
}

// HasTransport reports whether the spec has transport-reliability
// components (delay, reorder, dup, or ARQ) — the layer that activates
// the run's Timeline and SimSeconds accounting.
func (s Spec) HasTransport() bool {
	return !s.Delay.IsZero() || s.Reorder > 0 || s.Dup > 0 || !s.ARQ.IsZero()
}

// HasDelayLayer reports whether the spec needs the Delay wrapper (a
// delay distribution or a reorder/dup decorator).
func (s Spec) HasDelayLayer() bool {
	return !s.Delay.IsZero() || s.Reorder > 0 || s.Dup > 0
}

// TransportOnly reports whether the spec consists solely of transport
// components — the shape the sweep transport axis composes onto fault
// models.
func (s Spec) TransportOnly() bool {
	return s.HasTransport() && s.Loss == LossNone && len(s.Fields) == 0 &&
		!s.HasCut() && !s.HasChurn()
}

// HasChurn reports whether the spec overlays node churn.
func (s Spec) HasChurn() bool { return s.Churn.MeanUp > 0 }

// HasCut reports whether the spec includes a partition/heal event.
func (s Spec) HasCut() bool { return !s.Cut.IsZero() }

// Spatial reports whether the spec has geometry-dependent components
// (jamming fields or a cut), which require Env.Points at Build time.
func (s Spec) Spatial() bool { return len(s.Fields) > 0 || s.HasCut() }

// TargetsReps reports whether the spec churns hierarchy representatives.
func (s Spec) TargetsReps() bool { return s.HasChurn() && s.ChurnTarget == TargetReps }

// TargetsHubs reports whether the spec churns high-degree hubs.
func (s Spec) TargetsHubs() bool { return s.HasChurn() && s.ChurnTarget == TargetHubs }

// HasLoss reports whether the spec's loss processes (the id-blind model
// or any jamming field) can drop packets between live nodes.
func (s Spec) HasLoss() bool {
	for _, f := range s.Fields {
		if f.Loss > 0 {
			return true
		}
	}
	switch s.Loss {
	case LossBernoulli:
		return s.LossRate > 0
	case LossGilbertElliott:
		return s.GE.LossGood > 0 || s.GE.LossBad > 0
	}
	return false
}

// ExpectedLossRate returns an estimate of the long-run per-packet loss
// probability for uniform traffic: the loss process's stationary rate
// composed (as independent events) with each field's mean loss (loss ×
// area fraction × duty cycle). Cut and churn components are excluded —
// their impact is structural, not a rate.
func (s Spec) ExpectedLossRate() float64 {
	var base float64
	switch s.Loss {
	case LossBernoulli:
		base = s.LossRate
	case LossGilbertElliott:
		base = s.GE.StationaryLoss()
	}
	if len(s.Fields) == 0 {
		return base // exact: no survive-product rounding residue
	}
	survive := 1 - base
	for _, f := range s.Fields {
		survive *= 1 - f.MeanLoss()
	}
	return 1 - survive
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	switch s.Loss {
	case LossNone:
		if s.LossRate != 0 {
			return fmt.Errorf("channel: loss rate %v set without a loss model", s.LossRate)
		}
	case LossBernoulli:
		if s.LossRate < 0 || s.LossRate > 1 {
			return fmt.Errorf("channel: loss rate %v outside [0, 1]", s.LossRate)
		}
	case LossGilbertElliott:
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"good-to-bad transition", s.GE.PGoodToBad},
			{"bad-to-good transition", s.GE.PBadToGood},
			{"good-state loss", s.GE.LossGood},
			{"bad-state loss", s.GE.LossBad},
		} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("channel: gilbert-elliott %s probability %v outside [0, 1]", p.name, p.v)
			}
		}
	default:
		return fmt.Errorf("channel: unknown loss model %d", int(s.Loss))
	}
	for _, f := range s.Fields {
		if err := f.validate(); err != nil {
			return err
		}
	}
	if err := s.Cut.validate(); err != nil {
		return err
	}
	if s.Churn.MeanUp < 0 || s.Churn.MeanDown < 0 {
		return fmt.Errorf("channel: negative churn duration (up %v, down %v)", s.Churn.MeanUp, s.Churn.MeanDown)
	}
	if s.Churn.MeanUp == 0 && s.Churn.MeanDown != 0 {
		return fmt.Errorf("channel: churn mean-down %v set without mean-up", s.Churn.MeanDown)
	}
	switch s.ChurnTarget {
	case TargetAll, TargetReps:
		if s.HubCount != 0 {
			return fmt.Errorf("channel: hub count %d set without hub-targeted churn", s.HubCount)
		}
	case TargetHubs:
		if !s.HasChurn() {
			return fmt.Errorf("channel: hub-targeted churn without a churn component")
		}
		if s.HubCount <= 0 {
			return fmt.Errorf("channel: hub-targeted churn needs a positive hub count, got %d", s.HubCount)
		}
	default:
		return fmt.Errorf("channel: unknown churn target %d", int(s.ChurnTarget))
	}
	if s.ChurnTarget == TargetReps && !s.HasChurn() {
		return fmt.Errorf("channel: rep-targeted churn without a churn component")
	}
	if err := s.Delay.validate(); err != nil {
		return err
	}
	if s.Reorder < 0 || s.Reorder > 1 {
		return fmt.Errorf("channel: reorder probability %v outside [0, 1]", s.Reorder)
	}
	if s.Reorder > 0 && s.Delay.IsZero() {
		return fmt.Errorf("channel: reorder component without a delay distribution to draw the straggler penalty from")
	}
	if s.Dup < 0 || s.Dup > 1 {
		return fmt.Errorf("channel: dup probability %v outside [0, 1]", s.Dup)
	}
	if err := s.ARQ.validate(); err != nil {
		return err
	}
	return nil
}

// Env supplies the network context a spec binds to at Build time. The
// zero Env suits every non-spatial, non-targeted spec; spatial and
// targeted components fail Build with a descriptive error when their
// context is missing, so an engine that cannot provide (say) hierarchy
// representatives rejects rep-targeted specs instead of silently running
// them as uniform churn.
type Env struct {
	// Points holds the node positions (required by jamming fields and
	// cuts — every Packet the engine submits must carry positions from
	// the same table).
	Points []geo.Point
	// Reps lists the hierarchy-representative node ids (required by
	// rep-targeted churn). The set is frozen at Build time: the attack
	// targets the nodes holding rep roles when the run starts, so a
	// successor installed by re-election is outside it and will not
	// crash — rep churn models a one-shot decapitation strike, not an
	// adversary that perpetually chases the role.
	Reps []int32
	// HubOrder lists node ids in descending degree order, ties broken by
	// id (required by hub-targeted churn, which kills the first HubCount
	// entries).
	HubOrder []int32
	// Timeline receives the transport layer's latency and completion
	// events (specs with delay/arq components). Nil discards latency —
	// delivery verdicts, draws and charges are unaffected.
	Timeline *Timeline
	// Obs optionally receives transport metrics (retransmissions,
	// timeouts, backoff waits, delivery latency); nil-safe.
	Obs *obs.Scope
	// Tracer optionally receives transport events (retransmit, timeout).
	Tracer trace.Tracer
}

// Build turns the spec into a live Channel over n nodes. Loss draws
// (Bernoulli, Gilbert–Elliott, and spatial fields) come from lossRNG and
// churn schedules from churnRNG, so an engine wires its own
// deterministic streams in; env supplies the geometry and roles spatial
// and targeted components need. Build with a zero spec returns Perfect
// and retains neither stream.
func (s Spec) Build(n int, env Env, lossRNG, churnRNG *rng.RNG) (Channel, error) {
	return s.BuildWith(nil, n, env, lossRNG, churnRNG)
}

// String renders the spec in the compact form Parse accepts. Components
// print in canonical order — loss model, jamming fields (in declaration
// order), cut, delay, reorder, dup, arq, churn — joined by "+":
//
//	perfect
//	bernoulli:P
//	ge:PGB/PBG/EG/EB
//	jam:CX/CY/R/LOSS[/FROM/UNTIL[/PERIOD]]
//	mjam:CX/CY/R/LOSS/VX/VY
//	jampoly:LOSS/X1/Y1/X2/Y2/X3/Y3[/...]
//	cut:A/B/C/FROM/UNTIL
//	delay:fixed/D | delay:uniform/LO/HI | delay:exp/MEAN
//	reorder:P
//	dup:P
//	arq:RETRIES/TIMEOUT/BACKOFF
//	churn:UP/DOWN | repchurn:UP/DOWN | hubchurn:UP/DOWN/K
//
// e.g. "bernoulli:0.2+jam:0.5/0.5/0.2/0.9+churn:50000/10000" or
// "ge:0.05/0.3/0.01/0.8+delay:exp/0.5+arq:3/2/2".
func (s Spec) String() string {
	var parts []string
	switch s.Loss {
	case LossBernoulli:
		parts = append(parts, "bernoulli:"+formatFloat(s.LossRate))
	case LossGilbertElliott:
		parts = append(parts, fmt.Sprintf("ge:%s/%s/%s/%s",
			formatFloat(s.GE.PGoodToBad), formatFloat(s.GE.PBadToGood),
			formatFloat(s.GE.LossGood), formatFloat(s.GE.LossBad)))
	}
	for _, f := range s.Fields {
		parts = append(parts, formatField(f))
	}
	if s.HasCut() {
		parts = append(parts, fmt.Sprintf("cut:%s/%s/%s/%d/%d",
			formatFloat(s.Cut.A), formatFloat(s.Cut.B), formatFloat(s.Cut.C),
			s.Cut.From, s.Cut.Until))
	}
	switch s.Delay.Kind {
	case DelayFixed:
		parts = append(parts, "delay:fixed/"+formatFloat(s.Delay.A))
	case DelayUniform:
		parts = append(parts, fmt.Sprintf("delay:uniform/%s/%s", formatFloat(s.Delay.A), formatFloat(s.Delay.B)))
	case DelayExp:
		parts = append(parts, "delay:exp/"+formatFloat(s.Delay.A))
	}
	if s.Reorder > 0 {
		parts = append(parts, "reorder:"+formatFloat(s.Reorder))
	}
	if s.Dup > 0 {
		parts = append(parts, "dup:"+formatFloat(s.Dup))
	}
	if !s.ARQ.IsZero() {
		parts = append(parts, fmt.Sprintf("arq:%d/%s/%s",
			s.ARQ.Retries, formatFloat(s.ARQ.Timeout), formatFloat(s.ARQ.Backoff)))
	}
	if s.HasChurn() {
		up, down := formatFloat(s.Churn.MeanUp), formatFloat(s.Churn.MeanDown)
		switch s.ChurnTarget {
		case TargetReps:
			parts = append(parts, fmt.Sprintf("repchurn:%s/%s", up, down))
		case TargetHubs:
			parts = append(parts, fmt.Sprintf("hubchurn:%s/%s/%d", up, down, s.HubCount))
		default:
			parts = append(parts, fmt.Sprintf("churn:%s/%s", up, down))
		}
	}
	if len(parts) == 0 {
		return "perfect"
	}
	return strings.Join(parts, "+")
}

func formatField(f FieldParams) string {
	switch {
	case f.Kind == FieldPolygon:
		var b strings.Builder
		b.WriteString("jampoly:" + formatFloat(f.Loss))
		for _, v := range f.Poly {
			b.WriteString("/" + formatFloat(v.X) + "/" + formatFloat(v.Y))
		}
		return b.String()
	case f.Moving():
		return fmt.Sprintf("mjam:%s/%s/%s/%s/%s/%s",
			formatFloat(f.Center.X), formatFloat(f.Center.Y),
			formatFloat(f.Radius), formatFloat(f.Loss),
			formatFloat(f.Vel.X), formatFloat(f.Vel.Y))
	case f.Period > 0:
		return fmt.Sprintf("jam:%s/%s/%s/%s/%d/%d/%d",
			formatFloat(f.Center.X), formatFloat(f.Center.Y),
			formatFloat(f.Radius), formatFloat(f.Loss), f.From, f.Until, f.Period)
	case f.Scheduled():
		return fmt.Sprintf("jam:%s/%s/%s/%s/%d/%d",
			formatFloat(f.Center.X), formatFloat(f.Center.Y),
			formatFloat(f.Radius), formatFloat(f.Loss), f.From, f.Until)
	default:
		return fmt.Sprintf("jam:%s/%s/%s/%s",
			formatFloat(f.Center.X), formatFloat(f.Center.Y),
			formatFloat(f.Radius), formatFloat(f.Loss))
	}
}

func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// "+" separates components, so exponent forms like 1e+06 must drop
	// the sign (ParseFloat accepts 1e06). Found by FuzzSpecRoundTrip.
	return strings.ReplaceAll(s, "e+", "e")
}

// Parse reads the compact spec form produced by String. The empty string
// and "perfect" both mean the perfect medium. Components separated by
// "+" compose; parameters within a component separate with "/". See
// Spec.String for the grammar.
func Parse(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" || text == "perfect" {
		return s, nil
	}
	for _, part := range strings.Split(text, "+") {
		part = strings.TrimSpace(part)
		kind, args, _ := strings.Cut(part, ":")
		switch kind {
		case "perfect":
			// no-op component, composes with anything
		case "bernoulli", "loss":
			if s.Loss != LossNone {
				return s, fmt.Errorf("channel: spec %q has two loss models", text)
			}
			s.Loss = LossBernoulli
			vals, err := parseFloatList(part, args, 1)
			if err != nil {
				return s, err
			}
			s.LossRate = vals[0]
		case "ge", "gilbert-elliott":
			if s.Loss != LossNone {
				return s, fmt.Errorf("channel: spec %q has two loss models", text)
			}
			s.Loss = LossGilbertElliott
			vals, err := parseFloatList(part, args, 4)
			if err != nil {
				return s, err
			}
			s.GE = GEParams{PGoodToBad: vals[0], PBadToGood: vals[1], LossGood: vals[2], LossBad: vals[3]}
		case "jam":
			f, err := parseJam(part, args)
			if err != nil {
				return s, err
			}
			s.Fields = append(s.Fields, f)
		case "mjam":
			vals, err := parseFloatList(part, args, 6)
			if err != nil {
				return s, err
			}
			s.Fields = append(s.Fields, FieldParams{
				Kind:   FieldDisk,
				Center: geo.Pt(vals[0], vals[1]),
				Radius: vals[2],
				Loss:   vals[3],
				Vel:    geo.Pt(vals[4], vals[5]),
			})
		case "jampoly":
			f, err := parseJamPoly(part, args)
			if err != nil {
				return s, err
			}
			s.Fields = append(s.Fields, f)
		case "cut":
			if s.HasCut() {
				return s, fmt.Errorf("channel: spec %q has two cut components", text)
			}
			vals, err := parseFloatList(part, args, 5)
			if err != nil {
				return s, err
			}
			from, until, err := parseWindow(part, vals[3], vals[4])
			if err != nil {
				return s, err
			}
			cut := CutParams{A: vals[0], B: vals[1], C: vals[2], From: from, Until: until}
			if cut.IsZero() {
				// The zero CutParams encodes "no cut", so an all-zero
				// component would silently validate as a no-op.
				return s, fmt.Errorf("channel: cut component %q is all zero (no line, no window)", part)
			}
			s.Cut = cut
		case "delay":
			if !s.Delay.IsZero() {
				return s, fmt.Errorf("channel: spec %q has two delay components", text)
			}
			d, err := parseDelay(part, args)
			if err != nil {
				return s, err
			}
			s.Delay = d
		case "reorder":
			if s.Reorder > 0 {
				return s, fmt.Errorf("channel: spec %q has two reorder components", text)
			}
			vals, err := parseFloatList(part, args, 1)
			if err != nil {
				return s, err
			}
			if vals[0] <= 0 {
				return s, fmt.Errorf("channel: reorder component %q: probability must be positive", part)
			}
			s.Reorder = vals[0]
		case "dup":
			if s.Dup > 0 {
				return s, fmt.Errorf("channel: spec %q has two dup components", text)
			}
			vals, err := parseFloatList(part, args, 1)
			if err != nil {
				return s, err
			}
			if vals[0] <= 0 {
				return s, fmt.Errorf("channel: dup component %q: probability must be positive", part)
			}
			s.Dup = vals[0]
		case "arq":
			if !s.ARQ.IsZero() {
				return s, fmt.Errorf("channel: spec %q has two arq components", text)
			}
			vals, err := parseFloatList(part, args, 3)
			if err != nil {
				return s, err
			}
			retries := int(vals[0])
			if float64(retries) != vals[0] || retries <= 0 {
				return s, fmt.Errorf("channel: arq component %q: retries must be a positive integer", part)
			}
			s.ARQ = ARQParams{Retries: retries, Timeout: vals[1], Backoff: vals[2]}
		case "churn", "repchurn", "hubchurn":
			if s.HasChurn() {
				return s, fmt.Errorf("channel: spec %q has two churn components", text)
			}
			want := 2
			if kind == "hubchurn" {
				want = 3
			}
			vals, err := parseFloatList(part, args, want)
			if err != nil {
				return s, err
			}
			if vals[0] <= 0 {
				return s, fmt.Errorf("channel: churn component %q: mean up-time must be positive", part)
			}
			s.Churn = ChurnParams{MeanUp: vals[0], MeanDown: vals[1]}
			switch kind {
			case "repchurn":
				s.ChurnTarget = TargetReps
			case "hubchurn":
				s.ChurnTarget = TargetHubs
				k := int(vals[2])
				if float64(k) != vals[2] || k <= 0 {
					return s, fmt.Errorf("channel: hub churn component %q: hub count must be a positive integer", part)
				}
				s.HubCount = k
			}
		default:
			return s, fmt.Errorf("channel: unknown fault component %q (want perfect, bernoulli:P, ge:PGB/PBG/EG/EB, jam:CX/CY/R/LOSS[/FROM/UNTIL[/PERIOD]], mjam:CX/CY/R/LOSS/VX/VY, jampoly:LOSS/X1/Y1/..., cut:A/B/C/FROM/UNTIL, delay:fixed/D, delay:uniform/LO/HI, delay:exp/MEAN, reorder:P, dup:P, arq:RETRIES/TIMEOUT/BACKOFF, churn:UP/DOWN, repchurn:UP/DOWN, or hubchurn:UP/DOWN/K)", part)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// parseJam reads the disk jammer forms: 4 parameters (static), 6
// (one-shot window), or 7 (periodic on/off).
func parseJam(part, args string) (FieldParams, error) {
	fields := strings.Split(args, "/")
	n := len(fields)
	if args == "" || (n != 4 && n != 6 && n != 7) {
		return FieldParams{}, fmt.Errorf("channel: component %q wants 4, 6 or 7 parameters", part)
	}
	vals, err := parseFloatList(part, args, n)
	if err != nil {
		return FieldParams{}, err
	}
	f := FieldParams{
		Kind:   FieldDisk,
		Center: geo.Pt(vals[0], vals[1]),
		Radius: vals[2],
		Loss:   vals[3],
	}
	if n >= 6 {
		f.From, f.Until, err = parseWindow(part, vals[4], vals[5])
		if err != nil {
			return FieldParams{}, err
		}
		if f.From == 0 && f.Until == 0 {
			// 0/0 would silently read as "always active" (the unscheduled
			// encoding); make the caller say what they mean.
			return FieldParams{}, fmt.Errorf("channel: component %q: window 0/0 is empty (omit the window for an always-on field)", part)
		}
	}
	if n == 7 {
		if vals[6] < 0 || vals[6] != float64(uint64(vals[6])) {
			return FieldParams{}, fmt.Errorf("channel: component %q: period %v must be a non-negative integer", part, vals[6])
		}
		f.Period = uint64(vals[6])
	}
	return f, nil
}

// parseDelay reads the delay distribution forms: "delay:fixed/D",
// "delay:uniform/LO/HI", "delay:exp/MEAN".
func parseDelay(part, args string) (DelayParams, error) {
	kind, params, _ := strings.Cut(args, "/")
	var d DelayParams
	var want int
	switch kind {
	case "fixed":
		d.Kind, want = DelayFixed, 1
	case "uniform":
		d.Kind, want = DelayUniform, 2
	case "exp":
		d.Kind, want = DelayExp, 1
	default:
		return d, fmt.Errorf("channel: component %q wants a distribution (fixed/D, uniform/LO/HI, or exp/MEAN)", part)
	}
	vals, err := parseFloatList(part, params, want)
	if err != nil {
		return d, err
	}
	d.A = vals[0]
	if want == 2 {
		d.B = vals[1]
	}
	return d, nil
}

// parseJamPoly reads "jampoly:LOSS/X1/Y1/.../Xk/Yk" (k >= 3 vertices).
func parseJamPoly(part, args string) (FieldParams, error) {
	fields := strings.Split(args, "/")
	n := len(fields)
	if args == "" || n < 7 || n%2 == 0 {
		return FieldParams{}, fmt.Errorf("channel: component %q wants a loss followed by at least 3 x/y vertex pairs", part)
	}
	vals, err := parseFloatList(part, args, n)
	if err != nil {
		return FieldParams{}, err
	}
	f := FieldParams{Kind: FieldPolygon, Loss: vals[0]}
	for i := 1; i < n; i += 2 {
		f.Poly = append(f.Poly, geo.Pt(vals[i], vals[i+1]))
	}
	return f, nil
}

// parseWindow converts a FROM/UNTIL float pair to the uint64 time window
// every scheduled component uses.
func parseWindow(part string, from, until float64) (uint64, uint64, error) {
	for _, v := range []float64{from, until} {
		if v < 0 || v != float64(uint64(v)) {
			return 0, 0, fmt.Errorf("channel: component %q: window bound %v must be a non-negative integer", part, v)
		}
	}
	return uint64(from), uint64(until), nil
}

func parseFloatList(part, args string, want int) ([]float64, error) {
	fields := strings.Split(args, "/")
	if args == "" || len(fields) != want {
		return nil, fmt.Errorf("channel: component %q wants %d parameter(s)", part, want)
	}
	out := make([]float64, want)
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("channel: component %q: bad parameter %q", part, f)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// NaN slips through every range check (all comparisons are
			// false), turning the component into a silent no-op.
			return nil, fmt.Errorf("channel: component %q: parameter %q is not finite", part, f)
		}
		out[i] = v
	}
	return out, nil
}
