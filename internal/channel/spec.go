package channel

import (
	"fmt"
	"strconv"
	"strings"

	"geogossip/internal/rng"
)

// LossModel enumerates the packet-loss processes a Spec can select.
type LossModel int

const (
	// LossNone delivers every packet (between live nodes).
	LossNone LossModel = iota
	// LossBernoulli loses packets i.i.d. with Spec.LossRate.
	LossBernoulli
	// LossGilbertElliott loses packets in bursts per Spec.GE.
	LossGilbertElliott
)

// String implements fmt.Stringer.
func (m LossModel) String() string {
	switch m {
	case LossNone:
		return "perfect"
	case LossBernoulli:
		return "bernoulli"
	case LossGilbertElliott:
		return "gilbert-elliott"
	default:
		return fmt.Sprintf("loss-model(%d)", int(m))
	}
}

// Spec is a declarative, serializable fault-model description: a loss
// process optionally composed with node churn. The zero Spec is the
// perfect medium. Specs travel through facade options, sweep axes, and
// CLI flags; Build turns one into a live Channel wired to an engine's
// RNG streams.
type Spec struct {
	// Loss selects the packet-loss process.
	Loss LossModel
	// LossRate is the i.i.d. loss probability (LossBernoulli only).
	LossRate float64
	// GE parameterizes burst loss (LossGilbertElliott only).
	GE GEParams
	// Churn overlays crash-stop node failure when Churn.MeanUp > 0.
	Churn ChurnParams
}

// IsZero reports whether the spec is the perfect medium.
func (s Spec) IsZero() bool {
	return s.Loss == LossNone && !s.HasChurn()
}

// HasChurn reports whether the spec overlays node churn.
func (s Spec) HasChurn() bool { return s.Churn.MeanUp > 0 }

// HasLoss reports whether the spec's loss process can drop packets
// between live nodes.
func (s Spec) HasLoss() bool {
	switch s.Loss {
	case LossBernoulli:
		return s.LossRate > 0
	case LossGilbertElliott:
		return s.GE.LossGood > 0 || s.GE.LossBad > 0
	}
	return false
}

// ExpectedLossRate returns the long-run per-packet loss probability of
// the loss process (churn excluded).
func (s Spec) ExpectedLossRate() float64 {
	switch s.Loss {
	case LossBernoulli:
		return s.LossRate
	case LossGilbertElliott:
		return s.GE.StationaryLoss()
	}
	return 0
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	switch s.Loss {
	case LossNone:
		if s.LossRate != 0 {
			return fmt.Errorf("channel: loss rate %v set without a loss model", s.LossRate)
		}
	case LossBernoulli:
		if s.LossRate < 0 || s.LossRate > 1 {
			return fmt.Errorf("channel: loss rate %v outside [0, 1]", s.LossRate)
		}
	case LossGilbertElliott:
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"good-to-bad transition", s.GE.PGoodToBad},
			{"bad-to-good transition", s.GE.PBadToGood},
			{"good-state loss", s.GE.LossGood},
			{"bad-state loss", s.GE.LossBad},
		} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("channel: gilbert-elliott %s probability %v outside [0, 1]", p.name, p.v)
			}
		}
	default:
		return fmt.Errorf("channel: unknown loss model %d", int(s.Loss))
	}
	if s.Churn.MeanUp < 0 || s.Churn.MeanDown < 0 {
		return fmt.Errorf("channel: negative churn duration (up %v, down %v)", s.Churn.MeanUp, s.Churn.MeanDown)
	}
	if s.Churn.MeanUp == 0 && s.Churn.MeanDown != 0 {
		return fmt.Errorf("channel: churn mean-down %v set without mean-up", s.Churn.MeanDown)
	}
	return nil
}

// Build turns the spec into a live Channel over n nodes. Loss draws come
// from lossRNG and churn schedules from churnRNG, so an engine wires its
// own deterministic streams in. Build with a zero spec returns Perfect
// and retains neither stream.
func (s Spec) Build(n int, lossRNG, churnRNG *rng.RNG) Channel {
	var ch Channel
	switch s.Loss {
	case LossBernoulli:
		ch = &Bernoulli{P: s.LossRate, R: lossRNG}
	case LossGilbertElliott:
		ch = NewGilbertElliott(s.GE, lossRNG)
	default:
		ch = Perfect{}
	}
	if s.HasChurn() {
		ch = NewChurn(ch, n, s.Churn, churnRNG)
	}
	return ch
}

// String renders the spec in the compact form Parse accepts:
// "perfect", "bernoulli:P", "ge:PGB/PBG/EG/EB", "churn:UP/DOWN", or a
// loss model composed with churn via "+", e.g.
// "bernoulli:0.2+churn:50000/10000".
func (s Spec) String() string {
	var parts []string
	switch s.Loss {
	case LossBernoulli:
		parts = append(parts, "bernoulli:"+formatFloat(s.LossRate))
	case LossGilbertElliott:
		parts = append(parts, fmt.Sprintf("ge:%s/%s/%s/%s",
			formatFloat(s.GE.PGoodToBad), formatFloat(s.GE.PBadToGood),
			formatFloat(s.GE.LossGood), formatFloat(s.GE.LossBad)))
	}
	if s.HasChurn() {
		parts = append(parts, fmt.Sprintf("churn:%s/%s",
			formatFloat(s.Churn.MeanUp), formatFloat(s.Churn.MeanDown)))
	}
	if len(parts) == 0 {
		return "perfect"
	}
	return strings.Join(parts, "+")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Parse reads the compact spec form produced by String. The empty string
// and "perfect" both mean the perfect medium. Components separated by
// "+" compose; parameters within a component separate with "/".
func Parse(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" || text == "perfect" {
		return s, nil
	}
	for _, part := range strings.Split(text, "+") {
		part = strings.TrimSpace(part)
		kind, args, _ := strings.Cut(part, ":")
		switch kind {
		case "perfect":
			// no-op component, composes with anything
		case "bernoulli", "loss":
			if s.Loss != LossNone {
				return s, fmt.Errorf("channel: spec %q has two loss models", text)
			}
			s.Loss = LossBernoulli
			vals, err := parseFloatList(part, args, 1)
			if err != nil {
				return s, err
			}
			s.LossRate = vals[0]
		case "ge", "gilbert-elliott":
			if s.Loss != LossNone {
				return s, fmt.Errorf("channel: spec %q has two loss models", text)
			}
			s.Loss = LossGilbertElliott
			vals, err := parseFloatList(part, args, 4)
			if err != nil {
				return s, err
			}
			s.GE = GEParams{PGoodToBad: vals[0], PBadToGood: vals[1], LossGood: vals[2], LossBad: vals[3]}
		case "churn":
			if s.HasChurn() {
				return s, fmt.Errorf("channel: spec %q has two churn components", text)
			}
			vals, err := parseFloatList(part, args, 2)
			if err != nil {
				return s, err
			}
			if vals[0] <= 0 {
				return s, fmt.Errorf("channel: churn component %q: mean up-time must be positive", part)
			}
			s.Churn = ChurnParams{MeanUp: vals[0], MeanDown: vals[1]}
		default:
			return s, fmt.Errorf("channel: unknown fault component %q (want perfect, bernoulli:P, ge:PGB/PBG/EG/EB, or churn:UP/DOWN)", part)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

func parseFloatList(part, args string, want int) ([]float64, error) {
	fields := strings.Split(args, "/")
	if args == "" || len(fields) != want {
		return nil, fmt.Errorf("channel: component %q wants %d parameter(s)", part, want)
	}
	out := make([]float64, want)
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("channel: component %q: bad parameter %q", part, f)
		}
		out[i] = v
	}
	return out, nil
}
