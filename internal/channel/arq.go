package channel

import (
	"fmt"

	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/trace"
)

// ARQParams configures transport-level retransmission (stop-and-wait ARQ
// with exponential backoff).
type ARQParams struct {
	// Retries is the retransmission budget after the first attempt; 0
	// disables the wrapper.
	Retries int
	// Timeout is the ack timeout before the first retry, in engine time
	// units. Each lost attempt waits out its (backed-off) timeout before
	// the next retry — or before the sender gives up.
	Timeout float64
	// Backoff multiplies the timeout after every retry (>= 1).
	Backoff float64
}

// IsZero reports whether ARQ is disabled.
func (a ARQParams) IsZero() bool { return a.Retries == 0 }

func (a ARQParams) validate() error {
	if a.Retries < 0 {
		return fmt.Errorf("channel: arq retries %d must not be negative", a.Retries)
	}
	if a.IsZero() {
		if a.Timeout != 0 || a.Backoff != 0 {
			return fmt.Errorf("channel: arq timeout/backoff (%v, %v) set without retries", a.Timeout, a.Backoff)
		}
		return nil
	}
	if a.Timeout < 0 {
		return fmt.Errorf("channel: arq timeout %v must not be negative", a.Timeout)
	}
	if a.Backoff < 1 {
		return fmt.Errorf("channel: arq backoff %v must be at least 1", a.Backoff)
	}
	return nil
}

// ARQ wraps any inner channel with transport-level retransmission: a
// failed hop/route delivery is retried up to Retries times, each retry
// preceded by an ack-timeout wait of Timeout x Backoff^k plus a
// deterministic jitter draw (uniform in [0, wait/2), from a stream
// derived by name from the loss stream's seed — bit-reproducible and
// invisible to the loss sequence). Every attempt re-runs the full inner
// decision, so retries against a bursty (Gilbert–Elliott) or jammed
// medium genuinely re-sample the channel state, and every failed
// attempt's airtime accumulates into the delivery's transmission bill.
//
// Charge contract: on success, paid is the extra transmissions the
// transport layer spent beyond the exchange's base cost — the failed
// attempts' airtime plus any inner extra (duplicate copies) — which the
// engine adds to its success charge. On give-up the inner loss verdict
// stands, with paid the total airtime of all attempts; the engine
// accounts it through its normal loss path. With the wrapper absent
// (Retries 0) no draw, wait, or charge changes, so transport-free runs
// stay byte-identical.
//
// Composition: ARQ sits outside delay (each retry re-pays medium
// latency) and inside churn (a dead endpoint fails the delivery without
// consuming the retry budget — retransmitting at a crashed node is not
// the failure mode ARQ repairs).
type ARQ struct {
	inner  Channel
	params ARQParams
	r      *rng.RNG
	tl     *Timeline
	obs    *obs.Scope
	tracer trace.Tracer
}

// NewARQ wraps inner with retransmission, drawing jitter from r and
// scheduling waits on tl (which may be nil to discard them).
func NewARQ(inner Channel, params ARQParams, r *rng.RNG, tl *Timeline, scope *obs.Scope, tracer trace.Tracer) *ARQ {
	a := &ARQ{}
	a.reset(inner, params, r, tl, scope, tracer)
	return a
}

// reset re-initializes a pooled ARQ in place.
func (a *ARQ) reset(inner Channel, params ARQParams, r *rng.RNG, tl *Timeline, scope *obs.Scope, tracer trace.Tracer) {
	if inner == nil {
		inner = Perfect{}
	}
	a.inner, a.params, a.r, a.tl, a.obs, a.tracer = inner, params, r, tl, scope, tracer
}

const (
	deliverHop = iota
	deliverRoute
	deliverRoundTrip
)

func (a *ARQ) attempt(p Packet, shape int) (bool, int) {
	switch shape {
	case deliverHop:
		return a.inner.DeliverHop(p)
	case deliverRoute:
		return a.inner.DeliverRoute(p)
	default:
		return a.inner.DeliverRoundTrip(p)
	}
}

func (a *ARQ) deliver(p Packet, shape int) (bool, int) {
	ok, extra := a.attempt(p, shape)
	if ok {
		return true, extra
	}
	total := extra
	wait := a.params.Timeout
	for retry := 0; ; retry++ {
		// The outstanding attempt was lost: the ack timer runs out.
		a.obs.ARQTimeout()
		w := wait
		if wait > 0 {
			w += a.r.Float64() * wait / 2
		}
		a.tl.Add(w)
		a.obs.BackoffWait(w)
		if a.tracer != nil {
			a.tracer.Record(trace.Event{Kind: trace.KindTimeout, Square: -1, NodeA: p.Src, NodeB: p.Dst})
		}
		if retry == a.params.Retries {
			// Budget exhausted: the inner loss verdict stands, billed for
			// every attempt's airtime.
			return false, total
		}
		a.obs.Retransmit()
		if a.tracer != nil {
			a.tracer.Record(trace.Event{Kind: trace.KindRetransmit, Square: -1, NodeA: p.Src, NodeB: p.Dst})
		}
		wait *= a.params.Backoff
		ok, extra = a.attempt(p, shape)
		if ok {
			return true, total + extra
		}
		total += extra
	}
}

// Advance implements Channel.
func (a *ARQ) Advance(now uint64) { a.inner.Advance(now) }

// Alive implements Channel.
func (a *ARQ) Alive(i int32) bool { return a.inner.Alive(i) }

// DeliverHop implements Channel.
func (a *ARQ) DeliverHop(p Packet) (bool, int) { return a.deliver(p, deliverHop) }

// DeliverRoute implements Channel.
func (a *ARQ) DeliverRoute(p Packet) (bool, int) { return a.deliver(p, deliverRoute) }

// DeliverRoundTrip implements Channel.
func (a *ARQ) DeliverRoundTrip(p Packet) (bool, int) { return a.deliver(p, deliverRoundTrip) }

// Name implements Channel.
func (a *ARQ) Name() string {
	if a.inner.Name() == "perfect" {
		return "arq"
	}
	return a.inner.Name() + "+arq"
}

// Compile-time interface check.
var _ Channel = (*ARQ)(nil)
