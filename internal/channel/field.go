package channel

import (
	"fmt"
	"math"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

// FieldKind enumerates jamming-field shapes.
type FieldKind int

const (
	// FieldDisk is a circular jamming region (static, scheduled, or
	// moving).
	FieldDisk FieldKind = iota + 1
	// FieldPolygon is a convex polygonal jamming region.
	FieldPolygon
)

// FieldParams declaratively describes one spatially-correlated loss
// field: a region of the unit square in which packets are lost with an
// elevated probability — the jamming / interference / obstruction model
// geometric sensor deployments exhibit and id-only loss processes cannot
// express. The zero value is no field.
type FieldParams struct {
	// Kind selects the region shape.
	Kind FieldKind
	// Center and Radius define the disk (FieldDisk).
	Center geo.Point
	Radius float64
	// Poly lists the polygon vertices in counter-clockwise order
	// (FieldPolygon); the polygon must be convex.
	Poly []geo.Point
	// Loss is the per-packet loss probability inside the region.
	Loss float64
	// From and Until bound the active window [From, Until) in the
	// channel's time unit. Both zero means always active. With Period > 0
	// the window repeats: the field is on when now >= From and
	// (now-From) mod Period < Until-From — the scheduled on/off jammer.
	From, Until uint64
	// Period is the on/off cycle length (0 = the window fires once).
	Period uint64
	// Vel moves the disk centre by Vel per time unit, reflecting off the
	// unit-square walls (FieldDisk only) — the moving-jammer variant.
	Vel geo.Point
}

// Active reports whether the field is on at time now.
func (f FieldParams) Active(now uint64) bool {
	if f.From == 0 && f.Until == 0 {
		return true
	}
	if now < f.From {
		return false
	}
	if f.Period > 0 {
		return (now-f.From)%f.Period < f.Until-f.From
	}
	return now < f.Until
}

// Moving reports whether the disk travels.
func (f FieldParams) Moving() bool { return f.Vel.X != 0 || f.Vel.Y != 0 }

// Scheduled reports whether the field has an on/off window.
func (f FieldParams) Scheduled() bool { return f.From != 0 || f.Until != 0 }

// CenterAt returns the disk centre at time now: the start centre
// translated by Vel·now and reflected back into the unit square
// (triangle-wave folding), so a moving jammer bounces off the walls
// forever and its position is a pure function of time.
func (f FieldParams) CenterAt(now uint64) geo.Point {
	if !f.Moving() {
		return f.Center
	}
	t := float64(now)
	return geo.Pt(reflect01(f.Center.X+f.Vel.X*t), reflect01(f.Center.Y+f.Vel.Y*t))
}

// reflect01 folds x into [0, 1] as a triangle wave (reflection off both
// walls).
func reflect01(x float64) float64 {
	x = math.Mod(x, 2)
	if x < 0 {
		x += 2
	}
	if x > 1 {
		x = 2 - x
	}
	return x
}

// LossAt returns the field's local loss probability at position p and
// time now: Loss inside the (current) region while active, 0 elsewhere.
func (f FieldParams) LossAt(p geo.Point, now uint64) float64 {
	if f.Loss <= 0 || !f.Active(now) {
		return 0
	}
	switch f.Kind {
	case FieldDisk:
		if f.CenterAt(now).Dist2(p) <= f.Radius*f.Radius {
			return f.Loss
		}
	case FieldPolygon:
		if geo.Polygon(f.Poly).Contains(p) {
			return f.Loss
		}
	}
	return 0
}

// AreaFraction returns the fraction of the unit square the region covers
// (used by MeanLoss to estimate the field's long-run impact on uniform
// traffic). Disks are clipped against the unit square; polygon area is
// clipped the same way, so regions extending past the field boundary
// never claim more than the whole square.
func (f FieldParams) AreaFraction() float64 {
	switch f.Kind {
	case FieldDisk:
		return geo.DiskSquareOverlap(f.Center, f.Radius)
	case FieldPolygon:
		clipped := geo.Polygon(f.Poly).
			ClipHalfPlane(-1, 0, 0). // x >= 0
			ClipHalfPlane(1, 0, 1).  // x <= 1
			ClipHalfPlane(0, -1, 0). // y >= 0
			ClipHalfPlane(0, 1, 1)   // y <= 1
		return clipped.Area()
	}
	return 0
}

// DutyCycle returns the long-run fraction of time the field is active.
// One-shot windows count as active (a conservative budgeting choice: the
// window dominates exactly the part of the run it covers).
func (f FieldParams) DutyCycle() float64 {
	if !f.Scheduled() || f.Period == 0 {
		return 1
	}
	return float64(f.Until-f.From) / float64(f.Period)
}

// MeanLoss returns the field's expected per-packet loss for a packet
// whose sample point is uniform on the unit square: Loss × area fraction
// × duty cycle. It is a budgeting estimate, not an exact stationary
// rate — real traffic is not uniform, routes sample three points, and a
// moving disk is clipped at its initial centre rather than averaged
// over its trajectory.
func (f FieldParams) MeanLoss() float64 {
	return f.Loss * f.AreaFraction() * f.DutyCycle()
}

// validate reports the first problem with the field parameters.
func (f FieldParams) validate() error {
	switch f.Kind {
	case FieldDisk:
		if !(f.Radius > 0) || math.IsInf(f.Radius, 0) { // NaN-safe
			return fmt.Errorf("channel: jamming disk radius %v must be positive and finite", f.Radius)
		}
	case FieldPolygon:
		if len(f.Poly) < 3 {
			return fmt.Errorf("channel: jamming polygon needs at least 3 vertices, got %d", len(f.Poly))
		}
		if !geo.Polygon(f.Poly).IsConvexCCW() {
			return fmt.Errorf("channel: jamming polygon must be convex with counter-clockwise vertices")
		}
		if f.Moving() {
			return fmt.Errorf("channel: jamming polygons cannot move")
		}
	default:
		return fmt.Errorf("channel: unknown field kind %d", int(f.Kind))
	}
	if !(f.Loss >= 0 && f.Loss <= 1) { // NaN-safe
		return fmt.Errorf("channel: field loss %v outside [0, 1]", f.Loss)
	}
	if f.Scheduled() && f.Until <= f.From {
		return fmt.Errorf("channel: field window [%d, %d) is empty", f.From, f.Until)
	}
	if f.Period > 0 && !f.Scheduled() {
		return fmt.Errorf("channel: field period %d set without an on-window", f.Period)
	}
	// The spec grammar has no form combining motion or a polygon with an
	// on/off window; rejecting the combinations keeps every valid spec
	// printable and round-trippable (Spec.String would otherwise drop
	// the window silently).
	if f.Moving() && f.Scheduled() {
		return fmt.Errorf("channel: a moving jammer cannot also have an on/off window")
	}
	if f.Kind == FieldPolygon && f.Scheduled() {
		return fmt.Errorf("channel: jamming polygons cannot be scheduled")
	}
	if f.Period > 0 && f.Period < f.Until-f.From {
		return fmt.Errorf("channel: field period %d shorter than its on-window %d", f.Period, f.Until-f.From)
	}
	return nil
}

// SpatialLoss overlays geometry-correlated loss on an inner medium: each
// delivery samples every active field at the packet's source, midpoint
// and destination (the midpoint standing in for the route's path, which
// greedy routing keeps close to the straight line) and takes the worst
// local probability per field; independent fields then compose as
// independent loss events. A packet that survives the fields still faces
// the inner channel.
//
// Draw discipline mirrors Bernoulli: one Bernoulli draw per delivery
// only when the combined probability is positive, plus one IntN draw for
// the failure point of a lost multi-hop leg — so traffic outside every
// field consumes no randomness.
//
// Hot-path structure: every delivery of a spatial-fault run evaluates
// every field at three sample points, so each field is precompiled into
// a fieldEval carrying the region's bounding box — points outside the
// box are rejected with four comparisons before any disk or polygon
// math — and a moving disk's reflected centre (the expensive part of
// its evaluation) is computed once per decision time, not once per
// sample point. Both are pure rearrangements: the loss probability per
// packet is bit-identical to evaluating FieldParams.LossAt per point.
type SpatialLoss struct {
	inner Channel
	evals []fieldEval
	r     *rng.RNG
}

// fieldEval is one field plus its precompiled fast-rejection state.
type fieldEval struct {
	f FieldParams
	// minX..maxY is the region's bounding box (inclusive): for disks the
	// centre ± radius, for polygons the vertex hull box. Recomputed per
	// decision time for moving disks, fixed otherwise.
	minX, minY, maxX, maxY float64
	// center is the disk centre the box was built around.
	center geo.Point
	// boxNow is the decision time the moving box corresponds to; primed
	// marks it valid (time zero is a legitimate Now).
	boxNow uint64
	primed bool
	moving bool
}

// NewSpatialLoss wraps inner (nil selects Perfect) with the given loss
// fields, drawing from r.
func NewSpatialLoss(inner Channel, fields []FieldParams, r *rng.RNG) *SpatialLoss {
	if inner == nil {
		inner = Perfect{}
	}
	s := &SpatialLoss{inner: inner, evals: make([]fieldEval, len(fields)), r: r}
	for i, f := range fields {
		s.initEval(&s.evals[i], f)
	}
	return s
}

// initEval fills one evaluator with its field and precompiled
// fast-rejection state (shared by NewSpatialLoss and the pooled reset).
func (s *SpatialLoss) initEval(ev *fieldEval, f FieldParams) {
	ev.f = f
	ev.moving = f.Moving()
	switch {
	case f.Kind == FieldDisk && !ev.moving:
		ev.center = f.Center
		ev.setDiskBox(f.Center, f.Radius)
	case f.Kind == FieldPolygon:
		ev.minX, ev.minY = math.Inf(1), math.Inf(1)
		ev.maxX, ev.maxY = math.Inf(-1), math.Inf(-1)
		for _, v := range f.Poly {
			ev.minX = math.Min(ev.minX, v.X)
			ev.minY = math.Min(ev.minY, v.Y)
			ev.maxX = math.Max(ev.maxX, v.X)
			ev.maxY = math.Max(ev.maxY, v.Y)
		}
	}
}

func (ev *fieldEval) setDiskBox(c geo.Point, radius float64) {
	ev.minX, ev.minY = c.X-radius, c.Y-radius
	ev.maxX, ev.maxY = c.X+radius, c.Y+radius
}

// outside reports whether p provably lies outside the field region (the
// bounding-box early-out). False only means "needs the exact test".
func (ev *fieldEval) outside(p geo.Point) bool {
	return p.X < ev.minX || p.X > ev.maxX || p.Y < ev.minY || p.Y > ev.maxY
}

// lossAtPoint is FieldParams.LossAt with the activity check hoisted and
// the disk centre supplied by the caller.
func (ev *fieldEval) lossAtPoint(p geo.Point) float64 {
	if ev.outside(p) {
		return 0
	}
	f := &ev.f
	switch f.Kind {
	case FieldDisk:
		if ev.center.Dist2(p) <= f.Radius*f.Radius {
			return f.Loss
		}
	case FieldPolygon:
		if geo.Polygon(f.Poly).Contains(p) {
			return f.Loss
		}
	}
	return 0
}

// lossAt combines the fields' local probabilities for the packet: per
// field the maximum over the three sample points, across fields the
// independent-events composition 1 − Π(1 − qᵢ).
func (s *SpatialLoss) lossAt(p Packet) float64 {
	survive := 1.0
	mid := p.Mid()
	for i := range s.evals {
		ev := &s.evals[i]
		f := &ev.f
		if f.Loss <= 0 || !f.Active(p.Now) {
			continue
		}
		if ev.moving && (!ev.primed || ev.boxNow != p.Now) {
			// One reflected-centre computation per decision time covers
			// all three sample points (and any further packet at the
			// same time).
			ev.center = f.CenterAt(p.Now)
			ev.setDiskBox(ev.center, f.Radius)
			ev.boxNow, ev.primed = p.Now, true
		}
		q := ev.lossAtPoint(p.SrcPos)
		if v := ev.lossAtPoint(mid); v > q {
			q = v
		}
		if v := ev.lossAtPoint(p.DstPos); v > q {
			q = v
		}
		survive *= 1 - q
	}
	return 1 - survive
}

// Advance implements Channel.
func (s *SpatialLoss) Advance(now uint64) { s.inner.Advance(now) }

// Alive implements Channel.
func (s *SpatialLoss) Alive(i int32) bool { return s.inner.Alive(i) }

// DeliverHop implements Channel.
func (s *SpatialLoss) DeliverHop(p Packet) (bool, int) {
	if q := s.lossAt(p); q > 0 && s.r.Bernoulli(q) {
		return false, 1
	}
	return s.inner.DeliverHop(p)
}

// DeliverRoute implements Channel.
func (s *SpatialLoss) DeliverRoute(p Packet) (bool, int) {
	if q := s.lossAt(p); q > 0 && s.r.Bernoulli(q) {
		return false, partialCost(s.r, p.Hops)
	}
	return s.inner.DeliverRoute(p)
}

// DeliverRoundTrip implements Channel.
func (s *SpatialLoss) DeliverRoundTrip(p Packet) (bool, int) {
	// Both legs cross the same geometry: lost unless both survive.
	if q := s.lossAt(p); q > 0 && s.r.Bernoulli(1-(1-q)*(1-q)) {
		return false, partialCost(s.r, 2*p.Hops)
	}
	return s.inner.DeliverRoundTrip(p)
}

// Name implements Channel.
func (s *SpatialLoss) Name() string {
	if s.inner.Name() == "perfect" {
		return "jam"
	}
	return s.inner.Name() + "+jam"
}

// CutParams describes a partition/heal event: during [From, Until) the
// line a·x + b·y = c severs the network — any packet whose endpoints lie
// on opposite sides is dropped deterministically — and afterwards the
// medium heals. This is the bridge-collapse / backbone-outage scenario:
// unlike random loss, no amount of retrying crosses the cut until it
// heals.
type CutParams struct {
	// A, B and C define the cut line a·x + b·y = c.
	A, B, C float64
	// From and Until bound the severed window [From, Until) in the
	// channel's time unit.
	From, Until uint64
}

// Active reports whether the cut severs at time now.
func (c CutParams) Active(now uint64) bool { return now >= c.From && now < c.Until }

// Severs reports whether the segment p→q crosses the cut line.
func (c CutParams) Severs(p, q geo.Point) bool {
	sp := c.A*p.X + c.B*p.Y - c.C
	sq := c.A*q.X + c.B*q.Y - c.C
	return (sp < 0) != (sq < 0)
}

// IsZero reports whether the params describe no cut.
func (c CutParams) IsZero() bool { return c == CutParams{} }

func (c CutParams) validate() error {
	if c.IsZero() {
		return nil
	}
	if c.A == 0 && c.B == 0 {
		return fmt.Errorf("channel: cut line 0·x + 0·y = %v is degenerate", c.C)
	}
	for _, v := range []float64{c.A, c.B, c.C} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("channel: cut line coefficient %v is not finite", v)
		}
	}
	if c.Until <= c.From {
		return fmt.Errorf("channel: cut window [%d, %d) is empty", c.From, c.Until)
	}
	return nil
}

// Partition drops every packet crossing an active cut line, consuming no
// randomness: a crossing route dies (approximately) at the cut, paying
// half its hops.
type Partition struct {
	inner Channel
	cut   CutParams
}

// NewPartition wraps inner (nil selects Perfect) with the cut.
func NewPartition(inner Channel, cut CutParams) *Partition {
	if inner == nil {
		inner = Perfect{}
	}
	return &Partition{inner: inner, cut: cut}
}

// Advance implements Channel.
func (c *Partition) Advance(now uint64) { c.inner.Advance(now) }

// Alive implements Channel.
func (c *Partition) Alive(i int32) bool { return c.inner.Alive(i) }

// DeliverHop implements Channel.
func (c *Partition) DeliverHop(p Packet) (bool, int) {
	if c.cut.Active(p.Now) && c.cut.Severs(p.SrcPos, p.DstPos) {
		return false, 1
	}
	return c.inner.DeliverHop(p)
}

// DeliverRoute implements Channel.
func (c *Partition) DeliverRoute(p Packet) (bool, int) {
	if c.cut.Active(p.Now) && c.cut.Severs(p.SrcPos, p.DstPos) {
		return false, (p.Hops + 1) / 2 // died at the cut, roughly midway
	}
	return c.inner.DeliverRoute(p)
}

// DeliverRoundTrip implements Channel.
func (c *Partition) DeliverRoundTrip(p Packet) (bool, int) {
	if c.cut.Active(p.Now) && c.cut.Severs(p.SrcPos, p.DstPos) {
		return false, (p.Hops + 1) / 2 // outbound leg died at the cut
	}
	return c.inner.DeliverRoundTrip(p)
}

// Name implements Channel.
func (c *Partition) Name() string {
	if c.inner.Name() == "perfect" {
		return "cut"
	}
	return c.inner.Name() + "+cut"
}

// Compile-time interface checks.
var (
	_ Channel = (*SpatialLoss)(nil)
	_ Channel = (*Partition)(nil)
)
