package channel

import (
	"testing"

	"geogossip/internal/rng"
)

func TestTimelineHeapOrdering(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	// Push out of order, with a time tie: pops must come back in
	// (time, seq) order — seq breaks the 5.5 tie in push order.
	for _, ev := range []timelineEvent{
		{at: 5.5, seq: 0},
		{at: 2.25, seq: 1},
		{at: 5.5, seq: 2},
		{at: 3.5, seq: 3},
		{at: 0.75, seq: 4},
	} {
		tl.push(ev)
	}
	want := []timelineEvent{{0.75, 4}, {2.25, 1}, {3.5, 3}, {5.5, 0}, {5.5, 2}}
	for i, w := range want {
		if got := tl.pop(); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestTimelineFinishSchedulesAndTracksHigh(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	if !tl.Active() {
		t.Fatal("reset-active timeline not active")
	}
	tl.begin()
	tl.Add(1.5)
	tl.Add(2) // latency accumulates across wrappers
	tl.Add(0) // zero and negative contributions are discarded
	tl.Add(-3)
	if got := tl.finish(10); got != 3.5 {
		t.Fatalf("finish latency %v, want 3.5", got)
	}
	if tl.Pending() != 1 || tl.High() != 13.5 {
		t.Fatalf("after finish: pending %d high %v, want 1 and 13.5", tl.Pending(), tl.High())
	}
	// A bracket with no accumulated latency schedules nothing.
	tl.begin()
	if got := tl.finish(20); got != 0 {
		t.Fatalf("empty bracket latency %v, want 0", got)
	}
	if tl.Pending() != 1 {
		t.Fatalf("empty bracket scheduled an event: pending %d", tl.Pending())
	}
	// An earlier completion never lowers the high-water mark.
	tl.begin()
	tl.Add(0.25)
	tl.finish(1)
	if tl.High() != 13.5 {
		t.Fatalf("high regressed to %v", tl.High())
	}
}

func TestTimelineDrainToFloorsEventTimes(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	for _, c := range []struct{ now, lat float64 }{
		{99, 0.9},  // completes 99.9  -> advance(99)
		{99, 1.2},  // completes 100.2 -> advance(100)
		{100, 0.6}, // completes 100.6 -> advance(100)
		{199, 0.9}, // completes 199.9 -> advance(199)
		{199, 1.4}, // completes 200.4 -> advance(200), past the drain horizon below
	} {
		tl.begin()
		tl.Add(c.lat)
		tl.finish(c.now)
	}
	var got []uint64
	tl.DrainTo(200, func(now uint64) { got = append(got, now) })
	want := []uint64{99, 100, 100, 199}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if tl.Pending() != 1 {
		t.Fatalf("events past the horizon must stay pending, got %d", tl.Pending())
	}
	tl.DrainTo(1000, nil) // nil advance is allowed: events are discarded
	if tl.Pending() != 0 {
		t.Fatalf("final drain left %d events", tl.Pending())
	}
}

func TestTimelineNilAndInactiveAreSafe(t *testing.T) {
	var nilTL *Timeline
	if nilTL.Active() {
		t.Fatal("nil timeline active")
	}
	nilTL.Add(5)
	nilTL.DrainTo(100, func(uint64) { t.Fatal("nil timeline drained an event") })
	if nilTL.Pending() != 0 || nilTL.High() != 0 {
		t.Fatal("nil timeline reported state")
	}
	var tl Timeline
	tl.Reset(false)
	if tl.Active() {
		t.Fatal("inactive timeline reported active")
	}
}

func TestTimelineResetClearsStateKeepsStorage(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	for i := 0; i < 64; i++ {
		tl.begin()
		tl.Add(float64(i) + 0.5)
		tl.finish(float64(i))
	}
	grown := cap(tl.heap)
	tl.Reset(true)
	if tl.Pending() != 0 || tl.High() != 0 || tl.seq != 0 || tl.pend != 0 {
		t.Fatalf("reset left state: pending %d high %v seq %d pend %v", tl.Pending(), tl.High(), tl.seq, tl.pend)
	}
	if cap(tl.heap) != grown {
		t.Fatalf("reset dropped heap storage: cap %d, want %d", cap(tl.heap), grown)
	}
}

func TestTimedBracketSchedulesPerDelivery(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	inner := NewDelay(Perfect{}, DelayParams{Kind: DelayFixed, A: 2}, 0, 0, rng.New(1), &tl)
	ch := NewTimed(inner, &tl, nil)
	if got := ch.Name(); got != "delay" {
		t.Fatalf("timed bracket leaked into the name: %q", got)
	}
	p := pkt(0, 1, 3)
	p.Now = 7
	if ok, paid := ch.DeliverRoute(p); !ok || paid != 0 {
		t.Fatalf("DeliverRoute = %v, %d", ok, paid)
	}
	// One completion at decision time + hops x fixed delay = 7 + 6.
	if tl.Pending() != 1 || tl.High() != 13 {
		t.Fatalf("pending %d high %v, want 1 and 13", tl.Pending(), tl.High())
	}
	var at []uint64
	tl.DrainTo(100, func(now uint64) { at = append(at, now) })
	if len(at) != 1 || at[0] != 13 {
		t.Fatalf("drained %v, want [13]", at)
	}
}

// TestTransportOffTickPathAllocFree pins the zero-delay/ARQ-off contract:
// a pooled channel without transport components must deliver and advance
// without touching the heap, exactly like the pre-transport layer did.
func TestTransportOffTickPathAllocFree(t *testing.T) {
	spec, err := Parse("bernoulli:0.2")
	if err != nil {
		t.Fatal(err)
	}
	var pool Pool
	var tl Timeline
	tl.Reset(false) // transport off: the engine still owns a (dormant) timeline
	ch, err := spec.BuildWith(&pool, 16, Env{Timeline: &tl}, rng.New(3), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	p := pkt(1, 2, 4)
	var now uint64
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		ch.Advance(now)
		p.Now = now
		ch.DeliverHop(p)
		ch.DeliverRoute(p)
		ch.DeliverRoundTrip(p)
		tl.DrainTo(float64(now), nil)
	})
	if allocs != 0 {
		t.Fatalf("transport-off tick path allocates %v per tick, want 0", allocs)
	}
}

// TestTransportTickPathAllocFree guards the live transport path too: with
// the timeline warmed up (heap capacity established) a pooled
// delay+ARQ channel delivers, schedules, and drains without allocating.
func TestTransportTickPathAllocFree(t *testing.T) {
	spec, err := Parse("bernoulli:0.2+delay:exp/0.5+arq:2/1/2")
	if err != nil {
		t.Fatal(err)
	}
	var pool Pool
	var tl Timeline
	tl.Reset(true)
	ch, err := spec.BuildWith(&pool, 16, Env{Timeline: &tl}, rng.New(3), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	p := pkt(1, 2, 4)
	var now uint64
	tick := func() {
		now++
		ch.Advance(now)
		p.Now = now
		ch.DeliverHop(p)
		ch.DeliverRoute(p)
		tl.DrainTo(float64(now), func(uint64) {})
	}
	for i := 0; i < 64; i++ {
		tick() // warm the heap past its steady-state capacity
	}
	if allocs := testing.AllocsPerRun(1000, tick); allocs != 0 {
		t.Fatalf("transport tick path allocates %v per tick after warmup, want 0", allocs)
	}
}
