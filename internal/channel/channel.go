// Package channel models the radio medium every gossip engine transmits
// through: per-packet delivery decisions (loss) and a node-liveness view
// (churn). Engines route every data-packet delivery through a Channel
// instead of hand-rolling inline Bernoulli checks, so a new fault model —
// bursty loss, spatially correlated jamming, partitions, crash-stop
// failures, revival — becomes available to every algorithm and the whole
// sweep grid at once.
//
// The three delivery methods mirror the three packet shapes the engines
// use: a single-hop exchange with a graph neighbour (DeliverHop), one leg
// of a multi-hop greedy route (DeliverRoute), and a representative
// round trip out-and-back (DeliverRoundTrip). Each receives a Packet —
// the delivery's full spatial and temporal context, not bare node ids —
// and reports whether the packet survived and, when it did not, how many
// transmissions were paid before it died — lost packets still cost radio
// energy. The context is what lets geometry-aware media (field.go) lose
// packets by where they travel and when, the failure mode geometric
// sensor deployments actually exhibit. See DESIGN.md §5 for the full
// contract.
//
// Determinism contract: a Channel draws randomness only from the RNG
// streams it was built over, in a fixed per-call order, so runs replay
// bit-for-bit. Bernoulli is additionally draw-compatible with the inline
// `LossRate` checks the engines used before this package existed: the
// same streams see the same draw sequence, keeping historical results
// bit-identical.
package channel

import (
	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

// Packet is the delivery context every Channel verdict receives: endpoint
// node ids and positions, the route length, and the simulation time of
// the decision. Non-spatial media (Bernoulli, GilbertElliott) read only
// ids and hop counts; spatial media (SpatialLoss, Partition) read
// positions and time. Engines therefore thread their geometry through
// every delivery call — see sim.Harness.Packet for the standard
// constructor.
type Packet struct {
	// Src and Dst are the endpoint node ids.
	Src, Dst int32
	// SrcPos and DstPos are the endpoint positions in the unit square.
	// Engines without position data may leave them zero; spatial media
	// then see all traffic at the origin.
	SrcPos, DstPos geo.Point
	// Hops is the route length in transmissions: 1 for a single-hop
	// exchange, the leg's hop count for DeliverRoute, and the outbound
	// hop count for DeliverRoundTrip (the return leg is assumed
	// symmetric).
	Hops int
	// Now is the engine's simulation time at the decision, in the same
	// unit as Advance (ticks for the clock-driven engines, transmissions
	// for the round-structured recursive engine).
	Now uint64
}

// Mid returns the midpoint of the src→dst segment — the cheap proxy for
// "where the route travels" that spatial fields sample in addition to
// the endpoints (greedy geographic routes hug the straight line between
// their endpoints).
func (p Packet) Mid() geo.Point {
	return geo.Pt((p.SrcPos.X+p.DstPos.X)/2, (p.SrcPos.Y+p.DstPos.Y)/2)
}

// Channel decides the fate of every data packet and reports node
// liveness. Implementations are single-goroutine, like the engines.
type Channel interface {
	// Advance moves the channel's clock to the global time now (engine
	// ticks for the clock-driven engines, transmissions for the
	// round-structured recursive engine). Time-dependent state — churn
	// up/down flips — is evaluated against the most recent Advance.
	Advance(now uint64)
	// Alive reports whether node i is currently up. Engines skip clock
	// ticks owned by dead nodes; deliveries to dead nodes fail inside
	// Deliver*.
	Alive(i int32) bool
	// DeliverHop decides a single-hop data packet (p.Hops is 1). When
	// the packet is lost, paid is the transmissions already spent (the
	// outbound message: 1).
	DeliverHop(p Packet) (ok bool, paid int)
	// DeliverRoute decides one leg of a multi-hop route of p.Hops hops.
	// When the packet is lost, paid is the cost up to the hop where it
	// died (uniform over the route).
	DeliverRoute(p Packet) (ok bool, paid int)
	// DeliverRoundTrip decides a representative round trip src→dst→src
	// whose outbound leg is p.Hops. When either leg is lost, paid is the
	// cost up to the failure point.
	DeliverRoundTrip(p Packet) (ok bool, paid int)
	// Name identifies the fault model for results and traces.
	Name() string
}

// Perfect is the lossless, failure-free medium: every packet delivered,
// every node alive, no randomness consumed.
type Perfect struct{}

// Advance implements Channel.
func (Perfect) Advance(uint64) {}

// Alive implements Channel.
func (Perfect) Alive(int32) bool { return true }

// DeliverHop implements Channel.
func (Perfect) DeliverHop(Packet) (bool, int) { return true, 0 }

// DeliverRoute implements Channel.
func (Perfect) DeliverRoute(Packet) (bool, int) { return true, 0 }

// DeliverRoundTrip implements Channel.
func (Perfect) DeliverRoundTrip(Packet) (bool, int) { return true, 0 }

// Name implements Channel.
func (Perfect) Name() string { return "perfect" }

// Bernoulli loses every packet (or route leg) independently with
// probability P — the i.i.d. loss model the engines previously inlined.
//
// Draw compatibility: with P == 0 no randomness is consumed, and with
// P > 0 the draw sequence on the supplied stream exactly matches the
// historical inline checks (one Bernoulli per leg; on a lost multi-hop
// leg, one IntN for the failure point; single-hop losses draw no failure
// point), so pre-refactor results replay bit-identically.
type Bernoulli struct {
	// P is the per-packet (per-leg) loss probability in [0, 1].
	P float64
	// R is the stream losses are drawn from.
	R *rng.RNG
}

// Advance implements Channel.
func (b *Bernoulli) Advance(uint64) {}

// Alive implements Channel.
func (b *Bernoulli) Alive(int32) bool { return true }

// DeliverHop implements Channel.
func (b *Bernoulli) DeliverHop(Packet) (bool, int) {
	if b.P > 0 && b.R.Bernoulli(b.P) {
		return false, 1 // the outbound value was transmitted but lost
	}
	return true, 0
}

// DeliverRoute implements Channel.
func (b *Bernoulli) DeliverRoute(p Packet) (bool, int) {
	if b.P > 0 && b.R.Bernoulli(b.P) {
		return false, b.partial(p.Hops)
	}
	return true, 0
}

// DeliverRoundTrip implements Channel.
func (b *Bernoulli) DeliverRoundTrip(p Packet) (bool, int) {
	// One combined draw for the two legs: lost unless both survive.
	if b.P > 0 && b.R.Bernoulli(1-(1-b.P)*(1-b.P)) {
		return false, b.partial(2 * p.Hops)
	}
	return true, 0
}

func (b *Bernoulli) partial(hops int) int { return partialCost(b.R, hops) }

// Name implements Channel.
func (b *Bernoulli) Name() string { return "bernoulli" }

// partialCost returns the cost of a route that died at a uniformly
// random hop of a hops-hop journey.
func partialCost(r *rng.RNG, hops int) int {
	if hops <= 0 {
		return 0
	}
	return 1 + r.IntN(hops)
}

// GEParams parameterizes the Gilbert–Elliott burst-loss chain.
type GEParams struct {
	// PGoodToBad and PBadToGood are the per-packet state transition
	// probabilities. Their ratio sets the stationary fraction of time in
	// the bad state; their magnitudes set the burst length (mean bad
	// burst = 1/PBadToGood packets).
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the per-packet loss probabilities in each
	// state (LossGood << LossBad for a bursty medium).
	LossGood, LossBad float64
}

// StationaryLoss returns the long-run per-packet loss probability of the
// chain: the bad-state occupancy times LossBad plus the complement times
// LossGood.
func (p GEParams) StationaryLoss() float64 {
	denom := p.PGoodToBad + p.PBadToGood
	if denom <= 0 {
		return p.LossGood
	}
	piBad := p.PGoodToBad / denom
	return piBad*p.LossBad + (1-piBad)*p.LossGood
}

// GilbertElliott is a two-state Markov burst-loss medium: the channel
// wanders between a Good state (rare loss) and a Bad state (dense loss),
// advancing one chain step per packet decision. Unlike Bernoulli, losses
// cluster: a route that just lost a packet is likely to lose the next
// one too, which is what defeats protocols that rely on quick retries.
type GilbertElliott struct {
	params GEParams
	r      *rng.RNG
	bad    bool
}

// NewGilbertElliott builds the chain over r, starting in the Good state.
func NewGilbertElliott(p GEParams, r *rng.RNG) *GilbertElliott {
	return &GilbertElliott{params: p, r: r}
}

// step advances the chain one packet and returns whether that packet is
// lost.
func (g *GilbertElliott) step() bool {
	if g.bad {
		if g.r.Bernoulli(g.params.PBadToGood) {
			g.bad = false
		}
	} else {
		if g.r.Bernoulli(g.params.PGoodToBad) {
			g.bad = true
		}
	}
	if g.bad {
		return g.r.Bernoulli(g.params.LossBad)
	}
	return g.r.Bernoulli(g.params.LossGood)
}

// Advance implements Channel.
func (g *GilbertElliott) Advance(uint64) {}

// Alive implements Channel.
func (g *GilbertElliott) Alive(int32) bool { return true }

// DeliverHop implements Channel.
func (g *GilbertElliott) DeliverHop(Packet) (bool, int) {
	if g.step() {
		return false, 1
	}
	return true, 0
}

// DeliverRoute implements Channel.
func (g *GilbertElliott) DeliverRoute(p Packet) (bool, int) {
	if g.step() {
		return false, g.partial(p.Hops)
	}
	return true, 0
}

// DeliverRoundTrip implements Channel.
func (g *GilbertElliott) DeliverRoundTrip(p Packet) (bool, int) {
	if g.step() { // outbound leg
		return false, g.partial(p.Hops)
	}
	if g.step() { // return leg
		return false, g.partial(p.Hops) + p.Hops
	}
	return true, 0
}

func (g *GilbertElliott) partial(hops int) int { return partialCost(g.r, hops) }

// Name implements Channel.
func (g *GilbertElliott) Name() string { return "gilbert-elliott" }

// Bad reports whether the chain currently sits in the Bad state (exposed
// for tests and diagnostics).
func (g *GilbertElliott) Bad() bool { return g.bad }

// ChurnParams parameterizes crash-stop node failure with optional
// revival. Durations are in the channel's Advance time unit (ticks for
// the clock-driven engines).
type ChurnParams struct {
	// MeanUp is the mean up-duration before a node crashes
	// (exponentially distributed, minimum 1).
	MeanUp float64
	// MeanDown is the mean down-duration before a crashed node revives
	// with its pre-crash state intact. Zero means crash-stop: dead nodes
	// never return.
	MeanDown float64
}

// Churn overlays crash-stop node failure (with optional revival) on an
// inner loss medium: packets to or from a dead node are lost regardless
// of the inner channel, and engines skip clock ticks owned by dead
// nodes. Each node follows its own alternating-renewal up/down schedule
// drawn lazily from a per-node substream, so liveness at any time is a
// pure function of (seed, node, time) — independent of query order.
//
// Churn is optionally adversarial: NewTargetedChurn restricts failures
// to a chosen node set (hierarchy representatives, high-degree hubs),
// the attack model that stresses exactly the nodes the paper's protocol
// depends on. Untargeted nodes never fail. A targeted node's schedule
// derivation is identical to the uniform case, so uniform churn
// (nil target set) remains draw-compatible with every pre-existing run.
type Churn struct {
	inner  Channel
	params ChurnParams
	now    uint64
	nodes  []churnNode
	seed   uint64
	// target marks churnable nodes; nil means every node (uniform churn).
	target []bool
	// targetBuf is the reusable backing for target in pooled channels.
	targetBuf []bool
}

type churnNode struct {
	r        *rng.RNG
	alive    bool
	nextFlip uint64
	started  bool
}

// NewChurn wraps inner with uniform churn over n nodes, drawing schedules
// from r.
func NewChurn(inner Channel, n int, p ChurnParams, r *rng.RNG) *Churn {
	return NewTargetedChurn(inner, n, p, nil, r)
}

// NewTargetedChurn wraps inner with churn restricted to the listed nodes;
// nodes outside targets never fail. nil targets means uniform churn over
// all n nodes.
func NewTargetedChurn(inner Channel, n int, p ChurnParams, targets []int32, r *rng.RNG) *Churn {
	if inner == nil {
		inner = Perfect{}
	}
	c := &Churn{inner: inner, params: p, nodes: make([]churnNode, n), seed: r.Seed()}
	if targets != nil {
		c.target = make([]bool, n)
		for _, t := range targets {
			c.target[t] = true
		}
	}
	return c
}

// Advance implements Channel.
func (c *Churn) Advance(now uint64) {
	c.now = now
	c.inner.Advance(now)
}

// Alive implements Channel. The node's schedule is evaluated lazily up
// to the current time.
func (c *Churn) Alive(i int32) bool {
	if c.target != nil && !c.target[i] {
		return c.inner.Alive(i)
	}
	n := &c.nodes[i]
	if !n.started {
		n.started = true
		n.alive = true
		// Pooled channels keep the per-node generator across runs and
		// reseed it to the identical schedule seed a fresh one would get.
		if n.r == nil {
			n.r = rng.New(rng.Derive(c.seed, uint64(i)))
		} else {
			n.r.Reseed(rng.Derive(c.seed, uint64(i)))
		}
		n.nextFlip = c.duration(n.r, c.params.MeanUp)
	}
	for c.now >= n.nextFlip {
		if n.alive {
			n.alive = false
			if c.params.MeanDown <= 0 {
				n.nextFlip = ^uint64(0) // crash-stop: never revives
				break
			}
			n.nextFlip += c.duration(n.r, c.params.MeanDown)
		} else {
			n.alive = true
			n.nextFlip += c.duration(n.r, c.params.MeanUp)
		}
	}
	return n.alive
}

func (c *Churn) duration(r *rng.RNG, mean float64) uint64 {
	d := r.ExpFloat64() * mean
	if d < 1 {
		d = 1
	}
	return uint64(d)
}

// AliveCount returns the number of nodes currently up.
func (c *Churn) AliveCount() int {
	count := 0
	for i := range c.nodes {
		if c.Alive(int32(i)) {
			count++
		}
	}
	return count
}

// DeliverHop implements Channel.
func (c *Churn) DeliverHop(p Packet) (bool, int) {
	if !c.Alive(p.Src) {
		return false, 0
	}
	if !c.Alive(p.Dst) {
		return false, 1 // transmitted into the void
	}
	return c.inner.DeliverHop(p)
}

// DeliverRoute implements Channel.
func (c *Churn) DeliverRoute(p Packet) (bool, int) {
	if !c.Alive(p.Src) {
		return false, 0
	}
	if !c.Alive(p.Dst) {
		return false, p.Hops // traveled the route, found the endpoint dead
	}
	return c.inner.DeliverRoute(p)
}

// DeliverRoundTrip implements Channel.
func (c *Churn) DeliverRoundTrip(p Packet) (bool, int) {
	if !c.Alive(p.Src) {
		return false, 0
	}
	if !c.Alive(p.Dst) {
		return false, p.Hops // out leg traveled, partner dead, no return
	}
	return c.inner.DeliverRoundTrip(p)
}

// Name implements Channel.
func (c *Churn) Name() string {
	if c.inner.Name() == "perfect" {
		return "churn"
	}
	return c.inner.Name() + "+churn"
}

// Compile-time interface checks.
var (
	_ Channel = Perfect{}
	_ Channel = (*Bernoulli)(nil)
	_ Channel = (*GilbertElliott)(nil)
	_ Channel = (*Churn)(nil)
)
