package channel

import (
	"math"
	"reflect"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

// randomSpec generates a valid Spec covering the whole grammar —
// loss models, every jamming-field variant, cuts, the transport layer
// (delay distributions, reorder/dup, ARQ), and the three churn targets —
// from a deterministic stream.
func randomSpec(r *rng.RNG) Spec {
	var s Spec
	// probability p in (0, 1] quantized so formatFloat round-trips are
	// exercised on short and long decimal forms alike.
	prob := func() float64 {
		if r.Bernoulli(0.5) {
			return float64(1+r.IntN(99)) / 100
		}
		return r.Float64()
	}
	coord := func() float64 { return r.Float64() }
	switch r.IntN(3) {
	case 1:
		s.Loss = LossBernoulli
		s.LossRate = prob()
	case 2:
		s.Loss = LossGilbertElliott
		s.GE = GEParams{PGoodToBad: prob(), PBadToGood: prob(), LossGood: prob(), LossBad: prob()}
	}
	for k := r.IntN(3); k > 0; k-- {
		f := FieldParams{Kind: FieldDisk, Center: geo.Pt(coord(), coord()), Radius: 0.05 + r.Float64()/2, Loss: prob()}
		switch r.IntN(4) {
		case 1: // one-shot window
			f.From = uint64(r.IntN(1000))
			f.Until = f.From + 1 + uint64(r.IntN(1000))
		case 2: // periodic
			f.From = uint64(r.IntN(1000))
			f.Until = f.From + 1 + uint64(r.IntN(1000))
			f.Period = f.Until - f.From + uint64(r.IntN(1000))
		case 3: // moving (velocity nonzero so the mjam form round-trips)
			f.Vel = geo.Pt(0.001+r.Float64()/100, 0.001+r.Float64()/100)
		}
		if r.Bernoulli(0.2) {
			f = FieldParams{Kind: FieldPolygon, Loss: prob(),
				Poly: []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(coord()/2+0.5, 0.1), geo.Pt(0.5, coord()/2+0.5)}}
		}
		s.Fields = append(s.Fields, f)
	}
	if r.Bernoulli(0.4) {
		from := uint64(r.IntN(1000))
		s.Cut = CutParams{A: coord() + 0.1, B: coord(), C: coord(), From: from, Until: from + 1 + uint64(r.IntN(1000))}
	}
	switch r.IntN(4) {
	case 1:
		s.Delay = DelayParams{Kind: DelayFixed, A: 0.01 + r.Float64()*10}
	case 2:
		lo := r.Float64()
		s.Delay = DelayParams{Kind: DelayUniform, A: lo, B: lo + 0.01 + r.Float64()*5}
	case 3:
		s.Delay = DelayParams{Kind: DelayExp, A: 0.01 + r.Float64()*10}
	}
	if !s.Delay.IsZero() && r.Bernoulli(0.4) {
		s.Reorder = prob()
	}
	if r.Bernoulli(0.3) {
		s.Dup = prob()
	}
	if r.Bernoulli(0.4) {
		s.ARQ = ARQParams{Retries: 1 + r.IntN(8), Timeout: r.Float64() * 100, Backoff: 1 + r.Float64()*3}
	}
	if r.Bernoulli(0.6) {
		s.Churn = ChurnParams{MeanUp: 1 + r.Float64()*1e5, MeanDown: r.Float64() * 1e4}
		switch r.IntN(3) {
		case 1:
			s.ChurnTarget = TargetReps
		case 2:
			s.ChurnTarget = TargetHubs
			s.HubCount = 1 + r.IntN(40)
		}
	}
	return s
}

// TestSpecRoundTripProperty: every generated spec must survive
// print → parse → print unchanged — the serialization is lossless over
// the full grammar, spatial forms included.
func TestSpecRoundTripProperty(t *testing.T) {
	r := rng.New(20260729)
	for i := 0; i < 2000; i++ {
		s := randomSpec(r)
		if err := s.Validate(); err != nil {
			t.Fatalf("case %d: generated invalid spec %+v: %v", i, s, err)
		}
		text := s.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("case %d: Parse(String(%+v) = %q): %v", i, s, text, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("case %d: round trip %q changed the spec:\n have %+v\n want %+v", i, text, back, s)
		}
		if again := back.String(); again != text {
			t.Fatalf("case %d: second print differs: %q -> %q", i, text, again)
		}
	}
}

// FuzzSpecRoundTrip feeds arbitrary text to Parse; whatever it accepts
// must re-serialize to a fixed point (one canonicalizing round allowed
// for alternative spellings like "loss:" or ".2").
func FuzzSpecRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"perfect",
		"bernoulli:0.2",
		"loss:.5",
		"ge:0.05/0.2/0.01/0.6",
		"churn:50000/10000",
		"repchurn:50000/0",
		"hubchurn:1000/500/8",
		"jam:0.5/0.5/0.2/0.9",
		"jam:0.25/0.75/0.1/1/100/200",
		"jam:0.25/0.75/0.1/1/100/200/1000",
		"mjam:0.5/0.5/0.15/0.8/0.0001/0.00005",
		"jampoly:0.7/0.2/0.2/0.8/0.2/0.5/0.8",
		"cut:1/0/0.5/1000/2000",
		"bernoulli:0.1+jam:0.5/0.5/0.2/0.9+cut:0/1/0.3/5/50+repchurn:1e4/1e3",
		"delay:fixed/0.1",
		"delay:uniform/0.1/0.3",
		"delay:exp/0.5",
		"delay:exp/0.5+reorder:0.1",
		"dup:0.05",
		"arq:3/0.5/2",
		"arq:2/0/1",
		"ge:0.05/0.3/0.01/0.8+delay:exp/0.5+reorder:0.05+dup:0.02+arq:3/2/2+churn:5e4/1e4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return // rejected input is fine; accepted input must round-trip
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned invalid spec %+v: %v", text, s, err)
		}
		canon := s.String()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) -> String %q does not re-parse: %v", text, canon, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("Parse(%q): canonical form %q parses to a different spec", text, canon)
		}
		if again := back.String(); again != canon {
			t.Fatalf("Parse(%q): String not a fixed point: %q -> %q", text, canon, again)
		}
		// Estimated loss must be a valid probability for every accepted spec.
		if p := s.ExpectedLossRate(); math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("Parse(%q): expected loss rate %v outside [0, 1]", text, p)
		}
	})
}
