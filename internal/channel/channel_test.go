package channel

import (
	"math"
	"reflect"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

// pkt builds a positionless delivery context — sufficient for the
// non-spatial media these tests exercise.
func pkt(src, dst int32, hops int) Packet {
	return Packet{Src: src, Dst: dst, Hops: hops}
}

func TestPerfectDeliversEverything(t *testing.T) {
	var ch Channel = Perfect{}
	ch.Advance(12345)
	if !ch.Alive(0) || !ch.Alive(999) {
		t.Fatal("perfect channel reported a dead node")
	}
	if ok, paid := ch.DeliverHop(pkt(1, 2, 1)); !ok || paid != 0 {
		t.Fatalf("DeliverHop = %v, %d", ok, paid)
	}
	if ok, paid := ch.DeliverRoute(pkt(1, 2, 17)); !ok || paid != 0 {
		t.Fatalf("DeliverRoute = %v, %d", ok, paid)
	}
	if ok, paid := ch.DeliverRoundTrip(pkt(1, 2, 17)); !ok || paid != 0 {
		t.Fatalf("DeliverRoundTrip = %v, %d", ok, paid)
	}
}

// TestBernoulliDrawCompatibility pins the draw sequence Bernoulli makes
// against the inline checks the engines used before the channel existed:
// the refactor's bit-identical-results guarantee rests on it.
func TestBernoulliDrawCompatibility(t *testing.T) {
	const p = 0.3
	ch := &Bernoulli{P: p, R: rng.New(77)}
	ref := rng.New(77)
	for i := 0; i < 2000; i++ {
		switch i % 3 {
		case 0: // single-hop: one Bernoulli, never a failure-point draw
			ok, paid := ch.DeliverHop(pkt(0, 1, 1))
			lost := ref.Bernoulli(p)
			if ok != !lost {
				t.Fatalf("step %d: hop verdict %v, reference lost=%v", i, ok, lost)
			}
			if !ok && paid != 1 {
				t.Fatalf("step %d: lost hop paid %d, want 1", i, paid)
			}
		case 1: // route leg: one Bernoulli, then IntN(hops) only on loss
			hops := 1 + i%7
			ok, paid := ch.DeliverRoute(pkt(0, 1, hops))
			lost := ref.Bernoulli(p)
			if ok != !lost {
				t.Fatalf("step %d: route verdict %v, reference lost=%v", i, ok, lost)
			}
			if lost {
				want := 1 + ref.IntN(hops)
				if paid != want {
					t.Fatalf("step %d: lost route paid %d, want %d", i, paid, want)
				}
			}
		default: // round trip: one combined Bernoulli, IntN(2*hops) on loss
			hops := 1 + i%5
			ok, paid := ch.DeliverRoundTrip(pkt(0, 1, hops))
			lost := ref.Bernoulli(1 - (1-p)*(1-p))
			if ok != !lost {
				t.Fatalf("step %d: round-trip verdict %v, reference lost=%v", i, ok, lost)
			}
			if lost {
				want := 1 + ref.IntN(2*hops)
				if paid != want {
					t.Fatalf("step %d: lost round trip paid %d, want %d", i, paid, want)
				}
			}
		}
	}
}

func TestBernoulliZeroRateConsumesNoRandomness(t *testing.T) {
	r := rng.New(5)
	ch := &Bernoulli{P: 0, R: r}
	for i := 0; i < 100; i++ {
		if ok, _ := ch.DeliverRoute(pkt(0, 1, 9)); !ok {
			t.Fatal("zero-rate channel lost a packet")
		}
	}
	if got, want := r.Uint64(), rng.New(5).Uint64(); got != want {
		t.Fatalf("zero-rate channel consumed randomness: %d != %d", got, want)
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	p := GEParams{PGoodToBad: 0.05, PBadToGood: 0.2, LossGood: 0.01, LossBad: 0.6}
	ch := NewGilbertElliott(p, rng.New(9))
	const trials = 200_000
	lost := 0
	for i := 0; i < trials; i++ {
		if ok, _ := ch.DeliverHop(pkt(0, 1, 1)); !ok {
			lost++
		}
	}
	got := float64(lost) / trials
	want := p.StationaryLoss()
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical loss %v, stationary %v", got, want)
	}
}

func TestGilbertElliottLossesCluster(t *testing.T) {
	// Burst loss with the same marginal rate as an i.i.d. channel must
	// show a higher loss-after-loss conditional probability.
	p := GEParams{PGoodToBad: 0.02, PBadToGood: 0.1, LossGood: 0.01, LossBad: 0.8}
	ch := NewGilbertElliott(p, rng.New(10))
	const trials = 300_000
	var losses, pairs, lossAfterLoss int
	prevLost := false
	for i := 0; i < trials; i++ {
		ok, _ := ch.DeliverHop(pkt(0, 1, 1))
		lost := !ok
		if lost {
			losses++
		}
		if prevLost {
			pairs++
			if lost {
				lossAfterLoss++
			}
		}
		prevLost = lost
	}
	marginal := float64(losses) / trials
	conditional := float64(lossAfterLoss) / float64(pairs)
	if conditional < 2*marginal {
		t.Fatalf("losses not bursty: P(loss|loss)=%v vs marginal %v", conditional, marginal)
	}
}

func TestChurnKillsAndRevives(t *testing.T) {
	const n = 400
	ch := NewChurn(Perfect{}, n, ChurnParams{MeanUp: 1000, MeanDown: 500}, rng.New(11))
	ch.Advance(0)
	if got := ch.AliveCount(); got != n {
		t.Fatalf("at t=0 %d alive, want all %d", got, n)
	}
	ch.Advance(1500)
	mid := ch.AliveCount()
	if mid == n || mid == 0 {
		t.Fatalf("at t=1500 expected partial liveness, got %d/%d", mid, n)
	}
	// With revival, some node down at 1500 must be back up later.
	downAt1500 := make([]int32, 0)
	for i := int32(0); i < n; i++ {
		if !ch.Alive(i) {
			downAt1500 = append(downAt1500, i)
		}
	}
	ch.Advance(50_000)
	revived := false
	for _, i := range downAt1500 {
		if ch.Alive(i) {
			revived = true
			break
		}
	}
	if !revived {
		t.Fatal("no node revived despite MeanDown > 0")
	}
}

func TestChurnCrashStopIsPermanent(t *testing.T) {
	const n = 300
	ch := NewChurn(Perfect{}, n, ChurnParams{MeanUp: 100}, rng.New(12))
	ch.Advance(1_000_000)
	if got := ch.AliveCount(); got != 0 {
		t.Fatalf("crash-stop after 10000 mean lifetimes left %d alive", got)
	}
}

func TestChurnLivenessIndependentOfQueryOrder(t *testing.T) {
	const n = 128
	build := func() *Churn {
		return NewChurn(Perfect{}, n, ChurnParams{MeanUp: 700, MeanDown: 300}, rng.New(13))
	}
	a, b := build(), build()
	a.Advance(5000)
	b.Advance(5000)
	// a queried ascending, b descending and repeatedly: same answers.
	for i := int32(n) - 1; i >= 0; i-- {
		b.Alive(i)
		b.Alive(i)
	}
	for i := int32(0); i < n; i++ {
		if a.Alive(i) != b.Alive(i) {
			t.Fatalf("node %d liveness depends on query order", i)
		}
	}
}

func TestChurnBlocksDelivery(t *testing.T) {
	const n = 50
	ch := NewChurn(Perfect{}, n, ChurnParams{MeanUp: 100}, rng.New(14))
	ch.Advance(100_000) // everyone dead
	if ok, paid := ch.DeliverHop(pkt(1, 2, 1)); ok || paid != 0 {
		t.Fatalf("dead src delivered (ok=%v paid=%d)", ok, paid)
	}
	ch2 := NewChurn(Perfect{}, n, ChurnParams{MeanUp: 1e12}, rng.New(14))
	ch2.Advance(10)
	if ok, _ := ch2.DeliverHop(pkt(1, 2, 1)); !ok {
		t.Fatal("live pair failed to deliver through perfect inner channel")
	}
	// Force one dead endpoint: find a dead node at an intermediate time.
	ch3 := NewChurn(Perfect{}, n, ChurnParams{MeanUp: 1000}, rng.New(15))
	ch3.Advance(2000)
	var dead, live int32 = -1, -1
	for i := int32(0); i < n; i++ {
		if ch3.Alive(i) {
			live = i
		} else {
			dead = i
		}
	}
	if dead < 0 || live < 0 {
		t.Skip("no mixed liveness at this seed/time")
	}
	if ok, paid := ch3.DeliverRoute(pkt(live, dead, 7)); ok || paid != 7 {
		t.Fatalf("route to dead endpoint: ok=%v paid=%d, want false, 7", ok, paid)
	}
	if ok, paid := ch3.DeliverRoundTrip(pkt(live, dead, 7)); ok || paid != 7 {
		t.Fatalf("round trip to dead endpoint: ok=%v paid=%d, want false, 7", ok, paid)
	}
}

func TestSpecParseRoundTrip(t *testing.T) {
	cases := []string{
		"perfect",
		"bernoulli:0.2",
		"ge:0.05/0.2/0.01/0.6",
		"churn:50000/10000",
		"bernoulli:0.1+churn:1000/0",
		"ge:0.02/0.1/0/0.8+churn:5000/2500",
	}
	for _, text := range cases {
		s, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", text, s.String(), err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip %q -> %v -> %v", text, s, back)
		}
	}
	if s, err := Parse(""); err != nil || !s.IsZero() {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
}

func TestSpecParseRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"bogus",
		"bernoulli",
		"bernoulli:1.5",
		"bernoulli:-0.1",
		"bernoulli:0.1+bernoulli:0.2",
		"ge:0.1/0.2",
		"ge:0.1/0.2/0.3/1.7",
		"churn:100",
		"churn:-5/0",
		"churn:100/0+churn:100/0",
		"jam:0.5/0.5/0.2/0.9/0/0", // empty window would silently mean always-on
		"jam:0.5/0.5/0.2/0.9/200/100",
		"jampoly:0.5/0/1/7/2/7/0", // clockwise winding
		"cut:0/0/0.5/0/100",       // degenerate line
		"cut:0/0/0/0/0",           // all-zero would silently mean no cut
		"jam:0.5/0.5/nan/0.9",     // NaN passes every range check
		"cut:nan/0/0.5/0/400000",
		"bernoulli:inf",
		"hubchurn:100/0/0",
	} {
		if _, err := Parse(text); err == nil {
			t.Fatalf("Parse(%q) accepted garbage", text)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	bad := []Spec{
		{LossRate: 0.5}, // rate without model
		{Loss: LossBernoulli, LossRate: -1},
		{Loss: LossBernoulli, LossRate: 2},
		{Loss: LossGilbertElliott, GE: GEParams{PGoodToBad: 1.5}},
		{Churn: ChurnParams{MeanUp: -1}},
		{Churn: ChurnParams{MeanDown: 5}}, // down without up
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d (%+v) validated", i, s)
		}
	}
}

func TestSpecBuildSelectsImplementation(t *testing.T) {
	lr, cr := rng.New(1), rng.New(2)
	build := func(s Spec) Channel {
		t.Helper()
		ch, err := s.Build(10, Env{}, lr, cr)
		if err != nil {
			t.Fatalf("Build(%v): %v", s, err)
		}
		return ch
	}
	if _, ok := build(Spec{}).(Perfect); !ok {
		t.Fatal("zero spec did not build Perfect")
	}
	if _, ok := build(Spec{Loss: LossBernoulli, LossRate: 0.1}).(*Bernoulli); !ok {
		t.Fatal("bernoulli spec did not build Bernoulli")
	}
	if _, ok := build(Spec{Loss: LossGilbertElliott, GE: GEParams{LossBad: 0.5}}).(*GilbertElliott); !ok {
		t.Fatal("ge spec did not build GilbertElliott")
	}
	ch := build(Spec{Loss: LossBernoulli, LossRate: 0.1, Churn: ChurnParams{MeanUp: 100}})
	cc, ok := ch.(*Churn)
	if !ok {
		t.Fatal("churn spec did not build Churn")
	}
	if cc.Name() != "bernoulli+churn" {
		t.Fatalf("composed name %q", cc.Name())
	}
}

func TestExpectedLossRate(t *testing.T) {
	if got := (Spec{Loss: LossBernoulli, LossRate: 0.25}).ExpectedLossRate(); got != 0.25 {
		t.Fatalf("bernoulli expected loss %v", got)
	}
	ge := Spec{Loss: LossGilbertElliott, GE: GEParams{PGoodToBad: 0.1, PBadToGood: 0.1, LossGood: 0, LossBad: 0.5}}
	if got := ge.ExpectedLossRate(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("ge expected loss %v, want 0.25", got)
	}
}

// TestPoolBuildDrawCompatible proves a pooled channel replays a fresh
// one bit for bit: same deliveries, same paid costs, same liveness —
// across every loss/spatial/churn composition — and that reuse of the
// same Pool across different specs stays clean.
func TestPoolBuildDrawCompatible(t *testing.T) {
	specs := []string{
		"perfect",
		"bernoulli:0.3",
		"ge:0.05/0.2/0.01/0.6",
		"churn:500/200",
		"jam:0.5/0.5/0.3/0.8",
		"jam:0.5/0.5/0.3/0.8+churn:500/200",
		"cut:1/0/0.5/100/500+bernoulli:0.2",
	}
	const n = 64
	pts := make([]geo.Point, n)
	posRNG := rng.New(3)
	for i := range pts {
		pts[i] = geo.Pt(posRNG.Float64(), posRNG.Float64())
	}
	env := Env{Points: pts}
	pool := &Pool{}
	for _, text := range specs {
		spec, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := spec.Build(n, env, rng.New(10), rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := spec.BuildWith(pool, n, env, rng.New(10), rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		driver := rng.New(12)
		for step := 0; step < 4000; step++ {
			now := uint64(step)
			fresh.Advance(now)
			pooled.Advance(now)
			src := int32(driver.IntN(n))
			dst := int32(driver.IntN(n))
			p := Packet{Src: src, Dst: dst, SrcPos: pts[src], DstPos: pts[dst], Hops: 1 + driver.IntN(5), Now: now}
			switch step % 3 {
			case 0:
				okF, paidF := fresh.DeliverHop(p)
				okP, paidP := pooled.DeliverHop(p)
				if okF != okP || paidF != paidP {
					t.Fatalf("%s step %d: hop diverged (%v/%d vs %v/%d)", text, step, okF, paidF, okP, paidP)
				}
			case 1:
				okF, paidF := fresh.DeliverRoute(p)
				okP, paidP := pooled.DeliverRoute(p)
				if okF != okP || paidF != paidP {
					t.Fatalf("%s step %d: route diverged", text, step)
				}
			default:
				okF, paidF := fresh.DeliverRoundTrip(p)
				okP, paidP := pooled.DeliverRoundTrip(p)
				if okF != okP || paidF != paidP {
					t.Fatalf("%s step %d: round trip diverged", text, step)
				}
			}
			if a, b := fresh.Alive(src), pooled.Alive(src); a != b {
				t.Fatalf("%s step %d: liveness diverged for %d", text, step, src)
			}
		}
	}
}
