package channel

import (
	"math"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

// spatialPkt builds a delivery context between two explicit positions.
func spatialPkt(src, dst geo.Point, hops int, now uint64) Packet {
	return Packet{Src: 0, Dst: 1, SrcPos: src, DstPos: dst, Hops: hops, Now: now}
}

func TestDiskFieldGeometry(t *testing.T) {
	f := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.2, Loss: 0.8}
	if got := f.LossAt(geo.Pt(0.5, 0.5), 0); got != 0.8 {
		t.Fatalf("centre loss %v, want 0.8", got)
	}
	if got := f.LossAt(geo.Pt(0.5, 0.69), 0); got != 0.8 {
		t.Fatalf("in-disk loss %v, want 0.8", got)
	}
	if got := f.LossAt(geo.Pt(0.5, 0.71), 0); got != 0 {
		t.Fatalf("out-of-disk loss %v, want 0", got)
	}
}

func TestScheduledFieldWindowAndPeriod(t *testing.T) {
	oneShot := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.3, Loss: 1, From: 100, Until: 200}
	for now, want := range map[uint64]bool{0: false, 99: false, 100: true, 199: true, 200: false, 10_000: false} {
		if got := oneShot.Active(now); got != want {
			t.Fatalf("one-shot window at t=%d: active=%v, want %v", now, got, want)
		}
	}
	periodic := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.3, Loss: 1, From: 100, Until: 200, Period: 500}
	for now, want := range map[uint64]bool{0: false, 150: true, 300: false, 650: true, 850: false, 1120: true} {
		if got := periodic.Active(now); got != want {
			t.Fatalf("periodic window at t=%d: active=%v, want %v", now, got, want)
		}
	}
	if got, want := periodic.DutyCycle(), 0.2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("periodic duty cycle %v, want %v", got, want)
	}
}

func TestMovingFieldReflects(t *testing.T) {
	f := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.1, Loss: 1, Vel: geo.Pt(0.01, 0)}
	// After 50 units the centre reaches x=1, then reflects back.
	if c := f.CenterAt(50); math.Abs(c.X-1) > 1e-12 {
		t.Fatalf("centre at t=50: %v, want x=1", c)
	}
	if c := f.CenterAt(80); math.Abs(c.X-0.7) > 1e-9 {
		t.Fatalf("centre at t=80: %v, want x=0.7 after reflection", c)
	}
	// The centre never leaves the unit square.
	for now := uint64(0); now < 1000; now += 7 {
		c := f.CenterAt(now)
		if c.X < 0 || c.X > 1 || c.Y < 0 || c.Y > 1 {
			t.Fatalf("centre escaped the unit square at t=%d: %v", now, c)
		}
	}
}

func TestPolygonFieldContains(t *testing.T) {
	tri := geo.Polygon{geo.Pt(0.2, 0.2), geo.Pt(0.8, 0.2), geo.Pt(0.5, 0.8)}
	f := FieldParams{Kind: FieldPolygon, Poly: tri, Loss: 0.5}
	if got := f.LossAt(geo.Pt(0.5, 0.4), 0); got != 0.5 {
		t.Fatalf("in-triangle loss %v, want 0.5", got)
	}
	if got := f.LossAt(geo.Pt(0.1, 0.9), 0); got != 0 {
		t.Fatalf("out-of-triangle loss %v, want 0", got)
	}
}

func TestSpatialLossSamplesMidpoint(t *testing.T) {
	// A total-loss disk in the middle of the square: a hop passing through
	// it is always lost even when both endpoints are outside.
	f := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.1, Loss: 1}
	ch := NewSpatialLoss(nil, []FieldParams{f}, rng.New(1))
	if ok, paid := ch.DeliverHop(spatialPkt(geo.Pt(0.45, 0.3), geo.Pt(0.55, 0.7), 1, 0)); ok || paid != 1 {
		t.Fatalf("through-jammer hop survived (ok=%v paid=%d)", ok, paid)
	}
	// A hop far from the disk never draws randomness and always survives.
	r := rng.New(2)
	ch2 := NewSpatialLoss(nil, []FieldParams{f}, r)
	for i := 0; i < 200; i++ {
		if ok, _ := ch2.DeliverHop(spatialPkt(geo.Pt(0.05, 0.05), geo.Pt(0.1, 0.05), 1, 0)); !ok {
			t.Fatal("clear-air hop lost")
		}
	}
	if got, want := r.Uint64(), rng.New(2).Uint64(); got != want {
		t.Fatal("clear-air traffic consumed randomness")
	}
}

func TestSpatialLossRouteCharge(t *testing.T) {
	f := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.2, Loss: 1}
	ch := NewSpatialLoss(nil, []FieldParams{f}, rng.New(3))
	ok, paid := ch.DeliverRoute(spatialPkt(geo.Pt(0.5, 0.45), geo.Pt(0.5, 0.55), 20, 0))
	if ok {
		t.Fatal("in-jammer route survived total loss")
	}
	if paid < 1 || paid > 20 {
		t.Fatalf("lost route paid %d, want within [1, 20]", paid)
	}
}

func TestPartitionSeversAndHeals(t *testing.T) {
	cut := CutParams{A: 1, C: 0.5, From: 100, Until: 200} // vertical line x = 0.5
	ch := NewPartition(nil, cut)
	left, right := geo.Pt(0.2, 0.5), geo.Pt(0.8, 0.5)
	if ok, _ := ch.DeliverHop(spatialPkt(left, right, 1, 50)); !ok {
		t.Fatal("pre-window crossing was severed")
	}
	if ok, paid := ch.DeliverHop(spatialPkt(left, right, 1, 150)); ok || paid != 1 {
		t.Fatalf("active-window crossing delivered (ok=%v paid=%d)", ok, paid)
	}
	if ok, paid := ch.DeliverRoute(spatialPkt(left, right, 9, 150)); ok || paid != 5 {
		t.Fatalf("active-window route: ok=%v paid=%d, want false, 5", ok, paid)
	}
	// Same-side traffic is untouched during the window.
	if ok, _ := ch.DeliverHop(spatialPkt(left, geo.Pt(0.3, 0.6), 1, 150)); !ok {
		t.Fatal("same-side hop severed")
	}
	if ok, _ := ch.DeliverHop(spatialPkt(left, right, 1, 200)); !ok {
		t.Fatal("post-heal crossing still severed")
	}
}

func TestTargetedChurnKillsOnlyTargets(t *testing.T) {
	const n = 200
	targets := []int32{3, 17, 42}
	ch := NewTargetedChurn(Perfect{}, n, ChurnParams{MeanUp: 10}, targets, rng.New(4))
	ch.Advance(1_000_000) // far beyond every target's crash time
	isTarget := map[int32]bool{3: true, 17: true, 42: true}
	for i := int32(0); i < n; i++ {
		alive := ch.Alive(i)
		if isTarget[i] && alive {
			t.Fatalf("target %d still alive after 100000 mean lifetimes", i)
		}
		if !isTarget[i] && !alive {
			t.Fatalf("non-target %d died under targeted churn", i)
		}
	}
	if got, want := ch.AliveCount(), n-len(targets); got != want {
		t.Fatalf("alive count %d, want %d", got, want)
	}
}

func TestTargetedChurnMatchesUniformSchedules(t *testing.T) {
	// A targeted node's schedule must be identical to the schedule the
	// same node has under uniform churn with the same seed — targeting
	// masks the set, it does not re-derive randomness.
	const n = 64
	p := ChurnParams{MeanUp: 500, MeanDown: 250}
	uniform := NewChurn(Perfect{}, n, p, rng.New(5))
	targeted := NewTargetedChurn(Perfect{}, n, p, []int32{7}, rng.New(5))
	for _, now := range []uint64{100, 900, 2500, 10_000} {
		uniform.Advance(now)
		targeted.Advance(now)
		if uniform.Alive(7) != targeted.Alive(7) {
			t.Fatalf("node 7 liveness diverged at t=%d", now)
		}
	}
}

func TestHasLossSeesFieldsPastZeroRateModels(t *testing.T) {
	// Regression: the loss-model switch used to return before the field
	// check, so a zero-rate Bernoulli plus a lossy jam read as lossless.
	spec, err := Parse("bernoulli:0+jam:0.5/0.5/0.2/0.9")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.HasLoss() {
		t.Fatal("zero-rate bernoulli + lossy field reported HasLoss false")
	}
}

func TestFieldValidateRejectsUnprintableCombinations(t *testing.T) {
	// The grammar cannot express these, so Validate must reject them —
	// otherwise Spec.String would silently drop the window and break the
	// print→parse round-trip contract.
	movingScheduled := Spec{Fields: []FieldParams{{
		Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.2, Loss: 0.5,
		Vel: geo.Pt(1e-5, 0), From: 100, Until: 200,
	}}}
	if err := movingScheduled.Validate(); err == nil {
		t.Fatal("moving+scheduled disk validated")
	}
	scheduledPoly := Spec{Fields: []FieldParams{{
		Kind: FieldPolygon, Loss: 0.5, From: 100, Until: 200,
		Poly: []geo.Point{geo.Pt(0.2, 0.2), geo.Pt(0.8, 0.2), geo.Pt(0.5, 0.8)},
	}}}
	if err := scheduledPoly.Validate(); err == nil {
		t.Fatal("scheduled polygon validated")
	}
}

func TestSpecBuildSpatialComposition(t *testing.T) {
	pts := make([]geo.Point, 10)
	spec, err := Parse("bernoulli:0.1+jam:0.5/0.5/0.2/0.9+cut:1/0/0.5/100/200+churn:1000/0")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := spec.Build(10, Env{Points: pts}, rng.New(1), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.Name(), "bernoulli+jam+cut+churn"; got != want {
		t.Fatalf("composed name %q, want %q", got, want)
	}
}

func TestSpecBuildRequiresContext(t *testing.T) {
	spatial, err := Parse("jam:0.5/0.5/0.2/0.9")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spatial.Build(10, Env{}, rng.New(1), rng.New(2)); err == nil {
		t.Fatal("spatial spec built without positions")
	}
	reps, err := Parse("repchurn:1000/0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reps.Build(10, Env{}, rng.New(1), rng.New(2)); err == nil {
		t.Fatal("rep-targeted spec built without representatives")
	}
	hubs, err := Parse("hubchurn:1000/0/5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hubs.Build(10, Env{}, rng.New(1), rng.New(2)); err == nil {
		t.Fatal("hub-targeted spec built without a degree order")
	}
	if _, err := hubs.Build(10, Env{HubOrder: []int32{0, 1, 2, 3, 4}}, rng.New(1), rng.New(2)); err != nil {
		t.Fatalf("hub-targeted spec with sufficient order failed: %v", err)
	}
}

func TestExpectedLossRateWithFields(t *testing.T) {
	// A full-loss field covering a quarter of the square at full duty
	// contributes ~0.25 expected loss.
	spec := Spec{Fields: []FieldParams{{
		Kind: FieldPolygon,
		Poly: []geo.Point{geo.Pt(0, 0), geo.Pt(0.5, 0), geo.Pt(0.5, 0.5), geo.Pt(0, 0.5)},
		Loss: 1,
	}}}
	if got := spec.ExpectedLossRate(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("field expected loss %v, want 0.25", got)
	}
}

var benchSink int

// Benchmark the per-delivery field evaluation — the hot path every
// data packet of a spatial-fault run goes through.
func BenchmarkFieldDiskHop(b *testing.B) {
	f := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.2, Loss: 0.5}
	ch := NewSpatialLoss(nil, []FieldParams{f}, rng.New(1))
	p := spatialPkt(geo.Pt(0.1, 0.1), geo.Pt(0.15, 0.12), 1, 0)
	for i := 0; i < b.N; i++ {
		_, paid := ch.DeliverHop(p)
		benchSink += paid
	}
}

func BenchmarkFieldMovingDiskHop(b *testing.B) {
	f := FieldParams{Kind: FieldDisk, Center: geo.Pt(0.5, 0.5), Radius: 0.2, Loss: 0.5, Vel: geo.Pt(1e-4, 3e-5)}
	ch := NewSpatialLoss(nil, []FieldParams{f}, rng.New(1))
	for i := 0; i < b.N; i++ {
		p := spatialPkt(geo.Pt(0.1, 0.1), geo.Pt(0.15, 0.12), 1, uint64(i))
		_, paid := ch.DeliverHop(p)
		benchSink += paid
	}
}

func BenchmarkFieldPolygonHop(b *testing.B) {
	f := FieldParams{Kind: FieldPolygon, Loss: 0.5,
		Poly: []geo.Point{geo.Pt(0.3, 0.3), geo.Pt(0.7, 0.3), geo.Pt(0.7, 0.7), geo.Pt(0.3, 0.7)}}
	ch := NewSpatialLoss(nil, []FieldParams{f}, rng.New(1))
	p := spatialPkt(geo.Pt(0.4, 0.4), geo.Pt(0.6, 0.6), 1, 0)
	for i := 0; i < b.N; i++ {
		_, paid := ch.DeliverHop(p)
		benchSink += paid
	}
}

func BenchmarkPartitionHop(b *testing.B) {
	ch := NewPartition(nil, CutParams{A: 1, C: 0.5, From: 0, Until: 1 << 62})
	p := spatialPkt(geo.Pt(0.2, 0.5), geo.Pt(0.3, 0.5), 1, 100)
	for i := 0; i < b.N; i++ {
		_, paid := ch.DeliverHop(p)
		benchSink += paid
	}
}
