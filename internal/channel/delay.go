package channel

import (
	"fmt"

	"geogossip/internal/rng"
)

// DelayKind enumerates the per-hop transport delay distributions.
type DelayKind int

const (
	// DelayNone means instantaneous delivery (the historical model).
	DelayNone DelayKind = iota
	// DelayFixed is a constant per-hop delay of A time units.
	DelayFixed
	// DelayUniform is a per-hop delay uniform in [A, B).
	DelayUniform
	// DelayExp is an exponential per-hop delay with mean A.
	DelayExp
)

// String implements fmt.Stringer with the spec-grammar spelling.
func (k DelayKind) String() string {
	switch k {
	case DelayNone:
		return "none"
	case DelayFixed:
		return "fixed"
	case DelayUniform:
		return "uniform"
	case DelayExp:
		return "exp"
	default:
		return fmt.Sprintf("delay-kind(%d)", int(k))
	}
}

// DelayParams selects a per-hop transport delay distribution. The zero
// value means instantaneous delivery. A and B are distribution
// parameters in engine time units per hop: fixed uses A, uniform uses
// [A, B), exponential uses mean A (B unused).
type DelayParams struct {
	Kind DelayKind
	A, B float64
}

// IsZero reports whether the distribution is instantaneous delivery.
func (d DelayParams) IsZero() bool { return d.Kind == DelayNone }

// Mean returns the distribution's per-hop expectation.
func (d DelayParams) Mean() float64 {
	switch d.Kind {
	case DelayFixed:
		return d.A
	case DelayUniform:
		return (d.A + d.B) / 2
	case DelayExp:
		return d.A
	}
	return 0
}

func (d DelayParams) validate() error {
	switch d.Kind {
	case DelayNone:
		if d.A != 0 || d.B != 0 {
			return fmt.Errorf("channel: delay parameters (%v, %v) set without a distribution", d.A, d.B)
		}
	case DelayFixed:
		if d.A <= 0 {
			return fmt.Errorf("channel: fixed delay %v must be positive", d.A)
		}
		if d.B != 0 {
			return fmt.Errorf("channel: fixed delay takes one parameter, got second %v", d.B)
		}
	case DelayUniform:
		if d.A < 0 || d.B <= d.A {
			return fmt.Errorf("channel: uniform delay bounds [%v, %v) must satisfy 0 <= lo < hi", d.A, d.B)
		}
	case DelayExp:
		if d.A <= 0 {
			return fmt.Errorf("channel: exponential delay mean %v must be positive", d.A)
		}
		if d.B != 0 {
			return fmt.Errorf("channel: exponential delay takes one parameter, got second %v", d.B)
		}
	default:
		return fmt.Errorf("channel: unknown delay kind %d", int(d.Kind))
	}
	return nil
}

// Delay overlays transport-time realism on an inner loss medium: every
// delivery decision accrues a per-hop latency draw (scaled by the leg
// count) into the run's Timeline, delivered packets are independently
// reordered with probability Reorder — the straggler waits out one extra
// medium traversal — and duplicated with probability Dup, charging the
// duplicate copy's airtime into the delivery's paid-extra transmissions.
//
// Draw discipline (fixed per-call order, so runs replay bit-for-bit):
// one delay draw per delivery decision — success or loss, a transmitted
// packet occupies the medium either way — then, on delivered packets
// only, one Bernoulli per enabled decorator (reorder first, then dup),
// with the reorder penalty adding a second delay draw when it fires.
// The latency draws come from a stream derived by name from the loss
// stream's seed, so enabling delay never perturbs the loss sequence.
type Delay struct {
	inner   Channel
	dist    DelayParams
	reorder float64
	dup     float64
	r       *rng.RNG
	tl      *Timeline
}

// NewDelay wraps inner with the delay/reorder/dup decorators, drawing
// from r and scheduling latency on tl (which may be nil to discard it).
func NewDelay(inner Channel, dist DelayParams, reorder, dup float64, r *rng.RNG, tl *Timeline) *Delay {
	d := &Delay{}
	d.reset(inner, dist, reorder, dup, r, tl)
	return d
}

// reset re-initializes a pooled Delay in place.
func (d *Delay) reset(inner Channel, dist DelayParams, reorder, dup float64, r *rng.RNG, tl *Timeline) {
	if inner == nil {
		inner = Perfect{}
	}
	d.inner, d.dist, d.reorder, d.dup, d.r, d.tl = inner, dist, reorder, dup, r, tl
}

// sample draws one per-hop delay.
func (d *Delay) sample() float64 {
	switch d.dist.Kind {
	case DelayFixed:
		return d.dist.A
	case DelayUniform:
		return d.dist.A + (d.dist.B-d.dist.A)*d.r.Float64()
	case DelayExp:
		return d.r.ExpFloat64() * d.dist.A
	}
	return 0
}

// decorate applies the delay/reorder/dup decorators to an inner verdict:
// legs is the delivery's hop count for latency scaling, cost the
// transmission count one duplicate copy would pay.
func (d *Delay) decorate(ok bool, paid, legs, cost int) (bool, int) {
	if d.dist.Kind != DelayNone {
		lat := d.sample() * float64(legs)
		if ok && d.reorder > 0 && d.r.Bernoulli(d.reorder) {
			lat += d.sample() * float64(legs)
		}
		d.tl.Add(lat)
	}
	if ok && d.dup > 0 && d.r.Bernoulli(d.dup) {
		paid += cost
	}
	return ok, paid
}

// Advance implements Channel.
func (d *Delay) Advance(now uint64) { d.inner.Advance(now) }

// Alive implements Channel.
func (d *Delay) Alive(i int32) bool { return d.inner.Alive(i) }

// DeliverHop implements Channel.
func (d *Delay) DeliverHop(p Packet) (bool, int) {
	ok, paid := d.inner.DeliverHop(p)
	return d.decorate(ok, paid, 1, 1)
}

// DeliverRoute implements Channel.
func (d *Delay) DeliverRoute(p Packet) (bool, int) {
	ok, paid := d.inner.DeliverRoute(p)
	return d.decorate(ok, paid, p.Hops, p.Hops)
}

// DeliverRoundTrip implements Channel.
func (d *Delay) DeliverRoundTrip(p Packet) (bool, int) {
	ok, paid := d.inner.DeliverRoundTrip(p)
	return d.decorate(ok, paid, 2*p.Hops, 2*p.Hops)
}

// Name implements Channel.
func (d *Delay) Name() string {
	if d.inner.Name() == "perfect" {
		return "delay"
	}
	return d.inner.Name() + "+delay"
}

// Compile-time interface checks.
var (
	_ Channel = (*Delay)(nil)
	_ Channel = (*Timed)(nil)
)
