package channel

import (
	"math"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/trace"
)

// script is a Channel whose delivery verdicts follow a fixed cyclic
// sequence, charging one transmission per failed attempt — the minimal
// inner medium for pinning ARQ's retry and billing behaviour.
type script struct {
	verdicts []bool
	calls    int
}

func (s *script) Advance(uint64)   {}
func (s *script) Alive(int32) bool { return true }
func (s *script) Name() string     { return "script" }
func (s *script) next() (bool, int) {
	ok := s.verdicts[s.calls%len(s.verdicts)]
	s.calls++
	if ok {
		return true, 0
	}
	return false, 1
}
func (s *script) DeliverHop(Packet) (bool, int)       { return s.next() }
func (s *script) DeliverRoute(Packet) (bool, int)     { return s.next() }
func (s *script) DeliverRoundTrip(Packet) (bool, int) { return s.next() }

// collect gathers traced events for assertion.
type collect struct{ events []trace.Event }

func (c *collect) Record(e trace.Event) { c.events = append(c.events, e) }

func (c *collect) count(k trace.Kind) int {
	n := 0
	for _, e := range c.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestARQRetriesUntilSuccess(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &script{verdicts: []bool{false, false, true}}
	var tr collect
	a := NewARQ(inner, ARQParams{Retries: 5, Timeout: 1, Backoff: 2}, rng.New(7), nil, reg.Scope("test"), &tr)
	ok, paid := a.DeliverHop(pkt(3, 9, 1))
	if !ok || paid != 2 {
		t.Fatalf("DeliverHop = %v, %d; want success paying the 2 failed attempts", ok, paid)
	}
	if inner.calls != 3 {
		t.Fatalf("inner saw %d attempts, want 3", inner.calls)
	}
	if got := reg.Counter(obs.MetricARQTimeouts, "", "engine", "test").Value(); got != 2 {
		t.Fatalf("timeout counter %d, want 2", got)
	}
	if got := reg.Counter(obs.MetricRetransmissions, "", "engine", "test").Value(); got != 2 {
		t.Fatalf("retransmit counter %d, want 2", got)
	}
	if tr.count(trace.KindTimeout) != 2 || tr.count(trace.KindRetransmit) != 2 {
		t.Fatalf("traced %d timeouts, %d retransmits; want 2 and 2",
			tr.count(trace.KindTimeout), tr.count(trace.KindRetransmit))
	}
	// Transport events carry zero hops: the exchange's own event bills
	// the airtime, so trace hop totals still reproduce Transmissions.
	for _, e := range tr.events {
		if e.Hops != 0 {
			t.Fatalf("transport event %v carries %d hops", e.Kind, e.Hops)
		}
		if e.NodeA != 3 || e.NodeB != 9 {
			t.Fatalf("transport event endpoints (%d, %d), want (3, 9)", e.NodeA, e.NodeB)
		}
	}
}

func TestARQExhaustsBudget(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &script{verdicts: []bool{false}}
	a := NewARQ(inner, ARQParams{Retries: 3, Timeout: 1, Backoff: 2}, rng.New(7), nil, reg.Scope("test"), nil)
	ok, paid := a.DeliverRoute(pkt(0, 1, 5))
	if ok || paid != 4 {
		t.Fatalf("DeliverRoute = %v, %d; want give-up billing all 4 attempts", ok, paid)
	}
	if inner.calls != 4 {
		t.Fatalf("inner saw %d attempts, want 1 + 3 retries", inner.calls)
	}
	// Every lost attempt times out; only the retried ones count as
	// retransmissions — the last timeout is the give-up.
	if got := reg.Counter(obs.MetricARQTimeouts, "", "engine", "test").Value(); got != 4 {
		t.Fatalf("timeout counter %d, want 4", got)
	}
	if got := reg.Counter(obs.MetricRetransmissions, "", "engine", "test").Value(); got != 3 {
		t.Fatalf("retransmit counter %d, want 3", got)
	}
}

func TestARQBackoffWaitsWithJitter(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	inner := &script{verdicts: []bool{false}}
	a := NewARQ(inner, ARQParams{Retries: 2, Timeout: 1, Backoff: 2}, rng.New(11), &tl, nil, nil)
	if ok, _ := a.DeliverHop(pkt(0, 1, 1)); ok {
		t.Fatal("all-loss medium delivered")
	}
	// Three timeouts wait 1, 2, 4 plus jitter in [0, wait/2) each:
	// total in [7, 10.5).
	if tl.pend < 7 || tl.pend >= 10.5 {
		t.Fatalf("accumulated wait %v outside [7, 10.5)", tl.pend)
	}
}

func TestARQZeroTimeoutDrawsNoJitter(t *testing.T) {
	r := rng.New(13)
	inner := &script{verdicts: []bool{false, true}}
	a := NewARQ(inner, ARQParams{Retries: 1, Timeout: 0, Backoff: 1}, r, nil, nil, nil)
	if ok, paid := a.DeliverHop(pkt(0, 1, 1)); !ok || paid != 1 {
		t.Fatalf("DeliverHop = %v, %d", ok, paid)
	}
	if got, want := r.Uint64(), rng.New(13).Uint64(); got != want {
		t.Fatalf("zero-timeout ARQ consumed jitter randomness: %d != %d", got, want)
	}
}

func TestDelayDrawsOncePerDeliveryEvenOnLoss(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	const mean = 0.5
	d := NewDelay(&script{verdicts: []bool{true, false}}, DelayParams{Kind: DelayExp, A: mean}, 0, 0, rng.New(21), &tl)
	ref := rng.New(21)
	var want float64
	for i := 0; i < 100; i++ {
		d.DeliverHop(pkt(0, 1, 1))
		// One exponential draw per delivery decision, delivered or lost.
		want += ref.ExpFloat64() * mean
	}
	if math.Abs(tl.pend-want) > 1e-12 {
		t.Fatalf("accumulated latency %v, want %v — delay did not draw exactly once per delivery", tl.pend, want)
	}
}

func TestDelayReorderPenaltyAndDupCharge(t *testing.T) {
	var tl Timeline
	tl.Reset(true)
	d := NewDelay(Perfect{}, DelayParams{Kind: DelayFixed, A: 2}, 1, 1, rng.New(5), &tl)
	ok, paid := d.DeliverRoute(pkt(0, 1, 3))
	if !ok {
		t.Fatal("perfect medium lost a route")
	}
	// Certain reorder: base 3-leg latency plus one extra traversal = 12.
	if tl.pend != 12 {
		t.Fatalf("latency %v, want 12 (reordered straggler waits out a second traversal)", tl.pend)
	}
	// Certain duplication: the copy re-pays the route's airtime.
	if paid != 3 {
		t.Fatalf("paid %d extra, want the duplicate's 3 transmissions", paid)
	}
	tl.Reset(true)
	ok, paid = d.DeliverRoundTrip(pkt(0, 1, 2))
	if !ok || tl.pend != 16 || paid != 4 {
		t.Fatalf("round trip = %v, paid %d, latency %v; want true, 4, 16", ok, paid, tl.pend)
	}
}

func TestDelayLeavesLossStreamUntouched(t *testing.T) {
	plain, err := Parse("bernoulli:0.3")
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Parse("bernoulli:0.3+delay:exp/0.5+reorder:0.2+dup:0.1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Build(8, Env{}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	var tl Timeline
	tl.Reset(true)
	b, err := delayed.Build(8, Env{Timeline: &tl}, rng.New(42), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	p := pkt(0, 1, 3)
	for i := 0; i < 2000; i++ {
		p.Now = uint64(i)
		okA, _ := a.DeliverHop(p)
		okB, _ := b.DeliverHop(p)
		if okA != okB {
			t.Fatalf("delivery %d: transport layer changed the loss verdict (%v vs %v)", i, okA, okB)
		}
		tl.DrainTo(float64(i), nil)
	}
	if tl.High() == 0 {
		t.Fatal("delayed channel scheduled nothing — transport layer inert")
	}
}

func TestARQOnPerfectMediumIsInert(t *testing.T) {
	spec, err := Parse("arq:3/1/2")
	if err != nil {
		t.Fatal(err)
	}
	var tl Timeline
	tl.Reset(true)
	lossRNG := rng.New(17)
	ch, err := spec.Build(8, Env{Timeline: &tl}, lossRNG, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if ok, paid := ch.DeliverRoundTrip(pkt(0, 1, 4)); !ok || paid != 0 {
			t.Fatalf("delivery %d = %v, %d; ARQ on a perfect medium must be free", i, ok, paid)
		}
	}
	if tl.Pending() != 0 || tl.High() != 0 {
		t.Fatalf("ARQ on a perfect medium scheduled events: pending %d high %v", tl.Pending(), tl.High())
	}
	if got, want := lossRNG.Uint64(), rng.New(17).Uint64(); got != want {
		t.Fatal("ARQ on a perfect medium consumed loss randomness")
	}
}

func TestTransportComposesInWrapperOrder(t *testing.T) {
	spec, err := Parse("bernoulli:0.1+delay:fixed/1+reorder:0.5+dup:0.1+arq:2/1/2+churn:1000/0")
	if err != nil {
		t.Fatal(err)
	}
	var tl Timeline
	tl.Reset(true)
	ch, err := spec.Build(8, Env{Timeline: &tl}, rng.New(1), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Delay inside ARQ (retries re-pay latency) inside churn (dead
	// endpoints don't burn the retry budget); the Timed bracket is
	// transparent to the name.
	if got, want := ch.Name(), "bernoulli+delay+arq+churn"; got != want {
		t.Fatalf("composed name %q, want %q", got, want)
	}
	if _, isTimed := ch.(*Timed); !isTimed {
		t.Fatalf("transport spec built %T, want the Timed bracket outermost", ch)
	}
}

func TestPoolTransportBuildMatchesFresh(t *testing.T) {
	spec, err := Parse("ge:0.05/0.3/0.1/0.8+delay:exp/0.5+reorder:0.1+dup:0.05+arq:2/1/2")
	if err != nil {
		t.Fatal(err)
	}
	var pool Pool
	var tlFresh, tlPooled Timeline
	// Two pooled builds in a row: the second must reseed the kept
	// transport streams back to the fresh-build sequence.
	for round := 0; round < 2; round++ {
		tlFresh.Reset(true)
		tlPooled.Reset(true)
		fresh, err := spec.Build(8, Env{Timeline: &tlFresh}, rng.New(42), rng.New(43))
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := spec.BuildWith(&pool, 8, Env{Timeline: &tlPooled}, rng.New(42), rng.New(43))
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Name() != pooled.Name() {
			t.Fatalf("round %d: names differ: %q vs %q", round, fresh.Name(), pooled.Name())
		}
		p := pkt(0, 1, 3)
		for i := 0; i < 1000; i++ {
			p.Now = uint64(i)
			fresh.Advance(p.Now)
			pooled.Advance(p.Now)
			var okA, okB bool
			var paidA, paidB int
			switch i % 3 {
			case 0:
				okA, paidA = fresh.DeliverHop(p)
				okB, paidB = pooled.DeliverHop(p)
			case 1:
				okA, paidA = fresh.DeliverRoute(p)
				okB, paidB = pooled.DeliverRoute(p)
			default:
				okA, paidA = fresh.DeliverRoundTrip(p)
				okB, paidB = pooled.DeliverRoundTrip(p)
			}
			if okA != okB || paidA != paidB {
				t.Fatalf("round %d delivery %d: fresh (%v, %d) vs pooled (%v, %d)", round, i, okA, paidA, okB, paidB)
			}
		}
		if tlFresh.High() != tlPooled.High() || tlFresh.Pending() != tlPooled.Pending() {
			t.Fatalf("round %d: timelines diverged: high %v/%v pending %d/%d",
				round, tlFresh.High(), tlPooled.High(), tlFresh.Pending(), tlPooled.Pending())
		}
	}
}

// TestScheduledFaultsFireAtEventInstants is the time-realism equivalence
// contract: a fault window boundary crossed by a delayed-delivery
// completion (a fractional instant reported through Timeline.DrainTo)
// flips jam schedules, cut heals, and churn state exactly as the same
// floored instant reached by a plain tick does.
func TestScheduledFaultsFireAtEventInstants(t *testing.T) {
	spec, err := Parse("jam:0.5/0.5/0.3/1/100/200+cut:1/0/0.5/150/400+churn:50/10")
	if err != nil {
		t.Fatal(err)
	}
	pts := []geo.Point{geo.Pt(0.45, 0.5), geo.Pt(0.55, 0.5), geo.Pt(0.48, 0.52), geo.Pt(0.2, 0.2)}
	build := func() Channel {
		ch, err := spec.Build(len(pts), Env{Points: pts}, rng.New(7), rng.New(8))
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	tickCh, evCh := build(), build()

	// Fractional completion instants straddling every boundary: the jam
	// window open (100) and close (200), the cut window (150, 400), and
	// plenty of churn flips in between (mean up 50, down 10).
	instants := []float64{12.7, 98.4, 99.9, 100.0, 100.6, 149.2, 150.7, 199.9, 200.1, 350.4, 400.2, 455.5}
	var tl Timeline
	tl.Reset(true)
	for _, at := range instants {
		tl.begin()
		tl.Add(at)
		tl.finish(0)
	}

	check := func(now uint64) {
		tickCh.Advance(now) // the plain tick crossing the same boundary
		for src := int32(0); src < int32(len(pts)); src++ {
			for dst := int32(0); dst < int32(len(pts)); dst++ {
				if src == dst {
					continue
				}
				if a, b := tickCh.Alive(src), evCh.Alive(src); a != b {
					t.Fatalf("t=%d: alive(%d) %v via tick, %v via event", now, src, a, b)
				}
				p := Packet{Src: src, Dst: dst, Hops: 1, Now: now, SrcPos: pts[src], DstPos: pts[dst]}
				okA, paidA := tickCh.DeliverHop(p)
				okB, paidB := evCh.DeliverHop(p)
				if okA != okB || paidA != paidB {
					t.Fatalf("t=%d: hop %d->%d (%v, %d) via tick, (%v, %d) via event", now, src, dst, okA, paidA, okB, paidB)
				}
			}
		}
	}
	drained := 0
	tl.DrainTo(1000, func(now uint64) {
		evCh.Advance(now) // delayed-delivery completion advances the medium
		check(now)
		drained++
	})
	if drained != len(instants) {
		t.Fatalf("drained %d events, want %d", drained, len(instants))
	}
}

func TestTransportSpecRejections(t *testing.T) {
	for _, text := range []string{
		"delay:fixed/0",         // fixed delay must be positive
		"delay:uniform/0.5/0.2", // bounds inverted
		"delay:exp/-1",
		"delay:trapezoid/1", // unknown distribution
		"reorder:0.5",       // reorder needs a delay distribution
		"delay:exp/1+reorder:1.5",
		"dup:2",
		"arq:0/1/2",   // retries must be positive
		"arq:2/-1/2",  // negative timeout
		"arq:2/1/0.5", // backoff below 1
		"arq:2/1",     // wrong arity
	} {
		if s, err := Parse(text); err == nil {
			t.Fatalf("Parse(%q) accepted invalid transport spec %+v", text, s)
		}
	}
}

// Benchmark the transport wrappers' per-delivery cost — the hot path
// every data packet of a time-realism run goes through (drained each
// iteration so the timeline heap stays at steady-state size).
func BenchmarkDelayHop(b *testing.B) {
	var tl Timeline
	tl.Reset(true)
	inner := &Bernoulli{P: 0.2, R: rng.New(1)}
	ch := NewTimed(NewDelay(inner, DelayParams{Kind: DelayExp, A: 0.5}, 0.1, 0.05, rng.New(2), &tl), &tl, nil)
	p := pkt(0, 1, 1)
	for i := 0; i < b.N; i++ {
		p.Now = uint64(i)
		_, paid := ch.DeliverHop(p)
		benchSink += paid
		tl.DrainTo(float64(p.Now), nil)
	}
}

func BenchmarkARQHop(b *testing.B) {
	var tl Timeline
	tl.Reset(true)
	inner := &Bernoulli{P: 0.2, R: rng.New(1)}
	ch := NewTimed(NewARQ(inner, ARQParams{Retries: 3, Timeout: 1, Backoff: 2}, rng.New(2), &tl, nil, nil), &tl, nil)
	p := pkt(0, 1, 1)
	for i := 0; i < b.N; i++ {
		p.Now = uint64(i)
		_, paid := ch.DeliverHop(p)
		benchSink += paid
		tl.DrainTo(float64(p.Now), nil)
	}
}
