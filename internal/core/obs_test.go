package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"geogossip/internal/hier"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// TestInstrumentedPooledBitIdenticalCore is the observability variant of
// the pooled-vs-fresh suite: with a JSONL tracer AND a live metrics
// registry attached, a RunState shared across both hierarchy engines
// and the fault matrix must still produce bit-identical results,
// byte-identical traces, and identical metric flushes to fresh state.
func TestInstrumentedPooledBitIdenticalCore(t *testing.T) {
	f := newFixture(t, 400, 2.0, 930, hier.Config{})
	pooled := NewRunState()
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000}

	for _, cfg := range coreStateConfigs {
		// Recursive engine.
		rOpt := RecursiveOptions{Eps: 5e-2, Faults: coreSpec(t, cfg.faults), Recover: cfg.recover}
		var freshBuf, pooledBuf bytes.Buffer
		freshReg, pooledReg := obs.NewRegistry(), obs.NewRegistry()

		rOpt.Tracer = &trace.JSONL{W: &freshBuf}
		rOpt.Obs = freshReg.Scope("affine")
		fresh, err := RunRecursive(f.g, f.h, randomValues(f.g.N(), 931), rOpt, rng.New(932))
		if err != nil {
			t.Fatalf("recursive/%s: fresh: %v", cfg.name, err)
		}
		rOpt.State = pooled
		rOpt.Tracer = &trace.JSONL{W: &pooledBuf}
		rOpt.Obs = pooledReg.Scope("affine")
		got, err := RunRecursive(f.g, f.h, randomValues(f.g.N(), 931), rOpt, rng.New(932))
		if err != nil {
			t.Fatalf("recursive/%s: pooled: %v", cfg.name, err)
		}
		if fresh.Transmissions != got.Transmissions || fresh.FinalErr != got.FinalErr ||
			fresh.FarExchanges != got.FarExchanges || fresh.Reelections != got.Reelections {
			t.Fatalf("recursive/%s: pooled run diverged:\nfresh:  %+v\npooled: %+v", cfg.name, fresh, got)
		}
		if !bytes.Equal(freshBuf.Bytes(), pooledBuf.Bytes()) {
			t.Fatalf("recursive/%s: pooled trace diverged (%d vs %d bytes)",
				cfg.name, freshBuf.Len(), pooledBuf.Len())
		}
		if fl, pl := freshReg.Flatten(), pooledReg.Flatten(); !reflect.DeepEqual(fl, pl) {
			t.Fatalf("recursive/%s: pooled metrics diverged:\nfresh:  %v\npooled: %v", cfg.name, fl, pl)
		}

		// Async engine on the same pooled state.
		aOpt := AsyncOptions{Eps: 1e-2, Faults: coreSpec(t, cfg.faults), Recover: cfg.recover, Stop: stop}
		freshBuf.Reset()
		pooledBuf.Reset()
		freshReg, pooledReg = obs.NewRegistry(), obs.NewRegistry()

		aOpt.Tracer = &trace.JSONL{W: &freshBuf}
		aOpt.Obs = freshReg.Scope("async")
		freshA, err := RunAsync(f.g, f.h, randomValues(f.g.N(), 941), aOpt, rng.New(942))
		if err != nil {
			t.Fatalf("async/%s: fresh: %v", cfg.name, err)
		}
		aOpt.State = pooled
		aOpt.Tracer = &trace.JSONL{W: &pooledBuf}
		aOpt.Obs = pooledReg.Scope("async")
		gotA, err := RunAsync(f.g, f.h, randomValues(f.g.N(), 941), aOpt, rng.New(942))
		if err != nil {
			t.Fatalf("async/%s: pooled: %v", cfg.name, err)
		}
		if freshA.Transmissions != gotA.Transmissions || freshA.FinalErr != gotA.FinalErr ||
			freshA.Ticks != gotA.Ticks || freshA.Resyncs != gotA.Resyncs ||
			freshA.Reelections != gotA.Reelections {
			t.Fatalf("async/%s: pooled run diverged:\nfresh:  %+v\npooled: %+v", cfg.name, freshA, gotA)
		}
		if !bytes.Equal(freshBuf.Bytes(), pooledBuf.Bytes()) {
			t.Fatalf("async/%s: pooled trace diverged (%d vs %d bytes)",
				cfg.name, freshBuf.Len(), pooledBuf.Len())
		}
		if fl, pl := freshReg.Flatten(), pooledReg.Flatten(); !reflect.DeepEqual(fl, pl) {
			t.Fatalf("async/%s: pooled metrics diverged:\nfresh:  %v\npooled: %v", cfg.name, fl, pl)
		}

		if err := f.h.Validate(); err != nil {
			t.Fatalf("%s: shared hierarchy mutated: %v", cfg.name, err)
		}
	}
}

// TestInstrumentedTicksAllocFreeCore repeats the steady-state zero-alloc
// assertions with a live registry scope attached to both hierarchy
// engines: per-event reporting is pure atomics.
func TestInstrumentedTicksAllocFreeCore(t *testing.T) {
	reg := obs.NewRegistry()

	f := newFixture(t, 512, 1.8, 990, hier.Config{})
	st := NewRunState()
	if _, err := RunAsync(f.g, f.h, randomValues(f.g.N(), 991), AsyncOptions{
		Eps:         1e-2,
		RecordEvery: math.MaxUint64 >> 1,
		Stop:        sim.StopRule{MaxTicks: 200_000},
		State:       st,
		Obs:         reg.Scope("async"),
	}, rng.New(992)); err != nil {
		t.Fatal(err)
	}
	e := &st.async
	for i := 0; i < 2000; i++ {
		e.step()
	}
	if avg := testing.AllocsPerRun(500, e.step); avg != 0 {
		t.Errorf("async: %v allocs per instrumented steady-state tick, want 0", avg)
	}

	f2 := newFixture(t, 512, 1.8, 995, hier.Config{})
	st2 := NewRunState()
	if _, err := RunRecursive(f2.g, f2.h, randomValues(f2.g.N(), 996), RecursiveOptions{
		Eps:         1e-2,
		RecordEvery: 1 << 40,
		State:       st2,
		Obs:         reg.Scope("affine"),
	}, rng.New(997)); err != nil {
		t.Fatal(err)
	}
	re := &st2.rec
	root := f2.h.Root()
	m, _ := re.kidCount(root)
	if m < 2 {
		t.Skip("root has fewer than two populated children")
	}
	a, b := re.kid(root, 0), re.kid(root, 1)
	warm := func() { re.farExchange(a, b) }
	for i := 0; i < 100; i++ {
		warm()
	}
	if avg := testing.AllocsPerRun(500, warm); avg != 0 {
		t.Errorf("recursive far exchange: %v allocs instrumented, want 0", avg)
	}
}
