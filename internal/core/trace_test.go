package core

import (
	"testing"

	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

func TestRecursiveEmitsTraceEvents(t *testing.T) {
	f := newFixture(t, 512, 1.8, 470, hier.Config{})
	buf := trace.NewBuffer(0)
	x := randomValues(f.g.N(), 471)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:    1e-2,
		Tracer: buf,
	}, rng.New(472))
	if err != nil {
		t.Fatal(err)
	}
	if buf.Count(trace.KindFar) != res.FarExchanges {
		t.Fatalf("trace far count %d != result %d", buf.Count(trace.KindFar), res.FarExchanges)
	}
	if buf.Count(trace.KindLeafDone) == 0 {
		t.Fatal("no leaf completions traced")
	}
	// Far events carry valid endpoints and positive hops.
	for _, e := range buf.Events() {
		if e.Kind != trace.KindFar {
			continue
		}
		if e.NodeA < 0 || e.NodeB < 0 || e.NodeA == e.NodeB {
			t.Fatalf("bad far event: %v", e)
		}
	}
}

func TestRecursiveTracesLosses(t *testing.T) {
	f := newFixture(t, 512, 1.8, 473, hier.Config{})
	buf := trace.NewBuffer(0)
	x := randomValues(f.g.N(), 474)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:      1e-2,
		LossRate: 0.3,
		Tracer:   buf,
	}, rng.New(475))
	if err != nil {
		t.Fatal(err)
	}
	if buf.Count(trace.KindLoss) != res.RouteFailures {
		t.Fatalf("trace loss count %d != route failures %d", buf.Count(trace.KindLoss), res.RouteFailures)
	}
	if buf.Count(trace.KindLoss) == 0 {
		t.Fatal("30% loss produced no loss events")
	}
}

func TestAsyncEmitsTraceEvents(t *testing.T) {
	f := newFixture(t, 256, 2.0, 476, hier.Config{})
	buf := trace.NewBuffer(0)
	x := randomValues(f.g.N(), 477)
	res, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Stop:   sim.StopRule{TargetErr: 5e-2, MaxTicks: 10_000_000},
		Tracer: buf,
	}, rng.New(478))
	if err != nil {
		t.Fatal(err)
	}
	if buf.Count(trace.KindActivate) != res.Activations {
		t.Fatalf("trace activations %d != result %d", buf.Count(trace.KindActivate), res.Activations)
	}
	if buf.Count(trace.KindDeactivate) != res.Deactivations {
		t.Fatalf("trace deactivations %d != result %d", buf.Count(trace.KindDeactivate), res.Deactivations)
	}
	if buf.Count(trace.KindFar) != res.FarExchanges {
		t.Fatalf("trace far %d != result %d", buf.Count(trace.KindFar), res.FarExchanges)
	}
}

func TestNilTracerIsFree(t *testing.T) {
	// Determinism check: runs with and without a tracer are identical.
	f := newFixture(t, 256, 2.0, 479, hier.Config{})
	run := func(tr trace.Tracer) uint64 {
		x := randomValues(f.g.N(), 480)
		res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-2, Tracer: tr}, rng.New(481))
		if err != nil {
			t.Fatal(err)
		}
		return res.Transmissions
	}
	if run(nil) != run(trace.NewBuffer(16)) {
		t.Fatal("tracer changed the run")
	}
}
