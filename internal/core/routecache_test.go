package core

import (
	"reflect"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

// TestRouteCacheDrawCompat verifies the routing determinism contract
// (DESIGN.md §6) for the hierarchy engines — the heaviest cache users:
// recursive and async runs with route/flood memoization are bit-identical
// to the same runs with every route and flood recomputed, including
// under loss (the channel draws must stay aligned) and with recovery on.
func TestRouteCacheDrawCompat(t *testing.T) {
	g, err := graph.Generate(512, 1.5, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, g.N())
	r := rng.New(22)
	for i := range base {
		base[i] = r.NormFloat64()
	}

	t.Run("recursive", func(t *testing.T) {
		run := func(routes *routing.Cache) (*Result, []float64) {
			x := append([]float64(nil), base...)
			res, err := RunRecursive(g, h, x, RecursiveOptions{
				Eps:      1e-2,
				LossRate: 0.05,
				Routes:   routes,
			}, rng.New(23))
			if err != nil {
				t.Fatal(err)
			}
			return res, x
		}
		cached, xc := run(routing.NewCache())
		plain, xp := run(routing.NoCache())
		if !reflect.DeepEqual(cached, plain) {
			t.Errorf("recursive results diverge:\ncached: %+v\nuncached: %+v", cached.Result, plain.Result)
		}
		if !reflect.DeepEqual(xc, xp) {
			t.Error("recursive final values diverge between cached and uncached routing")
		}
	})

	t.Run("async", func(t *testing.T) {
		run := func(routes *routing.Cache) (*AsyncResult, []float64) {
			x := append([]float64(nil), base...)
			res, err := RunAsync(g, h, x, AsyncOptions{
				Stop:     sim.StopRule{TargetErr: 1e-2, MaxTicks: 600_000},
				LossRate: 0.05,
				Routes:   routes,
			}, rng.New(24))
			if err != nil {
				t.Fatal(err)
			}
			return res, x
		}
		cached, xc := run(routing.NewCache())
		plain, xp := run(routing.NoCache())
		if !reflect.DeepEqual(cached, plain) {
			t.Errorf("async results diverge:\ncached: %+v\nuncached: %+v", cached.Result, plain.Result)
		}
		if !reflect.DeepEqual(xc, xp) {
			t.Error("async final values diverge between cached and uncached routing")
		}
	})

	t.Run("async-churn-recover", func(t *testing.T) {
		// Recovery re-elects representatives mid-run, changing which
		// (src, dst) pairs the cache sees — the takeover paths must stay
		// identical too.
		run := func(routes *routing.Cache) (*AsyncResult, []float64) {
			x := append([]float64(nil), base...)
			res, err := RunAsync(g, h, x, AsyncOptions{
				Stop:    sim.StopRule{TargetErr: 1e-2, MaxTicks: 400_000},
				Faults:  repChurn(t, "repchurn:60000/30000"),
				Recover: true,
				Routes:  routes,
			}, rng.New(25))
			if err != nil {
				t.Fatal(err)
			}
			return res, x
		}
		cached, xc := run(routing.NewCache())
		plain, xp := run(routing.NoCache())
		if !reflect.DeepEqual(cached, plain) {
			t.Errorf("async churn results diverge:\ncached: %+v\nuncached: %+v", cached.Result, plain.Result)
		}
		if !reflect.DeepEqual(xc, xp) {
			t.Error("async churn final values diverge between cached and uncached routing")
		}
	})
}
