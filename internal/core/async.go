package core

import (
	"fmt"
	"math"

	"geogossip/internal/channel"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/metrics"
	"geogossip/internal/obs"
	"geogossip/internal/par"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// AsyncOptions configures RunAsync, the event-driven protocol of §4.
//
// Budget model: the paper gives each square a round length
// time(n, r, ε, δ) — a worst-case 16th-power polylog — and throttles
// long-range exchanges to rate n^{-a}/time so that, w.h.p., no exchange
// fires while the subtree below it is still averaging. We keep the
// structure and replace the constants: a leaf representative's round
// lasts LeafTicks of its own clock; an internal square at depth r gets
// budget(r) = ceil(RoundsFactor·ln(m/ε_r))·Throttle·budget(r+1) ticks
// (m = its child count), and a depth-r square fires Far with probability
// 1/(Throttle·budget(r)) per tick. Throttle stands in for the paper's
// n^a serialization factor; experiment E13 sweeps it and counts overlap
// events.
type AsyncOptions struct {
	// Eps sizes the per-level budgets via the adaptive schedule
	// ε_{r+1} = ε_r / (EpsDecayFactor·sqrt(E#[□_r])). Zero selects 1e-2.
	Eps float64
	// EpsDecayFactor is the per-level accuracy decay factor; zero
	// selects 4 (see RecursiveOptions.EpsDecayFactor).
	EpsDecayFactor float64
	// Beta scales the affine coefficient; zero selects DefaultBeta.
	Beta float64
	// Throttle is the round-serialization factor; zero selects 4.
	Throttle float64
	// RoundsFactor scales exchanges per round; zero selects 1.
	RoundsFactor float64
	// LeafTicks is a leaf representative's round budget in its own clock
	// ticks; zero selects 64.
	LeafTicks int
	// Stop bundles global termination (the experiment-level oracle); its
	// zero MaxTicks defaults to sim's defensive cap.
	Stop sim.StopRule
	// RecordEvery samples the convergence curve every RecordEvery ticks;
	// zero selects n.
	RecordEvery uint64
	// Recovery selects routing stall handling; zero selects RecoveryBFS.
	Recovery routing.Recovery
	// Routes optionally supplies a shared deterministic route/flood
	// cache bound to the run's graph (see RecursiveOptions.Routes).
	Routes *routing.Cache
	// LossRate is the probability that a data packet (Near exchange or a
	// leg of a Far route) is lost — shorthand for a Bernoulli fault model
	// in Faults; the control plane (activation floods and routes) is
	// assumed reliable. Lost exchanges pay partial cost and apply no
	// update. Zero disables loss. Setting both LossRate and a loss model
	// in Faults is an error.
	LossRate float64
	// Faults selects the radio fault model for the data plane (loss
	// process, spatial jamming, partition cuts and/or node churn —
	// including churn targeted at representatives). The zero Spec is the
	// perfect medium.
	Faults channel.Spec
	// Recover enables the recovery protocol: once per simulated time
	// unit (n ticks) squares with dead representatives re-elect the
	// nearest alive member (paying an election flood over the square's
	// live members), and nodes that revived since the last sweep resync
	// their control state from a live leaf neighbour (2 transmissions
	// each). Off by default — enabling it changes behaviour under churn,
	// so historical churn runs stay bit-identical without it. Takeovers
	// happen on a copy-on-write representative view (hier.RepView); the
	// shared hierarchy build is never mutated.
	Recover bool
	// Parallel, when enabled, shards the recovery sweep's O(n) revival
	// scan — the engine's per-time-unit clock sweep — across workers on
	// the deterministic snapshot schedule of DESIGN.md §9: liveness and
	// local.state are snapshotted once per sweep, per-node classification
	// runs sharded over the snapshots, and accounting applies serially in
	// node order, so results are bit-identical at every worker count.
	// Donors are selected against the sweep-start snapshot (the serial
	// sweep reads evolving state), so the option defaults off to keep
	// historical Recover fingerprints byte-identical. Requires Recover.
	Parallel sim.Parallel
	// State optionally supplies a reusable run state shared with the
	// recursive engine (see RecursiveOptions.State). Nil gives the run a
	// fresh private state.
	State *RunState
	// Tracer, when non-nil, receives structured protocol events
	// (activations, deactivations, far exchanges, losses, resyncs,
	// churn transitions).
	Tracer trace.Tracer
	// Obs, when non-nil, receives metrics through the label-free fast
	// path (see obs.Scope). Nil costs nothing.
	Obs *obs.Scope
}

func (o AsyncOptions) withDefaults() AsyncOptions {
	if o.Eps <= 0 {
		o.Eps = 1e-2
	}
	if o.EpsDecayFactor <= 0 {
		o.EpsDecayFactor = 4
	}
	if o.Beta == 0 {
		o.Beta = DefaultBeta
	}
	if o.Throttle <= 0 {
		// The overlap probability per round is ~1/Throttle, and the damage
		// an overlapping exchange does grows with the affine coefficient
		// Beta·E# — i.e. with n. 8 is safe for the sizes this repository
		// simulates; the paper scales the analogous factor as n^a.
		o.Throttle = 8
	}
	if o.RoundsFactor <= 0 {
		o.RoundsFactor = 1
	}
	if o.LeafTicks <= 0 {
		o.LeafTicks = 64
	}
	if o.Recovery == 0 {
		o.Recovery = routing.RecoveryBFS
	}
	return o
}

func (o AsyncOptions) faultSpec() (channel.Spec, error) {
	return faultSpec(o.LossRate, o.Faults)
}

// AsyncResult extends the shared summary with protocol counters.
type AsyncResult struct {
	*metrics.Result
	// FarExchanges counts long-range exchanges.
	FarExchanges uint64
	// NearExchanges counts local pairwise exchanges.
	NearExchanges uint64
	// Activations and Deactivations count square round transitions.
	Activations   uint64
	Deactivations uint64
	// OverlapFars counts Far events fired by a square whose own round was
	// still in progress (counter below budget) — the events the paper's
	// n^{-a} throttling is designed to suppress.
	OverlapFars uint64
	// RouteFailures counts undeliverable long-range round trips.
	RouteFailures uint64
	// Reelections counts representative takeovers performed by the
	// recovery sweep (AsyncOptions.Recover).
	Reelections uint64
	// Resyncs counts revived-node control-state resyncs performed by the
	// recovery sweep.
	Resyncs uint64
	// BudgetByDepth reports the per-depth round budgets used.
	BudgetByDepth []uint64
}

type asyncEngine struct {
	st *RunState
	g  *graph.Graph
	rt *routing.Router
	h  *hier.Hierarchy
	// view is the copy-on-write representative overlay: every
	// representative read, role lookup, and re-election goes through it.
	view *hier.RepView
	opt  AsyncOptions
	x    []float64

	// run bundles the clock, error tracker, transmission counter,
	// convergence curve, and the radio medium.
	run *sim.Harness
	// expectedLoss is the data-plane medium's long-run loss rate, used
	// to inflate round budgets.
	expectedLoss float64

	// Per-node / per-square protocol state, backed by the run state's
	// reusable (memclr-reset) slices.
	localOn  []bool // per node
	globalOn []bool // per square
	active   []bool // per square: Activate fired, Deactivate not yet
	count    []uint64
	budget   []uint64  // per depth
	pFar     []float64 // per depth
	// prevAlive tracks liveness between recovery sweeps so revivals can
	// trigger a state resync (nil when Recover is off).
	prevAlive []bool
	// Parallel-heal state (nil/false unless opt.Parallel is enabled):
	// liveness and local.state snapshots plus the per-node classification
	// the sharded scan writes and the serial accounting pass reads.
	healPar   bool
	healAlive []bool
	healLocal []bool
	healDonor []int32
	// healEvery is the recovery-sweep period in ticks (n = once per
	// simulated time unit; 0 when Recover is off).
	healEvery uint64
	// reelections and resyncs count recovery actions during the run.
	reelections, resyncs uint64

	protoRNG *rng.RNG
	res      AsyncResult
}

// rep returns sq's current representative through the view.
func (e *asyncEngine) rep(sq *hier.Square) int32 { return e.view.Rep(sq.ID) }

// RunAsync runs the faithful asynchronous protocol of §4 over graph g and
// hierarchy h, mutating x toward consensus. Termination is governed by
// opt.Stop (error target and/or tick cap).
func RunAsync(g *graph.Graph, h *hier.Hierarchy, x []float64, opt AsyncOptions, r *rng.RNG) (*AsyncResult, error) {
	if g.N() != len(x) {
		return nil, fmt.Errorf("core: %d nodes but %d values", g.N(), len(x))
	}
	if len(h.NodeLeaf) != g.N() {
		return nil, fmt.Errorf("core: hierarchy covers %d nodes, graph has %d", len(h.NodeLeaf), g.N())
	}
	opt = opt.withDefaults()
	if g.N() == 0 {
		return &AsyncResult{Result: sim.EmptyResult("affine-async")}, nil
	}
	spec, err := opt.faultSpec()
	if err != nil {
		return nil, err
	}
	st := opt.State
	if st == nil {
		st = &RunState{}
	}
	// Re-elections (under Recover) write to the state's representative
	// view, never to the shared hierarchy build.
	st.bind(g, h, opt.Recovery, opt.Routes)
	e := &st.async
	*e = asyncEngine{
		st:           st,
		g:            g,
		rt:           &st.router,
		h:            h,
		view:         &st.view,
		opt:          opt,
		x:            x,
		expectedLoss: spec.ExpectedLossRate(),
		protoRNG:     st.stream(&st.protoRNG, r, "protocol"),
	}
	st.localOn = sim.GrowBool(st.localOn, g.N())
	st.globalOn = sim.GrowBool(st.globalOn, len(h.Squares))
	st.active = sim.GrowBool(st.active, len(h.Squares))
	st.count = sim.GrowUint64(st.count, len(h.Squares))
	e.localOn, e.globalOn, e.active, e.count = st.localOn, st.globalOn, st.active, st.count
	if opt.Parallel.Enabled() && !opt.Recover {
		return nil, fmt.Errorf("core: AsyncOptions.Parallel shards the recovery sweep and requires Recover")
	}
	if opt.Recover {
		e.healEvery = uint64(g.N())
		st.prevAlive = sim.GrowBool(st.prevAlive, g.N())
		for i := range st.prevAlive {
			st.prevAlive[i] = true
		}
		e.prevAlive = st.prevAlive
		if opt.Parallel.Enabled() {
			e.healPar = true
			st.healAlive = sim.GrowBool(st.healAlive, g.N())
			st.healLocal = sim.GrowBool(st.healLocal, g.N())
			st.healDonor = sim.GrowInt32(st.healDonor, g.N())
			e.healAlive, e.healLocal, e.healDonor = st.healAlive, st.healLocal, st.healDonor
		}
	}
	// The data-plane medium draws losses from the protocol stream (the
	// same stream the inline checks used, keeping pre-channel runs
	// bit-identical) and churn schedules from their own stream.
	st.tline.Reset(spec.HasTransport())
	medium, err := spec.BuildWith(&st.ch, g.N(), st.faultEnv(g, h, spec, opt.Obs, opt.Tracer), e.protoRNG, st.stream(&st.churnRNG, r, "churn"))
	if err != nil {
		return nil, err
	}
	e.buildBudgets()
	e.buildSibs()

	// Initialization (§4.2): the root representative's global.state is on;
	// everything else off.
	root := h.Root()
	if e.rep(root) >= 0 {
		e.globalOn[root.ID] = true
	}

	st.harness.Reset(x, sim.HarnessConfig{
		Stop:        opt.Stop,
		RecordEvery: opt.RecordEvery,
		Medium:      medium,
		Points:      g.Points(),
		Router:      e.rt,
		Tracer:      opt.Tracer,
		Obs:         opt.Obs,
		Timeline:    &st.tline,
	}, st.stream(&st.clockRNG, r, "clock"))
	e.run = &st.harness
	for !e.run.Done() {
		e.step()
	}
	e.res.Result = e.run.Finish("affine-async")
	e.res.BudgetByDepth = append([]uint64(nil), e.budget...)
	e.res.Reelections = e.reelections
	e.res.Resyncs = e.resyncs
	e.res.Result.Reelections = e.reelections
	e.res.Result.Resyncs = e.resyncs
	// The engine lives inside a pooled state: hand out a copy so a later
	// run's reset cannot touch the caller's counters.
	res := e.res
	return &res, nil
}

// step executes one clock tick of the §4.2 protocol: the owner's
// representative roles run their square protocol, then the owner
// performs a Near exchange when its local.state is on. Zero allocations
// in steady state (warm routes and floods are served by the routing
// core's cache and scratch).
func (e *asyncEngine) step() {
	s := e.run.Tick()
	if e.healEvery > 0 && e.run.Clock.Ticks()%e.healEvery == 0 {
		e.heal()
	}
	if !e.run.Alive(s) {
		e.run.Sample()
		return
	}
	for _, sqID := range e.view.Roles(s) {
		e.repStep(int(sqID))
	}
	if e.localOn[s] {
		e.near(s)
	}
	e.run.Sample()
}

// heal runs the periodic recovery sweep: re-elect representatives of
// squares whose rep died (nearest-alive-member takeover, paying an
// election flood over the square's live members) and resync the control
// state of nodes that revived since the last sweep from a live leaf
// neighbour. Fired once per simulated time unit (n ticks).
func (e *asyncEngine) heal() {
	alive := e.run.Medium.Alive
	changed := e.view.Reelect(alive, e.st.changedBuf[:0])
	e.st.changedBuf = changed
	for _, id := range changed {
		sq := e.h.Squares[id]
		e.reelections++
		e.st.chargeReelection(sq, alive, e.opt.Recovery, &e.run.Counter, e.opt.Tracer, e.run.Scope)
		// The successor restarts the square's round from scratch.
		e.count[id] = 0
	}
	if len(changed) > 0 {
		// Representative movement changes the exchange-partner lists; the
		// view keeps node→roles current by itself.
		e.buildSibs()
	}
	if e.healPar {
		e.healScanParallel(alive)
		return
	}
	for i := range e.prevAlive {
		up := alive(int32(i))
		if up && !e.prevAlive[i] {
			// Revived: pull current local.state from a live neighbour in
			// the same leaf (restart-from-neighbor resync). With no live
			// leaf neighbour nothing is pulled — the node conservatively
			// stays off, pays nothing, and retries at the next sweep.
			e.localOn[i] = false
			resynced := false
			donor := int32(-1)
			for _, v := range e.st.leafNbrs(int32(i)) {
				if alive(v) {
					e.localOn[i] = e.localOn[v]
					resynced = true
					donor = v
					break
				}
			}
			if !resynced {
				continue // prevAlive stays false: retry next sweep
			}
			e.run.Counter.Add(sim.CatControl, 2)
			e.resyncs++
			leaf := int(e.h.NodeLeaf[i])
			e.run.Scope.Churn(true)
			e.run.Scope.Resync()
			e.run.Trace(trace.Event{Kind: trace.KindChurn, Square: leaf, NodeA: int32(i), NodeB: 1})
			e.run.Trace(trace.Event{Kind: trace.KindResync, Square: leaf, NodeA: int32(i), NodeB: donor, Hops: 2})
		} else if !up && e.prevAlive[i] {
			e.run.Scope.Churn(false)
			e.run.Trace(trace.Event{Kind: trace.KindChurn, Square: int(e.h.NodeLeaf[i]), NodeA: int32(i), NodeB: 0})
		}
		e.prevAlive[i] = up
	}
}

// healDonor classification sentinels (values >= 0 are donor node ids,
// -1 is "revived but no live donor: retry next sweep").
const (
	healNone = int32(-3) // no liveness transition
	healDied = int32(-2) // up -> down transition
)

// healScanParallel is the revival scan of heal on the deterministic
// sharded snapshot schedule (AsyncOptions.Parallel):
//
//	phase A (parallel): snapshot per-node liveness. Alive is node-local
//	  (churn schedules extend lazily per node), so disjoint node ranges
//	  are race-free, and at a fixed tick the snapshot equals what the
//	  serial sweep would read node by node.
//	phase B (parallel): classify each node and pick its resync donor —
//	  the first live in-leaf neighbour — against the phase-A liveness
//	  and a sweep-start local.state snapshot. Each node writes only its
//	  own localOn/healDonor slot.
//	phase C (serial, node order): transmissions, counters, traces and
//	  prevAlive updates.
//
// The schedule depends only on (n, Shards); Workers never changes any
// output (asserted by test at worker counts {1, 2, NumCPU}).
func (e *asyncEngine) healScanParallel(alive func(int32) bool) {
	n := e.g.N()
	p := e.opt.Parallel.WithDefaults()
	shards := p.Shards
	if shards > n {
		shards = n
	}
	bounds := par.Ranges(n, shards)
	par.Do(p.Workers, shards, func(si int) {
		for i := bounds[si]; i < bounds[si+1]; i++ {
			e.healAlive[i] = alive(int32(i))
		}
	})
	copy(e.healLocal, e.localOn)
	par.Do(p.Workers, shards, func(si int) {
		for i := bounds[si]; i < bounds[si+1]; i++ {
			up := e.healAlive[i]
			switch {
			case up && !e.prevAlive[i]:
				donor := int32(-1)
				for _, v := range e.st.leafNbrs(int32(i)) {
					if e.healAlive[v] {
						donor = v
						break
					}
				}
				e.healDonor[i] = donor
				e.localOn[i] = donor >= 0 && e.healLocal[donor]
			case !up && e.prevAlive[i]:
				e.healDonor[i] = healDied
			default:
				e.healDonor[i] = healNone
			}
		}
	})
	for i := 0; i < n; i++ {
		switch d := e.healDonor[i]; d {
		case healNone:
		case healDied:
			e.run.Scope.Churn(false)
			e.run.Trace(trace.Event{Kind: trace.KindChurn, Square: int(e.h.NodeLeaf[i]), NodeA: int32(i), NodeB: 0})
			e.prevAlive[i] = false
		case -1:
			// Revived with no live leaf neighbour: stays off and
			// prevAlive stays false, retrying next sweep — exactly the
			// serial sweep's conservative branch.
		default:
			e.run.Counter.Add(sim.CatControl, 2)
			e.resyncs++
			leaf := int(e.h.NodeLeaf[i])
			e.run.Scope.Churn(true)
			e.run.Scope.Resync()
			e.run.Trace(trace.Event{Kind: trace.KindChurn, Square: leaf, NodeA: int32(i), NodeB: 1})
			e.run.Trace(trace.Event{Kind: trace.KindResync, Square: leaf, NodeA: int32(i), NodeB: d, Hops: 2})
			e.prevAlive[i] = true
		}
	}
}

// buildBudgets computes per-depth round budgets bottom-up and the derived
// Far rates into the state's reusable per-depth slices.
func (e *asyncEngine) buildBudgets() {
	depths := e.h.Ell // squares exist at depths 0..Ell-1
	e.st.budget = sim.GrowUint64(e.st.budget, depths)
	e.st.pFar = sim.GrowFloat(e.st.pFar, depths)
	e.st.epsBuf = sim.GrowFloat(e.st.epsBuf, depths)
	e.budget, e.pFar = e.st.budget, e.st.pFar
	leafDepth := depths - 1
	e.budget[leafDepth] = uint64(e.opt.LeafTicks)
	// Per-depth accuracy targets follow the adaptive decay schedule.
	eps := e.st.epsBuf
	eps[0] = e.opt.Eps
	expected := float64(e.g.N())
	for r := 1; r < depths; r++ {
		eps[r] = eps[r-1] / (e.opt.EpsDecayFactor * math.Sqrt(expected))
		expected /= float64(e.h.Branching[r-1])
	}
	// Under packet loss a Far exchange survives only with probability
	// (1-loss)²; rounds are budgeted for the effective exchange count.
	// Transport ARQ raises the true survival rate, but the budget
	// deliberately ignores it: budgets sized for the raw loss rate only
	// over-provision rounds, which is safe (DESIGN.md §12).
	lossFactor := 1.0
	if e.expectedLoss > 0 && e.expectedLoss < 1 {
		surv := (1 - e.expectedLoss) * (1 - e.expectedLoss)
		lossFactor = 1 / surv
	}
	for r := leafDepth - 1; r >= 0; r-- {
		m := float64(e.h.Branching[r]) // children per depth-r square
		rounds := math.Ceil(e.opt.RoundsFactor * lossFactor * math.Log(m/eps[r]))
		if rounds < 1 {
			rounds = 1
		}
		e.budget[r] = uint64(rounds*e.opt.Throttle) * e.budget[r+1]
	}
	for r := 1; r < depths; r++ {
		e.pFar[r] = 1 / (e.opt.Throttle * float64(e.budget[r]))
		if e.pFar[r] > 1 {
			e.pFar[r] = 1
		}
	}
	// Depth 0 (the root) has no siblings: no Far.
	e.pFar[0] = 0
}

// buildSibs flattens each square's exchange-partner list — its siblings
// with a live representative assignment, in child-grid order — into the
// state's offset-indexed pair. Rebuilt after recovery sweeps that move
// representatives; allocation-free once the buffers have grown.
func (e *asyncEngine) buildSibs() {
	nsq := len(e.h.Squares)
	e.st.sibsOff = sim.GrowInt32(e.st.sibsOff, nsq+1)
	off := e.st.sibsOff
	total := int32(0)
	off[0] = 0
	for id, sq := range e.h.Squares {
		if sq.Parent >= 0 && e.view.Rep(id) >= 0 {
			parent := e.h.Squares[sq.Parent]
			for _, c := range parent.Children {
				if c != sq.ID && e.view.Rep(c) >= 0 {
					total++
				}
			}
		}
		off[id+1] = total
	}
	e.st.sibsIDs = sim.GrowInt32(e.st.sibsIDs, int(total))
	ids := e.st.sibsIDs
	fill := int32(0)
	for id, sq := range e.h.Squares {
		if sq.Parent >= 0 && e.view.Rep(id) >= 0 {
			parent := e.h.Squares[sq.Parent]
			for _, c := range parent.Children {
				if c != sq.ID && e.view.Rep(c) >= 0 {
					ids[fill] = int32(c)
					fill++
				}
			}
		}
	}
}

// sibs returns square id's exchange partners (read-only, valid until the
// next buildSibs).
func (e *asyncEngine) sibs(id int) []int32 {
	return e.st.sibsIDs[e.st.sibsOff[id]:e.st.sibsOff[id+1]]
}

// repStep executes the level > 0 protocol for the square sqID on a tick of
// its representative (§4.2).
func (e *asyncEngine) repStep(sqID int) {
	sq := e.h.Squares[sqID]
	if e.globalOn[sqID] {
		if e.count[sqID] == 0 {
			e.activate(sq)
		}
		if e.pFar[sq.Depth] > 0 && e.protoRNG.Bernoulli(e.pFar[sq.Depth]) {
			e.far(sq)
			e.count[sqID] = 0
			return // counter reset; next tick re-activates
		}
	}
	if e.count[sqID] >= e.budget[sq.Depth] {
		e.deactivate(sq)
	} else {
		e.count[sqID]++
	}
}

// activate switches sq's square on (Activate.square): a level-1 (leaf)
// representative floods local.state ← on within its square; higher levels
// route control packets to each child representative setting
// global.state ← on.
func (e *asyncEngine) activate(sq *hier.Square) {
	if e.active[sq.ID] {
		return
	}
	e.active[sq.ID] = true
	e.res.Activations++
	// The event is emitted after the control traffic so it can carry the
	// transition's total charged cost in Hops.
	cost := 0
	if sq.IsLeaf() {
		fl := e.rt.Flood(e.rep(sq), sq.Rect)
		e.run.Counter.Add(sim.CatFlood, fl.Transmissions)
		cost = fl.Transmissions
		for _, v := range fl.Reached {
			e.localOn[v] = true
		}
	} else {
		for _, cid := range sq.Children {
			child := e.h.Squares[cid]
			childRep := e.rep(child)
			if childRep < 0 {
				continue
			}
			res := e.rt.RouteToNode(e.rep(sq), childRep, e.opt.Recovery)
			e.run.Counter.Add(sim.CatControl, res.Hops)
			cost += res.Hops
			if res.Delivered {
				e.globalOn[child.ID] = true
			}
		}
	}
	e.run.Trace(trace.Event{Kind: trace.KindActivate, Square: sq.ID, NodeA: e.rep(sq), NodeB: -1, Hops: cost})
}

// deactivate is activate's inverse (Deactivate.square). It only pays the
// control cost on an actual transition.
func (e *asyncEngine) deactivate(sq *hier.Square) {
	if !e.active[sq.ID] {
		return
	}
	e.active[sq.ID] = false
	e.res.Deactivations++
	cost := 0
	if sq.IsLeaf() {
		fl := e.rt.Flood(e.rep(sq), sq.Rect)
		e.run.Counter.Add(sim.CatFlood, fl.Transmissions)
		cost = fl.Transmissions
		for _, v := range fl.Reached {
			e.localOn[v] = false
		}
	} else {
		for _, cid := range sq.Children {
			child := e.h.Squares[cid]
			childRep := e.rep(child)
			if childRep < 0 {
				continue
			}
			res := e.rt.RouteToNode(e.rep(sq), childRep, e.opt.Recovery)
			e.run.Counter.Add(sim.CatControl, res.Hops)
			cost += res.Hops
			if res.Delivered {
				e.globalOn[child.ID] = false
			}
		}
	}
	e.run.Trace(trace.Event{Kind: trace.KindDeactivate, Square: sq.ID, NodeA: e.rep(sq), NodeB: -1, Hops: cost})
}

// far performs one long-range exchange (procedure Far of §4.2): the
// representative routes to a uniformly random sibling square's
// representative, both apply the affine update with coefficient
// Beta·E#[□], and both counters reset so both subtrees re-average.
func (e *asyncEngine) far(sq *hier.Square) {
	sibs := e.sibs(sq.ID)
	if len(sibs) == 0 {
		return
	}
	if e.count[sq.ID] < e.budget[sq.Depth] {
		// The square's own round was still in progress: the event the
		// paper's n^{-a} throttling is designed to make negligible.
		e.res.OverlapFars++
	}
	partner := e.h.Squares[sibs[e.protoRNG.IntN(len(sibs))]]
	myRep, partnerRep := e.rep(sq), e.rep(partner)
	if partnerRep < 0 || myRep < 0 {
		return // a recovery sweep retired the square entirely
	}
	out := e.rt.RouteToNode(myRep, partnerRep, e.opt.Recovery)
	// On success paid is the transport layer's extra airtime
	// (retransmissions, duplicates); zero without delay/arq.
	ok, paid := e.run.Medium.DeliverRoundTrip(e.run.Packet(myRep, partnerRep, out.Hops))
	if !ok {
		e.run.Counter.Add(sim.CatFar, paid)
		e.res.RouteFailures++
		e.run.Scope.Loss(paid)
		e.run.Trace(trace.Event{Kind: trace.KindLoss, Square: sq.ID, NodeA: myRep, NodeB: partnerRep, Hops: paid})
		return
	}
	hops := out.Hops + paid
	delivered := out.Delivered
	if delivered {
		back := e.rt.RouteToNode(partnerRep, myRep, e.opt.Recovery)
		hops += back.Hops
		delivered = back.Delivered
	}
	e.run.Counter.Add(sim.CatFar, hops)
	if !delivered {
		e.res.RouteFailures++
		return
	}
	xi, xj := e.x[myRep], e.x[partnerRep]
	coeff := e.opt.Beta * sq.Expected
	e.run.Tracker.Set(myRep, xi+coeff*(xj-xi))
	e.run.Tracker.Set(partnerRep, xj+coeff*(xi-xj))
	e.res.FarExchanges++
	e.run.Scope.FarExchange(hops)
	e.run.Trace(trace.Event{Kind: trace.KindFar, Square: sq.ID, NodeA: myRep, NodeB: partnerRep, Hops: hops})
	// §4.2 Far step 5: the partner's counter resets too, re-activating its
	// subtree for re-averaging.
	e.count[partner.ID] = 0
}

// near performs one local exchange (procedure Near): average with a
// uniformly random neighbour inside the same leaf square.
func (e *asyncEngine) near(s int32) {
	cands := e.st.leafNbrs(s)
	var v int32
	cost := 2
	switch {
	// Short-circuit keeps the representative lookup off the common path:
	// only bridge/orphan nodes (repair > 0, rare) consult it.
	case e.st.repair[s] > 0 && e.view.Rep(int(e.h.NodeLeaf[s])) >= 0:
		v = e.view.Rep(int(e.h.NodeLeaf[s]))
		cost = 2 * int(e.st.repair[s])
	case len(cands) > 0:
		v = cands[e.protoRNG.IntN(len(cands))]
	default:
		return
	}
	ok, paid := e.run.Medium.DeliverHop(e.run.Packet(s, v, 1))
	if !ok {
		e.run.Counter.Add(sim.CatNear, paid) // lost outbound value
		e.run.TraceLoss(s, v, paid)
		return
	}
	avg := (e.x[s] + e.x[v]) / 2
	e.run.Tracker.Set(s, avg)
	e.run.Tracker.Set(v, avg)
	// paid on success is the transport layer's extra airtime
	// (retransmissions, duplicates); zero without delay/arq.
	e.run.Counter.Add(sim.CatNear, cost+paid)
	e.res.NearExchanges++
	e.run.Trace(trace.Event{Kind: trace.KindNear, Square: int(e.h.NodeLeaf[s]), NodeA: s, NodeB: v, Hops: cost + paid})
}
