package core

import (
	"math"
	"reflect"
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// coreStateConfigs is the fault/recovery matrix the pooled-vs-fresh
// suite runs both hierarchy engines through.
var coreStateConfigs = []struct {
	name    string
	faults  string
	recover bool
}{
	{name: "perfect"},
	{name: "bernoulli", faults: "bernoulli:0.15"},
	{name: "gilbert-elliott", faults: "ge:0.05/0.2/0.01/0.6"},
	{name: "churn", faults: "churn:60000/20000"},
	{name: "churn-recover", faults: "churn:60000/20000", recover: true},
	{name: "repchurn-recover", faults: "repchurn:60000/60000", recover: true},
	{name: "jam", faults: "jam:0.5/0.5/0.25/0.9"},
}

func coreSpec(t *testing.T, text string) channel.Spec {
	t.Helper()
	spec, err := channel.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestPooledStateBitIdenticalRecursive runs the recursive engine through
// the fault matrix with fresh vs pooled state and requires bit-identical
// results — including re-election counts under recovery, which exercise
// the RepView against the former per-run Clone.
func TestPooledStateBitIdenticalRecursive(t *testing.T) {
	f := newFixture(t, 400, 2.0, 930, hier.Config{})
	pooled := NewRunState()
	for _, cfg := range coreStateConfigs {
		opt := RecursiveOptions{
			Eps:     5e-2,
			Faults:  coreSpec(t, cfg.faults),
			Recover: cfg.recover,
		}
		x1 := randomValues(f.g.N(), 931)
		fresh, err := RunRecursive(f.g, f.h, x1, opt, rng.New(932))
		if err != nil {
			t.Fatalf("%s: fresh: %v", cfg.name, err)
		}
		optPooled := opt
		optPooled.State = pooled
		x2 := randomValues(f.g.N(), 931)
		got, err := RunRecursive(f.g, f.h, x2, optPooled, rng.New(932))
		if err != nil {
			t.Fatalf("%s: pooled: %v", cfg.name, err)
		}
		if fresh.Transmissions != got.Transmissions || fresh.FinalErr != got.FinalErr ||
			fresh.FarExchanges != got.FarExchanges || fresh.Reelections != got.Reelections ||
			fresh.RouteFailures != got.RouteFailures || fresh.LeafStalls != got.LeafStalls ||
			fresh.IncompleteSquares != got.IncompleteSquares {
			t.Fatalf("%s: pooled recursive run diverged:\nfresh:  %+v\npooled: %+v", cfg.name, fresh, got)
		}
		if !reflect.DeepEqual(fresh.TransmissionsByCategory, got.TransmissionsByCategory) {
			t.Fatalf("%s: breakdown diverged", cfg.name)
		}
		if !reflect.DeepEqual(fresh.Curve.Samples, got.Curve.Samples) {
			t.Fatalf("%s: curve diverged", cfg.name)
		}
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("%s: value vector diverged at %d", cfg.name, i)
			}
		}
		// The shared hierarchy build must stay pristine even after
		// recovery runs (the RepView contract).
		if err := f.h.Validate(); err != nil {
			t.Fatalf("%s: shared hierarchy mutated: %v", cfg.name, err)
		}
	}
}

// TestPooledStateBitIdenticalAsync is the async-engine counterpart.
func TestPooledStateBitIdenticalAsync(t *testing.T) {
	f := newFixture(t, 600, 2.0, 940, hier.Config{})
	pooled := NewRunState()
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000}
	for _, cfg := range coreStateConfigs {
		opt := AsyncOptions{
			Eps:     1e-2,
			Faults:  coreSpec(t, cfg.faults),
			Recover: cfg.recover,
			Stop:    stop,
		}
		x1 := randomValues(f.g.N(), 941)
		fresh, err := RunAsync(f.g, f.h, x1, opt, rng.New(942))
		if err != nil {
			t.Fatalf("%s: fresh: %v", cfg.name, err)
		}
		optPooled := opt
		optPooled.State = pooled
		x2 := randomValues(f.g.N(), 941)
		got, err := RunAsync(f.g, f.h, x2, optPooled, rng.New(942))
		if err != nil {
			t.Fatalf("%s: pooled: %v", cfg.name, err)
		}
		if fresh.Transmissions != got.Transmissions || fresh.FinalErr != got.FinalErr ||
			fresh.Ticks != got.Ticks || fresh.FarExchanges != got.FarExchanges ||
			fresh.NearExchanges != got.NearExchanges || fresh.Activations != got.Activations ||
			fresh.Deactivations != got.Deactivations || fresh.Reelections != got.Reelections ||
			fresh.Resyncs != got.Resyncs || fresh.RouteFailures != got.RouteFailures {
			t.Fatalf("%s: pooled async run diverged:\nfresh:  %+v\npooled: %+v", cfg.name, fresh, got)
		}
		if !reflect.DeepEqual(fresh.TransmissionsByCategory, got.TransmissionsByCategory) {
			t.Fatalf("%s: breakdown diverged", cfg.name)
		}
		if !reflect.DeepEqual(fresh.Curve.Samples, got.Curve.Samples) {
			t.Fatalf("%s: curve diverged", cfg.name)
		}
		if !reflect.DeepEqual(fresh.BudgetByDepth, got.BudgetByDepth) {
			t.Fatalf("%s: budgets diverged", cfg.name)
		}
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("%s: value vector diverged at %d", cfg.name, i)
			}
		}
		if err := f.h.Validate(); err != nil {
			t.Fatalf("%s: shared hierarchy mutated: %v", cfg.name, err)
		}
	}
}

// TestPooledStateInterleavedEngines alternates recursive and async runs
// (and two different networks) on ONE state — the sweep-worker pattern —
// and requires every run to match its fresh twin.
func TestPooledStateInterleavedEngines(t *testing.T) {
	fA := newFixture(t, 500, 2.0, 950, hier.Config{})
	fB := newFixture(t, 700, 1.8, 951, hier.Config{})
	pooled := NewRunState()
	stop := sim.StopRule{TargetErr: 1e-2, MaxTicks: 3_000_000}
	for round, f := range []fixture{fA, fB, fA, fB} {
		x1 := randomValues(f.g.N(), uint64(960+round))
		x2 := randomValues(f.g.N(), uint64(960+round))
		freshR, err := RunRecursive(f.g, f.h, x1, RecursiveOptions{Eps: 1e-2}, rng.New(970))
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := RunRecursive(f.g, f.h, x2, RecursiveOptions{Eps: 1e-2, State: pooled}, rng.New(970))
		if err != nil {
			t.Fatal(err)
		}
		if freshR.Transmissions != gotR.Transmissions || freshR.FinalErr != gotR.FinalErr {
			t.Fatalf("round %d: recursive diverged on pooled state", round)
		}
		x1 = randomValues(f.g.N(), uint64(980+round))
		x2 = randomValues(f.g.N(), uint64(980+round))
		freshA, err := RunAsync(f.g, f.h, x1, AsyncOptions{Eps: 1e-2, Stop: stop}, rng.New(971))
		if err != nil {
			t.Fatal(err)
		}
		gotA, err := RunAsync(f.g, f.h, x2, AsyncOptions{Eps: 1e-2, Stop: stop, State: pooled}, rng.New(971))
		if err != nil {
			t.Fatal(err)
		}
		if freshA.Transmissions != gotA.Transmissions || freshA.FinalErr != gotA.FinalErr || freshA.Ticks != gotA.Ticks {
			t.Fatalf("round %d: async diverged on pooled state", round)
		}
	}
}

// TestAsyncSteadyStateTicksAllocFree drives the async engine's tick body
// after a completed warm run and requires zero allocations per tick.
func TestAsyncSteadyStateTicksAllocFree(t *testing.T) {
	f := newFixture(t, 512, 1.8, 990, hier.Config{})
	st := NewRunState()
	x := randomValues(f.g.N(), 991)
	if _, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Eps:         1e-2,
		RecordEvery: math.MaxUint64 >> 1,
		Stop:        sim.StopRule{MaxTicks: 200_000},
		State:       st,
	}, rng.New(992)); err != nil {
		t.Fatal(err)
	}
	// The engine state is still live inside st; keep ticking it. Routes
	// and floods are warm in the run's cache, so steady-state ticks must
	// not allocate.
	e := &st.async
	for i := 0; i < 2000; i++ {
		e.step()
	}
	if avg := testing.AllocsPerRun(500, e.step); avg != 0 {
		t.Errorf("async: %v allocs per steady-state tick, want 0", avg)
	}
}

// TestRecursiveFarExchangeAllocFree drives the recursive engine's
// steady-state work unit — a far exchange between sibling squares, route
// round trip included — after a warm run and requires zero allocations.
func TestRecursiveFarExchangeAllocFree(t *testing.T) {
	f := newFixture(t, 512, 1.8, 995, hier.Config{})
	st := NewRunState()
	x := randomValues(f.g.N(), 996)
	if _, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:         1e-2,
		RecordEvery: 1 << 40,
		State:       st,
	}, rng.New(997)); err != nil {
		t.Fatal(err)
	}
	e := &st.rec
	root := f.h.Root()
	m, _ := e.kidCount(root)
	if m < 2 {
		t.Skip("root has fewer than two populated children")
	}
	a, b := e.kid(root, 0), e.kid(root, 1)
	warm := func() { e.farExchange(a, b) }
	for i := 0; i < 100; i++ {
		warm()
	}
	if avg := testing.AllocsPerRun(500, warm); avg != 0 {
		t.Errorf("recursive far exchange: %v allocs, want 0", avg)
	}
	// The leaf-averaging path (Near exchanges over the flattened leaf
	// adjacency) must be allocation-free too.
	var leaf *hier.Square
	for _, sq := range f.h.Leaves() {
		if len(sq.Members) > 4 {
			leaf = sq
			break
		}
	}
	if leaf == nil {
		t.Skip("no populated leaf")
	}
	near := func() { e.leafAverage(leaf, 1e-12) }
	near()
	if avg := testing.AllocsPerRun(20, near); avg != 0 {
		t.Errorf("recursive leaf averaging: %v allocs, want 0", avg)
	}
}
