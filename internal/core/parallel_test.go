package core

import (
	"math"
	"reflect"
	"testing"

	"geogossip/internal/hier"
	"geogossip/internal/par"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// healWorkerCounts is the DESIGN.md §9 invariance set for the sharded
// recovery sweep.
func healWorkerCounts() []int {
	counts := []int{1, 2, par.NumCPU()}
	out := counts[:0]
	for _, w := range counts {
		dup := false
		for _, seen := range out {
			dup = dup || seen == w
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// TestAsyncParallelHealWorkerInvariance runs the async engine with a
// reviving churn attack and the sharded recovery sweep at several worker
// counts: every run must be bit-identical (full result and final values)
// because the sweep snapshots liveness and donor state before fan-out.
func TestAsyncParallelHealWorkerInvariance(t *testing.T) {
	f := newFixture(t, 200, 2.0, 670, hier.Config{})
	g, h := f.g, f.h
	var refX []float64
	var refRes *AsyncResult
	for _, w := range healWorkerCounts() {
		x := smoothValues(g)
		res, err := RunAsync(g, h, x, AsyncOptions{
			Eps:      1e-2,
			Faults:   repChurn(t, "repchurn:60000/60000"),
			Recover:  true,
			Parallel: sim.Parallel{Shards: 8, Workers: w},
			Stop:     sim.StopRule{TargetErr: 1e-2, MaxTicks: 2_000_000},
		}, rng.New(671))
		if err != nil {
			t.Fatal(err)
		}
		if refX == nil {
			if res.Resyncs == 0 {
				t.Fatal("sharded recovery sweep performed no resyncs under reviving churn")
			}
			if !res.Converged {
				t.Fatalf("parallel-heal run did not converge: err=%v", res.FinalErr)
			}
			refX = append([]float64(nil), x...)
			refRes = res
			continue
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(refX[i]) {
				t.Fatalf("workers=%d: node %d value differs from workers=1 run", w, i)
			}
		}
		if !reflect.DeepEqual(refRes, res) {
			t.Fatalf("workers=%d: result differs from workers=1 run:\n%+v\nvs\n%+v", w, refRes, res)
		}
	}
}

// TestAsyncParallelPooledStateBitIdentity reuses one RunState across
// parallel-heal runs and demands bit-identity with a fresh-state run.
func TestAsyncParallelPooledStateBitIdentity(t *testing.T) {
	f := newFixture(t, 150, 2.0, 672, hier.Config{})
	g, h := f.g, f.h
	run := func(st *RunState) ([]float64, *AsyncResult) {
		x := smoothValues(g)
		res, err := RunAsync(g, h, x, AsyncOptions{
			Eps:      1e-2,
			Faults:   repChurn(t, "repchurn:60000/60000"),
			Recover:  true,
			Parallel: sim.Parallel{Shards: 4, Workers: 2},
			State:    st,
			Stop:     sim.StopRule{TargetErr: 1e-2, MaxTicks: 2_000_000},
		}, rng.New(673))
		if err != nil {
			t.Fatal(err)
		}
		return x, res
	}
	freshX, freshRes := run(nil)
	st := NewRunState()
	for rep := 0; rep < 2; rep++ {
		x, res := run(st)
		if !reflect.DeepEqual(freshX, x) || !reflect.DeepEqual(freshRes, res) {
			t.Fatalf("pooled parallel-heal run %d diverged from fresh-state run", rep)
		}
	}
}

// TestAsyncParallelRequiresRecover pins the gate: Parallel shards the
// recovery sweep, so without Recover there is nothing to shard.
func TestAsyncParallelRequiresRecover(t *testing.T) {
	f := newFixture(t, 64, 2.5, 674, hier.Config{})
	x := smoothValues(f.g)
	_, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Eps:      1e-2,
		Parallel: sim.Parallel{Workers: 2},
	}, rng.New(675))
	if err == nil {
		t.Fatal("async accepted Parallel without Recover")
	}
}
