package core

import (
	"math"
	"testing"

	"geogossip/internal/hier"
	"geogossip/internal/rng"
)

// The instance below (found by the root package's randomized property
// test) has a leaf whose occupancy sits far below its Expected count, so
// the affine coefficient Beta·E#/# leaves the stability band and oracle
// rounds amplify deviation geometrically. The divergence guard must stop
// the blow-up: values stay at sane magnitudes, the sum invariant survives
// in floating point, and the run reports its incomplete squares honestly.
func TestRecursiveDivergenceGuard(t *testing.T) {
	const netSeed = uint64(0x9a88b24e8c401e1a % 1000)
	const runSeed = uint64(0x821ab3dff75dac02)
	f := newFixture(t, 128, 2.2, netSeed, hier.Config{})
	base := make([]float64, f.g.N())
	for i := range base {
		base[i] = float64(i%7) - 3
	}
	for _, loss := range []float64{0, 0.05, 0.3} {
		x := append([]float64(nil), base...)
		mean := meanOf(x)
		res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
			Eps:      5e-2,
			LossRate: loss,
		}, rng.New(runSeed))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(res.FinalErr) || res.FinalErr > 1e3 {
			t.Fatalf("loss=%v: guard failed to stop divergence, final err %v", loss, res.FinalErr)
		}
		if drift := math.Abs(meanOf(x) - mean); drift > 1e-8*(1+math.Abs(mean)) {
			t.Fatalf("loss=%v: mean drifted by %v", loss, drift)
		}
		if !res.Converged && res.IncompleteSquares == 0 {
			t.Fatalf("loss=%v: non-converged run reports no incomplete squares", loss)
		}
	}
}

// An extreme Beta (alpha far above 1/2) must still be reported as a dirty
// run — the guard stops the blow-up but does not mask the instability.
func TestRecursiveExtremeBetaStaysDirty(t *testing.T) {
	f := newFixture(t, 512, 1.8, 420, hier.Config{})
	x := randomValues(f.g.N(), 421)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:  1e-3,
		Beta: 1.2,
	}, rng.New(422))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && res.IncompleteSquares == 0 {
		t.Fatalf("beta=1.2 converged cleanly: %v", res.Result)
	}
	if math.IsNaN(res.FinalErr) || res.FinalErr > 1e6 {
		t.Fatalf("beta=1.2 blew up past the guard: final err %v", res.FinalErr)
	}
}
