package core

import (
	"math"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

type fixture struct {
	g *graph.Graph
	h *hier.Hierarchy
}

func newFixture(t *testing.T, n int, c float64, seed uint64, hcfg hier.Config) fixture {
	t.Helper()
	g, err := graph.Generate(n, c, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Skipf("seed %d: disconnected instance", seed)
	}
	h, err := hier.Build(g.Points(), hcfg)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{g: g, h: h}
}

func randomValues(n int, seed uint64) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func meanOf(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func relErr(x []float64, x0 []float64) float64 {
	mean := meanOf(x0)
	var dev, dev0 float64
	for i := range x {
		d := x[i] - mean
		dev += d * d
		d0 := x0[i] - mean
		dev0 += d0 * d0
	}
	return math.Sqrt(dev / dev0)
}

func TestRecursiveConverges(t *testing.T) {
	f := newFixture(t, 1024, 1.8, 130, hier.Config{})
	x := randomValues(f.g.N(), 131)
	x0 := append([]float64(nil), x...)
	mean := meanOf(x)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-3}, rng.New(132))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %v (stalls=%d incomplete=%d)", res.Result, res.LeafStalls, res.IncompleteSquares)
	}
	if got := relErr(x, x0); got > 1e-3 {
		t.Fatalf("independent error check: %v > 1e-3", got)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted: %v -> %v", mean, meanOf(x))
	}
	if res.FarExchanges == 0 {
		t.Fatal("no far exchanges on a multi-level instance")
	}
	if res.TransmissionsByCategory["near"] == 0 || res.TransmissionsByCategory["far"] == 0 {
		t.Fatalf("transmissions missing a category: %v", res.TransmissionsByCategory)
	}
	if err := res.Curve.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveDeterministic(t *testing.T) {
	f := newFixture(t, 512, 1.8, 133, hier.Config{})
	run := func() *Result {
		x := randomValues(f.g.N(), 134)
		res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-3}, rng.New(135))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transmissions != b.Transmissions || a.FarExchanges != b.FarExchanges || a.FinalErr != b.FinalErr {
		t.Fatalf("nondeterministic: %v vs %v", a.Result, b.Result)
	}
}

func TestRecursiveSumPreservedExactlyAtEveryScale(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		f := newFixture(t, n, 2.0, uint64(140+n), hier.Config{})
		x := randomValues(f.g.N(), uint64(141+n))
		sumBefore := 0.0
		for _, v := range x {
			sumBefore += v
		}
		if _, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-2}, rng.New(142)); err != nil {
			t.Fatal(err)
		}
		sumAfter := 0.0
		for _, v := range x {
			sumAfter += v
		}
		if math.Abs(sumAfter-sumBefore) > 1e-7*(1+math.Abs(sumBefore)) {
			t.Fatalf("n=%d: sum drifted %v -> %v", n, sumBefore, sumAfter)
		}
	}
}

func TestRecursiveSingleLeafDegeneratesToNearGossip(t *testing.T) {
	// Small n: hierarchy is a single leaf; the algorithm reduces to local
	// gossip; no far exchanges.
	f := newFixture(t, 30, 2.5, 143, hier.Config{})
	if !f.h.Root().IsLeaf() {
		t.Skip("hierarchy unexpectedly deep")
	}
	x := randomValues(f.g.N(), 144)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-3}, rng.New(145))
	if err != nil {
		t.Fatal(err)
	}
	if res.FarExchanges != 0 {
		t.Fatalf("far exchanges on single leaf: %d", res.FarExchanges)
	}
	if !res.Converged {
		t.Fatalf("single-leaf run did not converge: %v", res.Result)
	}
}

func TestRecursiveValidation(t *testing.T) {
	f := newFixture(t, 64, 2.0, 146, hier.Config{})
	if _, err := RunRecursive(f.g, f.h, make([]float64, 3), RecursiveOptions{}, rng.New(1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	// Hierarchy/graph mismatch.
	other := newFixture(t, 32, 2.0, 147, hier.Config{})
	if _, err := RunRecursive(f.g, other.h, make([]float64, f.g.N()), RecursiveOptions{}, rng.New(1)); err == nil {
		t.Fatal("hierarchy size mismatch accepted")
	}
}

func TestRecursiveEmptyGraph(t *testing.T) {
	g, err := graph.Build(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.Build(nil, hier.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRecursive(g, h, nil, RecursiveOptions{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Transmissions != 0 {
		t.Fatalf("empty run: %v", res.Result)
	}
}

func TestRecursiveConsensusStartIsFree(t *testing.T) {
	f := newFixture(t, 256, 2.0, 148, hier.Config{})
	x := make([]float64, f.g.N())
	for i := range x {
		x[i] = 3.7
	}
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-4}, rng.New(149))
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != 0 || !res.Converged {
		t.Fatalf("consensus start cost %d transmissions", res.Transmissions)
	}
}

func TestRecursiveFixedBudgetMode(t *testing.T) {
	f := newFixture(t, 512, 1.8, 150, hier.Config{})
	x := randomValues(f.g.N(), 151)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:  1e-2,
		Stop: StopFixedBudget,
	}, rng.New(152))
	if err != nil {
		t.Fatal(err)
	}
	// Fixed budgets are sized to reach the target w.h.p.
	if res.FinalErr > 1e-2 {
		t.Fatalf("fixed-budget run error %v > 1e-2", res.FinalErr)
	}
}

func TestRecursiveLeafFastMode(t *testing.T) {
	f := newFixture(t, 1024, 1.8, 153, hier.Config{})
	x := randomValues(f.g.N(), 154)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:  1e-3,
		Leaf: LeafFast,
	}, rng.New(155))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("leaf-fast run did not converge: %v", res.Result)
	}
	if res.LeafFastCalls == 0 {
		t.Fatal("LeafFast mode did not record fast calls")
	}
	if res.TransmissionsByCategory["near"] == 0 {
		t.Fatal("LeafFast charged no near transmissions")
	}
}

func TestRecursiveConvexAblationIsSlower(t *testing.T) {
	// Convex rep-level updates move only O(1/#square) of each square's
	// mass per exchange: far more rounds for the same target.
	f := newFixture(t, 512, 1.8, 156, hier.Config{})
	xa := randomValues(f.g.N(), 157)
	xc := append([]float64(nil), xa...)
	affine, err := RunRecursive(f.g, f.h, xa, RecursiveOptions{Eps: 1e-2}, rng.New(158))
	if err != nil {
		t.Fatal(err)
	}
	convex, err := RunRecursive(f.g, f.h, xc, RecursiveOptions{Eps: 1e-2, Convex: true}, rng.New(158))
	if err != nil {
		t.Fatal(err)
	}
	if affine.FinalErr > 1e-2 {
		t.Fatalf("affine run missed target: %v", affine.Result)
	}
	if convex.FarExchanges <= affine.FarExchanges {
		t.Fatalf("convex (%d rounds) not slower than affine (%d rounds)",
			convex.FarExchanges, affine.FarExchanges)
	}
}

func TestRecursiveBetaOutsideBandDegrades(t *testing.T) {
	// Beta far above the stability band makes square-sum updates
	// non-contracting: the oracle safety cap trips or error stays high.
	f := newFixture(t, 512, 1.8, 159, hier.Config{})
	x := randomValues(f.g.N(), 160)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:  1e-3,
		Beta: 1.3, // α ≈ 1.3 per exchange: expansive
	}, rng.New(161))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && res.IncompleteSquares == 0 {
		t.Fatalf("beta=1.3 run converged cleanly: %v", res.Result)
	}
}

func TestRecursiveFlatHierarchy(t *testing.T) {
	// MaxDepth 1 gives a single partition level: the flat ablation.
	f := newFixture(t, 1024, 1.8, 162, hier.Config{MaxDepth: 1})
	if f.h.Ell != 2 {
		t.Fatalf("expected flat hierarchy, ell = %d", f.h.Ell)
	}
	x := randomValues(f.g.N(), 163)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-3}, rng.New(164))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("flat run did not converge: %v", res.Result)
	}
	if res.Algorithm != "affine-flat" {
		t.Fatalf("algorithm name = %q", res.Algorithm)
	}
}

func TestAsyncConverges(t *testing.T) {
	f := newFixture(t, 512, 1.8, 165, hier.Config{})
	x := randomValues(f.g.N(), 166)
	mean := meanOf(x)
	res, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Eps:          1e-2,
		RoundsFactor: 2,
		Stop:         sim.StopRule{TargetErr: 1e-2, MaxTicks: 30_000_000},
	}, rng.New(167))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async did not converge: %v (far=%d near=%d act=%d)",
			res.Result, res.FarExchanges, res.NearExchanges, res.Activations)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted: %v -> %v", mean, meanOf(x))
	}
	if res.Activations == 0 || res.NearExchanges == 0 {
		t.Fatalf("protocol did not run: %+v", res)
	}
	if res.TransmissionsByCategory["flood"] == 0 {
		t.Fatal("activation flooding not charged")
	}
}

func TestAsyncDeterministic(t *testing.T) {
	f := newFixture(t, 256, 2.0, 168, hier.Config{})
	run := func() *AsyncResult {
		x := randomValues(f.g.N(), 169)
		res, err := RunAsync(f.g, f.h, x, AsyncOptions{
			Stop: sim.StopRule{TargetErr: 5e-2, MaxTicks: 10_000_000},
		}, rng.New(170))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transmissions != b.Transmissions || a.Ticks != b.Ticks || a.FarExchanges != b.FarExchanges {
		t.Fatal("async run not deterministic")
	}
}

func TestAsyncBudgetsDecreaseWithDepth(t *testing.T) {
	f := newFixture(t, 2048, 1.6, 171, hier.Config{})
	if f.h.Ell < 2 {
		t.Skip("single-level hierarchy")
	}
	x := randomValues(f.g.N(), 172)
	res, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Stop: sim.StopRule{MaxTicks: 100_000}, // structure check only
	}, rng.New(173))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BudgetByDepth) != f.h.Ell {
		t.Fatalf("budget depths %d, ell %d", len(res.BudgetByDepth), f.h.Ell)
	}
	for r := 1; r < len(res.BudgetByDepth); r++ {
		if res.BudgetByDepth[r-1] <= res.BudgetByDepth[r] {
			t.Fatalf("budgets not decreasing with depth: %v", res.BudgetByDepth)
		}
	}
}

func TestAsyncHigherThrottleFewerOverlaps(t *testing.T) {
	f := newFixture(t, 512, 1.8, 174, hier.Config{})
	overlapRate := func(throttle float64) float64 {
		x := randomValues(f.g.N(), 175)
		res, err := RunAsync(f.g, f.h, x, AsyncOptions{
			Throttle: throttle,
			Stop:     sim.StopRule{MaxTicks: 3_000_000},
		}, rng.New(176))
		if err != nil {
			t.Fatal(err)
		}
		if res.FarExchanges == 0 {
			t.Fatal("no far exchanges")
		}
		return float64(res.OverlapFars) / float64(res.FarExchanges)
	}
	low := overlapRate(1.5)
	high := overlapRate(16)
	if high >= low {
		t.Fatalf("throttle 16 overlap rate %v not below throttle 1.5 rate %v", high, low)
	}
}

func TestAsyncValidation(t *testing.T) {
	f := newFixture(t, 64, 2.0, 177, hier.Config{})
	if _, err := RunAsync(f.g, f.h, make([]float64, 1), AsyncOptions{}, rng.New(1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestAsyncEmptyGraph(t *testing.T) {
	g, err := graph.Build(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.Build(nil, hier.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAsync(g, h, nil, AsyncOptions{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("empty async run: %v", res.Result)
	}
}

func TestAsyncSingleLeaf(t *testing.T) {
	// A single-leaf hierarchy: the root rep floods its leaf on and the
	// protocol degenerates to local gossip.
	f := newFixture(t, 30, 2.5, 178, hier.Config{})
	if !f.h.Root().IsLeaf() {
		t.Skip("hierarchy unexpectedly deep")
	}
	x := randomValues(f.g.N(), 179)
	res, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Stop: sim.StopRule{TargetErr: 1e-2, MaxTicks: 5_000_000},
	}, rng.New(180))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("single-leaf async did not converge: %v", res.Result)
	}
	if res.FarExchanges != 0 {
		t.Fatalf("far exchanges with no siblings: %d", res.FarExchanges)
	}
}

func TestBuildLeafAdjRestrictsToLeaf(t *testing.T) {
	f := newFixture(t, 512, 1.8, 181, hier.Config{})
	st := NewRunState()
	st.bind(f.g, f.h, routing.RecoveryBFS, nil)
	for i := int32(0); int(i) < f.g.N(); i++ {
		for _, v := range st.leafNbrs(i) {
			if f.h.NodeLeaf[v] != f.h.NodeLeaf[i] {
				t.Fatalf("leaf adjacency crosses leaves: %d-%d", i, v)
			}
			if !f.g.HasEdge(i, v) {
				t.Fatalf("leaf adjacency lists non-edge: %d-%d", i, v)
			}
		}
	}
}
