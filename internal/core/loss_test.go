package core

import (
	"math"
	"testing"

	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

func TestRecursiveConvergesUnderLoss(t *testing.T) {
	f := newFixture(t, 512, 1.8, 420, hier.Config{})
	x := randomValues(f.g.N(), 421)
	mean := meanOf(x)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:      1e-2,
		LossRate: 0.2,
	}, rng.New(422))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("recursive with 20%% loss did not converge: %v (stalls=%d)", res.Result, res.LeafStalls)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted under loss: %v -> %v", mean, meanOf(x))
	}
	if res.RouteFailures == 0 {
		t.Fatal("20% loss produced no recorded route failures")
	}
}

func TestRecursiveLossInflatesCost(t *testing.T) {
	f := newFixture(t, 512, 1.8, 423, hier.Config{})
	run := func(loss float64) uint64 {
		x := randomValues(f.g.N(), 424)
		res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
			Eps:      1e-2,
			LossRate: loss,
		}, rng.New(425))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("loss %v run did not converge", loss)
		}
		return res.Transmissions
	}
	clean := run(0)
	lossy := run(0.3)
	if lossy <= clean {
		t.Fatalf("30%% loss cost %d transmissions, clean run %d", lossy, clean)
	}
}

func TestAsyncConvergesUnderLoss(t *testing.T) {
	f := newFixture(t, 256, 2.0, 426, hier.Config{})
	x := randomValues(f.g.N(), 427)
	mean := meanOf(x)
	res, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Eps:      2e-2,
		LossRate: 0.2,
		Stop:     sim.StopRule{TargetErr: 2e-2, MaxTicks: 40_000_000},
	}, rng.New(428))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async with 20%% loss did not converge: %v", res.Result)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted under loss: %v -> %v", mean, meanOf(x))
	}
}
