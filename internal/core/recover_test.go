package core

import (
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

// smoothValues is the worst-case low-frequency field over the node
// positions.
func smoothValues(g *graph.Graph) []float64 {
	x := make([]float64, g.N())
	for i := range x {
		p := g.Point(int32(i))
		x[i] = 10*p.X + p.Y
	}
	return x
}

// repChurn parses a rep-targeted churn spec.
func repChurn(t *testing.T, text string) channel.Spec {
	t.Helper()
	spec, err := channel.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRecursiveReelectionUnderTargetedChurn(t *testing.T) {
	f := newFixture(t, 200, 2.0, 50, hier.Config{})
	g, h := f.g, f.h
	run := func(recover bool) *Result {
		x := smoothValues(g)
		res, err := RunRecursive(g, h, x, RecursiveOptions{
			Eps:     1e-2,
			Faults:  repChurn(t, "repchurn:20000/20000"),
			Recover: recover,
		}, rng.New(51))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rec := run(true)
	if rec.Reelections == 0 {
		t.Fatal("no re-elections despite rep-targeted churn")
	}
	if !rec.Converged {
		t.Fatalf("recovery run did not converge: err=%v", rec.FinalErr)
	}
	if rec.Result.Reelections != rec.Reelections {
		t.Fatal("re-election count not mirrored into the shared result")
	}
	if base := run(false); base.Reelections != 0 {
		t.Fatal("re-elections fired without Recover")
	}
}

func TestRecursiveRecoveryReducesCrashStopDamage(t *testing.T) {
	// Crash-stop churn against representatives: dead reps freeze their
	// values, so neither run can fully converge — but re-election keeps
	// the hierarchy exchanging and must land far closer to consensus.
	f := newFixture(t, 128, 2.0, 52, hier.Config{})
	g, h := f.g, f.h
	run := func(recover bool) *Result {
		x := smoothValues(g)
		res, err := RunRecursive(g, h, x, RecursiveOptions{
			Eps:     1e-2,
			Faults:  repChurn(t, "repchurn:20000/0"),
			Recover: recover,
		}, rng.New(53))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rec, base := run(true), run(false)
	if rec.Reelections == 0 {
		t.Fatal("crash-stop run performed no re-elections")
	}
	if rec.FinalErr >= base.FinalErr {
		t.Fatalf("recovery err %v not below unrecovered err %v", rec.FinalErr, base.FinalErr)
	}
}

func TestRecursiveRecoverDoesNotMutateSharedHierarchy(t *testing.T) {
	f := newFixture(t, 200, 2.0, 54, hier.Config{})
	g, h := f.g, f.h
	before := make([]int32, len(h.Squares))
	for i, sq := range h.Squares {
		before[i] = sq.Rep
	}
	x := smoothValues(g)
	if _, err := RunRecursive(g, h, x, RecursiveOptions{
		Eps:     1e-2,
		Faults:  repChurn(t, "repchurn:20000/20000"),
		Recover: true,
	}, rng.New(55)); err != nil {
		t.Fatal(err)
	}
	for i, sq := range h.Squares {
		if sq.Rep != before[i] {
			t.Fatalf("engine mutated shared hierarchy: square %d rep %d -> %d", i, before[i], sq.Rep)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("shared hierarchy invalid after recovery run: %v", err)
	}
}

func TestAsyncRecoverySurvivesTargetedChurn(t *testing.T) {
	f := newFixture(t, 200, 2.0, 56, hier.Config{})
	g, h := f.g, f.h
	run := func(recover bool) *AsyncResult {
		x := smoothValues(g)
		res, err := RunAsync(g, h, x, AsyncOptions{
			Eps:     1e-2,
			Faults:  repChurn(t, "repchurn:60000/60000"),
			Recover: recover,
			Stop:    sim.StopRule{TargetErr: 1e-2, MaxTicks: 2_000_000},
		}, rng.New(57))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rec := run(true)
	if rec.Reelections == 0 {
		t.Fatal("async recovery performed no re-elections")
	}
	if !rec.Converged {
		t.Fatalf("async recovery run did not converge: err=%v", rec.FinalErr)
	}
	base := run(false)
	if rec.FinalErr >= base.FinalErr {
		t.Fatalf("recovery err %v not below unrecovered err %v", rec.FinalErr, base.FinalErr)
	}
}

func TestRepTargetedSpecRejectedWithoutHierarchyContext(t *testing.T) {
	// The recursive engine supplies Reps, so repchurn builds; a spec that
	// needs more hubs than nodes must fail cleanly.
	f := newFixture(t, 64, 2.5, 58, hier.Config{})
	g, h := f.g, f.h
	x := smoothValues(g)
	spec, err := channel.Parse("hubchurn:1000/0/100")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRecursive(g, h, x, RecursiveOptions{Eps: 1e-2, Faults: spec}, rng.New(59)); err == nil {
		t.Fatal("hub count above n accepted")
	}
}

// TestRepairBridgesFollowCrossComponentTakeover: when a re-elected
// representative lies in a different in-leaf component than its
// predecessor, the repair bridges must be re-derived — the old rep's
// component needs a bridge it never had, or it is stranded forever.
func TestRepairBridgesFollowCrossComponentTakeover(t *testing.T) {
	f := newFixture(t, 4096, 1.0, 464, hier.Config{LeafTarget: 16})
	st := NewRunState()
	st.bind(f.g, f.h, routing.RecoveryBFS, nil)
	adj := st.leafNbrs
	hops := st.repair

	// Component labels within one leaf, via BFS over leaf-restricted
	// adjacency.
	label := func(sq *hier.Square) map[int32]int32 {
		comp := make(map[int32]int32, len(sq.Members))
		next := int32(0)
		for _, m := range sq.Members {
			if _, seen := comp[m]; seen {
				continue
			}
			comp[m] = next
			queue := []int32{m}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range adj(u) {
					if _, seen := comp[v]; !seen {
						comp[v] = next
						queue = append(queue, v)
					}
				}
			}
			next++
		}
		return comp
	}

	var sq *hier.Square
	for _, s := range f.h.Leaves() {
		for _, m := range s.Members {
			if hops[m] != 0 {
				sq = s
				break
			}
		}
		if sq != nil {
			break
		}
	}
	if sq == nil {
		t.Fatal("configuration produces no multi-component leaves; adjust it")
	}

	comp := label(sq)
	repComp := comp[sq.Rep]
	var dead []int32
	for _, m := range sq.Members {
		if comp[m] == repComp {
			dead = append(dead, m)
		}
	}
	alive := func(i int32) bool {
		for _, d := range dead {
			if d == i {
				return false
			}
		}
		return true
	}
	next, changed := st.view.ReelectSquare(sq.ID, alive)
	if !changed || next < 0 {
		t.Fatalf("takeover failed (next %d, changed %v)", next, changed)
	}
	if comp[next] == repComp {
		t.Fatal("successor landed in the dead component; scenario broken")
	}

	st.repairLeafSquareInto(st.mutableRepair(), sq, st.view.Rep(sq.ID), routing.RecoveryBFS)
	hops = st.repair

	// Every component except the successor's owns exactly one bridge —
	// including the old representative's, which had none before.
	bridges := make(map[int32]int)
	for _, m := range sq.Members {
		if hops[m] != 0 {
			if comp[m] == comp[next] {
				t.Fatalf("bridge %d inside the successor's own component", m)
			}
			bridges[comp[m]]++
		}
	}
	seen := make(map[int32]bool)
	for _, m := range sq.Members {
		c := comp[m]
		if c == comp[next] || seen[c] {
			continue
		}
		seen[c] = true
		if bridges[c] != 1 {
			t.Fatalf("component %d has %d bridges, want exactly 1 (old rep comp = %d)", c, bridges[c], repComp)
		}
	}
}
