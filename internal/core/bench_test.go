package core

import (
	"math"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

func benchNetwork(b *testing.B, n int) (*graph.Graph, *hier.Hierarchy) {
	b.Helper()
	g, err := graph.Generate(n, 1.8, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return g, h
}

func benchValues(n int, seed uint64) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

// BenchmarkAsyncSteadyTick measures one warm async-engine tick (§4.2):
// clock draw, representative role steps, near exchange — routes and
// floods served by the warm routing cache. The steady-state contract is
// 0 allocs/op.
func BenchmarkAsyncSteadyTick(b *testing.B) {
	g, h := benchNetwork(b, 2048)
	st := NewRunState()
	x := benchValues(g.N(), 2)
	if _, err := RunAsync(g, h, x, AsyncOptions{
		Eps:         1e-2,
		RecordEvery: math.MaxUint64 >> 1,
		Stop:        sim.StopRule{MaxTicks: 200_000},
		State:       st,
	}, rng.New(3)); err != nil {
		b.Fatal(err)
	}
	e := &st.async
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

// BenchmarkRecursiveFarExchange measures the recursive engine's
// steady-state work unit: one long-range affine exchange between sibling
// representatives, warm route round trip included.
func BenchmarkRecursiveFarExchange(b *testing.B) {
	g, h := benchNetwork(b, 2048)
	st := NewRunState()
	x := benchValues(g.N(), 4)
	if _, err := RunRecursive(g, h, x, RecursiveOptions{
		Eps:         1e-2,
		RecordEvery: 1 << 40,
		State:       st,
	}, rng.New(5)); err != nil {
		b.Fatal(err)
	}
	e := &st.rec
	root := h.Root()
	m, _ := e.kidCount(root)
	if m < 2 {
		b.Fatal("root has fewer than two populated children")
	}
	ka, kb := e.kid(root, 0), e.kid(root, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.farExchange(ka, kb)
	}
}

// Instrumented variants: the same steady-state work units with a live
// metrics registry scope attached. BENCH_engines.json pairs these with
// the bare rows to bound the observability overhead (DESIGN.md §8:
// ≤5%, still 0 allocs/op).

func BenchmarkAsyncSteadyTickInstrumented(b *testing.B) {
	g, h := benchNetwork(b, 2048)
	st := NewRunState()
	x := benchValues(g.N(), 2)
	if _, err := RunAsync(g, h, x, AsyncOptions{
		Eps:         1e-2,
		RecordEvery: math.MaxUint64 >> 1,
		Stop:        sim.StopRule{MaxTicks: 200_000},
		State:       st,
		Obs:         obs.NewRegistry().Scope("affine-async"),
	}, rng.New(3)); err != nil {
		b.Fatal(err)
	}
	e := &st.async
	for i := 0; i < 1000; i++ {
		e.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

func BenchmarkRecursiveFarExchangeInstrumented(b *testing.B) {
	g, h := benchNetwork(b, 2048)
	st := NewRunState()
	x := benchValues(g.N(), 4)
	if _, err := RunRecursive(g, h, x, RecursiveOptions{
		Eps:         1e-2,
		RecordEvery: 1 << 40,
		State:       st,
		Obs:         obs.NewRegistry().Scope("affine-hierarchical"),
	}, rng.New(5)); err != nil {
		b.Fatal(err)
	}
	e := &st.rec
	root := h.Root()
	m, _ := e.kidCount(root)
	if m < 2 {
		b.Fatal("root has fewer than two populated children")
	}
	ka, kb := e.kid(root, 0), e.kid(root, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.farExchange(ka, kb)
	}
}
