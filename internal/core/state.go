package core

import (
	"geogossip/internal/channel"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

// RunState is the reusable per-run mutable state of the hierarchy engines
// (the round-structured recursive engine and the event-driven async
// engine): the routing core, the copy-on-write representative view, the
// flattened leaf adjacency and repair tables derived from the network,
// the channel pool, the named RNG streams, and every per-node / per-square
// scratch slice a run needs. A fresh zero RunState is valid; passing one
// through RecursiveOptions.State / AsyncOptions.State and reusing it —
// the sweep engine keeps one per worker — turns per-run setup into O(1)
// allocations per (state, network) pair: network-derived structures are
// rebuilt only when the bound (graph, hierarchy) changes, and run scratch
// is epoch- or memclr-reset.
//
// Reuse cannot change results: a pooled run is draw- and result-identical
// to a fresh one (reseeded streams, RepView bit-equivalent to the former
// per-run hierarchy Clone, routing pure in the graph); the bit-identity
// tests assert it engine by engine, fault model by fault model.
//
// A RunState serves one run at a time (single-goroutine, like the
// engines). Results returned from pooled runs are safe to retain:
// everything that escapes into a Result is snapshotted at run end.
type RunState struct {
	// Network binding: the derived structures below are pure functions of
	// (g, h, repairRec) and are rebuilt only when the binding changes.
	g         *graph.Graph
	h         *hier.Hierarchy
	repairRec routing.Recovery

	// Flattened leaf adjacency: node i's graph neighbours inside its own
	// leaf square are leafIDs[leafOff[i]:leafOff[i+1]] (ascending, the
	// candidates for Near exchanges).
	leafOff []int32
	leafIDs []int32

	// repairBase is the leaf-repair hop table relative to the base
	// representatives (see leafRepair); repair is the active table,
	// aliasing repairBase until a re-election copies it into repairBuf
	// (copy-on-write, so fault-free runs never touch it).
	repairBase  []int32
	repair      []int32
	repairBuf   []int32
	repairDirty bool
	// Re-election / repair-rebuild scratch, reused across elections.
	compScratch  []int32
	queueScratch []int32
	bridged      []bool
	changedBuf   []int

	// view is the copy-on-write representative overlay engines read and
	// re-elect through (replaces the former per-run hierarchy Clone).
	view hier.RepView

	router routing.Router
	// privRoutes is the state-owned route/flood cache used when the run
	// supplies no shared one, kept per bound graph.
	privRoutes *routing.Cache
	ch         channel.Pool
	// tline is the transport event clock (DESIGN.md §12), reset per run
	// before the medium is built so delay/arq wrappers can schedule
	// completions on it. Inactive (and cost-free) without transport
	// components in the fault spec.
	tline channel.Timeline

	// Named streams, reseeded per run via StreamInto.
	pickRNG, leafRNG, lossRNG, churnRNG, protoRNG, clockRNG *rng.RNG

	// Recursive-engine section.
	rec     engine
	tracker sim.ErrTracker

	// Async-engine section.
	async     asyncEngine
	harness   sim.Harness
	localOn   []bool
	globalOn  []bool
	active    []bool
	count     []uint64
	budget    []uint64
	pFar      []float64
	epsBuf    []float64
	prevAlive []bool
	// Flattened siblings-with-rep: square sq's exchange partners are
	// sibsIDs[sibsOff[sq]:sibsOff[sq+1]]; rebuilt (allocation-free after
	// first) when a recovery sweep changes representatives.
	sibsOff []int32
	sibsIDs []int32
	// Parallel-heal scratch (see asyncEngine.healParallel): liveness and
	// local.state snapshots plus the per-node classification table.
	healAlive []bool
	healLocal []bool
	healDonor []int32
}

// NewRunState returns an empty reusable run state.
func NewRunState() *RunState { return &RunState{} }

// ChannelBuilds reports how many radio channels this state's pool has
// served in place of fresh allocations (see channel.Pool.Builds).
func (st *RunState) ChannelBuilds() uint64 {
	if st == nil {
		return 0
	}
	return st.ch.Builds()
}

// stream rebinds one named stream for a new run.
func (st *RunState) stream(slot **rng.RNG, r *rng.RNG, name string) *rng.RNG {
	*slot = r.StreamInto(*slot, name)
	return *slot
}

// bind points the state at (g, h, rec), rebuilding the network-derived
// structures only when the binding changed, and resets the per-run
// overlay state.
func (st *RunState) bind(g *graph.Graph, h *hier.Hierarchy, rec routing.Recovery, routes *routing.Cache) {
	if routes == nil {
		// Callers without a shared cache get a state-owned private one,
		// kept per bound graph: pooled runs keep their warm route/flood
		// memoization instead of starting cold every run (routing is pure
		// in the immutable graph, so reuse is invisible to results — the
		// §6 contract). Rebuilt on a graph change: a Cache is graph-bound.
		if st.privRoutes == nil || st.g != g {
			st.privRoutes = routing.NewCache()
		}
		routes = st.privRoutes
	}
	st.router.Reset(g, routes)
	rebuild := st.g != g || st.h != h || st.repairRec != rec
	st.view.Bind(h) // O(1) when h is unchanged; implies Reset
	if rebuild {
		st.g, st.h, st.repairRec = g, h, rec
		st.leafOff, st.leafIDs = buildLeafAdjFlat(g, h, st.leafOff, st.leafIDs)
		st.repairBase = sim.GrowInt32(st.repairBase, g.N())
		st.compScratch = sim.GrowInt32(st.compScratch, g.N())
		st.rebuildRepairBase(rec)
	}
	st.repair = st.repairBase
	st.repairDirty = false
}

// leafNbrs returns node i's in-leaf neighbour candidates.
func (st *RunState) leafNbrs(i int32) []int32 {
	return st.leafIDs[st.leafOff[i]:st.leafOff[i+1]]
}

// rebuildRepairBase computes the leaf-repair table relative to the base
// representatives (engine start state; see leafRepair for semantics).
func (st *RunState) rebuildRepairBase(rec routing.Recovery) {
	for _, sq := range st.h.Leaves() {
		st.repairLeafSquareInto(st.repairBase, sq, st.view.Rep(sq.ID), rec)
	}
}

// mutableRepair returns the run's writable repair table, copying the base
// on the run's first re-election (copy-on-write).
func (st *RunState) mutableRepair() []int32 {
	if !st.repairDirty {
		if cap(st.repairBuf) < len(st.repairBase) {
			st.repairBuf = make([]int32, len(st.repairBase))
		}
		st.repairBuf = st.repairBuf[:len(st.repairBase)]
		copy(st.repairBuf, st.repairBase)
		st.repair = st.repairBuf
		st.repairDirty = true
	}
	return st.repair
}

// repairLeafSquareInto (re)computes leaf sq's repair structure relative
// to representative rep into hops: members are re-labelled into in-leaf
// components, prior bridge assignments are cleared, and every component
// not containing the representative gets a fresh bridge (the component's
// smallest-index member, exchanging with the representative over a
// greedy-routed path). A takeover into a different in-leaf component
// moves the bridges, not just their route lengths. All scratch is
// state-owned and reused, so post-election rebuilds are allocation-free
// in steady state.
func (st *RunState) repairLeafSquareInto(hops []int32, sq *hier.Square, rep int32, rec routing.Recovery) {
	for _, m := range sq.Members {
		hops[m] = 0
	}
	if rep < 0 || len(sq.Members) <= 1 {
		return
	}
	// Label in-leaf components (BFS over leaf-restricted adjacency).
	comp := st.compScratch
	for _, m := range sq.Members {
		comp[m] = -1
	}
	next := int32(0)
	queue := st.queueScratch[:0]
	for _, m := range sq.Members {
		if comp[m] >= 0 {
			continue
		}
		comp[m] = next
		queue = append(queue[:0], m)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range st.leafNbrs(u) {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	st.queueScratch = queue
	if next == 1 {
		return // leaf internally connected
	}
	repComp := comp[rep]
	if cap(st.bridged) < int(next) {
		st.bridged = make([]bool, next)
	}
	bridged := st.bridged[:next]
	clear(bridged)
	for _, m := range sq.Members { // sorted: smallest index per component wins
		c := comp[m]
		if c == repComp || bridged[c] {
			continue
		}
		bridged[c] = true
		res := st.router.RouteToNode(m, rep, rec)
		if !res.Delivered {
			hops[m] = -1
			continue
		}
		hops[m] = int32(res.Hops)
	}
}

// buildLeafAdjFlat flattens the leaf-restricted adjacency into an
// offset-indexed pair (reusing the supplied buffers): node i's in-leaf
// neighbours are ids[off[i]:off[i+1]], in the graph's ascending neighbour
// order — identical content to the former per-node [][]int32 build,
// without its per-node allocations.
func buildLeafAdjFlat(g *graph.Graph, h *hier.Hierarchy, off, ids []int32) ([]int32, []int32) {
	n := g.N()
	off = sim.GrowInt32(off, n+1)
	total := int32(0)
	off[0] = 0
	for i := int32(0); int(i) < n; i++ {
		leaf := h.NodeLeaf[i]
		for _, v := range g.Neighbors(i) {
			if h.NodeLeaf[v] == leaf {
				total++
			}
		}
		off[i+1] = total
	}
	ids = sim.GrowInt32(ids, int(total))
	fill := int32(0)
	for i := int32(0); int(i) < n; i++ {
		leaf := h.NodeLeaf[i]
		for _, v := range g.Neighbors(i) {
			if h.NodeLeaf[v] == leaf {
				ids[fill] = v
				fill++
			}
		}
	}
	return off, ids
}
