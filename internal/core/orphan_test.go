package core

import (
	"testing"

	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
)

// countOrphans returns how many nodes have no graph neighbour inside
// their own leaf square.
func countOrphans(f fixture) int {
	st := NewRunState()
	st.bind(f.g, f.h, routing.RecoveryBFS, nil)
	orphans := 0
	for i := 0; i < f.g.N(); i++ {
		if len(st.leafNbrs(int32(i))) == 0 && len(f.h.Leaf(int32(i)).Members) > 1 {
			orphans++
		}
	}
	return orphans
}

func TestOrphanRoutesCoverIsolatedNodes(t *testing.T) {
	// A leaf side comparable to the radio radius makes in-leaf isolation
	// possible; every orphan must get a usable route to its
	// representative.
	f := newFixture(t, 4096, 1.0, 460, hier.Config{LeafTarget: 16})
	st := NewRunState()
	st.bind(f.g, f.h, 0, nil)
	hops := st.repair
	orphans, covered := 0, 0
	for i := 0; i < f.g.N(); i++ {
		leaf := f.h.Leaf(int32(i))
		if len(st.leafNbrs(int32(i))) > 0 || len(leaf.Members) <= 1 || leaf.Rep == int32(i) {
			continue
		}
		orphans++
		if hops[i] > 0 {
			covered++
		}
	}
	if orphans == 0 {
		t.Fatal("test configuration no longer produces orphans; adjust it")
	}
	if covered != orphans {
		t.Fatalf("%d of %d orphans have no route to their representative", orphans-covered, orphans)
	}
}

func TestRecursiveConvergesWithTinyLeaves(t *testing.T) {
	// Regression: before orphan routing, in-leaf-isolated nodes froze
	// their leaf's averaging and every enclosing square burned its full
	// round cap (multiplicatively), making runs pathologically slow and
	// non-convergent.
	f := newFixture(t, 4096, 1.0, 461, hier.Config{LeafTarget: 16})
	if countOrphans(f) == 0 {
		t.Fatal("test configuration no longer produces orphans; adjust it")
	}
	x := randomValues(f.g.N(), 462)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{Eps: 1e-2}, rng.New(463))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("tiny-leaf run did not converge: %v (leaf stalls %d, incomplete %d)",
			res.Result, res.LeafStalls, res.IncompleteSquares)
	}
	if res.LeafStalls != 0 {
		t.Fatalf("leaf stalls despite orphan routing: %d", res.LeafStalls)
	}
}
