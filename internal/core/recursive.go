// Package core implements the paper's contribution: hierarchical
// geographic gossip with non-convex affine combinations.
//
// Two engines cover the two ways the paper presents the algorithm:
//
//   - RunRecursive follows the round structure of §3 / Observation 1
//     directly: averaging a square means equalizing its child subsquares
//     recursively, then performing long-range exchanges between uniformly
//     random sibling representatives — each exchange applying the affine
//     update with coefficient (2/5)·E#[child] and triggering a recursive
//     re-averaging of both involved children. Every greedy-routing hop,
//     every local pairwise exchange is charged, so measured transmissions
//     follow the paper's H(n, r) recurrence by construction.
//
//   - RunAsync (async.go) is the faithful event-driven protocol of §4:
//     per-node Poisson clocks, local.state/global.state, counters,
//     Near/Far/Activate.square/Deactivate.square, with flooding and
//     geographic routing as the control channel.
//
// Parameter substitutions relative to the paper's proof-driven constants
// are documented in DESIGN.md §4.
package core

import (
	"fmt"
	"math"

	"geogossip/internal/channel"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/metrics"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// DefaultBeta is the paper's affine multiplier 2/5: the long-range update
// coefficient is Beta·E#[subsquare], which puts the induced square-sum
// coefficients α_i = Beta·E#/#(□_i) inside Lemma 1's (1/3, 1/2) band under
// ±10% occupancy fluctuation.
const DefaultBeta = 2.0 / 5.0

// LeafMode selects how intra-leaf averaging is performed.
type LeafMode int

const (
	// LeafSimulated runs honest nearest-neighbour gossip restricted to
	// the leaf square, charging 2 transmissions per exchange. Default.
	LeafSimulated LeafMode = iota + 1
	// LeafFast snaps the leaf to its exact mean and charges a modeled
	// exchange count (L/gap · ln(dev/target), gap from the leaf's
	// diffusion geometry). Use only for large-n scaling projections;
	// results carry a LeafFastCalls count so the substitution is visible.
	LeafFast
)

// StopMode selects the round-termination rule at internal squares.
type StopMode int

const (
	// StopOracle ends a square's rounds when its members' deviation
	// reaches the level target — the intrinsic cost of the algorithm,
	// which the paper's fixed budgets guarantee w.h.p. Default.
	StopOracle StopMode = iota + 1
	// StopFixedBudget runs exactly ceil(RoundsFactor·m·ln(m/ε_r)) rounds
	// per square, the shape of the paper's time(n, r, ε, δ) budgets.
	StopFixedBudget
)

// RecursiveOptions configures RunRecursive.
type RecursiveOptions struct {
	// Eps is the target relative ℓ₂ accuracy ε₀ at the root. Zero selects
	// 1e-4.
	Eps float64
	// EpsDecayFactor sets the per-level accuracy schedule
	// ε_{r+1} = ε_r / (EpsDecayFactor·sqrt(E#[□_r])). The affine update
	// amplifies residual intra-child error by ≈ Beta·sqrt(E#), so the
	// next level's target must shrink by at least that factor — the
	// practical core of the paper's ε_{r+1} = ε_r/(25·n^{7/2+a}) schedule
	// (Lemma 2's noise floor). Zero selects 4.
	EpsDecayFactor float64
	// Beta scales the affine coefficient Beta·E#[child]. Zero selects
	// DefaultBeta = 2/5. Experiment E11 sweeps it.
	Beta float64
	// RoundsFactor scales the fixed round budget ceil(RoundsFactor·m·
	// ln(m/ε_r)) used by StopFixedBudget and as the oracle-mode safety
	// cap (4x). Zero selects 4.
	RoundsFactor float64
	// Stop selects the round-termination rule. Zero selects StopOracle.
	Stop StopMode
	// Leaf selects intra-leaf averaging. Zero selects LeafSimulated.
	Leaf LeafMode
	// Convex replaces the affine update with plain averaging of the two
	// representative values (ablation E12).
	Convex bool
	// Recovery selects greedy-routing stall handling. Zero selects
	// routing.RecoveryBFS.
	Recovery routing.Recovery
	// Routes optionally supplies a shared deterministic route/flood
	// cache bound to the run's graph (see routing.Cache). Nil gives the
	// run a fresh private cache; the sweep engine shares one cache per
	// network build. Routing is a pure function of the immutable graph,
	// so cache sharing cannot change results.
	Routes *routing.Cache
	// RecordEvery samples the convergence curve every RecordEvery far
	// exchanges. Zero selects 16.
	RecordEvery int
	// MaxLeafExchanges caps one leaf-averaging call. Zero selects
	// 200·L² + 1000 for a leaf of L members.
	MaxLeafExchanges int
	// LossRate is the probability that a data packet (single-hop
	// exchange, or a leg of a long-range route) is lost — shorthand for
	// a Bernoulli fault model in Faults. Lost exchanges pay for the
	// transmissions made before the loss but apply no update; updates
	// commit atomically per pair so the sum invariant survives. Zero
	// disables loss. Setting both LossRate and a loss model in Faults is
	// an error.
	LossRate float64
	// Faults selects the radio fault model (loss process, spatial
	// jamming, partition cuts and/or node churn — including churn
	// targeted at hierarchy representatives). The zero Spec is the
	// perfect medium. This engine has no global clock, so churn and
	// field/cut schedules are measured in transmissions.
	Faults channel.Spec
	// Recover enables representative re-election: when a long-range
	// exchange finds a square's representative dead, the member nearest
	// the square's centre among the survivors takes over (paying an
	// election flood over the square's live members) and the exchange
	// proceeds with the new representative. Off by default — enabling it
	// changes behaviour under churn, so historical churn runs stay
	// bit-identical without it. Takeovers happen on a copy-on-write
	// representative view (hier.RepView); the shared hierarchy build is
	// never mutated.
	Recover bool
	// State optionally supplies a reusable run state (routing core,
	// representative view, flattened adjacency/repair tables, channel
	// pool, RNG streams, scratch), so repeat runs — the sweep engine
	// pools one per worker — perform O(1) state allocations instead of
	// re-allocating everything per run. Nil gives the run a fresh private
	// state. Reuse cannot change results (see RunState).
	State *RunState
	// Tracer, when non-nil, receives structured protocol events (far
	// exchanges, leaf completions, losses).
	Tracer trace.Tracer
	// Obs, when non-nil, receives metrics through the label-free fast
	// path (see obs.Scope). Per-run totals flush at run end; only loss
	// and recovery events report per event, so the ~100ns far-exchange
	// hot path stays atomic-free.
	Obs *obs.Scope
}

func (o RecursiveOptions) withDefaults() RecursiveOptions {
	if o.Eps <= 0 {
		o.Eps = 1e-4
	}
	if o.EpsDecayFactor <= 0 {
		o.EpsDecayFactor = 4
	}
	if o.Beta == 0 {
		o.Beta = DefaultBeta
	}
	if o.RoundsFactor <= 0 {
		o.RoundsFactor = 4
	}
	if o.Stop == 0 {
		o.Stop = StopOracle
	}
	if o.Leaf == 0 {
		o.Leaf = LeafSimulated
	}
	if o.Recovery == 0 {
		o.Recovery = routing.RecoveryBFS
	}
	if o.RecordEvery <= 0 {
		o.RecordEvery = 16
	}
	return o
}

// Result extends the shared run summary with protocol-specific counters.
type Result struct {
	*metrics.Result
	// FarExchanges counts long-range affine exchanges across all levels.
	FarExchanges uint64
	// RouteFailures counts undeliverable representative round trips
	// (possible only on disconnected instances).
	RouteFailures uint64
	// LeafStalls counts leaf-averaging calls that hit their exchange cap
	// before reaching the level target.
	LeafStalls uint64
	// IncompleteSquares counts internal squares whose oracle-mode rounds
	// hit the safety cap before reaching the level target.
	IncompleteSquares uint64
	// LeafFastCalls counts leaf averagings served by the LeafFast model
	// (zero in fully honest runs).
	LeafFastCalls uint64
	// Reelections counts representative takeovers performed under
	// RecursiveOptions.Recover (also mirrored into the shared Result).
	Reelections uint64
}

type engine struct {
	st *RunState
	g  *graph.Graph
	rt *routing.Router
	h  *hier.Hierarchy
	// view is the copy-on-write representative overlay: every
	// representative read and re-election goes through it, so the shared
	// hierarchy build is never mutated and a pooled state resets in O(1).
	view    *hier.RepView
	opt     RecursiveOptions
	x       []float64
	tracker *sim.ErrTracker
	counter sim.Counter
	curve   metrics.Curve
	scale0  float64
	obs     *obs.Scope
	pick    *rng.RNG
	leafRNG *rng.RNG
	// ch is the radio medium every data packet goes through; its clock
	// is driven by the transmission counter (this engine has no tick
	// clock).
	ch channel.Channel

	res Result
}

// rep returns sq's current representative through the view.
func (e *engine) rep(sq *hier.Square) int32 { return e.view.Rep(sq.ID) }

// RunRecursive runs the hierarchical affine-gossip algorithm over graph g
// with hierarchy h (built over the same points), mutating x in place
// toward consensus. It returns per-category transmission counts, the
// convergence curve, and protocol counters.
func RunRecursive(g *graph.Graph, h *hier.Hierarchy, x []float64, opt RecursiveOptions, r *rng.RNG) (*Result, error) {
	if g.N() != len(x) {
		return nil, fmt.Errorf("core: %d nodes but %d values", g.N(), len(x))
	}
	if len(h.NodeLeaf) != g.N() {
		return nil, fmt.Errorf("core: hierarchy covers %d nodes, graph has %d", len(h.NodeLeaf), g.N())
	}
	opt = opt.withDefaults()
	name := algorithmName(opt, h)
	if g.N() == 0 {
		return &Result{Result: sim.EmptyResult(name)}, nil
	}
	spec, err := opt.faultSpec()
	if err != nil {
		return nil, err
	}
	st := opt.State
	if st == nil {
		st = &RunState{}
	}
	// Re-elections (under Recover) write to the state's representative
	// view, never to the shared hierarchy build; bind also resets the
	// view and the copy-on-write repair table for this run.
	st.bind(g, h, opt.Recovery, opt.Routes)
	st.tline.Reset(spec.HasTransport())
	ch, err := spec.BuildWith(&st.ch, g.N(), st.faultEnv(g, h, spec, opt.Obs, opt.Tracer),
		st.stream(&st.lossRNG, r, "loss"), st.stream(&st.churnRNG, r, "churn"))
	if err != nil {
		return nil, err
	}
	e := &st.rec
	samples := e.curve.Samples[:0] // keep the curve's storage across runs
	*e = engine{
		st:      st,
		g:       g,
		rt:      &st.router,
		h:       h,
		view:    &st.view,
		opt:     opt,
		x:       x,
		tracker: &st.tracker,
		obs:     opt.Obs,
		pick:    st.stream(&st.pickRNG, r, "pick"),
		leafRNG: st.stream(&st.leafRNG, r, "leaf"),
		ch:      ch,
	}
	e.curve.Samples = samples
	st.tracker.Reset(x)
	e.scale0 = e.tracker.Norm0()
	e.curve.Record(0, 0, e.tracker.Err())
	// A start at (numerical) consensus needs no work; the threshold keeps
	// float residue in Norm0 from demanding impossible absolute targets.
	if e.scale0 > 1e-12*(math.Abs(e.tracker.Mean())+1) {
		e.avg(h.Root(), opt.Eps)
	}
	e.tracker.Resync()
	finalErr := e.tracker.Err()
	atConsensus := e.scale0 <= 1e-12*(math.Abs(e.tracker.Mean())+1)
	e.curve.Record(e.res.FarExchanges, e.counter.Total(), finalErr)
	converged := finalErr <= opt.Eps || atConsensus
	// This engine has no harness, so it flushes its run totals itself:
	// category counts, the far-exchange count (bulk, keeping the exchange
	// hot path atomic-free), and convergence. Ticks = far exchanges, the
	// engine's clock.
	e.obs.EndRun(e.counter.Get(sim.CatNear), e.counter.Get(sim.CatFar),
		e.counter.Get(sim.CatControl), e.counter.Get(sim.CatFlood),
		e.res.FarExchanges, converged, finalErr)
	e.obs.AddFarExchanges(e.res.FarExchanges)
	e.res.Result = &metrics.Result{
		Algorithm:               name,
		N:                       g.N(),
		Converged:               converged,
		FinalErr:                finalErr,
		Ticks:                   e.res.FarExchanges,
		Transmissions:           e.counter.Total(),
		TransmissionsByCategory: e.counter.Breakdown(),
		Curve:                   e.curve.Snapshot(),
		Alive:                   sim.AliveMask(e.ch, g.N()),
		Reelections:             e.res.Reelections,
	}
	// This engine's clock is the transmission counter, so its simulated
	// seconds are denominated in transmissions per node rather than Poisson
	// ticks per node; zero without transport components, like the others.
	e.res.SimSeconds = sim.SimSeconds(&st.tline, e.counter.Total(), g.N())
	// The engine lives inside a pooled state: hand out a copy so a later
	// run's reset cannot touch the caller's counters.
	res := e.res
	return &res, nil
}

// faultEnv assembles the network context spatial, targeted and transport
// fault models bind to: positions always, the state's timeline plus the
// run's observability hooks for delay/arq wrappers, and hierarchy
// representatives and the degree order only when the spec asks for them.
func (st *RunState) faultEnv(g *graph.Graph, h *hier.Hierarchy, spec channel.Spec, scope *obs.Scope, tracer trace.Tracer) channel.Env {
	env := channel.Env{Points: g.Points(), Timeline: &st.tline, Obs: scope, Tracer: tracer}
	if spec.TargetsReps() {
		env.Reps = h.Reps()
	}
	if spec.TargetsHubs() {
		env.HubOrder = g.ByDegreeDesc()
	}
	return env
}

// faultSpec folds a legacy LossRate shorthand into a fault spec and
// validates the result (shared by the recursive and async engines).
func faultSpec(lossRate float64, faults channel.Spec) (channel.Spec, error) {
	spec := faults
	if lossRate != 0 {
		if lossRate < 0 || lossRate > 1 {
			return spec, fmt.Errorf("core: loss rate %v outside [0, 1]", lossRate)
		}
		if spec.Loss != channel.LossNone {
			return spec, fmt.Errorf("core: LossRate and Faults both select a loss model")
		}
		spec.Loss = channel.LossBernoulli
		spec.LossRate = lossRate
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

func (o RecursiveOptions) faultSpec() (channel.Spec, error) {
	return faultSpec(o.LossRate, o.Faults)
}

func algorithmName(opt RecursiveOptions, h *hier.Hierarchy) string {
	kind := "affine"
	if opt.Convex {
		kind = "convex"
	}
	shape := "hierarchical"
	if h.Ell <= 2 {
		shape = "flat"
	}
	return kind + "-" + shape
}

// Leaf repair — handling leaves whose internal subgraph is not connected
// — lives on RunState (repairLeafSquareInto): at the paper's (log n)^8
// leaf sizes a leaf's side vastly exceeds the radio radius and splitting
// cannot happen; at this repository's simulable Θ(log n) leaf sizes the
// leaf side is comparable to r, so a leaf occasionally splits into
// in-leaf components (in the extreme, isolated nodes whose neighbours all
// lie across the leaf boundary). Without repair those components' values
// could never equalize and every enclosing square's averaging would stall
// at its round cap. For every in-leaf component not containing the
// representative, the component's smallest-index member becomes a bridge:
// whenever its clock picks it for a Near exchange it exchanges with the
// representative over a greedy-routed path, paying the hops. The repair
// table holds the per-node route hop count (0 = ordinary node, -1 = rep
// unreachable, possible only on globally disconnected instances).

// kidCount returns the number of sq's children with members, and the
// first such child.
func (e *engine) kidCount(sq *hier.Square) (int, *hier.Square) {
	m := 0
	var first *hier.Square
	for _, cid := range sq.Children {
		c := e.h.Squares[cid]
		if len(c.Members) > 0 {
			if m == 0 {
				first = c
			}
			m++
		}
	}
	return m, first
}

// kid returns sq's k-th child with members (k < kidCount). The scan
// replaces the per-call kids slice the round loop used to allocate;
// children per square are bounded by the branching factor, so the scan is
// negligible beside the exchange it selects for.
func (e *engine) kid(sq *hier.Square, k int) *hier.Square {
	for _, cid := range sq.Children {
		c := e.h.Squares[cid]
		if len(c.Members) > 0 {
			if k == 0 {
				return c
			}
			k--
		}
	}
	panic("core: kid index out of range")
}

// avg drives square sq's member values to within eps·scale0 of their
// in-square mean (the recursive protocol A of §3).
func (e *engine) avg(sq *hier.Square, eps float64) {
	if len(sq.Members) <= 1 {
		return
	}
	if sq.IsLeaf() {
		e.leafAverage(sq, eps)
		return
	}
	m, first := e.kidCount(sq)
	epsNext := eps / (e.opt.EpsDecayFactor * math.Sqrt(sq.Expected))
	if m == 1 {
		// All mass in one child: averaging the child is averaging sq.
		e.avg(first, eps)
		return
	}
	// Initial equalization: run A on every child independently.
	for _, cid := range sq.Children {
		if c := e.h.Squares[cid]; len(c.Members) > 0 {
			e.avg(c, epsNext)
		}
	}
	budget := int(math.Ceil(e.opt.RoundsFactor * float64(m) * math.Log(float64(m)/eps)))
	target2 := eps * e.scale0 * eps * e.scale0
	// Divergence guard for the oracle loop. The affine coefficient
	// Beta·E#[child] contracts only while the induced per-member
	// coefficients stay inside Lemma 1's band; at simulable Θ(log n) leaf
	// sizes an occupancy far below E# (or an extreme Beta, E11) pushes
	// them out and rounds amplify deviation geometrically instead of
	// shrinking it. Detecting the blow-up early keeps values at sane
	// magnitudes — the sum invariant then survives in floating point —
	// and avoids burning the full 4x round cap on a lost cause.
	var dev0 float64
	for round := 0; ; round++ {
		switch e.opt.Stop {
		case StopOracle:
			d2 := e.squareDev2(sq)
			if round == 0 {
				dev0 = d2
			}
			if d2 <= target2 {
				return
			}
			if round >= 4*budget || d2 > 64*dev0 {
				e.res.IncompleteSquares++
				return
			}
		default: // StopFixedBudget
			if round >= budget {
				return
			}
		}
		i := e.pick.IntN(m)
		j := e.pick.IntNExcept(m, i)
		ki, kj := e.kid(sq, i), e.kid(sq, j)
		e.farExchange(ki, kj)
		e.avg(ki, epsNext)
		e.avg(kj, epsNext)
	}
}

// farExchange performs one long-range exchange between the representatives
// of sibling squares a and b: greedy round-trip routing plus the affine
// (or, under the Convex ablation, convex) update on the two representative
// values, using old values on both sides as in §3 steps 3–4.
func (e *engine) farExchange(a, b *hier.Square) {
	e.advance()
	if e.opt.Recover && (!e.ensureRep(a) || !e.ensureRep(b)) {
		return // a square lost all members; nothing to exchange with
	}
	ra, rb := e.rep(a), e.rep(b)
	out := e.rt.RouteToNode(ra, rb, e.opt.Recovery)
	// On success paid is the transport layer's extra airtime
	// (retransmissions, duplicates); zero without delay/arq.
	ok, paid := e.ch.DeliverRoundTrip(e.packet(ra, rb, out.Hops))
	if !ok {
		// One of the two route legs was lost: charge the partial cost and
		// apply no update (the oracle loop simply runs another round).
		e.counter.Add(sim.CatFar, paid)
		e.res.RouteFailures++
		e.obs.Loss(paid)
		if e.opt.Tracer != nil {
			e.opt.Tracer.Record(trace.Event{Kind: trace.KindLoss, Square: a.ID, NodeA: ra, NodeB: rb, Hops: paid})
		}
		return
	}
	hops := out.Hops + paid
	delivered := out.Delivered
	if delivered {
		back := e.rt.RouteToNode(rb, ra, e.opt.Recovery)
		hops += back.Hops
		delivered = back.Delivered
	}
	e.counter.Add(sim.CatFar, hops)
	if !delivered {
		e.res.RouteFailures++
		return
	}
	xi, xj := e.x[ra], e.x[rb]
	var ni, nj float64
	if e.opt.Convex {
		avg := (xi + xj) / 2
		ni, nj = avg, avg
	} else {
		coeff := e.opt.Beta * a.Expected // siblings share Expected
		ni = xi + coeff*(xj-xi)
		nj = xj + coeff*(xi-xj)
	}
	e.tracker.Set(ra, ni)
	e.tracker.Set(rb, nj)
	e.res.FarExchanges++
	if e.opt.Tracer != nil {
		e.opt.Tracer.Record(trace.Event{Kind: trace.KindFar, Square: a.ID, NodeA: ra, NodeB: rb, Hops: hops})
	}
	if e.res.FarExchanges%uint64(e.opt.RecordEvery) == 0 {
		e.curve.Record(e.res.FarExchanges, e.counter.Total(), e.tracker.Err())
	}
}

// advance moves the medium to the engine's current clock reading (the
// transmission counter), first draining any due transport completions in
// deterministic (time, seq) order so time-windowed fault state flips at
// delayed-delivery instants exactly as at counter crossings. One branch
// when the timeline is inactive.
func (e *engine) advance() {
	now := e.counter.Total()
	if e.st.tline.Active() {
		e.st.tline.DrainTo(float64(now), e.ch.Advance)
	}
	e.ch.Advance(now)
}

// packet assembles the delivery context for a transmission: endpoint
// positions from the graph and the transmission counter as this engine's
// clock.
func (e *engine) packet(src, dst int32, hops int) channel.Packet {
	return channel.Packet{
		Src: src, Dst: dst,
		SrcPos: e.g.Point(src), DstPos: e.g.Point(dst),
		Hops: hops, Now: e.counter.Total(),
	}
}

// ensureRep re-elects square sq's representative if it has died
// (nearest-alive-member takeover on the view), charging the election
// flood. It reports whether the square has a representative afterwards.
func (e *engine) ensureRep(sq *hier.Square) bool {
	if rep := e.rep(sq); rep >= 0 && e.ch.Alive(rep) {
		return true
	}
	next, changed := e.view.ReelectSquare(sq.ID, e.ch.Alive)
	if changed {
		e.res.Reelections++
		e.st.chargeReelection(sq, e.ch.Alive, e.opt.Recovery, &e.counter, e.opt.Tracer, e.obs)
	}
	return next >= 0
}

// chargeReelection pays the accounting for a representative takeover in
// square sq, shared by the recursive and async engines: the election
// flood over the square's live members — one broadcast each, the cost
// of the square discovering the silence and agreeing on a successor —
// the trace event, and a rebuild of the leaf's repair bridges relative
// to the successor (a takeover into a different in-leaf component moves
// the bridges, not just their route lengths). The view already holds the
// successor; all scratch is state-owned and reused across elections.
func (st *RunState) chargeReelection(sq *hier.Square, alive func(int32) bool,
	rec routing.Recovery, counter *sim.Counter, tracer trace.Tracer, scope *obs.Scope) {
	cost := 0
	for _, m := range sq.Members {
		if alive(m) {
			cost++
		}
	}
	counter.Add(sim.CatFlood, cost)
	if sq.IsLeaf() {
		st.repairLeafSquareInto(st.mutableRepair(), sq, st.view.Rep(sq.ID), rec)
	}
	scope.Reelection()
	if tracer != nil {
		tracer.Record(trace.Event{Kind: trace.KindReelect, Square: sq.ID, NodeA: st.view.Rep(sq.ID), NodeB: -1, Hops: cost})
	}
}

// squareDev2 returns the squared ℓ₂ deviation of sq's member values from
// their in-square mean.
func (e *engine) squareDev2(sq *hier.Square) float64 {
	var sum float64
	for _, m := range sq.Members {
		sum += e.x[m]
	}
	mean := sum / float64(len(sq.Members))
	var dev2 float64
	for _, m := range sq.Members {
		d := e.x[m] - mean
		dev2 += d * d
	}
	return dev2
}

// leafAverage equalizes a leaf square by nearest-neighbour gossip
// restricted to the leaf (procedure Near of §4), or by the LeafFast model.
func (e *engine) leafAverage(sq *hier.Square, eps float64) {
	members := sq.Members
	l := len(members)
	if l <= 1 {
		return
	}
	var sum float64
	for _, m := range members {
		sum += e.x[m]
	}
	mean := sum / float64(l)
	var dev2 float64
	for _, m := range members {
		d := e.x[m] - mean
		dev2 += d * d
	}
	target := eps * e.scale0
	target2 := target * target
	if dev2 <= target2 {
		return
	}
	if e.opt.Leaf == LeafFast {
		e.fastLeaf(sq, mean, dev2, target)
		return
	}
	maxEx := e.opt.MaxLeafExchanges
	if maxEx <= 0 {
		maxEx = 200*l*l + 1000
	}
	repair := e.st.repair
	// charged accumulates the call's total near-plane cost (successful
	// exchanges plus partial loss charges); the leaf-done event carries it
	// in Hops, so trace hop totals reproduce the transmission counter
	// without per-packet leaf events (losses here are rolled into the
	// leaf's summary event — KindLoss stays reserved for route failures).
	charged := 0
	for k := 0; k < maxEx && dev2 > target2; k++ {
		u := members[e.leafRNG.IntN(l)]
		e.advance()
		if !e.ch.Alive(u) {
			continue // a dead node's clock never picks it
		}
		cands := e.st.leafNbrs(u)
		var v int32
		cost := 2
		switch {
		case repair[u] > 0 && e.rep(sq) >= 0:
			// Bridge/orphan: exchange with the representative over the
			// precomputed route so in-leaf components equalize.
			v = e.rep(sq)
			cost = 2 * int(repair[u])
		case len(cands) > 0:
			v = cands[e.leafRNG.IntN(len(cands))]
		default:
			continue
		}
		ok, paid := e.ch.DeliverHop(e.packet(u, v, 1))
		if !ok {
			e.counter.Add(sim.CatNear, paid) // lost outbound value
			charged += paid
			e.obs.Loss(paid)
			continue
		}
		xu, xv := e.x[u], e.x[v]
		avg := (xu + xv) / 2
		du, dv, da := xu-mean, xv-mean, avg-mean
		dev2 += 2*da*da - du*du - dv*dv
		e.tracker.Set(u, avg)
		e.tracker.Set(v, avg)
		// paid on success is the transport layer's extra airtime
		// (retransmissions, duplicates); zero without delay/arq.
		e.counter.Add(sim.CatNear, cost+paid)
		charged += cost + paid
	}
	if dev2 > target2 {
		e.res.LeafStalls++
	}
	if e.opt.Tracer != nil {
		e.opt.Tracer.Record(trace.Event{Kind: trace.KindLeafDone, Square: sq.ID, NodeA: e.rep(sq), NodeB: -1, Hops: charged})
	}
}

// fastLeaf snaps the leaf to its mean and charges the modeled exchange
// count: near-gossip on an L-node leaf contracts deviation by roughly
// (1 − gap/L) per exchange, with gap the diffusive spectral proxy
// (r/side)², so reaching the target needs ≈ (L/gap)·ln(dev/target)
// exchanges.
func (e *engine) fastLeaf(sq *hier.Square, mean, dev2 float64, target float64) {
	l := len(sq.Members)
	side := sq.Rect.Width()
	gap := 0.7 * (e.g.Radius() / side) * (e.g.Radius() / side)
	if gap > 1 {
		gap = 1
	}
	if gap < 0.05 {
		gap = 0.05
	}
	ratio := math.Sqrt(dev2) / target
	if ratio < 1 {
		ratio = 1
	}
	exchanges := int(math.Ceil(float64(l) / gap * math.Log(ratio)))
	if exchanges < 1 {
		exchanges = 1
	}
	e.counter.Add(sim.CatNear, 2*exchanges)
	for _, m := range sq.Members {
		e.tracker.Set(m, mean)
	}
	e.res.LeafFastCalls++
	if e.opt.Tracer != nil {
		e.opt.Tracer.Record(trace.Event{Kind: trace.KindLeafDone, Square: sq.ID, NodeA: e.rep(sq), NodeB: -1, Hops: 2 * exchanges})
	}
}
