package core

import (
	"math"
	"testing"

	"geogossip/internal/channel"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
)

// burstFaults is a heavily bursty medium: ~20% stationary loss arriving
// in runs of ~10 packets.
func burstFaults() channel.Spec {
	return channel.Spec{
		Loss: channel.LossGilbertElliott,
		GE:   channel.GEParams{PGoodToBad: 0.025, PBadToGood: 0.1, LossGood: 0.01, LossBad: 0.95},
	}
}

// TestRecursiveAtomicUnderBurstLoss: far and near exchanges commit
// atomically per pair, so the mean is exactly invariant under burst loss
// and the oracle rounds absorb the lost exchanges.
func TestRecursiveAtomicUnderBurstLoss(t *testing.T) {
	f := newFixture(t, 512, 1.8, 520, hier.Config{})
	x := randomValues(f.g.N(), 521)
	mean := meanOf(x)
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps:    1e-2,
		Faults: burstFaults(),
	}, rng.New(522))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("recursive under burst loss did not converge: %v", res.Result)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted under burst loss: %v -> %v", mean, meanOf(x))
	}
	if res.RouteFailures == 0 {
		t.Fatal("burst loss produced no recorded route failures")
	}
}

func TestAsyncAtomicUnderBurstLoss(t *testing.T) {
	f := newFixture(t, 384, 2.0, 523, hier.Config{})
	x := randomValues(f.g.N(), 524)
	mean := meanOf(x)
	res, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Eps:    3e-2,
		Faults: burstFaults(),
		Stop:   sim.StopRule{TargetErr: 3e-2, MaxTicks: 60_000_000},
	}, rng.New(525))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async under burst loss did not converge: %v", res.Result)
	}
	if math.Abs(meanOf(x)-mean) > 1e-9 {
		t.Fatalf("mean drifted under burst loss: %v -> %v", mean, meanOf(x))
	}
}

// TestRecursiveSumInvariantUnderChurn: churn (transmission-driven for
// this clockless engine) freezes dead nodes but every committed update
// remains an atomic pair exchange, so Σx over all nodes cannot move.
func TestRecursiveSumInvariantUnderChurn(t *testing.T) {
	f := newFixture(t, 512, 1.8, 526, hier.Config{})
	x := randomValues(f.g.N(), 527)
	sum0 := meanOf(x) * float64(f.g.N())
	res, err := RunRecursive(f.g, f.h, x, RecursiveOptions{
		Eps: 1e-2,
		Faults: channel.Spec{
			Churn: channel.ChurnParams{MeanUp: 500_000, MeanDown: 100_000},
		},
	}, rng.New(528))
	if err != nil {
		t.Fatal(err)
	}
	got := meanOf(x) * float64(f.g.N())
	if math.Abs(got-sum0) > 1e-9*(math.Abs(sum0)+1) {
		t.Fatalf("sum drifted under churn: %v -> %v", sum0, got)
	}
	_ = res
}

// TestAsyncSumInvariantUnderChurn: the event-driven engine skips dead
// representatives and rolls back failed exchanges; Σx stays exact and
// the result carries the liveness mask.
func TestAsyncSumInvariantUnderChurn(t *testing.T) {
	f := newFixture(t, 384, 2.0, 529, hier.Config{})
	x := randomValues(f.g.N(), 530)
	sum0 := meanOf(x) * float64(f.g.N())
	res, err := RunAsync(f.g, f.h, x, AsyncOptions{
		Eps: 3e-2,
		Faults: channel.Spec{
			Loss:     channel.LossBernoulli,
			LossRate: 0.1,
			Churn:    channel.ChurnParams{MeanUp: 2_000_000, MeanDown: 500_000},
		},
		Stop: sim.StopRule{MaxTicks: 5_000_000},
	}, rng.New(531))
	if err != nil {
		t.Fatal(err)
	}
	got := meanOf(x) * float64(f.g.N())
	if math.Abs(got-sum0) > 1e-9*(math.Abs(sum0)+1) {
		t.Fatalf("sum drifted under churn+loss: %v -> %v", sum0, got)
	}
	if res.Alive == nil {
		t.Fatal("churn run reported no liveness mask")
	}
}

func TestCoreFaultValidation(t *testing.T) {
	f := newFixture(t, 64, 2.5, 532, hier.Config{})
	x := make([]float64, f.g.N())
	if _, err := RunRecursive(f.g, f.h, x, RecursiveOptions{LossRate: 1.5}, rng.New(1)); err == nil {
		t.Fatal("recursive accepted loss rate 1.5")
	}
	if _, err := RunAsync(f.g, f.h, x, AsyncOptions{LossRate: -0.1}, rng.New(1)); err == nil {
		t.Fatal("async accepted loss rate -0.1")
	}
	both := RecursiveOptions{
		LossRate: 0.1,
		Faults:   channel.Spec{Loss: channel.LossBernoulli, LossRate: 0.2},
	}
	if _, err := RunRecursive(f.g, f.h, x, both, rng.New(1)); err == nil {
		t.Fatal("recursive accepted LossRate combined with a Faults loss model")
	}
}
