package trace

import (
	"bytes"
	"reflect"
	"testing"
)

var roundTripEvents = []Event{
	{Seq: 1, Kind: KindNear, Square: -1, NodeA: 0, NodeB: 1, Hops: 2},
	{Seq: 2, Kind: KindFar, Square: 3, NodeA: 140, NodeB: 971, Hops: 18},
	{Seq: 3, Kind: KindLoss, Square: -1, NodeA: 7, NodeB: 9, Hops: 4},
	{Seq: 4, Kind: KindLeafDone, Square: 12, NodeA: -1, NodeB: -1, Hops: 40},
	{Seq: 5, Kind: KindActivate, Square: 2, NodeA: 5, NodeB: -1, Hops: 9},
	{Seq: 6, Kind: KindDeactivate, Square: 2, NodeA: 5, NodeB: -1, Hops: 3},
	{Seq: 7, Kind: KindReelect, Square: 4, NodeA: 11, NodeB: 13, Hops: 25},
	{Seq: 8, Kind: KindResync, Square: 4, NodeA: 11, NodeB: 12, Hops: 2},
	{Seq: 9, Kind: KindChurn, Square: -1, NodeA: 31, NodeB: 0, Hops: 0},
	{Seq: 10, Kind: Kind(42), Square: 0, NodeA: 0, NodeB: 0, Hops: 0},
}

// TestEventRoundTrip: AppendEvent → ParseEvent is the identity on every
// kind, including the out-of-range "kind(N)" form.
func TestEventRoundTrip(t *testing.T) {
	for _, e := range roundTripEvents {
		line := AppendEvent(nil, e)
		got, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if got != e {
			t.Errorf("round trip changed %+v into %+v", e, got)
		}
	}
}

// TestKindStringRoundTrip walks every named kind (and one beyond) through
// String and KindFromString.
func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(1); k <= numKinds; k++ {
		got, err := KindFromString(k.String())
		if err != nil {
			t.Fatalf("kind %d (%s): %v", k, k, err)
		}
		if got != k {
			t.Errorf("kind %d round-tripped to %d", k, got)
		}
	}
	names := map[Kind]string{KindResync: "resync", KindChurn: "churn"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kind %d named %q, want %q", k, k.String(), want)
		}
	}
	if _, err := KindFromString("nonsense"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestJSONLStream: the writer produces one parseable line per event and
// ReadJSONL restores the stream, tolerating a truncated final line.
func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	w := &JSONL{W: &buf}
	for _, e := range roundTripEvents {
		ev := e
		ev.Seq = 0 // writer assigns sequence numbers
		w.Record(ev)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(roundTripEvents) {
		t.Fatalf("%d events read, want %d", len(got), len(roundTripEvents))
	}
	for i, e := range got {
		want := roundTripEvents[i]
		want.Seq = uint64(i + 1)
		if e != want {
			t.Errorf("event %d: got %+v, want %+v", i, e, want)
		}
	}
	// A killed run truncates the final line mid-object; the reader keeps
	// everything before it.
	cut := buf.Bytes()[:buf.Len()-5]
	got, err = ReadJSONL(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated final line not tolerated: %v", err)
	}
	if len(got) != len(roundTripEvents)-1 {
		t.Fatalf("%d events from truncated stream, want %d", len(got), len(roundTripEvents)-1)
	}
	// Corruption anywhere else is an error.
	bad := append([]byte("{garbage}\n"), buf.Bytes()...)
	if _, err := ReadJSONL(bytes.NewReader(bad)); err == nil {
		t.Error("mid-stream corruption accepted")
	}
}

// TestJSONLFilterAndSampling: filtering keeps global sequence numbers,
// and 1-in-k sampling is per kind and deterministic.
func TestJSONLFilterAndSampling(t *testing.T) {
	var buf bytes.Buffer
	w := &JSONL{W: &buf, Filter: []Kind{KindLoss}, SampleEvery: 2}
	for i := 0; i < 10; i++ {
		w.Record(Event{Kind: KindNear, NodeA: int32(i)})
		w.Record(Event{Kind: KindLoss, NodeA: int32(i)})
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 10 losses, every 2nd kept starting with the 1st: 5 events.
	if len(got) != 5 {
		t.Fatalf("%d events, want 5", len(got))
	}
	for i, e := range got {
		if e.Kind != KindLoss {
			t.Errorf("event %d: kind %v leaked through the filter", i, e.Kind)
		}
		// Sequence numbers come from the full stream (losses are the even
		// positions: 2, 6, 10, ...), so sampling is visible to readers.
		if want := uint64(4*i + 2); e.Seq != want {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, want)
		}
		if e.NodeA != int32(2*i) {
			t.Errorf("event %d: node %d, want %d (1-in-2 per kind)", i, e.NodeA, 2*i)
		}
	}
}

// TestSummarize pins the replay invariants: per-kind counts and hop
// sums, the hop-total-equals-transmissions identity, square activity,
// and the loss timeline.
func TestSummarize(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindNear, Square: -1, Hops: 2},
		{Seq: 2, Kind: KindFar, Square: 3, Hops: 10},
		{Seq: 3, Kind: KindLoss, Square: -1, Hops: 4},
		{Seq: 4, Kind: KindFar, Square: 3, Hops: 6},
		{Seq: 40, Kind: KindLoss, Square: 5, Hops: 1},
	}
	s := Summarize(events, 4)
	if s.Events != 5 || s.MaxSeq != 40 {
		t.Fatalf("events %d max seq %d", s.Events, s.MaxSeq)
	}
	if s.Counts[KindFar] != 2 || s.Hops[KindFar] != 16 {
		t.Errorf("far: %d events %d hops", s.Counts[KindFar], s.Hops[KindFar])
	}
	if s.Transmissions != 23 {
		t.Errorf("transmissions %d, want 23", s.Transmissions)
	}
	if s.SquareEvents[3] != 2 || s.SquareEvents[5] != 1 || len(s.SquareEvents) != 2 {
		t.Errorf("square activity %v", s.SquareEvents)
	}
	if !reflect.DeepEqual(s.LossTimeline, []uint64{1, 0, 0, 1}) {
		t.Errorf("loss timeline %v", s.LossTimeline)
	}
}

// TestJSONLRecordAllocFree: steady-state recording reuses its buffer.
func TestJSONLRecordAllocFree(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	w := &JSONL{W: &buf}
	w.Record(Event{Kind: KindFar, Square: 1, NodeA: 2, NodeB: 3, Hops: 4})
	if avg := testing.AllocsPerRun(1000, func() {
		w.Record(Event{Kind: KindFar, Square: 1, NodeA: 2, NodeB: 3, Hops: 4})
	}); avg > 0 {
		t.Errorf("steady-state Record allocated %v per event, want 0", avg)
	}
}

// FuzzEventRoundTrip fuzzes the encode/decode pair: any event encodes to
// one line that parses back to the identical event.
func FuzzEventRoundTrip(f *testing.F) {
	for _, e := range roundTripEvents {
		f.Add(e.Seq, int(e.Kind), e.Square, e.NodeA, e.NodeB, e.Hops)
	}
	f.Fuzz(func(t *testing.T, seq uint64, kind, square int, a, b int32, hops int) {
		e := Event{Seq: seq, Kind: Kind(kind), Square: square, NodeA: a, NodeB: b, Hops: hops}
		line := AppendEvent(nil, e)
		if n := bytes.Count(line, []byte("\n")); n != 1 || line[len(line)-1] != '\n' {
			t.Fatalf("encoding of %+v is not one newline-terminated line: %q", e, line)
		}
		got, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if got != e {
			t.Fatalf("round trip changed %+v into %+v (line %q)", e, got, line)
		}
	})
}

// FuzzParseEvent fuzzes the decoder directly: arbitrary input must never
// panic, and accepted lines must re-encode to a parseable form.
func FuzzParseEvent(f *testing.F) {
	for _, e := range roundTripEvents {
		f.Add(string(AppendEvent(nil, e)))
	}
	f.Add(`{"seq":1}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`{"kind":"far"`)
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseEvent([]byte(line))
		if err != nil {
			return
		}
		again, err := ParseEvent(AppendEvent(nil, e))
		if err != nil {
			t.Fatalf("re-encoding of accepted line %q failed: %v", line, err)
		}
		if again != e {
			t.Fatalf("re-encode changed %+v into %+v", e, again)
		}
	})
}
