package trace

import (
	"strings"
	"testing"
)

func TestBufferRecordsAndCounts(t *testing.T) {
	b := NewBuffer(10)
	b.Record(Event{Kind: KindNear, NodeA: 1, NodeB: 2, Hops: 2})
	b.Record(Event{Kind: KindFar, NodeA: 3, NodeB: 4, Hops: 12})
	b.Record(Event{Kind: KindFar, NodeA: 5, NodeB: 6, Hops: 9})
	if b.Total() != 3 {
		t.Fatalf("Total = %d", b.Total())
	}
	if b.Count(KindNear) != 1 || b.Count(KindFar) != 2 || b.Count(KindActivate) != 0 {
		t.Fatalf("counts: near=%d far=%d", b.Count(KindNear), b.Count(KindFar))
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Seq != 1 || evs[2].Seq != 3 {
		t.Fatalf("sequence numbers wrong: %v", evs)
	}
}

func TestBufferRingEviction(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 10; i++ {
		b.Record(Event{Kind: KindNear, NodeA: int32(i)})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	// Chronological order with the oldest evicted.
	if evs[0].NodeA != 7 || evs[2].NodeA != 9 {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if b.Total() != 10 || b.Count(KindNear) != 10 {
		t.Fatal("eviction must not lose the aggregate counts")
	}
}

func TestBufferDefaultCapacity(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 5000; i++ {
		b.Record(Event{Kind: KindNear})
	}
	if len(b.Events()) != 4096 {
		t.Fatalf("default cap retained %d", len(b.Events()))
	}
}

func TestBufferCountInvalidKind(t *testing.T) {
	b := NewBuffer(4)
	if b.Count(Kind(99)) != 0 || b.Count(Kind(0)) != 0 {
		t.Fatal("invalid kinds should count zero")
	}
}

func TestWriterFilters(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb, Filter: []Kind{KindFar}}
	w.Record(Event{Kind: KindNear, NodeA: 1, NodeB: 2})
	w.Record(Event{Kind: KindFar, NodeA: 3, NodeB: 4, Hops: 7, Square: 5})
	out := sb.String()
	if strings.Contains(out, "near") {
		t.Fatalf("filter leaked: %q", out)
	}
	if !strings.Contains(out, "far") || !strings.Contains(out, "square=5") {
		t.Fatalf("missing far event: %q", out)
	}
}

func TestWriterNoFilterPassesAll(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	w.Record(Event{Kind: KindActivate})
	w.Record(Event{Kind: KindDeactivate})
	lines := strings.Count(sb.String(), "\n")
	if lines != 2 {
		t.Fatalf("wrote %d lines", lines)
	}
}

func TestMulti(t *testing.T) {
	a := NewBuffer(4)
	b := NewBuffer(4)
	m := Multi(a, b)
	m.Record(Event{Kind: KindLoss})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNear:       "near",
		KindFar:        "far",
		KindActivate:   "activate",
		KindDeactivate: "deactivate",
		KindLoss:       "loss",
		KindLeafDone:   "leaf-done",
		Kind(42):       "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Kind: KindFar, Square: 3, NodeA: 1, NodeB: 2, Hops: 9}
	s := e.String()
	for _, frag := range []string{"#7", "far", "square=3", "(1,2)", "hops=9"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("event string %q missing %q", s, frag)
		}
	}
}
