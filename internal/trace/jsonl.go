package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JSONL streams events as JSON Lines — one compact object per event:
//
//	{"seq":12,"kind":"far","square":3,"a":140,"b":971,"hops":18}
//
// Sequence numbers are assigned to every event before filtering and
// sampling, so a filtered or sampled export preserves the run's global
// ordering (loss timelines bucket by seq). Encoding is hand-rolled into
// a reused buffer: recording allocates nothing in steady state.
type JSONL struct {
	// W receives the lines.
	W io.Writer
	// Filter restricts output to these kinds (empty = all).
	Filter []Kind
	// SampleEvery keeps deterministically 1 in every SampleEvery events
	// per kind (the 1st, the SampleEvery+1-th, ...); values <= 1 keep
	// every event. Sampling is per kind so rare kinds survive alongside
	// frequent ones.
	SampleEvery int

	seq  uint64
	seen [numKinds]uint64
	buf  []byte
	err  error
}

// Record implements Tracer.
func (t *JSONL) Record(e Event) {
	t.seq++
	e.Seq = t.seq
	if len(t.Filter) > 0 {
		keep := false
		for _, k := range t.Filter {
			if e.Kind == k {
				keep = true
				break
			}
		}
		if !keep {
			return
		}
	}
	if t.SampleEvery > 1 && e.Kind > 0 && e.Kind < numKinds {
		n := t.seen[e.Kind]
		t.seen[e.Kind]++
		if n%uint64(t.SampleEvery) != 0 {
			return
		}
	}
	if t.err != nil {
		return
	}
	t.buf = AppendEvent(t.buf[:0], e)
	_, t.err = t.W.Write(t.buf)
}

// Err returns the first write error encountered (recording is
// fire-and-forget inside engine loops, so errors are reported here).
func (t *JSONL) Err() error { return t.err }

var _ Tracer = (*JSONL)(nil)

// AppendEvent appends e's JSONL encoding (including the trailing
// newline) to dst and returns the extended slice.
func AppendEvent(dst []byte, e Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","square":`...)
	dst = strconv.AppendInt(dst, int64(e.Square), 10)
	dst = append(dst, `,"a":`...)
	dst = strconv.AppendInt(dst, int64(e.NodeA), 10)
	dst = append(dst, `,"b":`...)
	dst = strconv.AppendInt(dst, int64(e.NodeB), 10)
	dst = append(dst, `,"hops":`...)
	dst = strconv.AppendInt(dst, int64(e.Hops), 10)
	dst = append(dst, '}', '\n')
	return dst
}

// KindFromString inverts Kind.String, including the "kind(N)" form for
// out-of-range values, so encode/decode round-trips every event.
func KindFromString(s string) (Kind, error) {
	for k := Kind(1); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	if rest, ok := strings.CutPrefix(s, "kind("); ok {
		if num, ok := strings.CutSuffix(rest, ")"); ok {
			n, err := strconv.Atoi(num)
			if err == nil {
				return Kind(n), nil
			}
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// ParseEvent decodes one JSONL line produced by AppendEvent.
func ParseEvent(line []byte) (Event, error) {
	var e Event
	s := strings.TrimSpace(string(line))
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return e, fmt.Errorf("trace: malformed event line %q", s)
	}
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	for _, field := range splitTopLevel(s) {
		key, val, ok := strings.Cut(field, ":")
		if !ok {
			return e, fmt.Errorf("trace: malformed field %q", field)
		}
		key = strings.Trim(strings.TrimSpace(key), `"`)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seq":
			e.Seq, err = strconv.ParseUint(val, 10, 64)
		case "kind":
			e.Kind, err = KindFromString(strings.Trim(val, `"`))
		case "square":
			e.Square, err = strconv.Atoi(val)
		case "a":
			var n int64
			n, err = strconv.ParseInt(val, 10, 32)
			e.NodeA = int32(n)
		case "b":
			var n int64
			n, err = strconv.ParseInt(val, 10, 32)
			e.NodeB = int32(n)
		case "hops":
			e.Hops, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("trace: unknown field %q", key)
		}
		if err != nil {
			return e, err
		}
	}
	return e, nil
}

// splitTopLevel splits comma-separated fields, respecting quoted
// strings (kind values may contain escaped characters in principle).
func splitTopLevel(s string) []string {
	var out []string
	depth := false // inside a quoted string
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// ReadJSONL decodes a JSONL trace stream back into events, in stream
// order. Blank lines are skipped; a truncated final line (the signature
// of a killed run) is tolerated, malformed content anywhere else is an
// error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := ParseEvent(line)
		if err != nil {
			pendingErr = err
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary is the replayed view of a trace: per-kind counts and hop
// totals, per-square activity, and a loss timeline. Because every
// traced event carries its transmission charge in Hops, the hop total
// over all kinds reproduces the run's transmission counter exactly (the
// cross-check tests assert this engine by engine).
type Summary struct {
	// Events is the number of events summarized.
	Events int
	// Counts and Hops are per-kind event counts and hop-cost sums.
	Counts map[Kind]uint64
	Hops   map[Kind]uint64
	// Transmissions is the hop-cost total over every kind.
	Transmissions uint64
	// SquareEvents counts events per acting square (squares >= 0 only).
	SquareEvents map[int]uint64
	// LossTimeline buckets loss events by sequence number into
	// equal-width windows over [1, MaxSeq]; nil when no buckets were
	// requested or the trace is empty.
	LossTimeline []uint64
	// MaxSeq is the highest sequence number seen.
	MaxSeq uint64
}

// Summarize replays events into a Summary. lossBuckets selects the loss
// timeline resolution (<= 0 disables it).
func Summarize(events []Event, lossBuckets int) Summary {
	s := Summary{
		Counts:       make(map[Kind]uint64),
		Hops:         make(map[Kind]uint64),
		SquareEvents: make(map[int]uint64),
		Events:       len(events),
	}
	for _, e := range events {
		if e.Seq > s.MaxSeq {
			s.MaxSeq = e.Seq
		}
	}
	if lossBuckets > 0 && s.MaxSeq > 0 {
		s.LossTimeline = make([]uint64, lossBuckets)
	}
	for _, e := range events {
		s.Counts[e.Kind]++
		if e.Hops > 0 {
			s.Hops[e.Kind] += uint64(e.Hops)
			s.Transmissions += uint64(e.Hops)
		}
		if e.Square >= 0 {
			s.SquareEvents[e.Square]++
		}
		if e.Kind == KindLoss && s.LossTimeline != nil {
			b := int((e.Seq - 1) * uint64(len(s.LossTimeline)) / s.MaxSeq)
			if b >= len(s.LossTimeline) {
				b = len(s.LossTimeline) - 1
			}
			s.LossTimeline[b]++
		}
	}
	return s
}
