// Package trace provides structured event recording for protocol runs:
// which square exchanged with which, when rounds were activated, where
// packets were lost. Engines accept an optional Tracer; a nil tracer
// costs nothing.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Kind classifies protocol events.
type Kind int

const (
	// KindNear is a single-hop (or orphan-routed) local exchange.
	KindNear Kind = iota + 1
	// KindFar is a long-range affine exchange between representatives.
	KindFar
	// KindActivate marks a square's round starting.
	KindActivate
	// KindDeactivate marks a square's round ending.
	KindDeactivate
	// KindLoss marks a lost data packet.
	KindLoss
	// KindLeafDone marks a completed leaf averaging call.
	KindLeafDone
	// KindReelect marks a representative re-election after the previous
	// representative died (NodeA is the successor, -1 for none).
	KindReelect
	// KindResync marks a revived node pulling current state from a live
	// neighbour (NodeA is the revived node, NodeB the donor).
	KindResync
	// KindChurn marks an observed liveness transition: NodeA is the node,
	// NodeB is 1 for a revival and 0 for a crash.
	KindChurn
	// KindRetransmit marks an ARQ retry: the transport resends a packet
	// whose previous attempt timed out. Hops is 0 — the retry's airtime is
	// charged by the exchange's own near/far/loss event, which carries the
	// full ARQ bill, so trace hop totals still sum to Transmissions.
	KindRetransmit
	// KindTimeout marks an ARQ ack timeout: an outstanding attempt was
	// lost and the sender's retry timer expired. Hops is 0 (see
	// KindRetransmit).
	KindTimeout

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNear:
		return "near"
	case KindFar:
		return "far"
	case KindActivate:
		return "activate"
	case KindDeactivate:
		return "deactivate"
	case KindLoss:
		return "loss"
	case KindLeafDone:
		return "leaf-done"
	case KindReelect:
		return "reelect"
	case KindResync:
		return "resync"
	case KindChurn:
		return "churn"
	case KindRetransmit:
		return "retransmit"
	case KindTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one protocol occurrence.
type Event struct {
	// Seq is the global event sequence number, assigned by the tracer.
	Seq uint64
	// Kind classifies the event.
	Kind Kind
	// Square is the acting square's ID (-1 when not applicable).
	Square int
	// NodeA and NodeB are the participating nodes (-1 when not
	// applicable).
	NodeA, NodeB int32
	// Hops is the transmission cost of the event.
	Hops int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s square=%d nodes=(%d,%d) hops=%d",
		e.Seq, e.Kind, e.Square, e.NodeA, e.NodeB, e.Hops)
}

// Tracer receives protocol events. Implementations must be safe for use
// from a single goroutine (engines are single-threaded); Buffer is
// additionally safe for concurrent reads after the run.
type Tracer interface {
	Record(Event)
}

// Buffer is a bounded ring-buffer tracer that keeps the most recent
// events and per-kind counts for the whole run.
type Buffer struct {
	mu     sync.Mutex
	cap    int
	events []Event
	start  int
	seq    uint64
	counts [numKinds]uint64
}

// NewBuffer returns a buffer keeping the most recent capacity events
// (capacity <= 0 selects 4096).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Buffer{cap: capacity}
}

// Record implements Tracer.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	e.Seq = b.seq
	if e.Kind > 0 && e.Kind < numKinds {
		b.counts[e.Kind]++
	}
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
		return
	}
	b.events[b.start] = e
	b.start = (b.start + 1) % b.cap
}

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.events))
	for i := 0; i < len(b.events); i++ {
		out = append(out, b.events[(b.start+i)%len(b.events)])
	}
	return out
}

// Total returns the number of events recorded over the whole run
// (including evicted ones).
func (b *Buffer) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Count returns how many events of the given kind were recorded over the
// whole run.
func (b *Buffer) Count(k Kind) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if k <= 0 || k >= numKinds {
		return 0
	}
	return b.counts[k]
}

var _ Tracer = (*Buffer)(nil)

// Writer streams formatted events to an io.Writer, optionally filtered
// to a set of kinds (empty filter = all).
type Writer struct {
	W      io.Writer
	Filter []Kind
	seq    uint64
}

// Record implements Tracer.
func (w *Writer) Record(e Event) {
	if len(w.Filter) > 0 {
		keep := false
		for _, k := range w.Filter {
			if e.Kind == k {
				keep = true
				break
			}
		}
		if !keep {
			return
		}
	}
	w.seq++
	e.Seq = w.seq
	fmt.Fprintln(w.W, e.String())
}

var _ Tracer = (*Writer)(nil)

// Multi fans events out to several tracers.
func Multi(tracers ...Tracer) Tracer {
	return multiTracer(tracers)
}

type multiTracer []Tracer

func (m multiTracer) Record(e Event) {
	for _, t := range m {
		t.Record(e)
	}
}
