// Package snap is the framing layer of the binary network snapshot
// format (DESIGN.md §11): a fixed magic, a little-endian format version,
// then a sequence of sections — 4-byte tag, uint64 payload length, the
// payload, and a CRC32-C of the payload — closed by an empty "END "
// section. Everything above the framing (which sections exist and what
// their payloads mean) belongs to internal/netstore; everything below it
// (byte order, checksums, hostile-input discipline) lives here.
//
// The reader is written for hostile inputs: a corrupted or adversarial
// length prefix never allocates more than one growth chunk beyond the
// bytes the stream actually delivers, every payload is checksummed
// before any field of it is interpreted, and all array counts inside a
// payload are validated against the in-memory payload length before
// allocation.
package snap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"geogossip/internal/geo"
)

// Magic opens every snapshot stream. The shape copies PNG's defensive
// prefix: a high bit to catch 7-bit transports, "GGS" to identify the
// format, CRLF + ^Z + LF to catch newline translation and accidental
// text-mode display.
var Magic = [8]byte{0x89, 'G', 'G', 'S', '\r', '\n', 0x1a, '\n'}

// EndTag closes the section sequence; its payload is empty.
const EndTag = "END "

// MaxSection bounds one section's payload. A 1M-node snapshot's largest
// section (the CSR adjacency) is under half a gigabyte; 8 GiB leaves two
// orders of magnitude of headroom while still rejecting absurd length
// prefixes outright.
const MaxSection = 8 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer emits one snapshot stream: header at construction, then one
// Section call per section, then Close (which appends the END section).
// Errors are sticky; check Close's return.
type Writer struct {
	w   io.Writer
	enc Enc
	err error
}

// NewWriter writes the magic + version header to w and returns the
// section writer.
func NewWriter(w io.Writer, version uint32) *Writer {
	sw := &Writer{w: w}
	var hdr [12]byte
	copy(hdr[:8], Magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], version)
	_, sw.err = w.Write(hdr[:])
	return sw
}

// Section buffers one section's payload through fill, then writes the
// framed section (tag, length, payload, checksum). The Enc passed to
// fill is reused across sections, so fill must not retain it.
func (sw *Writer) Section(tag string, fill func(*Enc)) {
	if sw.err != nil {
		return
	}
	if len(tag) != 4 {
		sw.err = fmt.Errorf("snap: section tag %q is not 4 bytes", tag)
		return
	}
	sw.enc.buf = sw.enc.buf[:0]
	if fill != nil {
		fill(&sw.enc)
	}
	payload := sw.enc.buf
	if uint64(len(payload)) > MaxSection {
		sw.err = fmt.Errorf("snap: section %q payload of %d bytes exceeds the %d limit", tag, len(payload), int64(MaxSection))
		return
	}
	var hdr [12]byte
	copy(hdr[:4], tag)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(payload)))
	if _, sw.err = sw.w.Write(hdr[:]); sw.err != nil {
		return
	}
	if _, sw.err = sw.w.Write(payload); sw.err != nil {
		return
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	_, sw.err = sw.w.Write(sum[:])
}

// Close appends the END section and returns the first error the stream
// hit. It does not close the underlying writer.
func (sw *Writer) Close() error {
	sw.Section(EndTag, nil)
	return sw.err
}

// Enc appends little-endian primitives to a section payload.
type Enc struct {
	buf []byte
}

// U64 appends one uint64.
func (e *Enc) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends one int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends one float64 as its IEEE-754 bits, so round trips are
// bit-exact including NaN payloads and signed zeros.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// I32s appends a count-prefixed []int32.
func (e *Enc) I32s(s []int32) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v))
	}
}

// F64s appends a count-prefixed []float64.
func (e *Enc) F64s(s []float64) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.F64(v)
	}
}

// Points appends a count-prefixed point slice (X then Y per point).
func (e *Enc) Points(s []geo.Point) {
	e.U64(uint64(len(s)))
	for _, p := range s {
		e.F64(p.X)
		e.F64(p.Y)
	}
}

// Reader consumes one snapshot stream section by section.
type Reader struct {
	br      *bufio.Reader
	version uint32
	payload []byte // reused across sections
}

// NewReader validates the magic and reads the version header.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("snap: short header: %w", err)
	}
	if [8]byte(hdr[:8]) != Magic {
		return nil, fmt.Errorf("snap: bad magic %x", hdr[:8])
	}
	return &Reader{br: br, version: binary.LittleEndian.Uint32(hdr[8:])}, nil
}

// Version returns the stream's format version.
func (r *Reader) Version() uint32 { return r.version }

// Next reads the next section, verifies its checksum, and returns its
// tag plus a decoder over the payload. The decoder's storage is reused
// by the following Next call. Callers stop at EndTag.
func (r *Reader) Next() (string, *Dec, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return "", nil, fmt.Errorf("snap: truncated section header: %w", err)
	}
	tag := string(hdr[:4])
	for _, c := range hdr[:4] {
		// Tags are uppercase ASCII (plus space): anything else means the
		// stream lost framing — typically a corrupted length on the
		// previous section landing us mid-payload.
		if (c < 'A' || c > 'Z') && (c < '0' || c > '9') && c != ' ' {
			return "", nil, fmt.Errorf("snap: invalid section tag %q (lost framing?)", tag)
		}
	}
	length := binary.LittleEndian.Uint64(hdr[4:])
	payload, err := r.readPayload(length)
	if err != nil {
		return "", nil, fmt.Errorf("snap: section %q: %w", tag, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r.br, sum[:]); err != nil {
		return "", nil, fmt.Errorf("snap: section %q: truncated checksum: %w", tag, err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(sum[:]); got != want {
		return "", nil, fmt.Errorf("snap: section %q: checksum mismatch (payload %08x, trailer %08x)", tag, got, want)
	}
	return tag, &Dec{b: payload}, nil
}

// readPayload reads a declared-length payload into the reader's reusable
// buffer. Growth is chunked: a hostile length prefix on a short stream
// fails with a truncation error after allocating at most one chunk past
// the bytes actually delivered, never the declared size.
func (r *Reader) readPayload(n uint64) ([]byte, error) {
	if n > MaxSection {
		return nil, fmt.Errorf("payload of %d bytes exceeds the %d limit", n, int64(MaxSection))
	}
	want := int(n)
	buf := r.payload[:0]
	const chunk = 1 << 20
	for len(buf) < want {
		step := want - len(buf)
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		if cap(buf) < start+step {
			// Grow geometrically (capped at the declared size) so large
			// sections cost O(n) copying, but never reserve more than
			// double the bytes already delivered plus one chunk — a
			// hostile length prefix still can't force a huge allocation.
			newCap := 2 * cap(buf)
			if newCap < start+step {
				newCap = start + step
			}
			if newCap > want {
				newCap = want
			}
			grown := make([]byte, start, newCap)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:start+step]
		if _, err := io.ReadFull(r.br, buf[start:]); err != nil {
			r.payload = buf[:0]
			return nil, fmt.Errorf("truncated payload (%d of %d bytes): %w", start, want, err)
		}
	}
	r.payload = buf
	return buf, nil
}

// Dec reads little-endian primitives out of one section payload. Every
// method validates remaining length before touching the buffer, and
// slice reads validate their count against the payload before
// allocating.
type Dec struct {
	b   []byte
	off int
}

func (d *Dec) remaining() int { return len(d.b) - d.off }

// U64 reads one uint64.
func (d *Dec) U64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("snap: payload underrun at offset %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// I64 reads one int64.
func (d *Dec) I64() (int64, error) {
	v, err := d.U64()
	return int64(v), err
}

// F64 reads one float64.
func (d *Dec) F64() (float64, error) {
	v, err := d.U64()
	return math.Float64frombits(v), err
}

// I32s reads a count-prefixed []int32.
func (d *Dec) I32s() ([]int32, error) {
	count, err := d.U64()
	if err != nil {
		return nil, err
	}
	if count > uint64(d.remaining())/4 {
		return nil, fmt.Errorf("snap: int32 array count %d exceeds the %d payload bytes left", count, d.remaining())
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return out, nil
}

// F64s reads a count-prefixed []float64.
func (d *Dec) F64s() ([]float64, error) {
	count, err := d.U64()
	if err != nil {
		return nil, err
	}
	if count > uint64(d.remaining())/8 {
		return nil, fmt.Errorf("snap: float64 array count %d exceeds the %d payload bytes left", count, d.remaining())
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return out, nil
}

// Points reads a count-prefixed point slice.
func (d *Dec) Points() ([]geo.Point, error) {
	count, err := d.U64()
	if err != nil {
		return nil, err
	}
	if count > uint64(d.remaining())/16 {
		return nil, fmt.Errorf("snap: point array count %d exceeds the %d payload bytes left", count, d.remaining())
	}
	out := make([]geo.Point, count)
	for i := range out {
		out[i].X = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		out[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off+8:]))
		d.off += 16
	}
	return out, nil
}

// Done errors unless the payload was consumed exactly — trailing bytes
// mean the writer and reader disagree about the section's schema.
func (d *Dec) Done() error {
	if d.remaining() != 0 {
		return fmt.Errorf("snap: %d unconsumed payload bytes", d.remaining())
	}
	return nil
}
