package snap

import (
	"bytes"
	"encoding/binary"
	"math"
	"runtime"
	"strings"
	"testing"

	"geogossip/internal/geo"
)

func TestRoundTrip(t *testing.T) {
	pts := []geo.Point{{X: 0.25, Y: 0.75}, {X: math.Nextafter(1, 0), Y: 0}}
	i32 := []int32{0, -1, 7, math.MaxInt32, math.MinInt32}
	f64 := []float64{0, math.Copysign(0, -1), 1e-300, math.Inf(1)}

	var buf bytes.Buffer
	w := NewWriter(&buf, 42)
	w.Section("ABCD", func(e *Enc) {
		e.U64(123)
		e.I64(-5)
		e.F64(math.Pi)
		e.I32s(i32)
		e.F64s(f64)
		e.Points(pts)
	})
	w.Section("EMTY", nil)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Version() != 42 {
		t.Fatalf("version = %d, want 42", r.Version())
	}
	tag, d, err := r.Next()
	if err != nil || tag != "ABCD" {
		t.Fatalf("Next = %q, %v", tag, err)
	}
	if v, _ := d.U64(); v != 123 {
		t.Fatalf("U64 = %d", v)
	}
	if v, _ := d.I64(); v != -5 {
		t.Fatalf("I64 = %d", v)
	}
	if v, _ := d.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	gi, _ := d.I32s()
	if len(gi) != len(i32) {
		t.Fatalf("I32s len = %d", len(gi))
	}
	for i := range gi {
		if gi[i] != i32[i] {
			t.Fatalf("I32s[%d] = %d, want %d", i, gi[i], i32[i])
		}
	}
	gf, _ := d.F64s()
	for i := range gf {
		if math.Float64bits(gf[i]) != math.Float64bits(f64[i]) {
			t.Fatalf("F64s[%d] = %v, want %v", i, gf[i], f64[i])
		}
	}
	gp, _ := d.Points()
	for i := range gp {
		if gp[i] != pts[i] {
			t.Fatalf("Points[%d] = %v, want %v", i, gp[i], pts[i])
		}
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if tag, d, err = r.Next(); err != nil || tag != "EMTY" || d.remaining() != 0 {
		t.Fatalf("empty section: %q %d %v", tag, d.remaining(), err)
	}
	if tag, _, err = r.Next(); err != nil || tag != EndTag {
		t.Fatalf("end section: %q %v", tag, err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("{\"version\":1}")); err == nil {
		t.Fatal("JSON accepted as snapshot")
	}
	if _, err := NewReader(strings.NewReader("\x89GGS")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

// A hostile length prefix must fail with a truncation error without the
// reader allocating anything near the declared size.
func TestHostileLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	if err := w.err; err != nil {
		t.Fatal(err)
	}
	var hdr [12]byte
	copy(hdr[:4], "HUGE")
	binary.LittleEndian.PutUint64(hdr[4:], 4<<30) // 4 GiB declared
	buf.Write(hdr[:])
	buf.WriteString("only a few real bytes")

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, _, err = r.Next()
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("hostile length accepted")
	}
	if !strings.Contains(err.Error(), "truncated payload") {
		t.Fatalf("unexpected error: %v", err)
	}
	// TotalAlloc is monotonic: the failed read may allocate a ~1MB growth
	// chunk (plus error machinery), never anything near the declared 4 GiB.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("hostile length allocated %d bytes (want ≤ one ~1MB chunk + slack)", grew)
	}

	// A length over MaxSection is rejected before any read at all.
	buf.Reset()
	NewWriter(&buf, 1)
	binary.LittleEndian.PutUint64(hdr[4:], MaxSection+1)
	buf.Write(hdr[:])
	r, err = NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err = r.Next(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized length: %v", err)
	}
}

func TestChecksumCatchesBitFlip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.Section("DATA", func(e *Enc) { e.I32s([]int32{1, 2, 3, 4}) })
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-20] ^= 0x40 // inside DATA's payload or checksum
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, err := r.Next()
		if err != nil {
			return // corruption surfaced as a clean error
		}
	}
}

func TestHostileArrayCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.Section("DATA", func(e *Enc) { e.U64(1 << 60) }) // count with no elements
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.I32s(); err == nil {
		t.Fatal("absurd array count accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.Section("DATA", func(e *Enc) { e.F64s(make([]float64, 100)) })
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 37 {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header itself truncated: fine
		}
		sawErr := false
		for i := 0; i < 10; i++ {
			tag, _, err := r.Next()
			if err != nil {
				sawErr = true
				break
			}
			if tag == EndTag {
				break
			}
		}
		if cut < len(full) && !sawErr {
			t.Fatalf("cut at %d of %d read to END without error", cut, len(full))
		}
	}
}
