package hier

import (
	"reflect"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/par"
	"geogossip/internal/rng"
)

// TestBuildWorkersByteIdentity asserts that hierarchy construction is
// worker-count invariant: square IDs, rects, member lists, reps, role
// lists and node tables all match the serial build exactly at worker
// counts {1, 2, NumCPU}.
func TestBuildWorkersByteIdentity(t *testing.T) {
	for _, n := range []int{50, 1024, 5000} {
		pts := graph.UniformPoints(n, rng.New(21).Stream("points"))
		serial, err := Build(pts, Config{})
		if err != nil {
			t.Fatalf("serial build n=%d: %v", n, err)
		}
		counts := []int{1, 2, par.NumCPU()}
		for _, w := range counts {
			parh, err := Build(pts, Config{Workers: w})
			if err != nil {
				t.Fatalf("parallel build n=%d workers=%d: %v", n, w, err)
			}
			if len(parh.Squares) != len(serial.Squares) {
				t.Fatalf("n=%d workers=%d: %d squares, want %d", n, w, len(parh.Squares), len(serial.Squares))
			}
			for i, sq := range parh.Squares {
				ref := serial.Squares[i]
				if !reflect.DeepEqual(*sq, *ref) {
					t.Fatalf("n=%d workers=%d: square %d differs:\n got %+v\nwant %+v", n, w, i, *sq, *ref)
				}
			}
			if parh.Ell != serial.Ell || !reflect.DeepEqual(parh.Branching, serial.Branching) {
				t.Fatalf("n=%d workers=%d: shape differs", n, w)
			}
			if !reflect.DeepEqual(parh.NodeLeaf, serial.NodeLeaf) {
				t.Fatalf("n=%d workers=%d: NodeLeaf differs", n, w)
			}
			if !reflect.DeepEqual(parh.NodeLevel, serial.NodeLevel) {
				t.Fatalf("n=%d workers=%d: NodeLevel differs", n, w)
			}
			if !reflect.DeepEqual(parh.RepRoles, serial.RepRoles) {
				t.Fatalf("n=%d workers=%d: RepRoles differs", n, w)
			}
			if err := parh.Validate(); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
		}
	}
}
