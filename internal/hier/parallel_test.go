package hier

import (
	"reflect"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/par"
	"geogossip/internal/rng"
)

// TestBuildWorkersByteIdentity asserts that hierarchy construction is
// worker-count invariant: square IDs, rects, member lists, reps, role
// lists and node tables all match the serial build exactly at worker
// counts {1, 2, NumCPU}.
func TestBuildWorkersByteIdentity(t *testing.T) {
	for _, n := range []int{50, 1024, 5000} {
		pts := graph.UniformPoints(n, rng.New(21).Stream("points"))
		serial, err := Build(pts, Config{})
		if err != nil {
			t.Fatalf("serial build n=%d: %v", n, err)
		}
		counts := []int{1, 2, par.NumCPU()}
		for _, w := range counts {
			parh, err := Build(pts, Config{Workers: w})
			if err != nil {
				t.Fatalf("parallel build n=%d workers=%d: %v", n, w, err)
			}
			if len(parh.Squares) != len(serial.Squares) {
				t.Fatalf("n=%d workers=%d: %d squares, want %d", n, w, len(parh.Squares), len(serial.Squares))
			}
			for i, sq := range parh.Squares {
				ref := serial.Squares[i]
				if !reflect.DeepEqual(*sq, *ref) {
					t.Fatalf("n=%d workers=%d: square %d differs:\n got %+v\nwant %+v", n, w, i, *sq, *ref)
				}
			}
			if parh.Ell != serial.Ell || !reflect.DeepEqual(parh.Branching, serial.Branching) {
				t.Fatalf("n=%d workers=%d: shape differs", n, w)
			}
			if !reflect.DeepEqual(parh.NodeLeaf, serial.NodeLeaf) {
				t.Fatalf("n=%d workers=%d: NodeLeaf differs", n, w)
			}
			if !reflect.DeepEqual(parh.NodeLevel, serial.NodeLevel) {
				t.Fatalf("n=%d workers=%d: NodeLevel differs", n, w)
			}
			if !reflect.DeepEqual(parh.RepRoles, serial.RepRoles) {
				t.Fatalf("n=%d workers=%d: RepRoles differs", n, w)
			}
			if err := parh.Validate(); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
		}
	}
}

// TestBuildAllocBound guards the counting-pass construction: Build packs
// each level's squares, child lists and member lists into flat pre-sized
// blocks, so allocation count is O(levels + scratch), not O(squares).
// The append-based build paid ~2,500 allocs at n = 4096.
func TestBuildAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting under -short")
	}
	pts := graph.UniformPoints(4096, rng.New(21).Stream("points"))
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Build(pts, Config{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Fatalf("Build allocated %.0f times at n=4096; the flat-block construction budget is 64", allocs)
	}
}
