package hier

import (
	"math"
	"testing"
)

// aliveExcept returns a liveness oracle declaring exactly the listed
// nodes dead.
func aliveExcept(dead ...int32) func(int32) bool {
	m := make(map[int32]bool, len(dead))
	for _, d := range dead {
		m[d] = true
	}
	return func(i int32) bool { return !m[i] }
}

func TestReelectSquareNearestAliveTakeover(t *testing.T) {
	h := buildN(t, 600, 42, Config{})
	// Kill the representative of every leaf square in turn and check the
	// successor is the nearest alive member.
	for _, sq := range h.Leaves() {
		if sq.Rep < 0 || len(sq.Members) < 2 {
			continue
		}
		hc := h.Clone()
		csq := hc.Squares[sq.ID]
		old := csq.Rep
		next, changed := hc.ReelectSquare(sq.ID, aliveExcept(old))
		if !changed {
			t.Fatalf("square %d: dead rep %d not replaced", sq.ID, old)
		}
		if next == old || next < 0 {
			t.Fatalf("square %d: successor %d invalid (old %d)", sq.ID, next, old)
		}
		// Successor is the member nearest the centre among survivors.
		c := csq.Rect.Center()
		best := math.Inf(1)
		var want int32 = -1
		for _, m := range csq.Members {
			if m == old {
				continue
			}
			if d2 := hc.points[m].Dist2(c); d2 < best {
				best = d2
				want = m
			}
		}
		if next != want {
			t.Fatalf("square %d: successor %d, want nearest alive %d", sq.ID, next, want)
		}
		if csq.Rep != next {
			t.Fatalf("square %d: Rep field %d not updated to %d", sq.ID, csq.Rep, next)
		}
	}
}

func TestReelectKeepsRolesAndLevelsConsistent(t *testing.T) {
	h := buildN(t, 800, 7, Config{}).Clone()
	// Kill the root representative plus every depth-1 representative: the
	// highest-level roles all change hands at once.
	var dead []int32
	root := h.Root()
	dead = append(dead, root.Rep)
	for _, cid := range root.Children {
		if r := h.Squares[cid].Rep; r >= 0 {
			dead = append(dead, r)
		}
	}
	changed := h.Reelect(aliveExcept(dead...))
	if len(changed) == 0 {
		t.Fatal("no squares re-elected")
	}
	// RepRoles and Square.Rep agree in both directions.
	for rep, roles := range h.RepRoles {
		for _, id := range roles {
			if h.Squares[id].Rep != rep {
				t.Fatalf("RepRoles says %d represents square %d, square says %d", rep, id, h.Squares[id].Rep)
			}
		}
	}
	for _, sq := range h.Squares {
		if sq.Rep < 0 {
			continue
		}
		found := false
		for _, id := range h.RepRoles[sq.Rep] {
			if id == sq.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("square %d rep %d missing from RepRoles", sq.ID, sq.Rep)
		}
	}
	// NodeLevel is the max level over each node's roles, 0 otherwise.
	for i := range h.NodeLevel {
		want := int32(0)
		for _, id := range h.RepRoles[int32(i)] {
			if l := int32(h.Squares[id].Level); l > want {
				want = l
			}
		}
		if h.NodeLevel[i] != want {
			t.Fatalf("node %d level %d, want %d", i, h.NodeLevel[i], want)
		}
	}
	// The structural invariants survive the churn.
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after re-election: %v", err)
	}
	// Dead nodes hold no roles.
	for _, d := range dead {
		if len(h.RepRoles[d]) != 0 {
			t.Fatalf("dead node %d still holds roles %v", d, h.RepRoles[d])
		}
	}
}

func TestReelectTotalSquareDeath(t *testing.T) {
	h := buildN(t, 400, 3, Config{}).Clone()
	// Kill every member of one leaf: the square ends up rep-less and
	// Validate still passes.
	var victim *Square
	for _, sq := range h.Leaves() {
		if len(sq.Members) > 0 {
			victim = sq
			break
		}
	}
	if _, changed := h.ReelectSquare(victim.ID, aliveExcept(victim.Members...)); !changed {
		t.Fatal("total death did not change the representative")
	}
	if victim.Rep != -1 {
		t.Fatalf("fully dead square has rep %d", victim.Rep)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after total square death: %v", err)
	}
}

func TestReelectRevivedRepDoesNotReclaimSeat(t *testing.T) {
	h := buildN(t, 400, 9, Config{}).Clone()
	var sq *Square
	for _, s := range h.Leaves() {
		if s.Rep >= 0 && len(s.Members) >= 3 {
			sq = s
			break
		}
	}
	old := sq.Rep
	if _, changed := h.ReelectSquare(sq.ID, aliveExcept(old)); !changed {
		t.Fatal("no takeover")
	}
	successor := sq.Rep
	// The old rep revives; with a live successor in place a sweep must
	// not churn the seat again.
	if changed := h.Reelect(func(int32) bool { return true }); len(changed) != 0 {
		t.Fatalf("sweep with everyone alive re-elected squares %v", changed)
	}
	if sq.Rep != successor {
		t.Fatalf("square %d rep churned from %d to %d with everyone alive", sq.ID, successor, sq.Rep)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after revival sweep: %v", err)
	}
}

// TestReelectRecoversFromTotalDeath: flapping churn can empty a square
// of live members; when they revive, the next sweep must re-seat a
// representative rather than leaving the square silenced forever.
func TestReelectRecoversFromTotalDeath(t *testing.T) {
	h := buildN(t, 400, 13, Config{}).Clone()
	var victim *Square
	for _, s := range h.Leaves() {
		if s.Rep >= 0 && len(s.Members) >= 2 {
			victim = s
			break
		}
	}
	if _, changed := h.ReelectSquare(victim.ID, aliveExcept(victim.Members...)); !changed || victim.Rep != -1 {
		t.Fatalf("total death not registered (rep %d)", victim.Rep)
	}
	// Everyone revives: the sweep re-seats the square, and the new rep
	// is the nearest member again.
	changed := h.Reelect(func(int32) bool { return true })
	reseated := false
	for _, id := range changed {
		if id == victim.ID {
			reseated = true
		}
	}
	if !reseated || victim.Rep < 0 {
		t.Fatalf("revived square not re-seated (rep %d, changed %v)", victim.Rep, changed)
	}
	want := nearestMember(h.points, victim.Members, victim.Rect.Center())
	if victim.Rep != want {
		t.Fatalf("re-seated rep %d, want nearest member %d", victim.Rep, want)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate after recovery from total death: %v", err)
	}
}

func TestCloneIsolatesMutation(t *testing.T) {
	h := buildN(t, 500, 11, Config{})
	orig := make(map[int]int32, len(h.Squares))
	for _, sq := range h.Squares {
		orig[sq.ID] = sq.Rep
	}
	origLevels := append([]int32(nil), h.NodeLevel...)

	c := h.Clone()
	c.Reelect(func(i int32) bool { return i%2 == 0 }) // kill every odd node

	for _, sq := range h.Squares {
		if sq.Rep != orig[sq.ID] {
			t.Fatalf("clone mutation leaked into square %d rep", sq.ID)
		}
	}
	for i, l := range h.NodeLevel {
		if l != origLevels[i] {
			t.Fatalf("clone mutation leaked into NodeLevel[%d]", i)
		}
	}
	if h.succeeded != nil {
		t.Fatal("clone mutation leaked the succession table")
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid after mass churn: %v", err)
	}
}
