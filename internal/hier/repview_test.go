package hier

import (
	"testing"

	"geogossip/internal/rng"
)

// checkViewMatchesClone asserts the view's representative table and role
// lists agree with a mutated clone everywhere.
func checkViewMatchesClone(t *testing.T, v *RepView, hc *Hierarchy) {
	t.Helper()
	for _, sq := range hc.Squares {
		if got, want := v.Rep(sq.ID), sq.Rep; got != want {
			t.Fatalf("square %d: view rep %d, clone rep %d", sq.ID, got, want)
		}
	}
	n := len(hc.NodeLeaf)
	for i := int32(0); int(i) < n; i++ {
		got := v.Roles(i)
		want := hc.RepRoles[i]
		if len(got) != len(want) {
			t.Fatalf("node %d: view roles %v, clone roles %v", i, got, want)
		}
		for k := range want {
			if int(got[k]) != want[k] {
				t.Fatalf("node %d: view roles %v, clone roles %v", i, got, want)
			}
		}
	}
}

// TestRepViewMatchesCloneUnderChurn drives a RepView and a Clone through
// the identical randomized kill/revive/re-elect sequence and asserts they
// agree square for square and role for role after every step — the
// bit-identity contract that lets engines replace the per-run Clone.
func TestRepViewMatchesCloneUnderChurn(t *testing.T) {
	h := buildN(t, 800, 3, Config{})
	v := NewRepView(h)
	hc := h.Clone()
	n := len(h.NodeLeaf)
	dead := make(map[int32]bool)
	alive := func(i int32) bool { return !dead[i] }
	r := rng.New(99)
	var bufView []int
	for step := 0; step < 40; step++ {
		// Flip some liveness: kill a few, revive a few.
		for k := 0; k < 10; k++ {
			i := int32(r.IntN(n))
			if r.Bernoulli(0.7) {
				dead[i] = true
			} else {
				delete(dead, i)
			}
		}
		if r.Bernoulli(0.5) {
			// Full sweep, both sides.
			gotChanged := v.Reelect(alive, bufView[:0])
			wantChanged := hc.Reelect(alive)
			if len(gotChanged) != len(wantChanged) {
				t.Fatalf("step %d: view changed %v, clone changed %v", step, gotChanged, wantChanged)
			}
			for k := range wantChanged {
				if gotChanged[k] != wantChanged[k] {
					t.Fatalf("step %d: view changed %v, clone changed %v", step, gotChanged, wantChanged)
				}
			}
		} else {
			// Single-square re-election on a random populated square.
			id := r.IntN(len(h.Squares))
			if len(h.Squares[id].Members) == 0 {
				continue
			}
			gotRep, gotCh := v.ReelectSquare(id, alive)
			wantRep, wantCh := hc.ReelectSquare(id, alive)
			if gotRep != wantRep || gotCh != wantCh {
				t.Fatalf("step %d square %d: view (%d, %v), clone (%d, %v)",
					step, id, gotRep, gotCh, wantRep, wantCh)
			}
		}
		checkViewMatchesClone(t, v, hc)
	}
	// The base hierarchy must be untouched throughout.
	if err := h.Validate(); err != nil {
		t.Fatalf("base hierarchy mutated: %v", err)
	}
	for _, sq := range h.Squares {
		if sq.Rep != v.repBase[sq.ID] {
			t.Fatalf("base square %d rep changed to %d", sq.ID, sq.Rep)
		}
	}
}

// TestRepViewResetRestoresBase proves Reset reverts every overlay write
// and a re-used view replays a fresh clone exactly (the pooled-run
// contract).
func TestRepViewResetRestoresBase(t *testing.T) {
	h := buildN(t, 600, 11, Config{})
	v := NewRepView(h)

	// Mutate heavily: kill all original reps.
	deadReps := make(map[int32]bool)
	for _, rep := range h.Reps() {
		deadReps[rep] = true
	}
	alive := func(i int32) bool { return !deadReps[i] }
	changed := v.Reelect(alive, nil)
	if len(changed) == 0 {
		t.Fatal("no re-elections happened; test is vacuous")
	}

	v.Reset()
	for _, sq := range h.Squares {
		if v.Rep(sq.ID) != sq.Rep {
			t.Fatalf("after Reset: square %d rep %d, want base %d", sq.ID, v.Rep(sq.ID), sq.Rep)
		}
	}
	for i := int32(0); int(i) < len(h.NodeLeaf); i++ {
		got := v.Roles(i)
		want := h.RepRoles[i]
		if len(got) != len(want) {
			t.Fatalf("after Reset: node %d roles %v, want %v", i, got, want)
		}
	}

	// A second run on the reset view must match a fresh clone.
	hc := h.Clone()
	v.Reelect(alive, nil)
	hc.Reelect(alive)
	checkViewMatchesClone(t, v, hc)

	// Rebinding to the same hierarchy must be cheap and equivalent to
	// Reset.
	v.Bind(h)
	for _, sq := range h.Squares {
		if v.Rep(sq.ID) != sq.Rep {
			t.Fatalf("after rebind: square %d rep %d, want base %d", sq.ID, v.Rep(sq.ID), sq.Rep)
		}
	}
}
