// Package hier builds the recursive square hierarchy of §4.1: the unit
// square is partitioned into n₁ subsquares, where n₁ is the nearest
// integer to sqrt(n) that is the square of an even number; each subsquare
// with expected occupancy above a threshold is partitioned again by the
// same rule. The recursion bottoms out at squares of polylogarithmic
// expected size, giving ℓ = Θ(log log n) levels.
//
// Each square owns a representative s(□), the member node nearest its
// centre; the even-sided grids guarantee parent and child centres never
// coincide, so w.h.p. a node represents at most one square (the
// implementation tolerates and reports collisions). A node's level is
// ℓ − r if it represents a depth-r square, 0 otherwise; the root
// representative s(unit square) has level ℓ.
//
// Substitution note (DESIGN.md §4.2): the paper recurses while
// E# > (log n)^8, which exceeds n itself for every simulable n. We keep
// the branching rule exactly and replace only the stopping threshold with
// the configurable LeafTarget (default Θ(log n)).
package hier

import (
	"fmt"
	"math"
	"sort"

	"geogossip/internal/geo"
	"geogossip/internal/par"
)

// Config controls hierarchy construction.
type Config struct {
	// LeafTarget stops the recursion: a square is a leaf when its expected
	// occupancy E# is at most LeafTarget. Zero selects the default
	// max(16, 4·log₂(n+1)).
	LeafTarget float64
	// MaxDepth caps the recursion depth as a safety net. Zero selects 12.
	MaxDepth int
	// Workers sizes the construction worker pool: zero selects GOMAXPROCS
	// (par.Resolve), one builds serially inline. Any count produces a
	// byte-identical hierarchy (square IDs, member order, representatives
	// and role lists are all worker-count invariant), so the knob only
	// trades wall-clock for cores.
	Workers int
}

func (c Config) withDefaults(n int) Config {
	if c.LeafTarget <= 0 {
		c.LeafTarget = math.Max(16, 4*math.Log2(float64(n)+1))
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	return c
}

// Square is one node of the partition tree.
type Square struct {
	// ID indexes the square in Hierarchy.Squares (BFS order, root = 0).
	ID int
	// Rect is the square's half-open region.
	Rect geo.Rect
	// Depth is the recursion depth r (root = 0).
	Depth int
	// Parent is the parent square's ID, or -1 for the root.
	Parent int
	// Children lists child square IDs in row-major grid order; nil for a
	// leaf.
	Children []int
	// GridK is the side of the child grid (children = GridK²); 0 for a
	// leaf.
	GridK int
	// Expected is E#□, the expected number of sensors in the square
	// (n · area).
	Expected float64
	// Members lists the node ids inside the square, sorted ascending.
	Members []int32
	// Rep is the member nearest the square's centre (s(□)), or -1 if the
	// square is empty.
	Rep int32
	// Level is ℓ − Depth, the protocol level of the square's
	// representative.
	Level int
}

// IsLeaf reports whether the square has no children.
func (s *Square) IsLeaf() bool { return len(s.Children) == 0 }

// Hierarchy is the complete partition tree over a fixed point set.
type Hierarchy struct {
	// Squares lists every square in BFS order; Squares[0] is the root.
	Squares []*Square
	// Ell is ℓ = 1 + (deepest depth), the number of levels in the
	// recursion (paper §4.1).
	Ell int
	// Branching[r] is the number of children of every depth-r square
	// (uniform across siblings because expected occupancy is).
	Branching []int
	// NodeLeaf maps each node to the ID of its leaf square.
	NodeLeaf []int32
	// NodeLevel maps each node to its protocol level (0 for
	// non-representatives; the maximum across roles for the rare node
	// representing multiple squares).
	NodeLevel []int32
	// RepRoles maps each node to the IDs of the squares it represents
	// (nil for most nodes).
	RepRoles map[int32][]int

	points []geo.Point
	// succeeded marks squares whose representative was installed by
	// re-election (indexed by square ID; nil until the first one).
	// Validate relaxes its nearest-centre check for them: the successor
	// was nearest among the members *alive at election time*, which a
	// liveness-blind validator cannot re-derive.
	succeeded []bool
}

// NearestEvenSquare returns the integer of the form (2k)², k ≥ 1, nearest
// to x, breaking ties toward the smaller value.
func NearestEvenSquare(x float64) int {
	if x < 4 {
		return 4
	}
	k := math.Sqrt(x) / 2
	lo := int(math.Floor(k))
	if lo < 1 {
		lo = 1
	}
	best, bestDiff := 0, math.Inf(1)
	for _, kk := range []int{lo, lo + 1} {
		v := (2 * kk) * (2 * kk)
		diff := math.Abs(float64(v) - x)
		if diff < bestDiff || (diff == bestDiff && v < best) {
			best, bestDiff = v, diff
		}
	}
	return best
}

// Build constructs the hierarchy over the given points (all inside the
// unit square).
func Build(points []geo.Point, cfg Config) (*Hierarchy, error) {
	n := len(points)
	cfg = cfg.withDefaults(n)
	unit := geo.UnitSquare()
	for i, p := range points {
		if !unit.Contains(p) {
			return nil, fmt.Errorf("hier: point %d = %v outside the unit square", i, p)
		}
	}

	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	root := &Square{
		ID:       0,
		Rect:     unit,
		Depth:    0,
		Parent:   -1,
		Expected: float64(n),
		Members:  all,
	}
	h := &Hierarchy{
		Squares: []*Square{root},
		points:  points,
	}

	// Breadth-first expansion; all squares at the same depth share the
	// same Expected, so the stopping rule is depth-uniform and the tree
	// has all leaves at the same depth. Each level is built into three
	// flat pre-sized blocks — squares, child-ID lists, and member lists —
	// with the same counting-pass idiom graph.Build uses for its CSR
	// adjacency, so construction performs O(levels) allocations instead
	// of O(squares) append growth.
	frontier := []*Square{root}
	for len(frontier) > 0 {
		sq := frontier[0]
		if sq.Expected <= cfg.LeafTarget || sq.Depth >= cfg.MaxDepth {
			break // entire frontier is leaves
		}
		branch := NearestEvenSquare(math.Sqrt(sq.Expected))
		childExpected := sq.Expected / float64(branch)
		if childExpected < 2 {
			break // further splitting would create mostly-empty squares
		}
		h.Branching = append(h.Branching, branch)
		k := int(math.Round(math.Sqrt(float64(branch))))

		// Per-parent offsets into the level's flat member block: children
		// partition their parent's members, so the level's lists pack into
		// one block of exactly the frontier's total member count.
		nf := len(frontier)
		memberOff := make([]int, nf+1)
		for pi, parent := range frontier {
			memberOff[pi+1] = memberOff[pi] + len(parent.Members)
		}
		squares := make([]Square, nf*branch)
		childIDs := make([]int, nf*branch)
		memberBlock := make([]int32, memberOff[nf])
		baseID := len(h.Squares)

		// Phase A (parallel over parents): partition each parent's members
		// into its child grid. Each parent writes a disjoint region of the
		// flat blocks, and its bucketing is a pure function of its own
		// member list, so sharding the frontier across workers cannot
		// change any bucket's content or order. Counting pass first, then
		// placement into exact pre-sized slots — no per-child append
		// growth.
		par.Blocks(cfg.Workers, nf, func(lo, hi int) {
			cells := make([]geo.Rect, 0, branch)
			counts := make([]int, branch)
			starts := make([]int, branch)
			cursor := make([]int, branch)
			for pi := lo; pi < hi; pi++ {
				parent := frontier[pi]
				cells = parent.Rect.AppendSplitGrid(cells[:0], k)
				for ci := range counts {
					counts[ci] = 0
				}
				for _, m := range parent.Members {
					row, col := parent.Rect.GridCellOf(points[m], k)
					counts[row*k+col]++
				}
				off := memberOff[pi]
				for ci, c := range counts {
					starts[ci], cursor[ci] = off, off
					off += c
				}
				for _, m := range parent.Members {
					row, col := parent.Rect.GridCellOf(points[m], k)
					ci := row*k + col
					memberBlock[cursor[ci]] = m
					cursor[ci]++
				}
				parent.GridK = k
				cbase := pi * branch
				for ci := 0; ci < branch; ci++ {
					id := baseID + cbase + ci
					childIDs[cbase+ci] = id
					var members []int32
					if counts[ci] > 0 {
						members = memberBlock[starts[ci] : starts[ci]+counts[ci] : starts[ci]+counts[ci]]
					}
					squares[cbase+ci] = Square{
						ID:       id,
						Rect:     cells[ci],
						Depth:    parent.Depth + 1,
						Parent:   parent.ID,
						Expected: childExpected,
						Members:  members,
					}
				}
				parent.Children = childIDs[cbase : cbase+branch : cbase+branch]
			}
		})
		// Phase B (serial): stitch the level into the BFS square list. IDs
		// were assigned from the frontier order, so the list matches the
		// serial build exactly.
		if need := len(h.Squares) + len(squares); cap(h.Squares) < need {
			grown := make([]*Square, len(h.Squares), need)
			copy(grown, h.Squares)
			h.Squares = grown
		}
		next := make([]*Square, len(squares))
		for i := range squares {
			next[i] = &squares[i]
			h.Squares = append(h.Squares, &squares[i])
		}
		frontier = next
	}

	maxDepth := h.Squares[len(h.Squares)-1].Depth
	h.Ell = maxDepth + 1
	h.NodeLeaf = make([]int32, n)
	h.NodeLevel = make([]int32, n)
	// Parallel pass: per-square level + representative (pure per square)
	// and the leaf table (leaves own disjoint member sets, so the NodeLeaf
	// writes never collide).
	par.Blocks(cfg.Workers, len(h.Squares), func(lo, hi int) {
		for _, sq := range h.Squares[lo:hi] {
			sq.Level = h.Ell - sq.Depth
			sq.Rep = nearestMember(points, sq.Members, sq.Rect.Center())
			if sq.IsLeaf() {
				for _, m := range sq.Members {
					h.NodeLeaf[m] = int32(sq.ID)
				}
			}
		}
	})
	// Serial passes in BFS order: role lists and node levels. Role lists
	// are counted first and packed into one flat block (each rep's slice
	// carries exact capacity, so a later re-election append copies out
	// instead of clobbering a neighbour); per-rep square order is the BFS
	// order the append-based build produced.
	roleCount := make([]int32, n)
	reps, totalRoles := 0, 0
	for _, sq := range h.Squares {
		if sq.Rep >= 0 {
			if roleCount[sq.Rep] == 0 {
				reps++
			}
			roleCount[sq.Rep]++
			totalRoles++
		}
	}
	cursor := make([]int32, n)
	off := int32(0)
	for i, c := range roleCount {
		cursor[i] = off
		off += c
	}
	roleBlock := make([]int, totalRoles)
	h.RepRoles = make(map[int32][]int, reps)
	for _, sq := range h.Squares {
		if sq.Rep >= 0 {
			roleBlock[cursor[sq.Rep]] = sq.ID
			cursor[sq.Rep]++
			if int32(sq.Level) > h.NodeLevel[sq.Rep] {
				h.NodeLevel[sq.Rep] = int32(sq.Level)
			}
		}
	}
	for i := 0; i < n; i++ {
		if c := roleCount[i]; c > 0 {
			end := cursor[i]
			h.RepRoles[int32(i)] = roleBlock[end-c : end : end]
		}
	}
	return h, nil
}

// Footprint reports the heap bytes held by the hierarchy's tables: the
// square structs themselves, the per-square member lists (n ids per
// populated depth), and the per-node leaf/level tables. RepRoles is small
// (one entry per represented square) and counted with the squares.
func (h *Hierarchy) Footprint() int {
	const squareSize = 160 // unsafe.Sizeof(Square{}) rounded up, plus slot
	bytes := squareSize * len(h.Squares)
	for _, sq := range h.Squares {
		bytes += 4*len(sq.Members) + 8*len(sq.Children)
	}
	bytes += 4*len(h.NodeLeaf) + 4*len(h.NodeLevel)
	bytes += 16 * len(h.RepRoles)
	return bytes
}

func nearestMember(points []geo.Point, members []int32, c geo.Point) int32 {
	best := int32(-1)
	bestD2 := math.Inf(1)
	for _, m := range members {
		if d2 := points[m].Dist2(c); d2 < bestD2 {
			best = m
			bestD2 = d2
		}
	}
	return best
}

// Root returns the root square.
func (h *Hierarchy) Root() *Square { return h.Squares[0] }

// Reps returns the distinct representative node ids across all squares,
// sorted ascending — the node set adversarial rep-targeted churn aims
// at.
func (h *Hierarchy) Reps() []int32 {
	out := make([]int32, 0, len(h.RepRoles))
	for rep := range h.RepRoles {
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the hierarchy's mutable representative
// state (squares, role maps, level and retirement tables); the immutable
// point and member data is shared. Engines that re-elect representatives
// under churn clone first, so hierarchies shared across runs — the sweep
// engine caches one build per placement — are never mutated.
func (h *Hierarchy) Clone() *Hierarchy {
	out := &Hierarchy{
		Squares:   make([]*Square, len(h.Squares)),
		Ell:       h.Ell,
		Branching: append([]int(nil), h.Branching...),
		NodeLeaf:  h.NodeLeaf,
		NodeLevel: append([]int32(nil), h.NodeLevel...),
		RepRoles:  make(map[int32][]int, len(h.RepRoles)),
		points:    h.points,
	}
	for i, sq := range h.Squares {
		cp := *sq // Members and Children slices stay shared (read-only)
		out.Squares[i] = &cp
	}
	for rep, roles := range h.RepRoles {
		out.RepRoles[rep] = append([]int(nil), roles...)
	}
	if h.succeeded != nil {
		out.succeeded = append([]bool(nil), h.succeeded...)
	}
	return out
}

// ReelectSquare replaces the representative of square id when the
// current one is dead (or the square has none): the member nearest the
// square's centre among those currently alive takes over — exactly
// Build's representative rule restricted to survivors. A square whose
// members are all dead goes rep-less (-1) but is not written off: a
// later call re-elects as soon as any member revives, so flapping churn
// can never permanently silence a populated square. It returns the
// representative after the call and whether it changed. RepRoles and
// NodeLevel are kept consistent, and the square is marked as succeeded
// so Validate relaxes its liveness-blind nearest-centre check. Not safe
// for hierarchies shared between runs — see Clone.
func (h *Hierarchy) ReelectSquare(id int, alive func(int32) bool) (int32, bool) {
	sq := h.Squares[id]
	old := sq.Rep
	if old >= 0 && alive(old) {
		return old, false
	}
	var survivors []int32
	for _, m := range sq.Members {
		if alive(m) {
			survivors = append(survivors, m)
		}
	}
	next := nearestMember(h.points, survivors, sq.Rect.Center())
	if next == old {
		return old, false
	}
	if h.succeeded == nil {
		h.succeeded = make([]bool, len(h.Squares))
	}
	h.succeeded[id] = true
	sq.Rep = next
	if old >= 0 {
		h.dropRole(old, id)
	}
	if next >= 0 {
		h.RepRoles[next] = append(h.RepRoles[next], id)
		if int32(sq.Level) > h.NodeLevel[next] {
			h.NodeLevel[next] = int32(sq.Level)
		}
	}
	return next, true
}

// dropRole removes square id from rep's role list and recomputes the
// node's protocol level from its remaining roles.
func (h *Hierarchy) dropRole(rep int32, id int) {
	roles := h.RepRoles[rep]
	for i, r := range roles {
		if r == id {
			roles = append(roles[:i], roles[i+1:]...)
			break
		}
	}
	if len(roles) == 0 {
		delete(h.RepRoles, rep)
		h.NodeLevel[rep] = 0
		return
	}
	h.RepRoles[rep] = roles
	level := int32(0)
	for _, r := range roles {
		if l := int32(h.Squares[r].Level); l > level {
			level = l
		}
	}
	h.NodeLevel[rep] = level
}

// Reelect sweeps every populated square and replaces dead (or missing)
// representatives via ReelectSquare, returning the ids of the squares
// whose representative changed (in BFS order). Not safe for shared
// hierarchies — see Clone.
func (h *Hierarchy) Reelect(alive func(int32) bool) []int {
	var changed []int
	for _, sq := range h.Squares {
		if len(sq.Members) == 0 {
			continue
		}
		if _, ch := h.ReelectSquare(sq.ID, alive); ch {
			changed = append(changed, sq.ID)
		}
	}
	return changed
}

// Succeeded reports whether square id's representative was installed by
// a re-election.
func (h *Hierarchy) Succeeded(id int) bool {
	return h.succeeded != nil && h.succeeded[id]
}

// Leaves returns the leaf squares in BFS order.
func (h *Hierarchy) Leaves() []*Square {
	var out []*Square
	for _, sq := range h.Squares {
		if sq.IsLeaf() {
			out = append(out, sq)
		}
	}
	return out
}

// Leaf returns the leaf square containing node i.
func (h *Hierarchy) Leaf(i int32) *Square { return h.Squares[h.NodeLeaf[i]] }

// Siblings returns the IDs of sq's siblings (children of the same parent,
// excluding sq itself). The root has none.
func (h *Hierarchy) Siblings(sq *Square) []int {
	if sq.Parent < 0 {
		return nil
	}
	parent := h.Squares[sq.Parent]
	out := make([]int, 0, len(parent.Children)-1)
	for _, c := range parent.Children {
		if c != sq.ID {
			out = append(out, c)
		}
	}
	return out
}

// RepCollisions returns the number of nodes that represent more than one
// square (the paper argues this is empty w.h.p.).
func (h *Hierarchy) RepCollisions() int {
	c := 0
	for _, roles := range h.RepRoles {
		if len(roles) > 1 {
			c++
		}
	}
	return c
}

// EmptySquares returns the number of squares with no members.
func (h *Hierarchy) EmptySquares() int {
	c := 0
	for _, sq := range h.Squares {
		if len(sq.Members) == 0 {
			c++
		}
	}
	return c
}

// Stats summarizes the hierarchy's shape.
type Stats struct {
	N             int
	Ell           int
	Squares       int
	Leaves        int
	Branching     []int
	LeafExpected  float64
	MinLeafSize   int
	MaxLeafSize   int
	MeanLeafSize  float64
	EmptySquares  int
	RepCollisions int
}

// ComputeStats returns shape statistics for the hierarchy.
func (h *Hierarchy) ComputeStats() Stats {
	st := Stats{
		N:             len(h.NodeLeaf),
		Ell:           h.Ell,
		Squares:       len(h.Squares),
		Branching:     append([]int(nil), h.Branching...),
		EmptySquares:  h.EmptySquares(),
		RepCollisions: h.RepCollisions(),
		MinLeafSize:   int(^uint(0) >> 1),
	}
	total := 0
	for _, sq := range h.Leaves() {
		st.Leaves++
		st.LeafExpected = sq.Expected
		sz := len(sq.Members)
		total += sz
		if sz < st.MinLeafSize {
			st.MinLeafSize = sz
		}
		if sz > st.MaxLeafSize {
			st.MaxLeafSize = sz
		}
	}
	if st.Leaves > 0 {
		st.MeanLeafSize = float64(total) / float64(st.Leaves)
	} else {
		st.MinLeafSize = 0
	}
	return st
}

// Validate checks structural invariants: children tile their parent,
// members partition correctly, representatives are members nearest the
// centre, expected counts are consistent. It returns the first violation
// found.
func (h *Hierarchy) Validate() error {
	for _, sq := range h.Squares {
		if sq.IsLeaf() {
			continue
		}
		if len(sq.Children) != sq.GridK*sq.GridK {
			return fmt.Errorf("hier: square %d has %d children, grid %d", sq.ID, len(sq.Children), sq.GridK)
		}
		var area float64
		memberCount := 0
		for _, cid := range sq.Children {
			child := h.Squares[cid]
			if child.Parent != sq.ID {
				return fmt.Errorf("hier: square %d child %d has parent %d", sq.ID, cid, child.Parent)
			}
			if child.Depth != sq.Depth+1 {
				return fmt.Errorf("hier: square %d child %d depth %d", sq.ID, cid, child.Depth)
			}
			area += child.Rect.Area()
			memberCount += len(child.Members)
			for _, m := range child.Members {
				if !child.Rect.Contains(h.points[m]) {
					return fmt.Errorf("hier: node %d outside its square %d", m, cid)
				}
			}
		}
		if math.Abs(area-sq.Rect.Area()) > 1e-9 {
			return fmt.Errorf("hier: square %d children cover area %v of %v", sq.ID, area, sq.Rect.Area())
		}
		if memberCount != len(sq.Members) {
			return fmt.Errorf("hier: square %d members %d but children hold %d", sq.ID, len(sq.Members), memberCount)
		}
	}
	for _, sq := range h.Squares {
		if len(sq.Members) == 0 {
			if sq.Rep != -1 {
				return fmt.Errorf("hier: empty square %d has rep %d", sq.ID, sq.Rep)
			}
			continue
		}
		if sq.Rep < 0 {
			// Only a re-election that found every member dead leaves a
			// populated square without a rep.
			if !h.Succeeded(sq.ID) {
				return fmt.Errorf("hier: square %d has %d members but no rep", sq.ID, len(sq.Members))
			}
			continue
		}
		if h.Succeeded(sq.ID) {
			// The successor was nearest among the members alive at
			// election time; a liveness-blind check cannot re-derive that
			// set, so only membership is asserted.
			member := false
			for _, m := range sq.Members {
				if m == sq.Rep {
					member = true
					break
				}
			}
			if !member {
				return fmt.Errorf("hier: square %d rep %d is not a member", sq.ID, sq.Rep)
			}
			continue
		}
		repD2 := h.points[sq.Rep].Dist2(sq.Rect.Center())
		for _, m := range sq.Members {
			if h.points[m].Dist2(sq.Rect.Center()) < repD2 {
				return fmt.Errorf("hier: square %d rep %d is not nearest centre (node %d closer)", sq.ID, sq.Rep, m)
			}
		}
	}
	return nil
}
