package hier

import (
	"fmt"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

// Hierarchy construction, serial vs. sharded per-level assignment.
// Reference numbers live in BENCH_engines.json.
func BenchmarkHierBuild(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		g, err := graph.Generate(n, 1.5, rng.New(992))
		if err != nil {
			b.Fatal(err)
		}
		pts := g.Points()
		for _, m := range []struct {
			name    string
			workers int
		}{
			{"serial", 1},
			{"parallel", 0},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, m.name), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h, err := Build(pts, Config{Workers: m.workers})
					if err != nil {
						b.Fatal(err)
					}
					if len(h.NodeLeaf) != n {
						b.Fatal("bad hierarchy")
					}
				}
			})
		}
	}
}
