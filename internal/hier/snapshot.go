package hier

import (
	"fmt"
	"math"
	"sort"

	"geogossip/internal/geo"
)

// Snapshot exposes the hierarchy's derived tables for binary
// serialization (DESIGN.md §11) as flat int32 arrays. Structure (square
// rects, depths, parent/child links, expected occupancies, levels) is
// NOT stored: it is a pure function of (n, Branching) and FromSnapshot
// re-derives it with the exact arithmetic Build uses, so the
// reconstruction is bit-identical by construction. What is stored is
// everything derived from the point data: member lists, representatives,
// the per-node leaf/level tables and the role lists.
//
// Snapshots capture the as-built state only: a hierarchy mutated by
// re-election (ReelectSquare) does not round-trip, because the
// elect-time liveness sets are not representable. Every producer in this
// repository snapshots freshly built hierarchies (engines mutate
// clones), so the restriction is structural, not practical.
type Snapshot struct {
	// Branching mirrors Hierarchy.Branching.
	Branching []int32
	// Reps[id] is square id's representative (-1 when empty), BFS order.
	Reps []int32
	// MemberCounts[id] sizes square id's member list; MemberBlock packs
	// the lists in BFS square order.
	MemberCounts []int32
	MemberBlock  []int32
	// NodeLeaf and NodeLevel mirror the per-node tables.
	NodeLeaf  []int32
	NodeLevel []int32
	// RoleCounts[node] sizes the node's role list; RoleBlock packs the
	// lists grouped by node id, each list in BFS square order — exactly
	// the layout Build's packing pass produces.
	RoleCounts []int32
	RoleBlock  []int32
}

// Snapshot returns the hierarchy's serializable view. The flat arrays
// are built fresh (the hierarchy keeps them as per-square slices), but
// the per-node tables alias live storage — treat everything as
// read-only.
func (h *Hierarchy) Snapshot() Snapshot {
	nsq := len(h.Squares)
	s := Snapshot{
		Branching:    make([]int32, len(h.Branching)),
		Reps:         make([]int32, nsq),
		MemberCounts: make([]int32, nsq),
		NodeLeaf:     h.NodeLeaf,
		NodeLevel:    h.NodeLevel,
	}
	for i, b := range h.Branching {
		s.Branching[i] = int32(b)
	}
	total := 0
	for i, sq := range h.Squares {
		s.Reps[i] = sq.Rep
		s.MemberCounts[i] = int32(len(sq.Members))
		total += len(sq.Members)
	}
	s.MemberBlock = make([]int32, 0, total)
	for _, sq := range h.Squares {
		s.MemberBlock = append(s.MemberBlock, sq.Members...)
	}
	n := len(h.NodeLeaf)
	s.RoleCounts = make([]int32, n)
	totalRoles := 0
	for rep, roles := range h.RepRoles {
		s.RoleCounts[rep] = int32(len(roles))
		totalRoles += len(roles)
	}
	s.RoleBlock = make([]int32, 0, totalRoles)
	for rep := 0; rep < n; rep++ {
		for _, id := range h.RepRoles[int32(rep)] {
			s.RoleBlock = append(s.RoleBlock, int32(id))
		}
	}
	return s
}

// FromSnapshot reconstructs a hierarchy over points. The square skeleton
// (rects, depths, parents, children, grid sides, expected occupancies,
// levels) is re-derived from Branching with Build's exact arithmetic;
// the stored tables are then installed and cross-validated against that
// skeleton: per-level member partitions summing to n in ascending order,
// representatives that are members, role lists consistent with the rep
// table, and leaf/level tables consistent with both. A snapshot that
// passes is bit-identical to the Build output it was taken from.
func FromSnapshot(points []geo.Point, s Snapshot) (*Hierarchy, error) {
	n := len(points)
	unit := geo.UnitSquare()
	for i, p := range points {
		if !unit.Contains(p) {
			return nil, fmt.Errorf("hier: snapshot point %d = %v outside the unit square", i, p)
		}
	}

	// Level sizes from the branching chain, bounded before any allocation:
	// Build never splits a square below expected occupancy 2, so a level
	// can never hold more than max(n, 4) squares (hostile chains fail here,
	// not in make).
	if len(s.Branching) > 64 {
		return nil, fmt.Errorf("hier: snapshot branching chain of %d levels is implausible", len(s.Branching))
	}
	maxLevel := n
	if maxLevel < 4 {
		maxLevel = 4
	}
	levelSize := []int{1}
	total := 1
	for r, b32 := range s.Branching {
		b := int(b32)
		k := int(math.Round(math.Sqrt(float64(b))))
		if b < 4 || k*k != b || k%2 != 0 {
			return nil, fmt.Errorf("hier: snapshot branching[%d] = %d is not an even square ≥ 4", r, b)
		}
		next := levelSize[len(levelSize)-1] * b
		if next > maxLevel {
			return nil, fmt.Errorf("hier: snapshot level %d would hold %d squares over %d points", r+1, next, n)
		}
		levelSize = append(levelSize, next)
		total += next
	}
	if len(s.Reps) != total || len(s.MemberCounts) != total {
		return nil, fmt.Errorf("hier: snapshot tables size %d/%d squares, branching expands to %d",
			len(s.Reps), len(s.MemberCounts), total)
	}
	if len(s.NodeLeaf) != n || len(s.NodeLevel) != n || len(s.RoleCounts) != n {
		return nil, fmt.Errorf("hier: snapshot node tables size %d/%d/%d over %d points",
			len(s.NodeLeaf), len(s.NodeLevel), len(s.RoleCounts), n)
	}

	h := &Hierarchy{
		Squares:   make([]*Square, 0, total),
		Ell:       len(s.Branching) + 1,
		Branching: make([]int, len(s.Branching)),
		NodeLeaf:  s.NodeLeaf,
		NodeLevel: s.NodeLevel,
		points:    points,
	}
	for i, b := range s.Branching {
		h.Branching[i] = int(b)
	}

	// Skeleton: split level by level with the same AppendSplitGrid /
	// Expected-division chain Build walks, so every float in every Rect
	// and Expected lands on identical bits.
	squares := make([]Square, total)
	squares[0] = Square{ID: 0, Rect: unit, Depth: 0, Parent: -1, Expected: float64(n), Level: h.Ell}
	levelStart := 0
	var cells []geo.Rect
	for r, size := range levelSize[:len(levelSize)-1] {
		branch := int(s.Branching[r])
		k := int(math.Round(math.Sqrt(float64(branch))))
		childStart := levelStart + size
		childIDs := make([]int, size*branch)
		for pi := 0; pi < size; pi++ {
			parent := &squares[levelStart+pi]
			parent.GridK = k
			childExpected := parent.Expected / float64(branch)
			cells = parent.Rect.AppendSplitGrid(cells[:0], k)
			cbase := pi * branch
			for ci := 0; ci < branch; ci++ {
				id := childStart + cbase + ci
				childIDs[cbase+ci] = id
				squares[id] = Square{
					ID:       id,
					Rect:     cells[ci],
					Depth:    r + 1,
					Parent:   parent.ID,
					Expected: childExpected,
					Level:    h.Ell - (r + 1),
				}
			}
			parent.Children = childIDs[cbase : cbase+branch : cbase+branch]
		}
		levelStart = childStart
	}
	for i := range squares {
		h.Squares = append(h.Squares, &squares[i])
	}

	// Members: cursor the flat block through the squares, checking order,
	// range and containment; each level must partition [0, n) exactly.
	off := 0
	levelStart = 0
	for _, size := range levelSize {
		levelTotal := 0
		for id := levelStart; id < levelStart+size; id++ {
			c := int(s.MemberCounts[id])
			if c < 0 || off+c > len(s.MemberBlock) {
				return nil, fmt.Errorf("hier: snapshot member block underruns at square %d", id)
			}
			sq := &squares[id]
			if c > 0 {
				sq.Members = s.MemberBlock[off : off+c : off+c]
			}
			off += c
			levelTotal += c
			prev := int32(-1)
			for _, m := range sq.Members {
				if m < 0 || int(m) >= n {
					return nil, fmt.Errorf("hier: snapshot square %d member %d outside [0, %d)", id, m, n)
				}
				if m <= prev {
					return nil, fmt.Errorf("hier: snapshot square %d members not strictly ascending (%d after %d)", id, m, prev)
				}
				if !sq.Rect.Contains(points[m]) {
					return nil, fmt.Errorf("hier: snapshot node %d outside its square %d", m, id)
				}
				prev = m
			}
		}
		if levelTotal != n {
			return nil, fmt.Errorf("hier: snapshot depth-%d squares hold %d members, want %d",
				squares[levelStart].Depth, levelTotal, n)
		}
		levelStart += size
	}
	if off != len(s.MemberBlock) {
		return nil, fmt.Errorf("hier: snapshot member block has %d trailing entries", len(s.MemberBlock)-off)
	}

	// Representatives: empty squares have none; populated squares' reps
	// must be members. (Nearest-centre optimality is not re-derived here —
	// it is what the bit-identity suites assert against fresh builds.)
	for id := range squares {
		sq := &squares[id]
		rep := s.Reps[id]
		if len(sq.Members) == 0 {
			if rep != -1 {
				return nil, fmt.Errorf("hier: snapshot empty square %d has rep %d", id, rep)
			}
			sq.Rep = -1
			continue
		}
		pos := sort.Search(len(sq.Members), func(i int) bool { return sq.Members[i] >= rep })
		if rep < 0 || pos >= len(sq.Members) || sq.Members[pos] != rep {
			return nil, fmt.Errorf("hier: snapshot square %d rep %d is not a member", id, rep)
		}
		sq.Rep = rep
	}

	// Leaf table: the last level's squares are the leaves; every member's
	// NodeLeaf entry must name its leaf. The per-level partition check
	// above guarantees coverage of all n nodes.
	leafStart := total - levelSize[len(levelSize)-1]
	for id := leafStart; id < total; id++ {
		for _, m := range squares[id].Members {
			if int(s.NodeLeaf[m]) != id {
				return nil, fmt.Errorf("hier: snapshot NodeLeaf[%d] = %d, but node sits in leaf %d", m, s.NodeLeaf[m], id)
			}
		}
	}

	// Role lists: prefix-sum RoleCounts into per-node slices of RoleBlock,
	// then replay Build's packing pass (BFS square order, one cursor per
	// node) to verify the block is exactly what Build would have written.
	totalRoles := 0
	for node, c := range s.RoleCounts {
		if c < 0 {
			return nil, fmt.Errorf("hier: snapshot node %d has role count %d", node, c)
		}
		totalRoles += int(c)
	}
	if totalRoles != len(s.RoleBlock) {
		return nil, fmt.Errorf("hier: snapshot role block holds %d entries, counts sum to %d", len(s.RoleBlock), totalRoles)
	}
	roleStart := make([]int, n+1)
	for i := 0; i < n; i++ {
		roleStart[i+1] = roleStart[i] + int(s.RoleCounts[i])
	}
	cursor := make([]int, n)
	copy(cursor, roleStart[:n])
	reps := 0
	for _, c := range s.RoleCounts {
		if c > 0 {
			reps++
		}
	}
	roleInts := make([]int, len(s.RoleBlock))
	for id := range squares {
		rep := squares[id].Rep
		if rep < 0 {
			continue
		}
		at := cursor[rep]
		if at >= roleStart[rep+1] || int(s.RoleBlock[at]) != id {
			return nil, fmt.Errorf("hier: snapshot role block disagrees with rep table at square %d (rep %d)", id, rep)
		}
		roleInts[at] = id
		cursor[rep]++
	}
	for node := 0; node < n; node++ {
		if cursor[node] != roleStart[node+1] {
			return nil, fmt.Errorf("hier: snapshot node %d has %d role entries beyond its rep squares",
				node, roleStart[node+1]-cursor[node])
		}
	}
	h.RepRoles = make(map[int32][]int, reps)
	for node := 0; node < n; node++ {
		if lo, hi := roleStart[node], roleStart[node+1]; hi > lo {
			h.RepRoles[int32(node)] = roleInts[lo:hi:hi]
		}
	}

	// Node levels: each node's level is the max square level across its
	// roles, zero without roles.
	for node := 0; node < n; node++ {
		want := int32(0)
		for _, id := range h.RepRoles[int32(node)] {
			if l := int32(squares[id].Level); l > want {
				want = l
			}
		}
		if s.NodeLevel[node] != want {
			return nil, fmt.Errorf("hier: snapshot NodeLevel[%d] = %d, roles imply %d", node, s.NodeLevel[node], want)
		}
	}
	return h, nil
}
