package hier

import (
	"math"
	"testing"
	"testing/quick"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

func buildN(t *testing.T, n int, seed uint64, cfg Config) *Hierarchy {
	t.Helper()
	pts := graph.UniformPoints(n, rng.New(seed))
	h, err := Build(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNearestEvenSquare(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 4},
		{1, 4},
		{4, 4},
		{9, 4},   // |9-4|=5 < |9-16|=7
		{10, 4},  // tie |10-4| = |10-16| → smaller
		{11, 16}, // |11-16|=5 < |11-4|=7
		{16, 16},
		{25, 16}, // |25-16|=9 < |25-36|=11
		{26, 16}, // tie → smaller
		{27, 36},
		{100, 100},
		{1000, 1024}, // 31.6² → between 30²=900 and 32²=1024: |1000-900|=100 vs 24
		{10000, 10000},
	}
	for _, tc := range cases {
		if got := NearestEvenSquare(tc.x); got != tc.want {
			t.Fatalf("NearestEvenSquare(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestNearestEvenSquareAlwaysEvenSquare(t *testing.T) {
	f := func(raw uint32) bool {
		x := float64(raw % 10_000_000)
		v := NearestEvenSquare(x)
		root := int(math.Round(math.Sqrt(float64(v))))
		return root*root == v && root%2 == 0 && root >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsOutsidePoints(t *testing.T) {
	if _, err := Build([]geo.Point{geo.Pt(1.2, 0.5)}, Config{}); err == nil {
		t.Fatal("point outside unit square accepted")
	}
}

func TestBuildEmptyAndTiny(t *testing.T) {
	h, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Squares) != 1 || !h.Root().IsLeaf() || h.Ell != 1 {
		t.Fatalf("empty hierarchy: %d squares, ell %d", len(h.Squares), h.Ell)
	}
	if h.Root().Rep != -1 {
		t.Fatalf("empty root has rep %d", h.Root().Rep)
	}

	h1, err := Build([]geo.Point{geo.Pt(0.3, 0.7)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Root().Rep != 0 {
		t.Fatalf("singleton rep = %d", h1.Root().Rep)
	}
	if h1.NodeLevel[0] != int32(h1.Ell) {
		t.Fatalf("singleton level = %d, want %d", h1.NodeLevel[0], h1.Ell)
	}
}

func TestSmallNIsSingleLeaf(t *testing.T) {
	// n=10 with default LeafTarget ≥ 16: no partitioning.
	h := buildN(t, 10, 50, Config{})
	if !h.Root().IsLeaf() {
		t.Fatal("n=10 should be a single leaf")
	}
	if h.Ell != 1 {
		t.Fatalf("ell = %d", h.Ell)
	}
}

func TestBuildStructure(t *testing.T) {
	const n = 4096
	h := buildN(t, n, 51, Config{})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Root().Expected != n {
		t.Fatalf("root expected = %v", h.Root().Expected)
	}
	if len(h.Branching) == 0 {
		t.Fatal("no branching for n=4096")
	}
	// First branching: nearest even square to sqrt(4096) = 64 → 64.
	if h.Branching[0] != 64 {
		t.Fatalf("first branching = %d, want 64", h.Branching[0])
	}
	// All n nodes assigned to exactly one leaf.
	counts := make(map[int32]int)
	for _, leafID := range h.NodeLeaf {
		counts[leafID]++
	}
	total := 0
	for id, c := range counts {
		if !h.Squares[id].IsLeaf() {
			t.Fatalf("NodeLeaf points at non-leaf %d", id)
		}
		total += c
	}
	if total != n {
		t.Fatalf("leaf assignment covers %d of %d nodes", total, n)
	}
}

func TestAllLeavesSameDepth(t *testing.T) {
	h := buildN(t, 8192, 52, Config{})
	depth := -1
	for _, leaf := range h.Leaves() {
		if depth < 0 {
			depth = leaf.Depth
		}
		if leaf.Depth != depth {
			t.Fatalf("leaf depths differ: %d vs %d", leaf.Depth, depth)
		}
	}
	if h.Ell != depth+1 {
		t.Fatalf("ell = %d, leaf depth = %d", h.Ell, depth)
	}
}

func TestLevelAssignment(t *testing.T) {
	h := buildN(t, 4096, 53, Config{})
	root := h.Root()
	if root.Level != h.Ell {
		t.Fatalf("root level = %d, want %d", root.Level, h.Ell)
	}
	for _, leaf := range h.Leaves() {
		if leaf.Level != 1 {
			t.Fatalf("leaf level = %d, want 1", leaf.Level)
		}
	}
	// Root rep has the top level.
	if root.Rep >= 0 && h.NodeLevel[root.Rep] != int32(h.Ell) {
		t.Fatalf("root rep level = %d", h.NodeLevel[root.Rep])
	}
	// Non-rep nodes are level 0.
	zero := 0
	for i, lvl := range h.NodeLevel {
		if lvl == 0 {
			zero++
			if len(h.RepRoles[int32(i)]) != 0 {
				t.Fatalf("level-0 node %d has rep roles", i)
			}
		}
	}
	if zero == 0 {
		t.Fatal("no level-0 nodes")
	}
}

func TestExpectedCountsConsistent(t *testing.T) {
	h := buildN(t, 10000, 54, Config{})
	for _, sq := range h.Squares {
		if sq.IsLeaf() {
			continue
		}
		child := h.Squares[sq.Children[0]]
		want := sq.Expected / float64(len(sq.Children))
		if math.Abs(child.Expected-want) > 1e-9 {
			t.Fatalf("square %d child expected %v, want %v", sq.ID, child.Expected, want)
		}
		// Expected ≈ n·area for every square.
		areaWant := float64(10000) * sq.Rect.Area()
		if math.Abs(sq.Expected-areaWant) > 1e-6*areaWant {
			t.Fatalf("square %d expected %v but n·area = %v", sq.ID, sq.Expected, areaWant)
		}
	}
}

func TestLeafTargetRespected(t *testing.T) {
	const target = 50.0
	h := buildN(t, 4096, 55, Config{LeafTarget: target})
	for _, leaf := range h.Leaves() {
		if leaf.Expected > target {
			// Leaves may only exceed the target if MaxDepth stopped the
			// recursion, which 4096 with target 50 cannot hit.
			t.Fatalf("leaf expected %v > target %v", leaf.Expected, target)
		}
	}
	parentDepth := h.Leaves()[0].Depth - 1
	if parentDepth >= 0 {
		// Parents of leaves must exceed the target (minimality).
		for _, sq := range h.Squares {
			if sq.Depth == parentDepth && !sq.IsLeaf() && sq.Expected <= target {
				t.Fatalf("non-leaf %d at depth %d has expected %v <= target", sq.ID, sq.Depth, sq.Expected)
			}
		}
	}
}

func TestMaxDepthCap(t *testing.T) {
	h := buildN(t, 100000, 56, Config{LeafTarget: 1, MaxDepth: 2})
	for _, leaf := range h.Leaves() {
		if leaf.Depth > 2 {
			t.Fatalf("depth %d exceeds cap", leaf.Depth)
		}
	}
}

func TestEllGrowsSlowly(t *testing.T) {
	// ℓ should grow like log log n: tiny even for large n.
	ell1 := buildN(t, 1000, 57, Config{}).Ell
	ell2 := buildN(t, 100000, 57, Config{}).Ell
	if ell2 < ell1 {
		t.Fatalf("ell decreased with n: %d -> %d", ell1, ell2)
	}
	if ell2 > 5 {
		t.Fatalf("ell = %d too large for n=100000", ell2)
	}
}

func TestSiblings(t *testing.T) {
	h := buildN(t, 4096, 58, Config{})
	if sibs := h.Siblings(h.Root()); sibs != nil {
		t.Fatalf("root has siblings %v", sibs)
	}
	child := h.Squares[h.Root().Children[0]]
	sibs := h.Siblings(child)
	if len(sibs) != len(h.Root().Children)-1 {
		t.Fatalf("sibling count %d, want %d", len(sibs), len(h.Root().Children)-1)
	}
	for _, s := range sibs {
		if s == child.ID {
			t.Fatal("square listed as its own sibling")
		}
		if h.Squares[s].Parent != child.Parent {
			t.Fatal("sibling with different parent")
		}
	}
}

func TestLeafLookup(t *testing.T) {
	h := buildN(t, 2048, 59, Config{})
	pts := h.points
	for i := int32(0); int(i) < len(pts); i++ {
		leaf := h.Leaf(i)
		if !leaf.Rect.Contains(pts[i]) {
			t.Fatalf("node %d not inside its leaf", i)
		}
		found := false
		for _, m := range leaf.Members {
			if m == i {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d missing from leaf members", i)
		}
	}
}

func TestMembersSortedEverywhere(t *testing.T) {
	h := buildN(t, 4096, 60, Config{})
	for _, sq := range h.Squares {
		for i := 1; i < len(sq.Members); i++ {
			if sq.Members[i-1] >= sq.Members[i] {
				t.Fatalf("square %d members not sorted", sq.ID)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	const n = 4096
	h := buildN(t, n, 61, Config{})
	st := h.ComputeStats()
	if st.N != n || st.Ell != h.Ell || st.Squares != len(h.Squares) {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.Leaves == 0 || st.MeanLeafSize <= 0 {
		t.Fatalf("leaf stats wrong: %+v", st)
	}
	if st.MinLeafSize > st.MaxLeafSize {
		t.Fatalf("min leaf %d > max leaf %d", st.MinLeafSize, st.MaxLeafSize)
	}
	// Mean leaf size times leaf count = n.
	if math.Abs(st.MeanLeafSize*float64(st.Leaves)-n) > 1e-6 {
		t.Fatalf("leaf sizes do not sum to n: %+v", st)
	}
}

func TestOccupancyConcentration(t *testing.T) {
	// §3's Chernoff claim: at the first level, |#□_i/E# − 1| < 1/10 w.h.p.
	// At n=16384 (E# = 128 per square), most squares should be within a
	// modest band; we verify the normalized max deviation is sane (< 1,
	// i.e. no square is empty or double-occupancy) for a fixed seed.
	const n = 16384
	h := buildN(t, n, 62, Config{})
	root := h.Root()
	exp := h.Squares[root.Children[0]].Expected
	maxDev := 0.0
	for _, cid := range root.Children {
		dev := math.Abs(float64(len(h.Squares[cid].Members))/exp - 1)
		if dev > maxDev {
			maxDev = dev
		}
	}
	if maxDev >= 1 {
		t.Fatalf("max occupancy deviation %v >= 1", maxDev)
	}
}

func TestRepIsNearestToCentre(t *testing.T) {
	h := buildN(t, 2048, 63, Config{})
	// Validate() already checks this; assert it passes and spot-check one.
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	leaf := h.Leaves()[0]
	if len(leaf.Members) > 0 {
		c := leaf.Rect.Center()
		repD := h.points[leaf.Rep].Dist2(c)
		for _, m := range leaf.Members {
			if h.points[m].Dist2(c) < repD {
				t.Fatal("rep not nearest centre")
			}
		}
	}
}

func TestQuickHierarchyInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%4000) + 2
		pts := graph.UniformPoints(n, rng.New(seed))
		h, err := Build(pts, Config{})
		if err != nil {
			return false
		}
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := buildN(t, 3000, 64, Config{})
	b := buildN(t, 3000, 64, Config{})
	if len(a.Squares) != len(b.Squares) || a.Ell != b.Ell {
		t.Fatal("same seed produced different hierarchies")
	}
	for i := range a.Squares {
		if a.Squares[i].Rep != b.Squares[i].Rep {
			t.Fatalf("square %d rep differs", i)
		}
	}
}
