package hier

// RepView is a copy-on-write representative overlay over an immutable
// base Hierarchy: the structural tree (squares, members, rects, levels)
// stays shared and read-only, while representative assignments and the
// derived node→roles table live in a small mutable layer the view owns.
// It replaces the per-run deep Clone the recovery engines used: binding
// is O(1) when the base is unchanged, Reset is O(1) (epoch bump + table
// swap), and a run pays copy costs only when it actually re-elects —
// exactly the "reset in O(reelections), not O(squares)" contract pooled
// run states need.
//
// Semantics match Hierarchy.ReelectSquare / Reelect bit for bit: the
// nearest-alive-member takeover rule, the no-change conditions, and the
// role-list ordering (append on takeover, order-preserving removal) are
// identical, so a RepView-driven recovery run reproduces a Clone-driven
// one exactly. Node protocol levels are not maintained — no engine reads
// them mid-run.
//
// A RepView is single-goroutine, like the engines that own it. The base
// hierarchy is never written.
type RepView struct {
	base *Hierarchy

	// repBase[id] is the base hierarchy's representative of square id,
	// materialized once per Bind so reads are one array load.
	repBase []int32
	// rep is the active table: it aliases repBase until the first
	// re-election of a run copies it into repBuf (copy-on-write).
	rep    []int32
	repBuf []int32
	dirty  bool

	// Flattened base node→roles table: node i represents the squares
	// rolesBaseIDs[rolesBaseOff[i]:rolesBaseOff[i+1]] (ascending square
	// ID, matching Build's RepRoles order).
	rolesBaseOff []int32
	rolesBaseIDs []int32
	// Epoch-stamped per-node role overlay: ovEpoch[i] == epoch means node
	// i's roles changed this run and live in ovRoles[i] (a buffer reused
	// across runs). Reset is the epoch bump.
	epoch   uint32
	ovEpoch []uint32
	ovRoles [][]int32

	// survivors is reusable scratch for the takeover search.
	survivors []int32
}

// NewRepView returns a view bound to h.
func NewRepView(h *Hierarchy) *RepView {
	v := &RepView{}
	v.Bind(h)
	return v
}

// Bind points the view at h, rebuilding the base tables only when the
// base actually changed; rebinding to the same hierarchy is O(1). Bind
// implies Reset.
func (v *RepView) Bind(h *Hierarchy) {
	if v.base == h {
		v.Reset()
		return
	}
	v.base = h
	n := len(h.NodeLeaf)
	v.repBase = make([]int32, len(h.Squares))
	counts := make([]int32, n+1)
	roles := 0
	for _, sq := range h.Squares {
		v.repBase[sq.ID] = sq.Rep
		if sq.Rep >= 0 {
			counts[sq.Rep+1]++
			roles++
		}
	}
	v.rolesBaseOff = counts
	for i := 1; i <= n; i++ {
		v.rolesBaseOff[i] += v.rolesBaseOff[i-1]
	}
	v.rolesBaseIDs = make([]int32, roles)
	fill := make([]int32, n)
	copy(fill, v.rolesBaseOff[:n])
	for _, sq := range h.Squares {
		if sq.Rep >= 0 {
			v.rolesBaseIDs[fill[sq.Rep]] = int32(sq.ID)
			fill[sq.Rep]++
		}
	}
	v.repBuf = nil
	v.ovEpoch = make([]uint32, n)
	v.ovRoles = make([][]int32, n)
	v.epoch = 0
	v.Reset()
}

// Base returns the bound hierarchy.
func (v *RepView) Base() *Hierarchy { return v.base }

// Reset reverts every overlay write, returning the view to the base
// representative state in O(1).
func (v *RepView) Reset() {
	v.rep = v.repBase
	v.dirty = false
	v.epoch++
	if v.epoch == 0 { // uint32 wraparound: stale stamps would read as current
		clear(v.ovEpoch)
		v.epoch = 1
	}
}

// Rep returns the current representative of square id (-1 when none).
func (v *RepView) Rep(id int) int32 { return v.rep[id] }

// Roles returns the square IDs node i currently represents, in the same
// order Hierarchy.RepRoles maintains. The slice is view-owned: read-only,
// valid until the next ReelectSquare or Reset.
func (v *RepView) Roles(i int32) []int32 {
	if v.ovEpoch[i] == v.epoch {
		return v.ovRoles[i]
	}
	return v.rolesBaseIDs[v.rolesBaseOff[i]:v.rolesBaseOff[i+1]]
}

// write records a representative change, copying the base table on the
// run's first write.
func (v *RepView) write(id int, rep int32) {
	if !v.dirty {
		if v.repBuf == nil {
			v.repBuf = make([]int32, len(v.repBase))
		}
		copy(v.repBuf, v.repBase)
		v.rep = v.repBuf
		v.dirty = true
	}
	v.rep[id] = rep
}

// mutableRoles returns node i's overlay role buffer, materializing it
// from the current roles on first touch this run (buffer storage is
// reused across runs).
func (v *RepView) mutableRoles(i int32) []int32 {
	if v.ovEpoch[i] == v.epoch {
		return v.ovRoles[i]
	}
	buf := append(v.ovRoles[i][:0], v.Roles(i)...)
	v.ovRoles[i] = buf
	v.ovEpoch[i] = v.epoch
	return buf
}

func (v *RepView) addRole(i int32, id int) {
	v.ovRoles[i] = append(v.mutableRoles(i), int32(id))
	v.ovEpoch[i] = v.epoch
}

func (v *RepView) dropRole(i int32, id int) {
	roles := v.mutableRoles(i)
	for k, r := range roles {
		if r == int32(id) {
			roles = append(roles[:k], roles[k+1:]...)
			break
		}
	}
	v.ovRoles[i] = roles
}

// ReelectSquare replaces the representative of square id when the current
// one is dead (or the square has none): the member nearest the square's
// centre among those currently alive takes over. The rule, the no-change
// conditions, and the returned values are identical to
// Hierarchy.ReelectSquare; only the mutation target differs (the overlay,
// never the base).
func (v *RepView) ReelectSquare(id int, alive func(int32) bool) (int32, bool) {
	sq := v.base.Squares[id]
	old := v.rep[id]
	if old >= 0 && alive(old) {
		return old, false
	}
	survivors := v.survivors[:0]
	for _, m := range sq.Members {
		if alive(m) {
			survivors = append(survivors, m)
		}
	}
	v.survivors = survivors
	next := nearestMember(v.base.points, survivors, sq.Rect.Center())
	if next == old {
		return old, false
	}
	v.write(id, next)
	if old >= 0 {
		v.dropRole(old, id)
	}
	if next >= 0 {
		v.addRole(next, id)
	}
	return next, true
}

// Reelect sweeps every populated square in BFS order and replaces dead
// (or missing) representatives via ReelectSquare, appending the IDs of
// changed squares to buf (typically buf[:0] of a reusable slice) and
// returning it — Hierarchy.Reelect without the allocation.
func (v *RepView) Reelect(alive func(int32) bool, buf []int) []int {
	for _, sq := range v.base.Squares {
		if len(sq.Members) == 0 {
			continue
		}
		if _, changed := v.ReelectSquare(sq.ID, alive); changed {
			buf = append(buf, sq.ID)
		}
	}
	return buf
}
