package hier

import (
	"reflect"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

func snapshotPoints(t *testing.T, n int, seed uint64) []geo.Point {
	t.Helper()
	g, err := graph.Generate(n, 1.3, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g.Points()
}

func TestHierSnapshotRoundTripBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		cfg  Config
	}{
		{"defaults", 5000, Config{}},
		{"deep", 20000, Config{LeafTarget: 4}},
		{"flat", 3000, Config{MaxDepth: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pts := snapshotPoints(t, tc.n, uint64(tc.n))
			h, err := Build(pts, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FromSnapshot(pts, h.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			// Whole-structure bit identity: every square (rects, expected
			// occupancies, members, reps, children), every table, every map.
			if !reflect.DeepEqual(got, h) {
				if !reflect.DeepEqual(got.Branching, h.Branching) || got.Ell != h.Ell {
					t.Fatalf("skeleton differs: Branching %v/%v Ell %d/%d", got.Branching, h.Branching, got.Ell, h.Ell)
				}
				for i := range h.Squares {
					if !reflect.DeepEqual(got.Squares[i], h.Squares[i]) {
						t.Fatalf("square %d differs:\n got %+v\nwant %+v", i, got.Squares[i], h.Squares[i])
					}
				}
				if !reflect.DeepEqual(got.RepRoles, h.RepRoles) {
					t.Fatal("RepRoles differ")
				}
				t.Fatal("hierarchies differ")
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("reloaded hierarchy invalid: %v", err)
			}
		})
	}
}

func TestHierFromSnapshotRejectsCorruption(t *testing.T) {
	pts := snapshotPoints(t, 2000, 5)
	h, err := Build(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := h.Snapshot()
	clone := func() Snapshot {
		return Snapshot{
			Branching:    append([]int32(nil), base.Branching...),
			Reps:         append([]int32(nil), base.Reps...),
			MemberCounts: append([]int32(nil), base.MemberCounts...),
			MemberBlock:  append([]int32(nil), base.MemberBlock...),
			NodeLeaf:     append([]int32(nil), base.NodeLeaf...),
			NodeLevel:    append([]int32(nil), base.NodeLevel...),
			RoleCounts:   append([]int32(nil), base.RoleCounts...),
			RoleBlock:    append([]int32(nil), base.RoleBlock...),
		}
	}
	cases := map[string]func(*Snapshot){
		"odd branching":       func(s *Snapshot) { s.Branching[0] = 9 },
		"huge branching":      func(s *Snapshot) { s.Branching = []int32{64, 64, 64, 64, 64, 64, 64} },
		"long chain":          func(s *Snapshot) { s.Branching = make([]int32, 100) },
		"short rep table":     func(s *Snapshot) { s.Reps = s.Reps[:len(s.Reps)-1] },
		"member out of range": func(s *Snapshot) { s.MemberBlock[0] = int32(len(pts)) },
		"member unsorted": func(s *Snapshot) {
			s.MemberBlock[0], s.MemberBlock[1] = s.MemberBlock[1], s.MemberBlock[0]
		},
		"member count drift": func(s *Snapshot) { s.MemberCounts[1]++; s.MemberCounts[2]-- },
		"rep not a member":   func(s *Snapshot) { s.Reps[0] = -2 },
		"rep in empty":       func(s *Snapshot) { fakeEmptyRep(s) },
		"leaf table":         func(s *Snapshot) { s.NodeLeaf[0] = 0 },
		"role block drift":   func(s *Snapshot) { s.RoleBlock[0]++ },
		"role count drift":   func(s *Snapshot) { s.RoleCounts[0]++; s.RoleBlock = append(s.RoleBlock, 0) },
		"node level drift":   func(s *Snapshot) { s.NodeLevel[0]++ },
	}
	for name, corrupt := range cases {
		s := clone()
		corrupt(&s)
		if _, err := FromSnapshot(pts, s); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	if _, err := FromSnapshot(pts, clone()); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// fakeEmptyRep plants a representative in the first empty square, or
// forces a rep-table inconsistency if the hierarchy has no empty square.
func fakeEmptyRep(s *Snapshot) {
	for i, c := range s.MemberCounts {
		if c == 0 {
			s.Reps[i] = 0
			return
		}
	}
	s.Reps[len(s.Reps)-1] = -1 // populated square without a rep
}
