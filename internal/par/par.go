// Package par provides the tiny deterministic fork-join primitive shared
// by the parallel construction and tick paths. It deliberately has no
// dependencies so every layer (geo, graph, hier, gossip, core, sweep) can
// use it.
//
// Determinism contract: Do and Ranges only decide WHICH goroutine executes
// a unit of work, never WHAT the unit computes or the order results are
// merged in. Callers must keep per-unit work pure with respect to shared
// state (disjoint writes, snapshot reads) and merge results in unit order;
// under that discipline any worker count produces byte-identical output.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Do executes fn(0..n-1) using up to workers goroutines. Work units are
// handed out by an atomic counter, so scheduling is dynamic but each unit
// runs exactly once. workers <= 1 (after Resolve) runs inline with no
// goroutines at all, which keeps the serial path allocation-free.
func Do(workers, n int, fn func(i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// Blocks executes fn(lo, hi) over contiguous blocks covering [0, n) using
// up to workers goroutines. Blocks are sized so each worker sees a handful
// of them (dynamic load balancing without per-element dispatch overhead).
func Blocks(workers, n int, fn func(lo, hi int)) {
	workers = Resolve(workers)
	if workers <= 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	block := n / (workers * 4)
	if block < 1 {
		block = 1
	}
	nb := (n + block - 1) / block
	Do(workers, nb, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Ranges splits [0, n) into k contiguous near-equal ranges and returns the
// k+1 boundary offsets. The split depends only on n and k — never on the
// worker count — so shard-owned schedules derived from it are stable.
func Ranges(n, k int) []int {
	if k < 1 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	return bounds
}

// NumCPU reports the scheduler's current parallelism target. Exposed so
// callers outside this package don't need to import runtime just to pick
// a default.
func NumCPU() int { return runtime.GOMAXPROCS(0) }
