package routing

import (
	"sync"
	"sync/atomic"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
)

// Route is the compact, allocation-free outcome of a routing attempt —
// everything the engines consume (hop count, terminal node, delivery
// flags) without the materialized Path slice of Result. Use Router for
// the hot paths; the package-level functions still return full Results
// for callers that need the visited nodes (tracing, experiments).
type Route struct {
	// Hops is the number of transmissions used (identical to Result.Hops
	// for the same route).
	Hops int
	// Last is the terminal node of the walk: the destination when
	// Delivered, otherwise the stall node.
	Last int32
	// Delivered reports whether the packet reached the intended node.
	Delivered bool
	// Recovered reports whether BFS recovery was needed.
	Recovered bool
}

// routeKey identifies one memoized node-to-node route. Recovery is part
// of the key: RecoveryNone and RecoveryBFS differ on stalled routes.
type routeKey struct {
	src, dst int32
	rec      Recovery
}

// floodKey identifies one memoized region flood.
type floodKey struct {
	src  int32
	rect geo.Rect
}

// Cache memoizes routes and floods over one immutable graph. Both are
// pure functions of the graph — greedy forwarding, BFS recovery and
// region flooding consume no randomness and never consult liveness — so
// a cached answer is bit-identical to a recomputed one by construction
// (the determinism contract, DESIGN.md §6). Safe for concurrent use:
// the sweep engine shares one Cache across every task that shares a
// network build.
type Cache struct {
	disabled bool

	mu sync.RWMutex
	// g is the graph the cached answers were computed on, bound by the
	// first Router attached: keys are (node, node) pairs, so a cache
	// reused across graphs would silently return routes of the wrong
	// instance. NewRouter panics on a mismatch instead.
	g      *graph.Graph
	routes map[routeKey]Route
	floods map[floodKey]FloodResult

	routeHits, routeMisses atomic.Uint64
	floodHits, floodMisses atomic.Uint64
}

// NewCache returns an empty route/flood cache.
func NewCache() *Cache {
	return &Cache{
		routes: make(map[routeKey]Route),
		floods: make(map[floodKey]FloodResult),
	}
}

// NoCache returns a cache that never stores anything: every lookup
// misses and recomputes. It exists so draw-compat tests (and
// memory-constrained callers) can verify cached and uncached execution
// produce bit-identical results.
func NoCache() *Cache { return &Cache{disabled: true} }

// CacheStats reports cache effectiveness. Hit rates above ~90% are
// typical for the hierarchy engines, which route the same rep↔child and
// rep↔partner pairs thousands of times per run.
type CacheStats struct {
	RouteHits, RouteMisses uint64
	FloodHits, FloodMisses uint64
}

// Add accumulates other into s (used to aggregate across the sweep's
// per-network caches).
func (s *CacheStats) Add(other CacheStats) {
	s.RouteHits += other.RouteHits
	s.RouteMisses += other.RouteMisses
	s.FloodHits += other.FloodHits
	s.FloodMisses += other.FloodMisses
}

// RouteHitRate returns the fraction of route lookups served from cache
// (0 when no lookups happened).
func (s CacheStats) RouteHitRate() float64 {
	total := s.RouteHits + s.RouteMisses
	if total == 0 {
		return 0
	}
	return float64(s.RouteHits) / float64(total)
}

// FloodHitRate returns the fraction of flood lookups served from cache.
func (s CacheStats) FloodHitRate() float64 {
	total := s.FloodHits + s.FloodMisses
	if total == 0 {
		return 0
	}
	return float64(s.FloodHits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		RouteHits:   c.routeHits.Load(),
		RouteMisses: c.routeMisses.Load(),
		FloodHits:   c.floodHits.Load(),
		FloodMisses: c.floodMisses.Load(),
	}
}

func (c *Cache) lookupRoute(k routeKey) (Route, bool) {
	if c.disabled {
		c.routeMisses.Add(1)
		return Route{}, false
	}
	c.mu.RLock()
	r, ok := c.routes[k]
	c.mu.RUnlock()
	if ok {
		c.routeHits.Add(1)
	} else {
		c.routeMisses.Add(1)
	}
	return r, ok
}

func (c *Cache) storeRoute(k routeKey, r Route) {
	if c.disabled {
		return
	}
	c.mu.Lock()
	c.routes[k] = r
	c.mu.Unlock()
}

func (c *Cache) lookupFlood(k floodKey) (FloodResult, bool) {
	if c.disabled {
		c.floodMisses.Add(1)
		return FloodResult{}, false
	}
	c.mu.RLock()
	f, ok := c.floods[k]
	c.mu.RUnlock()
	if ok {
		c.floodHits.Add(1)
	} else {
		c.floodMisses.Add(1)
	}
	return f, ok
}

func (c *Cache) storeFlood(k floodKey, f FloodResult) {
	if c.disabled {
		return
	}
	c.mu.Lock()
	c.floods[k] = f
	c.mu.Unlock()
}

// Router is the per-run routing core every engine drives: hops-only
// greedy/BFS routing and region flooding over one immutable graph, with
// epoch-stamped scratch arrays so warm operation allocates nothing, and
// deterministic memoization through a Cache. A Router is single-
// goroutine (like the engines); Routers on different goroutines may
// share one Cache.
//
// Determinism contract (DESIGN.md §6): every Router answer is a pure
// function of (graph, arguments). No RNG stream is consulted, so routing
// through a Router — cached or not — cannot change any engine's draw
// sequence, and results are bit-identical to the package-level reference
// functions.
type Router struct {
	g     *graph.Graph
	cache *Cache

	// Epoch-stamped BFS scratch: mark[v] == epoch means v was visited in
	// the current traversal, so resetting costs one increment instead of
	// an O(n) clear or a fresh map. Allocated lazily on the first BFS.
	epoch uint32
	mark  []uint32
	dist  []int32
	queue []int32
}

// NewRouter binds a router to g. A nil cache gets a fresh private one,
// so memoization is always on; pass a shared Cache to pool routes across
// runs on the same graph (the sweep engine does), or NoCache() to force
// recomputation. Attaching one Cache to routers on different graphs is
// a programming error and panics: cached answers are keyed by node ids
// and would silently belong to the wrong instance.
func NewRouter(g *graph.Graph, cache *Cache) *Router {
	if cache == nil {
		cache = NewCache()
	}
	cache.bind(g)
	return &Router{g: g, cache: cache}
}

// Reset rebinds the router to (g, cache) for a new run, keeping its BFS
// scratch when the graph is unchanged — the pooled-run-state path: one
// Router per worker serves every run on a network build with zero
// steady-state allocations. A nil cache gets a fresh private one, like
// NewRouter. Changing graphs drops the scratch (it is sized to g.N()).
func (rt *Router) Reset(g *graph.Graph, cache *Cache) {
	if cache == nil {
		cache = NewCache()
	}
	cache.bind(g)
	if rt.g != g {
		rt.mark, rt.dist, rt.queue = nil, nil, nil
		rt.epoch = 0
	}
	rt.g = g
	rt.cache = cache
}

// bind pins the cache to its first graph and rejects any other.
func (c *Cache) bind(g *graph.Graph) {
	if c.disabled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.g {
	case nil:
		c.g = g
	case g:
	default:
		panic("routing: Cache shared across different graphs")
	}
}

// Graph returns the graph the router is bound to.
func (rt *Router) Graph() *graph.Graph { return rt.g }

// Stats returns the underlying cache's counters.
func (rt *Router) Stats() CacheStats { return rt.cache.Stats() }

// nextEpoch advances the scratch epoch, sizing the arrays on first use
// and clearing them on the (practically unreachable) uint32 wraparound.
func (rt *Router) nextEpoch() {
	if rt.mark == nil {
		n := rt.g.N()
		rt.mark = make([]uint32, n)
		rt.dist = make([]int32, n)
		rt.queue = make([]int32, 0, n)
	}
	rt.epoch++
	if rt.epoch == 0 {
		clear(rt.mark)
		rt.epoch = 1
	}
}

// greedyWalk runs the greedy geographic walk from src toward target and
// returns the terminal node and the hop count. Zero allocations: the
// walk needs no visited state because every step strictly decreases the
// distance to the target.
func (rt *Router) greedyWalk(src int32, target geo.Point) (last int32, hops int) {
	g := rt.g
	cur := src
	curD2 := g.Point(cur).Dist2(target)
	for {
		next := int32(-1)
		nextD2 := curD2
		for _, v := range g.Neighbors(cur) {
			if d2 := g.Point(v).Dist2(target); d2 < nextD2 {
				next = v
				nextD2 = d2
			}
		}
		if next < 0 {
			return cur, hops
		}
		cur, curD2 = next, nextD2
		hops++
	}
}

// bfsHops returns the shortest hop distance from src to dst, or -1 when
// unreachable. Zero steady-state allocations: epoch-stamped visited
// marks and a head-indexed reusable queue.
func (rt *Router) bfsHops(src, dst int32) int32 {
	if src == dst {
		return 0
	}
	rt.nextEpoch()
	g, epoch := rt.g, rt.epoch
	rt.mark[src] = epoch
	rt.dist[src] = 0
	queue := append(rt.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := rt.dist[u]
		for _, v := range g.Neighbors(u) {
			if rt.mark[v] == epoch {
				continue
			}
			rt.mark[v] = epoch
			rt.dist[v] = du + 1
			if v == dst {
				rt.queue = queue
				return du + 1
			}
			queue = append(queue, v)
		}
	}
	rt.queue = queue
	return -1
}

// RouteToPoint routes greedily from src toward the position target (the
// geographic-gossip partner-sampling primitive). Like GreedyToPoint the
// walk always "delivers": it ends at the greedy-reachable node nearest
// the target. Never cached — targets are fresh random positions, so a
// position-keyed cache would only grow — but allocation-free even cold.
func (rt *Router) RouteToPoint(src int32, target geo.Point) Route {
	last, hops := rt.greedyWalk(src, target)
	return Route{Hops: hops, Last: last, Delivered: true}
}

// RouteToNode routes from src toward node dst with the given stall
// recovery, memoized by (src, dst, rec). The answer is bit-identical to
// GreedyToNode's Result (Hops/Delivered/Recovered and the terminal path
// node) with zero steady-state allocations on both warm and cold paths.
func (rt *Router) RouteToNode(src, dst int32, rec Recovery) Route {
	if src == dst {
		return Route{Hops: 0, Last: src, Delivered: true}
	}
	key := routeKey{src: src, dst: dst, rec: rec}
	if r, ok := rt.cache.lookupRoute(key); ok {
		return r
	}
	last, hops := rt.greedyWalk(src, rt.g.Point(dst))
	r := Route{Hops: hops, Last: last, Delivered: last == dst}
	if !r.Delivered && rec == RecoveryBFS {
		if tail := rt.bfsHops(last, dst); tail >= 0 {
			r.Hops += int(tail)
			r.Last = dst
			r.Delivered = true
			r.Recovered = true
		}
	}
	rt.cache.storeRoute(key, r)
	return r
}

// Flood performs the region-restricted BFS broadcast from src within
// rect, memoized by (src, rect) — the hierarchy floods the same fixed
// squares from the same representatives on every round transition.
// The returned Reached slice is shared cache state and MUST be treated
// as read-only by callers.
func (rt *Router) Flood(src int32, within geo.Rect) FloodResult {
	key := floodKey{src: src, rect: within}
	if f, ok := rt.cache.lookupFlood(key); ok {
		return f
	}
	f := rt.floodSlow(src, within)
	rt.cache.storeFlood(key, f)
	return f
}

// floodSlow computes a flood with the epoch-stamped scratch. The Reached
// slice is freshly allocated (it outlives the call inside the cache).
func (rt *Router) floodSlow(src int32, within geo.Rect) FloodResult {
	g := rt.g
	if !within.Contains(g.Point(src)) {
		return FloodResult{Reached: []int32{src}}
	}
	rt.nextEpoch()
	epoch := rt.epoch
	rt.mark[src] = epoch
	// Freshly allocated: the result escapes into the cache and to
	// callers, so scratch reuse would alias live data.
	reached := make([]int32, 1, 16)
	reached[0] = src
	for head := 0; head < len(reached); head++ {
		u := reached[head]
		for _, v := range g.Neighbors(u) {
			if rt.mark[v] == epoch || !within.Contains(g.Point(v)) {
				continue
			}
			rt.mark[v] = epoch
			reached = append(reached, v)
		}
	}
	sortInt32(reached)
	return FloodResult{Reached: reached, Transmissions: len(reached)}
}
