package routing

import (
	"math"
	"testing"
	"testing/quick"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

func build(t *testing.T, pts []geo.Point, radius float64) *graph.Graph {
	t.Helper()
	g, err := graph.Build(pts, radius)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func generate(t *testing.T, n int, c float64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.Generate(n, c, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGreedyToPointOnChain(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.5), geo.Pt(0.2, 0.5), geo.Pt(0.3, 0.5), geo.Pt(0.4, 0.5), geo.Pt(0.5, 0.5)}
	g := build(t, pts, 0.11)
	res := GreedyToPoint(g, 0, geo.Pt(0.5, 0.5))
	if !res.Delivered {
		t.Fatal("not delivered")
	}
	if res.Hops != 4 {
		t.Fatalf("hops = %d, want 4", res.Hops)
	}
	want := []int32{0, 1, 2, 3, 4}
	for i, v := range want {
		if res.Path[i] != v {
			t.Fatalf("path = %v, want %v", res.Path, want)
		}
	}
}

func TestGreedyToPointAlreadyNearest(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.5, 0.5), geo.Pt(0.6, 0.5)}
	g := build(t, pts, 0.2)
	res := GreedyToPoint(g, 0, geo.Pt(0.49, 0.5))
	if res.Hops != 0 || !res.Delivered || len(res.Path) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestGreedyPathDistanceMonotone(t *testing.T) {
	g := generate(t, 800, 1.8, 21)
	r := rng.New(22)
	for trial := 0; trial < 200; trial++ {
		src := int32(r.IntN(g.N()))
		target := geo.Pt(r.Float64(), r.Float64())
		res := GreedyToPoint(g, src, target)
		prev := math.Inf(1)
		for _, v := range res.Path {
			d := g.Point(v).Dist(target)
			if d >= prev {
				t.Fatalf("distance to target not strictly decreasing along path")
			}
			prev = d
		}
		// End node must be a local minimum.
		last := res.Path[len(res.Path)-1]
		lastD2 := g.Point(last).Dist2(target)
		for _, v := range g.Neighbors(last) {
			if g.Point(v).Dist2(target) < lastD2 {
				t.Fatal("greedy stopped although a closer neighbour exists")
			}
		}
	}
}

func TestGreedyToNodeDelivers(t *testing.T) {
	g := generate(t, 1000, 1.8, 23)
	r := rng.New(24)
	delivered := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		src := int32(r.IntN(g.N()))
		dst := int32(r.IntN(g.N()))
		res := GreedyToNode(g, src, dst, RecoveryNone)
		if res.Delivered {
			delivered++
			if res.Path[len(res.Path)-1] != dst {
				t.Fatal("delivered but path does not end at dst")
			}
		}
	}
	// At c=1.8 greedy should deliver the overwhelming majority.
	if float64(delivered)/trials < 0.95 {
		t.Fatalf("greedy delivery rate %v too low", float64(delivered)/trials)
	}
}

func TestGreedyToNodeSelf(t *testing.T) {
	g := generate(t, 100, 2.0, 25)
	res := GreedyToNode(g, 7, 7, RecoveryNone)
	if !res.Delivered || res.Hops != 0 || len(res.Path) != 1 {
		t.Fatalf("self route = %+v", res)
	}
}

func TestGreedyToNodeStallAndRecovery(t *testing.T) {
	// A "C" shape: greedy from the lower lip toward the upper lip gets
	// stuck at the tip because the gap is wider than the radius.
	//
	//   4 5          (upper arm)    y=0.30
	//   3            (elbow)
	//   0 1 2        (lower arm)    y=0.10
	//
	// Target = node 6 placed right of node 2 but above, reachable only by
	// walking back around. Construct explicitly:
	pts := []geo.Point{
		geo.Pt(0.10, 0.10), // 0
		geo.Pt(0.20, 0.10), // 1
		geo.Pt(0.30, 0.10), // 2  lower tip (local minimum for target)
		geo.Pt(0.10, 0.20), // 3  elbow above 0
		geo.Pt(0.10, 0.30), // 4
		geo.Pt(0.20, 0.30), // 5
		geo.Pt(0.30, 0.30), // 6  target: 0.2 above node 2, out of radius
	}
	g := build(t, pts, 0.12)
	if g.HasEdge(2, 6) {
		t.Fatal("test geometry broken: 2-6 should not be an edge")
	}
	res := GreedyToNode(g, 0, 6, RecoveryNone)
	if res.Delivered {
		t.Fatalf("expected stall, got delivery via %v", res.Path)
	}
	rec := GreedyToNode(g, 0, 6, RecoveryBFS)
	if !rec.Delivered || !rec.Recovered {
		t.Fatalf("recovery failed: %+v", rec)
	}
	if rec.Path[len(rec.Path)-1] != 6 {
		t.Fatalf("recovered path does not end at target: %v", rec.Path)
	}
	for i := 0; i+1 < len(rec.Path); i++ {
		if !g.HasEdge(rec.Path[i], rec.Path[i+1]) {
			t.Fatalf("recovered path uses non-edge %d-%d", rec.Path[i], rec.Path[i+1])
		}
	}
	if rec.Hops != len(rec.Path)-1 {
		t.Fatalf("hops %d inconsistent with path length %d", rec.Hops, len(rec.Path))
	}
}

func TestGreedyRecoveryImpossibleWhenDisconnected(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.9, 0.9)}
	g := build(t, pts, 0.1)
	res := GreedyToNode(g, 0, 1, RecoveryBFS)
	if res.Delivered {
		t.Fatal("delivered across disconnected components")
	}
}

func TestRoundTrip(t *testing.T) {
	g := generate(t, 500, 2.0, 26)
	r := rng.New(27)
	for trial := 0; trial < 100; trial++ {
		src := int32(r.IntN(g.N()))
		dst := int32(r.IntN(g.N()))
		hops, delivered, _ := RoundTrip(g, src, dst, RecoveryBFS)
		if !delivered {
			t.Fatalf("round trip %d->%d failed", src, dst)
		}
		if src != dst && hops < 2 {
			// at least one hop each way unless adjacent? no: adjacent is 1+1.
			t.Fatalf("round trip hops = %d for distinct nodes", hops)
		}
		if src == dst && hops != 0 {
			t.Fatalf("self round trip hops = %d", hops)
		}
	}
}

func TestRoundTripHopsScaling(t *testing.T) {
	// Hop counts for cross-square routes should grow roughly like
	// sqrt(n / log n); check the ratio between n=256 and n=4096 is
	// within a loose band around 4x.
	mean := func(n int) float64 {
		g := generate(t, n, 1.8, 28)
		r := rng.New(29)
		total := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			src := int32(r.IntN(g.N()))
			dst := int32(r.IntN(g.N()))
			h, ok, _ := RoundTrip(g, src, dst, RecoveryBFS)
			if !ok {
				continue
			}
			total += h
		}
		return float64(total) / trials
	}
	m256 := mean(256)
	m4096 := mean(4096)
	ratio := m4096 / m256
	if ratio < 2 || ratio > 8 {
		t.Fatalf("hop scaling ratio %v (m256=%v, m4096=%v) outside [2, 8]", ratio, m256, m4096)
	}
}

func TestFloodReachesRegion(t *testing.T) {
	g := generate(t, 600, 2.0, 30)
	region := geo.NewRect(0.25, 0.25, 0.75, 0.75)
	// Find a source in the region.
	src := int32(-1)
	for i := int32(0); int(i) < g.N(); i++ {
		if region.Contains(g.Point(i)) {
			src = i
			break
		}
	}
	if src < 0 {
		t.Fatal("no node in region")
	}
	res := Flood(g, src, region)
	for _, v := range res.Reached {
		if !region.Contains(g.Point(v)) {
			t.Fatalf("flood escaped region: node %d at %v", v, g.Point(v))
		}
	}
	if res.Transmissions != len(res.Reached) {
		t.Fatalf("cost %d != reached %d", res.Transmissions, len(res.Reached))
	}
	// The region subgraph at c=2.0 over the half-width square is dense;
	// the flood should cover the bulk of the region's nodes.
	inRegion := g.NodesInRect(region)
	if float64(len(res.Reached)) < 0.9*float64(len(inRegion)) {
		t.Fatalf("flood reached %d of %d region nodes", len(res.Reached), len(inRegion))
	}
	// Sorted output.
	for i := 1; i < len(res.Reached); i++ {
		if res.Reached[i-1] >= res.Reached[i] {
			t.Fatal("reached list not sorted")
		}
	}
}

func TestFloodFromOutsideRegion(t *testing.T) {
	g := generate(t, 100, 2.0, 31)
	region := geo.NewRect(0.4, 0.4, 0.6, 0.6)
	src := int32(-1)
	for i := int32(0); int(i) < g.N(); i++ {
		if !region.Contains(g.Point(i)) {
			src = i
			break
		}
	}
	res := Flood(g, src, region)
	if len(res.Reached) != 1 || res.Reached[0] != src || res.Transmissions != 0 {
		t.Fatalf("flood from outside = %+v", res)
	}
}

func TestFloodSingleNodeRegion(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.5, 0.5), geo.Pt(0.52, 0.5)}
	g := build(t, pts, 0.1)
	region := geo.NewRect(0.49, 0.49, 0.51, 0.51) // only node 0
	res := Flood(g, 0, region)
	if len(res.Reached) != 1 || res.Reached[0] != 0 {
		t.Fatalf("reached = %v", res.Reached)
	}
	if res.Transmissions != 1 {
		t.Fatalf("transmissions = %d, want 1", res.Transmissions)
	}
}

func TestQuickGreedyPathsAreEdges(t *testing.T) {
	g := generate(t, 400, 1.8, 32)
	f := func(sRaw, xRaw, yRaw uint16) bool {
		src := int32(int(sRaw) % g.N())
		target := geo.Pt(float64(xRaw)/65536, float64(yRaw)/65536)
		res := GreedyToPoint(g, src, target)
		for i := 0; i+1 < len(res.Path); i++ {
			if !g.HasEdge(res.Path[i], res.Path[i+1]) {
				return false
			}
		}
		return res.Hops == len(res.Path)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
