package routing

import (
	"sync"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

func routerGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.Generate(n, 1.5, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sparseGraph builds an instance below the connectivity radius so greedy
// stalls (and disconnections) actually occur and the recovery paths are
// exercised.
func sparseGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	pts := graph.UniformPoints(n, rng.New(seed))
	g, err := graph.Build(pts, 0.6*graph.ConnectivityRadius(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRouterMatchesReference verifies the hops-only Router agrees with
// the Path-materializing reference functions on every field the engines
// consume — on a connected instance and on a sparse one where stalls,
// BFS recovery, and undeliverable routes all fire — and that a second
// (cache-hit) pass returns the same answers.
func TestRouterMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"connected", routerGraph(t, 512, 1)},
		{"sparse", sparseGraph(t, 512, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			rt := NewRouter(g, nil)
			r := rng.New(3)
			check := func(src, dst int32, rec Recovery) {
				want := GreedyToNode(g, src, dst, rec)
				for pass := 0; pass < 2; pass++ { // miss then hit
					got := rt.RouteToNode(src, dst, rec)
					if got.Hops != want.Hops || got.Delivered != want.Delivered ||
						got.Recovered != want.Recovered || got.Last != want.Path[len(want.Path)-1] {
						t.Fatalf("pass %d: route %d->%d rec=%d: got %+v, want hops=%d delivered=%v recovered=%v last=%d",
							pass, src, dst, rec, got, want.Hops, want.Delivered, want.Recovered, want.Path[len(want.Path)-1])
					}
				}
			}
			for i := 0; i < 300; i++ {
				src := int32(r.IntN(g.N()))
				dst := int32(r.IntN(g.N()))
				check(src, dst, RecoveryBFS)
				check(src, dst, RecoveryNone)

				y := geo.Pt(r.Float64(), r.Float64())
				wantP := GreedyToPoint(g, src, y)
				gotP := rt.RouteToPoint(src, y)
				if gotP.Hops != wantP.Hops || !gotP.Delivered || gotP.Last != wantP.Path[len(wantP.Path)-1] {
					t.Fatalf("point route from %d to %v: got %+v, want hops=%d last=%d",
						src, y, gotP, wantP.Hops, wantP.Path[len(wantP.Path)-1])
				}
			}
		})
	}
}

// TestRouterFloodMatchesReference verifies cached floods agree with the
// reference Flood, including sources outside the region.
func TestRouterFloodMatchesReference(t *testing.T) {
	g := routerGraph(t, 512, 4)
	rt := NewRouter(g, nil)
	rects := []geo.Rect{
		geo.NewRect(0, 0, 0.5, 0.5),
		geo.NewRect(0.25, 0.25, 0.75, 0.75),
		geo.NewRect(0.5, 0.5, 1, 1),
		geo.NewRect(0.1, 0.6, 0.3, 0.9),
	}
	for _, rect := range rects {
		for src := int32(0); src < 64; src++ {
			want := Flood(g, src, rect)
			for pass := 0; pass < 2; pass++ { // miss then hit
				got := rt.Flood(src, rect)
				if got.Transmissions != want.Transmissions || len(got.Reached) != len(want.Reached) {
					t.Fatalf("flood from %d in %v: got %d nodes/%d tx, want %d/%d",
						src, rect, len(got.Reached), got.Transmissions, len(want.Reached), want.Transmissions)
				}
				for i := range want.Reached {
					if got.Reached[i] != want.Reached[i] {
						t.Fatalf("flood from %d in %v: Reached[%d] = %d, want %d",
							src, rect, i, got.Reached[i], want.Reached[i])
					}
				}
			}
		}
	}
}

// TestCacheRejectsForeignGraph pins the graph-binding guard: one Cache
// shared across routers of different graphs must panic rather than
// serve routes of the wrong instance.
func TestCacheRejectsForeignGraph(t *testing.T) {
	g1 := routerGraph(t, 128, 5)
	g2 := routerGraph(t, 128, 6)
	cache := NewCache()
	NewRouter(g1, cache)
	NewRouter(g1, cache) // same graph: fine
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter accepted a Cache bound to a different graph")
		}
	}()
	NewRouter(g2, cache)
}

// TestRouterZeroAllocWarm asserts the core claim: warm Router operation
// allocates nothing — cached routes and floods trivially, but also
// uncached (NoCache) greedy and BFS-recovered routes once the scratch
// arrays exist.
func TestRouterZeroAllocWarm(t *testing.T) {
	g := routerGraph(t, 1024, 7)
	sg := sparseGraph(t, 1024, 8)

	// Pick a sparse-graph pair that needs BFS recovery, so the
	// uncached-route measurement exercises the epoch scratch.
	var bfsSrc, bfsDst int32 = -1, -1
	probe := NewRouter(sg, NoCache())
	r := rng.New(9)
	for i := 0; i < 5000 && bfsSrc < 0; i++ {
		src := int32(r.IntN(sg.N()))
		dst := int32(r.IntN(sg.N()))
		res := probe.RouteToNode(src, dst, RecoveryBFS)
		if res.Recovered {
			bfsSrc, bfsDst = src, dst
		}
	}
	if bfsSrc < 0 {
		t.Fatal("no BFS-recovered pair found on the sparse instance")
	}

	cachedRT := NewRouter(g, nil)
	cachedRT.RouteToNode(1, 500, RecoveryBFS)
	if n := testing.AllocsPerRun(100, func() { cachedRT.RouteToNode(1, 500, RecoveryBFS) }); n != 0 {
		t.Errorf("warm cached route: %v allocs/op, want 0", n)
	}

	region := geo.NewRect(0.25, 0.25, 0.5, 0.5)
	cachedRT.Flood(3, region)
	if n := testing.AllocsPerRun(100, func() { cachedRT.Flood(3, region) }); n != 0 {
		t.Errorf("warm cached flood: %v allocs/op, want 0", n)
	}

	uncachedRT := NewRouter(g, NoCache())
	uncachedRT.RouteToNode(1, 500, RecoveryBFS)
	if n := testing.AllocsPerRun(100, func() { uncachedRT.RouteToNode(1, 500, RecoveryBFS) }); n != 0 {
		t.Errorf("warm uncached greedy route: %v allocs/op, want 0", n)
	}

	probe.RouteToNode(bfsSrc, bfsDst, RecoveryBFS)
	if n := testing.AllocsPerRun(100, func() { probe.RouteToNode(bfsSrc, bfsDst, RecoveryBFS) }); n != 0 {
		t.Errorf("warm uncached BFS-recovered route: %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() { cachedRT.RouteToPoint(1, geo.Pt(0.9, 0.9)) }); n != 0 {
		t.Errorf("point route: %v allocs/op, want 0", n)
	}
}

// TestCacheStats verifies hit/miss accounting and the NoCache sentinel.
func TestCacheStats(t *testing.T) {
	g := routerGraph(t, 256, 10)
	rt := NewRouter(g, nil)
	rt.RouteToNode(0, 100, RecoveryBFS)
	rt.RouteToNode(0, 100, RecoveryBFS)
	rt.RouteToNode(0, 100, RecoveryNone)
	region := geo.NewRect(0, 0, 0.5, 0.5)
	rt.Flood(0, region)
	rt.Flood(0, region)
	s := rt.Stats()
	if s.RouteHits != 1 || s.RouteMisses != 2 {
		t.Errorf("route stats = %d hits / %d misses, want 1/2", s.RouteHits, s.RouteMisses)
	}
	if s.FloodHits != 1 || s.FloodMisses != 1 {
		t.Errorf("flood stats = %d hits / %d misses, want 1/1", s.FloodHits, s.FloodMisses)
	}
	if got := s.RouteHitRate(); got != 1.0/3 {
		t.Errorf("route hit rate = %v, want 1/3", got)
	}

	nc := NewRouter(g, NoCache())
	nc.RouteToNode(0, 100, RecoveryBFS)
	nc.RouteToNode(0, 100, RecoveryBFS)
	if s := nc.Stats(); s.RouteHits != 0 || s.RouteMisses != 2 {
		t.Errorf("NoCache stats = %+v, want 0 hits / 2 misses", s)
	}

	var agg CacheStats
	agg.Add(s)
	agg.Add(rt.Stats())
	if agg.RouteMisses != 2+2 {
		t.Errorf("aggregated route misses = %d, want 4", agg.RouteMisses)
	}
	if (CacheStats{}).RouteHitRate() != 0 || (CacheStats{}).FloodHitRate() != 0 {
		t.Error("zero stats should report zero hit rates")
	}
}

// TestSharedCacheConcurrent exercises the sweep pattern: several
// goroutine-local Routers share one Cache over the same graph. Run under
// -race this checks the locking; the assertions check cross-router
// answers stay identical to the reference.
func TestSharedCacheConcurrent(t *testing.T) {
	g := routerGraph(t, 512, 11)
	cache := NewCache()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rt := NewRouter(g, cache)
			r := rng.New(seed)
			for i := 0; i < 200; i++ {
				src := int32(r.IntN(g.N()))
				// src == dst short-circuits before the cache, which would
				// throw off the lookup count below.
				dst := int32(r.IntNExcept(g.N(), int(src)))
				want := GreedyToNode(g, src, dst, RecoveryBFS)
				got := rt.RouteToNode(src, dst, RecoveryBFS)
				if got.Hops != want.Hops || got.Delivered != want.Delivered {
					errs <- "shared-cache route diverged from reference"
					return
				}
			}
		}(uint64(w + 20))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// 8 workers × 200 calls, one lookup each.
	if s := cache.Stats(); s.RouteHits+s.RouteMisses != 8*200 {
		t.Errorf("total route lookups = %d, want %d", s.RouteHits+s.RouteMisses, 8*200)
	}
}

// TestFloodReachedIsSorted guards the Reached ordering contract shared
// by the reference and cached paths.
func TestFloodReachedIsSorted(t *testing.T) {
	g := routerGraph(t, 512, 12)
	rt := NewRouter(g, nil)
	fl := rt.Flood(0, geo.NewRect(0, 0, 1, 1))
	for i := 1; i < len(fl.Reached); i++ {
		if fl.Reached[i-1] >= fl.Reached[i] {
			t.Fatalf("Reached not strictly ascending at %d: %d >= %d", i, fl.Reached[i-1], fl.Reached[i])
		}
	}
	if fl.Transmissions != g.N() {
		t.Fatalf("full-square flood reached %d nodes, want %d", fl.Transmissions, g.N())
	}
}
