package routing

import (
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
	"geogossip/internal/rng"
)

// Benchmarks for BENCH_routing.json: the cold (reference, Path-
// materializing), warm-uncached (hops-only, zero-alloc), and warm-cached
// (memoized) costs of the two packet-movement primitives. Regenerate
// with
//
//	go test -run '^$' -bench 'BenchmarkRoute|BenchmarkFlood' -benchtime 2s -benchmem ./internal/routing/
//
// and update BENCH_routing.json before landing routing hot-path changes.

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := graph.Generate(n, 1.5, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchPairs returns a fixed set of random route endpoints so the cold
// and warm benchmarks walk identical work.
func benchPairs(g *graph.Graph, k int) [][2]int32 {
	r := rng.New(2)
	pairs := make([][2]int32, k)
	for i := range pairs {
		pairs[i] = [2]int32{int32(r.IntN(g.N())), int32(r.IntN(g.N()))}
	}
	return pairs
}

// BenchmarkRouteReference is the pre-Router baseline: GreedyToNode
// materializes a Path slice per call.
func BenchmarkRouteReference(b *testing.B) {
	g := benchGraph(b, 4096)
	pairs := benchPairs(g, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		GreedyToNode(g, p[0], p[1], RecoveryBFS)
	}
}

// BenchmarkRouteUncached is the hops-only fast path with memoization
// off: the greedy/BFS work still runs every call, but with epoch
// scratch and no Path it allocates nothing.
func BenchmarkRouteUncached(b *testing.B) {
	g := benchGraph(b, 4096)
	pairs := benchPairs(g, 256)
	rt := NewRouter(g, NoCache())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		rt.RouteToNode(p[0], p[1], RecoveryBFS)
	}
}

// BenchmarkRouteCacheHit is the steady state of the hierarchy engines:
// the same rep↔rep pairs routed over and over.
func BenchmarkRouteCacheHit(b *testing.B) {
	g := benchGraph(b, 4096)
	pairs := benchPairs(g, 256)
	rt := NewRouter(g, nil)
	for _, p := range pairs {
		rt.RouteToNode(p[0], p[1], RecoveryBFS)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		rt.RouteToNode(p[0], p[1], RecoveryBFS)
	}
}

// BenchmarkRouteToPoint is the rejection-sampling primitive: never
// cached, allocation-free even cold.
func BenchmarkRouteToPoint(b *testing.B) {
	g := benchGraph(b, 4096)
	r := rng.New(3)
	targets := make([]geo.Point, 256)
	srcs := make([]int32, 256)
	for i := range targets {
		targets[i] = geo.Pt(r.Float64(), r.Float64())
		srcs[i] = int32(r.IntN(g.N()))
	}
	rt := NewRouter(g, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.RouteToPoint(srcs[i%len(srcs)], targets[i%len(targets)])
	}
}

func floodSource(b *testing.B, g *graph.Graph, region geo.Rect) int32 {
	b.Helper()
	for i := int32(0); int(i) < g.N(); i++ {
		if region.Contains(g.Point(i)) {
			return i
		}
	}
	b.Fatal("no node in region")
	return -1
}

// BenchmarkFloodReference is the pre-Router baseline: map-visited BFS
// plus a fresh Reached slice per call.
func BenchmarkFloodReference(b *testing.B) {
	g := benchGraph(b, 4096)
	region := geo.NewRect(0.25, 0.25, 0.5, 0.5)
	src := floodSource(b, g, region)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Flood(g, src, region)
	}
}

// BenchmarkFloodUncached measures the epoch-scratch flood with
// memoization off (one Reached allocation per call — the result
// escapes).
func BenchmarkFloodUncached(b *testing.B) {
	g := benchGraph(b, 4096)
	region := geo.NewRect(0.25, 0.25, 0.5, 0.5)
	src := floodSource(b, g, region)
	rt := NewRouter(g, NoCache())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Flood(src, region)
	}
}

// BenchmarkFloodCacheHit is the async engine's steady state: the same
// leaf squares flooded from the same representatives on every round
// transition.
func BenchmarkFloodCacheHit(b *testing.B) {
	g := benchGraph(b, 4096)
	region := geo.NewRect(0.25, 0.25, 0.5, 0.5)
	src := floodSource(b, g, region)
	rt := NewRouter(g, nil)
	rt.Flood(src, region)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Flood(src, region)
	}
}
