// Package routing implements the packet-movement primitives the paper's
// protocol relies on: greedy geographic routing (each hop forwards to the
// neighbour nearest the destination position, as in Dimakis et al. [5])
// and region-restricted flooding (used by Activate.square/Deactivate.square
// at the lowest hierarchy level).
//
// Transmission accounting convention (see DESIGN.md §3): a route of h hops
// costs h transmissions; flooding a region of m reachable nodes costs m
// transmissions (every reached node rebroadcasts once).
package routing

import (
	"slices"

	"geogossip/internal/geo"
	"geogossip/internal/graph"
)

// Recovery selects what to do when greedy forwarding stalls at a local
// minimum (a node closer to the target than all of its neighbours, that is
// still not the destination node).
type Recovery int

const (
	// RecoveryNone reports failure on a stall. Use it to measure the raw
	// greedy success rate (experiment E6).
	RecoveryNone Recovery = iota + 1
	// RecoveryBFS completes the route along a shortest path from the stall
	// node, charging its hops. This stands in for the face-routing repair
	// used in practice; stalls are rare at the connectivity radius, and the
	// experiments report how often recovery fired.
	RecoveryBFS
)

// Result describes one routing attempt.
type Result struct {
	// Path lists the nodes visited, starting with the source. For
	// recovered routes it includes the recovery segment.
	Path []int32
	// Hops is the number of transmissions used (len(Path) - 1 when the
	// route made progress; 0 for an immediate stall or self-delivery).
	Hops int
	// Delivered reports whether the packet reached the intended node (or,
	// for GreedyToPoint, the node nearest the target point).
	Delivered bool
	// Recovered reports whether BFS recovery was needed.
	Recovered bool
}

// GreedyToPoint routes a packet from node src greedily toward the position
// target. Each hop moves to the neighbour strictly closest to target among
// those closer than the current node. The route ends at a node that is
// closer to target than all of its neighbours — by construction the
// greedy-reachable node nearest the target. This is the primitive
// geographic gossip uses to contact "the node nearest a random position",
// so the result is always Delivered.
func GreedyToPoint(g *graph.Graph, src int32, target geo.Point) Result {
	path := []int32{src}
	cur := src
	curD2 := g.Point(cur).Dist2(target)
	for {
		next := int32(-1)
		nextD2 := curD2
		for _, v := range g.Neighbors(cur) {
			if d2 := g.Point(v).Dist2(target); d2 < nextD2 {
				next = v
				nextD2 = d2
			}
		}
		if next < 0 {
			return Result{Path: path, Hops: len(path) - 1, Delivered: true}
		}
		cur, curD2 = next, nextD2
		path = append(path, cur)
	}
}

// GreedyToNode routes a packet from src toward the position of node dst.
// Delivery succeeds if the greedy walk reaches dst exactly. On a stall,
// behaviour depends on rec: RecoveryNone reports failure; RecoveryBFS
// finishes the route along a shortest path (if one exists) and marks the
// result Recovered.
func GreedyToNode(g *graph.Graph, src, dst int32, rec Recovery) Result {
	if src == dst {
		return Result{Path: []int32{src}, Delivered: true}
	}
	res := GreedyToPoint(g, src, g.Point(dst))
	last := res.Path[len(res.Path)-1]
	if last == dst {
		return res
	}
	res.Delivered = false
	if rec != RecoveryBFS {
		return res
	}
	tail := g.BFSPath(last, dst)
	if tail == nil {
		return res // disconnected: recovery impossible
	}
	res.Path = append(res.Path, tail[1:]...)
	res.Hops = len(res.Path) - 1
	res.Delivered = true
	res.Recovered = true
	return res
}

// RoundTrip performs the two greedy routes of one long-range exchange
// (value out, value back, §3 steps 1–2) and returns the total hop count
// plus delivery status. The return trip starts where the outbound trip
// ended.
func RoundTrip(g *graph.Graph, src, dst int32, rec Recovery) (hops int, delivered, recovered bool) {
	out := GreedyToNode(g, src, dst, rec)
	if !out.Delivered {
		return out.Hops, false, out.Recovered
	}
	back := GreedyToNode(g, dst, src, rec)
	return out.Hops + back.Hops, back.Delivered, out.Recovered || back.Recovered
}

// FloodResult describes a region-restricted flood.
type FloodResult struct {
	// Reached lists the nodes the flood reached (including the source),
	// sorted ascending.
	Reached []int32
	// Transmissions is the flood's cost: one broadcast per reached node.
	Transmissions int
}

// Flood performs a BFS broadcast from src restricted to nodes inside
// within: a node relays the packet only to neighbours inside the region.
// This is how a level-1 representative switches its square's nodes on or
// off. If src itself is outside the region the flood dies immediately
// (zero cost, only src reached).
func Flood(g *graph.Graph, src int32, within geo.Rect) FloodResult {
	if !within.Contains(g.Point(src)) {
		return FloodResult{Reached: []int32{src}}
	}
	visited := map[int32]bool{src: true}
	// The reached slice doubles as a head-indexed BFS queue: every
	// reached node is scanned exactly once, and no `queue = queue[1:]`
	// re-slicing pins the consumed head of the backing array alive.
	reached := []int32{src}
	for head := 0; head < len(reached); head++ {
		u := reached[head]
		for _, v := range g.Neighbors(u) {
			if visited[v] || !within.Contains(g.Point(v)) {
				continue
			}
			visited[v] = true
			reached = append(reached, v)
		}
	}
	sortInt32(reached)
	return FloodResult{Reached: reached, Transmissions: len(reached)}
}

func sortInt32(s []int32) { slices.Sort(s) }
