package netstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
)

// Key is the semantic build fingerprint: everything that determines the
// bits of a built network. RadiusMult is the connectivity-radius
// multiplier c (the resolved radius is ConnectivityRadius(N, c));
// LeafTarget and MaxDepth are the configured hierarchy knobs, zero
// meaning the documented defaults. Worker counts are deliberately absent
// — construction is byte-identical at any parallelism.
type Key struct {
	N          int
	Seed       uint64
	RadiusMult float64
	LeafTarget float64
	MaxDepth   int
}

// Radius resolves the key's connection radius exactly as the builders do.
func (k Key) Radius() float64 { return graph.ConnectivityRadius(k.N, k.RadiusMult) }

// Fingerprint returns the key's content address. The format version is
// part of the preimage, so a format bump silently invalidates every
// cached entry instead of tripping version errors on load. Floats are
// fingerprinted by their IEEE-754 bits: keys collide exactly when the
// builds they describe would.
func (k Key) Fingerprint() string {
	pre := fmt.Sprintf("geogossip net v%d n=%d seed=%d c=%016x lt=%016x md=%d",
		FormatVersion, k.N, k.Seed,
		math.Float64bits(k.RadiusMult), math.Float64bits(k.LeafTarget), k.MaxDepth)
	sum := sha256.Sum256([]byte(pre))
	return hex.EncodeToString(sum[:])
}

// Stats is a point-in-time snapshot of a store's counters.
type Stats struct {
	// Hits counts networks loaded from disk; Misses counts cache misses
	// that fell back to a fresh build (including corrupted entries, which
	// Corrupt counts separately).
	Hits, Misses, Corrupt uint64
	// StoredBytes totals the snapshot bytes written by this process.
	StoredBytes int64
	// LoadTime is the cumulative wall-clock spent decoding snapshots.
	LoadTime time.Duration
}

// Store is a content-addressed cache of built networks under one
// directory. Entries are written via temp file + rename, so concurrent
// processes sharing the directory never observe partial snapshots; a
// half-written file left by a crash fails its checksums on load and is
// removed and rebuilt transparently.
type Store struct {
	dir string

	mu       sync.Mutex
	inflight map[string]*flight

	hits, misses, corrupt atomic.Uint64
	storedBytes           atomic.Int64
	loadNanos             atomic.Int64
}

type flight struct {
	done   chan struct{}
	g      *graph.Graph
	h      *hier.Hierarchy
	loaded bool
	err    error
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("netstore: %w", err)
	}
	return &Store{dir: dir, inflight: make(map[string]*flight)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corrupt:     s.corrupt.Load(),
		StoredBytes: s.storedBytes.Load(),
		LoadTime:    time.Duration(s.loadNanos.Load()),
	}
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.Fingerprint()+".ggsnap")
}

// GetOrBuild returns the network for key, loading it from the store when
// a valid snapshot exists and otherwise calling build and persisting the
// result. The returned bool reports a load. Concurrent calls for the
// same key within this process share one load/build (singleflight);
// distinct keys never block each other. A corrupted or stale entry is
// removed and rebuilt — the store degrades to a plain build, it never
// fails a run that a build would have completed. build errors (e.g. a
// disconnected instance) are returned as-is and nothing is stored, so
// only connected, fully built networks ever enter the store.
func (s *Store) GetOrBuild(key Key, workers int, build func() (*graph.Graph, *hier.Hierarchy, error)) (*graph.Graph, *hier.Hierarchy, bool, error) {
	fp := key.Fingerprint()
	s.mu.Lock()
	if f, ok := s.inflight[fp]; ok {
		s.mu.Unlock()
		<-f.done
		// Followers ride the leader's load or build; the counters track
		// disk traffic, so they count nothing here.
		return f.g, f.h, f.loaded, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[fp] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inflight, fp)
		s.mu.Unlock()
		close(f.done)
	}()

	path := s.path(key)
	if g, h, err := s.load(path, key, workers); err == nil {
		f.g, f.h, f.loaded = g, h, true
		return g, h, true, nil
	} else if !os.IsNotExist(err) {
		// Present but unreadable: corrupt, truncated, or written by an
		// incompatible build. Drop it and fall through to a fresh build.
		s.corrupt.Add(1)
		os.Remove(path)
	}
	s.misses.Add(1)

	g, h, err := build()
	if err != nil {
		f.err = err
		return nil, nil, false, err
	}
	f.g, f.h = g, h
	s.persist(path, key, g, h)
	return g, h, false, nil
}

// load reads and validates the snapshot at path, checking its meta and
// its point placement against the key so a (vanishingly unlikely)
// fingerprint collision or a hand-renamed file cannot smuggle in the
// wrong network. Replaying the O(n) point draw is noise next to the
// O(n·deg) adjacency scan the load avoids, and it anchors the whole
// entry: the points must match the seed bit-for-bit, and Decode already
// cross-validated every other table against the points.
func (s *Store) load(path string, key Key, workers int) (*graph.Graph, *hier.Hierarchy, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fh.Close()
	start := time.Now()
	g, h, meta, err := Decode(fh, workers)
	if err != nil {
		return nil, nil, err
	}
	want := Meta{N: key.N, Radius: key.Radius(), LeafTarget: key.LeafTarget, MaxDepth: key.MaxDepth}
	if meta != want {
		return nil, nil, fmt.Errorf("netstore: snapshot meta %+v does not match key %+v", meta, want)
	}
	pts := g.Points()
	for i, p := range graph.UniformPoints(key.N, rng.New(key.Seed).Stream("points")) {
		if pts[i] != p {
			return nil, nil, fmt.Errorf("netstore: snapshot point %d = %v, seed %d places %v", i, pts[i], key.Seed, p)
		}
	}
	s.loadNanos.Add(time.Since(start).Nanoseconds())
	s.hits.Add(1)
	return g, h, nil
}

// persist writes the snapshot atomically, best-effort: a full disk or
// read-only directory costs the cache, never the run.
func (s *Store) persist(path string, key Key, g *graph.Graph, h *hier.Hierarchy) {
	tmp, err := os.CreateTemp(s.dir, ".ggsnap-*")
	if err != nil {
		return
	}
	meta := Meta{N: key.N, Radius: key.Radius(), LeafTarget: key.LeafTarget, MaxDepth: key.MaxDepth}
	if err := Encode(tmp, meta, g, h); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	size, sizeErr := tmp.Seek(0, 2)
	if err := tmp.Close(); err != nil || sizeErr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.storedBytes.Add(size)
}
