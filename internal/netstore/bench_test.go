package netstore

import (
	"bytes"
	"fmt"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
)

// Load-vs-build benchmarks: the headline contract of this package is
// that decoding a snapshot (sequential read + validation) beats
// reconstructing the network (O(n·deg) radius scan + hierarchy
// recursion) by a wide margin at scale. Reference numbers live in
// BENCH_engines.json; the million-node cases are skipped under -short so
// bench smoke stays bounded.
func BenchmarkSnapshotLoad(b *testing.B) {
	for _, c := range []struct {
		n     int
		large bool
	}{
		{65536, false},
		{1000000, true},
	} {
		b.Run(fmt.Sprintf("n=%d", c.n), func(b *testing.B) {
			if c.large && testing.Short() {
				b.Skip("million-node snapshot skipped in -short mode")
			}
			g, err := graph.GenerateWorkers(c.n, 1.5, rng.New(991), 0)
			if err != nil {
				b.Fatal(err)
			}
			h, err := hier.Build(g.Points(), hier.Config{})
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Encode(&buf, Meta{N: c.n, Radius: g.Radius()}, g, h); err != nil {
				b.Fatal(err)
			}
			raw := buf.Bytes()
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g2, _, _, err := Decode(bytes.NewReader(raw), 0)
				if err != nil {
					b.Fatal(err)
				}
				if g2.N() != c.n {
					b.Fatalf("decoded %d nodes, want %d", g2.N(), c.n)
				}
			}
		})
	}
}

// BenchmarkNetworkBuild is the rebuild this package's loads replace —
// the same generate + hierarchy pipeline the sweep's netCache runs on a
// store miss. Compare against BenchmarkSnapshotLoad at equal n.
func BenchmarkNetworkBuild(b *testing.B) {
	for _, c := range []struct {
		n     int
		large bool
	}{
		{65536, false},
		{1000000, true},
	} {
		b.Run(fmt.Sprintf("n=%d", c.n), func(b *testing.B) {
			if c.large && testing.Short() {
				b.Skip("million-node build skipped in -short mode")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := graph.GenerateWorkers(c.n, 1.5, rng.New(991), 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := hier.Build(g.Points(), hier.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
