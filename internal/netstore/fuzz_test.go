package netstore

import (
	"bytes"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
)

// fuzzSeed encodes a tiny but fully populated snapshot (adjacency,
// index, voronoi, multi-level hierarchy) for the fuzzer to mutate.
func fuzzSeed(f *testing.F, n int, seed uint64, c float64, leafTarget float64) []byte {
	f.Helper()
	g, err := graph.Generate(n, c, rng.New(seed))
	if err != nil {
		f.Fatal(err)
	}
	h, err := hier.Build(g.Points(), hier.Config{LeafTarget: leafTarget})
	if err != nil {
		f.Fatal(err)
	}
	g.VoronoiAreas()
	var buf bytes.Buffer
	if err := Encode(&buf, Meta{N: n, Radius: g.Radius(), LeafTarget: leafTarget}, g, h); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode asserts the decoder never panics and never lets a hostile
// length prefix drive allocations: allocation is bounded by bytes
// actually delivered (snap.Reader grows payloads in 1MB chunks against
// the real stream), and every count is validated against its section's
// remaining payload before use. Inputs either decode to a fully
// validated network or fail with an error.
func FuzzDecode(f *testing.F) {
	valid := fuzzSeed(f, 40, 1, 2.0, 8)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:13])
	f.Add([]byte("{\"version\":1,\"radius\":0.1}"))
	f.Add([]byte("\x89GGS\r\n\x1a\n"))
	hostile := append([]byte(nil), valid[:12]...)
	hostile = append(hostile, []byte("META\xff\xff\xff\xff\xff\xff\xff\x7f")...)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, h, meta, err := Decode(bytes.NewReader(data), 1)
		if err != nil {
			return
		}
		// Rare survivors must be coherent networks, not partially
		// validated wreckage.
		if g.N() != meta.N || len(h.NodeLeaf) != meta.N {
			t.Fatalf("decoded network inconsistent with meta %+v", meta)
		}
	})
}
