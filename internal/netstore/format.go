// Package netstore persists fully built networks — points, packed CSR
// adjacency, cell index, cached Voronoi areas and the flattened
// hierarchy tables — as versioned binary snapshots, and caches them in a
// content-addressed on-disk store keyed by the semantic build
// fingerprint. Loading a snapshot is a sequential I/O pass plus
// validation; the O(n·deg) radius scan and the hierarchy recursion are
// skipped entirely, which is where effectively all of the ~13s
// million-node build goes (DESIGN.md §11).
//
// A snapshot that decodes successfully is bit-identical to the fresh
// build it was taken from: floats travel as raw IEEE-754 bits, and the
// graph/hier FromSnapshot constructors cross-validate every table
// against re-derived structure, so sweeps produce byte-identical JSONL
// whether their networks were built or loaded.
package netstore

import (
	"fmt"
	"io"
	"math"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/snap"
)

// FormatVersion is the binary snapshot version. Version 1 is the legacy
// JSON points-only format (serialize.go), which shares the version
// numbering but not the container: binary snapshots are identified by
// snap.Magic, JSON by a leading '{'.
const FormatVersion = 2

// Section tags, in the order Encode writes them. VORO is omitted when
// the Voronoi areas were never computed.
const (
	tagMeta    = "META"
	tagPoints  = "PNTS"
	tagAdj     = "GADJ"
	tagIndex   = "GIDX"
	tagVoronoi = "VORO"
	tagHier    = "HIER"
)

// Meta records the build parameters a snapshot was produced under.
// Radius is the resolved connection radius; LeafTarget and MaxDepth are
// the *configured* hierarchy values (zero selects the documented
// defaults), so a loaded network reports the same configuration its
// builder was given.
type Meta struct {
	N          int
	Radius     float64
	LeafTarget float64
	MaxDepth   int
}

// Encode writes the network as a binary snapshot. The graph and
// hierarchy must be over the same point set (hier.Build(g.Points(), …)).
func Encode(w io.Writer, meta Meta, g *graph.Graph, h *hier.Hierarchy) error {
	gs := g.Snapshot()
	hs := h.Snapshot()
	sw := snap.NewWriter(w, FormatVersion)
	sw.Section(tagMeta, func(e *snap.Enc) {
		e.U64(uint64(meta.N))
		e.F64(meta.Radius)
		e.F64(meta.LeafTarget)
		e.I64(int64(meta.MaxDepth))
	})
	sw.Section(tagPoints, func(e *snap.Enc) { e.Points(g.Points()) })
	sw.Section(tagAdj, func(e *snap.Enc) {
		e.I32s(gs.Offsets)
		e.I32s(gs.Flat)
	})
	sw.Section(tagIndex, func(e *snap.Enc) {
		e.F64(gs.Index.CellSize)
		e.U64(uint64(gs.Index.Cols))
		e.U64(uint64(gs.Index.Rows))
		e.I32s(gs.Index.CellStart)
		e.I32s(gs.Index.CellIDs)
	})
	if gs.Voronoi != nil {
		sw.Section(tagVoronoi, func(e *snap.Enc) { e.F64s(gs.Voronoi) })
	}
	sw.Section(tagHier, func(e *snap.Enc) {
		e.I32s(hs.Branching)
		e.I32s(hs.Reps)
		e.I32s(hs.MemberCounts)
		e.I32s(hs.MemberBlock)
		e.I32s(hs.NodeLeaf)
		e.I32s(hs.NodeLevel)
		e.I32s(hs.RoleCounts)
		e.I32s(hs.RoleBlock)
	})
	return sw.Close()
}

// Decode reads a binary snapshot and reconstructs the network,
// validating every table (see graph.FromSnapshot, hier.FromSnapshot).
// workers seeds the loaded graph's derived-computation pool exactly like
// the build-time parameter; it never affects the loaded tables. Decode
// never trusts declared sizes: allocations are bounded by bytes actually
// delivered, so hostile inputs fail with an error, not an OOM.
func Decode(r io.Reader, workers int) (*graph.Graph, *hier.Hierarchy, Meta, error) {
	sr, err := snap.NewReader(r)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	if v := sr.Version(); v != FormatVersion {
		return nil, nil, Meta{}, fmt.Errorf("netstore: snapshot version %d, this build reads %d", v, FormatVersion)
	}

	// The writer emits a fixed section order; the decoder demands it.
	// Anything else — reordered, duplicated, unknown or missing sections —
	// is corruption (or a future format this build cannot read).
	next := func(want ...string) (string, *snap.Dec, error) {
		tag, d, err := sr.Next()
		if err != nil {
			return "", nil, err
		}
		for _, w := range want {
			if tag == w {
				return tag, d, nil
			}
		}
		return "", nil, fmt.Errorf("netstore: unexpected section %q (want %v)", tag, want)
	}

	var meta Meta
	_, d, err := next(tagMeta)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	n, err := d.U64()
	if err != nil {
		return nil, nil, Meta{}, err
	}
	if n > math.MaxInt32 {
		return nil, nil, Meta{}, fmt.Errorf("netstore: snapshot claims %d nodes, over the int32 id space", n)
	}
	meta.N = int(n)
	if meta.Radius, err = d.F64(); err != nil {
		return nil, nil, Meta{}, err
	}
	if meta.LeafTarget, err = d.F64(); err != nil {
		return nil, nil, Meta{}, err
	}
	md, err := d.I64()
	if err != nil {
		return nil, nil, Meta{}, err
	}
	if md < 0 || md > 64 {
		return nil, nil, Meta{}, fmt.Errorf("netstore: snapshot max depth %d out of range", md)
	}
	meta.MaxDepth = int(md)
	if err := d.Done(); err != nil {
		return nil, nil, Meta{}, err
	}

	_, d, err = next(tagPoints)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	points, err := d.Points()
	if err != nil {
		return nil, nil, Meta{}, err
	}
	if len(points) != meta.N {
		return nil, nil, Meta{}, fmt.Errorf("netstore: snapshot holds %d points, meta claims %d", len(points), meta.N)
	}
	if err := d.Done(); err != nil {
		return nil, nil, Meta{}, err
	}

	gs := graph.Snapshot{Radius: meta.Radius}
	_, d, err = next(tagAdj)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	if gs.Offsets, err = d.I32s(); err != nil {
		return nil, nil, Meta{}, err
	}
	if gs.Flat, err = d.I32s(); err != nil {
		return nil, nil, Meta{}, err
	}
	if err := d.Done(); err != nil {
		return nil, nil, Meta{}, err
	}

	_, d, err = next(tagIndex)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	var cols, rows uint64
	if gs.Index.CellSize, err = d.F64(); err != nil {
		return nil, nil, Meta{}, err
	}
	if cols, err = d.U64(); err != nil {
		return nil, nil, Meta{}, err
	}
	if rows, err = d.U64(); err != nil {
		return nil, nil, Meta{}, err
	}
	if cols > math.MaxInt32 || rows > math.MaxInt32 {
		return nil, nil, Meta{}, fmt.Errorf("netstore: snapshot grid %dx%d out of range", cols, rows)
	}
	gs.Index.Cols, gs.Index.Rows = int(cols), int(rows)
	if gs.Index.CellStart, err = d.I32s(); err != nil {
		return nil, nil, Meta{}, err
	}
	if gs.Index.CellIDs, err = d.I32s(); err != nil {
		return nil, nil, Meta{}, err
	}
	if err := d.Done(); err != nil {
		return nil, nil, Meta{}, err
	}

	tag, d, err := next(tagVoronoi, tagHier)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	if tag == tagVoronoi {
		if gs.Voronoi, err = d.F64s(); err != nil {
			return nil, nil, Meta{}, err
		}
		if err := d.Done(); err != nil {
			return nil, nil, Meta{}, err
		}
		if _, d, err = next(tagHier); err != nil {
			return nil, nil, Meta{}, err
		}
	}
	var hs hier.Snapshot
	for _, dst := range []*[]int32{
		&hs.Branching, &hs.Reps, &hs.MemberCounts, &hs.MemberBlock,
		&hs.NodeLeaf, &hs.NodeLevel, &hs.RoleCounts, &hs.RoleBlock,
	} {
		if *dst, err = d.I32s(); err != nil {
			return nil, nil, Meta{}, err
		}
	}
	if err := d.Done(); err != nil {
		return nil, nil, Meta{}, err
	}
	if _, _, err := next(snap.EndTag); err != nil {
		return nil, nil, Meta{}, err
	}

	g, err := graph.FromSnapshot(points, gs, workers)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	h, err := hier.FromSnapshot(points, hs)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	return g, h, meta, nil
}
