package netstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
)

func buildNet(t *testing.T, n int, seed uint64, c float64) (*graph.Graph, *hier.Hierarchy) {
	t.Helper()
	g, err := graph.Generate(n, c, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g, h
}

func TestEncodeDecodeBitIdentical(t *testing.T) {
	g, h := buildNet(t, 3000, 9, 1.3)
	g.VoronoiAreas() // exercise the optional VORO section
	meta := Meta{N: g.N(), Radius: g.Radius(), LeafTarget: 0, MaxDepth: 0}

	var buf bytes.Buffer
	if err := Encode(&buf, meta, g, h); err != nil {
		t.Fatal(err)
	}
	g2, h2, meta2, err := Decode(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Fatalf("meta = %+v, want %+v", meta2, meta)
	}
	if !reflect.DeepEqual(g2.Snapshot(), g.Snapshot()) {
		t.Fatal("graph snapshots differ after round trip")
	}
	if !reflect.DeepEqual(h2.Snapshot(), h.Snapshot()) {
		t.Fatal("hierarchy snapshots differ after round trip")
	}
	if !reflect.DeepEqual(g2.Points(), g.Points()) {
		t.Fatal("points differ after round trip")
	}
}

func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	g, h := buildNet(t, 64, 3, 2.0)
	var buf bytes.Buffer
	if err := Encode(&buf, Meta{N: g.N(), Radius: g.Radius()}, g, h); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit at a spread of offsets; every corruption must surface
	// as an error (almost always a checksum mismatch), never a panic and
	// never a silently different network.
	for off := 0; off < len(raw); off += 13 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		if _, _, _, err := Decode(bytes.NewReader(mut), 1); err == nil {
			g2, _, _, _ := Decode(bytes.NewReader(mut), 1)
			if !reflect.DeepEqual(g2.Snapshot(), g.Snapshot()) {
				t.Fatalf("bit flip at %d produced a different network without error", off)
			}
		}
	}
}

func TestStoreColdWarmCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{N: 2000, Seed: 17, RadiusMult: 1.3}
	builds := 0
	build := func() (*graph.Graph, *hier.Hierarchy, error) {
		builds++
		g, err := graph.Generate(key.N, key.RadiusMult, rng.New(key.Seed))
		if err != nil {
			return nil, nil, err
		}
		h, err := hier.Build(g.Points(), hier.Config{})
		if err != nil {
			return nil, nil, err
		}
		return g, h, nil
	}

	// Cold: miss, build, persist.
	g1, h1, loaded, err := st.GetOrBuild(key, 1, build)
	if err != nil || loaded || builds != 1 {
		t.Fatalf("cold: loaded=%v builds=%d err=%v", loaded, builds, err)
	}
	if s := st.Stats(); s.Misses != 1 || s.Hits != 0 || s.StoredBytes <= 0 {
		t.Fatalf("cold stats: %+v", s)
	}

	// Warm: a fresh store over the same dir loads without building.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2, h2, loaded, err := st2.GetOrBuild(key, 1, build)
	if err != nil || !loaded || builds != 1 {
		t.Fatalf("warm: loaded=%v builds=%d err=%v", loaded, builds, err)
	}
	if s := st2.Stats(); s.Hits != 1 || s.LoadTime <= 0 {
		t.Fatalf("warm stats: %+v", s)
	}
	if !reflect.DeepEqual(g2.Snapshot(), g1.Snapshot()) || !reflect.DeepEqual(h2.Snapshot(), h1.Snapshot()) {
		t.Fatal("loaded network differs from built network")
	}

	// Corrupt the entry in place: next get detects it, removes it,
	// rebuilds, re-persists.
	entries, err := filepath.Glob(filepath.Join(dir, "*.ggsnap"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g3, _, loaded, err := st3.GetOrBuild(key, 1, build)
	if err != nil || loaded || builds != 2 {
		t.Fatalf("corrupt: loaded=%v builds=%d err=%v", loaded, builds, err)
	}
	if s := st3.Stats(); s.Corrupt != 1 || s.Misses != 1 {
		t.Fatalf("corrupt stats: %+v", s)
	}
	if !reflect.DeepEqual(g3.Snapshot(), g1.Snapshot()) {
		t.Fatal("rebuilt network differs")
	}
	// And the re-persisted entry loads clean again.
	st4, _ := Open(dir)
	if _, _, loaded, err := st4.GetOrBuild(key, 1, build); err != nil || !loaded {
		t.Fatalf("re-persisted entry: loaded=%v err=%v", loaded, err)
	}

	// A different key misses and never collides with the first entry.
	other := Key{N: 2000, Seed: 18, RadiusMult: 1.3}
	if other.Fingerprint() == key.Fingerprint() {
		t.Fatal("distinct keys share a fingerprint")
	}
}

func TestStoreRejectsWrongKeyEntry(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{N: 500, Seed: 1, RadiusMult: 1.6}
	build := func() (*graph.Graph, *hier.Hierarchy, error) {
		g, err := graph.Generate(key.N, key.RadiusMult, rng.New(key.Seed))
		if err != nil {
			return nil, nil, err
		}
		h, err := hier.Build(g.Points(), hier.Config{})
		return g, h, err
	}
	if _, _, _, err := st.GetOrBuild(key, 1, build); err != nil {
		t.Fatal(err)
	}
	// Smuggle the entry under a different key's address: the meta check
	// must reject it, and the bad entry must be removed and rebuilt.
	wrong := Key{N: 500, Seed: 2, RadiusMult: 1.6}
	if err := os.Rename(st.path(key), st.path(wrong)); err != nil {
		t.Fatal(err)
	}
	rebuilds := 0
	g, _, loaded, err := st.GetOrBuild(wrong, 1, func() (*graph.Graph, *hier.Hierarchy, error) {
		rebuilds++
		g, err := graph.Generate(wrong.N, wrong.RadiusMult, rng.New(wrong.Seed))
		if err != nil {
			return nil, nil, err
		}
		h, err := hier.Build(g.Points(), hier.Config{})
		return g, h, err
	})
	if err != nil || loaded || rebuilds != 1 {
		t.Fatalf("wrong-key entry: loaded=%v rebuilds=%d err=%v", loaded, rebuilds, err)
	}
	if g.N() != wrong.N {
		t.Fatalf("n = %d", g.N())
	}
	if s := st.Stats(); s.Corrupt != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBuildErrorNotStored(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{N: 100, Seed: 3, RadiusMult: 0.4}
	wantErr := os.ErrDeadlineExceeded // arbitrary sentinel
	if _, _, _, err := st.GetOrBuild(key, 1, func() (*graph.Graph, *hier.Hierarchy, error) {
		return nil, nil, wantErr
	}); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*")); len(entries) != 0 {
		t.Fatalf("failed build left %v in the store", entries)
	}
}
