package geo

import (
	"math"
	"testing"
)

func TestDiskSquareOverlapInterior(t *testing.T) {
	// A disk fully inside the square has area πr².
	got := DiskSquareOverlap(Pt(0.5, 0.5), 0.1)
	want := math.Pi * 0.01
	if math.Abs(got-want) > 2e-5 {
		t.Fatalf("interior overlap = %v, want %v", got, want)
	}
}

func TestDiskSquareOverlapCorner(t *testing.T) {
	// Centered exactly at a corner: a quarter disk.
	got := DiskSquareOverlap(Pt(0, 0), 0.2)
	want := math.Pi * 0.04 / 4
	if math.Abs(got-want) > 2e-5 {
		t.Fatalf("corner overlap = %v, want %v", got, want)
	}
}

func TestDiskSquareOverlapEdge(t *testing.T) {
	// Centered on an edge midpoint: a half disk.
	got := DiskSquareOverlap(Pt(0.5, 0), 0.2)
	want := math.Pi * 0.04 / 2
	if math.Abs(got-want) > 2e-5 {
		t.Fatalf("edge overlap = %v, want %v", got, want)
	}
}

func TestDiskSquareOverlapHugeRadius(t *testing.T) {
	// A disk covering the whole square: overlap = 1.
	got := DiskSquareOverlap(Pt(0.5, 0.5), 2)
	if math.Abs(got-1) > 2e-5 {
		t.Fatalf("huge radius overlap = %v, want 1", got)
	}
}

func TestDiskSquareOverlapDegenerate(t *testing.T) {
	if got := DiskSquareOverlap(Pt(0.5, 0.5), 0); got != 0 {
		t.Fatalf("zero radius overlap = %v", got)
	}
	if got := DiskSquareOverlap(Pt(0.5, 0.5), -1); got != 0 {
		t.Fatalf("negative radius overlap = %v", got)
	}
	// Disk entirely outside the square.
	if got := DiskSquareOverlap(Pt(5, 5), 0.5); got != 0 {
		t.Fatalf("outside overlap = %v", got)
	}
}

func TestDiskSquareOverlapMonotoneInRadius(t *testing.T) {
	prev := 0.0
	for _, r := range []float64{0.01, 0.05, 0.1, 0.2, 0.5, 1.0} {
		got := DiskSquareOverlap(Pt(0.3, 0.7), r)
		if got < prev {
			t.Fatalf("overlap decreased at r=%v: %v < %v", r, got, prev)
		}
		prev = got
	}
}

func TestDiskSquareOverlapBoundedByBoth(t *testing.T) {
	// Overlap never exceeds min(disk area, square area).
	for _, tc := range []struct {
		p Point
		r float64
	}{
		{Pt(0.1, 0.1), 0.3},
		{Pt(0.9, 0.5), 0.2},
		{Pt(0.5, 0.5), 0.8},
		{Pt(0.01, 0.99), 0.15},
	} {
		got := DiskSquareOverlap(tc.p, tc.r)
		disk := math.Pi * tc.r * tc.r
		if got > disk+1e-9 || got > 1+1e-9 || got < 0 {
			t.Fatalf("overlap(%v, %v) = %v out of bounds (disk %v)", tc.p, tc.r, got, disk)
		}
	}
}
