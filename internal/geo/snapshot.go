package geo

import (
	"fmt"
	"math"
)

// CellIndexSnapshot exposes a CellIndex's derived tables for binary
// serialization (DESIGN.md §11). The indexed point slice is not part of
// the snapshot — the caller serializes points once and passes them back
// to CellIndexFromSnapshot.
type CellIndexSnapshot struct {
	CellSize  float64
	Cols      int
	Rows      int
	CellStart []int32
	CellIDs   []int32
}

// Snapshot returns the index's serializable view. The slices alias the
// index's storage and must be treated as read-only.
func (ci *CellIndex) Snapshot() CellIndexSnapshot {
	return CellIndexSnapshot{
		CellSize:  ci.cellSize,
		Cols:      ci.cols,
		Rows:      ci.rows,
		CellStart: ci.cellStart,
		CellIDs:   ci.cellIDs,
	}
}

// CellIndexFromSnapshot reconstructs a CellIndex over points from a
// snapshot, validating every table against what NewCellIndex would have
// produced: grid dimensions must match the cell size, the CSR offsets
// must be monotonic and exhaustive, and every id must sit in the cell
// its point maps to, in ascending order. A snapshot that passes is
// bit-identical to a fresh NewCellIndex build, so all queries (radius,
// nearest, rect) behave identically.
func CellIndexFromSnapshot(points []Point, bounds Rect, s CellIndexSnapshot) (*CellIndex, error) {
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("geo: cell index bounds %v are empty", bounds)
	}
	if s.CellSize <= 0 || math.IsInf(s.CellSize, 0) || math.IsNaN(s.CellSize) {
		return nil, fmt.Errorf("geo: snapshot cell size %v must be positive and finite", s.CellSize)
	}
	wantCols := int(math.Ceil(bounds.Width() / s.CellSize))
	wantRows := int(math.Ceil(bounds.Height() / s.CellSize))
	if wantCols < 1 {
		wantCols = 1
	}
	if wantRows < 1 {
		wantRows = 1
	}
	if s.Cols != wantCols || s.Rows != wantRows {
		return nil, fmt.Errorf("geo: snapshot grid %dx%d does not match cell size %v over %v (want %dx%d)",
			s.Cols, s.Rows, s.CellSize, bounds, wantCols, wantRows)
	}
	nc := int64(s.Cols) * int64(s.Rows)
	if int64(len(s.CellStart)) != nc+1 {
		return nil, fmt.Errorf("geo: snapshot has %d cell offsets for %d cells", len(s.CellStart), nc)
	}
	if len(s.CellIDs) != len(points) {
		return nil, fmt.Errorf("geo: snapshot indexes %d ids over %d points", len(s.CellIDs), len(points))
	}
	if s.CellStart[0] != 0 || int(s.CellStart[nc]) != len(s.CellIDs) {
		return nil, fmt.Errorf("geo: snapshot cell offsets span [%d, %d], want [0, %d]",
			s.CellStart[0], s.CellStart[nc], len(s.CellIDs))
	}
	ci := &CellIndex{
		bounds:    bounds,
		cellSize:  s.CellSize,
		cols:      s.Cols,
		rows:      s.Rows,
		points:    points,
		cellStart: s.CellStart,
		cellIDs:   s.CellIDs,
	}
	for c := int64(0); c < nc; c++ {
		lo, hi := s.CellStart[c], s.CellStart[c+1]
		if lo > hi {
			return nil, fmt.Errorf("geo: snapshot cell %d offsets decrease (%d > %d)", c, lo, hi)
		}
		prev := int32(-1)
		for _, id := range s.CellIDs[lo:hi] {
			if id < 0 || int(id) >= len(points) {
				return nil, fmt.Errorf("geo: snapshot cell %d holds id %d outside [0, %d)", c, id, len(points))
			}
			if id <= prev {
				return nil, fmt.Errorf("geo: snapshot cell %d ids not strictly ascending (%d after %d)", c, id, prev)
			}
			if got := ci.cellOf(points[id]); int64(got) != c {
				return nil, fmt.Errorf("geo: snapshot places point %d in cell %d, but it maps to cell %d", id, c, got)
			}
			prev = id
		}
	}
	return ci, nil
}
