package geo

// Polygon is a convex polygon with vertices in counter-clockwise order.
// The zero value is the empty polygon.
type Polygon []Point

// UnitSquarePolygon returns the unit square as a polygon.
func UnitSquarePolygon() Polygon {
	return Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
}

// RectPolygon returns r's corners as a polygon.
func RectPolygon(r Rect) Polygon {
	return Polygon{
		Pt(r.MinX, r.MinY),
		Pt(r.MaxX, r.MinY),
		Pt(r.MaxX, r.MaxY),
		Pt(r.MinX, r.MaxY),
	}
}

// Area returns the polygon's area (shoelace formula; non-negative for
// counter-clockwise input).
func (p Polygon) Area() float64 {
	if len(p) < 3 {
		return 0
	}
	var s float64
	for i := range p {
		j := (i + 1) % len(p)
		s += p[i].X*p[j].Y - p[j].X*p[i].Y
	}
	if s < 0 {
		s = -s
	}
	return s / 2
}

// IsConvexCCW reports whether the polygon is convex with vertices in
// counter-clockwise order — the precondition of Contains. Collinear
// vertex runs are allowed; degenerate (zero-area) polygons and clockwise
// windings are rejected.
func (pg Polygon) IsConvexCCW() bool {
	if len(pg) < 3 {
		return false
	}
	pos := false
	for i := range pg {
		a := pg[i]
		b := pg[(i+1)%len(pg)]
		c := pg[(i+2)%len(pg)]
		cross := (b.X-a.X)*(c.Y-b.Y) - (b.Y-a.Y)*(c.X-b.X)
		if cross < 0 {
			return false
		}
		if cross > 0 {
			pos = true
		}
	}
	return pos
}

// Contains reports whether p lies inside the convex polygon (boundary
// included). Vertices must be in counter-clockwise order, as everywhere
// in this package.
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	for i := range pg {
		a := pg[i]
		b := pg[(i+1)%len(pg)]
		// p must lie on or to the left of every directed edge a→b.
		if (b.X-a.X)*(p.Y-a.Y)-(b.Y-a.Y)*(p.X-a.X) < 0 {
			return false
		}
	}
	return true
}

// ClipHalfPlane returns the part of the polygon satisfying
// a·x + b·y <= c (Sutherland–Hodgman against a single edge). The result
// may be empty.
func (p Polygon) ClipHalfPlane(a, b, c float64) Polygon {
	return p.ClipHalfPlaneInto(a, b, c, nil)
}

// ClipHalfPlaneInto is ClipHalfPlane appending into dst[:0] — callers
// that clip in a loop (Voronoi cell construction) ping-pong two reusable
// buffers instead of allocating one polygon per clip. dst must not alias
// p; a nil dst allocates.
func (p Polygon) ClipHalfPlaneInto(a, b, c float64, dst Polygon) Polygon {
	if len(p) == 0 {
		return nil
	}
	inside := func(q Point) bool { return a*q.X+b*q.Y <= c }
	intersect := func(u, v Point) Point {
		// Solve a·(u + t(v-u)) = c for the crossing parameter t.
		du := a*u.X + b*u.Y - c
		dv := a*v.X + b*v.Y - c
		t := du / (du - dv)
		return Pt(u.X+t*(v.X-u.X), u.Y+t*(v.Y-u.Y))
	}
	out := dst[:0]
	for i := range p {
		cur := p[i]
		next := p[(i+1)%len(p)]
		curIn, nextIn := inside(cur), inside(next)
		switch {
		case curIn && nextIn:
			out = append(out, next)
		case curIn && !nextIn:
			out = append(out, intersect(cur, next))
		case !curIn && nextIn:
			out = append(out, intersect(cur, next), next)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ClipBisector returns the part of the polygon at least as close to p0 as
// to p1 (the Voronoi half-plane of p0 against p1). Identical points leave
// the polygon unchanged.
func (p Polygon) ClipBisector(p0, p1 Point) Polygon {
	return p.ClipBisectorInto(p0, p1, nil)
}

// ClipBisectorInto is ClipBisector appending into dst[:0] (see
// ClipHalfPlaneInto). Identical points return p itself, dst untouched.
func (p Polygon) ClipBisectorInto(p0, p1 Point, dst Polygon) Polygon {
	a := 2 * (p1.X - p0.X)
	b := 2 * (p1.Y - p0.Y)
	if a == 0 && b == 0 {
		return p
	}
	c := p1.X*p1.X + p1.Y*p1.Y - p0.X*p0.X - p0.Y*p0.Y
	return p.ClipHalfPlaneInto(a, b, c, dst)
}
