package geo

import (
	"math"
	"testing"
	"testing/quick"

	"geogossip/internal/rng"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{0.5, 0.5}, Point{0.5, 0.5}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"345", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Dist = %v, want %v", got, tc.want)
			}
			if got := tc.p.Dist2(tc.q); math.Abs(got-tc.want*tc.want) > 1e-12 {
				t.Fatalf("Dist2 = %v, want %v", got, tc.want*tc.want)
			}
		})
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a := Point{clampF(ax), clampF(ay)}
		b := Point{clampF(bx), clampF(by)}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		a := Point{r.Float64(), r.Float64()}
		b := Point{r.Float64(), r.Float64()}
		c := Point{r.Float64(), r.Float64()}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-12 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func clampF(v float64) float64 {
	if math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 2, 4}
	if r.Width() != 2 || r.Height() != 4 || r.Area() != 8 {
		t.Fatalf("rect dims wrong: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if got := r.Center(); got != (Point{1, 2}) {
		t.Fatalf("Center = %v", got)
	}
	if math.Abs(r.Diagonal()-math.Sqrt(20)) > 1e-12 {
		t.Fatalf("Diagonal = %v", r.Diagonal())
	}
	if r.IsEmpty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !(Rect{1, 1, 1, 2}).IsEmpty() {
		t.Fatal("zero-width rect not reported empty")
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{0.5, 0.5}, true},
		{Point{1, 0.5}, false}, // right edge excluded
		{Point{0.5, 1}, false}, // top edge excluded
		{Point{-0.001, 0.5}, false},
		{Point{0.999999, 0.999999}, true},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.p); got != tc.want {
			t.Fatalf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestSplitGridPartition(t *testing.T) {
	// Every random point must land in exactly one grid cell: the cells
	// tile the parent rectangle.
	parent := UnitSquare()
	r := rng.New(2)
	for _, k := range []int{1, 2, 3, 4, 7, 10} {
		cells := parent.SplitGrid(k)
		if len(cells) != k*k {
			t.Fatalf("SplitGrid(%d) returned %d cells", k, len(cells))
		}
		var area float64
		for _, c := range cells {
			area += c.Area()
		}
		if math.Abs(area-parent.Area()) > 1e-9 {
			t.Fatalf("k=%d: cells cover area %v, parent %v", k, area, parent.Area())
		}
		for i := 0; i < 500; i++ {
			p := Point{r.Float64(), r.Float64()}
			owners := 0
			owner := -1
			for ci, c := range cells {
				if c.Contains(p) {
					owners++
					owner = ci
				}
			}
			if owners != 1 {
				t.Fatalf("k=%d: point %v in %d cells", k, p, owners)
			}
			row, col := parent.GridCellOf(p, k)
			if row*k+col != owner {
				t.Fatalf("k=%d: GridCellOf(%v) = (%d,%d), but containing cell is %d", k, p, row, col, owner)
			}
		}
	}
}

func TestSplitGridRowMajorLayout(t *testing.T) {
	cells := UnitSquare().SplitGrid(2)
	// Row-major: index 0 is bottom-left, 1 bottom-right, 2 top-left, 3 top-right.
	if !cells[0].Contains(Point{0.25, 0.25}) {
		t.Fatal("cell 0 should be bottom-left")
	}
	if !cells[1].Contains(Point{0.75, 0.25}) {
		t.Fatal("cell 1 should be bottom-right")
	}
	if !cells[2].Contains(Point{0.25, 0.75}) {
		t.Fatal("cell 2 should be top-left")
	}
	if !cells[3].Contains(Point{0.75, 0.75}) {
		t.Fatal("cell 3 should be top-right")
	}
}

func TestSplitGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SplitGrid(0) did not panic")
		}
	}()
	UnitSquare().SplitGrid(0)
}

func TestGridCellOfClamps(t *testing.T) {
	r := UnitSquare()
	row, col := r.GridCellOf(Point{-5, -5}, 4)
	if row != 0 || col != 0 {
		t.Fatalf("GridCellOf outside low = (%d,%d)", row, col)
	}
	row, col = r.GridCellOf(Point{5, 5}, 4)
	if row != 3 || col != 3 {
		t.Fatalf("GridCellOf outside high = (%d,%d)", row, col)
	}
}

func TestClip(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	got := a.Clip(b)
	want := Rect{1, 1, 2, 2}
	if got != want {
		t.Fatalf("Clip = %v, want %v", got, want)
	}
	disjoint := a.Clip(Rect{5, 5, 6, 6})
	if !disjoint.IsEmpty() {
		t.Fatalf("Clip of disjoint rects = %v, want empty", disjoint)
	}
}

func randomPoints(n int, seed uint64) []Point {
	r := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	return pts
}

func TestCellIndexWithinRadiusMatchesBruteForce(t *testing.T) {
	pts := randomPoints(400, 3)
	const radius = 0.08
	idx, err := NewCellIndex(pts, UnitSquare(), radius)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		got := idx.WithinRadius(pts[i], radius, int32(i), nil)
		var want []int32
		for j := range pts {
			if j == i {
				continue
			}
			if pts[i].Dist2(pts[j]) <= radius*radius {
				want = append(want, int32(j))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("point %d: got %d neighbours, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("point %d neighbour %d: got %d, want %d", i, k, got[k], want[k])
			}
		}
	}
}

func TestCellIndexWithinRadiusLargerThanCell(t *testing.T) {
	// Radius larger than the cell size must still return correct results
	// (the scan widens).
	pts := randomPoints(300, 4)
	idx, err := NewCellIndex(pts, UnitSquare(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const radius = 0.17
	for i := 0; i < 50; i++ {
		got := idx.WithinRadius(pts[i], radius, int32(i), nil)
		count := 0
		for j := range pts {
			if j != i && pts[i].Dist2(pts[j]) <= radius*radius {
				count++
			}
		}
		if len(got) != count {
			t.Fatalf("point %d: got %d neighbours, want %d", i, len(got), count)
		}
	}
}

func TestCellIndexNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 5)
	idx, err := NewCellIndex(pts, UnitSquare(), 0.06)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomPoints(300, 6)
	for _, q := range queries {
		got := idx.Nearest(q)
		best := int32(-1)
		bestD2 := math.Inf(1)
		for j := range pts {
			d2 := pts[j].Dist2(q)
			if d2 < bestD2 {
				best = int32(j)
				bestD2 = d2
			}
		}
		if got != best {
			// Allow exact ties resolved differently only if distances equal.
			if pts[got].Dist2(q) != bestD2 {
				t.Fatalf("Nearest(%v) = %d (d2=%v), want %d (d2=%v)",
					q, got, pts[got].Dist2(q), best, bestD2)
			}
		}
	}
}

func TestCellIndexNearestExcept(t *testing.T) {
	pts := []Point{{0.1, 0.1}, {0.2, 0.2}, {0.9, 0.9}}
	idx, err := NewCellIndex(pts, UnitSquare(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Nearest(Point{0.11, 0.11}); got != 0 {
		t.Fatalf("Nearest = %d, want 0", got)
	}
	if got := idx.NearestExcept(Point{0.11, 0.11}, 0); got != 1 {
		t.Fatalf("NearestExcept = %d, want 1", got)
	}
}

func TestCellIndexEmpty(t *testing.T) {
	idx, err := NewCellIndex(nil, UnitSquare(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Nearest(Point{0.5, 0.5}); got != -1 {
		t.Fatalf("Nearest on empty index = %d, want -1", got)
	}
	if got := idx.WithinRadius(Point{0.5, 0.5}, 0.2, -1, nil); len(got) != 0 {
		t.Fatalf("WithinRadius on empty index = %v", got)
	}
}

func TestCellIndexSinglePoint(t *testing.T) {
	pts := []Point{{0.5, 0.5}}
	idx, err := NewCellIndex(pts, UnitSquare(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Nearest(Point{0.9, 0.9}); got != 0 {
		t.Fatalf("Nearest = %d, want 0", got)
	}
	if got := idx.NearestExcept(Point{0.9, 0.9}, 0); got != -1 {
		t.Fatalf("NearestExcept excluding only point = %d, want -1", got)
	}
}

func TestCellIndexConstructionErrors(t *testing.T) {
	if _, err := NewCellIndex(nil, Rect{}, 0.1); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewCellIndex(nil, UnitSquare(), 0); err == nil {
		t.Fatal("zero cell size accepted")
	}
	if _, err := NewCellIndex(nil, UnitSquare(), -1); err == nil {
		t.Fatal("negative cell size accepted")
	}
}

func TestCellIndexInRect(t *testing.T) {
	pts := randomPoints(600, 7)
	idx, err := NewCellIndex(pts, UnitSquare(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rects := []Rect{
		{0.1, 0.1, 0.4, 0.3},
		{0, 0, 1, 1},
		{0.5, 0.5, 0.500001, 0.500001},
		{0.9, 0.9, 1.0, 1.0},
	}
	for _, rect := range rects {
		got := idx.InRect(rect, nil)
		var want []int32
		for j := range pts {
			if rect.Contains(pts[j]) {
				want = append(want, int32(j))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("rect %v: got %d points, want %d", rect, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("rect %v: index %d got %d want %d", rect, k, got[k], want[k])
			}
		}
	}
}

func TestCellIndexWithinRadiusAppendsToDst(t *testing.T) {
	pts := []Point{{0.5, 0.5}, {0.52, 0.5}}
	idx, err := NewCellIndex(pts, UnitSquare(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dst := []int32{42}
	out := idx.WithinRadius(Point{0.5, 0.5}, 0.05, -1, dst)
	if len(out) != 3 || out[0] != 42 {
		t.Fatalf("WithinRadius did not append: %v", out)
	}
}

func TestCellIndexNegativeRadius(t *testing.T) {
	pts := []Point{{0.5, 0.5}}
	idx, err := NewCellIndex(pts, UnitSquare(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.WithinRadius(Point{0.5, 0.5}, -1, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func TestQuickNearestIsTrueNearest(t *testing.T) {
	pts := randomPoints(200, 8)
	idx, err := NewCellIndex(pts, UnitSquare(), 0.09)
	if err != nil {
		t.Fatal(err)
	}
	f := func(xRaw, yRaw uint16) bool {
		q := Point{float64(xRaw) / 65536, float64(yRaw) / 65536}
		got := idx.Nearest(q)
		bestD2 := math.Inf(1)
		for j := range pts {
			if d2 := pts[j].Dist2(q); d2 < bestD2 {
				bestD2 = d2
			}
		}
		return pts[got].Dist2(q) == bestD2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
