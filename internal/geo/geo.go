// Package geo provides the planar geometry substrate for geometric random
// graphs: points, axis-aligned rectangles, regular grid partitions of the
// unit square, and a uniform cell index for fast range and nearest-point
// queries.
//
// Conventions: the sensor field is the unit square [0,1) × [0,1).
// Rectangles are half-open ([MinX, MaxX) × [MinY, MaxY)) so that a regular
// grid partition covers the field exactly once with no point belonging to
// two cells.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.Dist2(q))
}

// Dist2 returns the squared Euclidean distance between p and q. Prefer it
// to Dist for comparisons; it avoids the square root.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6f, %.6f)", p.X, p.Y) }

// Rect is a half-open axis-aligned rectangle [MinX, MaxX) × [MinY, MaxY).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect is shorthand for a keyed Rect literal.
func NewRect(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// UnitSquare returns the unit square [0,1) × [0,1), the sensor field used
// throughout the paper.
func UnitSquare() Rect { return NewRect(0, 0, 1, 1) }

// Contains reports whether p lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Width returns MaxX − MinX.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns MaxY − MinY.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Diagonal returns the length of the rectangle's diagonal, the maximum
// distance between two of its points.
func (r Rect) Diagonal() float64 {
	return math.Hypot(r.Width(), r.Height())
}

// IsEmpty reports whether the rectangle has nonpositive extent.
func (r Rect) IsEmpty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6f,%.6f)x[%.6f,%.6f)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// SplitGrid partitions r into a k×k grid of equal half-open cells, returned
// in row-major order (cell (row, col) at index row*k + col, rows indexed by
// increasing Y). It panics if k <= 0.
func (r Rect) SplitGrid(k int) []Rect {
	if k <= 0 {
		panic("geo: SplitGrid with k <= 0")
	}
	return r.AppendSplitGrid(make([]Rect, 0, k*k), k)
}

// AppendSplitGrid appends the k×k grid cells of r to cells (the
// allocation-free face of SplitGrid: callers with a reusable buffer pass
// cells[:0]). Cell geometry is identical to SplitGrid's.
func (r Rect) AppendSplitGrid(cells []Rect, k int) []Rect {
	if k <= 0 {
		panic("geo: AppendSplitGrid with k <= 0")
	}
	w := r.Width() / float64(k)
	h := r.Height() / float64(k)
	for row := 0; row < k; row++ {
		y0 := r.MinY + float64(row)*h
		y1 := r.MinY + float64(row+1)*h
		if row == k-1 {
			y1 = r.MaxY // avoid floating-point shortfall on the last row
		}
		for col := 0; col < k; col++ {
			x0 := r.MinX + float64(col)*w
			x1 := r.MinX + float64(col+1)*w
			if col == k-1 {
				x1 = r.MaxX
			}
			cells = append(cells, Rect{x0, y0, x1, y1})
		}
	}
	return cells
}

// GridCellOf returns the (row, col) of the k×k grid cell of r containing p,
// clamped to valid indices. The caller should ensure p is inside r;
// out-of-range points are clamped to the nearest cell.
func (r Rect) GridCellOf(p Point, k int) (row, col int) {
	if k <= 0 {
		panic("geo: GridCellOf with k <= 0")
	}
	col = int(math.Floor((p.X - r.MinX) / r.Width() * float64(k)))
	row = int(math.Floor((p.Y - r.MinY) / r.Height() * float64(k)))
	return clamp(row, 0, k-1), clamp(col, 0, k-1)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clip returns the intersection of r and other, which may be empty.
func (r Rect) Clip(other Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, other.MinX),
		MinY: math.Max(r.MinY, other.MinY),
		MaxX: math.Min(r.MaxX, other.MaxX),
		MaxY: math.Min(r.MaxY, other.MaxY),
	}
	if out.IsEmpty() {
		return Rect{}
	}
	return out
}
