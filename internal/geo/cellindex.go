package geo

import (
	"fmt"
	"math"
	"slices"
)

// CellIndex is a uniform-grid spatial index over a fixed set of points.
// It supports radius-bounded neighbour queries (the geometric random graph
// construction), nearest-point queries (greedy routing targets, square
// representatives) and rectangle queries (square membership).
//
// Cell membership is stored in CSR form — one flat id array plus per-cell
// offsets — rather than a slice-of-slices, so a million-point index costs
// two arrays instead of one allocation per occupied cell.
//
// The index is immutable after construction and safe for concurrent reads.
type CellIndex struct {
	bounds   Rect
	cellSize float64
	cols     int
	rows     int
	points   []Point
	// cellIDs[cellStart[c]:cellStart[c+1]] lists the indices of the points
	// in cell c, sorted ascending.
	cellStart []int32
	cellIDs   []int32
}

// NewCellIndex builds an index over points within bounds using square
// cells of side cellSize. Radius queries require radius <= cellSize.
// Points outside bounds are clamped into the boundary cells.
func NewCellIndex(points []Point, bounds Rect, cellSize float64) (*CellIndex, error) {
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("geo: cell index bounds %v are empty", bounds)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: cell size %v must be positive", cellSize)
	}
	cols := int(math.Ceil(bounds.Width() / cellSize))
	rows := int(math.Ceil(bounds.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	idx := &CellIndex{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		points:   points,
	}
	// Two passes: count occupancy, prefix-sum into offsets, then fill.
	// Filling in ascending point order keeps every cell's id list sorted
	// without a per-cell sort.
	nc := cols * rows
	idx.cellStart = make([]int32, nc+1)
	for _, p := range points {
		idx.cellStart[idx.cellOf(p)+1]++
	}
	for c := 0; c < nc; c++ {
		idx.cellStart[c+1] += idx.cellStart[c]
	}
	idx.cellIDs = make([]int32, len(points))
	fill := make([]int32, nc)
	copy(fill, idx.cellStart[:nc])
	for i, p := range points {
		c := idx.cellOf(p)
		idx.cellIDs[fill[c]] = int32(i)
		fill[c]++
	}
	return idx, nil
}

// NumPoints returns the number of indexed points.
func (ci *CellIndex) NumPoints() int { return len(ci.points) }

// FootprintBytes reports the heap bytes held by the index's own tables
// (offsets + id array), excluding the caller-owned point slice.
func (ci *CellIndex) FootprintBytes() int {
	return 4*len(ci.cellStart) + 4*len(ci.cellIDs)
}

func (ci *CellIndex) cellOf(p Point) int {
	col := int((p.X - ci.bounds.MinX) / ci.cellSize)
	row := int((p.Y - ci.bounds.MinY) / ci.cellSize)
	col = clamp(col, 0, ci.cols-1)
	row = clamp(row, 0, ci.rows-1)
	return row*ci.cols + col
}

// cell returns the sorted point ids in cell c.
func (ci *CellIndex) cell(c int) []int32 {
	return ci.cellIDs[ci.cellStart[c]:ci.cellStart[c+1]]
}

// WithinRadius appends to dst the indices of all points within distance
// radius of p (including any point exactly at p) and returns the extended
// slice. If exclude >= 0 that index is omitted. Results are sorted
// ascending. radius must not exceed the index cell size; larger radii
// return an error at construction-time users should have avoided, so here
// the method widens the scan instead of failing.
func (ci *CellIndex) WithinRadius(p Point, radius float64, exclude int32, dst []int32) []int32 {
	if radius < 0 {
		return dst
	}
	r2 := radius * radius
	reach := int(math.Ceil(radius / ci.cellSize)) // usually 1
	col := clamp(int((p.X-ci.bounds.MinX)/ci.cellSize), 0, ci.cols-1)
	row := clamp(int((p.Y-ci.bounds.MinY)/ci.cellSize), 0, ci.rows-1)
	start := len(dst)
	for dr := -reach; dr <= reach; dr++ {
		rr := row + dr
		if rr < 0 || rr >= ci.rows {
			continue
		}
		for dc := -reach; dc <= reach; dc++ {
			cc := col + dc
			if cc < 0 || cc >= ci.cols {
				continue
			}
			for _, j := range ci.cell(rr*ci.cols + cc) {
				if j == exclude {
					continue
				}
				if ci.points[j].Dist2(p) <= r2 {
					dst = append(dst, j)
				}
			}
		}
	}
	sortInt32(dst[start:])
	return dst
}

// CountWithinRadius returns the number of points WithinRadius would
// append for the same query, without writing them anywhere. It exists so
// graph construction can pre-size exact CSR segments in a counting pass.
func (ci *CellIndex) CountWithinRadius(p Point, radius float64, exclude int32) int {
	if radius < 0 {
		return 0
	}
	r2 := radius * radius
	reach := int(math.Ceil(radius / ci.cellSize))
	col := clamp(int((p.X-ci.bounds.MinX)/ci.cellSize), 0, ci.cols-1)
	row := clamp(int((p.Y-ci.bounds.MinY)/ci.cellSize), 0, ci.rows-1)
	count := 0
	for dr := -reach; dr <= reach; dr++ {
		rr := row + dr
		if rr < 0 || rr >= ci.rows {
			continue
		}
		for dc := -reach; dc <= reach; dc++ {
			cc := col + dc
			if cc < 0 || cc >= ci.cols {
				continue
			}
			for _, j := range ci.cell(rr*ci.cols + cc) {
				if j == exclude {
					continue
				}
				if ci.points[j].Dist2(p) <= r2 {
					count++
				}
			}
		}
	}
	return count
}

// Nearest returns the index of the point nearest to p, or -1 if the index
// is empty. Ties are broken toward the smaller index for determinism.
func (ci *CellIndex) Nearest(p Point) int32 {
	return ci.NearestExcept(p, -1)
}

// NearestExcept returns the index of the point nearest to p excluding the
// given index, or -1 if no such point exists.
func (ci *CellIndex) NearestExcept(p Point, exclude int32) int32 {
	if len(ci.points) == 0 || (len(ci.points) == 1 && exclude == 0) {
		return -1
	}
	col := clamp(int((p.X-ci.bounds.MinX)/ci.cellSize), 0, ci.cols-1)
	row := clamp(int((p.Y-ci.bounds.MinY)/ci.cellSize), 0, ci.rows-1)
	best := int32(-1)
	bestD2 := math.Inf(1)
	maxRing := ci.cols
	if ci.rows > maxRing {
		maxRing = ci.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, scanning one extra ring suffices:
		// any point in a farther ring is at distance >= (ring-1)*cellSize.
		if best >= 0 {
			minPossible := float64(ring-1) * ci.cellSize
			if minPossible > 0 && minPossible*minPossible > bestD2 {
				break
			}
		}
		found := ci.scanRing(p, row, col, ring, exclude, &best, &bestD2)
		if !found && ring > 0 && best >= 0 {
			continue
		}
	}
	return best
}

// scanRing examines the square ring of cells at Chebyshev distance ring
// from (row, col), updating best/bestD2. It reports whether any cell of
// the ring was in range.
func (ci *CellIndex) scanRing(p Point, row, col, ring int, exclude int32, best *int32, bestD2 *float64) bool {
	any := false
	visit := func(rr, cc int) {
		if rr < 0 || rr >= ci.rows || cc < 0 || cc >= ci.cols {
			return
		}
		any = true
		for _, j := range ci.cell(rr*ci.cols + cc) {
			if j == exclude {
				continue
			}
			d2 := ci.points[j].Dist2(p)
			if d2 < *bestD2 || (d2 == *bestD2 && (*best < 0 || j < *best)) {
				*best = j
				*bestD2 = d2
			}
		}
	}
	if ring == 0 {
		visit(row, col)
		return any
	}
	for cc := col - ring; cc <= col+ring; cc++ {
		visit(row-ring, cc)
		visit(row+ring, cc)
	}
	for rr := row - ring + 1; rr <= row+ring-1; rr++ {
		visit(rr, col-ring)
		visit(rr, col+ring)
	}
	return any
}

// InRect appends to dst the indices of all points inside rect (half-open)
// and returns the extended slice, sorted ascending.
func (ci *CellIndex) InRect(rect Rect, dst []int32) []int32 {
	start := len(dst)
	lo := ci.cellOf(Point{rect.MinX, rect.MinY})
	hi := ci.cellOf(Point{math.Nextafter(rect.MaxX, rect.MinX), math.Nextafter(rect.MaxY, rect.MinY)})
	loRow, loCol := lo/ci.cols, lo%ci.cols
	hiRow, hiCol := hi/ci.cols, hi%ci.cols
	for rr := loRow; rr <= hiRow; rr++ {
		for cc := loCol; cc <= hiCol; cc++ {
			for _, j := range ci.cell(rr*ci.cols + cc) {
				if rect.Contains(ci.points[j]) {
					dst = append(dst, j)
				}
			}
		}
	}
	sortInt32(dst[start:])
	return dst
}

func sortInt32(s []int32) {
	slices.Sort(s)
}
