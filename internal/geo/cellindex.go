package geo

import (
	"fmt"
	"math"
	"sort"
)

// CellIndex is a uniform-grid spatial index over a fixed set of points.
// It supports radius-bounded neighbour queries (the geometric random graph
// construction), nearest-point queries (greedy routing targets, square
// representatives) and rectangle queries (square membership).
//
// The index is immutable after construction and safe for concurrent reads.
type CellIndex struct {
	bounds   Rect
	cellSize float64
	cols     int
	rows     int
	points   []Point
	// cells[c] lists the indices of the points in cell c, sorted ascending.
	cells [][]int32
}

// NewCellIndex builds an index over points within bounds using square
// cells of side cellSize. Radius queries require radius <= cellSize.
// Points outside bounds are clamped into the boundary cells.
func NewCellIndex(points []Point, bounds Rect, cellSize float64) (*CellIndex, error) {
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("geo: cell index bounds %v are empty", bounds)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: cell size %v must be positive", cellSize)
	}
	cols := int(math.Ceil(bounds.Width() / cellSize))
	rows := int(math.Ceil(bounds.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	idx := &CellIndex{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		points:   points,
		cells:    make([][]int32, cols*rows),
	}
	for i, p := range points {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx, nil
}

// NumPoints returns the number of indexed points.
func (ci *CellIndex) NumPoints() int { return len(ci.points) }

func (ci *CellIndex) cellOf(p Point) int {
	col := int((p.X - ci.bounds.MinX) / ci.cellSize)
	row := int((p.Y - ci.bounds.MinY) / ci.cellSize)
	col = clamp(col, 0, ci.cols-1)
	row = clamp(row, 0, ci.rows-1)
	return row*ci.cols + col
}

// WithinRadius appends to dst the indices of all points within distance
// radius of p (including any point exactly at p) and returns the extended
// slice. If exclude >= 0 that index is omitted. Results are sorted
// ascending. radius must not exceed the index cell size; larger radii
// return an error at construction-time users should have avoided, so here
// the method widens the scan instead of failing.
func (ci *CellIndex) WithinRadius(p Point, radius float64, exclude int32, dst []int32) []int32 {
	if radius < 0 {
		return dst
	}
	r2 := radius * radius
	reach := int(math.Ceil(radius / ci.cellSize)) // usually 1
	col := clamp(int((p.X-ci.bounds.MinX)/ci.cellSize), 0, ci.cols-1)
	row := clamp(int((p.Y-ci.bounds.MinY)/ci.cellSize), 0, ci.rows-1)
	start := len(dst)
	for dr := -reach; dr <= reach; dr++ {
		rr := row + dr
		if rr < 0 || rr >= ci.rows {
			continue
		}
		for dc := -reach; dc <= reach; dc++ {
			cc := col + dc
			if cc < 0 || cc >= ci.cols {
				continue
			}
			for _, j := range ci.cells[rr*ci.cols+cc] {
				if j == exclude {
					continue
				}
				if ci.points[j].Dist2(p) <= r2 {
					dst = append(dst, j)
				}
			}
		}
	}
	sortInt32(dst[start:])
	return dst
}

// Nearest returns the index of the point nearest to p, or -1 if the index
// is empty. Ties are broken toward the smaller index for determinism.
func (ci *CellIndex) Nearest(p Point) int32 {
	return ci.NearestExcept(p, -1)
}

// NearestExcept returns the index of the point nearest to p excluding the
// given index, or -1 if no such point exists.
func (ci *CellIndex) NearestExcept(p Point, exclude int32) int32 {
	if len(ci.points) == 0 || (len(ci.points) == 1 && exclude == 0) {
		return -1
	}
	col := clamp(int((p.X-ci.bounds.MinX)/ci.cellSize), 0, ci.cols-1)
	row := clamp(int((p.Y-ci.bounds.MinY)/ci.cellSize), 0, ci.rows-1)
	best := int32(-1)
	bestD2 := math.Inf(1)
	maxRing := ci.cols
	if ci.rows > maxRing {
		maxRing = ci.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, scanning one extra ring suffices:
		// any point in a farther ring is at distance >= (ring-1)*cellSize.
		if best >= 0 {
			minPossible := float64(ring-1) * ci.cellSize
			if minPossible > 0 && minPossible*minPossible > bestD2 {
				break
			}
		}
		found := ci.scanRing(p, row, col, ring, exclude, &best, &bestD2)
		if !found && ring > 0 && best >= 0 {
			continue
		}
	}
	return best
}

// scanRing examines the square ring of cells at Chebyshev distance ring
// from (row, col), updating best/bestD2. It reports whether any cell of
// the ring was in range.
func (ci *CellIndex) scanRing(p Point, row, col, ring int, exclude int32, best *int32, bestD2 *float64) bool {
	any := false
	visit := func(rr, cc int) {
		if rr < 0 || rr >= ci.rows || cc < 0 || cc >= ci.cols {
			return
		}
		any = true
		for _, j := range ci.cells[rr*ci.cols+cc] {
			if j == exclude {
				continue
			}
			d2 := ci.points[j].Dist2(p)
			if d2 < *bestD2 || (d2 == *bestD2 && (*best < 0 || j < *best)) {
				*best = j
				*bestD2 = d2
			}
		}
	}
	if ring == 0 {
		visit(row, col)
		return any
	}
	for cc := col - ring; cc <= col+ring; cc++ {
		visit(row-ring, cc)
		visit(row+ring, cc)
	}
	for rr := row - ring + 1; rr <= row+ring-1; rr++ {
		visit(rr, col-ring)
		visit(rr, col+ring)
	}
	return any
}

// InRect appends to dst the indices of all points inside rect (half-open)
// and returns the extended slice, sorted ascending.
func (ci *CellIndex) InRect(rect Rect, dst []int32) []int32 {
	start := len(dst)
	lo := ci.cellOf(Point{rect.MinX, rect.MinY})
	hi := ci.cellOf(Point{math.Nextafter(rect.MaxX, rect.MinX), math.Nextafter(rect.MaxY, rect.MinY)})
	loRow, loCol := lo/ci.cols, lo%ci.cols
	hiRow, hiCol := hi/ci.cols, hi%ci.cols
	for rr := loRow; rr <= hiRow; rr++ {
		for cc := loCol; cc <= hiCol; cc++ {
			for _, j := range ci.cells[rr*ci.cols+cc] {
				if rect.Contains(ci.points[j]) {
					dst = append(dst, j)
				}
			}
		}
	}
	sortInt32(dst[start:])
	return dst
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
