package geo

import (
	"math"
	"testing"

	"geogossip/internal/rng"
)

func TestPolygonArea(t *testing.T) {
	if got := UnitSquarePolygon().Area(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("unit square area = %v", got)
	}
	tri := Polygon{Pt(0, 0), Pt(1, 0), Pt(0, 1)}
	if got := tri.Area(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("triangle area = %v", got)
	}
	if got := (Polygon{}).Area(); got != 0 {
		t.Fatalf("empty polygon area = %v", got)
	}
	if got := (Polygon{Pt(0, 0), Pt(1, 1)}).Area(); got != 0 {
		t.Fatalf("segment area = %v", got)
	}
	if got := RectPolygon(NewRect(0, 0, 2, 3)).Area(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("rect polygon area = %v", got)
	}
}

func TestClipHalfPlane(t *testing.T) {
	sq := UnitSquarePolygon()
	// Keep x <= 0.5: left half.
	left := sq.ClipHalfPlane(1, 0, 0.5)
	if math.Abs(left.Area()-0.5) > 1e-12 {
		t.Fatalf("left half area = %v", left.Area())
	}
	// Keep everything.
	all := sq.ClipHalfPlane(1, 0, 2)
	if math.Abs(all.Area()-1) > 1e-12 {
		t.Fatalf("full clip area = %v", all.Area())
	}
	// Keep nothing.
	none := sq.ClipHalfPlane(1, 0, -1)
	if none.Area() != 0 {
		t.Fatalf("empty clip area = %v", none.Area())
	}
	// Diagonal clip x + y <= 1: lower-left triangle.
	tri := sq.ClipHalfPlane(1, 1, 1)
	if math.Abs(tri.Area()-0.5) > 1e-12 {
		t.Fatalf("diagonal clip area = %v", tri.Area())
	}
	// Clipping the empty polygon stays empty.
	if got := (Polygon{}).ClipHalfPlane(1, 0, 0.5); got != nil {
		t.Fatalf("clip of empty = %v", got)
	}
}

func TestClipBisector(t *testing.T) {
	sq := UnitSquarePolygon()
	// Bisector of (0.25, 0.5) vs (0.75, 0.5) is x = 0.5; keep closer to
	// the first point.
	cell := sq.ClipBisector(Pt(0.25, 0.5), Pt(0.75, 0.5))
	if math.Abs(cell.Area()-0.5) > 1e-12 {
		t.Fatalf("bisector cell area = %v", cell.Area())
	}
	for _, v := range cell {
		if v.X > 0.5+1e-12 {
			t.Fatalf("cell vertex %v on the wrong side", v)
		}
	}
	// Identical points: unchanged.
	same := sq.ClipBisector(Pt(0.3, 0.3), Pt(0.3, 0.3))
	if math.Abs(same.Area()-1) > 1e-12 {
		t.Fatalf("degenerate bisector area = %v", same.Area())
	}
}

func TestVoronoiCellsPartitionSquare(t *testing.T) {
	// The locally clipped Voronoi cells of a full point set tile the unit
	// square: areas sum to 1.
	r := rng.New(120)
	pts := make([]Point, 40)
	for i := range pts {
		pts[i] = Pt(r.Float64(), r.Float64())
	}
	var total float64
	for i := range pts {
		cell := UnitSquarePolygon()
		for j := range pts {
			if i == j {
				continue
			}
			cell = cell.ClipBisector(pts[i], pts[j])
			if len(cell) == 0 {
				break
			}
		}
		a := cell.Area()
		if a < 0 {
			t.Fatalf("negative cell area %v", a)
		}
		total += a
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("voronoi areas sum to %v, want 1", total)
	}
}
