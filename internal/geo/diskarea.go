package geo

import "math"

// DiskSquareOverlap returns the area of the intersection of the disk of
// the given radius around center with the unit square.
//
// It integrates the clipped vertical chord length over x with composite
// Simpson quadrature; with 256 panels the result is accurate to well
// below 1e-6 for the radii used in this repository (r ≤ 0.5), which is
// ample for density estimation in rejection sampling.
func DiskSquareOverlap(center Point, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	x0 := math.Max(0, center.X-radius)
	x1 := math.Min(1, center.X+radius)
	if x1 <= x0 {
		return 0
	}
	chord := func(x float64) float64 {
		dx := x - center.X
		h2 := radius*radius - dx*dx
		if h2 <= 0 {
			return 0
		}
		h := math.Sqrt(h2)
		lo := math.Max(0, center.Y-h)
		hi := math.Min(1, center.Y+h)
		if hi <= lo {
			return 0
		}
		return hi - lo
	}
	const panels = 256 // even
	step := (x1 - x0) / panels
	sum := chord(x0) + chord(x1)
	for i := 1; i < panels; i++ {
		x := x0 + float64(i)*step
		if i%2 == 1 {
			sum += 4 * chord(x)
		} else {
			sum += 2 * chord(x)
		}
	}
	return sum * step / 3
}
