package graph

import (
	"reflect"
	"testing"

	"geogossip/internal/par"
	"geogossip/internal/rng"
)

// workerCounts is the grid every serial-vs-parallel identity suite runs
// over: serial, the smallest real parallel split, and whatever the
// machine offers.
func workerCounts() []int {
	counts := []int{1, 2, par.NumCPU()}
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// TestBuildWorkersByteIdentity asserts the tentpole contract for parallel
// construction: the packed flat/offsets arrays from BuildWorkers are
// byte-identical to the serial build at every worker count.
func TestBuildWorkersByteIdentity(t *testing.T) {
	for _, n := range []int{1, 17, 500, 3000} {
		pts := UniformPoints(n, rng.New(99).Stream("points"))
		radius := ConnectivityRadius(n, 1.5)
		serial, err := Build(pts, radius)
		if err != nil {
			t.Fatalf("serial build n=%d: %v", n, err)
		}
		for _, w := range workerCounts() {
			parg, err := BuildWorkers(pts, radius, w)
			if err != nil {
				t.Fatalf("parallel build n=%d workers=%d: %v", n, w, err)
			}
			if !reflect.DeepEqual(serial.offsets, parg.offsets) {
				t.Fatalf("n=%d workers=%d: offsets differ", n, w)
			}
			if !reflect.DeepEqual(serial.flat, parg.flat) {
				t.Fatalf("n=%d workers=%d: flat differs", n, w)
			}
			if serial.edges != parg.edges {
				t.Fatalf("n=%d workers=%d: edges %d != %d", n, w, parg.edges, serial.edges)
			}
		}
	}
}

// TestGenerateWorkersByteIdentity covers the draw path: points are always
// drawn serially, so the whole graph is worker-count invariant.
func TestGenerateWorkersByteIdentity(t *testing.T) {
	serial, err := Generate(800, 1.5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		parg, err := GenerateWorkers(800, 1.5, rng.New(7), w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.points, parg.points) {
			t.Fatalf("workers=%d: points differ", w)
		}
		if !reflect.DeepEqual(serial.flat, parg.flat) || !reflect.DeepEqual(serial.offsets, parg.offsets) {
			t.Fatalf("workers=%d: adjacency differs", w)
		}
	}
}

// TestVoronoiAreasParallelByteIdentity asserts the clipped areas are
// bit-identical regardless of the worker count the graph was built with:
// each node's polygon chain is evaluated with the same float64 operation
// sequence whichever block it lands in.
func TestVoronoiAreasParallelByteIdentity(t *testing.T) {
	pts := UniformPoints(600, rng.New(42).Stream("points"))
	radius := ConnectivityRadius(600, 1.5)
	ref, err := BuildWorkers(pts, radius, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.VoronoiAreas()
	for _, w := range workerCounts() {
		g, err := BuildWorkers(pts, radius, w)
		if err != nil {
			t.Fatal(err)
		}
		got := g.VoronoiAreas()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d areas, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: area[%d] = %v, want %v", w, i, got[i], want[i])
			}
		}
	}
}

// TestBuildFlatPreSized guards the counting-pass fix: flat must be exactly
// sized (no append slack), so large-n construction never pays grow-copies.
func TestBuildFlatPreSized(t *testing.T) {
	g, err := Generate(1000, 1.5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if cap(g.flat) != len(g.flat) {
		t.Fatalf("flat cap %d != len %d: construction still over-allocates", cap(g.flat), len(g.flat))
	}
	if int(g.offsets[g.N()]) != len(g.flat) {
		t.Fatalf("offsets end %d != len(flat) %d", g.offsets[g.N()], len(g.flat))
	}
}
