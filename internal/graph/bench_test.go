package graph

import (
	"fmt"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

// Construction benchmarks: the two-pass (count, prefix-sum, fill) CSR
// build, serial vs. sharded. Reference numbers live in
// BENCH_engines.json. The million-node case is the headline scale
// target and is skipped under -short so bench smoke stays bounded.
func BenchmarkBuild(b *testing.B) {
	cases := []struct {
		n     int
		large bool
	}{
		{4096, false},
		{65536, false},
		{1000000, true},
	}
	modes := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	}
	for _, c := range cases {
		var pts []geo.Point
		radius := ConnectivityRadius(c.n, 1.5)
		for _, m := range modes {
			b.Run(fmt.Sprintf("n=%d/%s", c.n, m.name), func(b *testing.B) {
				if c.large && testing.Short() {
					b.Skip("million-node build skipped in -short mode")
				}
				if pts == nil {
					pts = UniformPoints(c.n, rng.New(991).Stream("points"))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g, err := BuildWorkers(pts, radius, m.workers)
					if err != nil {
						b.Fatal(err)
					}
					if g.N() != c.n {
						b.Fatalf("built %d nodes, want %d", g.N(), c.n)
					}
				}
			})
		}
	}
}

// VoronoiAreas memoizes, so each timed iteration needs a fresh graph;
// the rebuild runs with the timer stopped so only the (sharded) area
// computation is measured.
func BenchmarkVoronoiAreas(b *testing.B) {
	const n = 4096
	pts := UniformPoints(n, rng.New(993).Stream("points"))
	radius := ConnectivityRadius(n, 1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, err := BuildWorkers(pts, radius, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if areas := g.VoronoiAreas(); len(areas) != n {
			b.Fatal("bad areas")
		}
	}
}
