package graph

import (
	"math"
	"testing"
	"testing/quick"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

func mustBuild(t *testing.T, pts []geo.Point, radius float64) *Graph {
	t.Helper()
	g, err := Build(pts, radius)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConnectivityRadius(t *testing.T) {
	if got := ConnectivityRadius(0, 1); got != 1 {
		t.Fatalf("n=0: %v", got)
	}
	if got := ConnectivityRadius(1, 1); got != 1 {
		t.Fatalf("n=1: %v", got)
	}
	want := 2 * math.Sqrt(math.Log(1000)/1000)
	if got := ConnectivityRadius(1000, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("n=1000 c=2: got %v want %v", got, want)
	}
	// Huge c is capped at the unit-square diagonal.
	if got := ConnectivityRadius(4, 100); got != math.Sqrt2 {
		t.Fatalf("cap: %v", got)
	}
	// Radius shrinks with n.
	if ConnectivityRadius(10000, 1.5) >= ConnectivityRadius(100, 1.5) {
		t.Fatal("radius should shrink with n")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]geo.Point{geo.Pt(0.5, 0.5)}, 0); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := Build([]geo.Point{geo.Pt(1.5, 0.5)}, 0.1); err == nil {
		t.Fatal("point outside unit square accepted")
	}
	if _, err := Build([]geo.Point{geo.Pt(0.5, 1.0)}, 0.1); err == nil {
		t.Fatal("point on excluded top edge accepted")
	}
	g, err := Build(nil, 0.1)
	if err != nil {
		t.Fatalf("empty graph rejected: %v", err)
	}
	if g.N() != 0 || g.Edges() != 0 {
		t.Fatal("empty graph not empty")
	}
}

func TestAdjacencyMatchesBruteForce(t *testing.T) {
	r := rng.New(10)
	pts := UniformPoints(300, r)
	const radius = 0.09
	g := mustBuild(t, pts, radius)
	for i := int32(0); int(i) < len(pts); i++ {
		got := g.Neighbors(i)
		var want []int32
		for j := range pts {
			if int32(j) == i {
				continue
			}
			if pts[i].Dist2(pts[j]) <= radius*radius {
				want = append(want, int32(j))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbours, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("node %d: neighbour[%d] = %d, want %d", i, k, got[k], want[k])
			}
		}
		if g.Degree(i) != len(want) {
			t.Fatalf("node %d: Degree = %d, want %d", i, g.Degree(i), len(want))
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	g, err := Generate(500, 1.5, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); int(i) < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			if !g.HasEdge(j, i) {
				t.Fatalf("edge (%d,%d) present but (%d,%d) missing", i, j, j, i)
			}
		}
	}
}

func TestNoSelfLoops(t *testing.T) {
	g, err := Generate(300, 1.5, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); int(i) < g.N(); i++ {
		if g.HasEdge(i, i) {
			t.Fatalf("self loop at %d", i)
		}
	}
}

func TestHasEdge(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.15, 0.1), geo.Pt(0.9, 0.9)}
	g := mustBuild(t, pts, 0.1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("near pair not adjacent")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 0) {
		t.Fatal("far pair adjacent")
	}
}

func TestEdgesCount(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.15, 0.1), geo.Pt(0.2, 0.1), geo.Pt(0.9, 0.9)}
	g := mustBuild(t, pts, 0.07)
	// Edges: (0,1), (1,2). Not (0,2): distance 0.1 > 0.07.
	if g.Edges() != 2 {
		t.Fatalf("Edges = %d, want 2", g.Edges())
	}
}

func TestIsConnected(t *testing.T) {
	line := []geo.Point{geo.Pt(0.1, 0.5), geo.Pt(0.2, 0.5), geo.Pt(0.3, 0.5), geo.Pt(0.4, 0.5)}
	g := mustBuild(t, line, 0.11)
	if !g.IsConnected() {
		t.Fatal("line graph should be connected")
	}
	g2 := mustBuild(t, line, 0.05)
	if g2.IsConnected() {
		t.Fatal("disconnected dots reported connected")
	}
	if !mustBuild(t, nil, 0.1).IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
	if !mustBuild(t, []geo.Point{geo.Pt(0.5, 0.5)}, 0.1).IsConnected() {
		t.Fatal("singleton should count as connected")
	}
}

func TestComponents(t *testing.T) {
	pts := []geo.Point{
		geo.Pt(0.1, 0.1), geo.Pt(0.15, 0.1), // component 0
		geo.Pt(0.8, 0.8), geo.Pt(0.85, 0.8), // component 1
		geo.Pt(0.5, 0.5), // isolated component 2
	}
	g := mustBuild(t, pts, 0.1)
	labels, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] || labels[4] == labels[0] || labels[4] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
	// Connected graph: one component.
	g2, err := Generate(400, 2.0, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if _, k := g2.Components(); g2.IsConnected() != (k == 1) {
		t.Fatalf("IsConnected=%v but k=%d", g2.IsConnected(), k)
	}
}

func TestBFSDistancesAndPath(t *testing.T) {
	// Chain 0-1-2-3-4.
	pts := []geo.Point{geo.Pt(0.1, 0.5), geo.Pt(0.2, 0.5), geo.Pt(0.3, 0.5), geo.Pt(0.4, 0.5), geo.Pt(0.5, 0.5)}
	g := mustBuild(t, pts, 0.11)
	dist := g.BFSDistances(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	path := g.BFSPath(0, 4)
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("path = %v", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Fatalf("path step %d-%d is not an edge", path[i], path[i+1])
		}
	}
	if p := g.BFSPath(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v", p)
	}
}

func TestBFSPathUnreachable(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.9, 0.9)}
	g := mustBuild(t, pts, 0.05)
	if p := g.BFSPath(0, 1); p != nil {
		t.Fatalf("unreachable path = %v", p)
	}
	dist := g.BFSDistances(0)
	if dist[1] != -1 {
		t.Fatalf("unreachable distance = %d", dist[1])
	}
}

func TestNearestTo(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.5, 0.5), geo.Pt(0.9, 0.9)}
	g := mustBuild(t, pts, 0.1)
	if got := g.NearestTo(geo.Pt(0.45, 0.45)); got != 1 {
		t.Fatalf("NearestTo = %d, want 1", got)
	}
	empty := mustBuild(t, nil, 0.1)
	if got := empty.NearestTo(geo.Pt(0.5, 0.5)); got != -1 {
		t.Fatalf("NearestTo on empty = %d", got)
	}
}

func TestNodesInRect(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.3, 0.3), geo.Pt(0.6, 0.6)}
	g := mustBuild(t, pts, 0.1)
	got := g.NodesInRect(geo.NewRect(0, 0, 0.5, 0.5))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("NodesInRect = %v", got)
	}
}

func TestDegreeStats(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.5), geo.Pt(0.2, 0.5), geo.Pt(0.3, 0.5), geo.Pt(0.9, 0.9)}
	g := mustBuild(t, pts, 0.11)
	st := g.Degrees()
	if st.Min != 0 || st.Max != 2 || st.Isolated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Mean-1.0) > 1e-12 { // degrees 1,2,1,0
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.TotalEdge != g.Edges() {
		t.Fatalf("TotalEdge = %d, Edges = %d", st.TotalEdge, g.Edges())
	}
	if (mustBuild(t, nil, 0.1).Degrees() != DegreeStats{}) {
		t.Fatal("empty graph stats not zero")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := Generate(200, 1.5, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(200, 1.5, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Edges() != g2.Edges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", g1.Edges(), g2.Edges())
	}
	for i := int32(0); int(i) < g1.N(); i++ {
		if g1.Point(i) != g2.Point(i) {
			t.Fatalf("same seed, different point %d", i)
		}
	}
}

func TestGenerateConnectedAtHighC(t *testing.T) {
	// c = 2 is comfortably above the threshold; all seeds should connect.
	for seed := uint64(0); seed < 5; seed++ {
		g, err := Generate(1000, 2.0, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatalf("seed %d: G(1000, 2.0·sqrt(log n/n)) disconnected", seed)
		}
	}
}

func TestMeanDegreeMatchesTheory(t *testing.T) {
	// E[deg] ≈ n·π·r² away from the boundary; the measured mean (including
	// boundary nodes) should be within a modest factor.
	const n = 4000
	const c = 1.5
	g, err := Generate(n, c, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	r := ConnectivityRadius(n, c)
	theory := float64(n) * math.Pi * r * r
	mean := g.Degrees().Mean
	if mean < 0.6*theory || mean > 1.1*theory {
		t.Fatalf("mean degree %v, theory %v", mean, theory)
	}
}

func TestUniformPointsInUnitSquare(t *testing.T) {
	pts := UniformPoints(5000, rng.New(15))
	sq := geo.UnitSquare()
	for _, p := range pts {
		if !sq.Contains(p) {
			t.Fatalf("point %v outside unit square", p)
		}
	}
}

func TestQuickBFSPathIsValidPath(t *testing.T) {
	g, err := Generate(300, 2.0, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Skip("instance disconnected")
	}
	dist0 := g.BFSDistances(0)
	f := func(aRaw, bRaw uint16) bool {
		a := int32(int(aRaw) % g.N())
		b := int32(int(bRaw) % g.N())
		p := g.BFSPath(a, b)
		if len(p) == 0 || p[0] != a || p[len(p)-1] != b {
			return false
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				return false
			}
		}
		// Shortest-path consistency for src 0.
		if a == 0 && int32(len(p)-1) != dist0[b] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
