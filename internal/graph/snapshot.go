package graph

import (
	"fmt"
	"math"

	"geogossip/internal/geo"
	"geogossip/internal/par"
)

// Snapshot exposes the graph's derived tables for binary serialization
// (DESIGN.md §11): the connection radius, the packed CSR adjacency, the
// cell index, and — when already computed — the cached Voronoi areas.
// The point slice is not part of the snapshot; callers serialize points
// once and pass them back to FromSnapshot. All slices alias the graph's
// storage and must be treated as read-only.
type Snapshot struct {
	Radius  float64
	Offsets []int32
	Flat    []int32
	Index   geo.CellIndexSnapshot
	// Voronoi is nil unless VoronoiAreas had been demanded by the time
	// Snapshot was taken (the areas are expensive and only geographic
	// runs need them, so they are persisted opportunistically).
	Voronoi []float64
}

// Snapshot returns the graph's serializable view.
func (g *Graph) Snapshot() Snapshot {
	s := Snapshot{
		Radius:  g.radius,
		Offsets: g.offsets,
		Flat:    g.flat,
		Index:   g.index.Snapshot(),
	}
	if g.voronoiReady.Load() {
		s.Voronoi = g.voronoi
	}
	return s
}

// FromSnapshot reconstructs a graph over points from a snapshot,
// validating the CSR adjacency (offsets monotonic and exhaustive,
// neighbour ids in range, strictly ascending, never self-loops) and the
// cell index against the exact parameters BuildWorkers derives. A
// snapshot that passes reproduces a fresh build bit-for-bit: same
// adjacency arrays, same index, same query results — only the O(n·deg)
// radius scan is skipped. workers seeds derived computations
// (VoronoiAreas) exactly like BuildWorkers' parameter does; it never
// affects the loaded tables.
func FromSnapshot(points []geo.Point, s Snapshot, workers int) (*Graph, error) {
	if s.Radius <= 0 || math.IsInf(s.Radius, 0) || math.IsNaN(s.Radius) {
		return nil, fmt.Errorf("graph: snapshot radius %v must be positive and finite", s.Radius)
	}
	bounds := geo.UnitSquare()
	for i, p := range points {
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("graph: snapshot point %d = %v outside the unit square", i, p)
		}
	}
	n := len(points)
	if len(s.Offsets) != n+1 {
		return nil, fmt.Errorf("graph: snapshot has %d offsets for %d points", len(s.Offsets), n)
	}
	if s.Offsets[0] != 0 || int(s.Offsets[n]) != len(s.Flat) {
		return nil, fmt.Errorf("graph: snapshot offsets span [%d, %d], want [0, %d]",
			s.Offsets[0], s.Offsets[n], len(s.Flat))
	}
	if len(s.Flat)%2 != 0 {
		return nil, fmt.Errorf("graph: snapshot adjacency holds %d directed edges (odd — not a symmetric graph)", len(s.Flat))
	}
	for i := 0; i < n; i++ {
		lo, hi := s.Offsets[i], s.Offsets[i+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: snapshot offsets decrease at node %d (%d > %d)", i, lo, hi)
		}
		prev := int32(-1)
		for _, j := range s.Flat[lo:hi] {
			if j < 0 || int(j) >= n {
				return nil, fmt.Errorf("graph: snapshot node %d has neighbour %d outside [0, %d)", i, j, n)
			}
			if int(j) == i {
				return nil, fmt.Errorf("graph: snapshot node %d lists itself as a neighbour", i)
			}
			if j <= prev {
				return nil, fmt.Errorf("graph: snapshot node %d neighbours not strictly ascending (%d after %d)", i, j, prev)
			}
			prev = j
		}
	}
	// BuildWorkers derives the cell size from the radius; the stored index
	// must match, or loaded query behaviour could drift from a fresh build.
	cell := s.Radius
	if cell > 0.5 {
		cell = 0.5
	}
	if s.Index.CellSize != cell {
		return nil, fmt.Errorf("graph: snapshot cell size %v does not match radius %v (want %v)",
			s.Index.CellSize, s.Radius, cell)
	}
	idx, err := geo.CellIndexFromSnapshot(points, bounds, s.Index)
	if err != nil {
		return nil, fmt.Errorf("graph: snapshot index: %w", err)
	}
	if s.Voronoi != nil && len(s.Voronoi) != n {
		return nil, fmt.Errorf("graph: snapshot has %d voronoi areas for %d points", len(s.Voronoi), n)
	}
	g := &Graph{
		points:  points,
		radius:  s.Radius,
		bounds:  bounds,
		index:   idx,
		flat:    s.Flat,
		offsets: s.Offsets,
		edges:   len(s.Flat) / 2,
		workers: par.Resolve(workers),
	}
	if s.Voronoi != nil {
		areas := s.Voronoi
		g.voronoiOnce.Do(func() { g.voronoi = areas })
		g.voronoiReady.Store(true)
	}
	return g, nil
}
