// Package graph builds and queries geometric random graphs G(n, r): n
// points placed independently and uniformly at random on the unit square,
// with an edge between every pair at Euclidean distance at most r.
//
// This is the connectivity substrate of the paper (§2): with
// r = Θ(sqrt(log n / n)) the graph is connected with high probability
// (Gupta–Kumar), nearest-neighbour gossip mixes in Õ(n) ticks, and greedy
// geographic routing between far-apart nodes takes O(sqrt(n / log n))
// hops.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"geogossip/internal/geo"
	"geogossip/internal/par"
	"geogossip/internal/rng"
)

// ConnectivityRadius returns r = c·sqrt(log n / n), the standard scaling
// for the radius of connectivity (natural logarithm). c = 1 is the
// Gupta–Kumar threshold; the simulations in this repository default to
// c ≥ 1.5 so instances are connected with overwhelming probability.
// For n < 2 it returns 1 (a single node or empty graph is trivially
// "connected" at any radius).
func ConnectivityRadius(n int, c float64) float64 {
	if n < 2 {
		return 1
	}
	r := c * math.Sqrt(math.Log(float64(n))/float64(n))
	if r > math.Sqrt2 {
		return math.Sqrt2 // diagonal of the unit square; larger is pointless
	}
	return r
}

// Graph is an immutable geometric graph: points plus the adjacency lists
// induced by the connection radius. Safe for concurrent reads.
type Graph struct {
	points []geo.Point
	radius float64
	bounds geo.Rect
	index  *geo.CellIndex
	// adj is a packed adjacency structure: neighbours of i are
	// flat[offsets[i]:offsets[i+1]], sorted ascending.
	flat    []int32
	offsets []int32
	edges   int

	// workers is the construction worker count the graph was built with;
	// derived computations (VoronoiAreas) reuse it.
	workers int

	// voronoi caches VoronoiAreas: the areas are a pure function of the
	// immutable point set, and every geographic-gossip run on the graph
	// needs them, so they are computed once and shared. voronoiReady
	// publishes the cache to Snapshot, which must not block on (or
	// trigger) the computation.
	voronoiOnce  sync.Once
	voronoi      []float64
	voronoiReady atomic.Bool
}

// UniformPoints draws n points independently and uniformly from the unit
// square.
func UniformPoints(n int, r *rng.RNG) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: r.Float64(), Y: r.Float64()}
	}
	return pts
}

// Generate builds G(n, r) with r = c·sqrt(log n / n) from fresh uniform
// points drawn from r's "points" substream.
func Generate(n int, c float64, r *rng.RNG) (*Graph, error) {
	return GenerateWorkers(n, c, r, 1)
}

// GenerateWorkers is Generate with a construction worker-pool size. The
// points are always drawn serially (the draw sequence is part of the seed
// contract); only the adjacency construction is sharded. Output is
// byte-identical at every worker count.
func GenerateWorkers(n int, c float64, r *rng.RNG, workers int) (*Graph, error) {
	pts := UniformPoints(n, r.Stream("points"))
	return BuildWorkers(pts, ConnectivityRadius(n, c), workers)
}

// Build constructs the geometric graph over the given points with the
// given connection radius. All points must lie in the unit square.
func Build(points []geo.Point, radius float64) (*Graph, error) {
	return BuildWorkers(points, radius, 1)
}

// BuildWorkers is Build with a construction worker-pool size (<= 0 selects
// GOMAXPROCS). The per-node WithinRadius scan is sharded across workers in
// two passes — count, prefix-sum, fill — so the packed flat/offsets arrays
// are byte-identical to the serial build at every worker count: each
// node's neighbour segment is a pure function of the immutable cell index,
// written into its exact pre-sized CSR slot. The counting pass also means
// the serial path never pays append grow-copies on flat.
func BuildWorkers(points []geo.Point, radius float64, workers int) (*Graph, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("graph: radius %v must be positive", radius)
	}
	workers = par.Resolve(workers)
	bounds := geo.UnitSquare()
	for i, p := range points {
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("graph: point %d = %v outside the unit square", i, p)
		}
	}
	// Cell size = radius keeps radius queries to a 3×3 cell scan, but cap
	// the grid at a sane resolution for tiny radii on small inputs.
	cell := radius
	if cell > 0.5 {
		cell = 0.5
	}
	idx, err := geo.NewCellIndex(points, bounds, cell)
	if err != nil {
		return nil, fmt.Errorf("graph: build index: %w", err)
	}
	g := &Graph{
		points:  points,
		radius:  radius,
		bounds:  bounds,
		index:   idx,
		workers: workers,
		offsets: make([]int32, len(points)+1),
	}
	n := len(points)
	// Pass 1 (parallel): exact neighbour count per node.
	par.Blocks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.offsets[i+1] = int32(g.index.CountWithinRadius(points[i], radius, int32(i)))
		}
	})
	// Prefix-sum stitch (serial): offsets[i+1] becomes the end of node i's
	// segment, exactly as the serial append loop would have left it.
	for i := 0; i < n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	// Pass 2 (parallel): fill each node's pre-sized segment in place. The
	// three-index slice caps the append run at the counted length, so the
	// appends land inside flat; if a count/fill mismatch ever made append
	// grow past the cap (spilling into a fresh backing array) the length
	// check below catches it instead of corrupting a neighbour segment.
	g.flat = make([]int32, g.offsets[n])
	par.Blocks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seg := g.flat[g.offsets[i]:g.offsets[i]:g.offsets[i+1]]
			out := g.index.WithinRadius(points[i], radius, int32(i), seg)
			if len(out) != cap(seg) {
				panic(fmt.Sprintf("graph: node %d neighbour count changed between passes (%d != %d)",
					i, len(out), cap(seg)))
			}
		}
	})
	g.edges = len(g.flat) / 2
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.points) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return g.edges }

// Radius returns the connection radius.
func (g *Graph) Radius() float64 { return g.radius }

// Point returns node i's position.
func (g *Graph) Point(i int32) geo.Point { return g.points[i] }

// Points returns the backing point slice. Callers must treat it as
// read-only.
func (g *Graph) Points() []geo.Point { return g.points }

// Neighbors returns node i's neighbour list, sorted ascending. The slice
// aliases internal storage and must be treated as read-only.
func (g *Graph) Neighbors(i int32) []int32 {
	return g.flat[g.offsets[i]:g.offsets[i+1]]
}

// Degree returns the number of neighbours of node i.
func (g *Graph) Degree(i int32) int {
	return int(g.offsets[i+1] - g.offsets[i])
}

// ByDegreeDesc returns all node ids ordered by descending degree, ties
// broken by ascending id — the deterministic ordering hub-targeted fault
// models (adversarial churn against the best-connected nodes) key on.
func (g *Graph) ByDegreeDesc() []int32 {
	out := make([]int32, g.N())
	for i := range out {
		out[i] = int32(i)
	}
	sort.SliceStable(out, func(a, b int) bool {
		da, db := g.Degree(out[a]), g.Degree(out[b])
		if da != db {
			return da > db
		}
		return out[a] < out[b]
	})
	return out
}

// HasEdge reports whether nodes i and j are adjacent.
func (g *Graph) HasEdge(i, j int32) bool {
	nbrs := g.Neighbors(i)
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == j
}

// NearestTo returns the node nearest to position p, or -1 for an empty
// graph. This is the "node closest to a random location" primitive that
// geographic gossip's target sampling relies on.
func (g *Graph) NearestTo(p geo.Point) int32 { return g.index.Nearest(p) }

// NodesInRect returns the nodes inside rect, sorted ascending.
func (g *Graph) NodesInRect(rect geo.Rect) []int32 {
	return g.index.InRect(rect, nil)
}

// ErrDisconnected is returned by operations that require a connected graph.
var ErrDisconnected = errors.New("graph: not connected")

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	visited[0] = true
	seen := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !visited[v] {
				visited[v] = true
				seen++
				queue = append(queue, v)
			}
		}
	}
	return seen == n
}

// Components labels each node with a component id in [0, k) and returns
// the labels plus the number of components k. Ids are assigned in order
// of the smallest node index per component.
func (g *Graph) Components() (labels []int32, k int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := int32(0); int(s) < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(k)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if labels[v] < 0 {
					labels[v] = int32(k)
					queue = append(queue, v)
				}
			}
		}
		k++
	}
	return labels, k
}

// BFSDistances returns hop distances from src to every node (-1 where
// unreachable).
func (g *Graph) BFSDistances(src int32) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSPath returns a shortest hop path from src to dst (inclusive of both
// endpoints), or nil if unreachable. Among shortest paths it prefers
// smaller node indices, so output is deterministic.
func (g *Graph) BFSPath(src, dst int32) []int32 {
	if src == dst {
		return []int32{src}
	}
	n := g.N()
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := make([]int32, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if prev[v] == -2 {
				prev[v] = u
				if v == dst {
					return buildPath(prev, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func buildPath(prev []int32, dst int32) []int32 {
	var rev []int32
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// VoronoiAreas returns, for every node, the area of its Voronoi cell
// within the unit square, computed locally: the square clipped by the
// perpendicular bisector against each graph neighbour. The estimate is
// exact whenever all of a node's Voronoi neighbours lie within the
// connection radius, which holds w.h.p. at the connectivity radius; for
// sparser nodes it overestimates (the true cell is a subset).
//
// This is the quantity geographic gossip's rejection sampling needs: the
// probability that a node is nearest to a uniformly random position is
// exactly its Voronoi area.
//
// The areas are a pure function of the immutable point set, so they are
// computed once (the polygon clipping dominated per-run setup cost before
// caching) and the same slice is returned to every caller. Treat it as
// read-only.
func (g *Graph) VoronoiAreas() []float64 {
	g.voronoiOnce.Do(func() {
		areas := make([]float64, g.N())
		// Each node's area is a pure function of its own point and
		// neighbour list, so the node range shards freely: every worker
		// block owns a disjoint slice of areas and its own pair of
		// ping-pong clip buffers (each bisector clip writes into the
		// buffer the previous one didn't — O(1) allocations per block
		// instead of one polygon per clip). Output is byte-identical at
		// every worker count.
		unit := geo.UnitSquarePolygon()
		par.Blocks(g.workers, g.N(), func(lo, hi int) {
			bufA := make(geo.Polygon, 0, 16)
			bufB := make(geo.Polygon, 0, 16)
			for i := int32(lo); int(i) < hi; i++ {
				cell := unit
				pi := g.points[i]
				writeA := true // which buffer the next clip writes into
				for _, j := range g.Neighbors(i) {
					dst := bufB
					if writeA {
						dst = bufA
					}
					// dst never aliases cell: cell lives in the other buffer
					// (or in unit before the first real clip).
					next := cell.ClipBisectorInto(pi, g.points[j], dst[:0])
					if len(next) == 0 {
						cell = nil
						break
					}
					if &next[0] == &cell[0] {
						continue // identical-points passthrough: nothing written
					}
					// Keep the (possibly append-grown) buffer for reuse.
					if writeA {
						bufA = next
					} else {
						bufB = next
					}
					cell = next
					writeA = !writeA
				}
				areas[i] = cell.Area()
			}
		})
		g.voronoi = areas
		g.voronoiReady.Store(true)
	})
	return g.voronoi
}

// Footprint itemizes the heap bytes the graph holds per major table. The
// voronoi entry is nonzero only once VoronoiAreas has been demanded.
type Footprint struct {
	PointsBytes  int
	AdjBytes     int // flat + offsets CSR arrays
	IndexBytes   int // cell-index CSR arrays
	VoronoiBytes int
}

// Total returns the summed footprint in bytes.
func (f Footprint) Total() int {
	return f.PointsBytes + f.AdjBytes + f.IndexBytes + f.VoronoiBytes
}

// Footprint reports the graph's table sizes, the input to the
// bytes-per-node scaling report in cmd/sweep.
func (g *Graph) Footprint() Footprint {
	return Footprint{
		PointsBytes:  16 * len(g.points),
		AdjBytes:     4*len(g.flat) + 4*len(g.offsets),
		IndexBytes:   g.index.FootprintBytes(),
		VoronoiBytes: 8 * len(g.voronoi),
	}
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max  int
	Mean      float64
	Isolated  int // nodes with degree 0
	TotalEdge int // undirected edge count
}

// Degrees computes degree statistics for the graph.
func (g *Graph) Degrees() DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: int(^uint(0) >> 1)}
	sum := 0
	for i := int32(0); int(i) < n; i++ {
		d := g.Degree(i)
		sum += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	st.Mean = float64(sum) / float64(n)
	st.TotalEdge = sum / 2
	return st
}
