package graph

import (
	"math"
	"reflect"
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	g, err := Generate(4096, 1.2, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromSnapshot(g.Points(), g.Snapshot(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.radius != g.radius || got.edges != g.edges {
		t.Fatalf("radius/edges = %v/%d, want %v/%d", got.radius, got.edges, g.radius, g.edges)
	}
	if !reflect.DeepEqual(got.offsets, g.offsets) || !reflect.DeepEqual(got.flat, g.flat) {
		t.Fatal("adjacency tables differ after round trip")
	}
	if !reflect.DeepEqual(got.index, g.index) {
		t.Fatal("cell index differs after round trip")
	}
	// Query behaviour: spot-check against the original.
	for _, i := range []int32{0, 1, 2047, 4095} {
		if !reflect.DeepEqual(got.Neighbors(i), g.Neighbors(i)) {
			t.Fatalf("Neighbors(%d) differ", i)
		}
	}
	p := geo.Point{X: 0.31, Y: 0.64}
	if got.NearestTo(p) != g.NearestTo(p) {
		t.Fatal("NearestTo differs")
	}
	if got.IsConnected() != g.IsConnected() {
		t.Fatal("IsConnected differs")
	}
}

func TestSnapshotVoronoiCache(t *testing.T) {
	g, err := Generate(512, 1.4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Before the areas are demanded the snapshot must not include (or
	// trigger) them.
	if s := g.Snapshot(); s.Voronoi != nil {
		t.Fatal("snapshot exposes voronoi areas before they were computed")
	}
	want := g.VoronoiAreas()
	s := g.Snapshot()
	if s.Voronoi == nil {
		t.Fatal("snapshot missing computed voronoi areas")
	}
	got, err := FromSnapshot(g.Points(), s, 1)
	if err != nil {
		t.Fatal(err)
	}
	areas := got.VoronoiAreas() // must hit the pre-seeded cache, not recompute
	for i := range want {
		if math.Float64bits(areas[i]) != math.Float64bits(want[i]) {
			t.Fatalf("voronoi[%d] = %v, want %v", i, areas[i], want[i])
		}
	}
}

func TestFromSnapshotRejectsCorruption(t *testing.T) {
	g, err := Generate(256, 1.5, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Points()
	base := g.Snapshot()
	clone := func() Snapshot {
		s := base
		s.Offsets = append([]int32(nil), base.Offsets...)
		s.Flat = append([]int32(nil), base.Flat...)
		s.Index.CellStart = append([]int32(nil), base.Index.CellStart...)
		s.Index.CellIDs = append([]int32(nil), base.Index.CellIDs...)
		return s
	}
	cases := map[string]func(*Snapshot){
		"negative radius":    func(s *Snapshot) { s.Radius = -1 },
		"nan radius":         func(s *Snapshot) { s.Radius = math.NaN() },
		"wrong cell size":    func(s *Snapshot) { s.Index.CellSize *= 2 },
		"missing offset":     func(s *Snapshot) { s.Offsets = s.Offsets[:len(s.Offsets)-1] },
		"offset overrun":     func(s *Snapshot) { s.Offsets[len(s.Offsets)-1]++ },
		"offset decrease":    func(s *Snapshot) { s.Offsets[1] = s.Offsets[2] + 1; s.Offsets[2] = 0 },
		"self loop":          func(s *Snapshot) { s.Flat[0] = 0 },
		"neighbour range":    func(s *Snapshot) { s.Flat[0] = int32(len(pts)) },
		"unsorted adjacency": func(s *Snapshot) { s.Flat[0], s.Flat[1] = s.Flat[1], s.Flat[0] },
		"index id range":     func(s *Snapshot) { s.Index.CellIDs[0] = -3 },
		"index wrong cell": func(s *Snapshot) {
			s.Index.CellIDs[0], s.Index.CellIDs[len(s.Index.CellIDs)-1] =
				s.Index.CellIDs[len(s.Index.CellIDs)-1], s.Index.CellIDs[0]
		},
		"voronoi length": func(s *Snapshot) { s.Voronoi = []float64{1} },
	}
	for name, corrupt := range cases {
		s := clone()
		corrupt(&s)
		if _, err := FromSnapshot(pts, s, 1); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	// The pristine clone must still load (guards the cases above are real).
	if _, err := FromSnapshot(pts, clone(), 1); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}
