// Package table renders experiment output: aligned plain-text tables, CSV,
// and ASCII line plots (the repository's stand-in for the figures a plot
// library would draw).
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row built from fmt.Sprint applied to each value,
// with floats rendered compactly.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = FormatFloat(x)
		case float32:
			cells[i] = FormatFloat(float64(x))
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// FormatFloat renders a float compactly: integers without decimals,
// small magnitudes in scientific notation, otherwise 4 significant
// digits.
func FormatFloat(v float64) string {
	if v == 0 {
		return "0"
	}
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e7 || abs < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderString returns the rendered table as a string.
func (t *Table) RenderString() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				parts[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}
