package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one curve of an ASCII plot.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Plot is a multi-series ASCII line plot. It is the repository's
// replacement for the figures a plotting library would produce: good
// enough to eyeball curve shapes and crossovers directly in a terminal
// or a text report.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX / LogY select logarithmic axes (points with non-positive
	// coordinates are dropped).
	LogX, LogY bool
	// Width and Height are the canvas dimensions in characters; zero
	// selects 72×20.
	Width, Height int
	Series        []Series
}

var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Add appends a series.
func (p *Plot) Add(name string, xs, ys []float64) {
	p.Series = append(p.Series, Series{Name: name, Xs: xs, Ys: ys})
}

// Render writes the plot to w.
func (p *Plot) Render(w io.Writer) error {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	type pt struct{ x, y float64 }
	var all []pt
	tf := func(v float64, log bool) (float64, bool) {
		if !log {
			return v, true
		}
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}
	transformed := make([][]pt, len(p.Series))
	for si, s := range p.Series {
		for i := range s.Xs {
			if i >= len(s.Ys) {
				break
			}
			x, okx := tf(s.Xs[i], p.LogX)
			y, oky := tf(s.Ys[i], p.LogY)
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			q := pt{x, y}
			transformed[si] = append(transformed[si], q)
			all = append(all, q)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if len(all) == 0 {
		fmt.Fprintln(&b, "(no plottable data)")
		_, err := io.WriteString(w, b.String())
		return err
	}
	minX, maxX := all[0].x, all[0].x
	minY, maxY := all[0].y, all[0].y
	for _, q := range all {
		minX = math.Min(minX, q.x)
		maxX = math.Max(maxX, q.x)
		minY = math.Min(minY, q.y)
		maxY = math.Max(maxY, q.y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, pts := range transformed {
		mark := seriesMarks[si%len(seriesMarks)]
		for _, q := range pts {
			col := int(math.Round((q.x - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((q.y - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row // origin bottom-left
			if r >= 0 && r < height && col >= 0 && col < width {
				canvas[r][col] = mark
			}
		}
	}
	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	yLo, yHi := axisVal(minY, p.LogY), axisVal(maxY, p.LogY)
	xLo, xHi := axisVal(minX, p.LogX), axisVal(maxX, p.LogX)
	fmt.Fprintf(&b, "%s\n", p.YLabel)
	fmt.Fprintf(&b, "%10s +%s\n", FormatFloat(yHi), strings.Repeat("-", width))
	for _, row := range canvas {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", FormatFloat(yLo), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", width-len(FormatFloat(xHi)), FormatFloat(xLo), FormatFloat(xHi))
	if p.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", p.XLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderString returns the rendered plot as a string.
func (p *Plot) RenderString() string {
	var b strings.Builder
	_ = p.Render(&b)
	return b.String()
}
