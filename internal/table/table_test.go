package table

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("My Table", "name", "count")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.RenderString()
	if !strings.Contains(out, "My Table") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: "count" starts at the same offset everywhere.
	hdr := lines[1]
	idx := strings.Index(hdr, "count")
	if idx < 0 {
		t.Fatalf("no count header: %q", hdr)
	}
	if lines[3][idx] != '1' {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 || tb.Rows[0][1] != "" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("", "n", "v", "s")
	tb.AddRowf(42, 3.14159, "hi")
	row := tb.Rows[0]
	if row[0] != "42" || row[2] != "hi" {
		t.Fatalf("row = %v", row)
	}
	if !strings.HasPrefix(row[1], "3.14") {
		t.Fatalf("float cell = %q", row[1])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{-3, "-3"},
		{1234567, "1234567"},
		{12345678, "1.23e+07"},
		{0.25, "0.25"},
		{0.0001234, "0.000123"},
	}
	for _, tc := range cases {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("plain", `with,comma`)
	tb.AddRow(`with"quote`, "x")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{Title: "growth", XLabel: "n", YLabel: "cost", Width: 40, Height: 10}
	p.Add("linear", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	p.Add("quadratic", []float64{1, 2, 3, 4}, []float64{1, 4, 9, 16})
	out := p.RenderString()
	if !strings.Contains(out, "growth") || !strings.Contains(out, "linear") || !strings.Contains(out, "quadratic") {
		t.Fatalf("plot output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("plot missing series marks:\n%s", out)
	}
}

func TestPlotLogAxesDropNonPositive(t *testing.T) {
	p := &Plot{LogX: true, LogY: true, Width: 30, Height: 8}
	p.Add("s", []float64{0, 10, 100}, []float64{-1, 10, 100})
	out := p.RenderString()
	// Only the two positive points survive; plot must still render.
	if strings.Contains(out, "no plottable data") {
		t.Fatalf("log plot dropped everything:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{}
	out := p.RenderString()
	if !strings.Contains(out, "no plottable data") {
		t.Fatalf("empty plot output: %q", out)
	}
}

func TestPlotSinglePoint(t *testing.T) {
	p := &Plot{Width: 20, Height: 5}
	p.Add("pt", []float64{5}, []float64{5})
	out := p.RenderString()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestPlotMismatchedLengths(t *testing.T) {
	p := &Plot{Width: 20, Height: 5}
	p.Add("s", []float64{1, 2, 3}, []float64{1}) // extra xs ignored
	out := p.RenderString()
	if strings.Contains(out, "no plottable data") {
		t.Fatalf("plot with one valid point rendered nothing:\n%s", out)
	}
}
