// Package stats provides the statistical analysis used by the experiment
// harness: log–log regression for scaling exponents, summary statistics,
// quantiles, and total-variation distance for sampling-uniformity checks.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic moments of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes summary statistics (population standard deviation).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, v := range xs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var dev2 float64
	for _, v := range xs {
		d := v - s.Mean
		dev2 += d * d
	}
	s.Std = math.Sqrt(dev2 / float64(s.N))
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation. It returns NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Fit is a least-squares linear fit y = Intercept + Slope·x.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// OLS fits y = a + b·x by ordinary least squares. It requires at least
// two points with distinct x.
func OLS(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: %d xs but %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := Fit{
		Slope:     slope,
		Intercept: my - slope*mx,
	}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// PowerLawFit fits y = C·x^p by OLS on (log x, log y) and returns the
// exponent p, the constant C, and R² in log space. All inputs must be
// positive.
func PowerLawFit(xs, ys []float64) (exponent, constant, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: %d xs but %d ys", len(xs), len(ys))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: power-law fit needs positive data, got (%v, %v)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit, err := OLS(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return fit.Slope, math.Exp(fit.Intercept), fit.R2, nil
}

// TVDistanceUniform returns the total-variation distance between the
// empirical distribution given by counts and the uniform distribution
// over the same support: ½·Σ|p_i − 1/k|. It returns 0 for an empty or
// zero-count input.
func TVDistanceUniform(counts []int) float64 {
	k := len(counts)
	if k == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	u := 1 / float64(k)
	var tv float64
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(total) - u)
	}
	return tv / 2
}

// MaxAbsDeviation returns max_i |xs[i]/ref − 1|, the normalized maximum
// occupancy deviation of §3's Chernoff claim. It returns NaN when ref is
// zero or the sample empty.
func MaxAbsDeviation(xs []float64, ref float64) float64 {
	if len(xs) == 0 || ref == 0 {
		return math.NaN()
	}
	worst := 0.0
	for _, v := range xs {
		d := math.Abs(v/ref - 1)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Fraction returns the fraction of values satisfying pred.
func Fraction(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	k := 0
	for _, v := range xs {
		if pred(v) {
			k++
		}
	}
	return float64(k) / float64(len(xs))
}

// GeometricMean returns the geometric mean of positive values; it returns
// NaN if any value is non-positive or the sample is empty.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sumLog float64
	for _, v := range xs {
		if v <= 0 {
			return math.NaN()
		}
		sumLog += math.Log(v)
	}
	return math.Exp(sumLog / float64(len(xs)))
}
