package stats

import (
	"math"
	"testing"
	"testing/quick"

	"geogossip/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("interpolated median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestOLSExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestOLSNoisy(t *testing.T) {
	r := rng.New(200)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.Range(0, 10)
		xs = append(xs, x)
		ys = append(ys, 2+3*x+r.NormFloat64()*0.1)
	}
	fit, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.02 || math.Abs(fit.Intercept-2) > 0.05 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := OLS([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
}

func TestPowerLawFit(t *testing.T) {
	// y = 5·x^1.5 exactly.
	var xs, ys []float64
	for _, x := range []float64{10, 100, 1000, 10000} {
		xs = append(xs, x)
		ys = append(ys, 5*math.Pow(x, 1.5))
	}
	p, c, r2, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.5) > 1e-9 || math.Abs(c-5) > 1e-6 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("p=%v c=%v r2=%v", p, c, r2)
	}
}

func TestPowerLawFitRejectsNonPositive(t *testing.T) {
	if _, _, _, err := PowerLawFit([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("zero x accepted")
	}
	if _, _, _, err := PowerLawFit([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("negative y accepted")
	}
	if _, _, _, err := PowerLawFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTVDistanceUniform(t *testing.T) {
	// Perfectly uniform: 0.
	if got := TVDistanceUniform([]int{10, 10, 10, 10}); got != 0 {
		t.Fatalf("uniform TV = %v", got)
	}
	// All mass on one of two outcomes: TV = 1/2.
	if got := TVDistanceUniform([]int{10, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("point-mass TV = %v", got)
	}
	// All mass on one of k outcomes: TV = 1 - 1/k.
	if got := TVDistanceUniform([]int{10, 0, 0, 0, 0}); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("point-mass k=5 TV = %v", got)
	}
	if got := TVDistanceUniform(nil); got != 0 {
		t.Fatalf("empty TV = %v", got)
	}
	if got := TVDistanceUniform([]int{0, 0}); got != 0 {
		t.Fatalf("zero-count TV = %v", got)
	}
}

func TestTVDistanceRange(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		tv := TVDistanceUniform(counts)
		return tv >= 0 && tv <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDeviation(t *testing.T) {
	got := MaxAbsDeviation([]float64{90, 100, 115}, 100)
	if math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("max dev = %v", got)
	}
	if !math.IsNaN(MaxAbsDeviation(nil, 100)) {
		t.Fatal("empty input not NaN")
	}
	if !math.IsNaN(MaxAbsDeviation([]float64{1}, 0)) {
		t.Fatal("zero ref not NaN")
	}
}

func TestFraction(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Fraction(xs, func(v float64) bool { return v <= 2 })
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("fraction = %v", got)
	}
	if Fraction(nil, func(float64) bool { return true }) != 0 {
		t.Fatal("empty fraction not 0")
	}
}

func TestGeometricMean(t *testing.T) {
	got := GeometricMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean = %v", got)
	}
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Fatal("negative input not NaN")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Fatal("empty input not NaN")
	}
}
