package sim

import (
	"geogossip/internal/channel"
	"geogossip/internal/geo"
	"geogossip/internal/metrics"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/trace"
)

// Harness bundles the per-run state every clock-driven engine previously
// assembled by hand: the Poisson clock, the incremental error tracker,
// transmission accounting, the convergence curve, the radio medium, and
// optional event tracing. Engines drive it as
//
//	h := sim.NewHarness(x, sim.HarnessConfig{...}, r.Stream("clock"))
//	for !h.Done() {
//	    s := h.Tick()
//	    if !h.Alive(s) { h.Sample(); continue }
//	    ... protocol step using h.Medium, h.Tracker, h.Counter ...
//	    h.Sample()
//	}
//	return h.Finish(name), nil
//
// which keeps the clock/tracker/counter/curve wiring — and its exact
// draw and sampling order — identical across engines.
type Harness struct {
	// Stop is the termination rule (defaults already applied).
	Stop StopRule
	// Clock assigns ticks to nodes.
	Clock *Clock
	// Tracker maintains the relative ℓ₂ error over x.
	Tracker *ErrTracker
	// Counter accumulates transmissions by category.
	Counter Counter
	// Curve is the sampled convergence trajectory.
	Curve metrics.Curve
	// Medium is the radio fault model every data packet goes through.
	Medium channel.Channel
	// Router is the run's routing core: every greedy route and region
	// flood goes through it, so packet movement is memoized and
	// allocation-free on the warm path. Nil for engines that never route
	// (single-hop exchanges only).
	Router *routing.Router
	// Tracer receives protocol events; nil costs nothing.
	Tracer trace.Tracer
	// Scope receives metrics; nil costs nothing (scope methods are
	// nil-receiver safe). Per-tick quantities flush once in Finish; only
	// rare events (losses, recovery actions) report per event.
	Scope *obs.Scope
	// Timeline is the transport layer's event clock (DESIGN.md §12): due
	// delivery completions drain each tick in deterministic (time, seq)
	// order, and Finish folds its high-water completion time into
	// SimSeconds. Nil or inactive (no delay/arq components) costs one
	// branch per tick and changes nothing.
	Timeline *channel.Timeline

	n     int
	every uint64
	pts   []geo.Point
}

// HarnessConfig configures NewHarness.
type HarnessConfig struct {
	// Stop bundles the termination conditions (WithDefaults is applied).
	Stop StopRule
	// RecordEvery samples the curve every RecordEvery ticks; zero
	// selects n.
	RecordEvery uint64
	// Medium is the radio fault model; nil selects channel.Perfect.
	Medium channel.Channel
	// Points holds node positions so Packet can attach the spatial
	// context spatial fault models read; nil leaves positions zero
	// (sufficient for non-spatial media).
	Points []geo.Point
	// Router supplies the run's routing core (see Harness.Router).
	Router *routing.Router
	// Tracer optionally receives protocol events.
	Tracer trace.Tracer
	// Obs optionally receives metrics (see Harness.Scope).
	Obs *obs.Scope
	// Timeline optionally supplies the transport event clock (see
	// Harness.Timeline). The engine resets it before building the medium.
	Timeline *channel.Timeline
}

// NewHarness builds the run state over x (n = len(x) > 0) with the clock
// drawing from clockRNG, and records the initial curve sample.
func NewHarness(x []float64, cfg HarnessConfig, clockRNG *rng.RNG) *Harness {
	h := &Harness{}
	h.Reset(x, cfg, clockRNG)
	return h
}

// Reset re-initializes the harness in place for a new run — the pooled
// path: a run state owns one Harness and Resets it per run, reusing the
// clock, the error tracker, and the curve's sample storage, so repeat
// runs on a network allocate no harness state. Behaviour (draws, samples,
// results) is bit-identical to a NewHarness run by construction.
func (h *Harness) Reset(x []float64, cfg HarnessConfig, clockRNG *rng.RNG) {
	medium := cfg.Medium
	if medium == nil {
		medium = channel.Perfect{}
	}
	every := cfg.RecordEvery
	if every == 0 {
		every = uint64(len(x))
		if every == 0 {
			every = 1
		}
	}
	h.Stop = cfg.Stop.WithDefaults()
	if h.Clock == nil {
		h.Clock = NewClock(len(x), clockRNG)
	} else {
		h.Clock.Reset(len(x), clockRNG)
	}
	if h.Tracker == nil {
		h.Tracker = NewErrTracker(x)
	} else {
		h.Tracker.Reset(x)
	}
	h.Counter.Reset()
	h.Curve.Samples = h.Curve.Samples[:0]
	h.Medium = medium
	h.Router = cfg.Router
	h.Tracer = cfg.Tracer
	h.Scope = cfg.Obs
	h.Timeline = cfg.Timeline
	h.n = len(x)
	h.every = every
	h.pts = cfg.Points
	h.Curve.Record(0, 0, h.Tracker.Err())
}

// Done reports whether the run should stop.
func (h *Harness) Done() bool {
	return h.Stop.Done(h.Clock.Ticks(), h.Tracker.Err())
}

// Tick advances the clock and the medium together and returns the node
// whose clock fired. With an active timeline, due transport completions
// drain first in (time, seq) order, advancing the medium to each
// completion's floored time so time-windowed fault state flips at
// delayed-delivery instants exactly as at tick crossings.
func (h *Harness) Tick() int32 {
	s := h.Clock.Tick()
	if h.Timeline.Active() {
		h.Timeline.DrainTo(float64(h.Clock.Ticks()), h.Medium.Advance)
	}
	h.Medium.Advance(h.Clock.Ticks())
	return s
}

// Alive reports whether node i is up on the medium.
func (h *Harness) Alive(i int32) bool { return h.Medium.Alive(i) }

// Packet assembles the delivery context for a src→dst transmission of
// hops hops: endpoint positions from the configured point table (zero
// when none was supplied) and the current tick count as the decision
// time. Every engine delivery goes through it, so geometry-aware media
// always see where and when a packet travels.
func (h *Harness) Packet(src, dst int32, hops int) channel.Packet {
	p := channel.Packet{Src: src, Dst: dst, Hops: hops, Now: h.Clock.Ticks()}
	if h.pts != nil {
		p.SrcPos, p.DstPos = h.pts[src], h.pts[dst]
	}
	return p
}

// Sample records a curve point when the tick count hits the sampling
// period. Call it at the end of every loop iteration.
func (h *Harness) Sample() {
	if h.Clock.Ticks()%h.every == 0 {
		h.Curve.Record(h.Clock.Ticks(), h.Counter.Total(), h.Tracker.Err())
	}
}

// BlockSample records one curve point covering a block of ticks ending
// now, if the block crossed at least one sampling-period boundary.
// prevTicks is the tick count at the start of the block. The parallel
// tick scheduler calls it once per block where serial engines call Sample
// once per tick.
func (h *Harness) BlockSample(prevTicks uint64) {
	if h.Clock.Ticks()/h.every > prevTicks/h.every {
		h.Curve.Record(h.Clock.Ticks(), h.Counter.Total(), h.Tracker.Err())
	}
}

// Trace records ev when a tracer is attached.
func (h *Harness) Trace(ev trace.Event) {
	if h.Tracer != nil {
		h.Tracer.Record(ev)
	}
}

// TraceLoss records a lost data packet between a and b costing paid,
// through both the tracer and the metrics scope.
func (h *Harness) TraceLoss(a, b int32, paid int) {
	h.Scope.Loss(paid)
	if h.Tracer != nil {
		h.Tracer.Record(trace.Event{Kind: trace.KindLoss, Square: -1, NodeA: a, NodeB: b, Hops: paid})
	}
}

// Finish resyncs the tracker, appends the final curve sample, and
// assembles the standard result (Converged = target error set and
// reached). The liveness mask is included when the medium killed nodes.
// The result's curve is a snapshot: a later Reset of a pooled harness
// cannot corrupt a result already handed out.
func (h *Harness) Finish(name string) *metrics.Result {
	h.Tracker.Resync()
	finalErr := h.Tracker.Err()
	h.Curve.Record(h.Clock.Ticks(), h.Counter.Total(), finalErr)
	converged := h.Stop.TargetErr > 0 && finalErr <= h.Stop.TargetErr
	h.Scope.EndRun(h.Counter.Get(CatNear), h.Counter.Get(CatFar),
		h.Counter.Get(CatControl), h.Counter.Get(CatFlood),
		h.Clock.Ticks(), converged, finalErr)
	res := &metrics.Result{
		Algorithm:               name,
		N:                       h.n,
		Converged:               converged,
		FinalErr:                finalErr,
		Ticks:                   h.Clock.Ticks(),
		Transmissions:           h.Counter.Total(),
		TransmissionsByCategory: h.Counter.Breakdown(),
		Curve:                   h.Curve.Snapshot(),
		Alive:                   AliveMask(h.Medium, h.n),
	}
	res.SimSeconds = SimSeconds(h.Timeline, h.Clock.Ticks(), h.n)
	return res
}

// SimSeconds converts a run's terminal time — the latest of its final
// tick count and the timeline's last scheduled transport completion —
// into simulated seconds (ticks/n: each node's unit-rate Poisson clock
// ticks once per simulated second on average). Zero when the timeline is
// inactive, keeping transport-free results unchanged.
func SimSeconds(tl *channel.Timeline, ticks uint64, n int) float64 {
	if !tl.Active() || n <= 0 {
		return 0
	}
	t := float64(ticks)
	if high := tl.High(); high > t {
		t = high
	}
	return t / float64(n)
}

// AliveMask returns the per-node liveness of the medium at the current
// time, or nil when every node is up (the common, fault-free case).
func AliveMask(medium channel.Channel, n int) []bool {
	allUp := true
	for i := 0; i < n; i++ {
		if !medium.Alive(int32(i)) {
			allUp = false
			break
		}
	}
	if allUp {
		return nil
	}
	mask := make([]bool, n)
	for i := 0; i < n; i++ {
		mask[i] = medium.Alive(int32(i))
	}
	return mask
}

// EmptyResult is the degenerate n = 0 run: converged, zero cost.
func EmptyResult(name string) *metrics.Result {
	return &metrics.Result{
		Algorithm:               name,
		Converged:               true,
		Curve:                   &metrics.Curve{},
		TransmissionsByCategory: (&Counter{}).Breakdown(),
	}
}
