package sim

import (
	"math"
	"testing"

	"geogossip/internal/rng"
)

func TestClockUniform(t *testing.T) {
	const n = 10
	const ticks = 100000
	c := NewClock(n, rng.New(70))
	counts := make([]int, n)
	for i := 0; i < ticks; i++ {
		v := c.Tick()
		if v < 0 || int(v) >= n {
			t.Fatalf("tick returned %d", v)
		}
		counts[v]++
	}
	if c.Ticks() != ticks {
		t.Fatalf("Ticks = %d", c.Ticks())
	}
	for i, cnt := range counts {
		p := float64(cnt) / ticks
		if math.Abs(p-0.1) > 0.01 {
			t.Fatalf("node %d frequency %v, want ~0.1", i, p)
		}
	}
}

func TestClockPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0, rng.New(1))
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(CatNear, 2)
	c.Add(CatNear, 2)
	c.Add(CatFar, 10)
	c.Add(CatControl, 5)
	c.Add(CatFlood, 7)
	c.Add(CatFlood, 0)
	if c.Get(CatNear) != 4 || c.Get(CatFar) != 10 || c.Get(CatControl) != 5 || c.Get(CatFlood) != 7 {
		t.Fatalf("counts wrong: %+v", c.Breakdown())
	}
	if c.Total() != 26 {
		t.Fatalf("total = %d", c.Total())
	}
	b := c.Breakdown()
	if b["near"] != 4 || b["far"] != 10 || b["control"] != 5 || b["flood"] != 7 {
		t.Fatalf("breakdown = %v", b)
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative add did not panic")
		}
	}()
	var c Counter
	c.Add(CatNear, -1)
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		CatNear:      "near",
		CatFar:       "far",
		CatControl:   "control",
		CatFlood:     "flood",
		Category(99): "category(99)",
	}
	for cat, want := range cases {
		if got := cat.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", cat, got, want)
		}
	}
}

func TestErrTrackerBasics(t *testing.T) {
	x := []float64{1, 3} // mean 2, dev2 = 2
	tr := NewErrTracker(x)
	if tr.Mean() != 2 {
		t.Fatalf("mean = %v", tr.Mean())
	}
	if math.Abs(tr.Norm0()-math.Sqrt2) > 1e-12 {
		t.Fatalf("norm0 = %v", tr.Norm0())
	}
	if math.Abs(tr.Err()-1) > 1e-12 {
		t.Fatalf("initial err = %v", tr.Err())
	}
	// Move both to the mean: error hits 0.
	tr.Set(0, 2)
	tr.Set(1, 2)
	if tr.Err() > 1e-12 {
		t.Fatalf("err after consensus = %v", tr.Err())
	}
}

func TestErrTrackerMatchesExact(t *testing.T) {
	r := rng.New(71)
	x := make([]float64, 100)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	tr := NewErrTracker(x)
	for step := 0; step < 20000; step++ {
		i := int32(r.IntN(len(x)))
		old := x[i]
		x[i] = old + 0.1*(r.Float64()-0.5) // sum NOT preserved here; tracker still tracks dev vs original mean
		tr.Update(i, old)
	}
	// Compare against exact recomputation.
	mean := tr.Mean()
	var exact float64
	for _, v := range x {
		d := v - mean
		exact += d * d
	}
	if math.Abs(tr.Dev2()-exact) > 1e-6*(1+exact) {
		t.Fatalf("tracked dev2 %v, exact %v", tr.Dev2(), exact)
	}
}

func TestErrTrackerResync(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	tr := NewErrTracker(x)
	x[2] = 10
	tr.Update(2, 2)
	tr.Resync()
	mean := tr.Mean()
	var exact float64
	for _, v := range x {
		d := v - mean
		exact += d * d
	}
	if math.Abs(tr.Dev2()-exact) > 1e-12 {
		t.Fatalf("after resync dev2 = %v, exact %v", tr.Dev2(), exact)
	}
}

func TestErrTrackerConsensusStart(t *testing.T) {
	x := []float64{5, 5, 5}
	tr := NewErrTracker(x)
	if tr.Err() != 0 {
		t.Fatalf("consensus start err = %v", tr.Err())
	}
	if tr.Norm0() != 0 {
		t.Fatalf("norm0 = %v", tr.Norm0())
	}
}

func TestErrTrackerEmpty(t *testing.T) {
	tr := NewErrTracker(nil)
	if tr.Err() != 0 || tr.Dev2() != 0 {
		t.Fatal("empty tracker not zero")
	}
}

func TestErrTrackerClampNegative(t *testing.T) {
	x := []float64{1, -1}
	tr := NewErrTracker(x)
	// Drive to consensus; floating residue must not go negative.
	tr.Set(0, 0)
	tr.Set(1, 0)
	if tr.Dev2() < 0 {
		t.Fatalf("Dev2 = %v", tr.Dev2())
	}
}

func TestStopRule(t *testing.T) {
	s := StopRule{TargetErr: 0.01, MaxTicks: 100}
	if s.Done(5, 0.5) {
		t.Fatal("stopped early")
	}
	if !s.Done(5, 0.01) {
		t.Fatal("did not stop at target error")
	}
	if !s.Done(100, 0.5) {
		t.Fatal("did not stop at max ticks")
	}
	// TargetErr = 0 disables the error condition.
	s2 := StopRule{MaxTicks: 100}
	if s2.Done(5, 0) {
		t.Fatal("stopped on zero error with no target")
	}
	// Defaults.
	d := (StopRule{}).WithDefaults()
	if d.MaxTicks == 0 {
		t.Fatal("default MaxTicks not set")
	}
}
