package sim

import (
	"testing"

	"geogossip/internal/geo"
	"geogossip/internal/rng"
)

func TestHarnessPacketCarriesContext(t *testing.T) {
	pts := []geo.Point{geo.Pt(0.1, 0.2), geo.Pt(0.3, 0.4), geo.Pt(0.9, 0.8)}
	x := []float64{1, 2, 3}
	h := NewHarness(x, HarnessConfig{Points: pts}, rng.New(1))
	h.Tick()
	h.Tick()
	p := h.Packet(0, 2, 7)
	if p.Src != 0 || p.Dst != 2 || p.Hops != 7 {
		t.Fatalf("packet ids/hops wrong: %+v", p)
	}
	if p.SrcPos != pts[0] || p.DstPos != pts[2] {
		t.Fatalf("packet positions wrong: %+v", p)
	}
	if p.Now != h.Clock.Ticks() || p.Now != 2 {
		t.Fatalf("packet time %d, want current tick count %d", p.Now, h.Clock.Ticks())
	}
	if mid := p.Mid(); mid != geo.Pt(0.5, 0.5) {
		t.Fatalf("midpoint %v, want (0.5, 0.5)", mid)
	}
}

func TestHarnessPacketWithoutPoints(t *testing.T) {
	x := []float64{1, 2}
	h := NewHarness(x, HarnessConfig{}, rng.New(1))
	p := h.Packet(0, 1, 1)
	if p.SrcPos != (geo.Point{}) || p.DstPos != (geo.Point{}) {
		t.Fatalf("positionless harness produced positions: %+v", p)
	}
}
