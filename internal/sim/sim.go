// Package sim provides the asynchronous simulation substrate shared by
// every gossip algorithm in this repository: the paper's clock model,
// transmission accounting by traffic category, and an incremental tracker
// for the ℓ₂ distance from consensus.
//
// Clock model (§2 of the paper): each node owns an independent unit-rate
// Poisson clock. This is equivalent to a single global Poisson clock of
// rate n whose ticks are assigned to nodes uniformly at random, which is
// what Clock simulates. Communication and forwarding delays are assumed
// negligible relative to the mean slot length 1/n, so algorithm cost is
// measured in transmissions, not time.
package sim

import (
	"fmt"
	"math"

	"geogossip/internal/rng"
)

// Clock assigns global clock ticks to nodes uniformly at random,
// equivalent to per-node unit-rate Poisson clocks.
type Clock struct {
	n     int
	r     *rng.RNG
	ticks uint64
}

// NewClock builds a clock over n nodes drawing from r. It panics if
// n <= 0.
func NewClock(n int, r *rng.RNG) *Clock {
	c := &Clock{}
	c.Reset(n, r)
	return c
}

// Reset re-initializes the clock in place for a new run over n nodes
// drawing from r, so pooled run states reuse one Clock across runs. It
// panics if n <= 0, like NewClock.
func (c *Clock) Reset(n int, r *rng.RNG) {
	if n <= 0 {
		panic("sim: NewClock with n <= 0")
	}
	c.n, c.r, c.ticks = n, r, 0
}

// Tick returns the node whose clock fires next and advances the global
// tick counter.
func (c *Clock) Tick() int32 {
	c.ticks++
	return int32(c.r.IntN(c.n))
}

// Ticks returns the number of ticks issued so far.
func (c *Clock) Ticks() uint64 { return c.ticks }

// Bump advances the tick counter by k without drawing. The parallel tick
// scheduler (DESIGN.md §9) issues its draws from per-shard streams and
// accounts a whole block of ticks here, so curve samples, stop checks and
// results stay denominated in global ticks.
func (c *Clock) Bump(k uint64) { c.ticks += k }

// Category classifies transmissions for the cost breakdown of E13.
type Category int

const (
	// CatNear is a single-hop exchange with a graph neighbour (2 per
	// pairwise exchange: one message each way).
	CatNear Category = iota + 1
	// CatFar is a hop of a long-range greedy route carrying values.
	CatFar
	// CatControl is a hop of an activation/deactivation control route.
	CatControl
	// CatFlood is one broadcast of a region-restricted control flood.
	CatFlood

	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatNear:
		return "near"
	case CatFar:
		return "far"
	case CatControl:
		return "control"
	case CatFlood:
		return "flood"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Counter accumulates transmission counts by category.
type Counter struct {
	counts [numCategories]uint64
}

// Add records n transmissions in the given category.
func (c *Counter) Add(cat Category, n int) {
	if n < 0 {
		panic("sim: negative transmission count")
	}
	c.counts[cat] += uint64(n)
}

// Get returns the count for one category.
func (c *Counter) Get(cat Category) uint64 { return c.counts[cat] }

// Total returns the sum over all categories.
func (c *Counter) Total() uint64 {
	var t uint64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Reset zeroes every category for a new run.
func (c *Counter) Reset() { c.counts = [numCategories]uint64{} }

// Breakdown returns the per-category counts keyed by category name.
func (c *Counter) Breakdown() map[string]uint64 {
	out := make(map[string]uint64, 4)
	for cat := CatNear; cat < numCategories; cat++ {
		out[cat.String()] = c.counts[cat]
	}
	return out
}

// ErrTracker maintains ‖x − x̄·1‖₂ / ‖x(0) − x̄·1‖₂ incrementally while an
// algorithm mutates individual entries of x. Because all gossip updates
// preserve the sum, the mean x̄ is fixed at construction.
//
// Incremental float accumulation drifts, so the tracker periodically
// recomputes the deviation exactly; Err is therefore accurate to well
// below the tolerances any experiment uses.
type ErrTracker struct {
	x       []float64
	mean    float64
	dev2    float64 // running Σ(x_i − mean)²
	norm0   float64 // initial ‖x − mean‖₂
	updates int
	// resyncEvery forces an exact recomputation after this many updates.
	resyncEvery int
}

// NewErrTracker wraps x (which the algorithm continues to mutate through
// Update). The caller must report every value change through Update.
func NewErrTracker(x []float64) *ErrTracker {
	t := &ErrTracker{}
	t.Reset(x)
	return t
}

// Reset re-initializes the tracker in place over a fresh x, so pooled run
// states reuse one ErrTracker across runs.
func (t *ErrTracker) Reset(x []float64) {
	*t = ErrTracker{x: x, resyncEvery: 1 << 16}
	n := float64(len(x))
	if n == 0 {
		return
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	t.mean = sum / n
	t.dev2 = t.exactDev2()
	t.norm0 = math.Sqrt(t.dev2)
}

func (t *ErrTracker) exactDev2() float64 {
	var d2 float64
	for _, v := range t.x {
		d := v - t.mean
		d2 += d * d
	}
	return d2
}

// Mean returns the (invariant) mean of the tracked vector.
func (t *ErrTracker) Mean() float64 { return t.mean }

// Norm0 returns the initial deviation norm ‖x(0) − x̄‖₂.
func (t *ErrTracker) Norm0() float64 { return t.norm0 }

// Update records that x[i] changed from old to its current value x[i].
// Call it after mutating the slice.
func (t *ErrTracker) Update(i int32, old float64) {
	dOld := old - t.mean
	dNew := t.x[i] - t.mean
	t.dev2 += dNew*dNew - dOld*dOld
	t.updates++
	if t.updates >= t.resyncEvery {
		t.updates = 0
		t.dev2 = t.exactDev2()
	}
}

// Set assigns x[i] = v and updates the tracker.
func (t *ErrTracker) Set(i int32, v float64) {
	old := t.x[i]
	t.x[i] = v
	t.Update(i, old)
}

// Dev2 returns the current squared deviation Σ(x_i − x̄)² (never negative;
// tiny negative float residue is clamped).
func (t *ErrTracker) Dev2() float64 {
	if t.dev2 < 0 {
		return 0
	}
	return t.dev2
}

// Err returns the relative error ‖x − x̄‖₂ / ‖x(0) − x̄‖₂. A vector that
// started at consensus reports 0.
func (t *ErrTracker) Err() float64 {
	if t.norm0 == 0 {
		return 0
	}
	return math.Sqrt(t.Dev2()) / t.norm0
}

// Resync forces an exact recomputation of the deviation.
func (t *ErrTracker) Resync() {
	t.dev2 = t.exactDev2()
	t.updates = 0
}

// ApplyExternal folds in incremental updates that were accumulated
// outside the tracker: a deviation-squared delta covering updates value
// changes already written to x. The parallel tick scheduler's shards
// accumulate their in-shard deltas locally and merge them here in fixed
// shard order, keeping the periodic exact-recompute cadence (and so the
// reported error) deterministic.
func (t *ErrTracker) ApplyExternal(dev2Delta float64, updates int) {
	t.dev2 += dev2Delta
	t.updates += updates
	if t.updates >= t.resyncEvery {
		t.updates = 0
		t.dev2 = t.exactDev2()
	}
}

// StopRule bundles the termination conditions shared by the algorithm
// runners.
type StopRule struct {
	// TargetErr stops when the relative error drops to this level or
	// below. Zero or negative means "never" (run to MaxTicks).
	TargetErr float64
	// MaxTicks bounds the global clock ticks. Zero selects a defensive
	// default of 50_000_000.
	MaxTicks uint64
}

// WithDefaults returns the rule with zero fields replaced by defaults.
func (s StopRule) WithDefaults() StopRule {
	if s.MaxTicks == 0 {
		s.MaxTicks = 50_000_000
	}
	return s
}

// Done reports whether the run should stop, given the current tick count
// and relative error.
func (s StopRule) Done(ticks uint64, err float64) bool {
	if s.TargetErr > 0 && err <= s.TargetErr {
		return true
	}
	return ticks >= s.MaxTicks
}

// Grow helpers for pooled run states: engines reuse per-node and
// per-square scratch slices across runs through them, so repeat runs
// allocate only when a binding grows.

// GrowBool returns a cleared bool slice of length n, reusing buf's
// storage when large enough.
func GrowBool(buf []bool, n int) []bool {
	if cap(buf) >= n {
		buf = buf[:n]
		clear(buf)
		return buf
	}
	return make([]bool, n)
}

// GrowInt32 returns an uninitialized int32 slice of length n, reusing
// buf's storage when large enough.
func GrowInt32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// GrowUint64 returns a zeroed uint64 slice of length n, reusing buf's
// storage when large enough.
func GrowUint64(buf []uint64, n int) []uint64 {
	if cap(buf) >= n {
		buf = buf[:n]
		clear(buf)
		return buf
	}
	return make([]uint64, n)
}

// GrowFloat returns an uninitialized float64 slice of length n, reusing
// buf's storage when large enough. Callers must overwrite every entry.
func GrowFloat(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}
