package sim

// DefaultShards is the shard count Parallel uses when only Workers is
// set. It is a fixed constant — never derived from the machine — because
// the shard count is part of the deterministic parallel schedule
// (DESIGN.md §9): two runs agree bit-for-bit only when their shard
// counts agree.
const DefaultShards = 8

// Parallel configures deterministic intra-run parallelism (DESIGN.md §9).
// The zero value disables it, leaving engines on their serial
// draw-compatible schedules — the default-off rule that keeps every
// existing fingerprint byte-identical.
//
// Shards fixes the deterministic decomposition (it is part of the
// schedule); Workers only decides which goroutine executes a shard, so a
// run is bit-identical to itself at every worker count. Engines document
// which structures they shard: gossip shards whole tick blocks, the
// async engine shards its recovery sweep.
type Parallel struct {
	// Shards is the number of deterministic shards; <= 0 selects
	// DefaultShards when Workers enables the mode. Engines cap the
	// effective count at n so every shard owns at least one node.
	Shards int
	// Workers sizes the goroutine pool executing shards; <= 0 selects
	// GOMAXPROCS. Result-invariant.
	Workers int
}

// Enabled reports whether parallel execution was requested.
func (p Parallel) Enabled() bool { return p.Shards > 0 || p.Workers > 0 }

// WithDefaults fills the shard count for an enabled config.
func (p Parallel) WithDefaults() Parallel {
	if p.Shards <= 0 {
		p.Shards = DefaultShards
	}
	return p
}
