package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"geogossip/internal/rng"
)

func newCentered(t *testing.T, n int, seed uint64) *System {
	t.Helper()
	r := rng.New(seed)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	s, err := NewSystem(vals, UniformAlphas(n, r.Stream("alphas")))
	if err != nil {
		t.Fatal(err)
	}
	s.Center()
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem([]float64{1, 2}, []float64{0.4}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewSystem([]float64{1}, []float64{0.4}); err == nil {
		t.Fatal("single node accepted")
	}
	if _, err := NewSystem(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	s, err := NewSystem([]float64{1, 2}, []float64{0.4, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestNewSystemCopiesInputs(t *testing.T) {
	vals := []float64{1, 2}
	alphas := []float64{0.4, 0.45}
	s, err := NewSystem(vals, alphas)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	alphas[0] = 99
	if s.Value(0) != 1 {
		t.Fatal("system aliases caller's values slice")
	}
	s.StepPair(0, 1)
	if math.Abs(s.Value(0)-((1-0.4)*1+0.45*2)) > 1e-15 {
		t.Fatal("system aliases caller's alphas slice")
	}
}

func TestValidateAlphas(t *testing.T) {
	if err := ValidateAlphas([]float64{0.34, 0.4, 0.49}); err != nil {
		t.Fatalf("legal alphas rejected: %v", err)
	}
	for _, bad := range [][]float64{
		{0.4, 1.0 / 3.0}, // boundary excluded
		{0.4, 0.5},       // boundary excluded
		{0.4, 0.2},
		{0.4, 0.7},
		{0.4, -0.1},
	} {
		if err := ValidateAlphas(bad); err == nil {
			t.Fatalf("alphas %v accepted", bad)
		}
	}
}

func TestUniformAlphasInBand(t *testing.T) {
	alphas := UniformAlphas(10000, rng.New(40))
	if err := ValidateAlphas(alphas); err != nil {
		t.Fatal(err)
	}
}

func TestStepPairPreservesSum(t *testing.T) {
	s := newCentered(t, 50, 41)
	r := rng.New(42)
	before := s.Sum()
	for k := 0; k < 10000; k++ {
		s.Step(r)
	}
	if math.Abs(s.Sum()-before) > 1e-9 {
		t.Fatalf("sum drifted from %v to %v", before, s.Sum())
	}
	if s.Steps() != 10000 {
		t.Fatalf("Steps = %d", s.Steps())
	}
}

func TestStepPairExactUpdate(t *testing.T) {
	s, err := NewSystem([]float64{2, -2}, []float64{0.4, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	s.StepPair(0, 1)
	// x0' = (1-0.4)*2 + 0.45*(-2) = 1.2 - 0.9 = 0.3
	// x1' = 0.4*2 + (1-0.45)*(-2) = 0.8 - 1.1 = -0.3
	if math.Abs(s.Value(0)-0.3) > 1e-15 || math.Abs(s.Value(1)+0.3) > 1e-15 {
		t.Fatalf("values = %v", s.Values())
	}
}

func TestStepPairPanicsOnSelf(t *testing.T) {
	s := newCentered(t, 4, 43)
	defer func() {
		if recover() == nil {
			t.Fatal("StepPair(1,1) did not panic")
		}
	}()
	s.StepPair(1, 1)
}

func TestCenter(t *testing.T) {
	s, err := NewSystem([]float64{1, 2, 3, 6}, []float64{0.4, 0.4, 0.4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	s.Center()
	if math.Abs(s.Sum()) > 1e-12 {
		t.Fatalf("sum after Center = %v", s.Sum())
	}
	if math.Abs(s.Norm2()-s.CenteredNorm2()) > 1e-12 {
		t.Fatal("Norm2 != CenteredNorm2 after centering")
	}
}

func TestLemma1ContractionEmpirical(t *testing.T) {
	// The mean of ||x(t)||² over many runs must respect the Lemma 1 bound
	// (within Monte Carlo slack).
	const n = 32
	const steps = 400
	const trials = 300
	var sumRatio float64
	for trial := 0; trial < trials; trial++ {
		s := newCentered(t, n, uint64(100+trial))
		r := rng.New(uint64(200 + trial))
		norm0 := s.Norm2()
		for k := 0; k < steps; k++ {
			s.Step(r)
		}
		sumRatio += s.Norm2() / norm0
	}
	meanRatio := sumRatio / trials
	bound := Lemma1Bound(n, steps, 1.0)
	if meanRatio > bound*1.15 { // 15% Monte Carlo slack
		t.Fatalf("mean ratio %v exceeds Lemma 1 bound %v", meanRatio, bound)
	}
	if meanRatio <= 0 {
		t.Fatalf("mean ratio %v not positive", meanRatio)
	}
}

func TestLemma1BoundMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, tt := range []int{0, 10, 100, 1000} {
		b := Lemma1Bound(64, tt, 1.0)
		if b > prev {
			t.Fatalf("bound not monotone at t=%d", tt)
		}
		prev = b
	}
	if got := Lemma1Bound(64, 0, 3.5); got != 3.5 {
		t.Fatalf("t=0 bound = %v, want 3.5", got)
	}
}

func TestLemma1Rate(t *testing.T) {
	if got := Lemma1Rate(1); got != 0.5 {
		t.Fatalf("rate(1) = %v", got)
	}
	if got := Lemma1Rate(100); math.Abs(got-0.995) > 1e-12 {
		t.Fatalf("rate(100) = %v", got)
	}
}

func TestAlphaOutsideBandDoesNotContract(t *testing.T) {
	// With alphas far above 1/2 the update is expansive: after the same
	// number of steps the norm must be much larger than the in-band run.
	const n = 16
	const steps = 600
	run := func(alpha float64) float64 {
		r := rng.New(44)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		alphas := make([]float64, n)
		for i := range alphas {
			alphas[i] = alpha
		}
		s, err := NewSystem(vals, alphas)
		if err != nil {
			t.Fatal(err)
		}
		s.Center()
		norm0 := s.Norm2()
		rr := rng.New(45)
		for k := 0; k < steps; k++ {
			s.Step(rr)
		}
		return s.Norm2() / norm0
	}
	good := run(0.4)
	bad := run(1.8)
	if bad < good*1e3 {
		t.Fatalf("expansive alphas did not blow up: good=%v bad=%v", good, bad)
	}
	if good > 1 {
		t.Fatalf("in-band run did not contract: %v", good)
	}
}

func TestPerturbedPreservesSum(t *testing.T) {
	s := newCentered(t, 20, 46)
	r := rng.New(47)
	noise := func() float64 { return 1e-4 * (r.Float64()*2 - 1) }
	before := s.Sum()
	for k := 0; k < 5000; k++ {
		s.StepPerturbed(r, noise)
	}
	if math.Abs(s.Sum()-before) > 1e-9 {
		t.Fatalf("perturbed sum drifted: %v -> %v", before, s.Sum())
	}
}

func TestLemma2BoundHolds(t *testing.T) {
	// With noise magnitude eps, ||y(t)|| must stay below the Lemma 2 bound
	// in (almost) all runs; with a = 1 and n = 32, failures are allowed on
	// at most ~5/n of runs — with our slack there should be none.
	const n = 32
	const steps = 2000
	const eps = 1e-5
	const a = 1.0
	failures := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		s := newCentered(t, n, uint64(300+trial))
		r := rng.New(uint64(400 + trial))
		norm0 := math.Sqrt(s.Norm2())
		noise := func() float64 { return eps * (r.Float64()*2 - 1) * 0.999 }
		for k := 0; k < steps; k++ {
			s.StepPerturbed(r, noise)
		}
		bound := Lemma2Bound(n, steps, a, norm0, eps)
		if math.Sqrt(s.Norm2()) > bound {
			failures++
		}
	}
	maxFailures := int(math.Ceil(Lemma2FailureProb(n, a) * trials))
	if failures > maxFailures {
		t.Fatalf("%d/%d runs exceeded Lemma 2 bound (budget %d)", failures, trials, maxFailures)
	}
}

func TestLemma2NoiseFloor(t *testing.T) {
	// Under sustained noise the norm should not decay to zero: it settles
	// at a floor related to the noise scale — but always below the bound.
	const n = 16
	const eps = 1e-3
	s := newCentered(t, n, 48)
	r := rng.New(49)
	noise := func() float64 { return eps * (r.Float64()*2 - 1) * 0.999 }
	for k := 0; k < 50000; k++ {
		s.StepPerturbed(r, noise)
	}
	norm := math.Sqrt(s.Norm2())
	if norm == 0 {
		t.Fatal("norm decayed to exactly zero despite noise")
	}
	bound := Lemma2Bound(n, 50000, 1.0, 1.0, eps)
	if norm > bound {
		t.Fatalf("norm %v above asymptotic Lemma 2 bound %v", norm, bound)
	}
}

func TestTailBound(t *testing.T) {
	if got := TailBound(32, 0, 0.5); got != 1 {
		t.Fatalf("tail bound should clamp to 1, got %v", got)
	}
	// Large t: bound decays below 1.
	b := TailBound(32, 1000, 0.5)
	if b >= 1 || b <= 0 {
		t.Fatalf("tail bound at t=1000: %v", b)
	}
	// Tail bound is ε^{-2}(1-1/2n)^t exactly when below 1.
	want := math.Pow(Lemma1Rate(32), 1000) / 0.25
	if math.Abs(b-want) > 1e-15 {
		t.Fatalf("tail bound = %v, want %v", b, want)
	}
}

func TestTailBoundEmpirical(t *testing.T) {
	// Empirical exceedance frequency must not exceed the Markov bound
	// materially.
	const n = 16
	const steps = 800
	const eps = 0.3
	const trials = 400
	exceed := 0
	for trial := 0; trial < trials; trial++ {
		s := newCentered(t, n, uint64(500+trial))
		r := rng.New(uint64(600 + trial))
		norm0 := math.Sqrt(s.Norm2())
		for k := 0; k < steps; k++ {
			s.Step(r)
		}
		if math.Sqrt(s.Norm2()) > eps*norm0 {
			exceed++
		}
	}
	bound := TailBound(n, steps, eps)
	freq := float64(exceed) / trials
	if freq > bound+0.05 {
		t.Fatalf("empirical tail %v above Markov bound %v", freq, bound)
	}
}

func TestStepsToContract(t *testing.T) {
	if got := StepsToContract(32, 1.0); got != 0 {
		t.Fatalf("target 1.0: %d steps", got)
	}
	tSteps := StepsToContract(32, 1e-4)
	if Lemma1Bound(32, tSteps, 1.0) > 1e-4 {
		t.Fatalf("bound after %d steps is %v > 1e-4", tSteps, Lemma1Bound(32, tSteps, 1.0))
	}
	if tSteps > 0 && Lemma1Bound(32, tSteps-1, 1.0) <= 1e-4 {
		t.Fatalf("StepsToContract not minimal: %d", tSteps)
	}
}

func TestLemma2FailureProb(t *testing.T) {
	if got := Lemma2FailureProb(5, 1); got != 1 {
		t.Fatalf("5/n with n=5: %v", got)
	}
	if got := Lemma2FailureProb(100, 2); math.Abs(got-5e-4) > 1e-15 {
		t.Fatalf("5/n² with n=100: %v", got)
	}
}

func TestQuickSumPreservation(t *testing.T) {
	f := func(seed uint64, nRaw uint8, stepsRaw uint8) bool {
		n := int(nRaw%30) + 2
		steps := int(stepsRaw) + 1
		r := rng.New(seed)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()*10 - 5
		}
		s, err := NewSystem(vals, UniformAlphas(n, r))
		if err != nil {
			return false
		}
		before := s.Sum()
		for k := 0; k < steps; k++ {
			s.Step(r)
		}
		return math.Abs(s.Sum()-before) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCenteredNormNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.IntN(20) + 2
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		s, err := NewSystem(vals, UniformAlphas(n, r))
		if err != nil {
			return false
		}
		for k := 0; k < 50; k++ {
			s.Step(r)
			if s.CenteredNorm2() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
