// Package kernel implements the complete-graph averaging dynamics analysed
// in the paper's appendix (Lemmas 1 and 2) together with their analytic
// bounds.
//
// The update: when node i's clock ticks it picks j uniformly from the
// other nodes and the pair applies the sum-preserving affine update
//
//	x_i(t) = (1 − α_i)·x_i(t−1) + α_j·x_j(t−1)
//	x_j(t) = α_i·x_i(t−1) + (1 − α_j)·x_j(t−1)
//
// with per-node coefficients α_i. For α_i ∈ (1/3, 1/2), Lemma 1 gives
// E‖x(t)‖² < (1 − 1/2n)^t · ‖x(0)‖² for centered x. In the paper these
// dynamics arise for the vector of *square sums* z_i = Σ_{s∈□_i} x_s,
// where α_i = (2/5)·E#[□] / #(□_i); the physical node update uses the
// non-convex affine coefficient (2/5)·E#[□] = Ω(sqrt(n)).
//
// Lemma 2 adds an adversarial perturbation n(t) (|n(t)| < ε) injected
// antisymmetrically into each exchange, modelling the residual error of
// the imperfect intra-square averaging; the contraction survives with an
// additive O(n^{3/2}·ε) floor.
package kernel

import (
	"fmt"
	"math"

	"geogossip/internal/rng"
)

// AlphaMin and AlphaMax delimit the coefficient band (1/3, 1/2) required
// by Lemma 1.
const (
	AlphaMin = 1.0 / 3.0
	AlphaMax = 1.0 / 2.0
)

// System is the state of the pairwise-exchange dynamics on the complete
// graph K_n.
type System struct {
	values []float64
	alphas []float64
	steps  int
}

// NewSystem builds a system over the given initial values and per-node
// coefficients. len(alphas) must equal len(values) and be at least 2.
// Coefficients outside (1/3, 1/2) are accepted — experiments probe the
// unstable regime deliberately — but ValidateAlphas can be used to check.
func NewSystem(values, alphas []float64) (*System, error) {
	if len(values) != len(alphas) {
		return nil, fmt.Errorf("kernel: %d values but %d alphas", len(values), len(alphas))
	}
	if len(values) < 2 {
		return nil, fmt.Errorf("kernel: need at least 2 nodes, got %d", len(values))
	}
	s := &System{
		values: append([]float64(nil), values...),
		alphas: append([]float64(nil), alphas...),
	}
	return s, nil
}

// ValidateAlphas reports an error if any coefficient lies outside the open
// interval (1/3, 1/2) required by Lemma 1.
func ValidateAlphas(alphas []float64) error {
	for i, a := range alphas {
		if a <= AlphaMin || a >= AlphaMax {
			return fmt.Errorf("kernel: alpha[%d] = %v outside (1/3, 1/2)", i, a)
		}
	}
	return nil
}

// UniformAlphas returns n coefficients drawn uniformly from (1/3, 1/2).
func UniformAlphas(n int, r *rng.RNG) []float64 {
	alphas := make([]float64, n)
	for i := range alphas {
		alphas[i] = r.Range(AlphaMin+1e-9, AlphaMax)
	}
	return alphas
}

// N returns the number of nodes.
func (s *System) N() int { return len(s.values) }

// Steps returns the number of exchanges performed so far.
func (s *System) Steps() int { return s.steps }

// Values returns a copy of the current state.
func (s *System) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Value returns node i's current value.
func (s *System) Value(i int) float64 { return s.values[i] }

// Sum returns the (invariant) total of the values.
func (s *System) Sum() float64 {
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum
}

// Norm2 returns ‖x‖² (the raw squared Euclidean norm; Lemma 1 assumes
// the values are centered, which Center arranges).
func (s *System) Norm2() float64 {
	var sum float64
	for _, v := range s.values {
		sum += v * v
	}
	return sum
}

// CenteredNorm2 returns ‖x − x̄·1‖², the squared deviation from the mean.
func (s *System) CenteredNorm2() float64 {
	mean := s.Sum() / float64(len(s.values))
	var sum float64
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return sum
}

// Center subtracts the mean from every value, as the paper's WLOG
// normalization Σx_i = 0.
func (s *System) Center() {
	mean := s.Sum() / float64(len(s.values))
	for i := range s.values {
		s.values[i] -= mean
	}
}

// StepPair applies one exchange between nodes i (the clock owner) and j.
// It panics if i == j or either index is out of range, which indicates a
// caller bug.
func (s *System) StepPair(i, j int) {
	if i == j {
		panic("kernel: StepPair with i == j")
	}
	xi, xj := s.values[i], s.values[j]
	ai, aj := s.alphas[i], s.alphas[j]
	s.values[i] = (1-ai)*xi + aj*xj
	s.values[j] = ai*xi + (1-aj)*xj
	s.steps++
}

// Step performs one clock tick: a uniform node i exchanges with a uniform
// other node j.
func (s *System) Step(r *rng.RNG) (i, j int) {
	i = r.IntN(len(s.values))
	j = r.IntNExcept(len(s.values), i)
	s.StepPair(i, j)
	return i, j
}

// StepPairPerturbed applies the Lemma 2 update: the exchange between i and
// j followed by the antisymmetric perturbation +noise on i and −noise on j.
func (s *System) StepPairPerturbed(i, j int, noise float64) {
	s.StepPair(i, j)
	s.values[i] += noise
	s.values[j] -= noise
}

// StepPerturbed performs one perturbed clock tick with noise drawn from
// noiseFn (the caller guarantees |noise| < ε when comparing to the Lemma 2
// bound).
func (s *System) StepPerturbed(r *rng.RNG, noiseFn func() float64) (i, j int) {
	i = r.IntN(len(s.values))
	j = r.IntNExcept(len(s.values), i)
	s.StepPairPerturbed(i, j, noiseFn())
	return i, j
}

// Lemma1Rate returns the per-step contraction factor (1 − 1/2n) from
// Lemma 1.
func Lemma1Rate(n int) float64 {
	return 1 - 1/(2*float64(n))
}

// Lemma1Bound returns the Lemma 1 upper bound on E‖x(t)‖²:
// (1 − 1/2n)^t · norm0Sq.
func Lemma1Bound(n, t int, norm0Sq float64) float64 {
	return math.Pow(Lemma1Rate(n), float64(t)) * norm0Sq
}

// TailBound returns the Corollary 1/2 Markov bound on
// P(‖x(t)‖ > ε‖x(0)‖): ε^{-2}·(1 − 1/2n)^t, clamped to 1.
func TailBound(n, t int, eps float64) float64 {
	b := math.Pow(Lemma1Rate(n), float64(t)) / (eps * eps)
	if b > 1 {
		return 1
	}
	return b
}

// Lemma2Bound returns the Lemma 2 high-probability bound on ‖y(t)‖:
//
//	n^{a/2} · ( (1 − 1/2n)^{t/2}·‖y(0)‖ + 8·sqrt(2)·n^{3/2}·ε )
//
// valid with probability at least 1 − 5/n^a when every perturbation
// satisfies |n(t)| < ε.
func Lemma2Bound(n, t int, a, norm0, eps float64) float64 {
	nf := float64(n)
	decay := math.Pow(Lemma1Rate(n), float64(t)/2) * norm0
	floor := 8 * math.Sqrt2 * math.Pow(nf, 1.5) * eps
	return math.Pow(nf, a/2) * (decay + floor)
}

// Lemma2FailureProb returns 5/n^a, the probability budget outside which
// the Lemma 2 bound may fail.
func Lemma2FailureProb(n int, a float64) float64 {
	return 5 / math.Pow(float64(n), a)
}

// StepsToContract returns the number of exchanges after which the Lemma 1
// bound guarantees E‖x(t)‖² ≤ target·‖x(0)‖², i.e. the smallest t with
// (1 − 1/2n)^t ≤ target. target must be in (0, 1].
func StepsToContract(n int, target float64) int {
	if target >= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(target) / math.Log(Lemma1Rate(n))))
}
