package experiments

import (
	"fmt"
	"math"

	"geogossip/internal/core"
	"geogossip/internal/geo"
	"geogossip/internal/gossip"
	"geogossip/internal/hier"
	"geogossip/internal/metrics"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/stats"
	"geogossip/internal/table"
)

// curveXY extracts a (transmissions, error) series from a run for
// plotting, down-sampled to a plottable size.
func curveXY(res *metrics.Result) (xs, ys []float64) {
	c := res.Curve.Downsample(120)
	for _, s := range c.Samples {
		xs = append(xs, float64(s.Transmissions))
		ys = append(ys, s.Err)
	}
	return xs, ys
}

// e1Target is the relative accuracy used by the head-to-head scaling
// comparison.
const e1Target = 1e-2

// e1Field returns the low-frequency "worst-case" initial field (value =
// 10·x + sin(7y) at each sensor's position): global information must
// physically cross the square, which is the regime all three cost bounds
// address. An iid field lets fast local mixing do most of the work and
// understates every exponent.
func e1Field(g interface {
	N() int
	Point(int32) geo.Point
}) []float64 {
	x := make([]float64, g.N())
	for i := int32(0); int(i) < g.N(); i++ {
		p := g.Point(i)
		x[i] = 10*p.X + math.Sin(7*p.Y)
	}
	return x
}

// RunE1Scaling regenerates Table 1, the paper's headline comparison:
// transmissions to reach a fixed relative accuracy for nearest-neighbour
// gossip (Õ(n²)), geographic gossip (Õ(n^1.5)) and the hierarchical
// affine algorithm (n^{1+o(1)} = n·exp(O(log log n)²)).
//
// What is honestly checkable at laptop scale (see EXPERIMENTS.md):
// boyd's ~2 and geographic's ~1.5 exponents appear directly. The affine
// algorithm's n^{o(1)} factor is exp(O(log log n)²) — numerically large
// and *slowly* varying, so over any simulable range the overall fitted
// slope conflates the linear core with discrete polylog jumps at the
// ℓ = Θ(log log n) hierarchy-depth transitions. The reproduction
// therefore (a) fits within fixed-depth classes, where the ~1 slope is
// visible, and (b) fits the paper's own cost form n·exp(c·(ln ln n)²)
// across all points.
func RunE1Scaling(cfg Config) (*Report, error) {
	rep := &Report{ID: "E1", Title: "Table 1 — transmission scaling of the three algorithms"}
	ns := []int{512, 1024, 2048, 4096, 8192}
	// No affine-only extension beyond 8192: at n=16384 the branching
	// schedule jumps to (144, 16) and the round product K₀·K₁ grows by
	// another ~50x — the n^{o(1)} polylog factor made concrete. The
	// deepest depth class keeps >= 3 points without it.
	var affineExt []int
	seeds := 3
	if cfg.Quick {
		ns = []int{256, 512, 1024}
		seeds = 1
	}
	algos := []string{"boyd", "geographic", "affine"}
	cost := map[string][]float64{}
	var ells []int
	var farExchanges []float64
	tb := table.New(fmt.Sprintf("Transmissions to relative error %.0e on the worst-case smooth field (geometric mean over %d seeds)", e1Target, seeds),
		"n", "hierarchy ell", "boyd", "geographic", "affine", "affine far-exchanges")
	runAffine := func(n int, seed uint64) (txs float64, far uint64, ell int, err error) {
		g, err := connectedGraph(n, 1.5, seed)
		if err != nil {
			return 0, 0, 0, err
		}
		h, err := hier.Build(g.Points(), hier.Config{})
		if err != nil {
			return 0, 0, 0, err
		}
		xa := e1Field(g)
		ra, err := core.RunRecursive(g, h, xa, core.RecursiveOptions{Eps: e1Target}, rng.New(seed+300))
		if err != nil {
			return 0, 0, 0, err
		}
		if !ra.Converged {
			return 0, 0, 0, fmt.Errorf("E1: affine n=%d seed=%d did not converge", n, seed)
		}
		return float64(ra.Transmissions), ra.FarExchanges, h.Ell, nil
	}
	for _, n := range ns {
		perAlgo := map[string][]float64{}
		var farEx uint64
		var ell int
		for s := 0; s < seeds; s++ {
			seed := cfg.seed() + uint64(s)*7907
			g, err := connectedGraph(n, 1.5, seed)
			if err != nil {
				return nil, err
			}
			x0 := e1Field(g)
			stop := sim.StopRule{TargetErr: e1Target, MaxTicks: 400_000_000}

			xb := append([]float64(nil), x0...)
			rb, err := gossip.RunBoyd(g, xb, gossip.Options{Stop: stop}, rng.New(seed+100))
			if err != nil {
				return nil, err
			}
			xg := append([]float64(nil), x0...)
			rg, err := gossip.RunGeographic(g, xg, gossip.GeoOptions{Options: gossip.Options{Stop: stop}}, rng.New(seed+200))
			if err != nil {
				return nil, err
			}
			if !rb.Converged || !rg.Converged {
				return nil, fmt.Errorf("E1: n=%d seed=%d baseline did not converge (boyd=%v geo=%v)",
					n, seed, rb.Converged, rg.Converged)
			}
			txA, far, e, err := runAffine(n, seed)
			if err != nil {
				return nil, err
			}
			perAlgo["boyd"] = append(perAlgo["boyd"], float64(rb.Transmissions))
			perAlgo["geographic"] = append(perAlgo["geographic"], float64(rg.Transmissions))
			perAlgo["affine"] = append(perAlgo["affine"], txA)
			farEx = far
			ell = e
		}
		ells = append(ells, ell)
		farExchanges = append(farExchanges, float64(farEx))
		row := []string{fmtF(float64(n)), fmtF(float64(ell))}
		for _, a := range algos {
			gm := stats.GeometricMean(perAlgo[a])
			cost[a] = append(cost[a], gm)
			row = append(row, fmtF(gm))
		}
		row = append(row, fmtU(farEx))
		tb.AddRow(row...)
	}
	// Affine-only extension points (single seed) for the within-depth fit.
	affNs := append([]int(nil), ns...)
	affCost := append([]float64(nil), cost["affine"]...)
	affElls := append([]int(nil), ells...)
	affFar := append([]float64(nil), farExchanges...)
	for _, n := range affineExt {
		txA, far, ell, err := runAffine(n, cfg.seed())
		if err != nil {
			return nil, err
		}
		affNs = append(affNs, n)
		affCost = append(affCost, txA)
		affElls = append(affElls, ell)
		affFar = append(affFar, float64(far))
		tb.AddRow(fmtF(float64(n)), fmtF(float64(ell)), "-", "-", fmtF(txA), fmtF(float64(far)))
	}
	rep.addTable(tb)

	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	fit := map[string]float64{}
	fitTable := table.New("Fitted power laws over the full range (transmissions ~ C·n^p)",
		"algorithm", "exponent p", "constant C", "R2")
	for _, a := range algos {
		p, c, r2, err := stats.PowerLawFit(xs, cost[a])
		if err != nil {
			return nil, err
		}
		fit[a] = p
		fitTable.AddRowf(a, p, c, r2)
	}
	rep.addTable(fitTable)

	// Within-depth fits for the affine algorithm: the linear core of
	// n^{1+o(1)} without the depth-transition jumps.
	depthTable := table.New("Affine within-depth power laws (fixed ell)", "ell", "points", "exponent", "far-exchange exponent")
	type depthFit struct {
		points  int
		slope   float64
		farFit  float64
		present bool
	}
	deepest := depthFit{}
	for ell := 1; ell <= 8; ell++ {
		var dxs, dys, dfar []float64
		for i, n := range affNs {
			if affElls[i] == ell {
				dxs = append(dxs, float64(n))
				dys = append(dys, affCost[i])
				dfar = append(dfar, affFar[i])
			}
		}
		if len(dxs) < 2 {
			continue
		}
		p, _, _, err := stats.PowerLawFit(dxs, dys)
		if err != nil {
			return nil, err
		}
		farP := math.NaN()
		if dfar[0] > 0 {
			if fp, _, _, err := stats.PowerLawFit(dxs, dfar); err == nil {
				farP = fp
			}
		}
		depthTable.AddRowf(ell, len(dxs), p, farP)
		deepest = depthFit{points: len(dxs), slope: p, farFit: farP, present: true}
	}
	rep.addTable(depthTable)

	// The paper's own cost form: tx = C·n·exp(c·(ln ln n)²).
	var uxs, vys []float64
	for i, n := range affNs {
		u := math.Log(math.Log(float64(n)))
		uxs = append(uxs, u*u)
		vys = append(vys, math.Log(affCost[i]/float64(n)))
	}
	modelFit, err := stats.OLS(uxs, vys)
	if err != nil {
		return nil, err
	}
	crossover := e1Crossover(modelFit, cost["geographic"], xs)

	plot := &table.Plot{
		Title:  "Table 1 as a figure: transmissions vs n (log-log)",
		XLabel: "n",
		YLabel: "transmissions",
		LogX:   true,
		LogY:   true,
	}
	for _, a := range algos {
		plot.Add(a, xs, cost[a])
	}
	rep.addPlot(plot)

	rep.check("boyd near quadratic", fit["boyd"] > 1.6 && fit["boyd"] < 2.4,
		"fitted exponent %v (paper: ~2 up to polylogs)", fmtF(fit["boyd"]))
	rep.check("geographic near n^1.5", fit["geographic"] > 1.15 && fit["geographic"] < 1.8,
		"fitted exponent %v (paper: ~1.5 up to polylogs)", fmtF(fit["geographic"]))
	rep.check("geographic beats boyd on exponent", fit["geographic"] < fit["boyd"],
		"geographic %v < boyd %v (the sqrt(n) speedup of [5])", fmtF(fit["geographic"]), fmtF(fit["boyd"]))
	if deepest.present {
		lo, hi := 0.5, 1.7
		if deepest.points >= 3 {
			lo, hi = 0.7, 1.45
		}
		rep.check("affine near-linear within fixed hierarchy depth", deepest.slope > lo && deepest.slope < hi,
			"within the deepest depth class (%d points) the fitted exponent is %v — the linear core of "+
				"n^{1+o(1)}; the overall fit %v conflates it with discrete polylog jumps at depth transitions",
			deepest.points, fmtF(deepest.slope), fmtF(fit["affine"]))
		if deepest.points >= 3 && !math.IsNaN(deepest.farFit) {
			rep.check("affine long-range rounds sublinear within fixed depth", deepest.farFit < 1,
				"far-exchange count exponent %v within the deepest depth class (Lemma 1's O(m·log m) rounds)",
				fmtF(deepest.farFit))
		}
	}
	rep.check("affine cost consistent with the paper's n·exp(c·(ln ln n)²) form", modelFit.Slope > 0,
		"fitted c=%v (R2=%v); extrapolated crossover vs the fitted geographic power law: %s — "+
			"the o(1) term decays too slowly for the asymptotic ordering to appear at simulable n",
		fmtF(modelFit.Slope), fmtF(modelFit.R2), crossover)
	return rep, nil
}

// e1Crossover numerically extrapolates where the fitted affine model
// n·exp(intercept + slope·(ln ln n)²) would drop below the fitted
// geographic power law, scanning up to n = 1e30.
func e1Crossover(model stats.Fit, geoCost, xs []float64) string {
	geoP, geoC, _, err := stats.PowerLawFit(xs, geoCost)
	if err != nil {
		return "unavailable"
	}
	for exp10 := 3.0; exp10 <= 30; exp10 += 0.25 {
		n := math.Pow(10, exp10)
		u := math.Log(math.Log(n))
		affine := math.Log(n) + model.Intercept + model.Slope*u*u
		geo := math.Log(geoC) + geoP*math.Log(n)
		if affine < geo {
			return fmt.Sprintf("n ~ 1e%.0f", exp10)
		}
	}
	return "none below n=1e30 with these fitted constants"
}

// RunE9EpsScaling regenerates Figure 7: the affine algorithm's
// transmission count as the target accuracy ε shrinks — the paper's
// n·exp(O(log log n · log log(n/ε))) dependence predicts polylog(1/ε)
// growth (degree ≤ ℓ).
func RunE9EpsScaling(cfg Config) (*Report, error) {
	rep := &Report{ID: "E9", Title: "Figure 7 — transmissions vs target accuracy"}
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	epss := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
	g, err := connectedGraph(n, 1.5, cfg.seed())
	if err != nil {
		return nil, err
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		return nil, err
	}
	x0 := gaussianValues(n, cfg.seed()+13)
	tb := table.New(fmt.Sprintf("Affine-hierarchical cost vs target accuracy (n=%d, ell=%d)", n, h.Ell),
		"eps", "transmissions", "far exchanges", "converged")
	var lx, ly []float64
	prev := uint64(0)
	monotone := true
	for _, eps := range epss {
		x := append([]float64(nil), x0...)
		res, err := core.RunRecursive(g, h, x, core.RecursiveOptions{Eps: eps}, rng.New(cfg.seed()+77))
		if err != nil {
			return nil, err
		}
		tb.AddRowf(eps, res.Transmissions, res.FarExchanges, res.Converged)
		if res.Transmissions < prev {
			monotone = false
		}
		prev = res.Transmissions
		lx = append(lx, math.Log(1/eps))
		ly = append(ly, float64(res.Transmissions))
	}
	rep.addTable(tb)
	plot := &table.Plot{
		Title:  "Figure 7: transmissions vs ln(1/eps) (log-log)",
		XLabel: "ln(1/eps)",
		YLabel: "transmissions",
		LogX:   true,
		LogY:   true,
	}
	plot.Add("affine", lx, ly)
	rep.addPlot(plot)
	p, _, r2, err := stats.PowerLawFit(lx, ly)
	if err != nil {
		return nil, err
	}
	rep.check("cost grows polylogarithmically in 1/eps", p < float64(h.Ell)+1.5,
		"transmissions ~ ln(1/eps)^%v (R2=%v); polynomial degree bounded by the ell=%d level count",
		fmtF(p), fmtF(r2), h.Ell)
	rep.check("cost monotone in accuracy", monotone, "transmissions nondecreasing as eps shrinks")
	return rep, nil
}

// RunE11Stability regenerates Figure 8: a sweep of the affine multiplier
// β (update coefficient β·E#). The analysis needs the induced square-sum
// coefficients in (1/3, 1/2) — β = 2/5 centres the band; small β slows
// convergence, β ≳ 1 leaves the contractive regime entirely.
func RunE11Stability(cfg Config) (*Report, error) {
	rep := &Report{ID: "E11", Title: "Figure 8 — affine-coefficient stability sweep"}
	n := 1024
	if cfg.Quick {
		n = 512
	}
	betas := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.2}
	g, err := connectedGraph(n, 1.5, cfg.seed())
	if err != nil {
		return nil, err
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		return nil, err
	}
	x0 := gaussianValues(n, cfg.seed()+13)
	tb := table.New(fmt.Sprintf("Affine multiplier sweep (n=%d, eps=1e-3, paper value beta=0.4)", n),
		"beta", "converged", "far exchanges", "transmissions", "incomplete squares", "final err")
	var okBetas []float64
	var bxs, brounds []float64
	bestBeta, bestRounds := 0.0, math.Inf(1)
	for _, beta := range betas {
		x := append([]float64(nil), x0...)
		res, err := core.RunRecursive(g, h, x, core.RecursiveOptions{Eps: 1e-3, Beta: beta}, rng.New(cfg.seed()+88))
		if err != nil {
			return nil, err
		}
		tb.AddRowf(beta, res.Converged, res.FarExchanges, res.Transmissions, res.IncompleteSquares, res.FinalErr)
		if res.Converged && res.IncompleteSquares == 0 {
			okBetas = append(okBetas, beta)
			if float64(res.FarExchanges) < bestRounds {
				bestRounds = float64(res.FarExchanges)
				bestBeta = beta
			}
		}
		bxs = append(bxs, beta)
		brounds = append(brounds, float64(res.FarExchanges))
	}
	rep.addTable(tb)
	plot := &table.Plot{
		Title:  "Figure 8: far exchanges vs beta (log y)",
		XLabel: "beta",
		YLabel: "far exchanges",
		LogY:   true,
	}
	plot.Add("far exchanges", bxs, brounds)
	rep.addPlot(plot)
	inBand := func(b float64) bool { return b >= 0.3 && b <= 0.6 }
	bandOK := true
	for _, b := range betas {
		if inBand(b) && !containsF(okBetas, b) {
			bandOK = false
		}
	}
	rep.check("paper's band converges cleanly", bandOK,
		"all beta in [0.3, 0.6] converge without incomplete squares; clean betas: %v", okBetas)
	rep.check("extreme beta degrades", !containsF(okBetas, 1.2),
		"beta=1.2 (alpha ~> 1) fails to converge cleanly")
	rep.check("optimum near the paper's 2/5", bestBeta >= 0.3 && bestBeta <= 0.7,
		"fewest far exchanges at beta=%v", fmtF(bestBeta))
	return rep, nil
}

func containsF(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// RunE12Ablation regenerates Table 4: the two design choices —
// hierarchy (multi-level vs flat single-level partition) and affine vs
// convex long-range updates — ablated independently.
//
// The deep hierarchy is forced to ℓ=3 via a small leaf target so the
// shapes genuinely differ at this n. The convex ablation runs only in
// the flat shape: with convex updates every square-sum exchange moves
// only O(1/E#) of a square's mass, so a deep hierarchy multiplies the
// (already ~15x larger) round count by full subtree re-averagings and
// the cell costs billions of transmissions — the observation itself IS
// the ablation result.
func RunE12Ablation(cfg Config) (*Report, error) {
	rep := &Report{ID: "E12", Title: "Table 4 — hierarchy/affine ablation"}
	const n = 1024
	const eps = 1e-2
	g, err := connectedGraph(n, 1.5, cfg.seed())
	if err != nil {
		return nil, err
	}
	hDeep, err := hier.Build(g.Points(), hier.Config{LeafTarget: 8})
	if err != nil {
		return nil, err
	}
	hFlat, err := hier.Build(g.Points(), hier.Config{MaxDepth: 1})
	if err != nil {
		return nil, err
	}
	if hDeep.Ell <= hFlat.Ell {
		return nil, fmt.Errorf("E12: deep hierarchy (ell=%d) not deeper than flat (ell=%d)", hDeep.Ell, hFlat.Ell)
	}
	x0 := gaussianValues(n, cfg.seed()+13)
	type variant struct {
		name   string
		h      *hier.Hierarchy
		convex bool
	}
	variants := []variant{
		{"deep+affine (ell=3)", hDeep, false},
		{"flat+affine (ell=2)", hFlat, false},
		{"flat+convex (ell=2)", hFlat, true},
	}
	tb := table.New(fmt.Sprintf("Ablation at n=%d, eps=%.0e", n, eps),
		"variant", "converged", "far exchanges", "transmissions", "final err")
	results := map[string]*core.Result{}
	for _, v := range variants {
		x := append([]float64(nil), x0...)
		res, err := core.RunRecursive(g, v.h, x, core.RecursiveOptions{
			Eps:    eps,
			Convex: v.convex,
		}, rng.New(cfg.seed()+99))
		if err != nil {
			return nil, err
		}
		results[v.name] = res
		tb.AddRowf(v.name, res.Converged, res.FarExchanges, res.Transmissions, res.FinalErr)
	}
	rep.addTable(tb)
	affFlat := results["flat+affine (ell=2)"]
	affDeep := results["deep+affine (ell=3)"]
	convFlat := results["flat+convex (ell=2)"]
	rep.check("affine needs fewer long-range rounds than convex",
		affFlat.FarExchanges < convFlat.FarExchanges,
		"far exchanges at the same shape: affine %d vs convex %d — the paper's Omega(sqrt(n)) "+
			"coefficients move whole square sums per exchange",
		affFlat.FarExchanges, convFlat.FarExchanges)
	rep.check("affine variants converge at both depths", affDeep.Converged && affFlat.Converged,
		"deep err %v (tx %d), flat err %v (tx %d)",
		fmtF(affDeep.FinalErr), affDeep.Transmissions, fmtF(affFlat.FinalErr), affFlat.Transmissions)
	rep.check("extra depth costs polylog factors at laptop n", affDeep.Transmissions > affFlat.Transmissions,
		"deep %d vs flat %d transmissions — the hierarchy's payoff is asymptotic (see E1, EXPERIMENTS.md)",
		affDeep.Transmissions, affFlat.Transmissions)
	return rep, nil
}

// RunE13Control regenerates Table 5: the asynchronous protocol's traffic
// breakdown (§6's claim that control traffic is affordable and that
// throttling serializes rounds).
func RunE13Control(cfg Config) (*Report, error) {
	rep := &Report{ID: "E13", Title: "Table 5 — async control traffic and throttling"}
	n := 1024
	maxTicks := uint64(60_000_000)
	if cfg.Quick {
		n = 512
		maxTicks = 25_000_000
	}
	g, err := connectedGraph(n, 1.5, cfg.seed())
	if err != nil {
		return nil, err
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		return nil, err
	}
	x0 := gaussianValues(n, cfg.seed()+13)
	throttles := []float64{2, 8, 32}
	tb := table.New(fmt.Sprintf("Async protocol at n=%d (target err 2e-2)", n),
		"throttle", "converged", "ticks", "near", "far", "control", "flood", "overlap fars", "overlap rate")
	overlapRates := make([]float64, 0, len(throttles))
	convergedHigh := false
	var shareHigh float64
	for _, th := range throttles {
		x := append([]float64(nil), x0...)
		res, err := core.RunAsync(g, h, x, core.AsyncOptions{
			Eps:          2e-2,
			Throttle:     th,
			RoundsFactor: 2,
			Stop:         sim.StopRule{TargetErr: 2e-2, MaxTicks: maxTicks},
		}, rng.New(cfg.seed()+111))
		if err != nil {
			return nil, err
		}
		bd := res.TransmissionsByCategory
		rate := 0.0
		if res.FarExchanges > 0 {
			rate = float64(res.OverlapFars) / float64(res.FarExchanges)
		}
		overlapRates = append(overlapRates, rate)
		tb.AddRowf(th, res.Converged, res.Ticks, bd["near"], bd["far"], bd["control"], bd["flood"],
			res.OverlapFars, rate)
		if th == throttles[len(throttles)-1] {
			convergedHigh = res.Converged
			total := float64(res.Transmissions)
			if total > 0 {
				shareHigh = float64(bd["control"]+bd["flood"]) / total
			}
		}
	}
	rep.addTable(tb)
	rep.check("higher throttle reduces round overlap",
		overlapRates[len(overlapRates)-1] < overlapRates[0],
		"overlap rate %v at throttle %v vs %v at throttle %v — the knob behind the paper's n^{-a} damping",
		fmtF(overlapRates[len(overlapRates)-1]), fmtF(throttles[len(throttles)-1]),
		fmtF(overlapRates[0]), fmtF(throttles[0]))
	rep.check("async protocol converges once rounds are serialized", convergedHigh,
		"throttle %v reaches the 2e-2 target within %d ticks; low throttles stall at a Lemma 2-style "+
			"noise floor, which is why the paper scales the damping with n^a",
		fmtF(throttles[len(throttles)-1]), maxTicks)
	rep.check("control traffic is not dominant", shareHigh < 0.6,
		"activation/deactivation (control+flood) share of transmissions: %v", fmtF(shareHigh))
	return rep, nil
}

// RunE14Convergence regenerates Figure 9: relative error vs transmissions
// for the three algorithms on the same instance — the standard gossip
// "money plot".
func RunE14Convergence(cfg Config) (*Report, error) {
	rep := &Report{ID: "E14", Title: "Figure 9 — convergence trajectories at fixed n"}
	n := 2048
	if cfg.Quick {
		n = 512
	}
	const target = 1e-2
	g, err := connectedGraph(n, 1.5, cfg.seed())
	if err != nil {
		return nil, err
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		return nil, err
	}
	x0 := gaussianValues(n, cfg.seed()+13)
	stop := sim.StopRule{TargetErr: target, MaxTicks: 300_000_000}

	xb := append([]float64(nil), x0...)
	rb, err := gossip.RunBoyd(g, xb, gossip.Options{Stop: stop}, rng.New(cfg.seed()+100))
	if err != nil {
		return nil, err
	}
	xg := append([]float64(nil), x0...)
	rg, err := gossip.RunGeographic(g, xg, gossip.GeoOptions{Options: gossip.Options{Stop: stop}}, rng.New(cfg.seed()+200))
	if err != nil {
		return nil, err
	}
	xa := append([]float64(nil), x0...)
	ra, err := core.RunRecursive(g, h, xa, core.RecursiveOptions{Eps: target, RecordEvery: 4}, rng.New(cfg.seed()+300))
	if err != nil {
		return nil, err
	}

	plot := &table.Plot{
		Title:  fmt.Sprintf("Figure 9: relative error vs transmissions, n=%d (log-log)", n),
		XLabel: "transmissions",
		YLabel: "relative l2 error",
		LogX:   true,
		LogY:   true,
		Height: 24,
	}
	tb := table.New(fmt.Sprintf("Transmissions to relative error %.0e at n=%d", target, n),
		"algorithm", "transmissions", "converged")
	for _, res := range []*metrics.Result{rb, rg, ra.Result} {
		tb.AddRowf(res.Algorithm, res.Transmissions, res.Converged)
		xs, ys := curveXY(res)
		plot.Add(res.Algorithm, xs, ys)
	}
	rep.addTable(tb)
	rep.addPlot(plot)
	rep.check("all three algorithms reach the target", rb.Converged && rg.Converged && ra.Converged,
		"boyd %d, geographic %d, affine %d transmissions",
		rb.Transmissions, rg.Transmissions, ra.Transmissions)
	rep.check("curves recorded", rb.Curve.Len() > 2 && rg.Curve.Len() > 2 && ra.Curve.Len() > 2,
		"samples: boyd %d, geographic %d, affine %d", rb.Curve.Len(), rg.Curve.Len(), ra.Curve.Len())
	return rep, nil
}
