package experiments

import (
	"fmt"
	"math"

	"geogossip/internal/gossip"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/stats"
	"geogossip/internal/table"
)

// RunE5Connectivity regenerates Figure 4: the empirical probability that
// G(n, c·sqrt(log n/n)) is connected as a function of the radius
// multiplier c — the Gupta–Kumar threshold the whole construction relies
// on.
func RunE5Connectivity(cfg Config) (*Report, error) {
	rep := &Report{ID: "E5", Title: "Figure 4 — connectivity threshold of G(n, r)"}
	ns := []int{256, 1024, 4096}
	trials := 40
	if cfg.Quick {
		ns = []int{256, 1024}
		trials = 12
	}
	cs := []float64{0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5}
	tb := table.New("P(connected), "+fmtF(float64(trials))+" instances per cell",
		append([]string{"c \\ n"}, intHeaders(ns)...)...)
	plot := &table.Plot{
		Title:  "Figure 4: P(G(n, c·sqrt(log n/n)) connected) vs c",
		XLabel: "radius multiplier c",
		YLabel: "P(connected)",
	}
	probs := make(map[int][]float64)
	for _, c := range cs {
		row := []string{fmtF(c)}
		for _, n := range ns {
			connected := 0
			for trial := 0; trial < trials; trial++ {
				g, err := graph.Generate(n, c, rng.New(cfg.seed()+uint64(trial)*31+uint64(n)*17))
				if err != nil {
					return nil, err
				}
				if g.IsConnected() {
					connected++
				}
			}
			p := float64(connected) / float64(trials)
			probs[n] = append(probs[n], p)
			row = append(row, fmtF(p))
		}
		tb.AddRow(row...)
	}
	for _, n := range ns {
		plot.Add(fmt.Sprintf("n=%d", n), cs, probs[n])
	}
	rep.addTable(tb)
	rep.addPlot(plot)
	for _, n := range ns {
		p := probs[n]
		rep.check(fmt.Sprintf("high-c regime connected (n=%d)", n), p[len(p)-1] >= 0.95,
			"P(connected) = %v at c=2.5", p[len(p)-1])
		// Monotone trend: last value must dominate the first.
		rep.check(fmt.Sprintf("threshold behaviour (n=%d)", n), p[len(p)-1] > p[0],
			"P rises from %v (c=0.5) to %v (c=2.5)", p[0], p[len(p)-1])
	}
	// Sharpening with n: below threshold the larger instance should be
	// disconnected at least as often.
	small, large := probs[ns[0]][0], probs[ns[len(ns)-1]][0]
	rep.check("sub-threshold failures grow with n", large <= small+0.05,
		"P(connected|c=0.5): n=%d -> %v, n=%d -> %v", ns[0], small, ns[len(ns)-1], large)
	return rep, nil
}

// RunE6Routing regenerates Figure 5: greedy geographic routing hop counts
// vs n (the O(sqrt(n/log n)) claim inherited from [5]) and the raw greedy
// delivery rate.
func RunE6Routing(cfg Config) (*Report, error) {
	rep := &Report{ID: "E6", Title: "Figure 5 — greedy routing hops and delivery"}
	ns := []int{256, 512, 1024, 2048, 4096, 8192}
	routes := 400
	if cfg.Quick {
		ns = []int{256, 512, 1024, 2048}
		routes = 150
	}
	const c = 1.5
	tb := table.New("Greedy routing at c=1.5, "+fmtF(float64(routes))+" random pairs per n",
		"n", "mean hops", "p95 hops", "theory sqrt(n/log n)", "delivery (no recovery)", "recovered share")
	var xs, meanHops []float64
	minDelivery := 1.0
	for _, n := range ns {
		g, err := connectedGraph(n, c, cfg.seed())
		if err != nil {
			return nil, err
		}
		r := rng.New(cfg.seed() + uint64(n))
		var hops []float64
		delivered, recovered := 0, 0
		for i := 0; i < routes; i++ {
			src := int32(r.IntN(n))
			dst := int32(r.IntN(n))
			if src == dst {
				continue
			}
			raw := routing.GreedyToNode(g, src, dst, routing.RecoveryNone)
			if raw.Delivered {
				delivered++
			}
			rec := routing.GreedyToNode(g, src, dst, routing.RecoveryBFS)
			if rec.Recovered {
				recovered++
			}
			if rec.Delivered {
				hops = append(hops, float64(rec.Hops))
			}
		}
		sum := stats.Summarize(hops)
		delRate := float64(delivered) / float64(routes)
		if delRate < minDelivery {
			minDelivery = delRate
		}
		theory := math.Sqrt(float64(n) / math.Log(float64(n)))
		tb.AddRowf(n, sum.Mean, stats.Quantile(hops, 0.95), theory,
			delRate, float64(recovered)/float64(routes))
		xs = append(xs, float64(n))
		meanHops = append(meanHops, sum.Mean)
	}
	rep.addTable(tb)
	plot := &table.Plot{
		Title:  "Figure 5: mean greedy hops vs n (log-log)",
		XLabel: "n",
		YLabel: "hops",
		LogX:   true,
		LogY:   true,
	}
	plot.Add("mean hops", xs, meanHops)
	rep.addPlot(plot)
	exp, _, r2, err := stats.PowerLawFit(xs, meanHops)
	if err != nil {
		return nil, err
	}
	rep.check("hop growth ~ sqrt(n) up to log factors", exp > 0.3 && exp < 0.7,
		"fitted exponent %v (R2=%v), expected ~0.5", fmtF(exp), fmtF(r2))
	rep.check("greedy delivery rate high at c=1.5", minDelivery >= 0.9,
		"minimum raw greedy delivery rate %v across sizes", fmtF(minDelivery))
	return rep, nil
}

// RunE7Rejection regenerates Figure 6: total-variation distance of the
// long-range partner distribution from uniform, for first-contact
// sampling (no rejection), rejection sampling, and exact uniform node
// sampling.
func RunE7Rejection(cfg Config) (*Report, error) {
	rep := &Report{ID: "E7", Title: "Figure 6 — rejection-sampling uniformity"}
	ns := []int{512, 2048}
	samples := 120000
	if cfg.Quick {
		ns = []int{512}
		samples = 30000
	}
	const c = 1.5
	tb := table.New("TV distance to uniform over "+fmtF(float64(samples))+" samples",
		"n", "first-contact", "rejection (<=10 attempts)", "uniform-node", "mean attempts (rejection)")
	for _, n := range ns {
		g, err := connectedGraph(n, c, cfg.seed())
		if err != nil {
			return nil, err
		}
		measure := func(mode gossip.Sampling, maxAttempts int) (tv float64, meanAttempts float64) {
			ts := gossip.NewTargetSampler(g, mode, maxAttempts)
			r := rng.New(cfg.seed() + 999)
			srcR := rng.New(cfg.seed() + 998)
			counts := make([]int, n)
			totalAttempts := 0
			for i := 0; i < samples; i++ {
				src := int32(srcR.IntN(n))
				target, _, attempts := ts.SampleFrom(src, r)
				counts[target]++
				totalAttempts += attempts
			}
			return stats.TVDistanceUniform(counts), float64(totalAttempts) / float64(samples)
		}
		firstTV, _ := measure(gossip.SamplingRejection, 1)
		rejTV, attempts := measure(gossip.SamplingRejection, 10)
		uniTV, _ := measure(gossip.SamplingUniformNode, 1)
		tb.AddRowf(n, firstTV, rejTV, uniTV, attempts)
		rep.check(fmt.Sprintf("rejection improves uniformity (n=%d)", n), rejTV < firstTV,
			"TV: first-contact %v -> rejection %v (uniform-node reference %v)",
			fmtF(firstTV), fmtF(rejTV), fmtF(uniTV))
		rep.check(fmt.Sprintf("rejection overhead modest (n=%d)", n), attempts <= 4,
			"mean attempts per exchange %v", fmtF(attempts))
	}
	rep.addTable(tb)
	return rep, nil
}

// RunE8Occupancy regenerates Table 2: §3's Chernoff claim that at the
// first partition level every square's occupancy is within 10% of its
// expectation w.h.p. — an asymptotic statement whose trend the table
// traces.
func RunE8Occupancy(cfg Config) (*Report, error) {
	rep := &Report{ID: "E8", Title: "Table 2 — first-level occupancy concentration"}
	ns := []int{1024, 4096, 16384, 65536}
	trials := 60
	if cfg.Quick {
		ns = []int{1024, 4096}
		trials = 20
	}
	tb := table.New("max_i |#(sq_i)/E# - 1| at the first partition level, "+fmtF(float64(trials))+" trials",
		"n", "squares", "E# per square", "mean max-dev", "p95 max-dev", "P(max-dev < 1/10)")
	var meanDevs []float64
	for _, n := range ns {
		var devs []float64
		var nSquares int
		var expected float64
		for trial := 0; trial < trials; trial++ {
			pts := graph.UniformPoints(n, rng.New(cfg.seed()+uint64(trial)*131+uint64(n)))
			h, err := hier.Build(pts, hier.Config{MaxDepth: 1})
			if err != nil {
				return nil, err
			}
			root := h.Root()
			if root.IsLeaf() {
				return nil, fmt.Errorf("experiments: n=%d produced no first level", n)
			}
			counts := make([]float64, 0, len(root.Children))
			for _, cid := range root.Children {
				counts = append(counts, float64(len(h.Squares[cid].Members)))
			}
			nSquares = len(root.Children)
			expected = h.Squares[root.Children[0]].Expected
			devs = append(devs, stats.MaxAbsDeviation(counts, expected))
		}
		sum := stats.Summarize(devs)
		within := stats.Fraction(devs, func(v float64) bool { return v < 0.1 })
		tb.AddRowf(n, nSquares, expected, sum.Mean, stats.Quantile(devs, 0.95), within)
		meanDevs = append(meanDevs, sum.Mean)
	}
	rep.addTable(tb)
	rep.check("occupancy deviation shrinks with n", meanDevs[len(meanDevs)-1] < meanDevs[0],
		"mean max-dev falls from %v (n=%d) to %v (n=%d); the paper's <1/10 w.h.p. claim is asymptotic "+
			"(E# per square grows only like sqrt(n))",
		fmtF(meanDevs[0]), ns[0], fmtF(meanDevs[len(meanDevs)-1]), ns[len(ns)-1])
	rep.check("no square empty or doubled at the largest n", meanDevs[len(meanDevs)-1] < 1,
		"mean max-dev %v stays below 1", fmtF(meanDevs[len(meanDevs)-1]))
	return rep, nil
}

// RunE10Hierarchy regenerates Table 3: the hierarchy's structural shape
// (depth ℓ, branching schedule, leaf sizes) across four decades of n —
// the ℓ ~ log log n claim of §4.1. Structure only; no gossip is run.
func RunE10Hierarchy(cfg Config) (*Report, error) {
	rep := &Report{ID: "E10", Title: "Table 3 — hierarchy shape vs n"}
	ns := []int{256, 1024, 4096, 16384, 65536, 262144, 1048576}
	if cfg.Quick {
		ns = []int{256, 1024, 4096, 16384}
	}
	tb := table.New("Recursive partition shape (branching rule: nearest even square to sqrt(E#))",
		"n", "levels (ell)", "branching", "leaves", "E# per leaf", "mean leaf size", "rep collisions", "empty squares")
	prevEll := 0
	maxEll := 0
	for _, n := range ns {
		pts := graph.UniformPoints(n, rng.New(cfg.seed()+uint64(n)))
		h, err := hier.Build(pts, hier.Config{})
		if err != nil {
			return nil, err
		}
		st := h.ComputeStats()
		tb.AddRowf(n, st.Ell, fmt.Sprint(st.Branching), st.Leaves, st.LeafExpected,
			st.MeanLeafSize, st.RepCollisions, st.EmptySquares)
		if st.Ell < prevEll {
			rep.check("depth monotone in n", false, "ell fell from %d to %d at n=%d", prevEll, st.Ell, n)
		}
		prevEll = st.Ell
		if st.Ell > maxEll {
			maxEll = st.Ell
		}
	}
	rep.addTable(tb)
	rep.check("depth grows like log log n", maxEll <= 6,
		"ell stays at most %d across four decades of n (log log growth)", maxEll)
	// The branching rule itself.
	rule := hier.NearestEvenSquare(math.Sqrt(1048576))
	rep.check("branching matches the paper's rule at n=2^20", rule == 1024,
		"nearest even square to sqrt(2^20)=1024 is %d", rule)
	return rep, nil
}

func intHeaders(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("n=%d", n)
	}
	return out
}
