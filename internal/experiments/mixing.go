package experiments

import (
	"context"
	"fmt"
	"math"

	"geogossip/internal/gossip"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/spectral"
	"geogossip/internal/stats"
	"geogossip/internal/sweep"
	"geogossip/internal/table"
)

// RunE16Mixing regenerates Table 6: the paper's §1.1 claim (after Boyd et
// al. [1, 2]) that nearest-neighbour gossip costs Θ(n·T_mix) transmissions
// on G(n, r), with T_mix driven by diffusion at scale r (T_rel ≈ Θ(1/r²)
// up to logarithms). The experiment measures the walk's relaxation time
// spectrally and compares it with the simulated gossip cost.
//
// Each network size is an independent measurement (its graph, power
// iteration, and gossip run seed only from the base seed and n), so the
// sizes run concurrently on the sweep engine and the rows assemble in
// size order.
func RunE16Mixing(cfg Config) (*Report, error) {
	rep := &Report{ID: "E16", Title: "Table 6 — mixing time vs nearest-neighbour gossip cost"}
	ns := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		ns = []int{256, 512, 1024}
	}
	const c = 1.5
	type row struct {
		lambda2, relax, invR2, ratio float64
		transmissions                uint64
	}
	rows, err := sweep.Map(context.Background(), len(ns), cfg.Workers,
		func(i int) (row, error) {
			n := ns[i]
			g, err := connectedGraph(n, c, cfg.seed())
			if err != nil {
				return row{}, err
			}
			iters := int(40 * float64(n) / (c * c * math.Log(float64(n))))
			if iters < 800 {
				iters = 800
			}
			sp, err := spectral.Estimate(g, iters, rng.New(cfg.seed()+600))
			if err != nil {
				return row{}, err
			}
			x := e1Field(g)
			res, err := gossip.RunBoyd(g, x, gossip.Options{
				Stop: sim.StopRule{TargetErr: 1e-2, MaxTicks: 200_000_000},
			}, rng.New(cfg.seed()+601))
			if err != nil {
				return row{}, err
			}
			if !res.Converged {
				return row{}, fmt.Errorf("E16: boyd at n=%d did not converge", n)
			}
			invR2 := 1 / (g.Radius() * g.Radius())
			return row{
				lambda2:       sp.Lambda2,
				relax:         sp.RelaxationTime,
				invR2:         invR2,
				ratio:         float64(res.Transmissions) / (float64(n) * sp.RelaxationTime),
				transmissions: res.Transmissions,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	tb := table.New("Lazy natural walk on G(n, 1.5·sqrt(log n/n)) vs simulated gossip cost (target 1e-2)",
		"n", "lambda2", "T_rel", "1/r^2", "boyd transmissions", "tx / (n·T_rel)")
	var xs, relaxes, invR2s, ratios []float64
	for i, n := range ns {
		r := rows[i]
		tb.AddRowf(n, r.lambda2, r.relax, r.invR2, r.transmissions, r.ratio)
		xs = append(xs, float64(n))
		relaxes = append(relaxes, r.relax)
		invR2s = append(invR2s, r.invR2)
		ratios = append(ratios, r.ratio)
	}
	rep.addTable(tb)
	plot := &table.Plot{
		Title:  "Table 6 as a figure: relaxation time vs n (log-log), measured (*) vs 1/r^2 (+)",
		XLabel: "n",
		YLabel: "T_rel",
		LogX:   true,
		LogY:   true,
	}
	plot.Add("T_rel", xs, relaxes)
	plot.Add("1/r^2", xs, invR2s)
	rep.addPlot(plot)

	pRel, _, r2Rel, err := stats.PowerLawFit(xs, relaxes)
	if err != nil {
		return nil, err
	}
	pR2, _, _, err := stats.PowerLawFit(xs, invR2s)
	if err != nil {
		return nil, err
	}
	rep.check("relaxation time scales like 1/r^2", math.Abs(pRel-pR2) < 0.35,
		"T_rel exponent %v vs 1/r^2 exponent %v (R2=%v) — the diffusive mixing of [2]",
		fmtF(pRel), fmtF(pR2), fmtF(r2Rel))
	ratioSummary := stats.Summarize(ratios)
	spread := ratioSummary.Max / ratioSummary.Min
	rep.check("gossip cost tracks n·T_rel", spread < 6,
		"tx/(n·T_rel) spans [%v, %v] (x%v) across sizes — consistent with the Theta(n·T_mix) law "+
			"up to the log(1/eps) factor the bound absorbs",
		fmtF(ratioSummary.Min), fmtF(ratioSummary.Max), fmtF(spread))
	return rep, nil
}
