package experiments

import (
	"context"
	"math"

	"geogossip/internal/kernel"
	"geogossip/internal/rng"
	"geogossip/internal/sweep"
	"geogossip/internal/table"
)

// The kernel-claim experiments are Monte Carlo: hundreds of independent
// trials of the affine pairwise dynamics. Each trial seeds its own
// generators from the base seed and the trial index, so the trials run
// concurrently on the sweep engine and reduce — in trial order — to
// exactly the tables the old sequential loops produced.

// RunE2Lemma1 regenerates Figure 1: the measured mean of ‖x(t)‖²/‖x(0)‖²
// under the affine pairwise dynamics on K_m against the Lemma 1 bound
// (1 − 1/2m)^t, for α_i drawn uniformly from (1/3, 1/2).
func RunE2Lemma1(cfg Config) (*Report, error) {
	rep := &Report{ID: "E2", Title: "Figure 1 — Lemma 1 contraction vs bound"}
	ms := []int{64, 256}
	trials := 200
	if cfg.Quick {
		ms = []int{64}
		trials = 60
	}
	for _, m := range ms {
		steps := kernel.StepsToContract(m, 1e-3)
		checkpoints := 12
		every := steps / checkpoints
		if every < 1 {
			every = 1
		}
		// One trial returns its squared-norm ratio at every checkpoint.
		perTrial, err := sweep.Map(context.Background(), trials, cfg.Workers,
			func(trial int) ([]float64, error) {
				seed := cfg.seed() + uint64(trial)*7919
				r := rng.New(seed)
				vals := make([]float64, m)
				for i := range vals {
					vals[i] = r.NormFloat64()
				}
				sys, err := kernel.NewSystem(vals, kernel.UniformAlphas(m, r.Stream("alphas")))
				if err != nil {
					return nil, err
				}
				sys.Center()
				norm0 := sys.Norm2()
				step := r.Stream("steps")
				ratios := make([]float64, checkpoints+1)
				for cp := 0; cp <= checkpoints; cp++ {
					if cp > 0 {
						for k := 0; k < every; k++ {
							sys.Step(step)
						}
					}
					ratios[cp] = sys.Norm2() / norm0
				}
				return ratios, nil
			})
		if err != nil {
			return nil, err
		}
		sumRatio := make([]float64, checkpoints+1)
		for _, ratios := range perTrial {
			for cp, v := range ratios {
				sumRatio[cp] += v
			}
		}
		tb := table.New("Lemma 1 on K_m, m=" + fmtF(float64(m)) + ", mean over trials")
		tb.Headers = []string{"t", "measured E||x(t)||^2/||x(0)||^2", "bound (1-1/2m)^t", "measured<=bound"}
		plot := &table.Plot{
			Title:  "Figure 1 (m=" + fmtF(float64(m)) + "): squared-norm decay, measured (*) vs Lemma 1 bound (+)",
			XLabel: "exchanges t",
			YLabel: "ratio",
			LogY:   true,
		}
		var xs, measured, bounds []float64
		allBelow := true
		for cp := 0; cp <= checkpoints; cp++ {
			t := cp * every
			mean := sumRatio[cp] / float64(trials)
			bound := kernel.Lemma1Bound(m, t, 1.0)
			below := mean <= bound*1.1 // Monte Carlo slack
			if !below {
				allBelow = false
			}
			tb.AddRowf(t, mean, bound, below)
			xs = append(xs, float64(t))
			measured = append(measured, mean)
			bounds = append(bounds, bound)
		}
		plot.Add("measured", xs, measured)
		plot.Add("bound", xs, bounds)
		rep.addTable(tb)
		rep.addPlot(plot)
		rep.check("Lemma 1 bound holds (m="+fmtF(float64(m))+")", allBelow,
			"mean squared-norm ratio below (1-1/2m)^t at all %d checkpoints over %d trials", checkpoints+1, trials)
		finalMean := sumRatio[checkpoints] / float64(trials)
		rep.check("contraction reaches target (m="+fmtF(float64(m))+")", finalMean < 1e-2,
			"final mean ratio %v after %d exchanges", finalMean, checkpoints*every)
	}
	return rep, nil
}

// RunE3Tail regenerates Figure 2: the empirical tail probability
// P(‖x(t)‖ > ε‖x(0)‖) against the Markov bound ε^{-2}(1 − 1/2m)^t of
// Corollaries 1 and 2.
func RunE3Tail(cfg Config) (*Report, error) {
	rep := &Report{ID: "E3", Title: "Figure 2 — tail probability vs Markov bound"}
	const m = 16
	trials := 600
	if cfg.Quick {
		trials = 200
	}
	epss := []float64{0.5, 0.3}
	maxSteps := kernel.StepsToContract(m, 0.01)
	checkpoints := 10
	every := maxSteps / checkpoints
	if every < 1 {
		every = 1
	}
	for _, eps := range epss {
		// One trial reports, per checkpoint, whether its norm exceeded
		// the eps threshold.
		perTrial, err := sweep.Map(context.Background(), trials, cfg.Workers,
			func(trial int) ([]bool, error) {
				seed := cfg.seed() + uint64(trial)*104729
				r := rng.New(seed)
				vals := make([]float64, m)
				for i := range vals {
					vals[i] = r.NormFloat64()
				}
				sys, err := kernel.NewSystem(vals, kernel.UniformAlphas(m, r.Stream("alphas")))
				if err != nil {
					return nil, err
				}
				sys.Center()
				norm0 := math.Sqrt(sys.Norm2())
				step := r.Stream("steps")
				over := make([]bool, checkpoints+1)
				for cp := 0; cp <= checkpoints; cp++ {
					if cp > 0 {
						for k := 0; k < every; k++ {
							sys.Step(step)
						}
					}
					over[cp] = math.Sqrt(sys.Norm2()) > eps*norm0
				}
				return over, nil
			})
		if err != nil {
			return nil, err
		}
		exceed := make([]int, checkpoints+1)
		for _, over := range perTrial {
			for cp, v := range over {
				if v {
					exceed[cp]++
				}
			}
		}
		tb := table.New("Tail at eps="+fmtF(eps)+", m=16, "+fmtF(float64(trials))+" trials",
			"t", "empirical P(||x||>eps||x0||)", "Markov bound", "within")
		plot := &table.Plot{
			Title:  "Figure 2 (eps=" + fmtF(eps) + "): tail probability, measured (*) vs bound (+)",
			XLabel: "exchanges t",
			YLabel: "probability",
		}
		var xs, emp, bnd []float64
		allWithin := true
		for cp := 0; cp <= checkpoints; cp++ {
			t := cp * every
			p := float64(exceed[cp]) / float64(trials)
			bound := kernel.TailBound(m, t, eps)
			// Monte Carlo slack: three standard errors.
			within := p <= bound+3*math.Sqrt(bound*(1-bound)/float64(trials))+0.02
			if !within {
				allWithin = false
			}
			tb.AddRowf(t, p, bound, within)
			xs = append(xs, float64(t))
			emp = append(emp, p)
			bnd = append(bnd, bound)
		}
		plot.Add("empirical", xs, emp)
		plot.Add("bound", xs, bnd)
		rep.addTable(tb)
		rep.addPlot(plot)
		rep.check("Markov tail bound holds (eps="+fmtF(eps)+")", allWithin,
			"empirical tail below bound at all checkpoints (%d trials)", trials)
	}
	return rep, nil
}

// RunE4Lemma2 regenerates Figure 3: the perturbed dynamics y(t) with
// |n(t)| < ε_noise against the Lemma 2 high-probability bound, plus the
// noise-floor behaviour across noise scales.
func RunE4Lemma2(cfg Config) (*Report, error) {
	rep := &Report{ID: "E4", Title: "Figure 3 — perturbed dynamics vs Lemma 2 bound"}
	const m = 32
	const a = 1.0
	trials := 150
	if cfg.Quick {
		trials = 50
	}
	noises := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	steps := kernel.StepsToContract(m, 1e-6)
	tb := table.New("Lemma 2: m=32, a=1, t="+fmtF(float64(steps))+" steps, "+fmtF(float64(trials))+" trials",
		"noise eps", "median ||y(t)||", "Lemma 2 bound", "fraction within", "budget (1-5/n^a)")
	var noiseXs, medians, bounds []float64
	allOK := true
	for _, eps := range noises {
		type trialOut struct {
			final, bound float64
		}
		perTrial, err := sweep.Map(context.Background(), trials, cfg.Workers,
			func(trial int) (trialOut, error) {
				seed := cfg.seed() + uint64(trial)*15485863
				r := rng.New(seed)
				vals := make([]float64, m)
				for i := range vals {
					vals[i] = r.NormFloat64()
				}
				sys, err := kernel.NewSystem(vals, kernel.UniformAlphas(m, r.Stream("alphas")))
				if err != nil {
					return trialOut{}, err
				}
				sys.Center()
				norm0 := math.Sqrt(sys.Norm2())
				step := r.Stream("steps")
				noiseRNG := r.Stream("noise")
				noiseFn := func() float64 { return eps * (noiseRNG.Float64()*2 - 1) * 0.999 }
				for k := 0; k < steps; k++ {
					sys.StepPerturbed(step, noiseFn)
				}
				return trialOut{
					final: math.Sqrt(sys.Norm2()),
					bound: kernel.Lemma2Bound(m, steps, a, norm0, eps),
				}, nil
			})
		if err != nil {
			return nil, err
		}
		within := 0
		finals := make([]float64, 0, trials)
		var bound float64
		for _, out := range perTrial {
			finals = append(finals, out.final)
			bound = out.bound
			if out.final <= out.bound {
				within++
			}
		}
		budget := 1 - kernel.Lemma2FailureProb(m, a)
		frac := float64(within) / float64(trials)
		ok := frac >= budget
		if !ok {
			allOK = false
		}
		med := medianOf(finals)
		tb.AddRowf(eps, med, bound, frac, budget)
		noiseXs = append(noiseXs, eps)
		medians = append(medians, med)
		bounds = append(bounds, bound)
	}
	plot := &table.Plot{
		Title:  "Figure 3: noise floor — median ||y(t)|| (*) vs Lemma 2 bound (+), both vs noise scale",
		XLabel: "noise eps",
		YLabel: "||y(t)||",
		LogX:   true,
		LogY:   true,
	}
	plot.Add("median final norm", noiseXs, medians)
	plot.Add("Lemma 2 bound", noiseXs, bounds)
	rep.addTable(tb)
	rep.addPlot(plot)
	rep.check("Lemma 2 bound holds at every noise scale", allOK,
		"fraction of runs within bound >= 1-5/n^a for all noise levels (%d trials each)", trials)
	// The floor should scale roughly linearly with the noise.
	ratio := medians[len(medians)-1] / medians[0]
	noiseRatio := noiseXs[len(noiseXs)-1] / noiseXs[0]
	rep.check("residual norm scales with noise", ratio > noiseRatio/100 && ratio < noiseRatio*100,
		"median-final-norm ratio %v across a %vx noise sweep", fmtF(ratio), fmtF(noiseRatio))
	return rep, nil
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp) == 0 {
		return math.NaN()
	}
	return cp[len(cp)/2]
}
