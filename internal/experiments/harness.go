// Package experiments implements the reproduction harness: one runner per
// experiment in DESIGN.md §2, each regenerating a table or figure derived
// from the paper's claims and checking the expected shape.
//
// Every runner takes a Config and returns a Report containing rendered
// tables/plots plus pass/fail findings; cmd/experiments writes them to
// results/, bench_test.go wraps them as benchmarks, and the package tests
// run them in Quick mode.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"geogossip/internal/graph"
	"geogossip/internal/rng"
	"geogossip/internal/table"
)

// Config controls experiment scale.
type Config struct {
	// Quick selects reduced sizes and trial counts suitable for CI; the
	// default (false) reproduces the full tables.
	Quick bool
	// Seed is the base seed; zero selects 1.
	Seed uint64
	// Workers sizes the sweep-engine pool the multi-trial runners execute
	// on; zero selects GOMAXPROCS. Per-trial seeds derive from Seed and
	// the trial index, so every worker count reproduces the same tables.
	Workers int
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Finding is one checked claim.
type Finding struct {
	// Name describes what was checked.
	Name string
	// Detail carries the measured values.
	Detail string
	// OK reports whether the measurement matches the expected shape.
	OK bool
}

// Report is the output of one experiment.
type Report struct {
	// ID is the experiment id (e.g. "E1").
	ID string
	// Title names the regenerated artifact (e.g. "Table 1 — ...").
	Title string
	// Tables and Plots are the regenerated artifacts.
	Tables []*table.Table
	Plots  []*table.Plot
	// Findings are the shape checks.
	Findings []Finding
}

func (r *Report) addTable(t *table.Table) { r.Tables = append(r.Tables, t) }
func (r *Report) addPlot(p *table.Plot)   { r.Plots = append(r.Plots, p) }

func (r *Report) check(name string, ok bool, format string, args ...interface{}) {
	r.Findings = append(r.Findings, Finding{
		Name:   name,
		Detail: fmt.Sprintf(format, args...),
		OK:     ok,
	})
}

// OK reports whether every finding passed.
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if !f.OK {
			return false
		}
	}
	return true
}

// Write renders the full report.
func (r *Report) Write(w io.Writer) error {
	header := fmt.Sprintf("%s — %s", r.ID, r.Title)
	if _, err := fmt.Fprintf(w, "%s\n%s\n\n", header, strings.Repeat("=", len(header))); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, p := range r.Plots {
		if err := p.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, f := range r.Findings {
		status := "PASS"
		if !f.OK {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "[%s] %s: %s\n", status, f.Name, f.Detail); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner is one experiment entry point.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// All lists every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"E1", "Table 1 — transmission scaling of the three algorithms", RunE1Scaling},
		{"E2", "Figure 1 — Lemma 1 contraction vs bound", RunE2Lemma1},
		{"E3", "Figure 2 — Corollary 1/2 tail probability vs Markov bound", RunE3Tail},
		{"E4", "Figure 3 — Lemma 2 perturbed dynamics vs bound", RunE4Lemma2},
		{"E5", "Figure 4 — connectivity threshold of G(n, r)", RunE5Connectivity},
		{"E6", "Figure 5 — greedy routing hop scaling and delivery", RunE6Routing},
		{"E7", "Figure 6 — rejection-sampling uniformity", RunE7Rejection},
		{"E8", "Table 2 — first-level occupancy concentration", RunE8Occupancy},
		{"E9", "Figure 7 — transmissions vs target accuracy", RunE9EpsScaling},
		{"E10", "Table 3 — hierarchy shape vs n", RunE10Hierarchy},
		{"E11", "Figure 8 — affine-coefficient stability sweep", RunE11Stability},
		{"E12", "Table 4 — hierarchy/affine ablation", RunE12Ablation},
		{"E13", "Table 5 — async protocol control traffic and throttling", RunE13Control},
		{"E14", "Figure 9 — convergence trajectories at fixed n", RunE14Convergence},
		{"E15", "Figure 10 — per-level accuracy schedule ablation", RunE15EpsSchedule},
		{"E16", "Table 6 — mixing time vs nearest-neighbour gossip cost", RunE16Mixing},
	}
}

// connectedGraph generates G(n, c·sqrt(log n / n)) instances until one is
// connected (trying a few seeds), so experiment workloads always run on
// the regime the paper assumes.
func connectedGraph(n int, c float64, seed uint64) (*graph.Graph, error) {
	var g *graph.Graph
	var err error
	for attempt := uint64(0); attempt < 8; attempt++ {
		g, err = graph.Generate(n, c, rng.New(seed+attempt*1000003))
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("experiments: no connected G(%d, %.2f·sqrt(log n/n)) in 8 attempts", n, c)
}

// gaussianValues draws the standard initial measurement vector.
func gaussianValues(n int, seed uint64) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func fmtU(v uint64) string { return fmt.Sprintf("%d", v) }

func fmtF(v float64) string { return table.FormatFloat(v) }

func logSpace(lo, hi float64, k int) []float64 {
	if k < 2 {
		return []float64{lo}
	}
	out := make([]float64, k)
	ll, lh := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(ll + (lh-ll)*float64(i)/float64(k-1))
	}
	out[0], out[k-1] = lo, hi // pin endpoints exactly
	return out
}
