package experiments

import (
	"fmt"

	"geogossip/internal/core"
	"geogossip/internal/hier"
	"geogossip/internal/rng"
	"geogossip/internal/table"
)

// RunE15EpsSchedule regenerates Figure 10: an ablation of the per-level
// accuracy schedule ε_{r+1} = ε_r/(κ·sqrt(E#)). The affine update
// amplifies residual intra-square error by ≈ β·sqrt(E#) (Lemma 2's noise
// term), so κ below ~1 leaves an error floor above the target, while
// large κ buys accuracy that is never needed — the practical content of
// the paper's aggressive ε_{r+1} = ε_r/(25·n^{7/2+a}) schedule.
func RunE15EpsSchedule(cfg Config) (*Report, error) {
	rep := &Report{ID: "E15", Title: "Figure 10 — per-level accuracy schedule ablation"}
	// n is kept at 1024 in Quick mode too: the sweep is cheap and the
	// noise floor only clears the target reliably from this size up.
	const n = 1024
	const eps = 1e-3
	kappas := []float64{0.125, 0.25, 0.5, 1, 2, 4, 8, 16}
	g, err := connectedGraph(n, 1.5, cfg.seed())
	if err != nil {
		return nil, err
	}
	h, err := hier.Build(g.Points(), hier.Config{})
	if err != nil {
		return nil, err
	}
	x0 := e1Field(g)
	tb := table.New(fmt.Sprintf("Accuracy-schedule sweep at n=%d, eps=%.0e (default kappa=4)", n, eps),
		"kappa", "converged", "final err", "transmissions", "incomplete squares")
	var ks, txs []float64
	smallKappaDegrades := false
	largeKappaConverges := true
	var cheapClean float64
	for _, k := range kappas {
		x := append([]float64(nil), x0...)
		res, err := core.RunRecursive(g, h, x, core.RecursiveOptions{
			Eps:            eps,
			EpsDecayFactor: k,
		}, rng.New(cfg.seed()+55))
		if err != nil {
			return nil, err
		}
		tb.AddRowf(k, res.Converged, res.FinalErr, res.Transmissions, res.IncompleteSquares)
		ks = append(ks, k)
		txs = append(txs, float64(res.Transmissions))
		clean := res.Converged && res.IncompleteSquares == 0
		if k <= 0.5 && !clean {
			smallKappaDegrades = true
		}
		if k >= 2 && !res.Converged {
			largeKappaConverges = false
		}
		if k >= 2 && clean && (cheapClean == 0 || float64(res.Transmissions) < cheapClean) {
			cheapClean = float64(res.Transmissions)
		}
	}
	rep.addTable(tb)
	plot := &table.Plot{
		Title:  "Figure 10: transmissions vs schedule factor kappa (log-log)",
		XLabel: "kappa",
		YLabel: "transmissions",
		LogX:   true,
		LogY:   true,
	}
	plot.Add("transmissions", ks, txs)
	rep.addPlot(plot)
	rep.check("weak schedules hit the Lemma 2 noise floor", smallKappaDegrades,
		"kappa <= 0.5 fails to converge cleanly: imperfect child averaging is amplified by the "+
			"beta*sqrt(E#) affine coefficient")
	rep.check("schedules at kappa >= 2 converge", largeKappaConverges,
		"every kappa >= 2 reaches the %.0e target", eps)
	rep.check("stronger schedules cost more", txs[len(txs)-1] > cheapClean,
		"transmissions at kappa=%v: %v vs cheapest clean schedule %v — accuracy beyond the floor is pure overhead",
		fmtF(kappas[len(kappas)-1]), fmtF(txs[len(txs)-1]), fmtF(cheapClean))
	return rep, nil
}
