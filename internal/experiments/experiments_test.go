package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true} }

// runAndCheck executes an experiment in Quick mode and requires every
// finding to pass; the rendered report must be well-formed.
func runAndCheck(t *testing.T, run func(Config) (*Report, error)) *Report {
	t.Helper()
	rep, err := run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, rep.ID) {
		t.Fatalf("report output missing id:\n%s", out)
	}
	for _, f := range rep.Findings {
		if !f.OK {
			t.Errorf("finding failed: %s: %s", f.Name, f.Detail)
		}
	}
	if len(rep.Findings) == 0 {
		t.Fatal("experiment produced no findings")
	}
	if len(rep.Tables)+len(rep.Plots) == 0 {
		t.Fatal("experiment produced no artifacts")
	}
	return rep
}

func TestE1Scaling(t *testing.T) {
	if testing.Short() {
		t.Skip("E1 runs three full algorithms")
	}
	runAndCheck(t, RunE1Scaling)
}

func TestE2Lemma1(t *testing.T) { runAndCheck(t, RunE2Lemma1) }
func TestE3Tail(t *testing.T)   { runAndCheck(t, RunE3Tail) }
func TestE4Lemma2(t *testing.T) { runAndCheck(t, RunE4Lemma2) }

func TestE5Connectivity(t *testing.T) { runAndCheck(t, RunE5Connectivity) }

func TestE6Routing(t *testing.T) {
	if testing.Short() {
		t.Skip("E6 builds several graphs")
	}
	runAndCheck(t, RunE6Routing)
}

func TestE7Rejection(t *testing.T) {
	if testing.Short() {
		t.Skip("E7 draws many samples")
	}
	runAndCheck(t, RunE7Rejection)
}

func TestE8Occupancy(t *testing.T)  { runAndCheck(t, RunE8Occupancy) }
func TestE10Hierarchy(t *testing.T) { runAndCheck(t, RunE10Hierarchy) }

func TestE9EpsScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("E9 runs the affine algorithm at six accuracy targets")
	}
	runAndCheck(t, RunE9EpsScaling)
}

func TestE11Stability(t *testing.T) {
	if testing.Short() {
		t.Skip("E11 sweeps ten multipliers")
	}
	runAndCheck(t, RunE11Stability)
}

func TestE12Ablation(t *testing.T) {
	if testing.Short() {
		t.Skip("E12 runs four variants")
	}
	runAndCheck(t, RunE12Ablation)
}

func TestE13Control(t *testing.T) {
	if testing.Short() {
		t.Skip("E13 runs the async protocol at three throttles")
	}
	runAndCheck(t, RunE13Control)
}

func TestE14Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("E14 runs three full algorithms")
	}
	runAndCheck(t, RunE14Convergence)
}

func TestE15EpsSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 sweeps seven schedules")
	}
	runAndCheck(t, RunE15EpsSchedule)
}

func TestE16Mixing(t *testing.T) {
	if testing.Short() {
		t.Skip("E16 runs power iteration and full gossip at several sizes")
	}
	runAndCheck(t, RunE16Mixing)
}

func TestAllListsEveryExperiment(t *testing.T) {
	runners := All()
	if len(runners) != 16 {
		t.Fatalf("All() lists %d experiments, want 16", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner: %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestReportWriteMarksFailures(t *testing.T) {
	rep := &Report{ID: "EX", Title: "test"}
	rep.check("good", true, "fine")
	rep.check("bad", false, "broken: %d", 7)
	if rep.OK() {
		t.Fatal("report with failure reports OK")
	}
	var b strings.Builder
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "[PASS] good") || !strings.Contains(out, "[FAIL] bad: broken: 7") {
		t.Fatalf("report output:\n%s", out)
	}
}

func TestConnectedGraphHelper(t *testing.T) {
	g, err := connectedGraph(256, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("helper returned disconnected graph")
	}
	// Far sub-threshold: should fail after bounded attempts.
	if _, err := connectedGraph(4096, 0.3, 1); err == nil {
		t.Fatal("sub-threshold graph reported connected")
	}
}

func TestLogSpace(t *testing.T) {
	xs := logSpace(1, 100, 3)
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 100 {
		t.Fatalf("logSpace = %v", xs)
	}
	if xs[1] < 9.9 || xs[1] > 10.1 {
		t.Fatalf("geometric midpoint = %v", xs[1])
	}
	if got := logSpace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("single point = %v", got)
	}
}

// The multi-trial runners execute on the sweep engine; their reports must
// be bit-identical at any worker count (reductions happen in trial
// order, never completion order).
func TestTrialRunnersDeterministicAcrossWorkers(t *testing.T) {
	runners := []func(Config) (*Report, error){RunE2Lemma1, RunE3Tail, RunE4Lemma2}
	if !testing.Short() {
		runners = append(runners, RunE16Mixing)
	}
	for i, run := range runners {
		render := func(workers int) string {
			rep, err := run(Config{Quick: true, Workers: workers})
			if err != nil {
				t.Fatalf("runner %d workers=%d: %v", i, workers, err)
			}
			var b strings.Builder
			if err := rep.Write(&b); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}
		if render(1) != render(8) {
			t.Errorf("runner %d renders differently at 1 and 8 workers", i)
		}
	}
}
