package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"geogossip/internal/obs"
	"geogossip/internal/sweep"
)

// testSpec is cheap enough for unit tests but wide enough to exercise
// multiple algorithms, sizes and loss rates — 16 tasks.
func testSpec() sweep.Spec {
	return sweep.Spec{
		Algorithms:       []string{sweep.AlgoBoyd, sweep.AlgoAffine},
		Ns:               []int{96, 128},
		Seeds:            2,
		LossRates:        []float64{0, 0.1},
		TargetErr:        5e-2,
		RadiusMultiplier: 2.2,
	}
}

// singleProcess runs the reference: the local engine at one worker,
// whose sink order is the canonical task order the distributed
// coordinator must reproduce byte for byte.
func singleProcess(t *testing.T, spec sweep.Spec) ([]sweep.TaskResult, []byte, map[string]float64) {
	t.Helper()
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	results, err := sweep.Run(context.Background(), spec, sweep.Options{
		Workers: 1,
		Sink:    sweep.NewJSONL(&buf),
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("single-process reference: %v", err)
	}
	return results, buf.Bytes(), reg.Flatten()
}

// coordOpts are test defaults: a tight retry/linger cycle so idle
// workers wake up promptly for their bye.
func coordOpts(sink sweep.Sink) CoordOptions {
	return CoordOptions{
		Sink:        sink,
		RetryMillis: 20,
		Linger:      2 * time.Second,
	}
}

// serveAsync starts a coordinator on a loopback listener and returns
// its address plus a channel carrying Serve's outcome.
type serveOutcome struct {
	sum *Summary
	err error
}

func serveAsync(t *testing.T, ctx context.Context, spec sweep.Spec, opt CoordOptions) (string, <-chan serveOutcome) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan serveOutcome, 1)
	go func() {
		sum, err := Serve(ctx, ln, spec, opt)
		ch <- serveOutcome{sum, err}
	}()
	return ln.Addr().String(), ch
}

func waitServe(t *testing.T, ch <-chan serveOutcome) *Summary {
	t.Helper()
	select {
	case out := <-ch:
		if out.err != nil {
			t.Fatalf("Serve: %v", out.err)
		}
		return out.sum
	case <-time.After(2 * time.Minute):
		t.Fatal("Serve did not finish")
		return nil
	}
}

func TestDistributedMatchesSingleProcess(t *testing.T) {
	spec := testSpec()
	wantResults, wantBytes, wantMetrics := singleProcess(t, spec)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var buf bytes.Buffer
			addr, serveCh := serveAsync(t, context.Background(), spec, coordOpts(sweep.NewJSONL(&buf)))
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					err := Join(context.Background(), addr, WorkerOptions{
						Name:  fmt.Sprintf("w%d", i),
						Slots: 2,
					})
					if err != nil {
						t.Errorf("worker %d: %v", i, err)
					}
				}(i)
			}
			sum := waitServe(t, serveCh)
			wg.Wait()
			if !bytes.Equal(buf.Bytes(), wantBytes) {
				t.Errorf("sink bytes differ from single-process reference (%d vs %d bytes)",
					buf.Len(), len(wantBytes))
			}
			if !reflect.DeepEqual(sum.Results, wantResults) {
				t.Error("summary results differ from single-process reference")
			}
			if !reflect.DeepEqual(sum.Metrics, wantMetrics) {
				t.Errorf("summed metric deltas differ from single-process Flatten:\n dist: %v\n want: %v",
					sum.Metrics, wantMetrics)
			}
			if sum.Workers != workers {
				t.Errorf("summary counts %d worker sessions, want %d", sum.Workers, workers)
			}
		})
	}
}

// A worker killed mid-lease must not change the output: its unfinished
// tasks are re-issued and the sink stays byte-identical.
func TestWorkerKilledMidLeaseReissues(t *testing.T) {
	spec := testSpec()
	_, wantBytes, wantMetrics := singleProcess(t, spec)

	var buf bytes.Buffer
	opt := coordOpts(sweep.NewJSONL(&buf))
	// A 4-task lease guarantees the 1-slot victim dies mid-lease (after
	// its second task), leaving unfinished tasks to re-issue.
	opt.LeaseSize = 4
	addr, serveCh := serveAsync(t, context.Background(), spec, opt)

	// Victim: dies (context cancel closes its connection) after two
	// completed tasks, mid-lease.
	victimCtx, kill := context.WithCancel(context.Background())
	victimErr := Join(victimCtx, addr, WorkerOptions{
		Name:  "victim",
		Slots: 1,
		Progress: func(done int) {
			if done >= 2 {
				kill()
			}
		},
	})
	if victimErr == nil {
		t.Fatal("victim worker finished the whole grid before its kill fired")
	}

	// Survivor: finishes the rest, including the victim's re-issued
	// lease remainder.
	if err := Join(context.Background(), addr, WorkerOptions{Name: "survivor", Slots: 2}); err != nil {
		t.Fatalf("survivor worker: %v", err)
	}
	sum := waitServe(t, serveCh)
	if sum.Reissued == 0 {
		t.Error("expected at least one re-issued lease after the victim died")
	}
	if !bytes.Equal(buf.Bytes(), wantBytes) {
		t.Errorf("sink bytes differ from single-process reference after worker death (%d vs %d bytes)",
			buf.Len(), len(wantBytes))
	}
	if !reflect.DeepEqual(sum.Metrics, wantMetrics) {
		t.Error("summed metric deltas differ after worker death (duplicate deltas not discarded?)")
	}
}

// A worker that goes silent without closing its connection is caught by
// the lease timeout, and its tasks complete elsewhere.
func TestSilentWorkerLeaseTimeout(t *testing.T) {
	spec := testSpec()
	_, wantBytes, _ := singleProcess(t, spec)

	var buf bytes.Buffer
	opt := coordOpts(sweep.NewJSONL(&buf))
	opt.LeaseTimeout = 200 * time.Millisecond
	addr, serveCh := serveAsync(t, context.Background(), spec, opt)

	// Hand-rolled client: hello, take a lease, then hang without
	// heartbeats.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := &frameWriter{w: conn}
	if err := fw.send(&Msg{Type: MsgHello, Proto: ProtocolVersion, Name: "hung", Slots: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := readMsg(conn); err != nil || m.Type != MsgSpec {
		t.Fatalf("expected spec, got %v (%v)", m, err)
	}
	if err := fw.send(&Msg{Type: MsgWant}); err != nil {
		t.Fatal(err)
	}
	m, err := readMsg(conn)
	if err != nil || m.Type != MsgLease || len(m.Tasks) == 0 {
		t.Fatalf("expected a lease, got %v (%v)", m, err)
	}

	if err := Join(context.Background(), addr, WorkerOptions{
		Name: "live", Slots: 2, Heartbeat: 50 * time.Millisecond,
	}); err != nil {
		t.Fatalf("live worker: %v", err)
	}
	sum := waitServe(t, serveCh)
	if sum.Reissued == 0 {
		t.Error("expected the hung worker's lease to be reaped and re-issued")
	}
	if !bytes.Equal(buf.Bytes(), wantBytes) {
		t.Error("sink bytes differ from single-process reference after lease timeout")
	}
}

// A restarted coordinator re-validates its sink and leases only the
// incomplete tasks; the appended output completes the canonical file
// with zero duplicates.
func TestCoordinatorRestartResumes(t *testing.T) {
	spec := testSpec()
	wantResults, wantBytes, _ := singleProcess(t, spec)

	var buf bytes.Buffer

	// Phase 1: cancel the coordinator after a few accepted results. The
	// sink holds a gap-free canonical prefix at that point.
	opt1 := coordOpts(sweep.NewJSONL(&buf))
	ctx1, cancel1 := context.WithCancel(context.Background())
	opt1.Progress = func(done, total int) {
		if done >= 3 {
			cancel1()
		}
	}
	addr1, serveCh1 := serveAsync(t, ctx1, spec, opt1)
	_ = Join(context.Background(), addr1, WorkerOptions{Name: "w", Slots: 1}) // dies with the coordinator
	out1 := <-serveCh1
	cancel1()
	if out1.err == nil {
		t.Fatal("phase-1 coordinator finished before its cancel fired")
	}

	prefix := append([]byte(nil), buf.Bytes()...)
	if !bytes.HasPrefix(wantBytes, prefix) {
		t.Fatal("interrupted sink is not a canonical prefix of the reference output")
	}
	prior, err := sweep.ReadResults(bytes.NewReader(prefix))
	if err != nil {
		t.Fatalf("re-reading interrupted sink: %v", err)
	}
	if len(prior) == 0 || len(prior) >= len(wantResults) {
		t.Fatalf("phase 1 flushed %d of %d results; the test needs a strict prefix", len(prior), len(wantResults))
	}

	// Phase 2: restart with the re-read results; only the rest executes.
	opt2 := coordOpts(sweep.NewJSONL(&buf))
	opt2.Resume = prior
	executed := 0
	opt2.Progress = func(done, total int) {
		executed = done
		if want := len(wantResults) - len(prior); total != want {
			t.Errorf("phase 2 scheduled %d tasks, want %d", total, want)
		}
	}
	addr2, serveCh2 := serveAsync(t, context.Background(), spec, opt2)
	if err := Join(context.Background(), addr2, WorkerOptions{Name: "w", Slots: 2}); err != nil {
		t.Fatalf("phase-2 worker: %v", err)
	}
	sum := waitServe(t, serveCh2)
	if executed != len(wantResults)-len(prior) {
		t.Errorf("phase 2 executed %d tasks, want %d (zero duplicates)", executed, len(wantResults)-len(prior))
	}
	if !bytes.Equal(buf.Bytes(), wantBytes) {
		t.Errorf("resumed sink differs from single-process reference (%d vs %d bytes)", buf.Len(), len(wantBytes))
	}
	if !reflect.DeepEqual(sum.Results, wantResults) {
		t.Error("resumed summary results differ from single-process reference")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := &frameWriter{w: &buf}
	sent := []*Msg{
		{Type: MsgHello, Proto: ProtocolVersion, Name: "w0", Slots: 3},
		{Type: MsgLease, Lease: 7, Tasks: []int{0, 1, 5}},
		{Type: MsgWait, RetryMillis: 250},
		{Type: MsgHeartbeat, Stats: &WorkerStats{RouteHits: 12, Networks: 2}},
		{Type: MsgBye},
	}
	for _, m := range sent {
		if err := fw.send(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range sent {
		got, err := readMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip changed the frame:\n got %+v\nwant %+v", got, want)
		}
	}
	if _, err := readMsg(&buf); err != io.EOF {
		t.Errorf("drained stream returns %v, want io.EOF", err)
	}
}

func TestReadMsgRejectsGarbage(t *testing.T) {
	// Zero-length frame.
	if _, err := readMsg(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversized frame length.
	if _, err := readMsg(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("oversized frame accepted")
	}
	// Valid length, malformed payload.
	if _, err := readMsg(bytes.NewReader([]byte{0, 0, 0, 2, '{', 'x'})); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Valid JSON without a type.
	if _, err := readMsg(bytes.NewReader([]byte{0, 0, 0, 2, '{', '}'})); err == nil {
		t.Error("typeless frame accepted")
	}
	// Truncated payload.
	if _, err := readMsg(bytes.NewReader([]byte{0, 0, 0, 9, '{', '}'})); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestProtocolVersionMismatchRejected(t *testing.T) {
	spec := testSpec()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, serveCh := serveAsync(t, ctx, spec, CoordOptions{RetryMillis: 20})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := &frameWriter{w: conn}
	if err := fw.send(&Msg{Type: MsgHello, Proto: ProtocolVersion + 1, Name: "future"}); err != nil {
		t.Fatal(err)
	}
	m, err := readMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgBye || m.Err == "" {
		t.Errorf("version mismatch answered with %+v, want bye with an error", m)
	}
	cancel()
	<-serveCh
}
