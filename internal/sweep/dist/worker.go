package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"geogossip/internal/netstore"
	"geogossip/internal/sweep"
)

// WorkerOptions configures Join.
type WorkerOptions struct {
	// Name identifies the worker in coordinator gauges and /progress.
	// Empty derives "host/pid".
	Name string
	// Slots is the worker's in-process parallelism (see sweep.Options
	// .Workers); zero selects GOMAXPROCS. Also advertised in hello so the
	// coordinator can size leases.
	Slots int
	// BuildWorkers is the per-network construction parallelism (see
	// sweep.Options.BuildWorkers).
	BuildWorkers int
	// NetDir, when non-empty, roots a network snapshot store (see
	// sweep.Options.NetStore): leases over already-persisted cells load
	// their networks instead of rebuilding them, and heartbeats report
	// the builds avoided. Workers on one machine may share the directory.
	NetDir string
	// Heartbeat is the keep-alive interval; it must stay well under the
	// coordinator's lease timeout. Zero selects 2s.
	Heartbeat time.Duration
	// Progress, when non-nil, is called after every completed task with
	// this worker's running total.
	Progress func(done int)
}

// Join connects to a coordinator at addr and executes leases until the
// coordinator says bye (grid complete — returns nil), the connection
// drops (returns the transport error), or ctx is cancelled (returns
// ctx.Err()). The worker keeps one pooled executor for the whole
// session, so consecutive leases over the same grid cells reuse built
// networks and warmed route caches.
func Join(ctx context.Context, addr string, opt WorkerOptions) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	name := opt.Name
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	var store *netstore.Store
	if opt.NetDir != "" {
		if store, err = netstore.Open(opt.NetDir); err != nil {
			return err
		}
	}
	exec := sweep.NewExecutor(opt.Slots, opt.BuildWorkers, store)
	br := bufio.NewReaderSize(conn, 1<<16)
	fw := &frameWriter{w: conn}
	if err := fw.send(&Msg{Type: MsgHello, Proto: ProtocolVersion, Name: name, Slots: exec.Slots()}); err != nil {
		return ctxErr(ctx, err)
	}
	m, err := readMsg(br)
	if err != nil {
		return ctxErr(ctx, err)
	}
	if m.Type == MsgBye {
		return fmt.Errorf("dist: coordinator rejected worker: %s", m.Err)
	}
	if m.Type != MsgSpec || m.Spec == nil {
		return fmt.Errorf("dist: expected spec after hello, got %q", m.Type)
	}
	spec := m.Spec.Normalized()
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("dist: coordinator sent invalid spec: %w", err)
	}
	tasks := spec.Expand()

	heartbeat := opt.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 2 * time.Second
	}
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				s := workerStats(exec)
				if fw.send(&Msg{Type: MsgHeartbeat, Stats: &s}) != nil {
					return // main loop will observe the broken connection
				}
			}
		}
	}()

	done := 0
	for {
		if err := fw.send(&Msg{Type: MsgWant}); err != nil {
			return ctxErr(ctx, err)
		}
		m, err := readMsg(br)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("dist: coordinator closed the connection mid-session")
			}
			return ctxErr(ctx, err)
		}
		switch m.Type {
		case MsgLease:
			n, err := runLease(ctx, exec, fw, tasks, m, done, opt.Progress)
			done += n
			if err != nil {
				return ctxErr(ctx, err)
			}
		case MsgWait:
			retry := time.Duration(m.RetryMillis) * time.Millisecond
			if retry <= 0 {
				retry = 250 * time.Millisecond
			}
			select {
			case <-time.After(retry):
			case <-ctx.Done():
				return ctx.Err()
			}
		case MsgBye:
			if m.Err != "" {
				return fmt.Errorf("dist: coordinator aborted: %s", m.Err)
			}
			return nil
		default:
			return fmt.Errorf("dist: unexpected %q in reply to want", m.Type)
		}
	}
}

// runLease executes one lease across the executor's slots, streaming
// each result as it completes, and closes with the done report. Returns
// the number of tasks executed.
func runLease(ctx context.Context, exec *sweep.Executor, fw *frameWriter, tasks []sweep.Task, lease *Msg, doneBase int, progress func(int)) (int, error) {
	for _, id := range lease.Tasks {
		if id < 0 || id >= len(tasks) {
			return 0, fmt.Errorf("dist: lease %d references task %d outside the %d-task grid", lease.Lease, id, len(tasks))
		}
	}
	slots := exec.Slots()
	if slots > len(lease.Tasks) {
		slots = len(lease.Tasks)
	}
	idCh := make(chan int)
	go func() {
		defer close(idCh)
		for _, id := range lease.Tasks {
			select {
			case idCh <- id:
			case <-ctx.Done():
				return
			}
		}
	}()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		executed int
	)
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for id := range idCh {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop || ctx.Err() != nil {
					return
				}
				r, delta := exec.Execute(slot, tasks[id])
				err := fw.send(&Msg{Type: MsgResult, Result: &r, Metrics: delta})
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					executed++
					if progress != nil {
						progress(doneBase + executed)
					}
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return executed, firstErr
	}
	if err := ctx.Err(); err != nil {
		return executed, err
	}
	s := workerStats(exec)
	return executed, fw.send(&Msg{Type: MsgDone, Lease: lease.Lease, Stats: &s})
}

func workerStats(exec *sweep.Executor) WorkerStats {
	route := exec.RouteStats()
	net := exec.NetStats()
	return WorkerStats{
		RouteHits:     route.RouteHits,
		RouteMisses:   route.RouteMisses,
		FloodHits:     route.FloodHits,
		FloodMisses:   route.FloodMisses,
		Networks:      net.Networks,
		Nodes:         net.Nodes,
		BuildSeconds:  net.BuildTime.Seconds(),
		GraphBytes:    net.GraphBytes,
		HierBytes:     net.HierBytes,
		ChannelBuilds: exec.ChannelBuilds(),

		NetLoads:       net.Loads,
		NetLoadSeconds: net.LoadTime.Seconds(),
		NetStoreMisses: net.StoreMisses,
		NetStoreBytes:  net.StoreBytes,
	}
}

// ctxErr prefers the context's cancellation cause over the transport
// error it provoked (cancelling Join closes the connection, so the read
// or write error is a symptom, not the story).
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}
