// Package dist shards one sweep grid across worker processes over TCP
// with no loss of determinism. A coordinator (Serve) expands the task
// space exactly like the local engine, hands out task-ID ranges as
// leases, collects result lines streamed back by workers, and flushes
// them to the sink in canonical task order — so the sink file is
// byte-identical to a single-process, single-worker sweep of the same
// spec. Workers (Join) run the existing pooled-executor loop per lease
// and send periodic heartbeats; a lease whose worker dies or goes
// silent is re-issued deterministically (per-task seeds make every
// re-execution bit-identical, so duplicate results are simply
// discarded).
//
// The wire protocol is length-prefixed JSON: a 4-byte big-endian frame
// length followed by one Msg object. The exchange is strictly
// worker-initiated — hello → spec, then want → lease | wait | bye,
// with result/done/heartbeat streamed upward during a lease — so
// neither side ever blocks on an unsolicited peer write.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"geogossip/internal/sweep"
)

// ProtocolVersion gates hello: a worker and coordinator must agree on
// the frame vocabulary before any lease moves.
const ProtocolVersion = 1

// maxFrame bounds one message (oversized frames indicate a corrupt or
// hostile peer, not a big grid: leases carry IDs, not tasks).
const maxFrame = 64 << 20

// Message types.
const (
	// MsgHello is the worker's opener: protocol version, a display name
	// and its slot count (in-process parallelism, used to size leases).
	MsgHello = "hello"
	// MsgSpec is the coordinator's reply to hello: the normalized grid
	// spec the worker expands locally (leases then reference task IDs).
	MsgSpec = "spec"
	// MsgWant asks for a lease; the coordinator answers with MsgLease,
	// MsgWait or MsgBye.
	MsgWant = "want"
	// MsgLease grants a set of task IDs under a lease ID.
	MsgLease = "lease"
	// MsgWait tells the worker nothing is leasable right now (the
	// in-flight window is full, or every remaining task is leased
	// elsewhere); retry after RetryMillis.
	MsgWait = "wait"
	// MsgResult streams one completed task upward, with the per-task
	// metrics delta riding along.
	MsgResult = "result"
	// MsgDone reports a lease fully executed; cumulative worker stats
	// ride along.
	MsgDone = "done"
	// MsgHeartbeat keeps the worker's leases alive while tasks run.
	MsgHeartbeat = "heartbeat"
	// MsgBye ends the session: the grid is complete (or Err explains the
	// rejection).
	MsgBye = "bye"
)

// WorkerStats is a worker's cumulative execution summary, piggybacked
// on done and heartbeat messages: route/flood cache counters, network
// builds and pooled channel reuse. The coordinator keeps the latest
// snapshot per worker and sums them into the sweep report — best-effort
// under worker death (a crashed worker's last snapshot stands in for
// its final one).
type WorkerStats struct {
	RouteHits     uint64  `json:"route_hits,omitempty"`
	RouteMisses   uint64  `json:"route_misses,omitempty"`
	FloodHits     uint64  `json:"flood_hits,omitempty"`
	FloodMisses   uint64  `json:"flood_misses,omitempty"`
	Networks      int     `json:"networks,omitempty"`
	Nodes         int64   `json:"nodes,omitempty"`
	BuildSeconds  float64 `json:"build_seconds,omitempty"`
	GraphBytes    int64   `json:"graph_bytes,omitempty"`
	HierBytes     int64   `json:"hier_bytes,omitempty"`
	ChannelBuilds uint64  `json:"channel_builds,omitempty"`
	// Network snapshot store counters (JSON-additive in protocol 1:
	// absent from workers running without a store — or without the
	// fields — and zero-valued either way).
	NetLoads       int     `json:"net_loads,omitempty"`
	NetLoadSeconds float64 `json:"net_load_seconds,omitempty"`
	NetStoreMisses uint64  `json:"net_store_misses,omitempty"`
	NetStoreBytes  int64   `json:"net_store_bytes,omitempty"`
}

// Msg is one protocol frame. Fields beyond Type are populated per the
// message-type constants above.
type Msg struct {
	Type string `json:"type"`

	// hello
	Proto int    `json:"proto,omitempty"`
	Name  string `json:"name,omitempty"`
	Slots int    `json:"slots,omitempty"`

	// spec
	Spec *sweep.Spec `json:"spec,omitempty"`

	// lease / done
	Lease int   `json:"lease,omitempty"`
	Tasks []int `json:"tasks,omitempty"`

	// result
	Result  *sweep.TaskResult  `json:"result,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// done / heartbeat
	Stats *WorkerStats `json:"stats,omitempty"`

	// wait
	RetryMillis int `json:"retry_ms,omitempty"`

	// bye
	Err string `json:"err,omitempty"`
}

// frameWriter serializes frames onto one connection. Multiple goroutines
// (a worker's result stream and its heartbeat ticker) share a
// connection, so every write goes through the mutex.
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (fw *frameWriter) send(m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode %s: %w", m.Type, err)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds the %d limit", m.Type, len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = fw.w.Write(payload)
	return err
}

// readMsg reads one frame. io.EOF surfaces unchanged so callers can
// distinguish a closed peer from a corrupt one.
func readMsg(r io.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("dist: frame length %d outside (0, %d]", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	var m Msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("dist: malformed frame: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("dist: frame carries no type")
	}
	return &m, nil
}
