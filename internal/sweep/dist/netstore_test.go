package dist

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"geogossip/internal/sweep"
)

// Workers sharing one snapshot store directory produce the reference
// output byte for byte, and a second session over the same store avoids
// every build — the coordinator's summed heartbeat stats report the
// loads.
func TestWorkersShareNetworkStore(t *testing.T) {
	spec := testSpec()
	_, wantBytes, _ := singleProcess(t, spec)
	dir := t.TempDir()

	session := func() (*Summary, []byte) {
		var buf bytes.Buffer
		addr, serveCh := serveAsync(t, context.Background(), spec, coordOpts(sweep.NewJSONL(&buf)))
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				err := Join(context.Background(), addr, WorkerOptions{
					Name:   fmt.Sprintf("w%d", i),
					Slots:  2,
					NetDir: dir,
				})
				if err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}(i)
		}
		sum := waitServe(t, serveCh)
		wg.Wait()
		return sum, buf.Bytes()
	}

	coldSum, coldBytes := session()
	if !bytes.Equal(coldBytes, wantBytes) {
		t.Error("cold shared-store session: sink differs from single-process reference")
	}
	if coldSum.Net.StoreMisses == 0 || coldSum.Net.StoreBytes <= 0 {
		t.Errorf("cold session reports no store traffic: %+v", coldSum.Net)
	}

	warmSum, warmBytes := session()
	if !bytes.Equal(warmBytes, wantBytes) {
		t.Error("warm shared-store session: sink differs from single-process reference")
	}
	if warmSum.Net.StoreMisses != 0 {
		t.Errorf("warm session still built %d network(s): %+v", warmSum.Net.StoreMisses, warmSum.Net)
	}
	if warmSum.Net.Loads == 0 || warmSum.Net.Loads != warmSum.Net.Networks {
		t.Errorf("warm session loads: %+v", warmSum.Net)
	}
	if !reflect.DeepEqual(coldSum.Results, warmSum.Results) {
		t.Error("cold and warm shared-store sessions disagree on results")
	}
}
