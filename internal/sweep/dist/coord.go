package dist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"geogossip/internal/obs"
	"geogossip/internal/routing"
	"geogossip/internal/sweep"
)

// CoordOptions configures Serve.
type CoordOptions struct {
	// Sink receives task results in canonical task-ID order — never in
	// completion order. A fresh distributed run therefore writes the
	// sink byte-identically to a single-process, single-worker sweep.
	// Nil discards the stream; Serve still returns collected results.
	Sink sweep.Sink
	// Resume carries results from a previous run of the same spec (a
	// restarted coordinator re-reads its sink through
	// sweep.ReadResults). They are validated against the current grid,
	// never re-leased, and never re-written to the sink.
	Resume []sweep.TaskResult
	// LeaseSize caps the tasks per lease. Zero sizes each lease to twice
	// the requesting worker's slot count.
	LeaseSize int
	// LeaseTimeout expires a lease whose worker has neither streamed a
	// result nor heartbeat within it; its unfinished tasks return to the
	// pending pool for deterministic re-issue (per-task seeds make the
	// re-execution bit-identical). Zero selects 30s.
	LeaseTimeout time.Duration
	// MaxBuffered bounds the in-flight window: no task is leased more
	// than MaxBuffered positions ahead of the canonical flush frontier,
	// so a slow worker holding an early lease can delay the sink but
	// never balloon the coordinator's out-of-order buffer. Zero selects
	// 4096.
	MaxBuffered int
	// RetryMillis is the backoff hint sent with MsgWait. Zero selects
	// 250.
	RetryMillis int
	// Linger is how long Serve waits after grid completion for connected
	// workers to ask once more and receive their bye. Zero selects 3s.
	Linger time.Duration
	// Progress, when non-nil, is called after every executed task with
	// the number done and the number scheduled (resumed tasks excluded,
	// like the local engine). Calls are serialized under the
	// coordinator's lock.
	Progress func(done, total int)
	// Obs, when non-nil, receives the coordinator's scheduling gauges:
	// connected workers, active leases, re-issues, buffered results,
	// per-worker task counts and heartbeat ages, plus the sweep-level
	// task gauges and scrape-time aggregated worker cache counters (the
	// same keys the local engine maintains, so /progress endpoints work
	// unchanged).
	Obs *obs.Registry
}

func (o CoordOptions) withDefaults() CoordOptions {
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	if o.MaxBuffered <= 0 {
		o.MaxBuffered = 4096
	}
	if o.RetryMillis <= 0 {
		o.RetryMillis = 250
	}
	if o.Linger <= 0 {
		o.Linger = 3 * time.Second
	}
	return o
}

// Summary is the coordinator's output.
type Summary struct {
	// Results lists every completed task (executed and resumed) in
	// canonical task-ID order. After a cancelled run it may extend past
	// the sink, which always holds a gap-free canonical prefix.
	Results []sweep.TaskResult
	// Metrics sums the per-task metric deltas of every accepted result —
	// bit-identical to the single-process SweepReport.Metrics for the
	// same executed task set, regardless of worker count or lease
	// re-issues (duplicates are discarded with their deltas).
	Metrics map[string]float64
	// Route and Net sum the workers' cache and construction stats
	// (best-effort under worker death: a crashed worker's last heartbeat
	// snapshot stands in). Distributed workers each build their own
	// networks, so Net.Networks counts builds across processes — higher
	// than a single-process run of the same grid.
	Route         routing.CacheStats
	Net           sweep.NetBuildStats
	ChannelBuilds uint64
	// Workers counts distinct worker sessions that completed hello;
	// Reissued counts leases that expired or died and went back to the
	// pool.
	Workers  int
	Reissued int
}

const (
	statePending uint8 = iota
	stateLeased
	stateDone
)

type lease struct {
	id    int
	tasks []int
	owner *workerConn
}

type workerConn struct {
	key      string
	conn     net.Conn
	fw       *frameWriter
	slots    int
	leases   map[int]*lease
	lastBeat time.Time
	done     int
	stats    WorkerStats
	deadline time.Time
}

type coordinator struct {
	opt   CoordOptions
	spec  sweep.Spec
	tasks []sweep.Task

	mu        sync.Mutex
	state     []uint8
	taskLease []int
	results   map[int]*sweep.TaskResult
	resumed   map[int]bool
	frontier  int // first task not yet flushed to the sink
	execDone  int // executed (non-resumed) completions
	execTotal int
	metrics   map[string]float64
	sinkErr   error

	workers     map[string]*workerConn
	gone        []WorkerStats // final stats of departed workers
	nextLease   int
	sessions    int
	reissued    int
	buffered    int
	finished    bool
	finishedCh  chan struct{}
	gaugeDone   *obs.Gauge
	gaugeLeases *obs.Gauge
	gaugeWkrs   *obs.Gauge
	gaugeBuf    *obs.Gauge
	gaugeReiss  *obs.Gauge
}

// Serve coordinates one distributed sweep on ln until every task of the
// grid is flushed (or ctx is cancelled / the sink fails), then returns
// the summary. Workers connect with Join. The listener is closed before
// Serve returns.
func Serve(ctx context.Context, ln net.Listener, spec sweep.Spec, opt CoordOptions) (*Summary, error) {
	opt = opt.withDefaults()
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tasks := spec.Expand()
	resumed, err := sweep.ValidateResume(tasks, opt.Resume)
	if err != nil {
		return nil, err
	}
	c := &coordinator{
		opt:        opt,
		spec:       spec,
		tasks:      tasks,
		state:      make([]uint8, len(tasks)),
		taskLease:  make([]int, len(tasks)),
		results:    make(map[int]*sweep.TaskResult),
		resumed:    resumed,
		metrics:    make(map[string]float64),
		workers:    make(map[string]*workerConn),
		finishedCh: make(chan struct{}),
		execTotal:  len(tasks) - len(resumed),
	}
	for _, r := range opt.Resume {
		r := r
		c.state[r.TaskID] = stateDone
		c.results[r.TaskID] = &r
	}
	c.registerObs()
	c.mu.Lock()
	c.advanceFrontier()
	c.mu.Unlock()

	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.handleConn(conn)
			}()
		}
	}()
	reaperDone := make(chan struct{})
	go c.reap(reaperDone)

	select {
	case <-ctx.Done():
	case <-c.finishedCh:
		// Give connected workers one more want→bye round trip before the
		// listener (and their connections) go away.
		drained := make(chan struct{})
		go func() { wg.Wait(); close(drained) }()
		select {
		case <-drained:
		case <-time.After(opt.Linger):
		case <-ctx.Done():
		}
	}
	ln.Close()
	close(reaperDone)
	c.mu.Lock()
	for _, w := range c.workers {
		w.conn.Close()
	}
	c.mu.Unlock()
	wg.Wait()

	sum := c.summary()
	if c.sinkErr != nil {
		return sum, c.sinkErr
	}
	if err := ctx.Err(); err != nil && !c.isFinished() {
		return sum, err
	}
	return sum, nil
}

func (c *coordinator) isFinished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished
}

func (c *coordinator) registerObs() {
	reg := c.opt.Obs
	if reg == nil {
		return
	}
	reg.Gauge(obs.MetricSweepTasksTotal,
		"Tasks scheduled in the current sweep run.").Set(float64(c.execTotal))
	c.gaugeDone = reg.Gauge(obs.MetricSweepTasksDone,
		"Tasks completed in the current sweep run.")
	c.gaugeDone.Set(0)
	c.gaugeWkrs = reg.Gauge(obs.MetricDistWorkers,
		"Worker processes currently connected to the sweep coordinator.")
	c.gaugeLeases = reg.Gauge(obs.MetricDistLeasesActive,
		"Task leases currently held by workers.")
	c.gaugeBuf = reg.Gauge(obs.MetricDistBufferedResults,
		"Completed results buffered ahead of the canonical flush frontier.")
	c.gaugeReiss = reg.Gauge(obs.MetricDistLeasesReissued,
		"Leases returned to the pool after worker death or heartbeat timeout.")
	reg.OnScrape(func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		now := time.Now()
		var s WorkerStats
		for _, g := range c.gone {
			s.add(g)
		}
		for _, w := range c.workers {
			s.add(w.stats)
			reg.Gauge(obs.MetricDistWorkerTasksDone,
				"Tasks completed, by worker.", "worker", w.key).Set(float64(w.done))
			reg.Gauge(obs.MetricDistHeartbeatAge,
				"Seconds since each worker's last message.", "worker", w.key).Set(now.Sub(w.lastBeat).Seconds())
		}
		help := "Route/flood cache lookups of the current sweep run, by kind and result (scrape-time snapshot)."
		reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "route", "result", "hit").Set(float64(s.RouteHits))
		reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "route", "result", "miss").Set(float64(s.RouteMisses))
		reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "flood", "result", "hit").Set(float64(s.FloodHits))
		reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "flood", "result", "miss").Set(float64(s.FloodMisses))
		reg.Gauge(obs.MetricChannelPoolBuilds,
			"Radio channels served from pooled worker state instead of fresh allocations (scrape-time snapshot).").Set(float64(s.ChannelBuilds))
		reg.Gauge(obs.MetricNetstoreHits,
			"Networks loaded from snapshot stores across the fleet instead of being rebuilt (scrape-time snapshot).").Set(float64(s.NetLoads))
		reg.Gauge(obs.MetricNetstoreMisses,
			"Network store misses across the fleet that fell back to a fresh build (scrape-time snapshot).").Set(float64(s.NetStoreMisses))
		reg.Gauge(obs.MetricNetstoreStoredBytes,
			"Snapshot bytes persisted to network stores across the fleet (scrape-time snapshot).").Set(float64(s.NetStoreBytes))
		reg.Gauge(obs.MetricNetstoreLoadSeconds,
			"Cumulative wall-clock spent loading network snapshots across the fleet (scrape-time snapshot).").Set(s.NetLoadSeconds)
	})
}

func (s *WorkerStats) add(o WorkerStats) {
	s.RouteHits += o.RouteHits
	s.RouteMisses += o.RouteMisses
	s.FloodHits += o.FloodHits
	s.FloodMisses += o.FloodMisses
	s.Networks += o.Networks
	s.Nodes += o.Nodes
	s.BuildSeconds += o.BuildSeconds
	s.GraphBytes += o.GraphBytes
	s.HierBytes += o.HierBytes
	s.ChannelBuilds += o.ChannelBuilds
	s.NetLoads += o.NetLoads
	s.NetLoadSeconds += o.NetLoadSeconds
	s.NetStoreMisses += o.NetStoreMisses
	s.NetStoreBytes += o.NetStoreBytes
}

func (c *coordinator) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	fw := &frameWriter{w: conn}
	hello, err := readMsg(br)
	if err != nil || hello.Type != MsgHello {
		return
	}
	if hello.Proto != ProtocolVersion {
		_ = fw.send(&Msg{Type: MsgBye, Err: fmt.Sprintf("dist: coordinator speaks protocol %d, worker %d", ProtocolVersion, hello.Proto)})
		return
	}
	w := c.register(conn, fw, hello)
	defer c.unregister(w)
	if err := fw.send(&Msg{Type: MsgSpec, Spec: &c.spec}); err != nil {
		return
	}
	for {
		m, err := readMsg(br)
		if err != nil {
			return
		}
		c.refresh(w)
		switch m.Type {
		case MsgWant:
			reply := c.grant(w)
			if err := fw.send(reply); err != nil {
				return
			}
			if reply.Type == MsgBye {
				return
			}
		case MsgResult:
			if m.Result == nil {
				return
			}
			c.accept(w, m.Result, m.Metrics)
		case MsgDone:
			c.leaseDone(w, m.Lease, m.Stats)
		case MsgHeartbeat:
			c.noteStats(w, m.Stats)
		default:
			return
		}
	}
}

func (c *coordinator) register(conn net.Conn, fw *frameWriter, hello *Msg) *workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := hello.Name
	if key == "" {
		key = conn.RemoteAddr().String()
	}
	if _, taken := c.workers[key]; taken {
		key = fmt.Sprintf("%s@%s", key, conn.RemoteAddr())
	}
	slots := hello.Slots
	if slots <= 0 {
		slots = 1
	}
	w := &workerConn{
		key:      key,
		conn:     conn,
		fw:       fw,
		slots:    slots,
		leases:   make(map[int]*lease),
		lastBeat: time.Now(),
	}
	c.workers[key] = w
	c.sessions++
	if c.gaugeWkrs != nil {
		c.gaugeWkrs.Set(float64(len(c.workers)))
	}
	return w
}

func (c *coordinator) unregister(w *workerConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(w)
	delete(c.workers, w.key)
	c.gone = append(c.gone, w.stats)
	if c.gaugeWkrs != nil {
		c.gaugeWkrs.Set(float64(len(c.workers)))
	}
}

// releaseLocked returns every unfinished task of w's leases to the
// pending pool. Callers hold c.mu.
func (c *coordinator) releaseLocked(w *workerConn) {
	for id, l := range w.leases {
		for _, t := range l.tasks {
			if c.state[t] == stateLeased && c.taskLease[t] == l.id {
				c.state[t] = statePending
			}
		}
		delete(w.leases, id)
		c.reissued++
	}
	c.updateLeaseGauges()
}

func (c *coordinator) updateLeaseGauges() {
	if c.gaugeLeases == nil {
		return
	}
	active := 0
	for _, w := range c.workers {
		active += len(w.leases)
	}
	c.gaugeLeases.Set(float64(active))
	c.gaugeReiss.Set(float64(c.reissued))
	c.gaugeBuf.Set(float64(c.buffered))
}

// refresh marks the worker alive and extends its lease deadline.
func (c *coordinator) refresh(w *workerConn) {
	c.mu.Lock()
	w.lastBeat = time.Now()
	w.deadline = w.lastBeat.Add(c.opt.LeaseTimeout)
	c.mu.Unlock()
}

func (c *coordinator) noteStats(w *workerConn, s *WorkerStats) {
	if s == nil {
		return
	}
	c.mu.Lock()
	w.stats = *s
	c.mu.Unlock()
}

// grant builds the reply to a want: a lease of pending task IDs inside
// the in-flight window, a wait when nothing is leasable right now, or a
// bye when the grid is complete (or the run failed).
func (c *coordinator) grant(w *workerConn) *Msg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.sinkErr != nil {
		return &Msg{Type: MsgBye, Err: errString(c.sinkErr)}
	}
	size := c.opt.LeaseSize
	if size <= 0 {
		size = 2 * w.slots
	}
	hi := c.frontier + c.opt.MaxBuffered
	if hi > len(c.tasks) {
		hi = len(c.tasks)
	}
	var ids []int
	for t := c.frontier; t < hi && len(ids) < size; t++ {
		if c.state[t] == statePending {
			ids = append(ids, t)
		}
	}
	if len(ids) == 0 {
		return &Msg{Type: MsgWait, RetryMillis: c.opt.RetryMillis}
	}
	c.nextLease++
	l := &lease{id: c.nextLease, tasks: ids, owner: w}
	for _, t := range ids {
		c.state[t] = stateLeased
		c.taskLease[t] = l.id
	}
	w.leases[l.id] = l
	w.deadline = time.Now().Add(c.opt.LeaseTimeout)
	c.updateLeaseGauges()
	return &Msg{Type: MsgLease, Lease: l.id, Tasks: ids}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// accept folds one streamed result in. Duplicates — a task finished by
// two workers after a lease re-issue — are discarded along with their
// metric deltas, which keeps both the sink and the summed metrics
// bit-identical to a single-process run.
func (c *coordinator) accept(w *workerConn, r *sweep.TaskResult, delta map[string]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.TaskID < 0 || r.TaskID >= len(c.tasks) || c.state[r.TaskID] == stateDone {
		return
	}
	c.state[r.TaskID] = stateDone
	c.results[r.TaskID] = r
	c.buffered++
	for k, v := range delta {
		c.metrics[k] += v
	}
	c.execDone++
	w.done++
	if c.gaugeDone != nil {
		c.gaugeDone.Set(float64(c.execDone))
	}
	c.advanceFrontier()
	c.updateLeaseGauges()
	if c.opt.Progress != nil {
		c.opt.Progress(c.execDone, c.execTotal)
	}
}

// advanceFrontier flushes buffered results to the sink in canonical
// order. Callers hold c.mu.
func (c *coordinator) advanceFrontier() {
	for c.frontier < len(c.tasks) && c.state[c.frontier] == stateDone {
		if !c.resumed[c.frontier] {
			c.buffered--
			if c.opt.Sink != nil && c.sinkErr == nil {
				if err := c.opt.Sink.Write(*c.results[c.frontier]); err != nil {
					c.sinkErr = fmt.Errorf("dist: sink: %w", err)
					c.finishLocked()
					return
				}
			}
		}
		c.frontier++
	}
	if c.frontier == len(c.tasks) {
		c.finishLocked()
	}
}

func (c *coordinator) finishLocked() {
	if !c.finished {
		c.finished = true
		close(c.finishedCh)
	}
}

func (c *coordinator) leaseDone(w *workerConn, id int, s *WorkerStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s != nil {
		w.stats = *s
	}
	l, ok := w.leases[id]
	if !ok {
		return // expired and re-issued; its tasks are someone else's now
	}
	// Any task of the lease the worker never reported (it skipped or
	// lost it) goes back to pending rather than leaking.
	for _, t := range l.tasks {
		if c.state[t] == stateLeased && c.taskLease[t] == l.id {
			c.state[t] = statePending
		}
	}
	delete(w.leases, id)
	c.updateLeaseGauges()
}

// reap expires the leases of workers that have gone silent: connected
// but without any message for LeaseTimeout (worker death usually shows
// up as a closed connection first; the timeout catches hung processes
// and half-dead links).
func (c *coordinator) reap(done <-chan struct{}) {
	interval := c.opt.LeaseTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			c.mu.Lock()
			for _, w := range c.workers {
				if len(w.leases) > 0 && now.After(w.deadline) {
					c.releaseLocked(w)
					// The connection may still be alive; results it sends
					// later are judged per task (accepted if the task is
					// still open, discarded as duplicates otherwise).
				}
			}
			c.mu.Unlock()
		}
	}
}

func (c *coordinator) summary() *Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := &Summary{
		Metrics:  c.metrics,
		Workers:  c.sessions,
		Reissued: c.reissued,
	}
	var s WorkerStats
	for _, g := range c.gone {
		s.add(g)
	}
	for _, w := range c.workers {
		s.add(w.stats)
	}
	sum.Route = routing.CacheStats{
		RouteHits: s.RouteHits, RouteMisses: s.RouteMisses,
		FloodHits: s.FloodHits, FloodMisses: s.FloodMisses,
	}
	sum.Net = sweep.NetBuildStats{
		Networks:    s.Networks,
		Loads:       s.NetLoads,
		Nodes:       s.Nodes,
		BuildTime:   time.Duration(s.BuildSeconds * float64(time.Second)),
		LoadTime:    time.Duration(s.NetLoadSeconds * float64(time.Second)),
		GraphBytes:  s.GraphBytes,
		HierBytes:   s.HierBytes,
		StoreMisses: s.NetStoreMisses,
		StoreBytes:  s.NetStoreBytes,
	}
	sum.ChannelBuilds = s.ChannelBuilds
	ids := make([]int, 0, len(c.results))
	for id := range c.results {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		sum.Results = append(sum.Results, *c.results[id])
	}
	return sum
}
