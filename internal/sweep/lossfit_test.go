package sweep

import (
	"context"
	"strings"
	"testing"
)

func TestSpatialFaultModelCanonicalization(t *testing.T) {
	spec := Spec{Algorithms: []string{AlgoBoyd}, Ns: []int{64},
		FaultModels: []string{"jam:.5/.5/.2/.9", "cut:1/0/.5/100/200", "hubchurn:5e3/0/8"}}
	got := spec.Normalized().FaultModels
	want := []string{"jam:0.5/0.5/0.2/0.9", "cut:1/0/0.5/100/200", "hubchurn:5000/0/8"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSpatialFaultAxisEndToEnd(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd},
		Ns:          []int{96},
		TargetErr:   5e-2,
		FaultModels: []string{"jam:0.5/0.5/0.25/0.9", "mjam:0.5/0.5/0.2/0.8/0.0001/0.00007", "cut:1/0/0.5/0/20000"},
	}
	results, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("task %d (%s) failed: %s", r.TaskID, r.FaultModel, r.Error)
		}
		if !r.Converged {
			t.Errorf("task %d (%s) did not converge (err %v)", r.TaskID, r.FaultModel, r.FinalErr)
		}
	}
}

// TestRepChurnAxisErrorsPerTask: a rep-targeted entry crossed with a
// hierarchy-less algorithm records a per-task error instead of sinking
// the sweep.
func TestRepChurnAxisErrorsPerTask(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd, AlgoAffine},
		Ns:          []int{96},
		TargetErr:   5e-2,
		FaultModels: []string{"repchurn:50000/10000"},
	}
	results, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		switch r.Algorithm {
		case AlgoBoyd:
			if r.Error == "" || !strings.Contains(r.Error, "hierarchy") {
				t.Fatalf("boyd × repchurn: error %q, want a no-hierarchy failure", r.Error)
			}
		case AlgoAffine:
			if r.Error != "" {
				t.Fatalf("affine × repchurn failed: %s", r.Error)
			}
		}
	}
}

func TestLossFitsAcrossFaultGrid(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd},
		Ns:          []int{96, 128},
		Seeds:       2,
		TargetErr:   5e-2,
		FaultModels: []string{"", "bernoulli:0.2", "bernoulli:0.4"},
	}
	results, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := Aggregate(results)
	if len(sum.LossFits) != 2 { // one line per network size
		t.Fatalf("got %d loss fits, want 2: %+v", len(sum.LossFits), sum.LossFits)
	}
	for _, f := range sum.LossFits {
		if f.Points != 3 {
			t.Fatalf("fit over %d cells, want 3", f.Points)
		}
		if f.Exponent <= 0 {
			t.Fatalf("cost-vs-loss exponent %v not positive: loss must make boyd more expensive", f.Exponent)
		}
		if f.Constant <= 0 {
			t.Fatalf("fit constant %v not positive", f.Constant)
		}
	}
}

func TestLossFitsAbsentWithoutLossAxis(t *testing.T) {
	spec := Spec{Algorithms: []string{AlgoBoyd}, Ns: []int{96}, TargetErr: 5e-2}
	results, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fits := Aggregate(results).LossFits; len(fits) != 0 {
		t.Fatalf("loss fits produced without a loss axis: %+v", fits)
	}
}

func TestEffectiveLossFoldsFieldContent(t *testing.T) {
	// The loss content of a jamming field (loss × area × duty) counts
	// toward the fitted loss axis.
	p, ok := effectiveLoss(CellKey{FaultModel: "jam:0.5/0.5/0.2/1"})
	if !ok {
		t.Fatal("jam cell excluded from loss fitting")
	}
	if p <= 0 || p >= 0.2 {
		t.Fatalf("disk mean loss %v implausible (area π·0.04 ≈ 0.126)", p)
	}
	if p2, ok := effectiveLoss(CellKey{LossRate: 0.3}); !ok || p2 != 0.3 {
		t.Fatalf("plain loss-rate cell resolved to %v, %v", p2, ok)
	}
	if _, ok := effectiveLoss(CellKey{FaultModel: "not-a-spec"}); ok {
		t.Fatal("unparsable fault model included in loss fitting")
	}
	// Structural faults are not loss rates; their cells stay out of the
	// fit rather than pinning a huge cost at p = 0.
	if _, ok := effectiveLoss(CellKey{FaultModel: "cut:1/0/0.5/0/20000"}); ok {
		t.Fatal("cut cell included in loss fitting")
	}
	if _, ok := effectiveLoss(CellKey{FaultModel: "bernoulli:0.2+churn:5000/0"}); ok {
		t.Fatal("churn cell included in loss fitting")
	}
	// One-shot windows have no rate: their active fraction depends on the
	// run length, so fitting them at the always-on loss would bias q.
	if _, ok := effectiveLoss(CellKey{FaultModel: "jam:0.5/0.5/0.2/1/100/40000"}); ok {
		t.Fatal("one-shot-window field included in loss fitting")
	}
	// Periodic fields have a genuine duty cycle and stay in.
	if _, ok := effectiveLoss(CellKey{FaultModel: "jam:0.5/0.5/0.2/1/0/100/1000"}); !ok {
		t.Fatal("periodic field excluded from loss fitting")
	}
}
