package sweep

import (
	"runtime"

	"geogossip/internal/netstore"
	"geogossip/internal/obs"
	"geogossip/internal/routing"
)

// Executor runs individual tasks of an expanded grid with the same
// pooled-state discipline as Run's worker pool: one shared network/route
// cache across all slots, one reusable engine run state per slot. It is
// the execution face the distributed worker (internal/sweep/dist)
// threads its leases through — a worker process keeps one Executor for
// its whole session, so consecutive leases over the same (n, seed)
// cells reuse the already-built networks and warmed route caches.
//
// Each slot carries a private metrics registry, so Execute can report
// the exact per-task delta of every Flatten counter: the distributed
// coordinator sums accepted deltas and reproduces the single-process
// SweepReport.Metrics bit-identically, even when a task ran twice after
// a lease re-issue (duplicates are discarded with their deltas).
type Executor struct {
	cache *netCache
	slots []*execSlot
}

type execSlot struct {
	states *runStates
	reg    *obs.Registry
	prev   map[string]float64
}

// NewExecutor returns an executor with the given number of slots
// (zero selects GOMAXPROCS), per-network construction parallelism
// (see Options.BuildWorkers), and an optional network snapshot store
// (see Options.NetStore; nil builds every network).
func NewExecutor(slots, buildWorkers int, store *netstore.Store) *Executor {
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	e := &Executor{cache: newNetCache()}
	e.cache.buildWorkers = buildWorkers
	e.cache.store = store
	for i := 0; i < slots; i++ {
		reg := obs.NewRegistry()
		e.slots = append(e.slots, &execSlot{states: &runStates{reg: reg}, reg: reg})
	}
	return e
}

// Slots returns the executor's slot count — the number of tasks it can
// run concurrently.
func (e *Executor) Slots() int { return len(e.slots) }

// Execute runs one task on the given slot's pooled state and returns
// its result together with the task's metrics delta: every Flatten key
// the slot's registry carries, valued by how much this task moved it
// (zero-valued keys are included, so summed deltas reproduce a
// registry's full key set). Distinct slots may execute concurrently; a
// single slot must not.
func (e *Executor) Execute(slot int, t Task) (TaskResult, map[string]float64) {
	s := e.slots[slot]
	if s.prev == nil {
		s.prev = s.reg.Flatten()
	}
	r := executeWith(t, e.cache, s.states)
	cur := s.reg.Flatten()
	delta := make(map[string]float64, len(cur))
	for k, v := range cur {
		delta[k] = v - s.prev[k]
	}
	s.prev = cur
	return r, delta
}

// RouteStats reports the executor's accumulated route/flood cache
// counters across every network it has built.
func (e *Executor) RouteStats() routing.CacheStats { return e.cache.routeStats() }

// NetStats reports the executor's network-construction summary.
func (e *Executor) NetStats() NetBuildStats { return e.cache.netStats() }

// ChannelBuilds reports the pooled channel builds served across the
// executor's slots.
func (e *Executor) ChannelBuilds() uint64 {
	var total uint64
	for _, s := range e.slots {
		total += s.states.channelBuilds()
	}
	return total
}
