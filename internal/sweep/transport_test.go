package sweep

import (
	"context"
	"strings"
	"testing"
)

func TestTransportAxisExpansion(t *testing.T) {
	spec := Spec{
		Algorithms: []string{AlgoBoyd, AlgoPushSum},
		Ns:         []int{64},
		Transports: []string{"", "arq:2/1/2", "delay:exp/0.5"},
	}
	if got, want := spec.TaskCount(), 2*3; got != want {
		t.Fatalf("TaskCount = %d, want %d", got, want)
	}
	seen := map[string]int{}
	for _, task := range spec.Expand() {
		seen[task.Algorithm+"|"+task.Transport]++
	}
	if len(seen) != 6 {
		t.Fatalf("expansion covered %d (algorithm, transport) pairs, want 6: %v", len(seen), seen)
	}
}

func TestTransportAxisCanonicalization(t *testing.T) {
	spec := Spec{
		Algorithms: []string{AlgoBoyd},
		Ns:         []int{64},
		Transports: []string{"perfect", "arq:2/1.0/2", "delay:fixed/.5"},
	}
	norm := spec.Normalized()
	want := []string{"", "arq:2/1/2", "delay:fixed/0.5"}
	if len(norm.Transports) != len(want) {
		t.Fatalf("normalized transports %v, want %v", norm.Transports, want)
	}
	for i := range want {
		if norm.Transports[i] != want[i] {
			t.Fatalf("normalized transports %v, want %v", norm.Transports, want)
		}
	}
	// An omitted axis defaults to the single transport-free entry.
	bare := Spec{Algorithms: []string{AlgoBoyd}, Ns: []int{64}}.Normalized()
	if len(bare.Transports) != 1 || bare.Transports[0] != "" {
		t.Fatalf("defaulted transports %v, want [\"\"]", bare.Transports)
	}
}

// TestTransportSeedBackCompat: an empty transport folds nothing into the
// run seed, so grids without the axis keep their derived seeds — and
// their results — unchanged; non-empty transports get distinct seeds.
func TestTransportSeedBackCompat(t *testing.T) {
	base := Task{Algorithm: AlgoBoyd, N: 128, BaseSeed: 1, FaultModel: "bernoulli:0.1"}
	withARQ := base
	withARQ.Transport = "arq:2/1/2"
	if base.runSeed() == withARQ.runSeed() {
		t.Fatal("transport did not change the run seed")
	}
	other := base
	other.Transport = "arq:3/1/2"
	if withARQ.runSeed() == other.runSeed() {
		t.Fatal("distinct transports derived the same run seed")
	}
}

func TestTransportAxisValidation(t *testing.T) {
	lossy := Spec{
		Algorithms: []string{AlgoBoyd},
		Ns:         []int{64},
		Transports: []string{"bernoulli:0.2"},
	}
	err := lossy.Normalized().Validate()
	if err == nil {
		t.Fatal("loss model accepted on the transport axis")
	}
	crossed := Spec{
		Algorithms:  []string{AlgoBoyd},
		Ns:          []int{64},
		FaultModels: []string{"ge:0.05/0.2/0.01/0.6+arq:2/1/2"},
		Transports:  []string{"", "delay:exp/0.5"},
	}
	err = crossed.Normalized().Validate()
	if err == nil {
		t.Fatal("transport axis crossed with a transport-carrying fault model validated")
	}
	if !strings.Contains(err.Error(), "transport") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Plain fault models compose with the transport axis; a fault model
	// may carry transport components when the axis is absent.
	for _, good := range []Spec{
		{
			Algorithms:  []string{AlgoBoyd},
			Ns:          []int{64},
			FaultModels: []string{"", "ge:0.05/0.2/0.01/0.6"},
			Transports:  []string{"", "delay:exp/0.5+arq:2/1/2"},
		},
		{
			Algorithms:  []string{AlgoBoyd},
			Ns:          []int{64},
			FaultModels: []string{"bernoulli:0.1+arq:2/1/2"},
		},
	} {
		if err := good.Normalized().Validate(); err != nil {
			t.Fatalf("good spec rejected: %v", err)
		}
	}
}

func TestTransportExecuteEndToEnd(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd, AlgoAffine},
		Ns:          []int{64},
		TargetErr:   5e-2,
		FaultModels: []string{"bernoulli:0.1"},
		Transports:  []string{"", "delay:exp/0.3+arq:2/1/2"},
	}
	results, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != spec.TaskCount() {
		t.Fatalf("got %d results, want %d", len(results), spec.TaskCount())
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("task %d (%s, transport %q) failed: %s", r.TaskID, r.Algorithm, r.Transport, r.Error)
		}
		if r.Transport == "" {
			if r.SimSeconds != 0 {
				t.Fatalf("transport-free task %d reports sim time %v", r.TaskID, r.SimSeconds)
			}
			continue
		}
		if r.SimSeconds <= 0 {
			t.Fatalf("transport task %d (%s) reports no sim time", r.TaskID, r.Algorithm)
		}
	}

	// The transport-free lane must be unchanged by adding the axis: same
	// seeds, same results as a grid that never mentioned transports.
	plain := spec
	plain.Transports = nil
	baseline, err := Run(context.Background(), plain, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[string]TaskResult{}
	for _, r := range results {
		if r.Transport == "" {
			byAlgo[r.Algorithm] = r
		}
	}
	for _, want := range baseline {
		got, ok := byAlgo[want.Algorithm]
		if !ok {
			t.Fatalf("no transport-free result for %s", want.Algorithm)
		}
		if got.Transmissions != want.Transmissions || got.FinalErr != want.FinalErr || got.Converged != want.Converged {
			t.Fatalf("%s: transport axis perturbed the transport-free lane:\n have %+v\n want %+v",
				want.Algorithm, got, want)
		}
	}

	// Aggregation keys cells by transport and carries the sim-time
	// distribution only where the axis is live.
	sum := Aggregate(results)
	if len(sum.Cells) != 4 {
		t.Fatalf("aggregation built %d cells, want 4", len(sum.Cells))
	}
	for _, c := range sum.Cells {
		if c.Transport == "" && c.SimSeconds != nil {
			t.Fatalf("transport-free cell %+v carries a sim-time distribution", c.CellKey)
		}
		if c.Transport != "" && (c.SimSeconds == nil || c.SimSeconds.Mean <= 0) {
			t.Fatalf("transport cell %+v missing its sim-time distribution", c.CellKey)
		}
	}
}

// TestResumeDetectsTransportMismatch: a resumed result whose transport
// disagrees with the current grid is a different spec, not a silent
// merge.
func TestResumeDetectsTransportMismatch(t *testing.T) {
	spec := Spec{
		Algorithms: []string{AlgoBoyd},
		Ns:         []int{64},
		TargetErr:  5e-2,
		Transports: []string{"arq:2/1/2"},
	}
	tasks := spec.Normalized().Expand()
	prior := TaskResult{
		TaskID:           0,
		Algorithm:        AlgoBoyd,
		N:                64,
		Transport:        "arq:9/1/2", // disagrees with the grid
		TargetErr:        tasks[0].TargetErr,
		MaxTicks:         tasks[0].MaxTicks,
		RadiusMultiplier: tasks[0].RadiusMultiplier,
		Field:            tasks[0].Field,
		RunSeed:          tasks[0].runSeed(),
	}
	if _, err := Run(context.Background(), spec, Options{Resume: []TaskResult{prior}}); err == nil {
		t.Fatal("transport mismatch on resume accepted")
	}
}
