package sweep

import (
	"bytes"
	"compress/gzip"
	"context"
	"reflect"
	"testing"
)

// gzip sinks must round-trip through the transparent ReadResults
// detection, including the multi-member form a resumed -gzip run
// appends.
func TestGzipSinkRoundTrip(t *testing.T) {
	spec := smallSpec()
	var plain bytes.Buffer
	results, err := Run(context.Background(), spec, Options{Workers: 1, Sink: NewJSONL(&plain)})
	if err != nil {
		t.Fatal(err)
	}

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResults(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatalf("reading gzip sink: %v", err)
	}
	if !reflect.DeepEqual(got, results) {
		t.Error("gzip round trip changed the results")
	}

	// Multi-member: a resumed run rewrites the recovered prefix as one
	// member and appends new results as another.
	var multi bytes.Buffer
	half := len(results) / 2
	for _, part := range [][]TaskResult{results[:half], results[half:]} {
		zw := gzip.NewWriter(&multi)
		enc := NewJSONL(zw)
		for _, r := range part {
			if err := enc.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err = ReadResults(bytes.NewReader(multi.Bytes()))
	if err != nil {
		t.Fatalf("reading multi-member gzip sink: %v", err)
	}
	if !reflect.DeepEqual(got, results) {
		t.Error("multi-member gzip read changed the results")
	}
}

// A -gzip run killed mid-write leaves a stream cut inside a deflate
// block; ReadResults must yield every complete line before the cut,
// like the plain-JSONL truncated-final-line tolerance.
func TestGzipTruncatedStreamTolerated(t *testing.T) {
	spec := smallSpec()
	var plain bytes.Buffer
	results, err := Run(context.Background(), spec, Options{Workers: 1, Sink: NewJSONL(&plain)})
	if err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Flush (not Close) then cut: the tail of the stream — and with it
	// the final lines — is unrecoverable, mimicking a killed process.
	if err := zw.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := gz.Bytes()[:gz.Len()*2/3]
	got, err := ReadResults(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("reading truncated gzip sink: %v", err)
	}
	if len(got) == 0 || len(got) >= len(results) {
		t.Fatalf("truncated stream yielded %d of %d results; want a non-empty strict prefix", len(got), len(results))
	}
	if !reflect.DeepEqual(got, results[:len(got)]) {
		t.Error("recovered prefix differs from the original results")
	}
}

// An undecodable tail after a complete member — a partial second-member
// header from a killed resumed run, or zero padding — must read like a
// clean end of stream, not a hard error.
func TestGzipGarbageTailTolerated(t *testing.T) {
	spec := smallSpec()
	var plain bytes.Buffer
	results, err := Run(context.Background(), spec, Options{Workers: 1, Sink: NewJSONL(&plain)})
	if err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	for name, tail := range map[string][]byte{
		"zero padding":   make([]byte, 300),
		"partial header": {0x1f, 0x8b, 8},
	} {
		withTail := append(append([]byte(nil), gz.Bytes()...), tail...)
		got, err := ReadResults(bytes.NewReader(withTail))
		if err != nil {
			t.Fatalf("%s after a complete member: %v", name, err)
		}
		if !reflect.DeepEqual(got, results) {
			t.Errorf("%s: recovered results differ from the original", name)
		}
	}
}
