package sweep

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives task results as they complete. The engine serializes
// calls, but implementations guard their own state anyway so a sink can
// be shared between concurrent sweeps.
type Sink interface {
	Write(TaskResult) error
}

// JSONL streams one JSON object per line. Lines are self-describing
// (they carry the task ID and full coordinates), so a file sorted by
// task ID is byte-identical regardless of the worker count that
// produced it, and an interrupted file can seed a resumed run via
// ReadCompleted.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Write implements Sink.
func (s *JSONL) Write(r TaskResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(r)
}

// Collector accumulates results in memory (the test sink).
type Collector struct {
	mu      sync.Mutex
	results []TaskResult
}

// Write implements Sink.
func (c *Collector) Write(r TaskResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = append(c.results, r)
	return nil
}

// Results returns a copy of the collected results in arrival order.
func (c *Collector) Results() []TaskResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TaskResult(nil), c.results...)
}

// ReadCompleted scans JSONL sweep output and returns the set of task IDs
// that already have a result — the Skip set for a resumed run. A
// truncated final line (the signature of a killed run) is tolerated;
// malformed content anywhere else is an error.
func ReadCompleted(r io.Reader) (map[int]bool, error) {
	results, err := ReadResults(r)
	if err != nil {
		return nil, err
	}
	done := make(map[int]bool, len(results))
	for _, res := range results {
		done[res.TaskID] = true
	}
	return done, nil
}

// ReadResults parses JSONL sweep output back into task results, in file
// order. Gzip-compressed streams (the -gzip / .jsonl.gz sink form) are
// detected by their magic bytes and decompressed transparently. Like
// ReadCompleted it tolerates a truncated final line from a killed run —
// including a gzip stream cut mid-block, whose undecodable tail maps to
// the same forgivable final partial line; malformed content anywhere
// else is an error.
func ReadResults(r io.Reader) ([]TaskResult, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := newGzipMembers(br)
		if err != nil {
			return nil, fmt.Errorf("sweep: gzip sink: %w", err)
		}
		r = zr
	} else {
		r = br
	}
	var out []TaskResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			return nil, pendingErr
		}
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var res TaskResult
		if err := json.Unmarshal(text, &res); err != nil {
			// Defer the error one line: only a malformed *final* line is
			// forgivable.
			pendingErr = fmt.Errorf("sweep: malformed result on line %d: %w", line, err)
			continue
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// gzipMembers reads a sequence of gzip members — the multi-member form
// a resumed -gzip run appends — and treats any undecodable tail as
// end-of-input: a member cut mid-block (ErrUnexpectedEOF) or a partial
// next-member header left by a killed run both map to the same
// forgivable truncation as a plain-JSONL partial final line. The first
// member's header must be valid (that is how the caller detected gzip at
// all); only what follows completed data is forgiven.
type gzipMembers struct {
	br   *bufio.Reader
	zr   *gzip.Reader
	done bool
}

func newGzipMembers(br *bufio.Reader) (*gzipMembers, error) {
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, err
	}
	zr.Multistream(false)
	return &gzipMembers{br: br, zr: zr}, nil
}

func (g *gzipMembers) Read(p []byte) (int, error) {
	for {
		if g.done {
			return 0, io.EOF
		}
		n, err := g.zr.Read(p)
		switch err {
		case nil:
			return n, nil
		case io.EOF:
			// Member finished cleanly; step to the next one. A Reset error
			// is either the true end of the file or an undecodable tail —
			// both end the stream.
			if g.zr.Reset(g.br) != nil {
				g.done = true
			} else {
				g.zr.Multistream(false)
			}
			if n > 0 {
				return n, nil
			}
		case io.ErrUnexpectedEOF:
			g.done = true
			return n, io.EOF
		default:
			return n, err
		}
	}
}
