package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives task results as they complete. The engine serializes
// calls, but implementations guard their own state anyway so a sink can
// be shared between concurrent sweeps.
type Sink interface {
	Write(TaskResult) error
}

// JSONL streams one JSON object per line. Lines are self-describing
// (they carry the task ID and full coordinates), so a file sorted by
// task ID is byte-identical regardless of the worker count that
// produced it, and an interrupted file can seed a resumed run via
// ReadCompleted.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Write implements Sink.
func (s *JSONL) Write(r TaskResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(r)
}

// Collector accumulates results in memory (the test sink).
type Collector struct {
	mu      sync.Mutex
	results []TaskResult
}

// Write implements Sink.
func (c *Collector) Write(r TaskResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = append(c.results, r)
	return nil
}

// Results returns a copy of the collected results in arrival order.
func (c *Collector) Results() []TaskResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TaskResult(nil), c.results...)
}

// ReadCompleted scans JSONL sweep output and returns the set of task IDs
// that already have a result — the Skip set for a resumed run. A
// truncated final line (the signature of a killed run) is tolerated;
// malformed content anywhere else is an error.
func ReadCompleted(r io.Reader) (map[int]bool, error) {
	results, err := ReadResults(r)
	if err != nil {
		return nil, err
	}
	done := make(map[int]bool, len(results))
	for _, res := range results {
		done[res.TaskID] = true
	}
	return done, nil
}

// ReadResults parses JSONL sweep output back into task results, in file
// order. Like ReadCompleted it tolerates a truncated final line from a
// killed run; malformed content anywhere else is an error.
func ReadResults(r io.Reader) ([]TaskResult, error) {
	var out []TaskResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			return nil, pendingErr
		}
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var res TaskResult
		if err := json.Unmarshal(text, &res); err != nil {
			// Defer the error one line: only a malformed *final* line is
			// forgivable.
			pendingErr = fmt.Errorf("sweep: malformed result on line %d: %w", line, err)
			continue
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
