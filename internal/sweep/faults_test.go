package sweep

import (
	"context"
	"strings"
	"testing"
)

func TestFaultModelAxisExpansion(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd, AlgoPushSum},
		Ns:          []int{64},
		FaultModels: []string{"", "ge:0.05/0.2/0.01/0.6", "churn:5000/1000"},
	}
	if got, want := spec.TaskCount(), 2*3; got != want {
		t.Fatalf("TaskCount = %d, want %d", got, want)
	}
	tasks := spec.Expand()
	seen := map[string]int{}
	for _, task := range tasks {
		seen[task.Algorithm+"|"+task.FaultModel]++
	}
	if len(seen) != 6 {
		t.Fatalf("expansion covered %d (algorithm, fault) pairs, want 6: %v", len(seen), seen)
	}
}

// TestFaultModelSeedBackCompat: an empty fault model folds nothing into
// the run seed, so pre-fault-axis grids keep their derived seeds — and
// their results — unchanged; non-empty models get distinct seeds.
func TestFaultModelSeedBackCompat(t *testing.T) {
	base := Task{Algorithm: AlgoBoyd, N: 128, BaseSeed: 1}
	withModel := base
	withModel.FaultModel = "churn:5000/0"
	if base.runSeed() == withModel.runSeed() {
		t.Fatal("fault model did not change the run seed")
	}
	other := base
	other.FaultModel = "churn:5000/1"
	if withModel.runSeed() == other.runSeed() {
		t.Fatal("distinct fault models derived the same run seed")
	}
}

func TestFaultModelValidation(t *testing.T) {
	bad := Spec{Algorithms: []string{AlgoBoyd}, Ns: []int{64}, FaultModels: []string{"quantum:1"}}
	if err := bad.Normalized().Validate(); err == nil {
		t.Fatal("unknown fault model validated")
	}
	crossed := Spec{
		Algorithms:  []string{AlgoBoyd},
		Ns:          []int{64},
		LossRates:   []float64{0, 0.2},
		FaultModels: []string{"bernoulli:0.1"},
	}
	err := crossed.Normalized().Validate()
	if err == nil {
		t.Fatal("loss axis crossed with a loss-model fault entry validated")
	}
	if !strings.Contains(err.Error(), "cannot be crossed") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Churn-only fault entries compose with the loss axis.
	composed := Spec{
		Algorithms:  []string{AlgoBoyd},
		Ns:          []int{64},
		LossRates:   []float64{0, 0.2},
		FaultModels: []string{"", "churn:5000/1000"},
	}
	if err := composed.Normalized().Validate(); err != nil {
		t.Fatalf("churn-only fault entry with loss axis rejected: %v", err)
	}
}

func TestFaultModelExecuteEndToEnd(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd, AlgoPushSum, AlgoAffine},
		Ns:          []int{96},
		TargetErr:   5e-2,
		FaultModels: []string{"ge:0.05/0.2/0.01/0.6", "bernoulli:0.1+churn:50000/10000"},
	}
	results, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != spec.TaskCount() {
		t.Fatalf("got %d results, want %d", len(results), spec.TaskCount())
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("task %d (%s, %s) failed: %s", r.TaskID, r.Algorithm, r.FaultModel, r.Error)
		}
		if r.FaultModel == "" {
			t.Fatalf("task %d lost its fault model", r.TaskID)
		}
		if !r.Converged {
			t.Errorf("task %d (%s, %s) did not converge (err %v)", r.TaskID, r.Algorithm, r.FaultModel, r.FinalErr)
		}
	}
	// Aggregation keys cells by fault model: 3 algorithms × 2 models.
	sum := Aggregate(results)
	if len(sum.Cells) != 6 {
		t.Fatalf("aggregation built %d cells, want 6", len(sum.Cells))
	}
}

// TestResumeDetectsFaultModelMismatch: a resumed result whose fault
// model disagrees with the current grid is a different spec, not a
// silent merge.
func TestResumeDetectsFaultModelMismatch(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd},
		Ns:          []int{64},
		TargetErr:   5e-2,
		FaultModels: []string{"churn:5000/1000"},
	}
	tasks := spec.Normalized().Expand()
	prior := TaskResult{
		TaskID:           0,
		Algorithm:        AlgoBoyd,
		N:                64,
		FaultModel:       "churn:9999/0", // disagrees with the grid
		TargetErr:        tasks[0].TargetErr,
		MaxTicks:         tasks[0].MaxTicks,
		RadiusMultiplier: tasks[0].RadiusMultiplier,
		Field:            tasks[0].Field,
		RunSeed:          tasks[0].runSeed(),
	}
	if _, err := Run(context.Background(), spec, Options{Resume: []TaskResult{prior}}); err == nil {
		t.Fatal("fault-model mismatch on resume accepted")
	}
}
