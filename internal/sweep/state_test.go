package sweep

import (
	"context"
	"reflect"
	"testing"
)

// TestPooledWorkersMatchFreshExecute runs a grid covering all five
// engines and a fault + recovery axis through the worker pool (pooled
// per-worker run states) and compares every task result against a fresh
// per-task Execute — the pooled-vs-fresh contract at the orchestration
// layer.
func TestPooledWorkersMatchFreshExecute(t *testing.T) {
	spec := Spec{
		Algorithms:  []string{AlgoBoyd, AlgoGeographic, AlgoPushSum, AlgoAffine, AlgoAsync},
		Ns:          []int{96, 160},
		Seeds:       2,
		FaultModels: []string{"", "churn:60000/20000"},
		Recovery:    []bool{false, true},
		TargetErr:   5e-2,
		MaxTicks:    2_000_000,
	}
	pooled, err := Run(context.Background(), spec, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	cache := newNetCache()
	fresh := make([]TaskResult, 0, len(pooled))
	for _, task := range spec.Expand() {
		fresh = append(fresh, Execute(task, cache))
	}
	if len(pooled) != len(fresh) {
		t.Fatalf("pooled run returned %d results, fresh %d", len(pooled), len(fresh))
	}
	for i := range fresh {
		if !reflect.DeepEqual(pooled[i], fresh[i]) {
			t.Fatalf("task %d diverged:\npooled: %+v\nfresh:  %+v", fresh[i].TaskID, pooled[i], fresh[i])
		}
	}
}

// TestRecoveryAxisKeepsPriorSeeds pins the recovery axis's
// compatibility contract: an empty axis expands to the identical task
// list (IDs, coordinates, run seeds) as {false}, and in a {false, true}
// grid every recovery-off task keeps the exact run seed of the axis-less
// grid — so sweep output produced before the axis existed stays
// bit-identical and resumable.
func TestRecoveryAxisKeepsPriorSeeds(t *testing.T) {
	base := Spec{
		Algorithms:  []string{AlgoBoyd, AlgoAffine},
		Ns:          []int{128},
		Seeds:       2,
		FaultModels: []string{"", "churn:60000/20000"},
	}
	withFalse := base
	withFalse.Recovery = []bool{false}
	a, b := base.Expand(), withFalse.Expand()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("empty recovery axis does not expand identically to {false}")
	}

	crossed := base
	crossed.Recovery = []bool{false, true}
	seeds := make(map[string]uint64)
	for _, task := range a {
		key := task.Algorithm + "|" + task.FaultModel + "|" + string(rune(task.SeedIndex))
		seeds[key] = task.runSeed()
	}
	offs, ons := 0, 0
	for _, task := range crossed.Expand() {
		key := task.Algorithm + "|" + task.FaultModel + "|" + string(rune(task.SeedIndex))
		want, ok := seeds[key]
		if !ok {
			t.Fatalf("crossed grid produced unknown coordinates %q", key)
		}
		if task.Recover {
			ons++
			if task.runSeed() == want {
				t.Fatalf("recovery-on task %q shares the recovery-off run seed", key)
			}
		} else {
			offs++
			if task.runSeed() != want {
				t.Fatalf("recovery-off task %q changed run seed: %d != %d", key, task.runSeed(), want)
			}
		}
	}
	if offs == 0 || ons == 0 {
		t.Fatalf("crossed grid missing an axis side: %d off, %d on", offs, ons)
	}
}

// TestRecoveryAxisAggregation checks recovery lands in its own grid
// cells and survives the result→cell round trip.
func TestRecoveryAxisAggregation(t *testing.T) {
	results := []TaskResult{
		{TaskID: 0, Algorithm: AlgoBoyd, N: 64, FaultModel: "churn:1000/100", Recover: false, Transmissions: 100, Converged: true},
		{TaskID: 1, Algorithm: AlgoBoyd, N: 64, FaultModel: "churn:1000/100", Recover: true, Transmissions: 140, Converged: true},
	}
	sum := Aggregate(results)
	if len(sum.Cells) != 2 {
		t.Fatalf("recovery on/off collapsed into %d cells, want 2", len(sum.Cells))
	}
	if sum.Cells[0].Recover == sum.Cells[1].Recover {
		t.Fatal("cells do not distinguish recovery")
	}
	if sum.Cells[0].Recover || !sum.Cells[1].Recover {
		t.Fatal("cells not ordered recovery-off first")
	}
}
