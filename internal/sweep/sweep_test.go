package sweep

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// smallSpec is a grid cheap enough for unit tests but wide enough to
// exercise every axis: 2 algorithms × 2 sizes × 2 seeds × 2 loss rates.
func smallSpec() Spec {
	return Spec{
		Algorithms:       []string{AlgoBoyd, AlgoAffine},
		Ns:               []int{96, 128},
		Seeds:            2,
		LossRates:        []float64{0, 0.1},
		TargetErr:        5e-2,
		RadiusMultiplier: 2.2,
	}
}

func TestExpandAssignsSequentialIDs(t *testing.T) {
	spec := smallSpec()
	tasks := spec.Expand()
	want := spec.TaskCount()
	if len(tasks) != want {
		t.Fatalf("expanded %d tasks, TaskCount says %d", len(tasks), want)
	}
	if want != 2*2*2*2 {
		t.Fatalf("grid size %d, want 16", want)
	}
	for i, task := range tasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
		if task.TargetErr != 5e-2 || task.Field != FieldSmooth {
			t.Fatalf("task %d missing spec defaults: %+v", i, task)
		}
	}
	// Expansion must be reproducible.
	if !reflect.DeepEqual(tasks, spec.Expand()) {
		t.Fatal("Expand is not deterministic")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Algorithms: []string{"boid"}, Ns: []int{64}},
		{Algorithms: []string{AlgoBoyd}},
		{Algorithms: []string{AlgoBoyd}, Ns: []int{-1}},
		{Algorithms: []string{AlgoBoyd}, Ns: []int{64}, LossRates: []float64{1.5}},
		{Algorithms: []string{AlgoBoyd}, Ns: []int{64}, Samplings: []string{"psychic"}},
		{Algorithms: []string{AlgoBoyd}, Ns: []int{64}, Hierarchies: []string{"sideways"}},
		{Algorithms: []string{AlgoBoyd}, Ns: []int{64}, Field: "spiky"},
	}
	for i, s := range bad {
		if err := s.Normalized().Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", i, s)
		}
	}
	if err := smallSpec().Normalized().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestSeedsIgnoreAlgorithmButNotCell(t *testing.T) {
	tasks := smallSpec().Expand()
	byCoord := func(algo string, n, seed int) Task {
		for _, task := range tasks {
			if task.Algorithm == algo && task.N == n && task.SeedIndex == seed && task.LossRate == 0 {
				return task
			}
		}
		t.Fatalf("no task %s/%d/%d", algo, n, seed)
		return Task{}
	}
	a := byCoord(AlgoBoyd, 96, 0)
	b := byCoord(AlgoAffine, 96, 0)
	if a.netSeed(0) != b.netSeed(0) || a.fieldSeed() != b.fieldSeed() {
		t.Fatal("algorithms of one cell must share network and field seeds")
	}
	if a.runSeed() == b.runSeed() {
		t.Fatal("different algorithms share a run seed")
	}
	c := byCoord(AlgoBoyd, 96, 1)
	if a.netSeed(0) == c.netSeed(0) {
		t.Fatal("different seed indices share a network seed")
	}
	d := byCoord(AlgoBoyd, 128, 0)
	if a.netSeed(0) == d.netSeed(0) {
		t.Fatal("different sizes share a network seed")
	}
}

// The headline determinism guarantee: identical per-task results and
// identical (order-normalized) JSONL bytes at 1 worker and 8 workers.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := smallSpec()
	run := func(workers int) ([]TaskResult, []byte) {
		var buf bytes.Buffer
		res, err := Run(context.Background(), spec, Options{
			Workers: workers,
			Sink:    NewJSONL(&buf),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, buf.Bytes()
	}
	res1, jsonl1 := run(1)
	res8, jsonl8 := run(8)
	if len(res1) != spec.TaskCount() {
		t.Fatalf("got %d results, want %d", len(res1), spec.TaskCount())
	}
	if !reflect.DeepEqual(res1, res8) {
		for i := range res1 {
			if !reflect.DeepEqual(res1[i], res8[i]) {
				t.Fatalf("task %d differs:\n  1 worker: %+v\n  8 workers: %+v", i, res1[i], res8[i])
			}
		}
		t.Fatal("results differ")
	}
	if !bytes.Equal(sortLines(jsonl1), sortLines(jsonl8)) {
		t.Fatal("JSONL output not byte-identical after sorting by line")
	}
	for _, r := range res1 {
		if r.Error != "" {
			t.Fatalf("task %d errored: %s", r.TaskID, r.Error)
		}
	}
}

// sortLines order-normalizes JSONL output: lines are unique (each carries
// its task ID), so sorted-equal means identical result sets.
func sortLines(b []byte) []byte {
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}

func TestRunSkipsCompletedTasks(t *testing.T) {
	spec := smallSpec()
	skip := map[int]bool{0: true, 3: true, 7: true}
	res, err := Run(context.Background(), spec, Options{Workers: 4, Skip: skip})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != spec.TaskCount()-len(skip) {
		t.Fatalf("got %d results, want %d", len(res), spec.TaskCount()-len(skip))
	}
	for _, r := range res {
		if skip[r.TaskID] {
			t.Fatalf("skipped task %d was executed", r.TaskID)
		}
	}
}

func TestRunStopsOnCancel(t *testing.T) {
	spec := smallSpec()
	spec.Ns = []int{256, 384}
	spec.Seeds = 4
	ctx, cancel := context.WithCancel(context.Background())
	var cancelOnce bool
	start := time.Now()
	res, err := Run(ctx, spec, Options{
		Workers: 2,
		Progress: func(done, total int) {
			if !cancelOnce {
				cancelOnce = true
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) >= spec.TaskCount() {
		t.Fatalf("cancelled run completed all %d tasks", len(res))
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run took %v to stop", elapsed)
	}
}

func TestRunReportsSinkError(t *testing.T) {
	spec := smallSpec()
	_, err := Run(context.Background(), spec, Options{Workers: 2, Sink: failSink{}})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want sink failure", err)
	}
}

type failSink struct{}

func (failSink) Write(TaskResult) error { return errDiskFull }

var errDiskFull = &sinkErr{}

type sinkErr struct{}

func (*sinkErr) Error() string { return "disk full" }

func TestReadCompletedRoundTripAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, id := range []int{4, 0, 9} {
		if err := sink.Write(TaskResult{TaskID: id, Algorithm: AlgoBoyd}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a killed run: a truncated trailing line.
	full := buf.String() + `{"task_id": 12, "algo`
	done, err := ReadCompleted(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(done, map[int]bool{0: true, 4: true, 9: true}) {
		t.Fatalf("done = %v", done)
	}
	// Malformed content before the end is an error, not silent data loss.
	corrupt := `{"task_id": 1}` + "\nnot json at all\n" + `{"task_id": 2}` + "\n"
	if _, err := ReadCompleted(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file corruption not reported")
	}
}

func TestCollectorAndResumeEquivalence(t *testing.T) {
	spec := smallSpec()
	var col Collector
	full, err := Run(context.Background(), spec, Options{Workers: 4, Sink: &col})
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Results(); len(got) != len(full) {
		t.Fatalf("collector saw %d results, run returned %d", len(got), len(full))
	}
	// A run resumed from the first half must reproduce the second half
	// bit-for-bit.
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, r := range full[:len(full)/2] {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	done, err := ReadCompleted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := Run(context.Background(), spec, Options{Workers: 4, Skip: done})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rest, full[len(full)/2:]) {
		t.Fatal("resumed run does not reproduce the remaining tasks")
	}
}

func TestMapPlacesResultsByIndex(t *testing.T) {
	got, err := Map(context.Background(), 100, 8, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapFailsFastOnError(t *testing.T) {
	// Single worker: scheduling is in index order, so the failure at 7
	// stops everything after it and is the error returned.
	ran := 0
	_, err := Map(context.Background(), 50, 1, func(i int) (int, error) {
		ran++
		if i == 41 || i == 7 {
			return 0, &indexErr{i}
		}
		return i, nil
	})
	ie, ok := err.(*indexErr)
	if !ok || ie.i != 7 {
		t.Fatalf("err = %v, want index 7", err)
	}
	if ran >= 50 {
		t.Fatal("error did not stop scheduling")
	}
	// Parallel: some error must surface, whichever worker hit one first.
	if _, err := Map(context.Background(), 50, 8, func(i int) (int, error) {
		if i == 41 || i == 7 {
			return 0, &indexErr{i}
		}
		return i, nil
	}); err == nil {
		t.Fatal("parallel Map swallowed the error")
	}
}

type indexErr struct{ i int }

func (e *indexErr) Error() string { return "boom" }

func TestMapHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := Map(ctx, 1000, 1, func(i int) (int, error) {
		ran++
		if i == 3 {
			cancel()
		}
		return i, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if ran >= 1000 {
		t.Fatal("cancellation did not stop scheduling")
	}
}

func TestAggregateCellsAndFits(t *testing.T) {
	// Synthetic results: tx = n² exactly, two seeds per cell, one errored
	// task that must not poison its cell.
	var results []TaskResult
	for _, n := range []int{100, 200, 400} {
		for seed := 0; seed < 2; seed++ {
			results = append(results, TaskResult{
				TaskID:        len(results),
				Algorithm:     AlgoBoyd,
				N:             n,
				SeedIndex:     seed,
				Converged:     true,
				FinalErr:      1e-3,
				Transmissions: uint64(n) * uint64(n),
			})
		}
	}
	results = append(results, TaskResult{
		TaskID: len(results), Algorithm: AlgoBoyd, N: 100, SeedIndex: 2,
		Error: "no connected instance",
	})
	sum := Aggregate(results)
	if len(sum.Cells) != 3 {
		t.Fatalf("got %d cells: %+v", len(sum.Cells), sum.Cells)
	}
	first := sum.Cells[0]
	if first.N != 100 || first.Count != 2 || first.ConvergedCount != 2 || first.Errors != 1 {
		t.Fatalf("first cell = %+v", first)
	}
	if first.Transmissions.Mean != 100*100 || first.Transmissions.Std != 0 {
		t.Fatalf("first cell transmissions = %+v", first.Transmissions)
	}
	if len(sum.Fits) != 1 {
		t.Fatalf("got %d fits", len(sum.Fits))
	}
	fit := sum.Fits[0]
	if fit.Points != 3 || fit.Exponent < 1.999 || fit.Exponent > 2.001 {
		t.Fatalf("fit = %+v, want exponent 2", fit)
	}
	// Aggregation must not depend on input order.
	shuffled := append([]TaskResult(nil), results...)
	for i := range shuffled {
		j := (i * 7) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	if !reflect.DeepEqual(sum, Aggregate(shuffled)) {
		t.Fatal("aggregation depends on input order")
	}
}

func TestExecuteReportsUnusableCell(t *testing.T) {
	// Sub-threshold radius: no connected instance exists, the task must
	// fail gracefully rather than hang or panic.
	task := Task{
		Algorithm:        AlgoBoyd,
		N:                512,
		RadiusMultiplier: 0.2,
		TargetErr:        1e-2,
		MaxTicks:         1000,
		Field:            FieldSmooth,
		BaseSeed:         1,
	}
	res := Execute(task, newNetCache())
	if res.Error == "" {
		t.Fatal("unusable cell produced no error")
	}
	if res.Transmissions != 0 || res.Converged {
		t.Fatalf("errored task carries results: %+v", res)
	}
}

// Sharded network construction is invisible to results: the same grid
// run with any BuildWorkers value yields a bit-identical result set and
// identical network footprints (only construction wall-clock may vary).
func TestRunBuildWorkersInvariance(t *testing.T) {
	spec := smallSpec()
	run := func(buildWorkers int) ([]TaskResult, NetBuildStats) {
		var stats NetBuildStats
		results, err := Run(context.Background(), spec, Options{
			Workers:      1,
			BuildWorkers: buildWorkers,
			NetStats:     &stats,
		})
		if err != nil {
			t.Fatalf("build-workers=%d: %v", buildWorkers, err)
		}
		return results, stats
	}
	refResults, refStats := run(1)
	if refStats.Networks == 0 || refStats.Nodes == 0 || refStats.GraphBytes == 0 || refStats.HierBytes == 0 {
		t.Fatalf("empty network build stats: %+v", refStats)
	}
	for _, bw := range []int{2, 0} {
		results, stats := run(bw)
		if !reflect.DeepEqual(refResults, results) {
			t.Fatalf("build-workers=%d: results differ from serial construction", bw)
		}
		if stats.Networks != refStats.Networks || stats.Nodes != refStats.Nodes ||
			stats.GraphBytes != refStats.GraphBytes || stats.HierBytes != refStats.HierBytes {
			t.Fatalf("build-workers=%d: network stats differ: %+v vs %+v", bw, stats, refStats)
		}
	}
}

// The async budget overrides must reach the engine (changing the run),
// be recorded in the self-describing result line, and participate in
// the resume "different spec" check like every other run-level knob.
func TestAsyncBudgetOverrides(t *testing.T) {
	base := Spec{
		Algorithms:       []string{AlgoAsync},
		Ns:               []int{128},
		TargetErr:        5e-2,
		RadiusMultiplier: 2.2,
	}
	run := func(spec Spec) []TaskResult {
		results, err := Run(context.Background(), spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	ref := run(base)
	tuned := base
	tuned.AsyncThrottle = 16
	tuned.AsyncLeafTicks = 128
	got := run(tuned)
	if len(ref) != 1 || len(got) != 1 {
		t.Fatalf("got %d/%d results", len(ref), len(got))
	}
	if got[0].AsyncThrottle != 16 || got[0].AsyncLeafTicks != 128 {
		t.Fatalf("overrides not recorded: %+v", got[0])
	}
	if ref[0].AsyncThrottle != 0 || ref[0].AsyncLeafTicks != 0 {
		t.Fatalf("default run recorded overrides: %+v", ref[0])
	}
	if ref[0].Transmissions == got[0].Transmissions {
		t.Fatal("budget overrides did not change the async run")
	}
	if ref[0].RunSeed != got[0].RunSeed {
		t.Fatal("budget overrides changed the derived run seed")
	}
	// Resuming a default-budget result under overridden budgets is a
	// different spec, not a silent mix.
	if _, err := Run(context.Background(), tuned, Options{Resume: ref}); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Fatalf("override mismatch accepted on resume (err=%v)", err)
	}
	if _, err := Run(context.Background(), tuned, Options{Resume: got}); err != nil {
		t.Fatalf("matching override rejected on resume: %v", err)
	}
}
