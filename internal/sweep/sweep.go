// Package sweep is the concurrent multi-scenario experiment orchestrator:
// it expands a declarative parameter grid (algorithm × n × seed × loss
// rate × fault model × recovery × beta × sampling mode × hierarchy
// shape) into independent tasks, executes them on a worker pool — each
// worker threading one set of reusable engine run states through its
// tasks — and streams per-task results to a pluggable sink.
//
// Determinism is the design invariant. Every task derives its own seeds
// from the spec's base seed and the task's semantic coordinates (never
// from scheduling state), so a grid produces bit-identical per-task
// results whether it runs on one worker or sixty-four, and regardless of
// completion order. Sinks observe results in completion order; consumers
// that need a canonical order sort by TaskID.
package sweep

import (
	"fmt"
	"math"

	"geogossip/internal/channel"
	"geogossip/internal/rng"
)

// Algorithm names accepted by Spec.Algorithms.
const (
	AlgoBoyd       = "boyd"
	AlgoGeographic = "geographic"
	AlgoPushSum    = "push-sum"
	AlgoAffine     = "affine-hierarchical"
	AlgoAsync      = "affine-async"
)

// Sampling mode names accepted by Spec.Samplings.
const (
	SamplingRejection = "rejection"
	SamplingUniform   = "uniform"
)

// Hierarchy shape names accepted by Spec.Hierarchies.
const (
	HierarchyDeep = "deep"
	HierarchyFlat = "flat"
)

// Field names accepted by Spec.Field.
const (
	// FieldSmooth is the worst-case low-frequency field 10·x + sin(7·y):
	// global information must cross the square, the regime every cost
	// bound addresses.
	FieldSmooth = "smooth"
	// FieldGaussian draws iid standard normal measurements from a seed
	// derived from (base seed, n, seed index) — identical across the
	// algorithms of one grid cell.
	FieldGaussian = "gaussian"
)

// Spec is a declarative parameter grid. Zero-valued axes default to a
// single neutral point, so callers only write the axes they sweep.
type Spec struct {
	// Algorithms lists protocol names (AlgoBoyd, AlgoGeographic,
	// AlgoPushSum, AlgoAffine, AlgoAsync). Required.
	Algorithms []string
	// Ns lists network sizes. Required.
	Ns []int
	// Seeds is the number of independent placements/runs per grid cell
	// (seed indices 0..Seeds-1). Zero selects 1.
	Seeds int
	// BaseSeed roots all per-task seed derivation. Zero selects 1.
	BaseSeed uint64
	// LossRates lists packet-loss probabilities. Empty selects {0}.
	LossRates []float64
	// FaultModels lists radio fault models in channel.Parse form
	// ("perfect", "bernoulli:P", "ge:PGB/PBG/EG/EB", the spatial forms
	// "jam:...", "mjam:...", "jampoly:...", "cut:...", and the churn
	// forms "churn:UP/DOWN", "repchurn:UP/DOWN", "hubchurn:UP/DOWN/K",
	// composable via "+"). Empty selects {""} (the perfect medium, or
	// the LossRates axis when that is swept). Entries carrying their own
	// loss model cannot be crossed with non-zero LossRates. Rep-targeted
	// entries only run on algorithms with a hierarchy; others record a
	// per-task error.
	FaultModels []string
	// Transports lists transport-reliability fragments in channel.Parse
	// form, composed onto every fault model of the grid: delay models
	// ("delay:fixed/D", "delay:uniform/LO/HI", "delay:exp/MEAN"), the
	// reorder/dup decorators, and ARQ ("arq:RETRIES/TIMEOUT/BACKOFF"),
	// composable via "+". Entries must be transport-only (no loss, field,
	// cut or churn components — those belong on the FaultModels axis), and
	// fault models carrying their own transport components cannot be
	// crossed with a non-empty transport axis. Empty selects {""} (no
	// transport layer), and ""-transport tasks keep the exact run seeds of
	// pre-axis grids, so prior sweep output stays bit-identical and
	// resumable.
	Transports []string
	// Recovery lists the engine-recovery settings to cross with the rest
	// of the grid (typically {false, true} against a churn fault axis):
	// true switches on representative re-election for the affine
	// algorithms and restart-from-neighbor resync for boyd/geographic
	// (push-sum needs neither — its mass bookkeeping already survives
	// churn). Empty selects {false}, and false tasks keep the exact run
	// seeds of pre-axis grids, so prior sweep output stays bit-identical
	// and resumable.
	Recovery []bool
	// Betas lists affine multipliers (only the affine algorithms read
	// them; 0 means the engine default 2/5). Empty selects {0}.
	Betas []float64
	// Samplings lists partner-sampling modes for geographic gossip
	// (SamplingRejection, SamplingUniform). Empty selects rejection.
	Samplings []string
	// Hierarchies lists hierarchy shapes for the affine algorithms
	// (HierarchyDeep, HierarchyFlat). Empty selects deep.
	Hierarchies []string
	// TargetErr is the relative ℓ₂ accuracy every run stops at. Zero
	// selects 1e-2.
	TargetErr float64
	// MaxTicks caps the simulated clock of the tick-driven engines
	// (boyd, geographic, affine-async). Zero selects 200,000,000. The
	// round-structured recursive engine has no clock; its runs are
	// bounded by its per-square round budgets.
	MaxTicks uint64
	// RadiusMultiplier is c in r = c·sqrt(log n / n). Zero selects 1.5.
	RadiusMultiplier float64
	// Field selects the initial measurement field (FieldSmooth or
	// FieldGaussian). Empty selects FieldSmooth.
	Field string
	// AsyncThrottle overrides the async engine's round-serialization
	// factor (AsyncOptions.Throttle) for affine-async tasks; zero keeps
	// the engine default. The paper scales the analogous factor as n^a:
	// large-n async sweeps must raise it (together with AsyncLeafTicks)
	// so the protocol's high-coefficient exchanges do not fire over
	// still-averaging subtrees.
	AsyncThrottle float64
	// AsyncLeafTicks overrides a leaf representative's round budget in
	// its own clock ticks (AsyncOptions.LeafTicks); zero keeps the
	// engine default. The default assumes Θ(log n)-occupancy leaves;
	// the large leaves of flat hierarchies at big n need budgets sized
	// to the leaf's actual mixing time.
	AsyncLeafTicks int
}

// Normalized returns a copy with every defaulted field filled in.
func (s Spec) Normalized() Spec {
	if s.Seeds <= 0 {
		s.Seeds = 1
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if len(s.LossRates) == 0 {
		s.LossRates = []float64{0}
	}
	if len(s.FaultModels) == 0 {
		s.FaultModels = []string{""}
	}
	// Canonicalize fault-model spellings ("perfect" -> "", ".2" -> "0.2")
	// so physically identical media share run seeds and aggregation
	// cells regardless of how the spec was written. Unparsable entries
	// pass through untouched for Validate to reject.
	models := make([]string, len(s.FaultModels))
	for i, fm := range s.FaultModels {
		models[i] = fm
		if spec, err := channel.Parse(fm); err == nil {
			if spec.IsZero() {
				models[i] = ""
			} else {
				models[i] = spec.String()
			}
		}
	}
	s.FaultModels = models
	if len(s.Transports) == 0 {
		s.Transports = []string{""}
	}
	// Canonicalize transport spellings the same way, so physically
	// identical transports share run seeds and aggregation cells.
	transports := make([]string, len(s.Transports))
	for i, tr := range s.Transports {
		transports[i] = tr
		if spec, err := channel.Parse(tr); err == nil {
			if spec.IsZero() {
				transports[i] = ""
			} else {
				transports[i] = spec.String()
			}
		}
	}
	s.Transports = transports
	if len(s.Recovery) == 0 {
		s.Recovery = []bool{false}
	}
	if len(s.Betas) == 0 {
		s.Betas = []float64{0}
	}
	if len(s.Samplings) == 0 {
		s.Samplings = []string{SamplingRejection}
	}
	if len(s.Hierarchies) == 0 {
		s.Hierarchies = []string{HierarchyDeep}
	}
	if s.TargetErr <= 0 {
		s.TargetErr = 1e-2
	}
	if s.MaxTicks == 0 {
		s.MaxTicks = 200_000_000
	}
	if s.RadiusMultiplier <= 0 {
		s.RadiusMultiplier = 1.5
	}
	if s.Field == "" {
		s.Field = FieldSmooth
	}
	return s
}

// Validate reports the first problem with a normalized spec.
func (s Spec) Validate() error {
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("sweep: spec has no algorithms")
	}
	for _, a := range s.Algorithms {
		switch a {
		case AlgoBoyd, AlgoGeographic, AlgoPushSum, AlgoAffine, AlgoAsync:
		default:
			return fmt.Errorf("sweep: unknown algorithm %q", a)
		}
	}
	if len(s.Ns) == 0 {
		return fmt.Errorf("sweep: spec has no network sizes")
	}
	for _, n := range s.Ns {
		if n <= 0 {
			return fmt.Errorf("sweep: invalid network size %d", n)
		}
	}
	for _, p := range s.LossRates {
		if p < 0 || p >= 1 {
			return fmt.Errorf("sweep: loss rate %v outside [0, 1)", p)
		}
	}
	lossAxis := false
	for _, p := range s.LossRates {
		if p > 0 {
			lossAxis = true
		}
	}
	for _, fm := range s.FaultModels {
		spec, err := channel.Parse(fm)
		if err != nil {
			return fmt.Errorf("sweep: fault model %q: %w", fm, err)
		}
		if lossAxis && spec.Loss != channel.LossNone {
			return fmt.Errorf("sweep: fault model %q carries a loss model; it cannot be crossed with non-zero LossRates (use churn-only fault models or drop the loss axis)", fm)
		}
	}
	transportAxis := false
	for _, tr := range s.Transports {
		if tr == "" {
			continue
		}
		transportAxis = true
		spec, err := channel.Parse(tr)
		if err != nil {
			return fmt.Errorf("sweep: transport %q: %w", tr, err)
		}
		if !spec.TransportOnly() {
			return fmt.Errorf("sweep: transport %q carries non-transport components; loss/field/cut/churn belong on the fault-model axis", tr)
		}
	}
	if transportAxis {
		for _, fm := range s.FaultModels {
			if spec, err := channel.Parse(fm); err == nil && spec.HasTransport() {
				return fmt.Errorf("sweep: fault model %q carries transport components; it cannot be crossed with a non-empty transport axis", fm)
			}
		}
	}
	for _, m := range s.Samplings {
		switch m {
		case SamplingRejection, SamplingUniform:
		default:
			return fmt.Errorf("sweep: unknown sampling mode %q", m)
		}
	}
	for _, h := range s.Hierarchies {
		switch h {
		case HierarchyDeep, HierarchyFlat:
		default:
			return fmt.Errorf("sweep: unknown hierarchy shape %q", h)
		}
	}
	switch s.Field {
	case FieldSmooth, FieldGaussian:
	default:
		return fmt.Errorf("sweep: unknown field %q", s.Field)
	}
	if s.AsyncThrottle < 0 {
		return fmt.Errorf("sweep: negative async throttle %v", s.AsyncThrottle)
	}
	if s.AsyncLeafTicks < 0 {
		return fmt.Errorf("sweep: negative async leaf ticks %d", s.AsyncLeafTicks)
	}
	return nil
}

// TaskCount returns the number of tasks the normalized spec expands to.
func (s Spec) TaskCount() int {
	s = s.Normalized()
	return len(s.Algorithms) * len(s.Ns) * s.Seeds * len(s.LossRates) *
		len(s.FaultModels) * len(s.Transports) * len(s.Recovery) * len(s.Betas) * len(s.Samplings) * len(s.Hierarchies)
}

// Task is one expanded grid point. IDs are assigned in expansion order
// (algorithm outermost, hierarchy innermost), so the same spec always
// yields the same Task list.
type Task struct {
	ID         int
	Algorithm  string
	N          int
	SeedIndex  int
	LossRate   float64
	FaultModel string
	Transport  string
	Recover    bool
	Beta       float64
	Sampling   string
	Hierarchy  string

	// Run-level parameters copied from the spec.
	TargetErr        float64
	MaxTicks         uint64
	RadiusMultiplier float64
	Field            string
	BaseSeed         uint64
	AsyncThrottle    float64
	AsyncLeafTicks   int
}

// Expand lists every task of the grid in deterministic ID order.
func (s Spec) Expand() []Task {
	s = s.Normalized()
	tasks := make([]Task, 0, s.TaskCount())
	id := 0
	for _, algo := range s.Algorithms {
		for _, n := range s.Ns {
			for seed := 0; seed < s.Seeds; seed++ {
				for _, loss := range s.LossRates {
					for _, fm := range s.FaultModels {
						for _, tr := range s.Transports {
							for _, rec := range s.Recovery {
								for _, beta := range s.Betas {
									for _, sampling := range s.Samplings {
										for _, shape := range s.Hierarchies {
											tasks = append(tasks, Task{
												ID:               id,
												Algorithm:        algo,
												N:                n,
												SeedIndex:        seed,
												LossRate:         loss,
												FaultModel:       fm,
												Transport:        tr,
												Recover:          rec,
												Beta:             beta,
												Sampling:         sampling,
												Hierarchy:        shape,
												TargetErr:        s.TargetErr,
												MaxTicks:         s.MaxTicks,
												RadiusMultiplier: s.RadiusMultiplier,
												Field:            s.Field,
												BaseSeed:         s.BaseSeed,
												AsyncThrottle:    s.AsyncThrottle,
												AsyncLeafTicks:   s.AsyncLeafTicks,
											})
											id++
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return tasks
}

// netSeed derives the placement seed for a (n, seed index) cell at a
// given connectivity retry attempt. It deliberately ignores the
// algorithm and protocol axes so every algorithm of a cell runs on the
// identical network instance.
func (t Task) netSeed(attempt int) uint64 {
	return rng.Derive(rng.DeriveString(t.BaseSeed, "sweep/net"),
		uint64(t.N), uint64(t.SeedIndex), uint64(attempt))
}

// runSeed derives the protocol seed from the full semantic coordinates of
// the task, so results depend only on what the task *is*, never on grid
// shape, task ID, or scheduling. The fault model folds in only when set,
// keeping seeds — and therefore results — of pre-fault-axis grids
// unchanged.
func (t Task) runSeed() uint64 {
	seed := rng.Derive(
		rng.DeriveString(rng.DeriveString(t.BaseSeed, "sweep/run"), t.Algorithm),
		uint64(t.N),
		uint64(t.SeedIndex),
		math.Float64bits(t.LossRate),
		math.Float64bits(t.Beta),
		rng.DeriveString(0, t.Sampling),
		rng.DeriveString(0, t.Hierarchy),
	)
	if t.FaultModel != "" {
		seed = rng.DeriveString(rng.DeriveString(seed, "sweep/faults"), t.FaultModel)
	}
	if t.Transport != "" {
		// Folded in only when set, like the fault model: transport-free
		// tasks keep the exact seeds of pre-axis grids.
		seed = rng.DeriveString(rng.DeriveString(seed, "sweep/transport"), t.Transport)
	}
	if t.Recover {
		// Folded in only when set, like the fault model: recovery-off
		// tasks keep the exact seeds of pre-axis grids.
		seed = rng.DeriveString(seed, "sweep/recover")
	}
	return seed
}

// fieldSeed derives the seed for iid initial measurements; like netSeed
// it is shared across the algorithms of a cell.
func (t Task) fieldSeed() uint64 {
	return rng.Derive(rng.DeriveString(t.BaseSeed, "sweep/field"),
		uint64(t.N), uint64(t.SeedIndex))
}

// TaskResult is the outcome of one task. It contains only deterministic
// fields: serializing results sorted by TaskID yields byte-identical
// output regardless of worker count.
type TaskResult struct {
	TaskID    int     `json:"task_id"`
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	SeedIndex int     `json:"seed"`
	LossRate  float64 `json:"loss_rate"`
	// FaultModel is the channel.Parse spec the task ran under; empty for
	// the perfect medium / plain LossRate axis.
	FaultModel string `json:"fault_model,omitempty"`
	// Transport is the transport-reliability fragment (delay/reorder/dup/
	// arq) composed onto the fault model; empty when the task ran without
	// a transport layer.
	Transport string `json:"transport,omitempty"`
	// Recover reports whether the engines ran their recovery protocols
	// (re-election / restart-from-neighbor resync).
	Recover   bool    `json:"recover,omitempty"`
	Beta      float64 `json:"beta"`
	Sampling  string  `json:"sampling,omitempty"`
	Hierarchy string  `json:"hierarchy,omitempty"`

	// The run-level parameters the task executed under, recorded so a
	// result line is fully self-describing (replayable in isolation, and
	// checkable against the grid a resumed run expands).
	TargetErr        float64 `json:"target_err"`
	MaxTicks         uint64  `json:"max_ticks"`
	RadiusMultiplier float64 `json:"radius"`
	Field            string  `json:"field"`
	// AsyncThrottle and AsyncLeafTicks are recorded only when the spec
	// overrode the async engine's round-budget model (omitted as zero
	// otherwise, so pre-existing output stays byte-identical).
	AsyncThrottle  float64 `json:"async_throttle,omitempty"`
	AsyncLeafTicks int     `json:"async_leaf_ticks,omitempty"`

	NetSeed uint64 `json:"net_seed"`
	RunSeed uint64 `json:"run_seed"`

	Converged     bool    `json:"converged"`
	FinalErr      float64 `json:"final_err"`
	Transmissions uint64  `json:"transmissions"`
	// SimSeconds is the run's time-to-converge in simulated seconds
	// (metrics.Result.SimSeconds); zero — and omitted, keeping
	// transport-free output byte-identical — unless the task's effective
	// medium has transport components.
	SimSeconds   float64           `json:"sim_seconds,omitempty"`
	Breakdown    map[string]uint64 `json:"breakdown,omitempty"`
	FarExchanges uint64            `json:"far_exchanges,omitempty"`
	HierarchyEll int               `json:"hierarchy_ell,omitempty"`

	// Error carries a per-task failure (e.g. no connected instance
	// found); all result fields above it are zero when set.
	Error string `json:"error,omitempty"`
}

// Cell returns the grid-cell key of the result: the task coordinates
// minus the seed index, the unit results aggregate over.
func (r TaskResult) Cell() CellKey {
	return CellKey{
		Algorithm:  r.Algorithm,
		N:          r.N,
		LossRate:   r.LossRate,
		FaultModel: r.FaultModel,
		Transport:  r.Transport,
		Recover:    r.Recover,
		Beta:       r.Beta,
		Sampling:   r.Sampling,
		Hierarchy:  r.Hierarchy,
	}
}
