package sweep

import (
	"context"
	"testing"

	"geogossip/internal/routing"
)

// TestRouteStatsAggregated verifies the run aggregates the shared
// per-network route caches: tasks of the same (n, seed) cell run on one
// cache, so the hierarchy algorithms' repeated rep↔rep routes and leaf
// floods must register hits, and the counters must reach the caller.
func TestRouteStatsAggregated(t *testing.T) {
	spec := Spec{
		Algorithms: []string{AlgoAffine, AlgoAsync, AlgoGeographic},
		Ns:         []int{256},
		Seeds:      2,
		TargetErr:  5e-2,
	}
	var stats routing.CacheStats
	results, err := Run(context.Background(), spec, Options{Workers: 2, RouteStats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("task %d: %s", r.TaskID, r.Error)
		}
	}
	if stats.RouteMisses == 0 {
		t.Error("no route misses recorded: tasks did not touch the shared caches")
	}
	if stats.RouteHits == 0 {
		t.Error("no route hits recorded: hierarchy engines should re-route the same rep pairs")
	}
	if stats.FloodMisses == 0 || stats.FloodHits == 0 {
		t.Errorf("flood stats %d hits / %d misses: async leaf floods should hit the cache",
			stats.FloodHits, stats.FloodMisses)
	}
}
