package sweep

import (
	"fmt"
	"maps"
	"math"
	"sync"
	"time"

	"geogossip/internal/channel"
	"geogossip/internal/core"
	"geogossip/internal/gossip"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/netstore"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/routing"
	"geogossip/internal/sim"
)

// netAttempts bounds the deterministic seed-retry loop used to find a
// connected instance for a (n, seed index) cell.
const netAttempts = 8

// netKey identifies one cached network build. The hierarchy shape is part
// of the key because hier.Build differs between shapes; tasks that share
// placement but not shape share the graph seed, not the cache entry.
type netKey struct {
	n      int
	seed   uint64
	radius float64
	shape  string
}

type netEntry struct {
	once sync.Once
	g    *graph.Graph
	h    *hier.Hierarchy
	// routes is the entry's shared route/flood cache: every task running
	// on this network build pools its deterministic routing work here
	// (routing is a pure function of the immutable graph, so sharing is
	// invisible to results — see routing.Cache).
	routes *routing.Cache
	err    error
	// buildTime is the wall-clock the entry's construction took — or,
	// when loaded is set, loadTime the wall-clock its snapshot load took;
	// graphBytes/hierBytes its resident footprint at build time (Voronoi
	// areas, computed lazily by geographic tasks, are not included).
	loaded     bool
	buildTime  time.Duration
	loadTime   time.Duration
	graphBytes int64
	hierBytes  int64
}

// netCache deduplicates network construction across the tasks of a grid:
// every (algorithm × loss × beta × ...) combination at the same
// (n, seed index) runs on one shared immutable Network build. Entries are
// built exactly once under a per-entry sync.Once so concurrent workers
// never duplicate or block each other on unrelated keys.
type netCache struct {
	mu      sync.Mutex
	entries map[netKey]*netEntry
	// buildWorkers shards each entry's construction (graph scan and
	// hierarchy build); <= 1 is serial. Byte-identical at any value, so
	// it is deliberately not part of netKey.
	buildWorkers int
	// store, when set, satisfies entries from the content-addressed
	// snapshot store before falling back to construction (and persists
	// fresh builds for the next run). Loaded entries are bit-identical to
	// builds, so the store is invisible to results — it is deliberately
	// not part of netKey either.
	store *netstore.Store
}

func newNetCache() *netCache {
	return &netCache{entries: make(map[netKey]*netEntry)}
}

var errNotConnected = fmt.Errorf("sweep: generated network is not connected")

func (c *netCache) get(key netKey) (*graph.Graph, *hier.Hierarchy, *routing.Cache, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &netEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		build := func() (*graph.Graph, *hier.Hierarchy, error) {
			g, err := graph.GenerateWorkers(key.n, key.radius, rng.New(key.seed), c.buildWorkers)
			if err != nil {
				return nil, nil, err
			}
			if key.n > 1 && !g.IsConnected() {
				return nil, nil, errNotConnected
			}
			hcfg := hier.Config{Workers: c.buildWorkers}
			if key.shape == HierarchyFlat {
				hcfg.MaxDepth = 1
			}
			h, err := hier.Build(g.Points(), hcfg)
			if err != nil {
				return nil, nil, err
			}
			return g, h, nil
		}
		var (
			g      *graph.Graph
			h      *hier.Hierarchy
			loaded bool
			err    error
		)
		if c.store != nil {
			sk := netstore.Key{N: key.n, Seed: key.seed, RadiusMult: key.radius}
			if key.shape == HierarchyFlat {
				sk.MaxDepth = 1
			}
			// Loaded entries skip the connectivity scan: only connected,
			// fully built networks ever enter the store (a disconnected
			// instance fails build above and nothing is persisted).
			g, h, loaded, err = c.store.GetOrBuild(sk, c.buildWorkers, build)
		} else {
			g, h, err = build()
		}
		if err != nil {
			e.err = err
			return
		}
		e.g, e.h, e.routes = g, h, routing.NewCache()
		e.loaded = loaded
		if loaded {
			e.loadTime = time.Since(start)
		} else {
			e.buildTime = time.Since(start)
		}
		e.graphBytes = int64(g.Footprint().Total())
		e.hierBytes = int64(h.Footprint())
	})
	return e.g, e.h, e.routes, e.err
}

// network finds a connected instance for the task, retrying derived seeds
// deterministically. Every task of a (n, seed index) cell walks the same
// attempt sequence, so all of them land on the same instance — and on the
// same shared route cache.
func (t Task) network(cache *netCache) (*graph.Graph, *hier.Hierarchy, *routing.Cache, uint64, error) {
	var lastErr error
	for attempt := 0; attempt < netAttempts; attempt++ {
		seed := t.netSeed(attempt)
		g, h, routes, err := cache.get(netKey{n: t.N, seed: seed, radius: t.RadiusMultiplier, shape: t.Hierarchy})
		if err == nil {
			return g, h, routes, seed, nil
		}
		lastErr = err
		if err != errNotConnected {
			break
		}
	}
	return nil, nil, nil, 0, fmt.Errorf("sweep: n=%d seed-index=%d: no usable instance in %d attempts: %w",
		t.N, t.SeedIndex, netAttempts, lastErr)
}

// values builds the initial measurement field into buf (reusing its
// storage when large enough). It depends only on the cell's network and
// field seed, so every algorithm of a cell averages the same
// measurements.
func (t Task) values(g *graph.Graph, buf []float64) []float64 {
	x := buf
	if cap(x) >= g.N() {
		x = x[:g.N()]
	} else {
		x = make([]float64, g.N())
	}
	switch t.Field {
	case FieldGaussian:
		r := rng.New(t.fieldSeed())
		for i := range x {
			x[i] = r.NormFloat64()
		}
	default: // FieldSmooth
		for i := int32(0); int(i) < g.N(); i++ {
			p := g.Point(i)
			x[i] = 10*p.X + math.Sin(7*p.Y)
		}
	}
	return x
}

// faults resolves the task's effective radio fault model: the parsed
// FaultModel axis entry, with the LossRate axis folded in as a Bernoulli
// loss process and the Transport axis composed on top when set.
func (t Task) faults() (channel.Spec, error) {
	spec, err := channel.Parse(t.FaultModel)
	if err != nil {
		return spec, err
	}
	if t.LossRate != 0 {
		if spec.Loss != channel.LossNone {
			return spec, fmt.Errorf("sweep: task crosses loss rate %v with fault model %q", t.LossRate, t.FaultModel)
		}
		spec.Loss = channel.LossBernoulli
		spec.LossRate = t.LossRate
	}
	if t.Transport != "" {
		tr, err := channel.Parse(t.Transport)
		if err != nil {
			return spec, fmt.Errorf("sweep: transport %q: %w", t.Transport, err)
		}
		if !tr.TransportOnly() {
			return spec, fmt.Errorf("sweep: transport %q carries non-transport components", t.Transport)
		}
		if spec.HasTransport() {
			return spec, fmt.Errorf("sweep: task crosses transport %q with fault model %q, which already carries transport components", t.Transport, t.FaultModel)
		}
		spec.Delay = tr.Delay
		spec.Reorder = tr.Reorder
		spec.Dup = tr.Dup
		spec.ARQ = tr.ARQ
	}
	return spec, nil
}

// runStates bundles the reusable engine run states one worker threads
// through every task it executes (one per worker, mirroring the PR 4
// route-cache sharing): a grid of R runs over one network performs O(1)
// state allocations instead of O(R). Pooling is invisible to results —
// pooled and fresh execution are bit-identical (asserted by the
// pooled-vs-fresh suite).
type runStates struct {
	gossip gossip.RunState
	core   core.RunState
	x      []float64
	runRNG *rng.RNG
	// reg is the sweep's shared metrics registry (nil when observability
	// is off). Scopes are memoized per engine label inside the registry,
	// and every instrument is atomic, so workers share them freely.
	reg *obs.Registry
}

// scope resolves the per-engine metrics scope, nil when no registry is
// attached (the zero-overhead default).
func (st *runStates) scope(engine string) *obs.Scope {
	if st.reg == nil {
		return nil
	}
	return st.reg.Scope(engine)
}

// channelBuilds reports the pooled channel builds this worker's states
// have served (see channel.Pool.Builds).
func (st *runStates) channelBuilds() uint64 {
	return st.gossip.ChannelBuilds() + st.core.ChannelBuilds()
}

// rng returns the task's protocol generator, reusing the worker's pooled
// generator.
func (st *runStates) rng(seed uint64) *rng.RNG {
	if st.runRNG == nil {
		st.runRNG = rng.New(seed)
	} else {
		st.runRNG.Reseed(seed)
	}
	return st.runRNG
}

// Execute runs one task to completion on fresh private state. It never
// panics on a bad grid point: per-task failures are reported in
// TaskResult.Error so one pathological cell cannot sink a thousand-task
// sweep.
func Execute(t Task, cache *netCache) TaskResult {
	return executeWith(t, cache, &runStates{})
}

// executeWith is Execute running on a worker's pooled run states.
func executeWith(t Task, cache *netCache, st *runStates) TaskResult {
	out := TaskResult{
		TaskID:           t.ID,
		Algorithm:        t.Algorithm,
		N:                t.N,
		SeedIndex:        t.SeedIndex,
		LossRate:         t.LossRate,
		FaultModel:       t.FaultModel,
		Transport:        t.Transport,
		Recover:          t.Recover,
		Beta:             t.Beta,
		Sampling:         t.Sampling,
		Hierarchy:        t.Hierarchy,
		TargetErr:        t.TargetErr,
		MaxTicks:         t.MaxTicks,
		RadiusMultiplier: t.RadiusMultiplier,
		Field:            t.Field,
		AsyncThrottle:    t.AsyncThrottle,
		AsyncLeafTicks:   t.AsyncLeafTicks,
		RunSeed:          t.runSeed(),
	}
	g, h, routes, netSeed, err := t.network(cache)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.NetSeed = netSeed
	faults, err := t.faults()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	st.x = t.values(g, st.x)
	x := st.x
	stop := sim.StopRule{TargetErr: t.TargetErr, MaxTicks: t.MaxTicks}
	switch t.Algorithm {
	case AlgoBoyd:
		res, err := gossip.RunBoyd(g, x, gossip.Options{
			Stop:   stop,
			Faults: faults,
			Resync: t.Recover,
			State:  &st.gossip,
			Obs:    st.scope(t.Algorithm),
		}, st.rng(out.RunSeed))
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.fill(res.Converged, res.FinalErr, res.Transmissions, res.SimSeconds, res.TransmissionsByCategory)
	case AlgoGeographic:
		mode := gossip.SamplingRejection
		if t.Sampling == SamplingUniform {
			mode = gossip.SamplingUniformNode
		}
		// Geographic routes between random endpoints: the shared cache
		// would accumulate unreusable entries (see gossip.Options.Routes),
		// so only the hierarchy engines pool their routing work.
		res, err := gossip.RunGeographic(g, x, gossip.GeoOptions{
			Options: gossip.Options{
				Stop:   stop,
				Faults: faults,
				Resync: t.Recover,
				State:  &st.gossip,
				Obs:    st.scope(t.Algorithm),
			},
			Sampling: mode,
		}, st.rng(out.RunSeed))
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.fill(res.Converged, res.FinalErr, res.Transmissions, res.SimSeconds, res.TransmissionsByCategory)
	case AlgoPushSum:
		// Push-sum ignores the recovery axis: its mass-conservation
		// bookkeeping already survives churn.
		res, err := gossip.RunPushSum(g, x, gossip.Options{
			Stop:   stop,
			Faults: faults,
			State:  &st.gossip,
			Obs:    st.scope(t.Algorithm),
		}, st.rng(out.RunSeed))
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.fill(res.Converged, res.FinalErr, res.Transmissions, res.SimSeconds, res.TransmissionsByCategory)
	case AlgoAffine:
		res, err := core.RunRecursive(g, h, x, core.RecursiveOptions{
			Eps:     t.TargetErr,
			Beta:    t.Beta,
			Faults:  faults,
			Recover: t.Recover,
			Routes:  routes,
			State:   &st.core,
			Obs:     st.scope(t.Algorithm),
		}, st.rng(out.RunSeed))
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.fill(res.Converged, res.FinalErr, res.Transmissions, res.SimSeconds, res.TransmissionsByCategory)
		out.FarExchanges = res.FarExchanges
		out.HierarchyEll = h.Ell
	case AlgoAsync:
		res, err := core.RunAsync(g, h, x, core.AsyncOptions{
			Eps:          t.TargetErr,
			Beta:         t.Beta,
			Throttle:     t.AsyncThrottle,
			LeafTicks:    t.AsyncLeafTicks,
			RoundsFactor: 2,
			Faults:       faults,
			Recover:      t.Recover,
			Routes:       routes,
			Stop:         stop,
			State:        &st.core,
			Obs:          st.scope(t.Algorithm),
		}, st.rng(out.RunSeed))
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.fill(res.Converged, res.FinalErr, res.Transmissions, res.SimSeconds, res.TransmissionsByCategory)
		out.FarExchanges = res.FarExchanges
		out.HierarchyEll = h.Ell
	default:
		out.Error = fmt.Sprintf("sweep: unknown algorithm %q", t.Algorithm)
	}
	return out
}

func (r *TaskResult) fill(converged bool, finalErr float64, tx uint64, simSeconds float64, byCat map[string]uint64) {
	r.Converged = converged
	r.FinalErr = finalErr
	r.Transmissions = tx
	r.SimSeconds = simSeconds
	r.Breakdown = maps.Clone(byCat)
}

// NetBuildStats summarizes the network constructions one sweep performed:
// how many distinct networks the grid deduplicated to, the wall-clock
// their construction took (summed across entries; entries build
// concurrently, so this can exceed the construct phase's elapsed time),
// and their resident footprint.
type NetBuildStats struct {
	// Networks is the number of distinct (n, seed, radius, shape)
	// networks the grid materialized, built or loaded.
	Networks int
	// Loads is how many of them were satisfied from the network snapshot
	// store instead of being constructed (0 without a store).
	Loads int
	// Nodes sums the node counts of the materialized networks.
	Nodes int64
	// BuildTime is the summed construction wall-clock of the built
	// entries; LoadTime the summed snapshot-load wall-clock of the loaded
	// ones.
	BuildTime time.Duration
	LoadTime  time.Duration
	// GraphBytes and HierBytes are the summed resident footprints of the
	// graphs (points, CSR adjacency, cell index) and hierarchies.
	GraphBytes int64
	HierBytes  int64
	// StoreMisses and StoreBytes mirror the attached store's counters:
	// cache misses that fell back to a build, and snapshot bytes
	// persisted by this process. Both zero without a store.
	StoreMisses uint64
	StoreBytes  int64
}

// BytesPerNode is the summed footprint divided by the summed node count
// (0 when nothing was built) — the scale figure the README's n=1M recipe
// quotes.
func (s NetBuildStats) BytesPerNode() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.GraphBytes+s.HierBytes) / float64(s.Nodes)
}

// netStats aggregates construction cost and footprint across the built
// entries.
func (c *netCache) netStats() NetBuildStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out NetBuildStats
	for _, e := range c.entries {
		if e.g == nil {
			continue
		}
		out.Networks++
		out.Nodes += int64(e.g.N())
		out.BuildTime += e.buildTime
		out.GraphBytes += e.graphBytes
		out.HierBytes += e.hierBytes
		if e.loaded {
			out.Loads++
			out.LoadTime += e.loadTime
		}
	}
	if c.store != nil {
		st := c.store.Stats()
		out.StoreMisses = st.Misses
		out.StoreBytes = st.StoredBytes
	}
	return out
}

// routeStats aggregates the cache counters across every network entry of
// the run — the hit rates cmd/sweep reports in its summary.
func (c *netCache) routeStats() routing.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total routing.CacheStats
	for _, e := range c.entries {
		if e.routes != nil {
			total.Add(e.routes.Stats())
		}
	}
	return total
}
