package sweep

import (
	"sort"

	"geogossip/internal/stats"
)

// CellKey identifies one grid cell: the task coordinates minus the seed
// index. Aggregation averages the cell's seeds.
type CellKey struct {
	Algorithm  string  `json:"algorithm"`
	N          int     `json:"n"`
	LossRate   float64 `json:"loss_rate"`
	FaultModel string  `json:"fault_model,omitempty"`
	Beta       float64 `json:"beta"`
	Sampling   string  `json:"sampling,omitempty"`
	Hierarchy  string  `json:"hierarchy,omitempty"`
}

// lineKey is a CellKey minus N: the grouping for scaling fits across n.
type lineKey struct {
	Algorithm  string
	LossRate   float64
	FaultModel string
	Beta       float64
	Sampling   string
	Hierarchy  string
}

func (k CellKey) line() lineKey {
	return lineKey{Algorithm: k.Algorithm, LossRate: k.LossRate, FaultModel: k.FaultModel,
		Beta: k.Beta, Sampling: k.Sampling, Hierarchy: k.Hierarchy}
}

// Dist summarizes one metric across a cell's seeds.
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
}

func distOf(xs []float64) Dist {
	s := stats.Summarize(xs)
	return Dist{
		Mean: s.Mean,
		Std:  s.Std,
		Min:  s.Min,
		Max:  s.Max,
		P50:  stats.Quantile(xs, 0.5),
		P90:  stats.Quantile(xs, 0.9),
	}
}

// CellStats aggregates all seeds of one grid cell.
type CellStats struct {
	CellKey
	// Count is the number of per-seed results in the cell (errored tasks
	// excluded; see Errors).
	Count int `json:"count"`
	// ConvergedCount is how many of them reached the target error.
	ConvergedCount int `json:"converged"`
	// Errors counts tasks that failed outright (no connected instance,
	// engine error).
	Errors int `json:"errors,omitempty"`
	// Transmissions and FinalErr summarize the per-seed metrics.
	Transmissions Dist `json:"transmissions"`
	FinalErr      Dist `json:"final_err"`
}

// ScalingFit is a fitted power law transmissions ≈ C·n^p across the cells
// of one algorithm/parameter line — the paper's headline quantity.
type ScalingFit struct {
	Algorithm  string  `json:"algorithm"`
	LossRate   float64 `json:"loss_rate"`
	FaultModel string  `json:"fault_model,omitempty"`
	Beta       float64 `json:"beta"`
	Sampling   string  `json:"sampling,omitempty"`
	Hierarchy  string  `json:"hierarchy,omitempty"`
	// Points is the number of (n, mean transmissions) cells fitted.
	Points   int     `json:"points"`
	Exponent float64 `json:"exponent"`
	Constant float64 `json:"constant"`
	R2       float64 `json:"r2"`
}

// Summary is the aggregation of one sweep: per-cell statistics plus
// scaling-exponent fits across n.
type Summary struct {
	Cells []CellStats  `json:"cells"`
	Fits  []ScalingFit `json:"fits"`
}

// Aggregate groups per-task results into grid cells, summarizes each, and
// fits transmissions ~ C·n^p for every parameter line with at least two
// network sizes. Input order does not matter; output order is canonical
// (sorted by cell key), so aggregation of a sweep is as deterministic as
// the sweep itself.
func Aggregate(results []TaskResult) *Summary {
	type acc struct {
		tx, err   []float64
		converged int
		errors    int
	}
	cells := make(map[CellKey]*acc)
	for _, r := range results {
		a := cells[r.Cell()]
		if a == nil {
			a = &acc{}
			cells[r.Cell()] = a
		}
		if r.Error != "" {
			a.errors++
			continue
		}
		a.tx = append(a.tx, float64(r.Transmissions))
		a.err = append(a.err, r.FinalErr)
		if r.Converged {
			a.converged++
		}
	}
	sum := &Summary{}
	for k, a := range cells {
		cs := CellStats{
			CellKey:        k,
			Count:          len(a.tx),
			ConvergedCount: a.converged,
			Errors:         a.errors,
		}
		if len(a.tx) > 0 {
			cs.Transmissions = distOf(a.tx)
			cs.FinalErr = distOf(a.err)
		}
		sum.Cells = append(sum.Cells, cs)
	}
	sort.Slice(sum.Cells, func(i, j int) bool { return cellLess(sum.Cells[i].CellKey, sum.Cells[j].CellKey) })

	lines := make(map[lineKey][]CellStats)
	for _, cs := range sum.Cells {
		if cs.Count > 0 {
			lines[cs.line()] = append(lines[cs.line()], cs)
		}
	}
	for lk, lcells := range lines {
		var ns, txs []float64
		for _, cs := range lcells {
			if cs.Transmissions.Mean > 0 {
				ns = append(ns, float64(cs.N))
				txs = append(txs, cs.Transmissions.Mean)
			}
		}
		if len(ns) < 2 {
			continue
		}
		p, c, r2, err := stats.PowerLawFit(ns, txs)
		if err != nil {
			continue
		}
		sum.Fits = append(sum.Fits, ScalingFit{
			Algorithm:  lk.Algorithm,
			LossRate:   lk.LossRate,
			FaultModel: lk.FaultModel,
			Beta:       lk.Beta,
			Sampling:   lk.Sampling,
			Hierarchy:  lk.Hierarchy,
			Points:     len(ns),
			Exponent:   p,
			Constant:   c,
			R2:         r2,
		})
	}
	sort.Slice(sum.Fits, func(i, j int) bool { return fitLess(sum.Fits[i], sum.Fits[j]) })
	return sum
}

func cellLess(a, b CellKey) bool {
	if a.Algorithm != b.Algorithm {
		return a.Algorithm < b.Algorithm
	}
	if a.N != b.N {
		return a.N < b.N
	}
	if a.LossRate != b.LossRate {
		return a.LossRate < b.LossRate
	}
	if a.FaultModel != b.FaultModel {
		return a.FaultModel < b.FaultModel
	}
	if a.Beta != b.Beta {
		return a.Beta < b.Beta
	}
	if a.Sampling != b.Sampling {
		return a.Sampling < b.Sampling
	}
	return a.Hierarchy < b.Hierarchy
}

func fitLess(a, b ScalingFit) bool {
	if a.Algorithm != b.Algorithm {
		return a.Algorithm < b.Algorithm
	}
	if a.LossRate != b.LossRate {
		return a.LossRate < b.LossRate
	}
	if a.FaultModel != b.FaultModel {
		return a.FaultModel < b.FaultModel
	}
	if a.Beta != b.Beta {
		return a.Beta < b.Beta
	}
	if a.Sampling != b.Sampling {
		return a.Sampling < b.Sampling
	}
	return a.Hierarchy < b.Hierarchy
}
