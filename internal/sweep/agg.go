package sweep

import (
	"sort"

	"geogossip/internal/channel"
	"geogossip/internal/stats"
)

// CellKey identifies one grid cell: the task coordinates minus the seed
// index. Aggregation averages the cell's seeds.
type CellKey struct {
	Algorithm  string  `json:"algorithm"`
	N          int     `json:"n"`
	LossRate   float64 `json:"loss_rate"`
	FaultModel string  `json:"fault_model,omitempty"`
	Transport  string  `json:"transport,omitempty"`
	Recover    bool    `json:"recover,omitempty"`
	Beta       float64 `json:"beta"`
	Sampling   string  `json:"sampling,omitempty"`
	Hierarchy  string  `json:"hierarchy,omitempty"`
}

// lineKey is a CellKey minus N: the grouping for scaling fits across n.
type lineKey struct {
	Algorithm  string
	LossRate   float64
	FaultModel string
	Transport  string
	Recover    bool
	Beta       float64
	Sampling   string
	Hierarchy  string
}

func (k CellKey) line() lineKey {
	return lineKey{Algorithm: k.Algorithm, LossRate: k.LossRate, FaultModel: k.FaultModel,
		Transport: k.Transport, Recover: k.Recover, Beta: k.Beta, Sampling: k.Sampling, Hierarchy: k.Hierarchy}
}

// Dist summarizes one metric across a cell's seeds.
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
}

func distOf(xs []float64) Dist {
	s := stats.Summarize(xs)
	return Dist{
		Mean: s.Mean,
		Std:  s.Std,
		Min:  s.Min,
		Max:  s.Max,
		P50:  stats.Quantile(xs, 0.5),
		P90:  stats.Quantile(xs, 0.9),
	}
}

// CellStats aggregates all seeds of one grid cell.
type CellStats struct {
	CellKey
	// Count is the number of per-seed results in the cell (errored tasks
	// excluded; see Errors).
	Count int `json:"count"`
	// ConvergedCount is how many of them reached the target error.
	ConvergedCount int `json:"converged"`
	// Errors counts tasks that failed outright (no connected instance,
	// engine error).
	Errors int `json:"errors,omitempty"`
	// Transmissions and FinalErr summarize the per-seed metrics.
	Transmissions Dist `json:"transmissions"`
	FinalErr      Dist `json:"final_err"`
	// SimSeconds summarizes simulated time to converge; present only for
	// cells whose tasks ran with a transport layer (a pointer so
	// transport-free aggregation output stays byte-identical to grids
	// produced before the axis existed).
	SimSeconds *Dist `json:"sim_seconds,omitempty"`
}

// ScalingFit is a fitted power law transmissions ≈ C·n^p across the cells
// of one algorithm/parameter line — the paper's headline quantity.
type ScalingFit struct {
	Algorithm  string  `json:"algorithm"`
	LossRate   float64 `json:"loss_rate"`
	FaultModel string  `json:"fault_model,omitempty"`
	Transport  string  `json:"transport,omitempty"`
	Recover    bool    `json:"recover,omitempty"`
	Beta       float64 `json:"beta"`
	Sampling   string  `json:"sampling,omitempty"`
	Hierarchy  string  `json:"hierarchy,omitempty"`
	// Points is the number of (n, mean transmissions) cells fitted.
	Points   int     `json:"points"`
	Exponent float64 `json:"exponent"`
	Constant float64 `json:"constant"`
	R2       float64 `json:"r2"`
}

// LossFit is a fitted power law transmissions ≈ C·x^q with
// x = 1/(1 − p) the retransmission factor of the cell's effective loss
// rate p — the cost-vs-loss scaling of one algorithm at one network
// size, fitted across the grid's loss axis (plain LossRates and the
// loss content of fault models alike: Bernoulli rate, Gilbert–Elliott
// stationary loss, jamming-field mean loss). An exponent near 1 means
// cost grows like the naive retransmission count; larger exponents
// expose protocols whose structure amplifies loss.
type LossFit struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Recover   bool    `json:"recover,omitempty"`
	Beta      float64 `json:"beta"`
	Sampling  string  `json:"sampling,omitempty"`
	Hierarchy string  `json:"hierarchy,omitempty"`
	// Points is the number of (retransmission factor, mean transmissions)
	// cells fitted.
	Points   int     `json:"points"`
	Exponent float64 `json:"exponent"`
	Constant float64 `json:"constant"`
	R2       float64 `json:"r2"`
}

// Summary is the aggregation of one sweep: per-cell statistics plus
// scaling-exponent fits across n and cost-vs-loss fits across the fault
// grid.
type Summary struct {
	Cells    []CellStats  `json:"cells"`
	Fits     []ScalingFit `json:"fits"`
	LossFits []LossFit    `json:"loss_fits,omitempty"`
}

// Aggregate groups per-task results into grid cells, summarizes each, and
// fits transmissions ~ C·n^p for every parameter line with at least two
// network sizes. Input order does not matter; output order is canonical
// (sorted by cell key), so aggregation of a sweep is as deterministic as
// the sweep itself.
func Aggregate(results []TaskResult) *Summary {
	type acc struct {
		tx, err   []float64
		simSec    []float64
		converged int
		errors    int
	}
	cells := make(map[CellKey]*acc)
	for _, r := range results {
		a := cells[r.Cell()]
		if a == nil {
			a = &acc{}
			cells[r.Cell()] = a
		}
		if r.Error != "" {
			a.errors++
			continue
		}
		a.tx = append(a.tx, float64(r.Transmissions))
		a.err = append(a.err, r.FinalErr)
		if r.Transport != "" {
			a.simSec = append(a.simSec, r.SimSeconds)
		}
		if r.Converged {
			a.converged++
		}
	}
	sum := &Summary{}
	for k, a := range cells {
		cs := CellStats{
			CellKey:        k,
			Count:          len(a.tx),
			ConvergedCount: a.converged,
			Errors:         a.errors,
		}
		if len(a.tx) > 0 {
			cs.Transmissions = distOf(a.tx)
			cs.FinalErr = distOf(a.err)
		}
		if len(a.simSec) > 0 {
			d := distOf(a.simSec)
			cs.SimSeconds = &d
		}
		sum.Cells = append(sum.Cells, cs)
	}
	sort.Slice(sum.Cells, func(i, j int) bool { return cellLess(sum.Cells[i].CellKey, sum.Cells[j].CellKey) })

	lines := make(map[lineKey][]CellStats)
	for _, cs := range sum.Cells {
		if cs.Count > 0 {
			lines[cs.line()] = append(lines[cs.line()], cs)
		}
	}
	for lk, lcells := range lines {
		var ns, txs []float64
		for _, cs := range lcells {
			if cs.Transmissions.Mean > 0 {
				ns = append(ns, float64(cs.N))
				txs = append(txs, cs.Transmissions.Mean)
			}
		}
		if len(ns) < 2 {
			continue
		}
		p, c, r2, err := stats.PowerLawFit(ns, txs)
		if err != nil {
			continue
		}
		sum.Fits = append(sum.Fits, ScalingFit{
			Algorithm:  lk.Algorithm,
			LossRate:   lk.LossRate,
			FaultModel: lk.FaultModel,
			Transport:  lk.Transport,
			Recover:    lk.Recover,
			Beta:       lk.Beta,
			Sampling:   lk.Sampling,
			Hierarchy:  lk.Hierarchy,
			Points:     len(ns),
			Exponent:   p,
			Constant:   c,
			R2:         r2,
		})
	}
	sort.Slice(sum.Fits, func(i, j int) bool { return fitLess(sum.Fits[i], sum.Fits[j]) })
	sum.LossFits = lossFits(sum.Cells)
	return sum
}

// lossLineKey groups cells for cost-vs-loss fits: the coordinates minus
// the loss axes (LossRate and FaultModel become the fitted variable).
type lossLineKey struct {
	Algorithm string
	N         int
	Recover   bool
	Beta      float64
	Sampling  string
	Hierarchy string
}

// effectiveLoss resolves a cell's per-packet loss rate: the LossRate
// axis folded into the fault model's expected loss (Bernoulli rate, GE
// stationary loss, field mean loss composed as independent events).
// Excluded from fitting: cells whose fault model fails to parse or
// loses everything, and cells with structural faults (cuts, churn) —
// their cost inflation is not a function of a loss rate and would only
// pollute the fit.
func effectiveLoss(k CellKey) (float64, bool) {
	spec, err := channel.Parse(k.FaultModel)
	if err != nil {
		return 0, false
	}
	if spec.HasCut() || spec.HasChurn() {
		return 0, false
	}
	for _, f := range spec.Fields {
		if f.Scheduled() && f.Period == 0 {
			// A one-shot window's active fraction depends on the run
			// length, not on any rate the fit could use as a coordinate.
			return 0, false
		}
		if f.Moving() {
			// MeanLoss clips the disk at its *initial* centre; a moving
			// jammer's long-run covered area differs, so the estimate is
			// not a usable fit coordinate either.
			return 0, false
		}
	}
	if k.LossRate != 0 {
		// The grid validator forbids crossing LossRates with fault models
		// that carry their own loss process, so folding is unambiguous.
		spec.Loss = channel.LossBernoulli
		spec.LossRate = k.LossRate
	}
	p := spec.ExpectedLossRate()
	if p < 0 || p >= 1 {
		return 0, false
	}
	return p, true
}

// lossFits fits transmissions ≈ C·(1/(1−p))^q per algorithm/size line
// across every cell whose effective loss differs — the cost-vs-loss
// scaling exponents of the fault grid. Lines with fewer than two
// distinct loss points produce no fit.
func lossFits(cells []CellStats) []LossFit {
	type pt struct{ x, tx float64 }
	lines := make(map[lossLineKey][]pt)
	for _, cs := range cells {
		if cs.Count == 0 || cs.Transmissions.Mean <= 0 {
			continue
		}
		if cs.Transport != "" {
			// ARQ retransmissions change the cost-vs-loss relation itself
			// (cost reflects retries, not engine-level re-sends), so
			// transport cells would pollute the raw-loss fit.
			continue
		}
		p, ok := effectiveLoss(cs.CellKey)
		if !ok {
			continue
		}
		lk := lossLineKey{Algorithm: cs.Algorithm, N: cs.N, Recover: cs.Recover, Beta: cs.Beta,
			Sampling: cs.Sampling, Hierarchy: cs.Hierarchy}
		lines[lk] = append(lines[lk], pt{x: 1 / (1 - p), tx: cs.Transmissions.Mean})
	}
	var out []LossFit
	for lk, pts := range lines {
		xs := make([]float64, 0, len(pts))
		txs := make([]float64, 0, len(pts))
		distinct := make(map[float64]bool)
		for _, p := range pts {
			xs = append(xs, p.x)
			txs = append(txs, p.tx)
			distinct[p.x] = true
		}
		if len(distinct) < 2 {
			continue
		}
		q, c, r2, err := stats.PowerLawFit(xs, txs)
		if err != nil {
			continue
		}
		out = append(out, LossFit{
			Algorithm: lk.Algorithm,
			N:         lk.N,
			Recover:   lk.Recover,
			Beta:      lk.Beta,
			Sampling:  lk.Sampling,
			Hierarchy: lk.Hierarchy,
			Points:    len(xs),
			Exponent:  q,
			Constant:  c,
			R2:        r2,
		})
	}
	sort.Slice(out, func(i, j int) bool { return lossFitLess(out[i], out[j]) })
	return out
}

func lossFitLess(a, b LossFit) bool {
	if a.Algorithm != b.Algorithm {
		return a.Algorithm < b.Algorithm
	}
	if a.N != b.N {
		return a.N < b.N
	}
	if a.Recover != b.Recover {
		return !a.Recover
	}
	if a.Beta != b.Beta {
		return a.Beta < b.Beta
	}
	if a.Sampling != b.Sampling {
		return a.Sampling < b.Sampling
	}
	return a.Hierarchy < b.Hierarchy
}

func cellLess(a, b CellKey) bool {
	if a.Algorithm != b.Algorithm {
		return a.Algorithm < b.Algorithm
	}
	if a.N != b.N {
		return a.N < b.N
	}
	if a.LossRate != b.LossRate {
		return a.LossRate < b.LossRate
	}
	if a.FaultModel != b.FaultModel {
		return a.FaultModel < b.FaultModel
	}
	if a.Transport != b.Transport {
		return a.Transport < b.Transport
	}
	if a.Recover != b.Recover {
		return !a.Recover
	}
	if a.Beta != b.Beta {
		return a.Beta < b.Beta
	}
	if a.Sampling != b.Sampling {
		return a.Sampling < b.Sampling
	}
	return a.Hierarchy < b.Hierarchy
}

func fitLess(a, b ScalingFit) bool {
	if a.Algorithm != b.Algorithm {
		return a.Algorithm < b.Algorithm
	}
	if a.LossRate != b.LossRate {
		return a.LossRate < b.LossRate
	}
	if a.FaultModel != b.FaultModel {
		return a.FaultModel < b.FaultModel
	}
	if a.Transport != b.Transport {
		return a.Transport < b.Transport
	}
	if a.Recover != b.Recover {
		return !a.Recover
	}
	if a.Beta != b.Beta {
		return a.Beta < b.Beta
	}
	if a.Sampling != b.Sampling {
		return a.Sampling < b.Sampling
	}
	return a.Hierarchy < b.Hierarchy
}
