package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"geogossip/internal/netstore"
)

// runWithStore runs smallSpec serially with an optional store, returning
// the results, the JSONL sink bytes, and the net stats.
func runWithStore(t *testing.T, store *netstore.Store) ([]TaskResult, []byte, NetBuildStats) {
	t.Helper()
	var sink bytes.Buffer
	var stats NetBuildStats
	results, err := Run(context.Background(), smallSpec(), Options{
		Workers:  1,
		Sink:     NewJSONL(&sink),
		NetStats: &stats,
		NetStore: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, sink.Bytes(), stats
}

// The snapshot store is invisible to results: a cold run (build +
// persist), a warm run (every network loaded), and a run over a
// corrupted store (detect + rebuild) all produce byte-identical JSONL
// sinks and identical TaskResults to a storeless run.
func TestRunNetStoreBitIdentity(t *testing.T) {
	refResults, refSink, refStats := runWithStore(t, nil)
	if refStats.Loads != 0 || refStats.StoreMisses != 0 || refStats.StoreBytes != 0 {
		t.Fatalf("storeless run reports store traffic: %+v", refStats)
	}

	dir := t.TempDir()
	open := func() *netstore.Store {
		st, err := netstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Cold: every distinct connected network misses, builds, persists.
	coldResults, coldSink, coldStats := runWithStore(t, open())
	if !reflect.DeepEqual(coldResults, refResults) {
		t.Fatal("cold store run: results differ from storeless run")
	}
	if !bytes.Equal(coldSink, refSink) {
		t.Fatal("cold store run: JSONL sink differs from storeless run")
	}
	if coldStats.Loads != 0 || coldStats.StoreMisses == 0 || coldStats.StoreBytes <= 0 {
		t.Fatalf("cold stats: %+v", coldStats)
	}
	if coldStats.Networks != refStats.Networks || coldStats.Nodes != refStats.Nodes ||
		coldStats.GraphBytes != refStats.GraphBytes || coldStats.HierBytes != refStats.HierBytes {
		t.Fatalf("cold network stats differ: %+v vs %+v", coldStats, refStats)
	}

	// Warm: every network loads, zero builds, and the loaded networks
	// drive bit-identical runs.
	warmResults, warmSink, warmStats := runWithStore(t, open())
	if !reflect.DeepEqual(warmResults, refResults) {
		t.Fatal("warm store run: results differ from storeless run")
	}
	if !bytes.Equal(warmSink, refSink) {
		t.Fatal("warm store run: JSONL sink differs from storeless run")
	}
	if warmStats.StoreMisses != 0 || warmStats.Loads != warmStats.Networks || warmStats.Loads == 0 {
		t.Fatalf("warm stats: %+v", warmStats)
	}
	if warmStats.GraphBytes != refStats.GraphBytes || warmStats.HierBytes != refStats.HierBytes {
		t.Fatalf("warm footprints differ: %+v vs %+v", warmStats, refStats)
	}

	// Corrupted store: flip a byte in every entry; the run detects each,
	// rebuilds, and still reproduces the reference bytes.
	entries, err := filepath.Glob(filepath.Join(dir, "*.ggsnap"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/3] ^= 0x20
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrResults, corrSink, corrStats := runWithStore(t, open())
	if !reflect.DeepEqual(corrResults, refResults) {
		t.Fatal("corrupted store run: results differ from storeless run")
	}
	if !bytes.Equal(corrSink, refSink) {
		t.Fatal("corrupted store run: JSONL sink differs from storeless run")
	}
	if corrStats.Loads != 0 || corrStats.StoreMisses == 0 {
		t.Fatalf("corrupted stats: %+v", corrStats)
	}

	// And the rebuild re-persisted clean entries: a final run loads again.
	_, finalSink, finalStats := runWithStore(t, open())
	if finalStats.StoreMisses != 0 || finalStats.Loads == 0 || !bytes.Equal(finalSink, refSink) {
		t.Fatalf("post-corruption warm run: %+v", finalStats)
	}
}

// Disconnected instances never enter the store: the seed-retry loop must
// walk the same attempt sequence on warm runs as on cold ones.
func TestNetStoreSkipsDisconnectedInstances(t *testing.T) {
	// A sparse radius at small n leaves some placements disconnected, so
	// the retry loop actually engages.
	spec := Spec{
		Algorithms:       []string{AlgoBoyd},
		Ns:               []int{64},
		Seeds:            6,
		TargetErr:        5e-2,
		RadiusMultiplier: 1.1,
	}
	dir := t.TempDir()
	run := func() []TaskResult {
		st, err := netstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		results, err := Run(context.Background(), spec, Options{Workers: 1, NetStore: st})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	ref, warm := run(), run()
	if !reflect.DeepEqual(ref, warm) {
		t.Fatal("warm run differs on a grid with disconnected placements")
	}
	// Every persisted entry must decode to a connected network.
	entries, err := filepath.Glob(filepath.Join(dir, "*.ggsnap"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range entries {
		fh, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		g, _, _, err := netstore.Decode(fh, 1)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(path), err)
		}
		if !g.IsConnected() {
			t.Fatalf("%s holds a disconnected network", filepath.Base(path))
		}
	}
}

// The executor face (distributed workers) shares the same store
// semantics: two executors over one directory, second one builds nothing.
func TestExecutorNetStore(t *testing.T) {
	dir := t.TempDir()
	tasks := smallSpec().Expand()
	run := func() ([]TaskResult, NetBuildStats) {
		st, err := netstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		exec := NewExecutor(1, 1, st)
		var out []TaskResult
		for _, task := range tasks {
			r, _ := exec.Execute(0, task)
			out = append(out, r)
		}
		return out, exec.NetStats()
	}
	coldResults, coldStats := run()
	warmResults, warmStats := run()
	if !reflect.DeepEqual(coldResults, warmResults) {
		t.Fatal("executor store runs differ")
	}
	if coldStats.Loads != 0 || coldStats.StoreMisses == 0 {
		t.Fatalf("cold executor stats: %+v", coldStats)
	}
	if warmStats.StoreMisses != 0 || warmStats.Loads != warmStats.Networks {
		t.Fatalf("warm executor stats: %+v", warmStats)
	}
}
