package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"geogossip/internal/netstore"
	"geogossip/internal/obs"
	"geogossip/internal/routing"
)

// Options configures one engine run.
type Options struct {
	// Workers sizes the pool; zero selects GOMAXPROCS.
	Workers int
	// BuildWorkers sizes the intra-network construction parallelism: each
	// cached network build (graph radius scan, hierarchy tables) shards
	// across this many goroutines; zero selects GOMAXPROCS, one builds
	// serially. Any value yields byte-identical networks (the construction
	// suites assert it), so it is not part of the task identity. Useful
	// when a grid has few distinct networks but each is large.
	BuildWorkers int
	// Sink receives each TaskResult as it completes (completion order).
	// Nil discards streamed results; Run still returns the collected
	// slice. Sink.Write is called from a single goroutine.
	Sink Sink
	// Skip lists task IDs to leave out: tasks whose ID is present are
	// neither executed nor reported.
	Skip map[int]bool
	// Resume carries results from a previous run of the same spec
	// (typically parsed by ReadResults from an interrupted run's JSONL
	// output). Their tasks are not re-executed; the prior results are
	// merged into the returned slice — but not re-sent to the Sink,
	// which only sees newly executed tasks. Every resumed result is
	// validated against the current grid: an ID whose coordinates do not
	// match the expansion means the output came from a different spec,
	// and Run fails rather than silently mixing two grids.
	Resume []TaskResult
	// Progress, when non-nil, is called after every completed task with
	// the number done and the total scheduled. Called from the same
	// single goroutine as Sink.Write.
	Progress func(done, total int)
	// RouteStats, when non-nil, receives the aggregated route/flood
	// cache counters of the run's shared per-network caches after every
	// task has drained.
	RouteStats *routing.CacheStats
	// NetStats, when non-nil, receives the run's network-construction
	// summary (distinct builds, construction wall-clock, footprint) after
	// every task has drained.
	NetStats *NetBuildStats
	// NetStore, when non-nil, is the content-addressed network snapshot
	// store: cached builds load instead of constructing, and fresh builds
	// persist for later runs (see internal/netstore). Loaded networks are
	// bit-identical to built ones, so results are unaffected.
	NetStore *netstore.Store
	// Obs, when non-nil, receives the sweep's metrics: every engine run
	// reports into a per-algorithm scope on this registry, and the run
	// registers scrape-time collectors for task progress, route-cache
	// counters, and channel-pool reuse. All instruments are atomic, so
	// the registry may be scraped (e.g. served over HTTP) while the sweep
	// is running. Nil runs every engine with a nil scope — the
	// zero-overhead default. Execution results are unaffected either way.
	Obs *obs.Registry
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run expands the spec and executes every non-skipped task on the worker
// pool. The returned slice is sorted by TaskID and — given the same spec
// — bit-identical for any worker count. On context cancellation Run
// stops scheduling, waits for in-flight tasks to drain, and returns the
// partial results alongside ctx.Err().
func Run(ctx context.Context, spec Spec, opt Options) ([]TaskResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	all := spec.Expand()
	resumed, err := ValidateResume(all, opt.Resume)
	if err != nil {
		return nil, err
	}
	tasks := all[:0:0]
	for _, t := range all {
		if !opt.Skip[t.ID] && !resumed[t.ID] {
			tasks = append(tasks, t)
		}
	}
	results, err := runPool(ctx, tasks, opt)
	results = append(results, opt.Resume...)
	sort.Slice(results, func(i, j int) bool { return results[i].TaskID < results[j].TaskID })
	return results, err
}

// ValidateResume checks previously completed results against the
// current grid expansion and returns the set of task IDs they cover. An
// ID outside the grid, coordinates that disagree with the expansion, or
// a duplicated ID mean the results came from a different spec, and the
// caller must fail rather than silently mix two grids. Both the local
// engine (Run) and the distributed coordinator re-validate resumed
// sinks through this.
func ValidateResume(all []Task, resume []TaskResult) (map[int]bool, error) {
	resumed := make(map[int]bool, len(resume))
	for _, r := range resume {
		if r.TaskID < 0 || r.TaskID >= len(all) {
			return nil, fmt.Errorf("sweep: resumed task %d outside the current grid (%d tasks) — output from a different spec?", r.TaskID, len(all))
		}
		if t := all[r.TaskID]; !r.matches(t) {
			return nil, fmt.Errorf("sweep: resumed task %d was %s n=%d seed=%d loss=%v beta=%v target=%v radius=%v field=%s run-seed=%d, but the current grid expands it to %s n=%d seed=%d loss=%v beta=%v target=%v radius=%v field=%s run-seed=%d — output from a different spec",
				r.TaskID, r.Algorithm, r.N, r.SeedIndex, r.LossRate, r.Beta,
				r.TargetErr, r.RadiusMultiplier, r.Field, r.RunSeed,
				t.Algorithm, t.N, t.SeedIndex, t.LossRate, t.Beta,
				t.TargetErr, t.RadiusMultiplier, t.Field, t.runSeed())
		}
		if resumed[r.TaskID] {
			return nil, fmt.Errorf("sweep: resumed results carry task %d twice", r.TaskID)
		}
		resumed[r.TaskID] = true
	}
	return resumed, nil
}

// matches reports whether a resumed result agrees with the task the
// current grid assigns to its ID: the grid coordinates, the recorded
// run-level parameters, and the run seed — which re-derives from the
// current BaseSeed and coordinates, so a changed base seed is caught
// even though it appears in no other field.
func (r TaskResult) matches(t Task) bool {
	return r.Algorithm == t.Algorithm && r.N == t.N && r.SeedIndex == t.SeedIndex &&
		r.LossRate == t.LossRate && r.FaultModel == t.FaultModel && r.Transport == t.Transport &&
		r.Recover == t.Recover &&
		r.Beta == t.Beta && r.Sampling == t.Sampling && r.Hierarchy == t.Hierarchy &&
		r.TargetErr == t.TargetErr && r.MaxTicks == t.MaxTicks &&
		r.RadiusMultiplier == t.RadiusMultiplier && r.Field == t.Field &&
		r.AsyncThrottle == t.AsyncThrottle && r.AsyncLeafTicks == t.AsyncLeafTicks &&
		r.RunSeed == t.runSeed()
}

func runPool(ctx context.Context, tasks []Task, opt Options) ([]TaskResult, error) {
	workers := opt.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if len(tasks) == 0 {
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	cache := newNetCache()
	cache.buildWorkers = opt.BuildWorkers
	cache.store = opt.NetStore
	taskCh := make(chan Task)
	resCh := make(chan TaskResult)

	// Each worker owns one set of reusable engine run states, so a grid of
	// R runs performs O(workers) state allocations instead of O(R) — the
	// same sharing discipline as the per-network route caches. Pooled
	// execution is bit-identical to fresh. The states are built up front so
	// the scrape collector below can read their channel-pool counters.
	states := make([]*runStates, workers)
	for w := range states {
		states[w] = &runStates{reg: opt.Obs}
	}
	var doneGauge *obs.Gauge
	if reg := opt.Obs; reg != nil {
		reg.Gauge(obs.MetricSweepTasksTotal,
			"Tasks scheduled in the current sweep run.").Set(float64(len(tasks)))
		doneGauge = reg.Gauge(obs.MetricSweepTasksDone,
			"Tasks completed in the current sweep run.")
		doneGauge.Set(0)
		reg.OnScrape(func() {
			s := cache.routeStats()
			help := "Route/flood cache lookups of the current sweep run, by kind and result (scrape-time snapshot)."
			reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "route", "result", "hit").Set(float64(s.RouteHits))
			reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "route", "result", "miss").Set(float64(s.RouteMisses))
			reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "flood", "result", "hit").Set(float64(s.FloodHits))
			reg.Gauge(obs.MetricRouteCacheLookups, help, "kind", "flood", "result", "miss").Set(float64(s.FloodMisses))
			var builds uint64
			for _, st := range states {
				builds += st.channelBuilds()
			}
			reg.Gauge(obs.MetricChannelPoolBuilds,
				"Radio channels served from pooled worker state instead of fresh allocations (scrape-time snapshot).").Set(float64(builds))
			if store := opt.NetStore; store != nil {
				st := store.Stats()
				reg.Gauge(obs.MetricNetstoreHits,
					"Networks loaded from the snapshot store instead of being rebuilt (scrape-time snapshot).").Set(float64(st.Hits))
				reg.Gauge(obs.MetricNetstoreMisses,
					"Network store misses that fell back to a fresh build (scrape-time snapshot).").Set(float64(st.Misses))
				reg.Gauge(obs.MetricNetstoreStoredBytes,
					"Snapshot bytes persisted to the network store by this process (scrape-time snapshot).").Set(float64(st.StoredBytes))
				reg.Gauge(obs.MetricNetstoreLoadSeconds,
					"Cumulative wall-clock spent loading network snapshots (scrape-time snapshot).").Set(st.LoadTime.Seconds())
			}
		})
	}

	go func() {
		defer close(taskCh)
		for _, t := range tasks {
			select {
			case taskCh <- t:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		mine := states[w]
		go func() {
			defer wg.Done()
			for t := range taskCh {
				if ctx.Err() != nil {
					return
				}
				r := executeWith(t, cache, mine)
				select {
				case resCh <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	var out []TaskResult
	var sinkErr error
	done := 0
	for r := range resCh {
		out = append(out, r)
		if opt.Sink != nil && sinkErr == nil {
			if err := opt.Sink.Write(r); err != nil {
				sinkErr = fmt.Errorf("sweep: sink: %w", err)
				cancel()
			}
		}
		done++
		if doneGauge != nil {
			doneGauge.Set(float64(done))
		}
		if opt.Progress != nil {
			opt.Progress(done, len(tasks))
		}
	}
	if opt.RouteStats != nil {
		*opt.RouteStats = cache.routeStats()
	}
	if opt.NetStats != nil {
		*opt.NetStats = cache.netStats()
	}
	if sinkErr != nil {
		return out, sinkErr
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// Map runs fn(i) for every i in [0, n) on a pool of workers (zero selects
// GOMAXPROCS) and returns the results indexed by i. It is the generic
// face of the engine used by the experiment harness: per-index work must
// seed its own randomness from i, and because results land at their index
// — never in completion order — any reduction over the returned slice is
// bit-identical for every worker count.
//
// Map fails fast: the first observed error stops scheduling (in-flight
// indices drain), and the lowest-index recorded error is returned —
// deterministic at one worker, best-effort under parallelism. External
// cancellation likewise stops scheduling and returns ctx.Err().
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	mapCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := 0; i < n; i++ {
			select {
			case idxCh <- i:
			case <-mapCtx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if mapCtx.Err() != nil {
					return
				}
				out[i], errs[i] = fn(i)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
