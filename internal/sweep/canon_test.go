package sweep

import "testing"

func TestFaultModelCanonicalization(t *testing.T) {
	spec := Spec{Algorithms: []string{AlgoBoyd}, Ns: []int{64},
		FaultModels: []string{"perfect", "bernoulli:.2", "ge:0.1/0.2/0/.5+churn:5e3/0"}}
	got := spec.Normalized().FaultModels
	want := []string{"", "bernoulli:0.2", "ge:0.1/0.2/0/0.5+churn:5000/0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %q, want %q", i, got[i], want[i])
		}
	}
}
