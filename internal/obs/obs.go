// Package obs is the repository's observability layer: a small,
// dependency-free metrics registry (counters, gauges, histograms) with
// hand-rolled Prometheus text exposition, a deterministic flattened view
// for result aggregation, and a label-free fast path (Scope) that engine
// hot loops report through.
//
// The zero-overhead contract (DESIGN.md §8): a nil *Scope costs exactly
// one predictable branch and zero allocations per event, so engines call
// scope methods unconditionally; a nil *Registry is simply never
// consulted. With a live registry attached, hot-loop quantities
// (transmissions by category, tick counts, convergence) are flushed once
// at run end rather than per tick, so steady-state ticks stay within the
// BENCH_engines.json overhead budget; only rare events (losses, resyncs,
// re-elections, churn transitions, long-range exchanges) pay per-event
// atomic adds.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative le-buckets, Prometheus
// style. Bucket counts and the observation count are exact under
// concurrency; the float sum uses a CAS loop (its value is
// scrape-accurate but accumulation-order dependent, which is why Flatten
// excludes it).
type Histogram struct {
	upper   []float64 // ascending upper bounds; the +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     Gauge
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

type metricType int

const (
	counterType metricType = iota + 1
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labelled instrument inside a family; exactly one of
// c/g/h is set, matching the family's type.
type series struct {
	labels string // rendered, sorted `k="v"` pairs joined by ","; "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name, help string
	typ        metricType
	upper      []float64 // histogram families: the shared bucket bounds
	series     map[string]*series
}

// Registry holds metric families and serves them as Prometheus text
// exposition, a deterministic flattened map, or a scrape-time values
// map. The zero value is not usable; call NewRegistry. All methods are
// safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
	scopes     map[string]*Scope
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		scopes:   make(map[string]*Scope),
	}
}

// OnScrape registers fn to run before every exposition (WritePrometheus,
// Values, Handler) — the hook lazy metrics (cache hit rates, runtime
// stats) refresh through. fn runs outside the registry lock, so it may
// register and update metrics freely.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

func (r *Registry) runCollectors() {
	r.mu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// lookup returns (creating if needed) the series for (name, labels),
// validating type consistency. labels alternate key, value.
func (r *Registry) lookup(name, help string, typ metricType, upper []float64, labels []string) *series {
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, upper: upper, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	s := f.series[rendered]
	if s == nil {
		s = &series{labels: rendered}
		switch typ {
		case counterType:
			s.c = &Counter{}
		case gaugeType:
			s.g = &Gauge{}
		case histogramType:
			s.h = &Histogram{upper: f.upper, buckets: make([]atomic.Uint64, len(f.upper)+1)}
		}
		f.series[rendered] = s
	}
	return s
}

// Counter registers (or returns the existing) counter under name with
// the given label pairs (key, value, key, value, ...). Registering the
// same (name, labels) twice returns the same instrument.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, counterType, nil, labels).c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, gaugeType, nil, labels).g
}

// Histogram registers (or returns the existing) histogram with the given
// ascending upper bounds (+Inf is implicit). The first registration of a
// name fixes the family's buckets; later series share them.
func (r *Registry) Histogram(name, help string, upper []float64, labels ...string) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	return r.lookup(name, help, histogramType, append([]float64(nil), upper...), labels).h
}

// renderLabels renders alternating key/value pairs as sorted, escaped
// `k="v"` terms joined by commas.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want key, value pairs)")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// snapshot returns the families sorted by name and, per family, the
// series sorted by rendered labels — the deterministic iteration every
// exposition uses.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func sortedSeries(f *family) []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders `name{labels}` (or bare name when unlabelled),
// optionally splicing an extra pre-rendered term (the histogram le).
func seriesName(name, labels, extra string) string {
	if labels == "" && extra == "" {
		return name
	}
	terms := labels
	if extra != "" {
		if terms != "" {
			terms += ","
		}
		terms += extra
	}
	return name + "{" + terms + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// labels, histogram buckets cumulative with an explicit +Inf. Scrape
// collectors run first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()
	var b strings.Builder
	for _, f := range r.snapshot() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range sortedSeries(f) {
			switch f.typ {
			case counterType:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, s.labels, ""), s.c.Value())
			case gaugeType:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels, ""), formatFloat(s.g.Value()))
			case histogramType:
				var cum uint64
				for i, ub := range s.h.upper {
					cum += s.h.buckets[i].Load()
					le := `le="` + formatFloat(ub) + `"`
					fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", s.labels, le), cum)
				}
				count := s.h.Count()
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", s.labels, `le="+Inf"`), count)
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name+"_sum", s.labels, ""), formatFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_count", s.labels, ""), count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Flatten returns the registry's deterministic scalar view: counter
// values plus histogram cumulative bucket counts and observation counts,
// keyed by their exposition name. Gauges and histogram float sums are
// deliberately excluded — gauges are scrape-time state and float sums
// accumulate in worker order, and Flatten feeds the sweep's
// bit-identical aggregation (SweepReport.Metrics, Result.Metrics).
// Collectors do not run.
func (r *Registry) Flatten() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.snapshot() {
		for _, s := range sortedSeries(f) {
			switch f.typ {
			case counterType:
				out[seriesName(f.name, s.labels, "")] = float64(s.c.Value())
			case histogramType:
				var cum uint64
				for i, ub := range s.h.upper {
					cum += s.h.buckets[i].Load()
					le := `le="` + formatFloat(ub) + `"`
					out[seriesName(f.name+"_bucket", s.labels, le)] = float64(cum)
				}
				out[seriesName(f.name+"_bucket", s.labels, `le="+Inf"`)] = float64(s.h.Count())
				out[seriesName(f.name+"_count", s.labels, "")] = float64(s.h.Count())
			}
		}
	}
	return out
}

// Values returns every scalar the registry holds — counters, gauges,
// histogram buckets, counts, and sums — after running scrape collectors.
// Unlike Flatten the result is scrape-time state, not deterministic.
func (r *Registry) Values() map[string]float64 {
	r.runCollectors()
	out := r.Flatten()
	for _, f := range r.snapshot() {
		for _, s := range sortedSeries(f) {
			switch f.typ {
			case gaugeType:
				out[seriesName(f.name, s.labels, "")] = s.g.Value()
			case histogramType:
				out[seriesName(f.name+"_sum", s.labels, "")] = s.h.Sum()
			}
		}
	}
	return out
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
