package obs

// Metric name catalogue (see README "Observability"). Every engine
// metric carries a single constant `engine` label, resolved once at
// Scope construction so hot-loop reporting never touches label
// rendering.
const (
	MetricTransmissions    = "geogossip_transmissions_total"
	MetricRuns             = "geogossip_runs_total"
	MetricRunsConverged    = "geogossip_runs_converged_total"
	MetricTicks            = "geogossip_ticks_total"
	MetricLosses           = "geogossip_losses_total"
	MetricLossTransmission = "geogossip_loss_transmissions_total"
	MetricReelections      = "geogossip_reelections_total"
	MetricResyncs          = "geogossip_resyncs_total"
	MetricChurnCrashes     = "geogossip_churn_crashes_total"
	MetricChurnRevivals    = "geogossip_churn_revivals_total"
	MetricFarExchanges     = "geogossip_far_exchanges_total"
	MetricFarHops          = "geogossip_far_exchange_hops"
	MetricFinalError       = "geogossip_run_final_error"

	// Transport-reliability layer (DESIGN.md §12): ARQ retry traffic and
	// the delivery-latency distribution of the time-realism channel
	// wrappers. All engine-labelled; zero unless the run's fault spec has
	// arq/delay components.
	MetricRetransmissions = "geogossip_arq_retransmissions_total"
	MetricARQTimeouts     = "geogossip_arq_timeouts_total"
	MetricARQBackoffWait  = "geogossip_arq_backoff_wait"
	MetricDeliveryLatency = "geogossip_delivery_latency"

	// Sweep-level gauges, maintained by the sweep engine when a registry
	// is attached (scrape-time snapshots, not part of Flatten).
	MetricSweepTasksTotal   = "geogossip_sweep_tasks_total"
	MetricSweepTasksDone    = "geogossip_sweep_tasks_done"
	MetricRouteCacheLookups = "geogossip_route_cache_lookups"
	MetricChannelPoolBuilds = "geogossip_channel_pool_builds"

	// Network snapshot store gauges (internal/netstore), maintained by
	// the sweep engine when both a registry and a store are attached.
	MetricNetstoreHits        = "geogossip_netstore_hits"
	MetricNetstoreMisses      = "geogossip_netstore_misses"
	MetricNetstoreStoredBytes = "geogossip_netstore_stored_bytes"
	MetricNetstoreLoadSeconds = "geogossip_netstore_load_seconds"

	// Distributed-sweep gauges, maintained by the coordinator
	// (internal/sweep/dist) when a registry is attached. All scrape-time
	// state: worker membership, lease churn and heartbeat liveness are
	// scheduling facts, so none of them are part of Flatten — the
	// deterministic engine counters arrive separately as per-task deltas
	// summed into SweepReport.Metrics.
	MetricDistWorkers         = "geogossip_dist_workers"
	MetricDistLeasesActive    = "geogossip_dist_leases_active"
	MetricDistLeasesReissued  = "geogossip_dist_leases_reissued"
	MetricDistWorkerTasksDone = "geogossip_dist_worker_tasks_done"
	MetricDistHeartbeatAge    = "geogossip_dist_worker_heartbeat_age_seconds"
	MetricDistBufferedResults = "geogossip_dist_buffered_results"
)

// HopBuckets are the far-exchange hop-count histogram bounds: greedy
// routes on G(n, r) run a few to a few hundred hops at simulable sizes.
var HopBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// ErrBuckets are the final relative-error histogram bounds, one decade
// per bucket across the accuracy range experiments target.
var ErrBuckets = []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// LatencyBuckets are the delivery-latency and ARQ-backoff histogram
// bounds, in engine time units (ticks): per-hop delays are O(1) ticks,
// multi-hop routes with retries reach the hundreds.
var LatencyBuckets = []float64{0.25, 1, 4, 16, 64, 256, 1024, 4096}

// Scope is the label-free fast path one engine reports through: every
// instrument is resolved (with its constant engine label) at
// construction, so reporting is a nil check plus atomic adds. All
// methods are safe on a nil receiver and cost exactly one branch there —
// the zero-overhead contract engines rely on to keep nil-scope ticks
// identical to un-instrumented ones.
//
// High-frequency run quantities (per-category transmissions, ticks,
// convergence) are flushed once per run through EndRun; only rare events
// have per-event methods.
type Scope struct {
	txNear, txFar, txControl, txFlood *Counter
	runs, convergedRuns, ticks        *Counter
	losses, lossCost                  *Counter
	reelections, resyncs              *Counter
	crashes, revivals                 *Counter
	farExchanges                      *Counter
	farHops                           *Histogram
	finalErr                          *Histogram
	retransmits, arqTimeouts          *Counter
	backoffWait                       *Histogram
	deliveryLat                       *Histogram
}

// Scope returns the (memoized) reporting scope for one engine label.
// Scopes are shared: concurrent runs of the same engine accumulate into
// the same instruments, which is safe (atomics) and deterministic for
// everything Flatten exposes (integer sums commute).
func (r *Registry) Scope(engine string) *Scope {
	r.mu.Lock()
	s := r.scopes[engine]
	r.mu.Unlock()
	if s != nil {
		return s
	}
	s = &Scope{
		txNear:        r.Counter(MetricTransmissions, "Transmissions by engine and traffic category.", "engine", engine, "category", "near"),
		txFar:         r.Counter(MetricTransmissions, "Transmissions by engine and traffic category.", "engine", engine, "category", "far"),
		txControl:     r.Counter(MetricTransmissions, "Transmissions by engine and traffic category.", "engine", engine, "category", "control"),
		txFlood:       r.Counter(MetricTransmissions, "Transmissions by engine and traffic category.", "engine", engine, "category", "flood"),
		runs:          r.Counter(MetricRuns, "Completed runs by engine.", "engine", engine),
		convergedRuns: r.Counter(MetricRunsConverged, "Completed runs that reached their error target.", "engine", engine),
		ticks:         r.Counter(MetricTicks, "Clock ticks (far exchanges for the round-structured engine).", "engine", engine),
		losses:        r.Counter(MetricLosses, "Lost data packets (channel fault decisions).", "engine", engine),
		lossCost:      r.Counter(MetricLossTransmission, "Transmissions paid for packets that were then lost.", "engine", engine),
		reelections:   r.Counter(MetricReelections, "Representative re-elections performed by recovery.", "engine", engine),
		resyncs:       r.Counter(MetricResyncs, "Revived-node state resyncs performed by recovery.", "engine", engine),
		crashes:       r.Counter(MetricChurnCrashes, "Observed churn crash transitions.", "engine", engine),
		revivals:      r.Counter(MetricChurnRevivals, "Observed churn revival transitions.", "engine", engine),
		farExchanges:  r.Counter(MetricFarExchanges, "Long-range exchanges.", "engine", engine),
		farHops:       r.Histogram(MetricFarHops, "Hop cost of individual long-range exchanges.", HopBuckets, "engine", engine),
		finalErr:      r.Histogram(MetricFinalError, "Final relative error of completed runs.", ErrBuckets, "engine", engine),
		retransmits:   r.Counter(MetricRetransmissions, "ARQ retries sent after an ack timeout.", "engine", engine),
		arqTimeouts:   r.Counter(MetricARQTimeouts, "ARQ ack timeouts (lost attempts noticed by the sender).", "engine", engine),
		backoffWait:   r.Histogram(MetricARQBackoffWait, "ARQ backoff waits in engine time units (timeout x backoff^k + jitter).", LatencyBuckets, "engine", engine),
		deliveryLat:   r.Histogram(MetricDeliveryLatency, "Transport latency of timed deliveries in engine time units.", LatencyBuckets, "engine", engine),
	}
	r.mu.Lock()
	if prior := r.scopes[engine]; prior != nil {
		s = prior // lost a registration race; instruments are shared anyway
	} else {
		r.scopes[engine] = s
	}
	r.mu.Unlock()
	return s
}

// Loss records one lost data packet that paid `paid` transmissions
// before dying.
func (s *Scope) Loss(paid int) {
	if s == nil {
		return
	}
	s.losses.Inc()
	s.lossCost.Add(uint64(paid))
}

// Reelection records one representative takeover.
func (s *Scope) Reelection() {
	if s == nil {
		return
	}
	s.reelections.Inc()
}

// Resync records one revived-node state resync.
func (s *Scope) Resync() {
	if s == nil {
		return
	}
	s.resyncs.Inc()
}

// Churn records one observed liveness transition.
func (s *Scope) Churn(revived bool) {
	if s == nil {
		return
	}
	if revived {
		s.revivals.Inc()
	} else {
		s.crashes.Inc()
	}
}

// FarExchange records one completed long-range exchange of the given
// hop cost (count + hop histogram).
func (s *Scope) FarExchange(hops int) {
	if s == nil {
		return
	}
	s.farExchanges.Inc()
	s.farHops.Observe(float64(hops))
}

// AddFarExchanges bulk-adds completed long-range exchanges without hop
// detail — the round-structured engine flushes its count at run end so
// its ~100ns exchange hot path stays atomic-free.
func (s *Scope) AddFarExchanges(n uint64) {
	if s == nil {
		return
	}
	s.farExchanges.Add(n)
}

// Retransmit records one ARQ retry sent after an ack timeout.
func (s *Scope) Retransmit() {
	if s == nil {
		return
	}
	s.retransmits.Inc()
}

// ARQTimeout records one ARQ ack timeout (an outstanding attempt was
// lost and the sender's retry timer expired).
func (s *Scope) ARQTimeout() {
	if s == nil {
		return
	}
	s.arqTimeouts.Inc()
}

// BackoffWait records the duration of one ARQ backoff wait.
func (s *Scope) BackoffWait(d float64) {
	if s == nil {
		return
	}
	s.backoffWait.Observe(d)
}

// DeliveryLatency records the transport latency of one timed delivery.
func (s *Scope) DeliveryLatency(d float64) {
	if s == nil {
		return
	}
	s.deliveryLat.Observe(d)
}

// EndRun flushes one finished run: per-category transmissions, tick
// count, run/convergence counters, and the final-error histogram.
// Engines call it exactly once per run, from result assembly.
func (s *Scope) EndRun(near, far, control, flood, ticks uint64, converged bool, finalErr float64) {
	if s == nil {
		return
	}
	s.txNear.Add(near)
	s.txFar.Add(far)
	s.txControl.Add(control)
	s.txFlood.Add(flood)
	s.ticks.Add(ticks)
	s.runs.Inc()
	if converged {
		s.convergedRuns.Inc()
	}
	s.finalErr.Observe(finalErr)
}
