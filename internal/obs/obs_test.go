package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition bytes for a small
// registry covering every instrument type, label rendering, and the
// cumulative histogram encoding — the format contract /metrics serves.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "Events seen.", "engine", "boyd", "category", "near").Add(7)
	r.Counter("app_events_total", "Events seen.", "engine", "boyd", "category", "far").Add(2)
	r.Gauge("app_temperature", "Current temperature.").Set(1.5)
	h := r.Histogram("app_hops", "Hop cost.", []float64{1, 4, 16})
	h.Observe(1)
	h.Observe(3)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_events_total Events seen.
# TYPE app_events_total counter
app_events_total{category="far",engine="boyd"} 2
app_events_total{category="near",engine="boyd"} 7
# HELP app_hops Hop cost.
# TYPE app_hops histogram
app_hops_bucket{le="1"} 1
app_hops_bucket{le="4"} 2
app_hops_bucket{le="16"} 2
app_hops_bucket{le="+Inf"} 3
app_hops_sum 103
app_hops_count 3
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramInvariants checks the bucket algebra under arbitrary
// observations: cumulative counts are monotone, the +Inf bucket equals
// the observation count, and the sum tracks the inputs.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inv_hops", "h", []float64{1, 2, 4, 8})
	vals := []float64{0, 1, 1.5, 2, 3, 7, 8, 9, 1000}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Fatalf("sum %v, want %v", h.Sum(), sum)
	}
	// Cumulative bucket counts from the flattened view must be monotone
	// and end at the observation count.
	flat := r.Flatten()
	bounds := []string{`le="1"`, `le="2"`, `le="4"`, `le="8"`, `le="+Inf"`}
	wantCum := []float64{2, 4, 5, 7, 9} // 0,1 | 1.5,2 | 3 | 7,8 | 9,1000
	prev := -1.0
	for i, le := range bounds {
		got := flat["inv_hops_bucket{"+le+"}"]
		if got != wantCum[i] {
			t.Errorf("bucket %s = %v, want %v", le, got, wantCum[i])
		}
		if got < prev {
			t.Errorf("bucket %s = %v not monotone (prev %v)", le, got, prev)
		}
		prev = got
	}
	if flat["inv_hops_count"] != float64(len(vals)) {
		t.Errorf("flattened count %v, want %d", flat["inv_hops_count"], len(vals))
	}
	// Descending bucket bounds are a programming error, caught loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("descending buckets not rejected")
			}
		}()
		r.Histogram("bad", "b", []float64{4, 2})
	}()
}

// TestLabelEscaping pins the text-format escaping rules for label values
// (backslash, quote, newline) and HELP text.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Help with \\ and\nnewline.", "path", "a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total Help with \\ and\nnewline.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestRegistryTypeMismatchPanics: one name, one type.
func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("type mismatch not rejected")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestFlattenExcludesScrapeState: gauges and histogram float sums are
// scrape-time state and must not leak into the deterministic view.
func TestFlattenExcludesScrapeState(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(3)
	r.Gauge("g", "g").Set(7)
	r.Histogram("h", "h", []float64{1}).Observe(0.5)
	collectorRan := false
	r.OnScrape(func() { collectorRan = true })

	flat := r.Flatten()
	if collectorRan {
		t.Error("Flatten ran scrape collectors")
	}
	if _, ok := flat["g"]; ok {
		t.Error("gauge leaked into Flatten")
	}
	if _, ok := flat["h_sum"]; ok {
		t.Error("histogram sum leaked into Flatten")
	}
	if flat["c_total"] != 3 || flat["h_count"] != 1 {
		t.Errorf("flatten values wrong: %v", flat)
	}

	vals := r.Values()
	if !collectorRan {
		t.Error("Values did not run scrape collectors")
	}
	if vals["g"] != 7 || vals["h_sum"] != 0.5 {
		t.Errorf("values missing scrape state: %v", vals)
	}
}

// TestHandler serves the registry over HTTP and checks the content type
// and a sample line — the /metrics contract.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h", "engine", "boyd").Add(5)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(b.String(), `h_total{engine="boyd"} 5`) {
		t.Errorf("metric missing from response:\n%s", b.String())
	}
}

// TestScopeMemoized: one scope per engine label, shared instruments.
func TestScopeMemoized(t *testing.T) {
	r := NewRegistry()
	a, b := r.Scope("boyd"), r.Scope("boyd")
	if a != b {
		t.Error("scope not memoized")
	}
	if r.Scope("geographic") == a {
		t.Error("distinct engines share a scope")
	}
	a.Loss(3)
	b.Loss(2)
	flat := r.Flatten()
	if flat[`geogossip_losses_total{engine="boyd"}`] != 2 {
		t.Errorf("shared loss counter: %v", flat)
	}
	if flat[`geogossip_loss_transmissions_total{engine="boyd"}`] != 5 {
		t.Errorf("shared loss cost counter: %v", flat)
	}
}

// TestScopeEndRun checks the run-end flush lands on every instrument.
func TestScopeEndRun(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("async")
	s.EndRun(10, 20, 30, 40, 99, true, 1e-4)
	s.EndRun(1, 2, 3, 4, 1, false, 0.5)
	s.FarExchange(24)
	s.AddFarExchanges(5)
	s.Reelection()
	s.Resync()
	s.Churn(true)
	s.Churn(false)
	flat := r.Flatten()
	checks := map[string]float64{
		`geogossip_transmissions_total{category="near",engine="async"}`:    11,
		`geogossip_transmissions_total{category="far",engine="async"}`:     22,
		`geogossip_transmissions_total{category="control",engine="async"}`: 33,
		`geogossip_transmissions_total{category="flood",engine="async"}`:   44,
		`geogossip_ticks_total{engine="async"}`:                            100,
		`geogossip_runs_total{engine="async"}`:                             2,
		`geogossip_runs_converged_total{engine="async"}`:                   1,
		`geogossip_far_exchanges_total{engine="async"}`:                    6,
		`geogossip_far_exchange_hops_count{engine="async"}`:                1,
		`geogossip_reelections_total{engine="async"}`:                      1,
		`geogossip_resyncs_total{engine="async"}`:                          1,
		`geogossip_churn_revivals_total{engine="async"}`:                   1,
		`geogossip_churn_crashes_total{engine="async"}`:                    1,
	}
	for k, want := range checks {
		if flat[k] != want {
			t.Errorf("%s = %v, want %v", k, flat[k], want)
		}
	}
}

// TestNilScopeIsFree pins the zero-overhead contract (DESIGN.md §8): a
// nil scope must cost zero allocations on every reporting method.
func TestNilScopeIsFree(t *testing.T) {
	var s *Scope
	if avg := testing.AllocsPerRun(1000, func() {
		s.Loss(3)
		s.Reelection()
		s.Resync()
		s.Churn(true)
		s.FarExchange(12)
		s.AddFarExchanges(4)
		s.EndRun(1, 2, 3, 4, 5, true, 1e-3)
	}); avg != 0 {
		t.Errorf("nil scope allocated %v per event batch, want 0", avg)
	}
}

// TestLiveScopeAllocFree: even with a registry attached, reporting is
// pure atomics — no allocations per event.
func TestLiveScopeAllocFree(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("boyd")
	if avg := testing.AllocsPerRun(1000, func() {
		s.Loss(3)
		s.FarExchange(12)
		s.EndRun(1, 2, 3, 4, 5, true, 1e-3)
	}); avg != 0 {
		t.Errorf("live scope allocated %v per event batch, want 0", avg)
	}
}

// TestFormatFloat pins the special values the text format requires.
func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{1.5, "1.5"},
		{1e-9, "1e-09"},
		{0, "0"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
